package micgraph

import (
	"testing"
)

func TestFacadeSuiteGraph(t *testing.T) {
	names := SuiteNames()
	if len(names) != 7 || names[0] != "auto" || names[6] != "pwtk" {
		t.Fatalf("SuiteNames = %v", names)
	}
	g, err := SuiteGraph("hood", 16)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("empty suite graph")
	}
	if _, err := SuiteGraph("nope", 1); err == nil {
		t.Error("unknown suite graph accepted")
	}
}

func TestFacadeColoringAndBFS(t *testing.T) {
	g, err := SuiteGraph("pwtk", 16)
	if err != nil {
		t.Fatal(err)
	}
	seq := GreedyColoring(g)
	if err := ValidateColoring(g, seq.Colors); err != nil {
		t.Fatal(err)
	}
	par, err := ParallelColoring(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.NumColors > g.MaxDegree()+1 {
		t.Errorf("parallel coloring used %d colors > Δ+1", par.NumColors)
	}

	src := int32(g.NumVertices() / 2)
	ref := BFS(g, src)
	pres, err := ParallelBFS(g, src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pres.NumLevels != ref.NumLevels {
		t.Errorf("parallel BFS levels %d != sequential %d", pres.NumLevels, ref.NumLevels)
	}

	sp := AchievableBFSSpeedup(ref.Widths, 124, 32)
	if sp <= 1 {
		t.Errorf("model speedup %v, want > 1 on a real profile", sp)
	}
}

func TestFacadeIrregularKernel(t *testing.T) {
	g, err := NewGraph(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	out := IrregularKernel(g, []float64{0, 3, 0}, 1, 2)
	if out[1] != 1 { // (3+0+0)/3
		t.Errorf("kernel output %v, want middle = 1", out)
	}
}

func TestFacadeMachinesAndExperiment(t *testing.T) {
	if KNF().MaxThreads() != 124 || HostXeon().MaxThreads() != 24 {
		t.Error("machine topologies wrong")
	}
	exp, err := RunExperiment("table1", 16)
	if err != nil {
		t.Fatal(err)
	}
	if exp.ID != "table1" || len(exp.Rows) != 7 {
		t.Errorf("experiment %q with %d rows", exp.ID, len(exp.Rows))
	}
	if _, err := RunExperiment("fig0x", 16); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFacadeHybridBFS(t *testing.T) {
	g, err := SuiteGraph("msdoor", 16)
	if err != nil {
		t.Fatal(err)
	}
	src := int32(g.NumVertices() / 2)
	res, err := HybridBFS(g, src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumLevels != BFS(g, src).NumLevels {
		t.Error("hybrid BFS level count differs from sequential")
	}
	if res.TopDownLevels+res.BottomUpLevels != res.NumLevels {
		t.Errorf("direction counts %d+%d != %d levels",
			res.TopDownLevels, res.BottomUpLevels, res.NumLevels)
	}
}

func TestFacadePageRank(t *testing.T) {
	g, err := SuiteGraph("auto", 16)
	if err != nil {
		t.Fatal(err)
	}
	rank, iters := PageRank(g, 4)
	if iters < 1 || len(rank) != g.NumVertices() {
		t.Fatalf("PageRank returned %d ranks after %d iterations", len(rank), iters)
	}
	sum := 0.0
	for _, r := range rank {
		sum += r
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("ranks sum to %v", sum)
	}
}

func TestFacadeBetweennessAndRCM(t *testing.T) {
	g, err := SuiteGraph("pwtk", 32)
	if err != nil {
		t.Fatal(err)
	}
	bc := Betweenness(g, 8, 4)
	if len(bc) != g.NumVertices() {
		t.Fatal("wrong length")
	}
	anyPositive := false
	for _, x := range bc {
		if x > 0 {
			anyPositive = true
		}
		if x < 0 {
			t.Fatal("negative centrality")
		}
	}
	if !anyPositive {
		t.Error("all centralities zero")
	}

	shuffled := g.Shuffled(3)
	restored, err := shuffled.Permute(RCMPermutation(shuffled))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Bandwidth() >= shuffled.Bandwidth() {
		t.Errorf("RCM bandwidth %d not below shuffled %d", restored.Bandwidth(), shuffled.Bandwidth())
	}
}
