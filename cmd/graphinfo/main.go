// graphinfo prints Table I-style properties for graph files or the builtin
// suite: |V|, |E|, Δ, greedy color count, and BFS level count from |V|/2.
//
//	graphinfo data/pwtk.mtx other.bin
//	graphinfo -suite -scale 4
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"micgraph/internal/coloring"
	"micgraph/internal/core"
	"micgraph/internal/gen"
	"micgraph/internal/graph"
	"micgraph/internal/graphio"
	"micgraph/internal/telemetry"
)

func main() {
	var (
		suite   = flag.Bool("suite", false, "report on the builtin 7-graph suite instead of files")
		scale   = flag.Int("scale", 1, "suite shrink factor")
		metrics = flag.String("metrics-out", "", "write one JSONL record per analysed graph to `file`")
		prof    core.Profiling
	)
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "graphinfo:", err)
		}
		os.Exit(code)
	}

	var metricsFile *telemetry.JSONLFile
	if *metrics != "" {
		metricsFile, err = telemetry.CreateJSONL(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphinfo:", err)
			exit(1)
		}
	}
	type graphRecord struct {
		Record     string  `json:"record"`
		Name       string  `json:"name"`
		Vertices   int     `json:"vertices"`
		Edges      int64   `json:"edges"`
		MaxDegree  int     `json:"max_degree"`
		AvgDegree  float64 `json:"avg_degree"`
		Colors     int     `json:"colors"`
		Levels     int     `json:"levels"`
		Components int     `json:"components"`
		AnalyseNS  int64   `json:"analyse_ns"`
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Name\t|V|\t|E|\tΔ\tavg\t#Color\t#Level\tcomps")

	report := func(name string, g *graph.Graph) {
		start := time.Now()
		res := coloring.SeqGreedy(g)
		_, nl := g.Levels(int32(g.NumVertices() / 2))
		_, comps := g.ConnectedComponents()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.1f\t%d\t%d\t%d\n",
			name, g.NumVertices(), g.NumEdges(), g.MaxDegree(), g.AvgDegree(),
			res.NumColors, nl, comps)
		if metricsFile != nil {
			if err := metricsFile.Write(graphRecord{"graph", name, g.NumVertices(),
				g.NumEdges(), g.MaxDegree(), g.AvgDegree(), res.NumColors, nl, comps,
				time.Since(start).Nanoseconds()}); err != nil {
				fmt.Fprintln(os.Stderr, "graphinfo:", err)
				exit(1)
			}
		}
	}

	if *suite {
		graphs, configs, err := gen.GenerateSuite(*scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphinfo:", err)
			exit(1)
		}
		for i, g := range graphs {
			report(configs[i].Name, g)
		}
	} else {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "graphinfo: no input files (or use -suite)")
			exit(2)
		}
		for _, path := range flag.Args() {
			g, err := graphio.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "graphinfo:", err)
				exit(1)
			}
			report(path, g)
		}
	}
	tw.Flush()
	if metricsFile != nil {
		if err := metricsFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "graphinfo:", err)
			exit(1)
		}
	}
	exit(0)
}
