// graphinfo prints Table I-style properties for graph files or the builtin
// suite: |V|, |E|, Δ, greedy color count, and BFS level count from |V|/2.
//
//	graphinfo data/pwtk.mtx other.bin
//	graphinfo -suite -scale 4
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"micgraph/internal/coloring"
	"micgraph/internal/gen"
	"micgraph/internal/graph"
	"micgraph/internal/graphio"
)

func main() {
	var (
		suite = flag.Bool("suite", false, "report on the builtin 7-graph suite instead of files")
		scale = flag.Int("scale", 1, "suite shrink factor")
	)
	flag.Parse()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Name\t|V|\t|E|\tΔ\tavg\t#Color\t#Level\tcomps")

	report := func(name string, g *graph.Graph) {
		res := coloring.SeqGreedy(g)
		_, nl := g.Levels(int32(g.NumVertices() / 2))
		_, comps := g.ConnectedComponents()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.1f\t%d\t%d\t%d\n",
			name, g.NumVertices(), g.NumEdges(), g.MaxDegree(), g.AvgDegree(),
			res.NumColors, nl, comps)
	}

	if *suite {
		graphs, configs, err := gen.GenerateSuite(*scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphinfo:", err)
			os.Exit(1)
		}
		for i, g := range graphs {
			report(configs[i].Name, g)
		}
	} else {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "graphinfo: no input files (or use -suite)")
			os.Exit(2)
		}
		for _, path := range flag.Args() {
			g, err := graphio.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "graphinfo:", err)
				os.Exit(1)
			}
			report(path, g)
		}
	}
	tw.Flush()
}
