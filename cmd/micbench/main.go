// micbench regenerates the paper's tables and figures on the simulated
// machines. Examples:
//
//	micbench -exp all            # every table and figure, paper-scale graphs
//	micbench -exp fig2 -scale 4  # one figure on 16x smaller graphs (fast)
//	micbench -exp fig4c -csv out.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"micgraph/internal/core"
	"micgraph/internal/fault"
	"micgraph/internal/graph"
	"micgraph/internal/mic"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

func main() {
	var (
		expID   = flag.String("exp", "all", "experiment id: all, ablations, none (trace-only runs), table1, fig1a..fig1c, fig2, fig3a..fig3c, fig4a..fig4d, abl-{blocksize,chunk,smt,bonus,ordering,model,direction}, extra-{rmat,knc}")
		scale   = flag.Int("scale", 1, "linear shrink factor for the graph suite (1 = paper sizes)")
		csvPath = flag.String("csv", "", "also write results as CSV to this file (one file, experiments concatenated)")
		svgDir  = flag.String("svg", "", "also write one SVG figure per experiment into this directory")
		machine = flag.String("machine", "", "JSON file overriding the KNF machine description (see mic.SaveMachine)")
		quiet   = flag.Bool("q", false, "suppress progress messages")
		timeout = flag.Duration("timeout", 0, "overall deadline for the sweep; experiments past it are annotated, not run (0 = none)")
		retries = flag.Int("retries", 0, "bounded retries per sweep cell on transient injected faults")

		stragRate = flag.Float64("straggler-rate", 0, "fault injection: probability each simulated MIC core straggles")
		stragSlow = flag.Float64("straggler-slow", 0.5, "fault injection: slowdown fraction of a straggling core")
		stragSeed = flag.Uint64("straggler-seed", 1, "fault injection: deterministic injector seed")

		jsonPath   = flag.String("json", "", "also write results (with per-cell telemetry) as JSON to this file")
		metricsOut = flag.String("metrics-out", "", "write per-cell simulator telemetry as JSONL to `file`")

		traceOut     = flag.String("trace-out", "", "simulate one kernel run and write its timeline as Chrome trace-event JSON to `file` (open in ui.perfetto.dev)")
		traceKernel  = flag.String("trace-kernel", "bfs", "trace mode kernel: bfs, coloring, irregular (5 iterations)")
		traceGraph   = flag.String("trace-graph", "pwtk", "trace mode suite graph name")
		traceThreads = flag.Int("trace-threads", 121, "trace mode thread count")
		traceConfig  = flag.String("trace-config", "omp-dynamic", "trace mode runtime: omp-static, omp-dynamic, omp-guided, cilk, tbb-simple, tbb-auto, tbb-affinity")
		traceChunk   = flag.Int("trace-chunk", 100, "trace mode chunk/grain size")

		prof core.Profiling
	)
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "micbench:", err)
		os.Exit(1)
	}
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
		}
		os.Exit(code)
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	start := time.Now()
	logf("generating graph suite at scale %d ...", *scale)
	suite, err := core.NewSuite(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "micbench:", err)
		exit(1)
	}
	logf("suite ready in %v", time.Since(start).Round(time.Millisecond))

	wantTelemetry := *jsonPath != "" || *metricsOut != ""
	if *timeout > 0 || *retries > 0 || wantTelemetry {
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		suite.Harness = &core.Harness{Ctx: ctx, Retries: *retries, Telemetry: wantTelemetry}
	}

	knf := mic.KNF()
	host := mic.HostXeon()
	if *machine != "" {
		f, err := os.Open(*machine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			exit(1)
		}
		knf, err = mic.LoadMachine(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			exit(1)
		}
		logf("using custom machine %q (%d cores x %d SMT)", knf.Name, knf.Cores, knf.SMTWays)
	}

	if *stragRate > 0 {
		if *stragSlow < 0 {
			fmt.Fprintln(os.Stderr, "micbench: -straggler-slow must be >= 0")
			exit(1)
		}
		in := fault.New(*stragSeed).
			Enable("mic/straggler", *stragRate).
			SetParam("mic/straggler", *stragSlow)
		knf = knf.WithStragglers(in)
		logf("fault injection: %d/%d MIC cores straggling at %.0f%% slowdown (seed %d)",
			in.Fired("mic/straggler"), knf.Cores, *stragSlow*100, *stragSeed)
	}

	if *traceOut != "" {
		if err := writeTrace(suite, knf, *traceOut, *traceKernel, *traceGraph,
			*traceConfig, *traceThreads, *traceChunk, logf); err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			exit(1)
		}
	}

	allIDs := []string{"table1", "fig1a", "fig1b", "fig1c", "fig2",
		"fig3a", "fig3b", "fig3c", "fig4a", "fig4b", "fig4c", "fig4d"}
	ablationIDs := []string{"abl-blocksize", "abl-chunk", "abl-smt",
		"abl-bonus", "abl-ordering", "abl-model", "abl-direction"}

	var ids []string
	switch *expID {
	case "all":
		ids = allIDs
	case "ablations":
		ids = ablationIDs
	case "none", "":
		if *traceOut == "" {
			fmt.Fprintln(os.Stderr, "micbench: -exp none without -trace-out does nothing")
			exit(2)
		}
		exit(0)
	default:
		for _, id := range strings.Split(*expID, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	// RunMany contains per-experiment failures (panics, deadline) as error
	// annotations so one poisoned experiment doesn't take down the sweep.
	exps := core.RunMany(ids, suite, knf, host)

	var csv *os.File
	if *csvPath != "" {
		csv, err = os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			exit(1)
		}
		defer csv.Close()
	}

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			exit(1)
		}
	}
	for _, e := range exps {
		if err := core.WriteText(os.Stdout, e); err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			exit(1)
		}
		if csv != nil {
			fmt.Fprintf(csv, "# %s: %s\n", e.ID, e.Title)
			if err := core.WriteCSV(csv, e); err != nil {
				fmt.Fprintln(os.Stderr, "micbench:", err)
				exit(1)
			}
		}
		if *svgDir != "" && len(e.Series) > 0 {
			f, err := os.Create(filepath.Join(*svgDir, e.ID+".svg"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "micbench:", err)
				exit(1)
			}
			if err := core.WriteSVG(f, e); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "micbench:", err)
				exit(1)
			}
			f.Close()
		}
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			exit(1)
		}
		err = core.WriteJSON(f, exps)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			exit(1)
		}
	}
	if *metricsOut != "" {
		if err := writeCellMetrics(*metricsOut, exps); err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			exit(1)
		}
	}
	failed := 0
	for _, e := range exps {
		failed += len(e.Errors)
	}
	logf("done in %v", time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "micbench: %d cell(s)/experiment(s) failed; see the !! annotations above\n", failed)
		exit(1)
	}
	exit(0)
}

// writeCellMetrics dumps every sweep cell's simulator telemetry as JSONL,
// with one error record per !!-annotated cell so failed cells stay visible
// next to the successful ones.
func writeCellMetrics(path string, exps []*core.Experiment) error {
	out, err := telemetry.CreateJSONL(path)
	if err != nil {
		return err
	}
	type cellRecord struct {
		Record string `json:"record"`
		core.CellTelemetry
	}
	type errRecord struct {
		Record     string `json:"record"`
		Experiment string `json:"experiment"`
		Error      string `json:"error"`
	}
	for _, e := range exps {
		for _, c := range e.Cells {
			if err := out.Write(cellRecord{"cell", c}); err != nil {
				out.Close()
				return err
			}
		}
		for _, ce := range e.Errors {
			if err := out.Write(errRecord{"error", e.ID, ce.Error()}); err != nil {
				out.Close()
				return err
			}
		}
	}
	return out.Close()
}

// writeTrace simulates one kernel run on the (possibly straggler-injected)
// machine and writes the full per-core timeline as Chrome trace-event JSON.
func writeTrace(suite *core.Suite, m *mic.Machine, path, kernel, graphName,
	config string, threads, chunk int, logf func(string, ...any)) error {
	var g *graph.Graph
	for i, cfg := range suite.Configs {
		base, _, _ := strings.Cut(cfg.Name, "/")
		if cfg.Name == graphName || base == graphName {
			g = suite.Graphs[i]
			break
		}
	}
	if g == nil {
		var names []string
		for _, cfg := range suite.Configs {
			names = append(names, cfg.Name)
		}
		return fmt.Errorf("unknown -trace-graph %q (suite graphs: %s)",
			graphName, strings.Join(names, ", "))
	}

	var cfg mic.Config
	switch config {
	case "omp-static":
		cfg = mic.Config{Kind: mic.OpenMP, Policy: sched.Static, Chunk: chunk}
	case "omp-dynamic":
		cfg = mic.Config{Kind: mic.OpenMP, Policy: sched.Dynamic, Chunk: chunk}
	case "omp-guided":
		cfg = mic.Config{Kind: mic.OpenMP, Policy: sched.Guided, Chunk: chunk}
	case "cilk":
		cfg = mic.Config{Kind: mic.Cilk, Chunk: chunk}
	case "tbb-simple":
		cfg = mic.Config{Kind: mic.TBB, Partitioner: sched.SimplePartitioner, Chunk: chunk}
	case "tbb-auto":
		cfg = mic.Config{Kind: mic.TBB, Partitioner: sched.AutoPartitioner, Chunk: chunk}
	case "tbb-affinity":
		cfg = mic.Config{Kind: mic.TBB, Partitioner: sched.AffinityPartitioner, Chunk: chunk}
	default:
		return fmt.Errorf("unknown -trace-config %q", config)
	}

	var tr *mic.Trace
	switch kernel {
	case "bfs":
		tr = mic.BFSTrace(m, g, int32(g.NumVertices()/2), mic.NaturalOrder, mic.BFSBlockRelaxed, 0)
	case "coloring":
		tr = mic.ColoringTrace(m, g, mic.NaturalOrder, threads)
	case "irregular":
		tr = mic.IrregularTrace(m, g, mic.NaturalOrder, 5)
	default:
		return fmt.Errorf("unknown -trace-kernel %q", kernel)
	}

	tl := telemetry.NewTimeline(0)
	var st mic.SimStats
	cycles := mic.SimulateObserved(m, cfg, threads, tr, tl, &st)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = tl.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	logf("trace: %s %s on %s, t=%d: %.0f cycles, %d phases, %d chunks (%d stolen, %d straggled), %d events (%d dropped) -> %s",
		kernel, config, graphName, threads, cycles, st.Phases, st.Chunks,
		st.Steals, st.StraggledChunks, tl.Len(), tl.Dropped(), path)
	return nil
}
