// micbench regenerates the paper's tables and figures on the simulated
// machines. Examples:
//
//	micbench -exp all            # every table and figure, paper-scale graphs
//	micbench -exp fig2 -scale 4  # one figure on 16x smaller graphs (fast)
//	micbench -exp fig4c -csv out.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"micgraph/internal/core"
	"micgraph/internal/fault"
	"micgraph/internal/mic"
)

func main() {
	var (
		expID   = flag.String("exp", "all", "experiment id: all, ablations, table1, fig1a..fig1c, fig2, fig3a..fig3c, fig4a..fig4d, abl-{blocksize,chunk,smt,bonus,ordering,model}, extra-{rmat,knc}")
		scale   = flag.Int("scale", 1, "linear shrink factor for the graph suite (1 = paper sizes)")
		csvPath = flag.String("csv", "", "also write results as CSV to this file (one file, experiments concatenated)")
		svgDir  = flag.String("svg", "", "also write one SVG figure per experiment into this directory")
		machine = flag.String("machine", "", "JSON file overriding the KNF machine description (see mic.SaveMachine)")
		quiet   = flag.Bool("q", false, "suppress progress messages")
		timeout = flag.Duration("timeout", 0, "overall deadline for the sweep; experiments past it are annotated, not run (0 = none)")
		retries = flag.Int("retries", 0, "bounded retries per sweep cell on transient injected faults")

		stragRate = flag.Float64("straggler-rate", 0, "fault injection: probability each simulated MIC core straggles")
		stragSlow = flag.Float64("straggler-slow", 0.5, "fault injection: slowdown fraction of a straggling core")
		stragSeed = flag.Uint64("straggler-seed", 1, "fault injection: deterministic injector seed")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	start := time.Now()
	logf("generating graph suite at scale %d ...", *scale)
	suite, err := core.NewSuite(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "micbench:", err)
		os.Exit(1)
	}
	logf("suite ready in %v", time.Since(start).Round(time.Millisecond))

	if *timeout > 0 || *retries > 0 {
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		suite.Harness = &core.Harness{Ctx: ctx, Retries: *retries}
	}

	knf := mic.KNF()
	host := mic.HostXeon()
	if *machine != "" {
		f, err := os.Open(*machine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			os.Exit(1)
		}
		knf, err = mic.LoadMachine(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			os.Exit(1)
		}
		logf("using custom machine %q (%d cores x %d SMT)", knf.Name, knf.Cores, knf.SMTWays)
	}

	if *stragRate > 0 {
		if *stragSlow < 0 {
			fmt.Fprintln(os.Stderr, "micbench: -straggler-slow must be >= 0")
			os.Exit(1)
		}
		in := fault.New(*stragSeed).
			Enable("mic/straggler", *stragRate).
			SetParam("mic/straggler", *stragSlow)
		knf = knf.WithStragglers(in)
		logf("fault injection: %d/%d MIC cores straggling at %.0f%% slowdown (seed %d)",
			in.Fired("mic/straggler"), knf.Cores, *stragSlow*100, *stragSeed)
	}

	allIDs := []string{"table1", "fig1a", "fig1b", "fig1c", "fig2",
		"fig3a", "fig3b", "fig3c", "fig4a", "fig4b", "fig4c", "fig4d"}
	ablationIDs := []string{"abl-blocksize", "abl-chunk", "abl-smt",
		"abl-bonus", "abl-ordering", "abl-model"}

	var ids []string
	switch *expID {
	case "all":
		ids = allIDs
	case "ablations":
		ids = ablationIDs
	default:
		for _, id := range strings.Split(*expID, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	// RunMany contains per-experiment failures (panics, deadline) as error
	// annotations so one poisoned experiment doesn't take down the sweep.
	exps := core.RunMany(ids, suite, knf, host)

	var csv *os.File
	if *csvPath != "" {
		csv, err = os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			os.Exit(1)
		}
		defer csv.Close()
	}

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			os.Exit(1)
		}
	}
	for _, e := range exps {
		if err := core.WriteText(os.Stdout, e); err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			os.Exit(1)
		}
		if csv != nil {
			fmt.Fprintf(csv, "# %s: %s\n", e.ID, e.Title)
			if err := core.WriteCSV(csv, e); err != nil {
				fmt.Fprintln(os.Stderr, "micbench:", err)
				os.Exit(1)
			}
		}
		if *svgDir != "" && len(e.Series) > 0 {
			f, err := os.Create(filepath.Join(*svgDir, e.ID+".svg"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "micbench:", err)
				os.Exit(1)
			}
			if err := core.WriteSVG(f, e); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "micbench:", err)
				os.Exit(1)
			}
			f.Close()
		}
	}
	failed := 0
	for _, e := range exps {
		failed += len(e.Errors)
	}
	logf("done in %v", time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "micbench: %d cell(s)/experiment(s) failed; see the !! annotations above\n", failed)
		os.Exit(1)
	}
}
