// micbench regenerates the paper's tables and figures on the simulated
// machines. Examples:
//
//	micbench -exp all            # every table and figure, paper-scale graphs
//	micbench -exp fig2 -scale 4  # one figure on 16x smaller graphs (fast)
//	micbench -exp fig4c -csv out.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"micgraph/internal/core"
	"micgraph/internal/mic"
)

func main() {
	var (
		expID   = flag.String("exp", "all", "experiment id: all, ablations, table1, fig1a..fig1c, fig2, fig3a..fig3c, fig4a..fig4d, abl-{blocksize,chunk,smt,bonus,ordering,model}, extra-{rmat,knc}")
		scale   = flag.Int("scale", 1, "linear shrink factor for the graph suite (1 = paper sizes)")
		csvPath = flag.String("csv", "", "also write results as CSV to this file (one file, experiments concatenated)")
		svgDir  = flag.String("svg", "", "also write one SVG figure per experiment into this directory")
		machine = flag.String("machine", "", "JSON file overriding the KNF machine description (see mic.SaveMachine)")
		quiet   = flag.Bool("q", false, "suppress progress messages")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	start := time.Now()
	logf("generating graph suite at scale %d ...", *scale)
	suite, err := core.NewSuite(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "micbench:", err)
		os.Exit(1)
	}
	logf("suite ready in %v", time.Since(start).Round(time.Millisecond))

	knf := mic.KNF()
	host := mic.HostXeon()
	if *machine != "" {
		f, err := os.Open(*machine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			os.Exit(1)
		}
		knf, err = mic.LoadMachine(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			os.Exit(1)
		}
		logf("using custom machine %q (%d cores x %d SMT)", knf.Name, knf.Cores, knf.SMTWays)
	}

	var exps []*core.Experiment
	switch *expID {
	case "all":
		exps = core.All(suite, knf, host)
	case "ablations":
		exps = core.Ablations(suite, knf)
	default:
		for _, id := range strings.Split(*expID, ",") {
			e, err := core.ByID(strings.TrimSpace(id), suite, knf, host)
			if err != nil {
				fmt.Fprintln(os.Stderr, "micbench:", err)
				os.Exit(1)
			}
			exps = append(exps, e)
		}
	}

	var csv *os.File
	if *csvPath != "" {
		csv, err = os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			os.Exit(1)
		}
		defer csv.Close()
	}

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			os.Exit(1)
		}
	}
	for _, e := range exps {
		if err := core.WriteText(os.Stdout, e); err != nil {
			fmt.Fprintln(os.Stderr, "micbench:", err)
			os.Exit(1)
		}
		if csv != nil {
			fmt.Fprintf(csv, "# %s: %s\n", e.ID, e.Title)
			if err := core.WriteCSV(csv, e); err != nil {
				fmt.Fprintln(os.Stderr, "micbench:", err)
				os.Exit(1)
			}
		}
		if *svgDir != "" && len(e.Series) > 0 {
			f, err := os.Create(filepath.Join(*svgDir, e.ID+".svg"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "micbench:", err)
				os.Exit(1)
			}
			if err := core.WriteSVG(f, e); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "micbench:", err)
				os.Exit(1)
			}
			f.Close()
		}
	}
	logf("done in %v", time.Since(start).Round(time.Millisecond))
}
