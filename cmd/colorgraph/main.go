// colorgraph colors a graph with the iterative parallel speculative
// algorithm under a chosen runtime, validates the result, and reports the
// color count, round count and per-round conflicts.
//
//	colorgraph -graph pwtk -scale 4 -runtime openmp -policy dynamic -chunk 100 -workers 8
//	colorgraph -file data/g.mtx -runtime tbb -partitioner simple
//	colorgraph -graph hood -runtime cilk -d2      # distance-2 variant
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"micgraph/internal/coloring"
	"micgraph/internal/core"
	"micgraph/internal/graphio"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

func main() {
	var (
		file    = flag.String("file", "", "graph file (.mtx or .bin)")
		name    = flag.String("graph", "", "builtin suite graph name (e.g. pwtk)")
		scale   = flag.Int("scale", 4, "suite shrink factor for -graph")
		runtime = flag.String("runtime", "openmp", "openmp, cilk, tbb, or seq")
		policy  = flag.String("policy", "dynamic", "openmp policy: static, dynamic, guided")
		part    = flag.String("partitioner", "simple", "tbb partitioner: simple, auto, affinity")
		chunk   = flag.Int("chunk", 100, "chunk/grain size")
		workers = flag.Int("workers", 4, "worker goroutines")
		shuffle = flag.Bool("shuffle", false, "randomly relabel vertices first (the Figure 2 setup)")
		d2      = flag.Bool("d2", false, "distance-2 coloring (sequential or openmp only)")
		timeout = flag.Duration("timeout", 0, "abort the coloring after this long (0 = no deadline)")
		metrics = flag.String("metrics-out", "", "write per-round phase metrics and scheduler counters as JSONL to `file`")
		prof    core.Profiling
	)
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "colorgraph:", err)
		os.Exit(1)
	}
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "colorgraph:", err)
		}
		os.Exit(code)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var rec *telemetry.MemRecorder
	var counters *telemetry.Counters
	if *metrics != "" {
		rec = telemetry.NewMemRecorder()
		ctx = telemetry.WithRecorder(ctx, rec)
		counters = telemetry.NewCounters(*workers)
	}

	g, err := graphio.Load(*file, *name, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "colorgraph:", err)
		exit(1)
	}
	if *shuffle {
		g = g.Shuffled(1)
	}
	fmt.Printf("graph: %s\n", g)

	start := time.Now()
	var res coloring.Result
	var runErr error
	switch {
	case *d2 && *runtime == "seq":
		res = coloring.SeqGreedyD2(g)
	case *d2:
		team := sched.NewTeam(*workers)
		defer team.Close()
		team.SetCounters(counters)
		res = coloring.ColorTeamD2(g, team, sched.ForOptions{Policy: parsePolicy(*policy), Chunk: *chunk})
	case *runtime == "seq":
		res = coloring.SeqGreedy(g)
	case *runtime == "openmp":
		team := sched.NewTeam(*workers)
		defer team.Close()
		team.SetCounters(counters)
		res, runErr = coloring.ColorTeamCtx(ctx, g, team, sched.ForOptions{Policy: parsePolicy(*policy), Chunk: *chunk})
	case *runtime == "cilk":
		pool := sched.NewPool(*workers)
		defer pool.Close()
		pool.SetCounters(counters)
		res, runErr = coloring.ColorCilkCtx(ctx, g, pool, *chunk, coloring.CilkHolder)
	case *runtime == "tbb":
		pool := sched.NewPool(*workers)
		defer pool.Close()
		pool.SetCounters(counters)
		res, runErr = coloring.ColorTBBCtx(ctx, g, pool, parsePartitioner(*part), *chunk)
	default:
		fmt.Fprintf(os.Stderr, "colorgraph: unknown runtime %q\n", *runtime)
		exit(2)
	}
	elapsed := time.Since(start)
	if *metrics != "" {
		if err := writeMetrics(*metrics, g.String(), *runtime, *workers, elapsed, rec, counters); err != nil {
			fmt.Fprintln(os.Stderr, "colorgraph:", err)
			exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "colorgraph: aborted after %v (%d rounds done): %v\n",
			elapsed.Round(time.Microsecond), res.Rounds, runErr)
		exit(1)
	}

	validate := coloring.Validate
	if *d2 {
		validate = coloring.ValidateD2
	}
	if err := validate(g, res.Colors); err != nil {
		fmt.Fprintln(os.Stderr, "colorgraph: INVALID COLORING:", err)
		exit(1)
	}
	fmt.Printf("colors: %d  rounds: %d  conflicts/round: %v  time: %v  (valid)\n",
		res.NumColors, res.Rounds, res.Conflicts, elapsed.Round(time.Microsecond))
	exit(0)
}

// writeMetrics dumps one run's telemetry as JSONL: a run header, one line
// per coloring round, and the scheduler counter snapshot.
func writeMetrics(path, graph, runtime string, workers int, elapsed time.Duration,
	rec *telemetry.MemRecorder, counters *telemetry.Counters) error {
	out, err := telemetry.CreateJSONL(path)
	if err != nil {
		return err
	}
	type runRecord struct {
		Record  string `json:"record"`
		Cmd     string `json:"cmd"`
		Graph   string `json:"graph"`
		Runtime string `json:"runtime"`
		Workers int    `json:"workers"`
		TimeNS  int64  `json:"time_ns"`
	}
	type phaseRecord struct {
		Record string `json:"record"`
		telemetry.PhaseSample
	}
	type counterRecord struct {
		Record string `json:"record"`
		telemetry.Snapshot
	}
	if err := out.Write(runRecord{"run", "colorgraph", graph, runtime, workers, elapsed.Nanoseconds()}); err != nil {
		out.Close()
		return err
	}
	for _, s := range rec.Samples() {
		if err := out.Write(phaseRecord{"phase", s}); err != nil {
			out.Close()
			return err
		}
	}
	if err := out.Write(counterRecord{"counters", counters.Snapshot()}); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func parsePolicy(s string) sched.Policy {
	switch s {
	case "static":
		return sched.Static
	case "guided":
		return sched.Guided
	default:
		return sched.Dynamic
	}
}

func parsePartitioner(s string) sched.Partitioner {
	switch s {
	case "auto":
		return sched.AutoPartitioner
	case "affinity":
		return sched.AffinityPartitioner
	default:
		return sched.SimplePartitioner
	}
}
