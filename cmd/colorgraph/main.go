// colorgraph colors a graph with the iterative parallel speculative
// algorithm under a chosen runtime, validates the result, and reports the
// color count, round count and per-round conflicts.
//
//	colorgraph -graph pwtk -scale 4 -runtime openmp -policy dynamic -chunk 100 -workers 8
//	colorgraph -file data/g.mtx -runtime tbb -partitioner simple
//	colorgraph -graph hood -runtime cilk -d2      # distance-2 variant
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"micgraph/internal/coloring"
	"micgraph/internal/graphio"
	"micgraph/internal/sched"
)

func main() {
	var (
		file    = flag.String("file", "", "graph file (.mtx or .bin)")
		name    = flag.String("graph", "", "builtin suite graph name (e.g. pwtk)")
		scale   = flag.Int("scale", 4, "suite shrink factor for -graph")
		runtime = flag.String("runtime", "openmp", "openmp, cilk, tbb, or seq")
		policy  = flag.String("policy", "dynamic", "openmp policy: static, dynamic, guided")
		part    = flag.String("partitioner", "simple", "tbb partitioner: simple, auto, affinity")
		chunk   = flag.Int("chunk", 100, "chunk/grain size")
		workers = flag.Int("workers", 4, "worker goroutines")
		shuffle = flag.Bool("shuffle", false, "randomly relabel vertices first (the Figure 2 setup)")
		d2      = flag.Bool("d2", false, "distance-2 coloring (sequential or openmp only)")
		timeout = flag.Duration("timeout", 0, "abort the coloring after this long (0 = no deadline)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	g, err := graphio.Load(*file, *name, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "colorgraph:", err)
		os.Exit(1)
	}
	if *shuffle {
		g = g.Shuffled(1)
	}
	fmt.Printf("graph: %s\n", g)

	start := time.Now()
	var res coloring.Result
	var runErr error
	switch {
	case *d2 && *runtime == "seq":
		res = coloring.SeqGreedyD2(g)
	case *d2:
		team := sched.NewTeam(*workers)
		defer team.Close()
		res = coloring.ColorTeamD2(g, team, sched.ForOptions{Policy: parsePolicy(*policy), Chunk: *chunk})
	case *runtime == "seq":
		res = coloring.SeqGreedy(g)
	case *runtime == "openmp":
		team := sched.NewTeam(*workers)
		defer team.Close()
		res, runErr = coloring.ColorTeamCtx(ctx, g, team, sched.ForOptions{Policy: parsePolicy(*policy), Chunk: *chunk})
	case *runtime == "cilk":
		pool := sched.NewPool(*workers)
		defer pool.Close()
		res, runErr = coloring.ColorCilkCtx(ctx, g, pool, *chunk, coloring.CilkHolder)
	case *runtime == "tbb":
		pool := sched.NewPool(*workers)
		defer pool.Close()
		res, runErr = coloring.ColorTBBCtx(ctx, g, pool, parsePartitioner(*part), *chunk)
	default:
		fmt.Fprintf(os.Stderr, "colorgraph: unknown runtime %q\n", *runtime)
		os.Exit(2)
	}
	elapsed := time.Since(start)
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "colorgraph: aborted after %v (%d rounds done): %v\n",
			elapsed.Round(time.Microsecond), res.Rounds, runErr)
		os.Exit(1)
	}

	validate := coloring.Validate
	if *d2 {
		validate = coloring.ValidateD2
	}
	if err := validate(g, res.Colors); err != nil {
		fmt.Fprintln(os.Stderr, "colorgraph: INVALID COLORING:", err)
		os.Exit(1)
	}
	fmt.Printf("colors: %d  rounds: %d  conflicts/round: %v  time: %v  (valid)\n",
		res.NumColors, res.Rounds, res.Conflicts, elapsed.Round(time.Microsecond))
}

func parsePolicy(s string) sched.Policy {
	switch s {
	case "static":
		return sched.Static
	case "guided":
		return sched.Guided
	default:
		return sched.Dynamic
	}
}

func parsePartitioner(s string) sched.Partitioner {
	switch s {
	case "auto":
		return sched.AutoPartitioner
	case "affinity":
		return sched.AffinityPartitioner
	default:
		return sched.SimplePartitioner
	}
}
