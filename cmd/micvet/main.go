// Command micvet runs the repository's custom static-analysis suite: nine
// analyzers that enforce the simulator's determinism, cancellation, and
// concurrency invariants, four of them (lockhold, goroleak, resclose,
// atomicmix) backed by the cross-package facts engine (see
// internal/analysis and DESIGN.md).
//
// Usage:
//
//	micvet [-only name,name] [-json] [-list] [packages]
//
// Packages default to ./... relative to the current directory. The exit
// status is 1 when any diagnostic is reported, 2 on usage or load errors.
// Individual findings can be suppressed with a `//micvet:allow <analyzer>
// <reason>` comment on (or directly above) the offending line; the
// analyzer name must be one of the nine — anything else is itself a
// diagnostic.
//
// -json emits a deterministic machine-readable report: an array (never
// null) of {file, line, col, analyzer, message} objects sorted by file,
// line, column, then analyzer, with file paths relative to the current
// directory so the output is stable across checkouts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"micgraph/internal/analysis"
)

func main() {
	var (
		only     = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		asJSON   = flag.Bool("json", false, "emit diagnostics as JSON")
		list     = flag.Bool("list", false, "list analyzers and exit")
		exitCode = 0
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: micvet [-only name,name] [-json] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		names := strings.Split(*only, ",")
		analyzers = analysis.ByName(names)
		if analyzers == nil {
			var valid []string
			for _, a := range analysis.All() {
				valid = append(valid, a.Name)
			}
			fmt.Fprintf(os.Stderr, "micvet: unknown analyzer in %q (valid: %s)\n", *only, strings.Join(valid, ", "))
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	pkgs, err := analysis.LoadModule(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "micvet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "micvet: %v\n", err)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport(diags)); err != nil {
			fmt.Fprintf(os.Stderr, "micvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		exitCode = 1
	}
	os.Exit(exitCode)
}

// jsonDiag is the stable -json schema; the field set and order are part of
// micvet's interface (CI diffs two runs byte-for-byte).
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport converts sorted diagnostics to the JSON schema, relativizing
// file paths against the current directory so output does not depend on
// where the repository is checked out. Always returns a non-nil slice:
// the clean run is `[]`, not `null`.
func jsonReport(diags []analysis.Diagnostic) []jsonDiag {
	cwd, _ := os.Getwd()
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		out = append(out, jsonDiag{
			File:     filepath.ToSlash(file),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out
}
