// micserved is the resident serving daemon: it keeps graphs and generated
// experiment suites cached in memory and runs submitted BFS / coloring /
// irregular-kernel jobs and experiment sweeps on a fixed worker pool with
// admission control, per-job deadlines and streaming JSONL results.
//
//	micserved -addr :8377
//	curl -s localhost:8377/healthz
//	curl -s -X POST localhost:8377/jobs -d '{"kind":"coloring","graph":{"suite":"pwtk","scale":8}}'
//	curl -s localhost:8377/jobs/job-000001/result      # streams JSONL
//	curl -s localhost:8377/metricsz
//
// SIGTERM/SIGINT drain gracefully: admission stops (new submits get 503),
// queued-but-unstarted jobs are cancelled (each streams a terminal error
// line — no accepted job ever vanishes silently), in-flight jobs run to
// completion, then the process exits 0. Cancelling the queued tail keeps
// the drain bounded by the jobs already executing, so a full queue cannot
// push shutdown past -drain-timeout.
//
// With -name and -peers the daemon joins a static cluster: kernel jobs are
// placed on a seeded consistent-hash ring keyed by graph identity (bounded
// load, R-way replication for hot-graph reads), non-local jobs are
// forwarded one hop with the result stream relayed through the entry node,
// job ids are shard-prefixed so follow-up requests route by id, peers are
// probed and evicted from the ring on failure, and /metricsz reports
// per-shard totals plus their conservation-preserving sum.
//
//	micserved -addr :8381 -name n1 -peers n1=http://h1:8381,n2=http://h2:8381
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"micgraph/internal/cluster"
	"micgraph/internal/core"
	"micgraph/internal/fault"
	"micgraph/internal/mic"
	"micgraph/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8377", "listen address")
		workers = flag.Int("workers", 2, "concurrent jobs (each owns resident sched runtimes)")
		kernelW = flag.Int("kernel-workers", 4, "scheduler parallelism inside each job")
		depth   = flag.Int("queue", 16, "queued-job capacity; submits beyond it get 429")
		cacheMB = flag.Int64("cache-mb", 1024, "graph cache budget in MiB")
		jobTO   = flag.Duration("job-timeout", 2*time.Minute, "default per-job deadline")
		maxTO   = flag.Duration("max-timeout", 10*time.Minute, "hard cap on per-job deadlines")
		drainTO = flag.Duration("drain-timeout", time.Minute, "how long to wait for in-flight jobs on shutdown")
		retryIn = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses (load harnesses tune this down)")

		name        = flag.String("name", "", "cluster mode: this node's shard name (requires -peers)")
		peersFlag   = flag.String("peers", "", "cluster mode: static membership, name=url,... or @peers.json")
		replication = flag.Int("replication", 2, "cluster mode: replica-set size R for hot-graph reads")
		ringSeed    = flag.Uint64("ring-seed", 1, "cluster mode: placement ring seed (must match across peers)")
		vnodes      = flag.Int("vnodes", 64, "cluster mode: ring points per node")
		loadFactor  = flag.Float64("load-factor", 1.25, "cluster mode: bounded-load constant c")
		probeEvery  = flag.Duration("probe-interval", time.Second, "cluster mode: peer health probe interval")
		probeTO     = flag.Duration("probe-timeout", 2*time.Second, "cluster mode: per-probe timeout")
		probeFails  = flag.Int("probe-fails", 2, "cluster mode: consecutive probe failures before ring eviction")

		faultSeed  = flag.Uint64("fault-seed", 1, "fault injection: deterministic injector seed")
		panicRate  = flag.Float64("fault-panic-rate", 0, "fault injection: probability a scheduler boundary panics")
		stallRate  = flag.Float64("fault-stall-rate", 0, "fault injection: probability a scheduler boundary stalls")
		stallFor   = flag.Duration("fault-stall", 10*time.Millisecond, "fault injection: stall duration")
		readRate   = flag.Float64("fault-read-rate", 0, "fault injection: probability a graph-file read errors")
		writeRate  = flag.Float64("fault-write-rate", 0, "fault injection: probability a graph-file write (export jobs) errors")
		stragRate  = flag.Float64("straggler-rate", 0, "fault injection: probability each simulated MIC core straggles")
		stragSlow  = flag.Float64("straggler-slow", 0.5, "fault injection: slowdown fraction of a straggling core")
		machineCfg = flag.String("machine", "", "JSON file overriding the KNF machine description (see mic.SaveMachine)")

		prof core.Profiling
	)
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "micserved:", err)
		os.Exit(1)
	}

	knf := mic.KNF()
	if *machineCfg != "" {
		f, err := os.Open(*machineCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "micserved:", err)
			os.Exit(1)
		}
		knf, err = mic.LoadMachine(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "micserved:", err)
			os.Exit(1)
		}
	}

	var in *fault.Injector
	if *panicRate > 0 || *stallRate > 0 || *readRate > 0 || *writeRate > 0 || *stragRate > 0 {
		in = fault.New(*faultSeed)
		if *panicRate > 0 {
			in.Enable("team/chunk/panic", *panicRate).Enable("pool/task/panic", *panicRate)
		}
		if *stallRate > 0 {
			in.Enable("team/chunk/stall", *stallRate).Enable("pool/task/stall", *stallRate)
		}
		if *readRate > 0 {
			in.Enable("graphio/read/err", *readRate)
		}
		if *writeRate > 0 {
			in.Enable("graphio/write/err", *writeRate)
		}
		if *stragRate > 0 {
			in.Enable("mic/straggler", *stragRate).SetParam("mic/straggler", *stragSlow)
			knf = knf.WithStragglers(in)
		}
		fmt.Fprintf(os.Stderr, "micserved: fault injection armed (seed %d)\n", *faultSeed)
	}

	serveCfg := serve.Config{
		Workers:        *workers,
		KernelWorkers:  *kernelW,
		QueueDepth:     *depth,
		CacheBytes:     *cacheMB << 20,
		DefaultTimeout: *jobTO,
		MaxTimeout:     *maxTO,
		RetryAfter:     *retryIn,
		Injector:       in,
		Stall:          *stallFor,
		KNF:            knf,
	}

	// Cluster mode: -name + -peers turn this process into one shard of a
	// sharded micserved. The HTTP surface is unchanged — the node routes
	// each request to the shard the placement ring picks — so clients and
	// load harnesses point at any member.
	var (
		handler http.Handler
		drain   func(context.Context) error
	)
	if *name != "" || *peersFlag != "" {
		if *name == "" || *peersFlag == "" {
			fmt.Fprintln(os.Stderr, "micserved: cluster mode needs both -name and -peers")
			os.Exit(2)
		}
		peers, err := cluster.ParsePeers(*peersFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "micserved:", err)
			os.Exit(2)
		}
		node, err := cluster.NewNode(cluster.Config{
			Self:          *name,
			Peers:         peers,
			Seed:          *ringSeed,
			VNodes:        *vnodes,
			Replication:   *replication,
			LoadFactor:    *loadFactor,
			ProbeInterval: *probeEvery,
			ProbeTimeout:  *probeTO,
			FailThreshold: *probeFails,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		}, serveCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "micserved:", err)
			os.Exit(2)
		}
		probeCtx, stopProbes := context.WithCancel(context.Background())
		defer stopProbes()
		node.Start(probeCtx)
		handler = node.Handler()
		drain = node.Drain
		fmt.Fprintf(os.Stderr, "micserved: cluster mode, shard %s of %d peers\n", *name, len(peers))
	} else {
		srv := serve.New(serveCfg)
		handler = srv.Handler()
		drain = srv.Drain
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "micserved: listening on %s (%d workers x %d kernel workers, queue %d)\n",
			*addr, *workers, *kernelW, *depth)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	exit := 0
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "micserved:", err)
		exit = 1
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "micserved: signal received, draining ...")
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
		if err := drain(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "micserved: drain:", err)
			exit = 1
		} else {
			fmt.Fprintln(os.Stderr, "micserved: drained")
		}
		if err := httpSrv.Shutdown(drainCtx); err != nil &&
			!errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "micserved: shutdown:", err)
			exit = 1
		}
		cancel()
		<-errc // ListenAndServe returns http.ErrServerClosed
	}

	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "micserved:", err)
		exit = 1
	}
	os.Exit(exit)
}
