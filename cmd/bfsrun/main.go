// bfsrun executes one of the parallel layered BFS variants, validates the
// level assignment against the sequential reference, and reports the level
// structure plus the duplicate work a relaxed variant performed.
//
//	bfsrun -graph pwtk -scale 4 -variant omp-block-relaxed -workers 8
//	bfsrun -file g.mtx -variant bag -source 0
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"micgraph/internal/bfs"
	"micgraph/internal/core"
	"micgraph/internal/graphio"
	"micgraph/internal/perfmodel"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

func main() {
	var (
		file    = flag.String("file", "", "graph file (.mtx or .bin)")
		name    = flag.String("graph", "", "builtin suite graph name (e.g. inline_1)")
		scale   = flag.Int("scale", 4, "suite shrink factor for -graph")
		variant = flag.String("variant", "omp-block-relaxed",
			"seq, omp-block, omp-block-relaxed, tbb-block, tbb-block-relaxed, bag, tls, hybrid")
		workers = flag.Int("workers", 4, "worker goroutines")
		source  = flag.Int("source", -1, "source vertex (-1 = |V|/2 as in the paper)")
		block   = flag.Int("block", bfs.DefaultBlockSize, "block queue block size")
		model   = flag.Bool("model", false, "also print the §III-C achievable-speedup model")
		timeout = flag.Duration("timeout", 0, "abort the traversal after this long (0 = no deadline)")
		metrics = flag.String("metrics-out", "", "write per-level phase metrics and scheduler counters as JSONL to `file`")
		prof    core.Profiling
	)
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfsrun:", err)
		os.Exit(1)
	}
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "bfsrun:", err)
		}
		os.Exit(code)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var rec *telemetry.MemRecorder
	var counters *telemetry.Counters
	if *metrics != "" {
		rec = telemetry.NewMemRecorder()
		ctx = telemetry.WithRecorder(ctx, rec)
		counters = telemetry.NewCounters(*workers)
	}

	g, err := graphio.Load(*file, *name, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfsrun:", err)
		exit(1)
	}
	src := int32(*source)
	if src < 0 {
		src = int32(g.NumVertices() / 2)
	}
	fmt.Printf("graph: %s  source: %d\n", g, src)

	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: *block}
	start := time.Now()
	var res bfs.Result
	var runErr error
	switch *variant {
	case "seq":
		res = bfs.Sequential(g, src)
	case "omp-block", "omp-block-relaxed":
		team := sched.NewTeam(*workers)
		defer team.Close()
		team.SetCounters(counters)
		res, runErr = bfs.BlockTeamCtx(ctx, g, src, team, opts, *block, strings.HasSuffix(*variant, "relaxed"))
	case "tbb-block", "tbb-block-relaxed":
		pool := sched.NewPool(*workers)
		defer pool.Close()
		pool.SetCounters(counters)
		res, runErr = bfs.BlockTBBCtx(ctx, g, src, pool, sched.SimplePartitioner, *block, *block,
			strings.HasSuffix(*variant, "relaxed"))
	case "bag":
		pool := sched.NewPool(*workers)
		defer pool.Close()
		pool.SetCounters(counters)
		res, runErr = bfs.BagCilkCtx(ctx, g, src, pool, 0)
	case "tls":
		team := sched.NewTeam(*workers)
		defer team.Close()
		team.SetCounters(counters)
		res, runErr = bfs.TLSTeamCtx(ctx, g, src, team, opts)
	case "hybrid":
		team := sched.NewTeam(*workers)
		defer team.Close()
		team.SetCounters(counters)
		var hres bfs.HybridResult
		hres, runErr = bfs.HybridTeamCtx(ctx, g, src, team, opts, bfs.HybridConfig{})
		res = hres.Result
		if runErr == nil {
			fmt.Printf("direction: %d top-down levels, %d bottom-up levels\n",
				hres.TopDownLevels, hres.BottomUpLevels)
		}
	default:
		fmt.Fprintf(os.Stderr, "bfsrun: unknown variant %q\n", *variant)
		exit(2)
	}
	elapsed := time.Since(start)
	if *metrics != "" {
		if err := writeMetrics(*metrics, g.String(), *variant, *workers, elapsed, rec, counters); err != nil {
			fmt.Fprintln(os.Stderr, "bfsrun:", err)
			exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "bfsrun: traversal aborted after %v (%d levels done): %v\n",
			elapsed.Round(time.Microsecond), res.NumLevels, runErr)
		exit(1)
	}

	if err := bfs.Validate(g, src, res.Levels); err != nil {
		fmt.Fprintln(os.Stderr, "bfsrun: INVALID BFS:", err)
		exit(1)
	}
	var reached int64
	maxWidth := int64(0)
	for _, w := range res.Widths {
		reached += w
		if w > maxWidth {
			maxWidth = w
		}
	}
	fmt.Printf("levels: %d  reached: %d/%d  max width: %d  processed: %d  duplicates: %d  time: %v  (valid)\n",
		res.NumLevels, reached, g.NumVertices(), maxWidth, res.Processed, res.Duplicates,
		elapsed.Round(time.Microsecond))

	if *model {
		fmt.Println("achievable speedup (§III-C model, block =", *block, "):")
		for _, t := range []int{1, 2, 4, 8, 13, 16, 31, 62, 124} {
			fmt.Printf("  t=%3d  %.2f\n", t, perfmodel.Speedup(res.Widths, t, *block))
		}
		fmt.Printf("  t=inf  %.2f\n", perfmodel.UpperBound(res.Widths, *block))
	}
	exit(0)
}

// writeMetrics dumps one run's telemetry as JSONL: a run header, one line
// per recorded kernel phase, and the scheduler counter snapshot.
func writeMetrics(path, graph, variant string, workers int, elapsed time.Duration,
	rec *telemetry.MemRecorder, counters *telemetry.Counters) error {
	out, err := telemetry.CreateJSONL(path)
	if err != nil {
		return err
	}
	type runRecord struct {
		Record  string `json:"record"`
		Cmd     string `json:"cmd"`
		Graph   string `json:"graph"`
		Variant string `json:"variant"`
		Workers int    `json:"workers"`
		TimeNS  int64  `json:"time_ns"`
	}
	type phaseRecord struct {
		Record string `json:"record"`
		telemetry.PhaseSample
	}
	type counterRecord struct {
		Record string `json:"record"`
		telemetry.Snapshot
	}
	if err := out.Write(runRecord{"run", "bfsrun", graph, variant, workers, elapsed.Nanoseconds()}); err != nil {
		out.Close()
		return err
	}
	for _, s := range rec.Samples() {
		if err := out.Write(phaseRecord{"phase", s}); err != nil {
			out.Close()
			return err
		}
	}
	if err := out.Write(counterRecord{"counters", counters.Snapshot()}); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
