// graphgen generates the synthetic graph suite (or any single generator
// family) and writes Matrix Market or binary CSR files.
//
//	graphgen -out data/ -scale 4              # the 7 Table I stand-ins
//	graphgen -family rmat -n 16 -m 8 -out g.mtx
//	graphgen -family grid2d -w 100 -h 100 -format bin -out grid.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"micgraph/internal/gen"
	"micgraph/internal/graph"
	"micgraph/internal/graphio"
)

func main() {
	var (
		family = flag.String("family", "suite", "suite, mesh, grid2d, grid3d, chain, er, rmat, ringofcliques")
		name   = flag.String("name", "", "suite graph name for -family mesh (e.g. pwtk)")
		scale  = flag.Int("scale", 1, "linear shrink factor for suite/mesh")
		out    = flag.String("out", ".", "output file (single graph) or directory (suite)")
		format = flag.String("format", "mtx", "mtx (Matrix Market), bin (binary CSR), or el (edge list)")
		nFlag  = flag.Int("n", 10, "size parameter: RMAT scale / chain length / ER vertices")
		mFlag  = flag.Int("m", 8, "RMAT edge factor / ER edge count")
		wFlag  = flag.Int("w", 10, "grid width")
		hFlag  = flag.Int("h", 10, "grid height")
		dFlag  = flag.Int("d", 10, "grid depth (grid3d)")
		kFlag  = flag.Int("k", 10, "clique count (ringofcliques)")
		sFlag  = flag.Int("s", 8, "clique size (ringofcliques)")
		seed   = flag.Uint64("seed", 42, "generator seed")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}

	outFormat, err := graphio.ParseFormat(*format)
	if err != nil {
		fail(err)
	}
	write := func(g *graph.Graph, path string) {
		if err := graphio.WriteFile(path, g, outFormat); err != nil {
			fail(err)
		}
		fmt.Printf("%s: %s\n", path, g)
	}

	switch *family {
	case "suite":
		graphs, configs, err := gen.GenerateSuite(*scale)
		if err != nil {
			fail(err)
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fail(err)
		}
		for i, g := range graphs {
			base := strings.ReplaceAll(configs[i].Name, "/", "_x")
			write(g, filepath.Join(*out, base+"."+*format))
		}
	case "mesh":
		cfg, err := gen.SuiteConfig(*name)
		if err != nil {
			fail(err)
		}
		g, err := gen.Mesh(gen.Scaled(cfg, *scale))
		if err != nil {
			fail(err)
		}
		write(g, *out)
	case "grid2d":
		write(gen.Grid2D(*wFlag, *hFlag), *out)
	case "grid3d":
		write(gen.Grid3D(*wFlag, *hFlag, *dFlag), *out)
	case "chain":
		write(gen.Chain(*nFlag), *out)
	case "er":
		write(gen.ErdosRenyi(*nFlag, *mFlag, *seed), *out)
	case "rmat":
		write(gen.RMAT(*nFlag, *mFlag, 0.57, 0.19, 0.19, *seed), *out)
	case "ringofcliques":
		write(gen.RingOfCliques(*kFlag, *sFlag), *out)
	default:
		fail(fmt.Errorf("unknown family %q", *family))
	}
}
