// graphgen generates the synthetic graph suite (or any single generator
// family) and writes Matrix Market or binary CSR files.
//
//	graphgen -out data/ -scale 4              # the 7 Table I stand-ins
//	graphgen -family rmat -n 16 -m 8 -out g.mtx
//	graphgen -family grid2d -w 100 -h 100 -format bin -out grid.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"micgraph/internal/core"
	"micgraph/internal/gen"
	"micgraph/internal/graph"
	"micgraph/internal/graphio"
	"micgraph/internal/telemetry"
)

func main() {
	var (
		family  = flag.String("family", "suite", "suite, mesh, grid2d, grid3d, chain, er, rmat, ringofcliques")
		name    = flag.String("name", "", "suite graph name for -family mesh (e.g. pwtk)")
		scale   = flag.Int("scale", 1, "linear shrink factor for suite/mesh")
		out     = flag.String("out", ".", "output file (single graph) or directory (suite)")
		format  = flag.String("format", "mtx", "mtx (Matrix Market), bin (binary CSR), or el (edge list)")
		nFlag   = flag.Int("n", 10, "size parameter: RMAT scale / chain length / ER vertices")
		mFlag   = flag.Int("m", 8, "RMAT edge factor / ER edge count")
		wFlag   = flag.Int("w", 10, "grid width")
		hFlag   = flag.Int("h", 10, "grid height")
		dFlag   = flag.Int("d", 10, "grid depth (grid3d)")
		kFlag   = flag.Int("k", 10, "clique count (ringofcliques)")
		sFlag   = flag.Int("s", 8, "clique size (ringofcliques)")
		seed    = flag.Uint64("seed", 42, "generator seed")
		metrics = flag.String("metrics-out", "", "write one JSONL record per generated graph to `file`")
		prof    core.Profiling
	)
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
		}
		os.Exit(code)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		exit(1)
	}

	var metricsFile *telemetry.JSONLFile
	if *metrics != "" {
		metricsFile, err = telemetry.CreateJSONL(*metrics)
		if err != nil {
			fail(err)
		}
	}
	type graphRecord struct {
		Record    string  `json:"record"`
		Path      string  `json:"path"`
		Vertices  int     `json:"vertices"`
		Edges     int64   `json:"edges"`
		MaxDegree int     `json:"max_degree"`
		AvgDegree float64 `json:"avg_degree"`
		WriteNS   int64   `json:"write_ns"`
	}

	outFormat, err := graphio.ParseFormat(*format)
	if err != nil {
		fail(err)
	}
	write := func(g *graph.Graph, path string) {
		start := time.Now()
		if err := graphio.WriteFile(path, g, outFormat); err != nil {
			fail(err)
		}
		fmt.Printf("%s: %s\n", path, g)
		if metricsFile != nil {
			if err := metricsFile.Write(graphRecord{"graph", path, g.NumVertices(),
				g.NumEdges(), g.MaxDegree(), g.AvgDegree(), time.Since(start).Nanoseconds()}); err != nil {
				fail(err)
			}
		}
	}

	switch *family {
	case "suite":
		graphs, configs, err := gen.GenerateSuite(*scale)
		if err != nil {
			fail(err)
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fail(err)
		}
		for i, g := range graphs {
			base := strings.ReplaceAll(configs[i].Name, "/", "_x")
			write(g, filepath.Join(*out, base+"."+*format))
		}
	case "mesh":
		cfg, err := gen.SuiteConfig(*name)
		if err != nil {
			fail(err)
		}
		g, err := gen.Mesh(gen.Scaled(cfg, *scale))
		if err != nil {
			fail(err)
		}
		write(g, *out)
	case "grid2d":
		write(gen.Grid2D(*wFlag, *hFlag), *out)
	case "grid3d":
		write(gen.Grid3D(*wFlag, *hFlag, *dFlag), *out)
	case "chain":
		write(gen.Chain(*nFlag), *out)
	case "er":
		write(gen.ErdosRenyi(*nFlag, *mFlag, *seed), *out)
	case "rmat":
		write(gen.RMAT(*nFlag, *mFlag, 0.57, 0.19, 0.19, *seed), *out)
	case "ringofcliques":
		write(gen.RingOfCliques(*kFlag, *sFlag), *out)
	default:
		fail(fmt.Errorf("unknown family %q", *family))
	}
	if metricsFile != nil {
		if err := metricsFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			exit(1)
		}
	}
	exit(0)
}
