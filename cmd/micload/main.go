// micload is the trace-driven load generator for micserved: it synthesizes
// a deterministic, seeded request trace over phased arrival processes
// (steady / rps-sweep / burst / diurnal) and a weighted kernel/sweep/export
// job mix, replays it open-loop against a live daemon through a bounded
// client pool, and writes a per-phase SLO report that merges the client's
// observed latencies with the server's span attribution.
//
//	micserved -addr :8377 &
//	micload -addr http://127.0.0.1:8377 -seed 1 \
//	    -phases "steady,dur=10s,rps=25;burst,dur=10s,rps=15,mult=8" \
//	    -out BENCH_SERVE_0.json -slo "steady:p99<=2s;burst:drop_rate<=0.5"
//
// Exit codes: 0 success, 1 operational error, 3 SLO violation — so CI can
// gate on the SLO without conflating it with harness failures.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"micgraph/internal/load"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "micload:", err)
	os.Exit(1)
}

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8377", "base URL of the micserved daemon")
		targets = flag.String("targets", "", "comma-separated cluster entry URLs; the trace is spread round-robin across them (overrides -addr)")
		seed    = flag.Uint64("seed", 1, "trace synthesizer seed (same seed, same phases -> byte-identical trace)")
		phasesSpec = flag.String("phases",
			"steady,dur=10s,rps=25;sweep,dur=12s,rps=10,end=40;burst,dur=10s,rps=15,mult=8,at=0.5,width=0.2",
			"phase DSL: kind,key=value,... joined by ';' (kinds: steady, sweep, burst, diurnal)")
		mixSpec   = flag.String("mix", "kernel=0.85,sweep=0.05,export=0.1", "job mix weights")
		clients   = flag.Int("clients", 64, "bounded client pool; arrivals beyond it are shed (dropped)")
		exportDir = flag.String("export-dir", os.TempDir(), "directory export jobs write into (on the daemon host)")
		traceOut  = flag.String("trace-out", "", "write the synthesized trace as JSONL to this path")
		synthOnly = flag.Bool("synth-only", false, "synthesize (and optionally write) the trace, then exit without replaying")
		out       = flag.String("out", "", "write the JSON report (BENCH_SERVE_0.json shape) to this path")
		sloSpec   = flag.String("slo", "", "SLO gates: '[phase:]metric<=value' joined by ';' (p50/p99/p999 as durations; drop_rate/reject_rate/error_rate as fractions); violations exit 3")
	)
	flag.Parse()

	phases, err := load.ParsePhases(*phasesSpec)
	if err != nil {
		fail(err)
	}
	mix, err := load.ParseMix(*mixSpec)
	if err != nil {
		fail(err)
	}
	rules, err := load.ParseSLOs(*sloSpec)
	if err != nil {
		fail(err)
	}

	trace := load.Synthesize(*seed, phases, mix, *exportDir)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := trace.WriteLog(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if *synthOnly {
		fmt.Fprintf(os.Stderr, "micload: synthesized %d requests over %s (seed %d)\n",
			len(trace.Requests), trace.Duration(), *seed)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	var targetList []string
	if *targets != "" {
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targetList = append(targetList, t)
			}
		}
	}

	rep, err := load.Replay(ctx, load.Config{
		BaseURL: *addr,
		Targets: targetList,
		Clients: *clients,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "micload: "+format+"\n", args...)
		},
	}, trace)
	if err != nil {
		fail(err)
	}
	rep.SLO = load.EvaluateSLOs(rules, rep)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	rep.WriteSummary(os.Stdout)
	if err := rep.Conserved(); err != nil {
		fail(err)
	}
	if !load.SLOsPassed(rep.SLO) {
		fmt.Fprintln(os.Stderr, "micload: SLO violated")
		os.Exit(3)
	}
}
