#!/bin/sh
# bench_diff.sh — guard the kernel perf trajectory against the committed
# baseline. Runs a short Kernel* benchmark pass and compares each record
# against the baseline JSON (BENCH_1.json by default, the post-optimization
# baseline recorded by scripts/bench.sh):
#
#   - ns/op is INFORMATIONAL: short -benchtime runs on shared CI boxes are
#     noisy, so drifts beyond the ±40% tolerance are printed as warnings
#     but never fail the job;
#   - allocs/op is GATING: allocation counts are deterministic, so an
#     increase beyond the amortization slack (+10%, minimum +2 to absorb
#     setup allocations spread over fewer iterations at short benchtime)
#     fails with exit 1. The exact zero-alloc invariants are pinned even
#     tighter by the internal/kerneltest AllocsPerRun gates.
#
# Usage:
#   scripts/bench_diff.sh [baseline.json]
#   BENCH_DIFF_TIME=200ms BENCH_DIFF_PATTERN='Kernel' scripts/bench_diff.sh
set -eu

cd "$(dirname "$0")/.."

BASE="${1:-BENCH_1.json}"
PATTERN="${BENCH_DIFF_PATTERN:-Kernel}"
TIME="${BENCH_DIFF_TIME:-100ms}"
RAW="${BENCH_DIFF_RAW:-bench_diff.txt}"

if [ ! -f "$BASE" ]; then
    echo "bench_diff.sh: baseline $BASE not found" >&2
    exit 2
fi

echo "bench_diff.sh: go test -run '^$' -bench '$PATTERN' -benchmem -benchtime $TIME ." >&2
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$TIME" -timeout 30m . | tee "$RAW"

python3 - "$BASE" "$RAW" <<'EOF'
import json, sys

base = {}
for rec in json.load(open(sys.argv[1])):
    base.setdefault(rec["name"], []).append(rec)
base = {name: {
    "ns": sum(r["ns_per_op"] for r in recs) / len(recs),
    "allocs": max(r["allocs_per_op"] for r in recs),
} for name, recs in base.items()}

current = {}
for line in open(sys.argv[2]):
    f = line.split()
    if not f or not f[0].startswith("Benchmark"):
        continue
    name = f[0].rsplit("-", 1)[0]
    ns = allocs = None
    for i in range(2, len(f) - 1):
        if f[i + 1] == "ns/op":
            ns = float(f[i])
        if f[i + 1] == "allocs/op":
            allocs = float(f[i])
    if ns is not None:
        current[name] = {"ns": ns, "allocs": allocs or 0.0}

fail = False
for name, cur in sorted(current.items()):
    b = base.get(name)
    if b is None:
        print(f"bench-diff: {name}: no baseline record (new benchmark, informational)")
        continue
    ratio = cur["ns"] / b["ns"] if b["ns"] else 0.0
    if ratio > 1.40 or ratio < 0.60:
        print(f"bench-diff: WARN {name}: {cur['ns']:.0f} ns/op vs baseline "
              f"{b['ns']:.0f} ({ratio:.2f}x, outside +-40%; informational)")
    ceiling = b["allocs"] + max(2.0, b["allocs"] * 0.10)
    if cur["allocs"] > ceiling:
        print(f"bench-diff: FAIL {name}: {cur['allocs']:.0f} allocs/op vs baseline "
              f"{b['allocs']:.0f} (ceiling {ceiling:.0f}) — allocation regression")
        fail = True
missing = sorted(set(n for n in base if "Kernel" in n) - set(current))
for name in missing:
    print(f"bench-diff: WARN {name}: in baseline but not in this run")
sys.exit(1 if fail else 0)
EOF
