#!/bin/sh
# bench_cluster.sh — the cluster-scaling artifact: replay the same seeded
# steady-phase micload trace against (a) one micserved and (b) a 3-node
# cluster, and record both phases plus the throughput ratio in
# BENCH_SERVE_1.json.
#
# Jobs are made wall-clock-bound with the stall injector (rate 0.1 at the
# ~95 chunk boundaries of a scale-6 kernel job -> ~9 stalls of 40ms each),
# so a job occupies a worker slot while sleeping, not a core. Capacity is
# then worker-slots: three nodes carry ~3x one node even on the single-core
# runners CI uses, which is exactly the property the trace measures. The
# arrival rate is set well above single-node capacity so both runs
# saturate, making succeeded-per-second a capacity measurement rather than
# an arrival-rate echo.
#
# Usage:
#   scripts/bench_cluster.sh                 # -> BENCH_SERVE_1.json
#   BENCH_CLUSTER_OUT=out.json BENCH_CLUSTER_DUR=20s scripts/bench_cluster.sh
#
# Exit codes: 0 pass, 1 harness error, 3 speedup gate (>= MIN_SPEEDUP,
# default 2.5) violated.
set -eu

cd "$(dirname "$0")/.."

OUT="${BENCH_CLUSTER_OUT:-BENCH_SERVE_1.json}"
SEED="${BENCH_CLUSTER_SEED:-7}"
DUR="${BENCH_CLUSTER_DUR:-15s}"
RPS="${BENCH_CLUSTER_RPS:-25}"
MIN_SPEEDUP="${BENCH_CLUSTER_MIN_SPEEDUP:-2.5}"
BASE_PORT="${BENCH_CLUSTER_PORT:-8391}"

# 200ms stalls at ~10% of a job's ~95 chunk boundaries put ~1.9s of sleep
# against ~60ms of CPU per job: worker slots, not the core, are the scarce
# resource, so the cluster's 3x slots show up as throughput.
SERVE_FLAGS="-workers 2 -kernel-workers 2 -queue 64 -fault-seed 1 -fault-stall-rate 0.1 -fault-stall 200ms"
# The trace draws from 4 placement keys over 3 shards, so one shard owns
# two keys; a near-1 load factor makes bounded-load spill that structural
# 2x first-choice skew to the other replicas almost immediately.
LOAD_FACTOR="${BENCH_CLUSTER_LOAD_FACTOR:-1.02}"

WORK="$(mktemp -d)"
PIDS=""
cleanup() {
    for p in $PIDS; do kill -TERM "$p" 2>/dev/null || true; done
    for p in $PIDS; do wait "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "bench_cluster.sh: building micserved + micload" >&2
go build -o "$WORK/micserved" ./cmd/micserved
go build -o "$WORK/micload" ./cmd/micload

wait_healthy() {
    for i in $(seq 1 100); do
        if curl -sf "http://$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "bench_cluster.sh: daemon at $1 never became healthy" >&2
    return 1
}

# --- single node ----------------------------------------------------------
ADDR1="127.0.0.1:$BASE_PORT"
# shellcheck disable=SC2086
"$WORK/micserved" -addr "$ADDR1" $SERVE_FLAGS &
SINGLE_PID=$!
PIDS="$SINGLE_PID"
wait_healthy "$ADDR1"

echo "bench_cluster.sh: single-node phase ($DUR at $RPS rps)" >&2
"$WORK/micload" -addr "http://$ADDR1" -seed "$SEED" \
    -phases "steady,name=single,dur=$DUR,rps=$RPS" -mix "kernel=1" \
    -clients 64 -export-dir "$WORK" -out "$WORK/single.json"

kill -TERM "$SINGLE_PID"
wait "$SINGLE_PID" || true
PIDS=""

# --- 3-node cluster -------------------------------------------------------
PEERS=""
TARGETS=""
i=0
for NAME in n1 n2 n3; do
    i=$((i + 1))
    ADDR="127.0.0.1:$((BASE_PORT + i))"
    PEERS="${PEERS}${PEERS:+,}$NAME=http://$ADDR"
    TARGETS="${TARGETS}${TARGETS:+,}http://$ADDR"
done
i=0
for NAME in n1 n2 n3; do
    i=$((i + 1))
    ADDR="127.0.0.1:$((BASE_PORT + i))"
    # shellcheck disable=SC2086
    "$WORK/micserved" -addr "$ADDR" $SERVE_FLAGS \
        -name "$NAME" -peers "$PEERS" -replication 3 -load-factor "$LOAD_FACTOR" \
        -probe-interval 100ms -probe-timeout 1s &
    PIDS="$PIDS $!"
done
i=0
for NAME in n1 n2 n3; do
    i=$((i + 1))
    wait_healthy "127.0.0.1:$((BASE_PORT + i))"
done

echo "bench_cluster.sh: cluster phase ($DUR at $RPS rps across 3 nodes)" >&2
"$WORK/micload" -targets "$TARGETS" -seed "$SEED" \
    -phases "steady,name=cluster,dur=$DUR,rps=$RPS" -mix "kernel=1" \
    -clients 64 -export-dir "$WORK" -out "$WORK/cluster.json"

for p in $PIDS; do kill -TERM "$p" 2>/dev/null || true; done
for p in $PIDS; do wait "$p" 2>/dev/null || true; done
PIDS=""

# --- merge + gate ---------------------------------------------------------
jq -n \
    --slurpfile single "$WORK/single.json" \
    --slurpfile cluster "$WORK/cluster.json" \
    --argjson gate "$MIN_SPEEDUP" \
    '
    ($single[0].phases[0])  as $sp |
    ($cluster[0].phases[0]) as $cp |
    ($sp.succeeded / ($sp.duration_ns / 1e9)) as $srate |
    ($cp.succeeded / ($cp.duration_ns / 1e9)) as $crate |
    {
      tool: "bench_cluster",
      seed: $single[0].seed,
      nodes: ($cluster[0].targets | length),
      targets: $cluster[0].targets,
      phases: [$sp, $cp],
      single_jobs_per_sec: $srate,
      cluster_jobs_per_sec: $crate,
      cluster_speedup: ($crate / $srate),
      speedup_gate: $gate,
      server: { single: $single[0].server, cluster: $cluster[0].server }
    }
    ' > "$OUT"

SPEEDUP=$(jq -r .cluster_speedup "$OUT")
echo "bench_cluster.sh: wrote $OUT (cluster speedup ${SPEEDUP}x, gate >= $MIN_SPEEDUP)" >&2
jq -e ".cluster_speedup >= $MIN_SPEEDUP" "$OUT" >/dev/null || {
    echo "bench_cluster.sh: SPEEDUP GATE VIOLATED: ${SPEEDUP}x < ${MIN_SPEEDUP}x" >&2
    exit 3
}
