#!/bin/sh
# bench.sh — run the bench_test.go benchmarks and emit a machine-readable
# JSON baseline for perf-trajectory tracking.
#
# Usage:
#   scripts/bench.sh                  # all benchmarks, 1 iteration each -> BENCH_0.json
#   BENCH_PATTERN='Kernel' scripts/bench.sh
#   BENCH_TIME=1s BENCH_COUNT=3 BENCH_OUT=BENCH_1.json scripts/bench.sh
#
# Output: a JSON array of {"name", "iterations", "ns_per_op", "bytes_per_op",
# "allocs_per_op"} objects, one per benchmark line (repeated names mean
# BENCH_COUNT > 1). The raw `go test` output is preserved next to it as
# <out>.txt so regressions can be rechecked with benchstat-style tooling.
set -eu

cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-.}"
TIME="${BENCH_TIME:-1x}"
COUNT="${BENCH_COUNT:-1}"
OUT="${BENCH_OUT:-BENCH_0.json}"
RAW="${OUT%.json}.txt"

echo "bench.sh: go test -run '^$' -bench '$PATTERN' -benchmem -benchtime $TIME -count $COUNT ." >&2
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$TIME" -count "$COUNT" -timeout 60m . | tee "$RAW"

# Benchmark lines look like:
#   BenchmarkFoo-8   	      10	 123456 ns/op	    4096 B/op	      12 allocs/op
# (B/op and allocs/op are present because of -benchmem).
awk '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (bytes == "")  bytes = 0
    if (allocs == "") allocs = 0
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, iters, ns, bytes, allocs
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$RAW" > "$OUT"

N=$(grep -c '"name"' "$OUT" || true)
echo "bench.sh: wrote $N benchmark records to $OUT (raw output in $RAW)" >&2
