#!/bin/sh
# bench.sh — run the bench_test.go benchmarks and emit a machine-readable
# JSON baseline for perf-trajectory tracking, then (optionally) drive the
# serving baseline: boot micserved and replay a seeded micload trace into
# BENCH_SERVE_0.json.
#
# Usage:
#   scripts/bench.sh                  # all benchmarks, 1s each -> BENCH_0.json
#   BENCH_PATTERN='Kernel' scripts/bench.sh
#   BENCH_TIME=2s BENCH_COUNT=3 BENCH_OUT=BENCH_1.json scripts/bench.sh
#   BENCH_SERVE=1 scripts/bench.sh    # also run the micload serving baseline
#   BENCH_SERVE=only scripts/bench.sh # just the serving baseline
#
# BENCH_TIME defaults to 1s (real averaged iterations). The old default of
# 1x produced iterations:1 records — single-iteration numbers are far too
# noisy to gate a perf trajectory on.
#
# Output: a JSON array of {"name", "iterations", "ns_per_op", "bytes_per_op",
# "allocs_per_op"} objects, one per benchmark line (repeated names mean
# BENCH_COUNT > 1). The raw `go test` output is preserved next to it as
# <out>.txt so regressions can be rechecked with benchstat-style tooling.
set -eu

cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-.}"
TIME="${BENCH_TIME:-1s}"
COUNT="${BENCH_COUNT:-1}"
OUT="${BENCH_OUT:-BENCH_0.json}"
RAW="${OUT%.json}.txt"
SERVE="${BENCH_SERVE:-0}"

if [ "$SERVE" != "only" ]; then
    echo "bench.sh: go test -run '^$' -bench '$PATTERN' -benchmem -benchtime $TIME -count $COUNT ." >&2
    go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$TIME" -count "$COUNT" -timeout 60m . | tee "$RAW"

    # Benchmark lines look like:
    #   BenchmarkFoo-8   	      10	 123456 ns/op	    4096 B/op	      12 allocs/op
    # (B/op and allocs/op are present because of -benchmem).
    awk '
    /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        iters = $2
        ns = ""; bytes = ""; allocs = ""
        for (i = 3; i < NF; i++) {
            if ($(i+1) == "ns/op")     ns = $i
            if ($(i+1) == "B/op")      bytes = $i
            if ($(i+1) == "allocs/op") allocs = $i
        }
        if (ns == "") next
        if (bytes == "")  bytes = 0
        if (allocs == "") allocs = 0
        if (n++) printf ",\n"
        printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
            name, iters, ns, bytes, allocs
    }
    BEGIN { printf "[\n" }
    END   { printf "\n]\n" }
    ' "$RAW" > "$OUT"

    N=$(grep -c '"name"' "$OUT" || true)
    echo "bench.sh: wrote $N benchmark records to $OUT (raw output in $RAW)" >&2
fi

if [ "$SERVE" = "0" ]; then
    exit 0
fi

# Serving baseline: a deliberately small daemon (2 workers, queue 8) so the
# burst phase visibly saturates the queue — the point of the artifact is
# the per-phase latency attribution, not peak throughput of this machine.
SERVE_OUT="${BENCH_SERVE_OUT:-BENCH_SERVE_0.json}"
SERVE_SEED="${BENCH_SERVE_SEED:-1}"
SERVE_ADDR="${BENCH_SERVE_ADDR:-127.0.0.1:8390}"
SERVE_PHASES="${BENCH_SERVE_PHASES:-steady,dur=10s,rps=25;sweep,dur=12s,rps=10,end=40;burst,dur=10s,rps=15,mult=8,at=0.5,width=0.2}"
EXPORT_DIR="$(mktemp -d)"
trap 'rm -rf "$EXPORT_DIR"; [ -n "${DPID:-}" ] && kill -TERM "$DPID" 2>/dev/null || true' EXIT

echo "bench.sh: building micserved + micload" >&2
go build -o "$EXPORT_DIR/micserved" ./cmd/micserved
go build -o "$EXPORT_DIR/micload" ./cmd/micload

"$EXPORT_DIR/micserved" -addr "$SERVE_ADDR" -workers 2 -queue 8 -retry-after 250ms &
DPID=$!
for i in $(seq 1 100); do
    if curl -sf "http://$SERVE_ADDR/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done

"$EXPORT_DIR/micload" \
    -addr "http://$SERVE_ADDR" \
    -seed "$SERVE_SEED" \
    -phases "$SERVE_PHASES" \
    -clients 64 \
    -export-dir "$EXPORT_DIR" \
    -trace-out "${SERVE_OUT%.json}.trace.jsonl" \
    -out "$SERVE_OUT"

kill -TERM "$DPID"
wait "$DPID" || true
DPID=""
echo "bench.sh: wrote serving baseline to $SERVE_OUT" >&2
