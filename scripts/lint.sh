#!/bin/sh
# lint.sh — run every static check CI runs, locally, in one shot:
#
#   go vet        stock correctness checks
#   staticcheck   style/correctness (skipped with a note if not installed;
#                 CI installs it with `go install`)
#   micvet        this repo's invariant suite (internal/analysis): simulator
#                 determinism, kernel wall-clock hygiene, atomic field
#                 discipline, cancellation backedges, fault propagation
#
# Usage:
#   scripts/lint.sh              # vet + staticcheck + micvet over ./...
#   scripts/lint.sh ./internal/bfs/...   # restrict the target patterns
#
# Exit status is non-zero when any check reports a finding.
set -eu

cd "$(dirname "$0")/.."

if [ "$#" -gt 0 ]; then
  PATTERNS="$*"
else
  PATTERNS="./..."
fi

status=0

echo "lint.sh: go vet $PATTERNS" >&2
# shellcheck disable=SC2086
go vet $PATTERNS || status=1

if command -v staticcheck >/dev/null 2>&1; then
  echo "lint.sh: staticcheck $PATTERNS" >&2
  # shellcheck disable=SC2086
  staticcheck $PATTERNS || status=1
else
  echo "lint.sh: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)" >&2
fi

echo "lint.sh: micvet $PATTERNS" >&2
# shellcheck disable=SC2086
go run ./cmd/micvet $PATTERNS || status=1

exit $status
