// Package micgraph reproduces "An Early Evaluation of the Scalability of
// Graph Algorithms on the Intel MIC Architecture" (Saule & Çatalyürek,
// IPDPS Workshops 2012) as a Go library.
//
// The package is a facade over the implementation packages:
//
//   - internal/graph: CSR graphs, I/O, permutation, traversal;
//   - internal/gen: deterministic synthetic graph generators, including the
//     seven Table I stand-ins;
//   - internal/sched: the three runtime substrates the paper compares
//     (OpenMP-style scheduled loops, Cilk-style work stealing, TBB-style
//     partitioned ranges) implemented over goroutines;
//   - internal/coloring: sequential greedy, iterative parallel speculative
//     coloring (3 runtimes), distance-2 coloring;
//   - internal/bfs: sequential BFS and five parallel layered variants
//     (block queue locked/relaxed × OpenMP/TBB, pennant bag, TLS queues);
//   - internal/irregular: the neighbor-averaging microbenchmark;
//   - internal/perfmodel: the paper's §III-C analytical BFS model;
//   - internal/mic: the deterministic many-core SMT machine simulator that
//     regenerates the paper's speedup figures;
//   - internal/core: the experiment engine for every table and figure.
//
// This facade exposes the typical entry points; import the internal
// packages directly (within this module) for the full API surface.
package micgraph

import (
	"fmt"

	"micgraph/internal/bfs"
	"micgraph/internal/centrality"
	"micgraph/internal/coloring"
	"micgraph/internal/core"
	"micgraph/internal/gen"
	"micgraph/internal/graph"
	"micgraph/internal/irregular"
	"micgraph/internal/mic"
	"micgraph/internal/perfmodel"
	"micgraph/internal/sched"
)

// Re-exported core types. The aliases make the facade zero-cost: values
// returned here interoperate freely with the internal packages.
type (
	// Graph is an immutable undirected CSR graph.
	Graph = graph.Graph
	// Edge is an undirected edge for graph construction.
	Edge = graph.Edge
	// MeshConfig parameterises a Table I stand-in generator.
	MeshConfig = gen.MeshConfig
	// ColoringResult reports a coloring run.
	ColoringResult = coloring.Result
	// BFSResult reports a BFS run.
	BFSResult = bfs.Result
	// Machine is a simulated hardware description.
	Machine = mic.Machine
	// Experiment is one reproduced table or figure.
	Experiment = core.Experiment
	// Team is an OpenMP-style worker team.
	Team = sched.Team
	// Pool is a Cilk/TBB-style work-stealing pool.
	Pool = sched.Pool
)

// NewGraph builds a simple undirected graph from an edge list.
func NewGraph(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// SuiteNames returns the names of the paper's seven test graphs.
func SuiteNames() []string {
	cfgs := gen.Suite()
	names := make([]string, len(cfgs))
	for i, c := range cfgs {
		names[i] = c.Name
	}
	return names
}

// SuiteGraph generates the named Table I stand-in, shrunk by the linear
// factor scale (1 = the paper's size).
func SuiteGraph(name string, scale int) (*Graph, error) {
	cfg, err := gen.SuiteConfig(name)
	if err != nil {
		return nil, err
	}
	return gen.Mesh(gen.Scaled(cfg, scale))
}

// GreedyColoring runs the sequential First-Fit greedy algorithm.
func GreedyColoring(g *Graph) ColoringResult { return coloring.SeqGreedy(g) }

// ParallelColoring runs the iterative parallel speculative coloring on an
// OpenMP-style team with the paper's best configuration (dynamic, chunk
// 100) and validates the result.
func ParallelColoring(g *Graph, workers int) (ColoringResult, error) {
	team := sched.NewTeam(workers)
	defer team.Close()
	res := coloring.ColorTeam(g, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 100})
	if err := coloring.Validate(g, res.Colors); err != nil {
		return res, fmt.Errorf("micgraph: parallel coloring produced an invalid result: %w", err)
	}
	return res, nil
}

// ValidateColoring checks that colors is a proper coloring of g.
func ValidateColoring(g *Graph, colors []int32) error { return coloring.Validate(g, colors) }

// BFS runs the sequential breadth-first search from source.
func BFS(g *Graph, source int32) BFSResult { return bfs.Sequential(g, source) }

// ParallelBFS runs the paper's best-performing parallel variant
// (block-accessed queue, relaxed insertion, dynamic scheduling) and
// validates the level assignment.
func ParallelBFS(g *Graph, source int32, workers int) (BFSResult, error) {
	team := sched.NewTeam(workers)
	defer team.Close()
	res := bfs.BlockTeam(g, source, team,
		sched.ForOptions{Policy: sched.Dynamic, Chunk: bfs.DefaultBlockSize},
		bfs.DefaultBlockSize, true)
	if err := bfs.Validate(g, source, res.Levels); err != nil {
		return res, fmt.Errorf("micgraph: parallel BFS produced an invalid result: %w", err)
	}
	return res, nil
}

// IrregularKernel runs iter neighbor-averaging sweeps of Algorithm 5 over
// the state vector on an OpenMP-style team and returns the new state.
func IrregularKernel(g *Graph, state []float64, iter, workers int) []float64 {
	team := sched.NewTeam(workers)
	defer team.Close()
	return irregular.Team(g, state, iter, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 100})
}

// AchievableBFSSpeedup evaluates the paper's §III-C analytical model:
// the best speedup a layered BFS with the given level widths, thread count
// and block size can reach.
func AchievableBFSSpeedup(levelWidths []int64, threads, blockSize int) float64 {
	return perfmodel.Speedup(levelWidths, threads, blockSize)
}

// KNF returns the simulated Knights Ferry machine (31 cores × 4-way SMT).
func KNF() *Machine { return mic.KNF() }

// HostXeon returns the simulated dual-Xeon host (12 cores × 2-way HT).
func HostXeon() *Machine { return mic.HostXeon() }

// HybridBFS runs the direction-optimizing (top-down/bottom-up) BFS — the
// extension of the paper's layered algorithm for wide frontiers — and
// validates the level assignment.
func HybridBFS(g *Graph, source int32, workers int) (bfs.HybridResult, error) {
	team := sched.NewTeam(workers)
	defer team.Close()
	res := bfs.HybridTeam(g, source, team,
		sched.ForOptions{Policy: sched.Dynamic, Chunk: bfs.DefaultBlockSize}, bfs.HybridConfig{})
	if err := bfs.Validate(g, source, res.Levels); err != nil {
		return res, fmt.Errorf("micgraph: hybrid BFS produced an invalid result: %w", err)
	}
	return res, nil
}

// PageRank runs the damped power iteration (the algorithm the paper's
// irregular kernel abstracts) and returns the rank vector and iteration
// count.
func PageRank(g *Graph, workers int) ([]float64, int) {
	team := sched.NewTeam(workers)
	defer team.Close()
	return irregular.PageRank(g, team,
		sched.ForOptions{Policy: sched.Dynamic, Chunk: 100}, irregular.PageRankOptions{})
}

// Betweenness estimates betweenness centrality from numSources evenly
// spaced BFS sources (Brandes on top of the parallel BFS).
func Betweenness(g *Graph, numSources, workers int) []float64 {
	team := sched.NewTeam(workers)
	defer team.Close()
	n := g.NumVertices()
	if numSources < 1 {
		numSources = 1
	}
	stride := n / numSources
	if stride < 1 {
		stride = 1
	}
	return centrality.Sampled(g, centrality.EverySource(n, stride), team,
		sched.ForOptions{Policy: sched.Dynamic, Chunk: bfs.DefaultBlockSize})
}

// RCMPermutation returns the Reverse Cuthill-McKee reordering of g; apply
// it with Graph.Permute to restore the index locality a shuffled graph
// lost (the Figure 2 axis).
func RCMPermutation(g *Graph) []int32 { return graph.RCMOrder(g) }

// RunExperiment reproduces one of the paper's tables or figures by id
// (table1, fig1a..fig1c, fig2, fig3a..fig3c, fig4a..fig4d) on a suite
// shrunk by scale (1 = paper sizes).
func RunExperiment(id string, scale int) (*Experiment, error) {
	suite, err := core.NewSuite(scale)
	if err != nil {
		return nil, err
	}
	return core.ByID(id, suite, mic.KNF(), mic.HostXeon())
}
