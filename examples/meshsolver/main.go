// Unstructured-mesh heat solver — the paper's §III-B setting: "in
// simulations that use unstructured mesh computations, dependencies on
// neighboring mesh elements make the structure of computations irregular...
// visiting neighbor elements are required and such visits involve some
// additional floating-point computations."
//
// We treat one of the FEM stand-in graphs as the mesh, pin a hot boundary
// (the first clique) and a cold boundary (the last), and run Jacobi
// relaxation sweeps with the irregular-computation kernel on all three
// runtimes, checking they produce bit-identical states and reporting the
// convergence of the residual.
package main

import (
	"fmt"
	"log"
	"math"

	"micgraph"
	"micgraph/internal/irregular"
	"micgraph/internal/sched"
)

func main() {
	mesh, err := micgraph.SuiteGraph("msdoor", 16)
	if err != nil {
		log.Fatal(err)
	}
	n := mesh.NumVertices()
	fmt.Printf("mesh: %s\n", mesh)

	// Initial temperature field: hot on the first 64 nodes, cold elsewhere.
	state := make([]float64, n)
	hot := 64
	for v := 0; v < hot; v++ {
		state[v] = 100
	}

	team := sched.NewTeam(4)
	defer team.Close()
	pool := sched.NewPool(4)
	defer pool.Close()
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 100}

	residual := func(a, b []float64) float64 {
		sum := 0.0
		for i := range a {
			d := a[i] - b[i]
			sum += d * d
		}
		return math.Sqrt(sum / float64(len(a)))
	}

	prev := state
	sweeps := 0
	for ; sweeps < 500; sweeps++ {
		next := irregular.Team(mesh, prev, 1, team, opts)
		// Dirichlet boundary: re-pin the hot nodes each sweep.
		for v := 0; v < hot; v++ {
			next[v] = 100
		}
		r := residual(next, prev)
		if sweeps%100 == 0 {
			fmt.Printf("sweep %3d: residual %.6f  mean %.4f\n", sweeps, r, mean(next))
		}
		prev = next
		if r < 1e-4 {
			break
		}
	}
	fmt.Printf("converged (or stopped) after %d sweeps; mean temperature %.4f\n", sweeps, mean(prev))

	// Cross-runtime determinism: the three runtimes must agree exactly —
	// the property that makes the paper's speedup comparison meaningful.
	in := prev
	a := irregular.Team(mesh, in, 3, team, opts)
	b := irregular.Cilk(mesh, in, 3, pool, 100)
	c := irregular.TBB(mesh, in, 3, pool, sched.SimplePartitioner, 40)
	if d := irregular.MaxAbsDiff(a, b); d != 0 {
		log.Fatalf("Cilk diverges from OpenMP by %v", d)
	}
	if d := irregular.MaxAbsDiff(a, c); d != 0 {
		log.Fatalf("TBB diverges from OpenMP by %v", d)
	}
	fmt.Println("OpenMP, Cilk and TBB sweeps are bit-identical ✓")
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
