// Approximate betweenness centrality built on the parallel BFS — the
// paper's §I points at BFS as "a generic kernel many algorithms are based
// on, including computationally expensive centrality measures" (Brandes).
//
// The heavy lifting lives in internal/centrality: the forward pass of each
// sampled source is the paper's block-accessed relaxed-queue BFS, and the
// path-count / dependency sweeps run level-parallel on the same team. On
// the pwtk stand-in the generator's injected hub vertices should surface
// with the highest centrality.
package main

import (
	"fmt"
	"log"
	"sort"

	"micgraph"
	"micgraph/internal/centrality"
	"micgraph/internal/sched"
)

func main() {
	g, err := micgraph.SuiteGraph("pwtk", 16)
	if err != nil {
		log.Fatal(err)
	}
	n := g.NumVertices()
	fmt.Printf("graph: %s\n", g)

	team := sched.NewTeam(4)
	defer team.Close()
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 32}

	// 24 evenly spaced BFS sources approximate the full Brandes sum.
	sources := centrality.EverySource(n, n/24)
	bc := centrality.Sampled(g, sources, team, opts)

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return bc[idx[a]] > bc[idx[b]] })
	fmt.Printf("top-10 betweenness (from %d BFS samples):\n", len(sources))
	for r := 0; r < 10 && r < n; r++ {
		v := idx[r]
		fmt.Printf("  #%2d vertex %6d  bc=%10.1f  degree=%d\n", r+1, v, bc[v], g.Degree(int32(v)))
	}

	med := bc[idx[n/2]]
	if bc[idx[0]] <= med {
		log.Fatal("no centrality contrast — something is wrong")
	}
	if med < 1 {
		med = 1
	}
	fmt.Printf("contrast: top vertex %.0fx the median centrality\n", bc[idx[0]]/med)

	// On a small slice of the graph, cross-check the sampled estimator
	// against exact Brandes (all sources ⇒ exactly 2x the exact values).
	small, err := micgraph.SuiteGraph("hood", 32)
	if err != nil {
		log.Fatal(err)
	}
	exact := centrality.Exact(small)
	approx := centrality.Sampled(small, centrality.AllSources(small.NumVertices()), team, opts)
	worst := 0.0
	for v := range exact {
		d := approx[v] - 2*exact[v]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("validation vs exact Brandes on %s: max abs deviation %.2e\n", small, worst)
}
