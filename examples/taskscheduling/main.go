// Task scheduling via graph coloring — the paper's §I motivating
// application: "represent the tasks of a computation as the vertices of a
// graph, and an edge connects two vertices if these two vertices cannot be
// computed simultaneously. Finding a coloring of this graph allows to
// partition the tasks into sets that can be safely computed in parallel.
// Minimizing the number of colors decreases the number of synchronization
// points."
//
// We build the conflict graph of a 2D stencil update (tasks touching the
// same cell conflict), color it with the parallel speculative algorithm,
// then actually execute the tasks phase by phase on a worker team and
// verify that no two conflicting tasks ever ran concurrently.
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"micgraph"
	"micgraph/internal/coloring"
	"micgraph/internal/sched"
)

const side = 96 // tasks form a side×side stencil grid

func main() {
	// Task i updates cell (x,y) reading its 4 neighbors: tasks conflict if
	// they are adjacent in the grid (distance-1 coloring of the grid graph
	// plus diagonals would be distance-2; the classic red-black/stencil
	// conflict graph is the 8-neighborhood).
	n := side * side
	var edges []micgraph.Edge
	id := func(x, y int) int32 { return int32(y*side + x) }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					nx, ny := x+dx, y+dy
					if nx < 0 || nx >= side || ny < 0 || ny >= side {
						continue
					}
					if id(x, y) < id(nx, ny) {
						edges = append(edges, micgraph.Edge{U: id(x, y), V: id(nx, ny)})
					}
				}
			}
		}
	}
	conflict, err := micgraph.NewGraph(n, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conflict graph: %s\n", conflict)

	res, err := micgraph.ParallelColoring(conflict, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("colored %d tasks with %d colors in %d speculative rounds\n",
		n, res.NumColors, res.Rounds)

	// Partition tasks into phases by color.
	phases := make([][]int32, res.NumColors)
	for v, c := range res.Colors {
		phases[c-1] = append(phases[c-1], int32(v))
	}

	// Execute: each phase's tasks run concurrently on the team; the cells
	// array is the shared state. A task "executes" by bumping its cell and
	// snapshotting neighbors; the running flags prove mutual exclusion of
	// conflicting tasks.
	team := sched.NewTeam(4)
	defer team.Close()
	cells := make([]int64, n)
	running := make([]atomic.Bool, n)
	violations := atomic.Int64{}

	for _, tasks := range phases {
		tasks := tasks
		team.For(len(tasks), sched.ForOptions{Policy: sched.Dynamic, Chunk: 8},
			func(lo, hi, w int) {
				for i := lo; i < hi; i++ {
					v := tasks[i]
					running[v].Store(true)
					// A conflicting neighbor running now would be a data race
					// on the stencil cells — count it.
					for _, u := range conflict.Adj(v) {
						if running[u].Load() {
							violations.Add(1)
						}
					}
					sum := cells[v]
					for _, u := range conflict.Adj(v) {
						sum += cells[u]
					}
					cells[v] = sum/int64(conflict.Degree(v)+1) + 1
					running[v].Store(false)
				}
			})
	}
	if v := violations.Load(); v != 0 {
		log.Fatalf("%d conflicting tasks overlapped — coloring failed!", v)
	}
	fmt.Printf("executed %d tasks in %d synchronized phases, zero conflicts observed\n",
		n, len(phases))
	fmt.Printf("synchronization points: %d (vs %d for one-task-at-a-time)\n",
		len(phases), n)

	// For comparison: a sequential greedy coloring gives the same phase
	// count on this structured graph.
	seq := coloring.SeqGreedy(conflict)
	fmt.Printf("sequential greedy would use %d colors\n", seq.NumColors)
}
