// Quickstart: generate one of the paper's test-graph stand-ins, color it in
// parallel, run a parallel BFS, and evaluate the paper's analytical BFS
// speedup model — the whole public API in ~50 lines.
package main

import (
	"fmt"
	"log"

	"micgraph"
)

func main() {
	// A 16x-shrunk "pwtk" (the paper's 267-level outlier graph).
	g, err := micgraph.SuiteGraph("pwtk", 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %s\n", g)

	// Sequential First-Fit greedy (Algorithm 1) vs the iterative parallel
	// speculative coloring (Algorithms 2-4).
	seq := micgraph.GreedyColoring(g)
	par, err := micgraph.ParallelColoring(g, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coloring: sequential %d colors; parallel %d colors in %d rounds (conflicts per round: %v)\n",
		seq.NumColors, par.NumColors, par.Rounds, par.Conflicts)

	// Layered parallel BFS with the paper's block-accessed relaxed queue,
	// from vertex |V|/2 as in Table I.
	source := int32(g.NumVertices() / 2)
	res, err := micgraph.ParallelBFS(g, source, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bfs: %d levels from vertex %d; %d entries processed, %d redundant (relaxed queue)\n",
		res.NumLevels, source, res.Processed, res.Duplicates)

	// The §III-C model: how much speedup this graph's level structure
	// permits on the 124-hardware-thread MIC, and where it saturates.
	for _, t := range []int{1, 13, 31, 124} {
		fmt.Printf("model: achievable BFS speedup at %3d threads = %.2f\n",
			t, micgraph.AchievableBFSSpeedup(res.Widths, t, 32))
	}
}
