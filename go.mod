module micgraph

go 1.22
