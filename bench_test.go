package micgraph

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper (regenerating the experiment end-to-end on an 8x-shrunk suite,
// so `go test -bench .` finishes in minutes; use cmd/micbench -scale 1 for
// the paper-scale numbers recorded in EXPERIMENTS.md), plus microbenchmarks
// of the real parallel kernels and the simulator itself.

import (
	"context"
	"sync"
	"testing"

	"micgraph/internal/bfs"
	"micgraph/internal/centrality"
	"micgraph/internal/coloring"
	"micgraph/internal/components"
	"micgraph/internal/core"
	"micgraph/internal/gen"
	"micgraph/internal/irregular"
	"micgraph/internal/mic"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

const benchScale = 8

var (
	benchSuiteOnce sync.Once
	benchSuite     *core.Suite
)

func getBenchSuite(b *testing.B) *core.Suite {
	b.Helper()
	benchSuiteOnce.Do(func() {
		s, err := core.NewSuite(benchScale)
		if err != nil {
			panic(err)
		}
		benchSuite = s
	})
	return benchSuite
}

func benchExperiment(b *testing.B, run func(*core.Suite) *core.Experiment) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp := run(s)
		if len(exp.Series) == 0 && len(exp.Rows) == 0 {
			b.Fatal("empty experiment")
		}
	}
}

// --- One benchmark per table/figure -------------------------------------

func BenchmarkTable1(b *testing.B) {
	benchExperiment(b, core.Table1)
}

func BenchmarkFig1aColoringOpenMP(b *testing.B) {
	knf := mic.KNF()
	benchExperiment(b, func(s *core.Suite) *core.Experiment { return core.Fig1a(s, knf) })
}

func BenchmarkFig1bColoringCilk(b *testing.B) {
	knf := mic.KNF()
	benchExperiment(b, func(s *core.Suite) *core.Experiment { return core.Fig1b(s, knf) })
}

func BenchmarkFig1cColoringTBB(b *testing.B) {
	knf := mic.KNF()
	benchExperiment(b, func(s *core.Suite) *core.Experiment { return core.Fig1c(s, knf) })
}

func BenchmarkFig2ColoringShuffled(b *testing.B) {
	knf := mic.KNF()
	benchExperiment(b, func(s *core.Suite) *core.Experiment { return core.Fig2(s, knf) })
}

func BenchmarkFig3aIrregularOpenMP(b *testing.B) {
	knf := mic.KNF()
	benchExperiment(b, func(s *core.Suite) *core.Experiment { return core.Fig3a(s, knf) })
}

func BenchmarkFig3bIrregularCilk(b *testing.B) {
	knf := mic.KNF()
	benchExperiment(b, func(s *core.Suite) *core.Experiment { return core.Fig3b(s, knf) })
}

func BenchmarkFig3cIrregularTBB(b *testing.B) {
	knf := mic.KNF()
	benchExperiment(b, func(s *core.Suite) *core.Experiment { return core.Fig3c(s, knf) })
}

func BenchmarkFig4aBFSPwtk(b *testing.B) {
	knf := mic.KNF()
	benchExperiment(b, func(s *core.Suite) *core.Experiment { return core.Fig4a(s, knf) })
}

func BenchmarkFig4bBFSInline1(b *testing.B) {
	knf := mic.KNF()
	benchExperiment(b, func(s *core.Suite) *core.Experiment { return core.Fig4b(s, knf) })
}

func BenchmarkFig4cBFSAllMIC(b *testing.B) {
	knf := mic.KNF()
	benchExperiment(b, func(s *core.Suite) *core.Experiment { return core.Fig4c(s, knf) })
}

func BenchmarkFig4dBFSHost(b *testing.B) {
	host := mic.HostXeon()
	benchExperiment(b, func(s *core.Suite) *core.Experiment { return core.Fig4d(s, host) })
}

// --- Real parallel kernels (goroutine execution, not simulation) ---------

func benchGraph(b *testing.B, name string) *Graph {
	b.Helper()
	g, err := SuiteGraph(name, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkKernelSeqGreedyColoring(b *testing.B) {
	g := benchGraph(b, "hood")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := coloring.SeqGreedy(g); res.NumColors == 0 {
			b.Fatal("no colors")
		}
	}
}

func BenchmarkKernelColoringTeamDynamic(b *testing.B) {
	g := benchGraph(b, "hood")
	team := sched.NewTeam(4)
	defer team.Close()
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 100}
	scratch := coloring.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := scratch.ColorTeam(nil, g, team, opts)
		if err != nil || res.NumColors == 0 {
			b.Fatal("no colors")
		}
	}
}

func BenchmarkKernelColoringCilkHolder(b *testing.B) {
	g := benchGraph(b, "hood")
	pool := sched.NewPool(4)
	defer pool.Close()
	scratch := coloring.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := scratch.ColorCilk(nil, g, pool, 100, coloring.CilkHolder)
		if err != nil || res.NumColors == 0 {
			b.Fatal("no colors")
		}
	}
}

func BenchmarkKernelColoringTBBSimple(b *testing.B) {
	g := benchGraph(b, "hood")
	pool := sched.NewPool(4)
	defer pool.Close()
	scratch := coloring.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := scratch.ColorTBB(nil, g, pool, sched.SimplePartitioner, 40)
		if err != nil || res.NumColors == 0 {
			b.Fatal("no colors")
		}
	}
}

func BenchmarkKernelBFSSequential(b *testing.B) {
	g := benchGraph(b, "pwtk")
	src := int32(g.NumVertices() / 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := bfs.Sequential(g, src); res.NumLevels == 0 {
			b.Fatal("no levels")
		}
	}
}

func BenchmarkKernelBFSBlockRelaxed(b *testing.B) {
	g := benchGraph(b, "pwtk")
	src := int32(g.NumVertices() / 2)
	team := sched.NewTeam(4)
	defer team.Close()
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 32}
	scratch := bfs.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := scratch.BlockTeam(nil, g, src, team, opts, 32, true)
		if err != nil || res.NumLevels == 0 {
			b.Fatal("no levels")
		}
	}
}

func BenchmarkKernelBFSBag(b *testing.B) {
	g := benchGraph(b, "pwtk")
	src := int32(g.NumVertices() / 2)
	pool := sched.NewPool(4)
	defer pool.Close()
	scratch := bfs.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := scratch.BagCilk(nil, g, src, pool, 0)
		if err != nil || res.NumLevels == 0 {
			b.Fatal("no levels")
		}
	}
}

func BenchmarkKernelBFSTLS(b *testing.B) {
	g := benchGraph(b, "pwtk")
	src := int32(g.NumVertices() / 2)
	team := sched.NewTeam(4)
	defer team.Close()
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 32}
	scratch := bfs.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := scratch.TLSTeam(nil, g, src, team, opts)
		if err != nil || res.NumLevels == 0 {
			b.Fatal("no levels")
		}
	}
}

func BenchmarkKernelIrregularIter1(b *testing.B) {
	benchIrregular(b, 1)
}

func BenchmarkKernelIrregularIter10(b *testing.B) {
	benchIrregular(b, 10)
}

func benchIrregular(b *testing.B, iter int) {
	g := benchGraph(b, "msdoor")
	state := irregular.InitialState(g.NumVertices())
	team := sched.NewTeam(4)
	defer team.Close()
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := irregular.Team(g, state, iter, team, opts)
		if out[0] < 0 {
			b.Fatal("bad state")
		}
	}
}

// --- Simulator and generator benchmarks ----------------------------------

func BenchmarkSimulateColoring121Threads(b *testing.B) {
	m := mic.KNF()
	g := benchGraph(b, "ldoor")
	tr := mic.ColoringTrace(m, g, mic.NaturalOrder, 121)
	cfg := mic.Config{Kind: mic.OpenMP, Policy: sched.Dynamic, Chunk: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mic.Simulate(m, cfg, 121, tr) <= 0 {
			b.Fatal("bad time")
		}
	}
}

func BenchmarkTraceBuildBFS(b *testing.B) {
	m := mic.KNF()
	g := benchGraph(b, "ldoor")
	src := int32(g.NumVertices() / 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := mic.BFSTrace(m, g, src, mic.NaturalOrder, mic.BFSBlockRelaxed, 32)
		if tr.NumItems() == 0 {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkGenerateSuiteGraph(b *testing.B) {
	cfg, err := gen.SuiteConfig("bmw3_2")
	if err != nil {
		b.Fatal(err)
	}
	scaled := gen.Scaled(cfg, benchScale)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Mesh(scaled); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension kernels ----------------------------------------------------

func BenchmarkKernelHybridBFS(b *testing.B) {
	g := benchGraph(b, "pwtk")
	src := int32(g.NumVertices() / 2)
	team := sched.NewTeam(4)
	defer team.Close()
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 32}
	scratch := bfs.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := scratch.Hybrid(nil, g, src, team, opts, bfs.HybridConfig{})
		if err != nil || res.NumLevels == 0 {
			b.Fatal("no levels")
		}
	}
}

func BenchmarkKernelPageRank(b *testing.B) {
	g := benchGraph(b, "auto")
	team := sched.NewTeam(4)
	defer team.Close()
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 100}
	cfg := irregular.PageRankOptions{MaxIter: 20, Tolerance: 1e-12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rank, _ := irregular.PageRank(g, team, opts, cfg); len(rank) == 0 {
			b.Fatal("no ranks")
		}
	}
}

func BenchmarkKernelBetweenness8Sources(b *testing.B) {
	g := benchGraph(b, "hood")
	team := sched.NewTeam(4)
	defer team.Close()
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 32}
	sources := centrality.EverySource(g.NumVertices(), g.NumVertices()/8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bc := centrality.Sampled(g, sources, team, opts); len(bc) == 0 {
			b.Fatal("no centrality")
		}
	}
}

func BenchmarkKernelComponentsLabelProp(b *testing.B) {
	g := benchGraph(b, "msdoor")
	team := sched.NewTeam(4)
	defer team.Close()
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 64}
	scratch := components.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := scratch.LabelPropagation(nil, g, team, opts)
		if err != nil || res.Count == 0 {
			b.Fatal("no components")
		}
	}
}

func BenchmarkKernelComponentsPointerJump(b *testing.B) {
	g := benchGraph(b, "msdoor")
	team := sched.NewTeam(4)
	defer team.Close()
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 64}
	scratch := components.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := scratch.PointerJumping(nil, g, team, opts)
		if err != nil || res.Count == 0 {
			b.Fatal("no components")
		}
	}
}

func BenchmarkKernelColoringSmallestLast(b *testing.B) {
	g := benchGraph(b, "bmw3_2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		order := coloring.SmallestLast(g)
		if res := coloring.SeqGreedyOrder(g, order); res.NumColors == 0 {
			b.Fatal("no colors")
		}
	}
}

func BenchmarkReorderRCM(b *testing.B) {
	g := benchGraph(b, "hood")
	shuffled := g.Shuffled(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if perm := RCMPermutation(shuffled); len(perm) == 0 {
			b.Fatal("no permutation")
		}
	}
}

func BenchmarkAblationBlockSize(b *testing.B) {
	s := getBenchSuite(b)
	knf := mic.KNF()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e := core.AblBlockSize(s, knf); len(e.Series) == 0 {
			b.Fatal("empty")
		}
	}
}

// --- Telemetry overhead guards -------------------------------------------
//
// These pairs demonstrate the acceptance criterion that telemetry is
// zero-cost when off: the Off variants run the exact default (nil counters /
// Nop recorder / nil timeline) paths, the On variants the instrumented ones.
// Compare with `go test -bench 'Telemetry.*' -count 5`.

func benchTeamLoop(b *testing.B, counters *telemetry.Counters) {
	g := benchGraph(b, "hood")
	team := sched.NewTeam(4)
	defer team.Close()
	team.SetCounters(counters)
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := coloring.ColorTeam(g, team, opts); res.NumColors == 0 {
			b.Fatal("no colors")
		}
	}
}

func BenchmarkTelemetryCountersOff(b *testing.B) {
	benchTeamLoop(b, nil)
}

func BenchmarkTelemetryCountersOn(b *testing.B) {
	benchTeamLoop(b, telemetry.NewCounters(4))
}

func benchRecordedBFS(b *testing.B, ctx context.Context) {
	g := benchGraph(b, "pwtk")
	src := int32(g.NumVertices() / 2)
	team := sched.NewTeam(4)
	defer team.Close()
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bfs.BlockTeamCtx(ctx, g, src, team, opts, 32, true)
		if err != nil || res.NumLevels == 0 {
			b.Fatal("bad traversal")
		}
	}
}

func BenchmarkTelemetryRecorderOff(b *testing.B) {
	benchRecordedBFS(b, context.Background())
}

func BenchmarkTelemetryRecorderOn(b *testing.B) {
	rec := telemetry.NewMemRecorder()
	benchRecordedBFS(b, telemetry.WithRecorder(context.Background(), rec))
}

func benchSimObserved(b *testing.B, tl *telemetry.Timeline, st *mic.SimStats) {
	m := mic.KNF()
	g := benchGraph(b, "ldoor")
	tr := mic.ColoringTrace(m, g, mic.NaturalOrder, 121)
	cfg := mic.Config{Kind: mic.OpenMP, Policy: sched.Dynamic, Chunk: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tl != nil {
			tl.Reset()
		}
		if mic.SimulateObserved(m, cfg, 121, tr, tl, st) <= 0 {
			b.Fatal("bad time")
		}
	}
}

func BenchmarkTelemetrySimulateOff(b *testing.B) {
	benchSimObserved(b, nil, nil)
}

func BenchmarkTelemetrySimulateOn(b *testing.B) {
	benchSimObserved(b, telemetry.NewTimeline(0), &mic.SimStats{})
}
