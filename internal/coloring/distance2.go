package coloring

import (
	"fmt"
	"sync/atomic"

	"micgraph/internal/graph"
	"micgraph/internal/sched"
)

// Distance-2 coloring: no two vertices at distance ≤ 2 share a color. The
// paper motivates it as the variant used to compress Jacobian and Hessian
// matrices in sparse linear algebra (§I). The greedy algorithm is Algorithm
// 1 with the forbidden set extended to neighbors-of-neighbors, and the
// speculative parallel version follows the same tentative/conflict scheme as
// distance-1.

// SeqGreedyD2 colors g so that any two vertices with a common neighbor (or
// an edge) receive different colors, visiting vertices in natural order.
func SeqGreedyD2(g *graph.Graph) Result {
	n := g.NumVertices()
	colors := make([]int32, n)
	// Forbidden colors can reach Δ² + 1, but are marked sparsely; use a map
	// of marks sized by the worst case actually touched.
	forbidden := make(map[int32]int32, 64)
	maxColor := int32(0)
	for v := int32(0); int(v) < n; v++ {
		mark := v + 1 // +1: the map's zero value must not match vertex 0
		for _, w := range g.Adj(v) {
			if c := colors[w]; c > 0 {
				forbidden[c] = mark
			}
			for _, x := range g.Adj(w) {
				if x == v {
					continue
				}
				if c := colors[x]; c > 0 {
					forbidden[c] = mark
				}
			}
		}
		c := int32(1)
		for forbidden[c] == mark {
			c++
		}
		colors[v] = c
		if c > maxColor {
			maxColor = c
		}
	}
	return Result{Colors: colors, NumColors: int(maxColor), Rounds: 1}
}

// ValidateD2 checks a distance-2 coloring: proper at distance 1 and no two
// distinct neighbors of any vertex share a color.
func ValidateD2(g *graph.Graph, colors []int32) error {
	if err := Validate(g, colors); err != nil {
		return err
	}
	seen := make(map[int32]int32)
	for v := 0; v < g.NumVertices(); v++ {
		clear(seen)
		for _, w := range g.Adj(int32(v)) {
			c := colors[w]
			if prev, ok := seen[c]; ok {
				return fmt.Errorf("coloring: vertices %d and %d share color %d at distance 2 via %d",
					prev, w, c, v)
			}
			seen[c] = w
		}
	}
	return nil
}

// ColorTeamD2 runs iterative parallel speculative distance-2 coloring on a
// Team. The structure mirrors ColorTeam with the extended forbidden set and
// the distance-2 conflict check.
func ColorTeamD2(g *graph.Graph, team *sched.Team, opts sched.ForOptions) Result {
	n := g.NumVertices()
	colors := make([]int32, n)
	fcs := make([]map[int32]int32, team.Workers())
	for i := range fcs {
		fcs[i] = make(map[int32]int32, 64)
	}
	visit := graph.IdentityPermutation(n)
	res := Result{Colors: colors}
	maxColor := int32(0)

	for len(visit) > 0 {
		res.Rounds++
		locals := make([]int32, team.Workers())
		team.For(len(visit), opts, func(lo, hi, w int) {
			fc := fcs[w]
			localMax := locals[w]
			for i := lo; i < hi; i++ {
				v := visit[i]
				mark := v + 1 // +1: the map's zero value must not match vertex 0
				for _, u := range g.Adj(v) {
					if c := atomic.LoadInt32(&colors[u]); c > 0 {
						fc[c] = mark
					}
					for _, x := range g.Adj(u) {
						if x == v {
							continue
						}
						if c := atomic.LoadInt32(&colors[x]); c > 0 {
							fc[c] = mark
						}
					}
				}
				c := int32(1)
				for fc[c] == mark {
					c++
				}
				atomic.StoreInt32(&colors[v], c)
				if c > localMax {
					localMax = c
				}
			}
			locals[w] = localMax
		})
		for _, lm := range locals {
			if lm > maxColor {
				maxColor = lm
			}
		}

		next := make([]int32, len(visit))
		var count atomic.Int64
		team.For(len(visit), opts, func(lo, hi, w int) {
			for i := lo; i < hi; i++ {
				v := visit[i]
				if d2ConflictOne(g, colors, v) {
					appendConflict(next, &count, v)
				}
			}
		})
		visit = next[:count.Load()]
		res.Conflicts = append(res.Conflicts, len(visit))
	}
	res.NumColors = int(maxColor)
	return res
}

// d2ConflictOne reports whether v collides with any vertex at distance ≤ 2
// that has a larger id (the smaller endpoint is recolored, as at distance 1).
func d2ConflictOne(g *graph.Graph, colors []int32, v int32) bool {
	cv := atomic.LoadInt32(&colors[v])
	for _, u := range g.Adj(v) {
		if cv == atomic.LoadInt32(&colors[u]) && v < u {
			return true
		}
		for _, x := range g.Adj(u) {
			if x == v {
				continue
			}
			if cv == atomic.LoadInt32(&colors[x]) && v < x {
				return true
			}
		}
	}
	return false
}
