package coloring

import (
	"context"
	"sync/atomic"
	"time"

	"micgraph/internal/graph"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

// Scratch owns every reusable buffer of the parallel coloring variants:
// the color array, the per-worker forbidden-color arrays, the
// double-buffered visit/conflict arrays, and the per-worker color maxima.
// A run through a Scratch allocates nothing on its hot path in steady
// state (pinned by the alloc-regression tests); the first run on a new
// graph shape grows the buffers once.
//
// A Scratch is single-run: one coloring at a time. The returned Result
// aliases scratch-owned memory (Colors, Conflicts), valid until the next
// run on the same Scratch. The package-level entry points keep their
// allocate-per-call semantics by running on a throwaway Scratch.
type Scratch struct {
	colors         []int32
	fcs            []localFC
	fcLen          int
	visitA, visitB []int32
	locals         []paddedMax
	conflicts      []int

	// Per-round state read by the resident loop bodies below, so that
	// steady-state rounds dispatch with zero closure allocations: vs is the
	// round's visit set, nextBuf the conflict target, count the shared
	// fetch-and-add cursor into it.
	xadj    []int64
	adjr    []int32
	vs      []int32
	nextBuf []int32
	count   atomic.Int64

	tentTeam func(lo, hi, w int)
	confTeam func(lo, hi, w int)
	tentPool func(lo, hi int, c *sched.Ctx)
	confPool func(lo, hi int, c *sched.Ctx)
	aff      sched.AffinityState // TBB affinity map (resident, escapes)
}

// ensureBodies lazily creates the resident loop bodies (they capture only
// s, so one set serves every run).
func (s *Scratch) ensureBodies() {
	if s.tentTeam != nil {
		return
	}
	tent := func(lo, hi, w int) {
		fc := s.fcs[w]
		localMax := s.locals[w].v
		for i := lo; i < hi; i++ {
			if c := tentativeRaw(s.xadj, s.adjr, s.colors, fc, s.vs[i]); c > localMax {
				localMax = c
			}
		}
		s.locals[w].v = localMax
	}
	conf := func(lo, hi, w int) {
		for i := lo; i < hi; i++ {
			if v := s.vs[i]; conflictRaw(s.xadj, s.adjr, s.colors, v) {
				appendConflict(s.nextBuf, &s.count, v)
			}
		}
	}
	s.tentTeam = tent
	s.confTeam = conf
	s.tentPool = func(lo, hi int, c *sched.Ctx) { tent(lo, hi, c.Worker()) }
	s.confPool = func(lo, hi int, c *sched.Ctx) { conf(lo, hi, c.Worker()) }
}

// NewScratch returns an empty Scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// paddedMax keeps per-worker color maxima off each other's cache lines.
type paddedMax struct {
	v int32
	_ [60]byte
}

// ensure sizes and resets every buffer for a run over g with the given
// worker count. Forbidden-color arrays are reset to the fresh state, so a
// recycled Scratch colors exactly like a new one.
func (s *Scratch) ensure(g *graph.Graph, workers int) {
	n := g.NumVertices()
	if cap(s.colors) < n {
		s.colors = make([]int32, n)
		s.visitA = make([]int32, n)
		s.visitB = make([]int32, n)
	}
	s.colors = s.colors[:n]
	s.visitA = s.visitA[:n]
	s.visitB = s.visitB[:n]
	for i := range s.colors {
		s.colors[i] = 0
		s.visitA[i] = int32(i)
	}
	fcLen := g.MaxDegree() + 2
	if len(s.fcs) < workers || s.fcLen < fcLen {
		s.fcs = make([]localFC, workers)
		for i := range s.fcs {
			s.fcs[i] = make(localFC, fcLen)
		}
		s.fcLen = fcLen
	}
	for i := range s.fcs {
		fc := s.fcs[i]
		for j := range fc {
			fc[j] = -1
		}
	}
	if len(s.locals) < workers {
		s.locals = make([]paddedMax, workers)
	}
	s.conflicts = s.conflicts[:0]
}

// tentativeRaw speculatively colors v over the raw CSR arrays: gather
// neighbor colors (atomically, they may be written concurrently), then
// First Fit. Returns the color.
func tentativeRaw(xadj []int64, adj, colors []int32, fc localFC, v int32) int32 {
	for j := xadj[v]; j < xadj[v+1]; j++ {
		if c := atomic.LoadInt32(&colors[adj[j]]); c > 0 {
			fc[c] = v
		}
	}
	c := int32(1)
	for fc[c] == v {
		c++
	}
	atomic.StoreInt32(&colors[v], c)
	return c
}

// conflictRaw checks v against its neighbors over the raw CSR arrays with
// plain loads: the conflict-detection loop starts only after the
// tentative-coloring loop's barrier, and nothing writes colors while it
// runs, so the happens-before edge of the barrier makes unsynchronised
// reads exact here — the branch-avoiding form of Algorithm 4.
func conflictRaw(xadj []int64, adj, colors []int32, v int32) bool {
	cv := colors[v]
	for j := xadj[v]; j < xadj[v+1]; j++ {
		if w := adj[j]; cv == colors[w] && v < w {
			return true
		}
	}
	return false
}

// maxOf reduces the per-worker color maxima.
func (s *Scratch) maxOf(workers int) int32 {
	out := int32(0)
	for w := 0; w < workers; w++ {
		if s.locals[w].v > out {
			out = s.locals[w].v
		}
	}
	return out
}

// ColorTeam runs the iterative speculative coloring on an OpenMP-style
// Team using the scratch's pooled state. See ColorTeamCtx for semantics.
func (s *Scratch) ColorTeam(ctx context.Context, g *graph.Graph, team *sched.Team, opts sched.ForOptions) (Result, error) {
	workers := team.Workers()
	opts = opts.WithSerialCutoff(workers)
	s.ensure(g, workers)
	s.ensureBodies()
	s.xadj, s.adjr = g.Xadj(), g.AdjRaw()
	colors := s.colors
	visit, next := s.visitA, s.visitB
	res := Result{Colors: colors, Conflicts: s.conflicts}
	maxColor := int32(0)
	rec := telemetry.FromContext(ctx)

	for len(visit) > 0 {
		res.Rounds++
		var roundStart time.Time
		if telemetry.Active(rec) {
			roundStart = telemetry.Now(rec)
		}
		// Tentative coloring (Algorithm 3) with per-worker local maxima,
		// reduced by the main goroutine afterwards.
		for w := 0; w < workers; w++ {
			s.locals[w].v = 0
		}
		vs := visit
		s.vs = vs
		err := team.ForCtx(ctx, len(vs), opts, s.tentTeam)
		if lm := s.maxOf(workers); lm > maxColor {
			maxColor = lm
		}
		if err != nil {
			res.NumColors = int(maxColor)
			return res, err
		}

		// Conflict detection (Algorithm 4) into the other visit buffer via
		// the paper's atomic fetch-and-add index reservation.
		s.nextBuf = next
		s.count.Store(0)
		err = team.ForCtx(ctx, len(vs), opts, s.confTeam)
		if err != nil {
			res.NumColors = int(maxColor)
			return res, err
		}
		if telemetry.Active(rec) {
			rec.Record(roundSample(rec, g, res.Rounds-1, vs, int(s.count.Load()), roundStart))
		}
		visit, next = next[:s.count.Load()], vs[:cap(vs)]
		res.Conflicts = append(res.Conflicts, len(visit))
	}
	s.conflicts = res.Conflicts[:0]
	res.NumColors = int(maxColor)
	return res, nil
}

// ColorCilk runs the iterative speculative coloring as cilk_for loops on a
// work-stealing Pool using the scratch's pooled state. Both Cilk variants
// read the per-worker forbidden-color arrays from the scratch — the
// holder's lazy per-worker views are exactly the allocation the pooled
// scratch exists to eliminate, so here they differ only in name. See
// ColorCilkCtx for semantics.
func (s *Scratch) ColorCilk(ctx context.Context, g *graph.Graph, pool *sched.Pool, grain int, variant CilkVariant) (Result, error) {
	_ = variant
	workers := pool.Workers()
	s.ensure(g, workers)
	s.ensureBodies()
	s.xadj, s.adjr = g.Xadj(), g.AdjRaw()
	colors := s.colors
	visit, next := s.visitA, s.visitB
	res := Result{Colors: colors, Conflicts: s.conflicts}
	maxColor := int32(0)
	rec := telemetry.FromContext(ctx)

	for len(visit) > 0 {
		res.Rounds++
		vs := visit
		var roundStart time.Time
		if telemetry.Active(rec) {
			roundStart = telemetry.Now(rec)
		}
		for w := 0; w < workers; w++ {
			s.locals[w].v = 0
		}
		s.vs = vs
		err := pool.ParallelForCtx(ctx, len(vs), grain, s.tentPool)
		if lm := s.maxOf(workers); lm > maxColor {
			maxColor = lm
		}
		if err != nil {
			res.NumColors = int(maxColor)
			return res, err
		}

		s.nextBuf = next
		s.count.Store(0)
		err = pool.ParallelForCtx(ctx, len(vs), grain, s.confPool)
		if err != nil {
			res.NumColors = int(maxColor)
			return res, err
		}
		if telemetry.Active(rec) {
			rec.Record(roundSample(rec, g, res.Rounds-1, vs, int(s.count.Load()), roundStart))
		}
		visit, next = next[:s.count.Load()], vs[:cap(vs)]
		res.Conflicts = append(res.Conflicts, len(visit))
	}
	s.conflicts = res.Conflicts[:0]
	res.NumColors = int(maxColor)
	return res, nil
}

// ColorTBB runs the iterative speculative coloring as TBB parallel_for
// calls over blocked ranges using the scratch's pooled state (the scratch
// plays the role of the enumerable thread-specific storage and the
// combinable max). See ColorTBBCtx for semantics.
func (s *Scratch) ColorTBB(ctx context.Context, g *graph.Graph, pool *sched.Pool, part sched.Partitioner, grain int) (Result, error) {
	workers := pool.Workers()
	s.ensure(g, workers)
	s.ensureBodies()
	s.xadj, s.adjr = g.Xadj(), g.AdjRaw()
	colors := s.colors
	visit, next := s.visitA, s.visitB
	res := Result{Colors: colors, Conflicts: s.conflicts}
	maxColor := int32(0)
	rec := telemetry.FromContext(ctx)

	for len(visit) > 0 {
		res.Rounds++
		vs := visit
		var roundStart time.Time
		if telemetry.Active(rec) {
			roundStart = telemetry.Now(rec)
		}
		for w := 0; w < workers; w++ {
			s.locals[w].v = 0
		}
		s.vs = vs
		err := sched.ParallelForRangeCtx(ctx, pool, sched.Range{Lo: 0, Hi: len(vs), Grain: grain}, part, &s.aff, s.tentPool)
		if lm := s.maxOf(workers); lm > maxColor {
			maxColor = lm
		}
		if err != nil {
			res.NumColors = int(maxColor)
			return res, err
		}

		s.nextBuf = next
		s.count.Store(0)
		err = sched.ParallelForRangeCtx(ctx, pool, sched.Range{Lo: 0, Hi: len(vs), Grain: grain}, part, &s.aff, s.confPool)
		if err != nil {
			res.NumColors = int(maxColor)
			return res, err
		}
		if telemetry.Active(rec) {
			rec.Record(roundSample(rec, g, res.Rounds-1, vs, int(s.count.Load()), roundStart))
		}
		visit, next = next[:s.count.Load()], vs[:cap(vs)]
		res.Conflicts = append(res.Conflicts, len(visit))
	}
	s.conflicts = res.Conflicts[:0]
	res.NumColors = int(maxColor)
	return res, nil
}
