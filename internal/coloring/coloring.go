// Package coloring implements the paper's graph-coloring kernels: the
// sequential First-Fit greedy algorithm (Algorithm 1) and the iterative
// parallel speculative coloring of Gebremedhin–Manne/Bozdağ et al.
// (Algorithms 2–4) in three runtime flavours matching the paper's OpenMP,
// Cilk Plus and TBB implementations, plus distance-2 coloring (mentioned in
// §I as the Jacobian-compression variant).
//
// Colors are 1-based int32s; 0 means "not yet colored". A coloring is valid
// when no edge joins two vertices of the same color.
//
// Shared color arrays are accessed with sync/atomic loads and stores: the
// speculative algorithm intentionally lets concurrent rounds read stale
// neighbor colors (the conflicts are detected and repaired afterwards), and
// atomics give us the paper's "benign race" semantics without undefined
// behaviour in the Go memory model.
package coloring

import (
	"fmt"

	"micgraph/internal/graph"
)

// Result reports the outcome of a coloring run.
type Result struct {
	Colors    []int32 // per-vertex color, 1-based
	NumColors int     // maximum color used
	Rounds    int     // speculative rounds executed (1 for sequential)
	Conflicts []int   // per-round conflict counts (empty for sequential)
}

// SeqGreedy colors g with the sequential First-Fit greedy algorithm
// (Algorithm 1), visiting vertices in natural order. It uses at most Δ+1
// colors.
func SeqGreedy(g *graph.Graph) Result {
	return SeqGreedyOrder(g, nil)
}

// SeqGreedyOrder colors g visiting vertices in the given order (natural
// order if order is nil). The order must be a permutation of the vertices.
func SeqGreedyOrder(g *graph.Graph, order []int32) Result {
	n := g.NumVertices()
	colors := make([]int32, n)
	// forbidden[c] == v marks color c as in use by a neighbor of v.
	forbidden := make([]int32, g.MaxDegree()+2)
	for i := range forbidden {
		forbidden[i] = -1
	}
	maxColor := int32(0)
	for i := 0; i < n; i++ {
		v := int32(i)
		if order != nil {
			v = order[i]
		}
		for _, w := range g.Adj(v) {
			if c := colors[w]; c > 0 {
				forbidden[c] = v
			}
		}
		c := int32(1)
		for forbidden[c] == v {
			c++
		}
		colors[v] = c
		if c > maxColor {
			maxColor = c
		}
	}
	return Result{Colors: colors, NumColors: int(maxColor), Rounds: 1}
}

// Validate checks that colors is a proper coloring of g: every vertex
// colored with a positive color and no monochromatic edge. It returns the
// first violation found.
func Validate(g *graph.Graph, colors []int32) error {
	n := g.NumVertices()
	if len(colors) != n {
		return fmt.Errorf("coloring: %d colors for %d vertices", len(colors), n)
	}
	for v := 0; v < n; v++ {
		if colors[v] <= 0 {
			return fmt.Errorf("coloring: vertex %d uncolored", v)
		}
		for _, w := range g.Adj(int32(v)) {
			if colors[v] == colors[w] {
				return fmt.Errorf("coloring: edge (%d,%d) monochromatic with color %d", v, w, colors[v])
			}
		}
	}
	return nil
}

// CountColors returns the maximum color in use.
func CountColors(colors []int32) int {
	m := int32(0)
	for _, c := range colors {
		if c > m {
			m = c
		}
	}
	return int(m)
}
