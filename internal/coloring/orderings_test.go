package coloring

import (
	"testing"
	"testing/quick"

	"micgraph/internal/gen"
	"micgraph/internal/graph"
)

func isPermutation(p []int32, n int) bool {
	if len(p) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range p {
		if v < 0 || int(v) >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestOrderingsArePermutations(t *testing.T) {
	property := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%100) + 1
		m := int(mRaw % 400)
		g := randomGraph(seed, n, m)
		return isPermutation(NaturalOrder(g), n) &&
			isPermutation(LargestFirst(g), n) &&
			isPermutation(SmallestLast(g), n) &&
			isPermutation(IncidenceDegree(g), n)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLargestFirstSorted(t *testing.T) {
	g := randomGraph(9, 80, 300)
	order := LargestFirst(g)
	for i := 1; i < len(order); i++ {
		if g.Degree(order[i]) > g.Degree(order[i-1]) {
			t.Fatalf("degrees increase at position %d", i)
		}
	}
}

func TestSmallestLastDegeneracyBound(t *testing.T) {
	// On a tree (degeneracy 1), smallest-last greedy must use exactly 2
	// colors no matter how high the max degree is.
	b := graph.NewBuilder(64)
	for i := int32(1); i < 64; i++ {
		b.AddEdge(i, (i-1)/2) // complete binary tree
	}
	tree := b.Build()
	res := SeqGreedyOrder(tree, SmallestLast(tree))
	if err := Validate(tree, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 2 {
		t.Errorf("smallest-last on a tree used %d colors, want 2", res.NumColors)
	}
}

func TestOrderingsValidAndBounded(t *testing.T) {
	g, err := gen.Mesh(gen.Scaled(mustCfg(t, "bmw3_2"), 16))
	if err != nil {
		t.Fatal(err)
	}
	natural := SeqGreedy(g).NumColors
	orders := map[string][]int32{
		"largest-first":    LargestFirst(g),
		"smallest-last":    SmallestLast(g),
		"incidence-degree": IncidenceDegree(g),
	}
	for name, order := range orders {
		res := SeqGreedyOrder(g, order)
		if err := Validate(g, res.Colors); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The clique graph's chromatic number is CliqueSize; no sane
		// ordering should be worse than natural by more than a sliver.
		if res.NumColors > natural+2 {
			t.Errorf("%s used %d colors vs natural %d", name, res.NumColors, natural)
		}
	}
	// Smallest-last should be at least as good as natural here (it is the
	// strongest of the classical heuristics on mesh-like graphs).
	sl := SeqGreedyOrder(g, SmallestLast(g))
	if sl.NumColors > natural {
		t.Errorf("smallest-last (%d) worse than natural (%d)", sl.NumColors, natural)
	}
}

func TestIncidenceDegreeConnectivity(t *testing.T) {
	// On a connected graph, after the first vertex every ordered vertex
	// should have at least one already-ordered neighbor (incidence > 0) —
	// the defining property of the ordering.
	g := gen.RingOfCliques(30, 5)
	order := IncidenceDegree(g)
	placed := make([]bool, g.NumVertices())
	placed[order[0]] = true
	for _, v := range order[1:] {
		ok := false
		for _, w := range g.Adj(v) {
			if placed[w] {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("vertex %d ordered with no ordered neighbor", v)
		}
		placed[v] = true
	}
}

func TestOrderingsEmptyAndSingle(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	if len(SmallestLast(empty)) != 0 || len(IncidenceDegree(empty)) != 0 || len(LargestFirst(empty)) != 0 {
		t.Error("non-empty ordering for empty graph")
	}
	one := graph.NewBuilder(1).Build()
	if len(SmallestLast(one)) != 1 || SmallestLast(one)[0] != 0 {
		t.Error("singleton ordering wrong")
	}
}
