package coloring

import (
	"testing"
	"testing/quick"

	"micgraph/internal/gen"
	"micgraph/internal/graph"
	"micgraph/internal/sched"
	"micgraph/internal/xrand"
)

func randomGraph(seed uint64, n, m int) *graph.Graph {
	r := xrand.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func TestSeqGreedyPath(t *testing.T) {
	g := gen.Chain(10)
	res := SeqGreedy(g)
	if err := Validate(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 2 {
		t.Errorf("path colored with %d colors, want 2", res.NumColors)
	}
}

func TestSeqGreedyComplete(t *testing.T) {
	g := gen.Complete(9)
	res := SeqGreedy(g)
	if err := Validate(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 9 {
		t.Errorf("K9 colored with %d colors, want 9", res.NumColors)
	}
}

func TestSeqGreedyEmptyAndSingle(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	res := SeqGreedy(empty)
	if res.NumColors != 0 || len(res.Colors) != 0 {
		t.Errorf("empty graph: %+v", res)
	}
	one := graph.NewBuilder(1).Build()
	res = SeqGreedy(one)
	if res.NumColors != 1 {
		t.Errorf("isolated vertex colored with %d colors, want 1", res.NumColors)
	}
}

func TestSeqGreedyBound(t *testing.T) {
	// First Fit never exceeds Δ+1 colors, on any graph and any order.
	property := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%150) + 1
		m := int(mRaw % 900)
		g := randomGraph(seed, n, m)
		res := SeqGreedy(g)
		if Validate(g, res.Colors) != nil {
			return false
		}
		return res.NumColors <= g.MaxDegree()+1
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSeqGreedyOrderPermutation(t *testing.T) {
	g := randomGraph(3, 60, 300)
	r := xrand.New(9)
	order := make([]int32, g.NumVertices())
	for i, p := range r.Perm(g.NumVertices()) {
		order[i] = int32(p)
	}
	res := SeqGreedyOrder(g, order)
	if err := Validate(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.NumColors > g.MaxDegree()+1 {
		t.Errorf("permuted order used %d colors > Δ+1 = %d", res.NumColors, g.MaxDegree()+1)
	}
}

func TestValidateCatchesBadColoring(t *testing.T) {
	g := gen.Chain(3)
	if err := Validate(g, []int32{1, 1, 2}); err == nil {
		t.Error("monochromatic edge not detected")
	}
	if err := Validate(g, []int32{1, 0, 1}); err == nil {
		t.Error("uncolored vertex not detected")
	}
	if err := Validate(g, []int32{1, 2}); err == nil {
		t.Error("length mismatch not detected")
	}
}

func TestCountColors(t *testing.T) {
	if CountColors([]int32{1, 3, 2}) != 3 {
		t.Error("CountColors wrong")
	}
	if CountColors(nil) != 0 {
		t.Error("CountColors(nil) != 0")
	}
}

// ringOfCliques has known chromatic number s; every kernel should find
// close to s colors.
func TestParallelVariantsOnRingOfCliques(t *testing.T) {
	g := gen.RingOfCliques(40, 8)
	seq := SeqGreedy(g)
	if seq.NumColors != 8 {
		t.Fatalf("sequential colors = %d, want 8", seq.NumColors)
	}

	team := sched.NewTeam(4)
	defer team.Close()
	pool := sched.NewPool(4)
	defer pool.Close()

	checks := []struct {
		name string
		run  func() Result
	}{
		{"team-static", func() Result { return ColorTeam(g, team, sched.ForOptions{Policy: sched.Static, Chunk: 13}) }},
		{"team-dynamic", func() Result { return ColorTeam(g, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 7}) }},
		{"team-guided", func() Result { return ColorTeam(g, team, sched.ForOptions{Policy: sched.Guided, Chunk: 5}) }},
		{"cilk-workerid", func() Result { return ColorCilk(g, pool, 16, CilkWorkerID) }},
		{"cilk-holder", func() Result { return ColorCilk(g, pool, 16, CilkHolder) }},
		{"tbb-simple", func() Result { return ColorTBB(g, pool, sched.SimplePartitioner, 16) }},
		{"tbb-auto", func() Result { return ColorTBB(g, pool, sched.AutoPartitioner, 16) }},
		{"tbb-affinity", func() Result { return ColorTBB(g, pool, sched.AffinityPartitioner, 16) }},
	}
	for _, c := range checks {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res := c.run()
			if err := Validate(g, res.Colors); err != nil {
				t.Fatal(err)
			}
			if res.NumColors < 8 || res.NumColors > 10 {
				t.Errorf("colors = %d, want 8..10 (quality within ~5%% of sequential, §V-B)", res.NumColors)
			}
			if res.NumColors != CountColors(res.Colors) {
				t.Errorf("reported NumColors %d != actual %d", res.NumColors, CountColors(res.Colors))
			}
			if res.Rounds < 1 {
				t.Error("no rounds recorded")
			}
			if len(res.Conflicts) != res.Rounds {
				t.Errorf("%d conflict entries for %d rounds", len(res.Conflicts), res.Rounds)
			}
			if last := res.Conflicts[len(res.Conflicts)-1]; last != 0 {
				t.Errorf("terminated with %d conflicts outstanding", last)
			}
		})
	}
}

func TestParallelColoringProperty(t *testing.T) {
	team := sched.NewTeam(4)
	defer team.Close()
	property := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%120) + 1
		m := int(mRaw % 600)
		g := randomGraph(seed, n, m)
		res := ColorTeam(g, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 3})
		return Validate(g, res.Colors) == nil && res.NumColors <= g.MaxDegree()+1
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestParallelColoringOnMesh(t *testing.T) {
	cfg := gen.Scaled(mustCfg(t, "hood"), 16)
	g, err := gen.Mesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq := SeqGreedy(g)
	if err := Validate(g, seq.Colors); err != nil {
		t.Fatal(err)
	}
	// The clique-grid stand-in must color with ~CliqueSize colors (within
	// the 5% the paper reports for parallel-vs-sequential quality, plus the
	// hub slack).
	if seq.NumColors < cfg.CliqueSize || seq.NumColors > cfg.CliqueSize+3 {
		t.Errorf("sequential colors = %d, want ≈%d", seq.NumColors, cfg.CliqueSize)
	}

	pool := sched.NewPool(4)
	defer pool.Close()
	res := ColorCilk(g, pool, 100, CilkHolder)
	if err := Validate(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if float64(res.NumColors) > 1.05*float64(seq.NumColors)+1 {
		t.Errorf("parallel colors %d vs sequential %d: degradation > 5%%", res.NumColors, seq.NumColors)
	}
}

func mustCfg(t *testing.T, name string) gen.MeshConfig {
	t.Helper()
	c, err := gen.SuiteConfig(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSeqGreedyD2(t *testing.T) {
	// A star's leaves all share the center as a common neighbor: distance-2
	// coloring needs n colors on K_{1,n-1}... center + distinct leaf colors.
	b := graph.NewBuilder(6)
	for i := int32(1); i < 6; i++ {
		b.AddEdge(0, i)
	}
	star := b.Build()
	res := SeqGreedyD2(star)
	if err := ValidateD2(star, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 6 {
		t.Errorf("star d2 colors = %d, want 6", res.NumColors)
	}

	// Path: distance-2 chromatic number is 3.
	p := gen.Chain(10)
	res = SeqGreedyD2(p)
	if err := ValidateD2(p, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 3 {
		t.Errorf("path d2 colors = %d, want 3", res.NumColors)
	}
}

func TestValidateD2Catches(t *testing.T) {
	// Path 0-1-2: colors 1,2,1 is proper at distance 1 but not distance 2.
	g := gen.Chain(3)
	if err := ValidateD2(g, []int32{1, 2, 1}); err == nil {
		t.Error("distance-2 violation not detected")
	}
	if err := ValidateD2(g, []int32{1, 2, 3}); err != nil {
		t.Errorf("valid d2 coloring rejected: %v", err)
	}
}

func TestColorTeamD2(t *testing.T) {
	team := sched.NewTeam(4)
	defer team.Close()
	g := randomGraph(11, 80, 200)
	res := ColorTeamD2(g, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 4})
	if err := ValidateD2(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	seq := SeqGreedyD2(g)
	if res.NumColors > 2*seq.NumColors+1 {
		t.Errorf("parallel d2 colors %d vs sequential %d", res.NumColors, seq.NumColors)
	}
}

func TestColorTeamD2Property(t *testing.T) {
	team := sched.NewTeam(3)
	defer team.Close()
	property := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%60) + 1
		m := int(mRaw % 200)
		g := randomGraph(seed, n, m)
		res := ColorTeamD2(g, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 2})
		return ValidateD2(g, res.Colors) == nil
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSeqGreedyHood32(b *testing.B) {
	g, err := gen.Mesh(gen.Scaled(gen.Suite()[2], 8))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := SeqGreedy(g)
		if res.NumColors == 0 {
			b.Fatal("no colors")
		}
	}
}
