package coloring

import (
	"sort"

	"micgraph/internal/graph"
)

// Vertex-visit orderings for the greedy algorithm. The paper's §III-A notes
// that First Fit produces an optimal coloring "for some orderings of the
// vertices" (Culberson); these are the classical heuristics from the
// coloring literature the paper builds on (Gebremedhin & Manne; Çatalyürek
// et al.), exposed so users can trade color quality against ordering cost.

// NaturalOrder returns vertices in index order (what the paper benchmarks).
func NaturalOrder(g *graph.Graph) []int32 {
	return graph.IdentityPermutation(g.NumVertices())
}

// LargestFirst orders vertices by non-increasing degree (Welsh–Powell).
// Greedy on this order uses at most 1+max_i min(d_i, i) colors.
func LargestFirst(g *graph.Graph) []int32 {
	n := g.NumVertices()
	order := graph.IdentityPermutation(n)
	sort.SliceStable(order, func(a, b int) bool {
		return g.Degree(order[a]) > g.Degree(order[b])
	})
	return order
}

// SmallestLast computes the Matula–Beck smallest-last ordering: repeatedly
// remove a minimum-degree vertex; the removal sequence reversed is the
// visit order. Greedy on this order uses at most 1+degeneracy colors, which
// is optimal for chordal graphs and very strong on FEM meshes.
func SmallestLast(g *graph.Graph) []int32 {
	n := g.NumVertices()
	deg := make([]int32, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		d := g.Degree(int32(v))
		deg[v] = int32(d)
		if d > maxDeg {
			maxDeg = d
		}
	}

	// Bucket queue over current degrees.
	buckets := make([][]int32, maxDeg+1)
	pos := make([]int32, n) // index of v within its bucket
	for v := 0; v < n; v++ {
		d := deg[v]
		pos[v] = int32(len(buckets[d]))
		buckets[d] = append(buckets[d], int32(v))
	}
	removed := make([]bool, n)
	order := make([]int32, n)
	cur := 0 // lowest possibly non-empty bucket

	removeFromBucket := func(v int32) {
		d := deg[v]
		b := buckets[d]
		last := b[len(b)-1]
		b[pos[v]] = last
		pos[last] = pos[v]
		buckets[d] = b[:len(b)-1]
	}

	for i := n - 1; i >= 0; i-- {
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		removed[v] = true
		order[i] = v
		for _, w := range g.Adj(v) {
			if removed[w] {
				continue
			}
			removeFromBucket(w)
			deg[w]--
			pos[w] = int32(len(buckets[deg[w]]))
			buckets[deg[w]] = append(buckets[deg[w]], w)
			if int(deg[w]) < cur {
				cur = int(deg[w])
			}
		}
	}
	return order
}

// IncidenceDegree orders vertices by dynamically choosing the uncolored
// vertex with the most already-ordered neighbors (ties broken by bucket
// recency). It is the ordering of choice in the distance-2 coloring
// literature.
func IncidenceDegree(g *graph.Graph) []int32 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	inc := make([]int32, n) // number of ordered neighbors
	done := make([]bool, n)
	// Bucket queue over incidence counts; incidence only grows, so each
	// vertex moves at most deg times.
	maxInc := 0
	buckets := make([][]int32, n)
	buckets[0] = make([]int32, 0, n)
	for v := 0; v < n; v++ {
		buckets[0] = append(buckets[0], int32(v))
	}

	order := make([]int32, 0, n)
	for len(order) < n {
		// Highest non-empty incidence bucket; entries may be stale (already
		// done, or with an out-of-date incidence) — skip/reinsert lazily.
		var v int32 = -1
		for maxInc >= 0 {
			b := buckets[maxInc]
			if len(b) == 0 {
				maxInc--
				continue
			}
			cand := b[len(b)-1]
			buckets[maxInc] = b[:len(b)-1]
			if done[cand] || int(inc[cand]) != maxInc {
				continue // stale entry
			}
			v = cand
			break
		}
		if v == -1 {
			// All remaining vertices have stale entries only; fall back to
			// a linear scan (happens only on pathological inputs).
			for u := 0; u < n; u++ {
				if !done[u] {
					v = int32(u)
					break
				}
			}
		}
		done[v] = true
		order = append(order, v)
		for _, w := range g.Adj(v) {
			if done[w] {
				continue
			}
			inc[w]++
			if int(inc[w]) >= len(buckets) {
				continue
			}
			buckets[inc[w]] = append(buckets[inc[w]], w)
			if int(inc[w]) > maxInc {
				maxInc = int(inc[w])
			}
		}
	}
	return order
}
