package coloring

import (
	"context"
	"testing"

	"micgraph/internal/gen"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

func checkRoundSamples(t *testing.T, variant string, g int, res Result, samples []telemetry.PhaseSample) {
	t.Helper()
	if len(samples) != res.Rounds {
		t.Errorf("%s: %d round samples, want %d", variant, len(samples), res.Rounds)
		return
	}
	for i, s := range samples {
		if s.Kernel != "coloring" || s.Phase != "round" {
			t.Errorf("%s: sample %d labelled %s/%s", variant, i, s.Kernel, s.Phase)
		}
		if s.Index != i {
			t.Errorf("%s: sample %d has index %d", variant, i, s.Index)
		}
		if int(s.Claims) != res.Conflicts[i] {
			t.Errorf("%s: round %d claims = %d, conflicts = %d", variant, i, s.Claims, res.Conflicts[i])
		}
		if s.Duration <= 0 {
			t.Errorf("%s: round %d has non-positive duration", variant, i)
		}
	}
	if samples[0].Items != int64(g) {
		t.Errorf("%s: round 0 items = %d, want all %d vertices", variant, samples[0].Items, g)
	}
}

func TestColoringRecordsRounds(t *testing.T) {
	g := gen.RingOfCliques(60, 8)
	n := g.NumVertices()

	t.Run("team", func(t *testing.T) {
		team := sched.NewTeam(4)
		defer team.Close()
		rec := telemetry.NewMemRecorder()
		ctx := telemetry.WithRecorder(context.Background(), rec)
		res, err := ColorTeamCtx(ctx, g, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 16})
		if err != nil {
			t.Fatal(err)
		}
		checkRoundSamples(t, "team", n, res, rec.Samples())
	})
	t.Run("cilk", func(t *testing.T) {
		pool := sched.NewPool(4)
		defer pool.Close()
		rec := telemetry.NewMemRecorder()
		ctx := telemetry.WithRecorder(context.Background(), rec)
		res, err := ColorCilkCtx(ctx, g, pool, 16, CilkHolder)
		if err != nil {
			t.Fatal(err)
		}
		checkRoundSamples(t, "cilk", n, res, rec.Samples())
	})
	t.Run("tbb", func(t *testing.T) {
		pool := sched.NewPool(4)
		defer pool.Close()
		rec := telemetry.NewMemRecorder()
		ctx := telemetry.WithRecorder(context.Background(), rec)
		res, err := ColorTBBCtx(ctx, g, pool, sched.SimplePartitioner, 16)
		if err != nil {
			t.Fatal(err)
		}
		checkRoundSamples(t, "tbb", n, res, rec.Samples())
	})
}
