package coloring

import (
	"context"
	"reflect"
	"testing"
	"time"

	"micgraph/internal/gen"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

// fakeClock returns a deterministic monotonic clock: each read advances
// one microsecond.
func fakeClock() func() time.Time {
	tick := int64(0)
	return func() time.Time {
		tick++
		return time.Unix(0, tick*1000)
	}
}

// TestRoundSamplesBitDeterministic: with a single worker (so round
// contents are sequential) and a fake phase clock, two instrumented runs
// must produce identical samples — including durations. This is the
// end-to-end guarantee the wallclock analyzer protects: no kernel code
// path reads the wall clock behind the Recorder's back.
func TestRoundSamplesBitDeterministic(t *testing.T) {
	g := gen.RingOfCliques(40, 6)
	run := func() []telemetry.PhaseSample {
		team := sched.NewTeam(1)
		defer team.Close()
		rec := telemetry.NewMemRecorder()
		ctx := telemetry.WithRecorder(context.Background(), telemetry.WithClock(rec, fakeClock()))
		if _, err := ColorTeamCtx(ctx, g, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 16}); err != nil {
			t.Fatal(err)
		}
		return rec.Samples()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no samples recorded")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("instrumented runs differ:\n%v\n%v", a, b)
	}
}
