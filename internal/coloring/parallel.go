package coloring

import (
	"context"
	"sync/atomic"
	"time"

	"micgraph/internal/graph"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

// This file declares the iterative parallel speculative coloring entry
// points (Algorithms 2–4): rounds of tentative parallel coloring followed
// by parallel conflict detection, until no conflicts remain. The three
// variants differ only in the runtime carrying the two parallel loops,
// mirroring the paper's three implementations:
//
//   - ColorTeam:  OpenMP parallel for under a scheduling policy (§IV-A1);
//   - ColorCilk:  cilk_for with holder/worker-id localFC and a reducer_max
//     (§IV-A2);
//   - ColorTBB:   tbb::parallel_for over a blocked range with a partitioner,
//     enumerable_thread_specific localFC and a combinable max (§IV-A3).
//
// The implementations live on Scratch (scratch.go), which owns every
// reusable buffer; the entry points here run on a throwaway Scratch and so
// keep their historical allocate-per-call semantics.

// localFC is one worker's forbidden-color scratch array: fc[c] == v marks
// color c forbidden for vertex v. Allocated once per worker, size Δ+2.
type localFC []int32

// appendConflict reserves a slot in the shared conflict array with an atomic
// fetch-and-add, the exact structure the paper uses ("we use an atomic fetch
// and add to obtain a unique index in the Conflict array").
func appendConflict(next []int32, count *atomic.Int64, v int32) {
	idx := count.Add(1) - 1
	next[idx] = v
}

// roundSample builds the PhaseSample for one completed speculative-coloring
// round: visit held the vertices (re)colored this round, whose adjacency
// edges were examined twice (tentative + conflict detection), and conflicts
// of them were queued for the next round. Telemetry-only path; time comes
// from rec's clock so instrumented runs can be made deterministic.
func roundSample(rec telemetry.Recorder, g *graph.Graph, round int, visit []int32, conflicts int, start time.Time) telemetry.PhaseSample {
	dur := telemetry.Since(rec, start)
	var edges int64
	for _, v := range visit {
		edges += int64(g.Degree(v))
	}
	return telemetry.PhaseSample{
		Kernel: "coloring", Phase: "round", Index: round,
		Items: int64(len(visit)), Edges: edges, Claims: int64(conflicts),
		Duration: dur,
	}
}

// ColorTeam runs the iterative parallel coloring on an OpenMP-style Team
// with the given loop options. A body panic propagates as a
// *sched.PanicError; use ColorTeamCtx for errors and cancellation.
func ColorTeam(g *graph.Graph, team *sched.Team, opts sched.ForOptions) Result {
	res, err := ColorTeamCtx(nil, g, team, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// ColorTeamCtx is ColorTeam with cooperative cancellation: ctx (which may
// be nil) is polled at chunk-claim boundaries and between rounds. On
// failure it returns the partial coloring alongside the error.
func ColorTeamCtx(ctx context.Context, g *graph.Graph, team *sched.Team, opts sched.ForOptions) (Result, error) {
	return NewScratch().ColorTeam(ctx, g, team, opts)
}

// CilkVariant selects how the Cilk implementation obtains its localFC
// scratch array (§IV-A2 describes both and the paper reports the holder).
type CilkVariant int

const (
	// CilkWorkerID indexes a preallocated array by the worker number
	// (discouraged by Cilk but slightly cheaper).
	CilkWorkerID CilkVariant = iota
	// CilkHolder uses a holder view, lazily created per worker.
	CilkHolder
)

// String returns the name used in Figure 1(b)'s legend.
func (v CilkVariant) String() string {
	if v == CilkHolder {
		return "CilkPlus-holder"
	}
	return "CilkPlus"
}

// ColorCilk runs the iterative parallel coloring as nested cilk_for loops on
// a work-stealing Pool. grain <= 0 uses the Cilk default. Panics propagate;
// use ColorCilkCtx for errors and cancellation.
func ColorCilk(g *graph.Graph, pool *sched.Pool, grain int, variant CilkVariant) Result {
	res, err := ColorCilkCtx(nil, g, pool, grain, variant)
	if err != nil {
		panic(err)
	}
	return res
}

// ColorCilkCtx is ColorCilk with cooperative cancellation at task-split
// boundaries and between rounds; on failure it returns the partial
// coloring alongside the error.
func ColorCilkCtx(ctx context.Context, g *graph.Graph, pool *sched.Pool, grain int, variant CilkVariant) (Result, error) {
	return NewScratch().ColorCilk(ctx, g, pool, grain, variant)
}

// ColorTBB runs the iterative parallel coloring as TBB parallel_for calls
// over blocked ranges with the given partitioner and grain (minimum chunk).
// Panics propagate; use ColorTBBCtx for errors and cancellation.
func ColorTBB(g *graph.Graph, pool *sched.Pool, part sched.Partitioner, grain int) Result {
	res, err := ColorTBBCtx(nil, g, pool, part, grain)
	if err != nil {
		panic(err)
	}
	return res
}

// ColorTBBCtx is ColorTBB with cooperative cancellation at range-split
// boundaries and between rounds; on failure it returns the partial
// coloring alongside the error.
func ColorTBBCtx(ctx context.Context, g *graph.Graph, pool *sched.Pool, part sched.Partitioner, grain int) (Result, error) {
	return NewScratch().ColorTBB(ctx, g, pool, part, grain)
}
