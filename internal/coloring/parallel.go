package coloring

import (
	"context"
	"sync/atomic"
	"time"

	"micgraph/internal/graph"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

// This file implements the iterative parallel speculative coloring
// (Algorithms 2–4): rounds of tentative parallel coloring followed by
// parallel conflict detection, until no conflicts remain. The three entry
// points differ only in the runtime carrying the two parallel loops,
// mirroring the paper's three implementations:
//
//   - ColorTeam:  OpenMP parallel for under a scheduling policy (§IV-A1);
//   - ColorCilk:  cilk_for with holder/worker-id localFC and a reducer_max
//     (§IV-A2);
//   - ColorTBB:   tbb::parallel_for over a blocked range with a partitioner,
//     enumerable_thread_specific localFC and a combinable max (§IV-A3).

// localFC is one worker's forbidden-color scratch array: fc[c] == v marks
// color c forbidden for vertex v. Allocated once per worker, size Δ+2.
type localFC []int32

func newLocalFC(maxDegree int) localFC {
	fc := make(localFC, maxDegree+2)
	for i := range fc {
		fc[i] = -1
	}
	return fc
}

// tentativeOne speculatively colors v: gather neighbor colors (atomically,
// they may be written concurrently), then First Fit. Returns the color.
func tentativeOne(g *graph.Graph, colors []int32, fc localFC, v int32) int32 {
	for _, w := range g.Adj(v) {
		if c := atomic.LoadInt32(&colors[w]); c > 0 {
			fc[c] = v
		}
	}
	c := int32(1)
	for fc[c] == v {
		c++
	}
	atomic.StoreInt32(&colors[v], c)
	return c
}

// conflictOne checks v against its neighbors; on a monochromatic edge the
// smaller-id endpoint is queued for recoloring (Algorithm 4). Returns true
// if v must be revisited.
func conflictOne(g *graph.Graph, colors []int32, v int32) bool {
	cv := atomic.LoadInt32(&colors[v])
	for _, w := range g.Adj(v) {
		if cv == atomic.LoadInt32(&colors[w]) && v < w {
			return true
		}
	}
	return false
}

// appendConflict reserves a slot in the shared conflict array with an atomic
// fetch-and-add, the exact structure the paper uses ("we use an atomic fetch
// and add to obtain a unique index in the Conflict array").
func appendConflict(next []int32, count *atomic.Int64, v int32) {
	idx := count.Add(1) - 1
	next[idx] = v
}

// roundSample builds the PhaseSample for one completed speculative-coloring
// round: visit held the vertices (re)colored this round, whose adjacency
// edges were examined twice (tentative + conflict detection), and conflicts
// of them were queued for the next round. Telemetry-only path; time comes
// from rec's clock so instrumented runs can be made deterministic.
func roundSample(rec telemetry.Recorder, g *graph.Graph, round int, visit []int32, conflicts int, start time.Time) telemetry.PhaseSample {
	dur := telemetry.Since(rec, start)
	var edges int64
	for _, v := range visit {
		edges += int64(g.Degree(v))
	}
	return telemetry.PhaseSample{
		Kernel: "coloring", Phase: "round", Index: round,
		Items: int64(len(visit)), Edges: edges, Claims: int64(conflicts),
		Duration: dur,
	}
}

// ColorTeam runs the iterative parallel coloring on an OpenMP-style Team
// with the given loop options. A body panic propagates as a
// *sched.PanicError; use ColorTeamCtx for errors and cancellation.
func ColorTeam(g *graph.Graph, team *sched.Team, opts sched.ForOptions) Result {
	res, err := ColorTeamCtx(nil, g, team, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// ColorTeamCtx is ColorTeam with cooperative cancellation: ctx (which may
// be nil) is polled at chunk-claim boundaries and between rounds. On
// failure it returns the partial coloring alongside the error.
func ColorTeamCtx(ctx context.Context, g *graph.Graph, team *sched.Team, opts sched.ForOptions) (Result, error) {
	n := g.NumVertices()
	colors := make([]int32, n)
	fcs := make([]localFC, team.Workers())
	for i := range fcs {
		fcs[i] = newLocalFC(g.MaxDegree())
	}
	visit := graph.IdentityPermutation(n)
	res := Result{Colors: colors}
	maxColor := int32(0)
	rec := telemetry.FromContext(ctx)

	for len(visit) > 0 {
		res.Rounds++
		var roundStart time.Time
		if telemetry.Active(rec) {
			roundStart = telemetry.Now(rec)
		}
		// Tentative coloring (Algorithm 3) with per-worker local maxima,
		// reduced by the main goroutine afterwards.
		locals := make([]int32, team.Workers())
		err := team.ForCtx(ctx, len(visit), opts, func(lo, hi, w int) {
			fc := fcs[w]
			localMax := locals[w]
			for i := lo; i < hi; i++ {
				if c := tentativeOne(g, colors, fc, visit[i]); c > localMax {
					localMax = c
				}
			}
			locals[w] = localMax
		})
		for _, lm := range locals {
			if lm > maxColor {
				maxColor = lm
			}
		}
		if err != nil {
			res.NumColors = int(maxColor)
			return res, err
		}

		// Conflict detection (Algorithm 4).
		next := make([]int32, len(visit))
		var count atomic.Int64
		err = team.ForCtx(ctx, len(visit), opts, func(lo, hi, w int) {
			for i := lo; i < hi; i++ {
				if v := visit[i]; conflictOne(g, colors, v) {
					appendConflict(next, &count, v)
				}
			}
		})
		if err != nil {
			res.NumColors = int(maxColor)
			return res, err
		}
		if telemetry.Active(rec) {
			rec.Record(roundSample(rec, g, res.Rounds-1, visit, int(count.Load()), roundStart))
		}
		visit = next[:count.Load()]
		res.Conflicts = append(res.Conflicts, len(visit))
	}
	res.NumColors = int(maxColor)
	return res, nil
}

// CilkVariant selects how the Cilk implementation obtains its localFC
// scratch array (§IV-A2 describes both and the paper reports the holder).
type CilkVariant int

const (
	// CilkWorkerID indexes a preallocated array by the worker number
	// (discouraged by Cilk but slightly cheaper).
	CilkWorkerID CilkVariant = iota
	// CilkHolder uses a holder view, lazily created per worker.
	CilkHolder
)

// String returns the name used in Figure 1(b)'s legend.
func (v CilkVariant) String() string {
	if v == CilkHolder {
		return "CilkPlus-holder"
	}
	return "CilkPlus"
}

// ColorCilk runs the iterative parallel coloring as nested cilk_for loops on
// a work-stealing Pool. grain <= 0 uses the Cilk default. Panics propagate;
// use ColorCilkCtx for errors and cancellation.
func ColorCilk(g *graph.Graph, pool *sched.Pool, grain int, variant CilkVariant) Result {
	res, err := ColorCilkCtx(nil, g, pool, grain, variant)
	if err != nil {
		panic(err)
	}
	return res
}

// ColorCilkCtx is ColorCilk with cooperative cancellation at task-split
// boundaries and between rounds; on failure it returns the partial
// coloring alongside the error.
func ColorCilkCtx(ctx context.Context, g *graph.Graph, pool *sched.Pool, grain int, variant CilkVariant) (Result, error) {
	n := g.NumVertices()
	colors := make([]int32, n)
	workers := pool.Workers()
	var fcView func(c *sched.Ctx) localFC
	switch variant {
	case CilkWorkerID:
		fcs := make([]localFC, workers)
		for i := range fcs {
			fcs[i] = newLocalFC(g.MaxDegree())
		}
		fcView = func(c *sched.Ctx) localFC { return fcs[c.Worker()] }
	case CilkHolder:
		holder := sched.NewHolder(workers, func() localFC { return newLocalFC(g.MaxDegree()) })
		fcView = func(c *sched.Ctx) localFC { return *holder.View(c) }
	}

	visit := graph.IdentityPermutation(n)
	res := Result{Colors: colors}
	reducer := sched.NewReducerMax(workers, 0)
	rec := telemetry.FromContext(ctx)

	for len(visit) > 0 {
		res.Rounds++
		vs := visit
		var roundStart time.Time
		if telemetry.Active(rec) {
			roundStart = telemetry.Now(rec)
		}
		err := pool.ParallelForCtx(ctx, len(vs), grain, func(lo, hi int, c *sched.Ctx) {
			fc := fcView(c)
			localMax := int32(0)
			for i := lo; i < hi; i++ {
				if cc := tentativeOne(g, colors, fc, vs[i]); cc > localMax {
					localMax = cc
				}
			}
			reducer.Update(c, int(localMax))
		})
		if err != nil {
			res.NumColors = reducer.Get()
			return res, err
		}

		next := make([]int32, len(vs))
		var count atomic.Int64
		err = pool.ParallelForCtx(ctx, len(vs), grain, func(lo, hi int, c *sched.Ctx) {
			for i := lo; i < hi; i++ {
				if v := vs[i]; conflictOne(g, colors, v) {
					appendConflict(next, &count, v)
				}
			}
		})
		if err != nil {
			res.NumColors = reducer.Get()
			return res, err
		}
		if telemetry.Active(rec) {
			rec.Record(roundSample(rec, g, res.Rounds-1, vs, int(count.Load()), roundStart))
		}
		visit = next[:count.Load()]
		res.Conflicts = append(res.Conflicts, len(visit))
	}
	res.NumColors = reducer.Get()
	return res, nil
}

// ColorTBB runs the iterative parallel coloring as TBB parallel_for calls
// over blocked ranges with the given partitioner and grain (minimum chunk).
// Panics propagate; use ColorTBBCtx for errors and cancellation.
func ColorTBB(g *graph.Graph, pool *sched.Pool, part sched.Partitioner, grain int) Result {
	res, err := ColorTBBCtx(nil, g, pool, part, grain)
	if err != nil {
		panic(err)
	}
	return res
}

// ColorTBBCtx is ColorTBB with cooperative cancellation at range-split
// boundaries and between rounds; on failure it returns the partial
// coloring alongside the error.
func ColorTBBCtx(ctx context.Context, g *graph.Graph, pool *sched.Pool, part sched.Partitioner, grain int) (Result, error) {
	n := g.NumVertices()
	colors := make([]int32, n)
	workers := pool.Workers()
	ets := sched.NewETS(workers, func() localFC { return newLocalFC(g.MaxDegree()) })
	maxC := sched.NewCombinable(workers, func() int32 { return 0 })

	visit := graph.IdentityPermutation(n)
	res := Result{Colors: colors}
	var aff sched.AffinityState
	rec := telemetry.FromContext(ctx)

	finish := func() int {
		return int(maxC.Combine(0, func(a, b int32) int32 {
			if a > b {
				return a
			}
			return b
		}))
	}
	for len(visit) > 0 {
		res.Rounds++
		vs := visit
		var roundStart time.Time
		if telemetry.Active(rec) {
			roundStart = telemetry.Now(rec)
		}
		err := sched.ParallelForRangeCtx(ctx, pool, sched.Range{Lo: 0, Hi: len(vs), Grain: grain}, part, &aff,
			func(lo, hi int, c *sched.Ctx) {
				fc := *ets.Local(c)
				local := maxC.Local(c)
				for i := lo; i < hi; i++ {
					if cc := tentativeOne(g, colors, fc, vs[i]); cc > *local {
						*local = cc
					}
				}
			})
		if err != nil {
			res.NumColors = finish()
			return res, err
		}

		next := make([]int32, len(vs))
		var count atomic.Int64
		err = sched.ParallelForRangeCtx(ctx, pool, sched.Range{Lo: 0, Hi: len(vs), Grain: grain}, part, &aff,
			func(lo, hi int, c *sched.Ctx) {
				for i := lo; i < hi; i++ {
					if v := vs[i]; conflictOne(g, colors, v) {
						appendConflict(next, &count, v)
					}
				}
			})
		if err != nil {
			res.NumColors = finish()
			return res, err
		}
		if telemetry.Active(rec) {
			rec.Record(roundSample(rec, g, res.Rounds-1, vs, int(count.Load()), roundStart))
		}
		visit = next[:count.Load()]
		res.Conflicts = append(res.Conflicts, len(visit))
	}
	res.NumColors = finish()
	return res, nil
}
