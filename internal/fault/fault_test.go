package fault

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/iotest"
)

func TestDeterministicAcrossRuns(t *testing.T) {
	pattern := func() []bool {
		in := New(42).Enable("a", 0.3).Enable("b", 0.7)
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, in.Fire("a"), in.Fire("b"))
		}
		return out
	}
	p1, p2 := pattern(), pattern()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("decision %d differs between identical runs", i)
		}
	}
}

func TestSiteStreamsIndependent(t *testing.T) {
	// Interleaving calls to another site must not perturb a site's own
	// decision sequence.
	solo := New(7).Enable("x", 0.5)
	var ref []bool
	for i := 0; i < 100; i++ {
		ref = append(ref, solo.Fire("x"))
	}
	mixed := New(7).Enable("x", 0.5).Enable("noise", 0.9)
	for i := 0; i < 100; i++ {
		mixed.Fire("noise")
		mixed.Fire("noise")
		if got := mixed.Fire("x"); got != ref[i] {
			t.Fatalf("call %d: interleaved noise changed site decision", i)
		}
	}
}

func TestEnableAt(t *testing.T) {
	in := New(1).EnableAt("s", 3, 5)
	var fired []int64
	for i := 1; i <= 8; i++ {
		if err := in.FireErr("s"); err != nil {
			var f *Fault
			if !errors.As(err, &f) {
				t.Fatalf("FireErr returned %T, want *Fault", err)
			}
			fired = append(fired, f.Call)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 5 {
		t.Fatalf("fired at %v, want [3 5]", fired)
	}
	if in.Calls("s") != 8 || in.Fired("s") != 2 {
		t.Fatalf("calls=%d fired=%d, want 8/2", in.Calls("s"), in.Fired("s"))
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if in.Fire("any") || in.FireErr("any") != nil {
		t.Fatal("nil injector fired")
	}
	if in.Param("any", 2.5) != 2.5 {
		t.Fatal("nil injector Param default broken")
	}
	r := in.Reader("io", strings.NewReader("hello"))
	b, err := io.ReadAll(r)
	if err != nil || string(b) != "hello" {
		t.Fatalf("nil injector Reader altered stream: %q %v", b, err)
	}
}

func TestTransient(t *testing.T) {
	f := &Fault{Site: "s", Call: 1}
	if !IsTransient(f) {
		t.Fatal("Fault not transient")
	}
	if !IsTransient(wrapErr{f}) {
		t.Fatal("wrapped Fault not transient")
	}
	if IsTransient(errors.New("plain")) {
		t.Fatal("plain error claimed transient")
	}
}

type wrapErr struct{ inner error }

func (w wrapErr) Error() string { return "wrap: " + w.inner.Error() }
func (w wrapErr) Unwrap() error { return w.inner }

func TestReaderError(t *testing.T) {
	in := New(3).EnableAt("io/err", 2)
	r := in.Reader("io", bytes.NewReader(bytes.Repeat([]byte{7}, 64)))
	buf := make([]byte, 16)
	if _, err := r.Read(buf); err != nil {
		t.Fatalf("first read failed early: %v", err)
	}
	_, err := r.Read(buf)
	if !IsTransient(err) {
		t.Fatalf("second read: got %v, want injected transient fault", err)
	}
}

func TestReaderTruncate(t *testing.T) {
	in := New(3).EnableAt("io/truncate", 2)
	r := in.Reader("io", iotest.OneByteReader(bytes.NewReader(bytes.Repeat([]byte{7}, 64))))
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("truncated stream must end with clean EOF, got %v", err)
	}
	if len(got) >= 64 {
		t.Fatalf("stream not truncated: read %d bytes", len(got))
	}
	// ReadFull on a fresh truncated stream reports ErrUnexpectedEOF.
	in2 := New(3).EnableAt("io/truncate", 1)
	r2 := in2.Reader("io", bytes.NewReader(bytes.Repeat([]byte{7}, 64)))
	if _, err := io.ReadFull(r2, make([]byte, 8)); err != io.ErrUnexpectedEOF && err != io.EOF {
		t.Fatalf("ReadFull on truncated stream: %v", err)
	}
}
