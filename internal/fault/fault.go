// Package fault is a deterministic, seed-driven fault injector for the
// hardened execution layer. It exists so the failure paths of the runtimes
// (worker panics and stalls), the graph loaders (read errors, truncation)
// and the machine simulator (straggler cores) can be exercised
// systematically and *replayed exactly*: every decision comes from an
// xrand stream derived from the injector seed and the site name, never
// from the clock or from goroutine scheduling.
//
// A site is a named injection point (e.g. "team/chunk/panic",
// "graphio/read/err", "mic/straggler"). Each site owns an independent
// generator stream seeded from (seed, hash(site)), so enabling or firing
// one site never perturbs the decision sequence of another — two runs with
// the same seed and the same per-site call counts make identical
// decisions regardless of how calls from different sites interleave.
//
// Sites fire either probabilistically (Enable with a rate) or at exact
// call indices (EnableAt), the latter giving fully deterministic failure
// placement even when concurrent workers race to make the calls: the
// *set* of firing calls is fixed, only which worker draws the short straw
// varies. A nil *Injector is valid everywhere and never fires, so
// instrumented code needs no nil checks.
package fault

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"micgraph/internal/xrand"
)

// Fault is the error reported by an injected failure. Injected faults are
// transient by construction: retrying the failed operation advances the
// site's call counter, so a bounded retry can succeed — which is exactly
// the behaviour transient real-world failures (flaky I/O, preempted
// workers) exhibit and what the experiment harness's retry path models.
type Fault struct {
	Site string // injection point that fired
	Call int64  // 1-based call index at which it fired
}

// Error describes the injected failure.
func (f *Fault) Error() string {
	return fmt.Sprintf("fault: injected failure at %s (call %d)", f.Site, f.Call)
}

// Transient marks injected faults as retryable.
func (f *Fault) Transient() bool { return true }

// IsTransient reports whether err (or anything it wraps, including the
// panic value inside a sched.PanicError) is a transient fault worth
// retrying.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// site is the per-injection-point state: its own generator stream, firing
// rule, magnitude parameter and call counters.
type site struct {
	rng   *xrand.Rand
	rate  float64
	at    map[int64]bool // exact firing call indices; overrides rate
	param float64
	calls int64
	fired int64
}

// Injector is a deterministic fault source. The zero value is unusable;
// create with New. All methods are safe for concurrent use and safe on a
// nil receiver (a nil injector never fires).
type Injector struct {
	seed  uint64
	mu    sync.Mutex
	sites map[string]*site
}

// New returns an injector whose every decision derives from seed.
func New(seed uint64) *Injector {
	return &Injector{seed: seed, sites: make(map[string]*site)}
}

// fnv1a hashes a site name (FNV-1a, 64-bit) for stream separation.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (in *Injector) site(name string) *site {
	s := in.sites[name]
	if s == nil {
		s = &site{rng: xrand.New(in.seed ^ fnv1a(name)), param: -1}
		in.sites[name] = s
	}
	return s
}

// Enable arms a site to fire each call independently with the given
// probability in [0, 1]. Returns the injector for chaining.
func (in *Injector) Enable(name string, rate float64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.site(name).rate = rate
	return in
}

// EnableAt arms a site to fire at exactly the given 1-based call indices —
// the fully deterministic placement used by tests.
func (in *Injector) EnableAt(name string, calls ...int64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.site(name)
	if s.at == nil {
		s.at = make(map[int64]bool, len(calls))
	}
	for _, c := range calls {
		s.at[c] = true
	}
	return in
}

// SetParam attaches a magnitude to a site (e.g. the slowdown fraction of a
// straggler core). Returns the injector for chaining.
func (in *Injector) SetParam(name string, v float64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.site(name).param = v
	return in
}

// Param returns the site's magnitude, or def when none was set.
func (in *Injector) Param(name string, def float64) float64 {
	if in == nil {
		return def
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if s, ok := in.sites[name]; ok && s.param >= 0 {
		return s.param
	}
	return def
}

// Fire records one call at the site and reports whether it fires. A nil
// injector or an unarmed site never fires (but unarmed sites on a non-nil
// injector still count calls, so placements stay reproducible when a site
// is enabled later in an identical run).
func (in *Injector) Fire(name string) bool {
	return in.FireErr(name) != nil
}

// FireErr is Fire returning the *Fault (carrying site and call index) when
// the site fires, nil otherwise.
func (in *Injector) FireErr(name string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.site(name)
	s.calls++
	fired := false
	if s.at != nil {
		fired = s.at[s.calls]
	} else if s.rate > 0 {
		fired = s.rng.Float64() < s.rate
	}
	if !fired {
		return nil
	}
	s.fired++
	return &Fault{Site: name, Call: s.calls}
}

// Calls returns how many times the site has been consulted.
func (in *Injector) Calls(name string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if s, ok := in.sites[name]; ok {
		return s.calls
	}
	return 0
}

// Fired returns how many times the site has fired.
func (in *Injector) Fired(name string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if s, ok := in.sites[name]; ok {
		return s.fired
	}
	return 0
}

// Reader wraps r with two injection sites derived from name:
//
//   - name+"/err": the Read call fails with a *Fault (a transient I/O
//     error);
//   - name+"/truncate": the stream ends early — this and all subsequent
//     reads return io.EOF, which loaders expecting more bytes surface as
//     io.ErrUnexpectedEOF.
//
// Each Read consults both sites once, so byte-for-byte identical read
// sequences fail at identical offsets. A nil injector returns r unchanged.
func (in *Injector) Reader(name string, r io.Reader) io.Reader {
	if in == nil {
		return r
	}
	return &faultReader{in: in, name: name, r: r}
}

type faultReader struct {
	in        *Injector
	name      string
	r         io.Reader
	truncated bool
}

func (fr *faultReader) Read(p []byte) (int, error) {
	if err := fr.in.FireErr(fr.name + "/err"); err != nil {
		return 0, err
	}
	if fr.truncated || fr.in.Fire(fr.name+"/truncate") {
		fr.truncated = true
		return 0, io.EOF
	}
	return fr.r.Read(p)
}

// Writer wraps w with the injection site name+"/err": a firing Write call
// fails with a *Fault (a transient I/O error) before touching the
// underlying writer, so byte-for-byte identical write sequences fail at
// identical offsets. A nil injector returns w unchanged.
func (in *Injector) Writer(name string, w io.Writer) io.Writer {
	if in == nil {
		return w
	}
	return &faultWriter{in: in, name: name, w: w}
}

type faultWriter struct {
	in   *Injector
	name string
	w    io.Writer
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	if err := fw.in.FireErr(fw.name + "/err"); err != nil {
		return 0, err
	}
	return fw.w.Write(p)
}

// SchedHook returns a fault hook for sched.Team.SetInject /
// sched.Pool.SetInject. At every boundary the runtimes report (site names
// "team/chunk" and "pool/task"), it consults site+"/panic" — panicking
// with the *Fault, which the runtimes contain and surface as a
// *sched.PanicError — and site+"/stall", sleeping for stall to model a
// straggling worker.
func (in *Injector) SchedHook(stall time.Duration) func(site string, worker int) {
	return func(site string, worker int) {
		if err := in.FireErr(site + "/panic"); err != nil {
			panic(err)
		}
		if in.Fire(site + "/stall") {
			time.Sleep(stall)
		}
	}
}
