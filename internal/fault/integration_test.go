package fault_test

import (
	"errors"
	"path/filepath"
	"testing"

	"micgraph/internal/fault"
	"micgraph/internal/gen"
	"micgraph/internal/graphio"
	"micgraph/internal/sched"
)

// TestSchedHookTeamPanicSurfacesAsForEError checks the full chain the
// acceptance criteria require: an injected worker panic placed at an exact
// call index fires inside a Team loop, is contained by the runtime, and
// comes back from ForE as a *sched.PanicError whose cause is the *Fault —
// deterministically, run after run.
func TestSchedHookTeamPanicSurfacesAsForEError(t *testing.T) {
	run := func() (error, int64) {
		in := fault.New(42).EnableAt("team/chunk/panic", 4)
		team := sched.NewTeam(3)
		defer team.Close()
		team.SetInject(in.SchedHook(0))
		err := team.ForE(100, sched.ForOptions{Policy: sched.Dynamic, Chunk: 5},
			func(lo, hi, w int) {})
		return err, in.Fired("team/chunk/panic")
	}

	err, fired := run()
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("ForE returned %v, want *sched.PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack")
	}
	var f *fault.Fault
	if !errors.As(err, &f) {
		t.Fatalf("cause of %v is not a *fault.Fault", err)
	}
	if f.Site != "team/chunk/panic" || f.Call != 4 {
		t.Errorf("fault fired at %s call %d, want team/chunk/panic call 4", f.Site, f.Call)
	}
	if !fault.IsTransient(err) {
		t.Error("injected fault not recognised as transient through the PanicError")
	}
	if fired != 1 {
		t.Errorf("site fired %d times, want 1", fired)
	}

	// Deterministic replay: an identical run fails identically.
	err2, _ := run()
	var f2 *fault.Fault
	if !errors.As(err2, &f2) || f2.Site != f.Site || f2.Call != f.Call {
		t.Errorf("replay produced %v, want the same fault as %v", err2, err)
	}
}

// TestSchedHookPoolTaskPanic does the same through the work-stealing pool's
// task boundary.
func TestSchedHookPoolTaskPanic(t *testing.T) {
	in := fault.New(7).EnableAt("pool/task/panic", 3)
	pool := sched.NewPool(2)
	defer pool.Close()
	pool.SetInject(in.SchedHook(0))
	err := pool.RunE(func(c *sched.Ctx) {
		for i := 0; i < 10; i++ {
			c.Spawn(func(cc *sched.Ctx) {})
		}
	})
	var f *fault.Fault
	if !errors.As(err, &f) {
		t.Fatalf("RunE returned %v, want an injected *fault.Fault cause", err)
	}
	if f.Site != "pool/task/panic" {
		t.Errorf("fault fired at %s, want pool/task/panic", f.Site)
	}
}

// TestInjectedTruncationFailsLoadCleanly writes a real binary graph file,
// then loads it through an injector that truncates the stream at the second
// read: Load must fail with an error (no panic, no partial graph), and the
// same file must still load cleanly without the injector.
func TestInjectedTruncationFailsLoadCleanly(t *testing.T) {
	g := gen.Grid2D(64, 64)
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := graphio.WriteFile(path, g, graphio.Binary); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	// The loader buffers reads, so the first Read call can swallow the
	// whole file; truncating call 1 guarantees the stream ends early.
	in := fault.New(7).EnableAt("graphio/read/truncate", 1)
	got, err := graphio.LoadInjected(path, "", 0, in)
	if err == nil {
		t.Fatal("LoadInjected succeeded despite injected truncation")
	}
	if got != nil {
		t.Errorf("LoadInjected returned a graph (%d vertices) alongside %v",
			got.NumVertices(), err)
	}

	// Without injection the very same file is intact.
	g2, err := graphio.Load(path, "", 0)
	if err != nil {
		t.Fatalf("clean Load failed: %v", err)
	}
	if !g.Equal(g2) {
		t.Error("clean round trip lost the graph")
	}
}

// TestInjectedReadErrIsTransient checks a read-error fault propagates out of
// the loader still recognisable as transient, which is what the experiment
// harness's retry path keys on.
func TestInjectedReadErrIsTransient(t *testing.T) {
	g := gen.Grid2D(4, 4)
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := graphio.WriteFile(path, g, graphio.Binary); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	in := fault.New(3).EnableAt("graphio/read/err", 1)
	_, err := graphio.LoadInjected(path, "", 0, in)
	if err == nil {
		t.Fatal("LoadInjected succeeded despite injected read error")
	}
	if !fault.IsTransient(err) {
		t.Errorf("injected read error %v lost its transient marker", err)
	}
	// The retry convention: a second identical attempt advances the call
	// counter past the armed index and succeeds.
	if _, err := graphio.LoadInjected(path, "", 0, in); err != nil {
		t.Errorf("retry after one-shot fault failed: %v", err)
	}
}

// TestDeterministicStreams checks the seed contract: same seed, same
// per-site call sequence → identical decisions; and the streams of two
// sites are independent, so consulting one never perturbs the other.
func TestDeterministicStreams(t *testing.T) {
	decisions := func(in *fault.Injector, interleave bool) []bool {
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Fire("a")
			if interleave {
				in.Fire("b") // foreign-site traffic must not matter
			}
		}
		return out
	}
	a := decisions(fault.New(99).Enable("a", 0.3), false)
	b := decisions(fault.New(99).Enable("a", 0.3).Enable("b", 0.5), true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged (%v vs %v) under interleaved traffic", i, a[i], b[i])
		}
	}
	fired := 0
	for _, d := range a {
		if d {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("rate 0.3 fired %d/%d times; stream looks degenerate", fired, len(a))
	}
}
