package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"micgraph/internal/core"
	"micgraph/internal/fault"
)

// post submits a spec and returns the HTTP status plus the decoded body.
func post(t *testing.T, ts *httptest.Server, spec JobSpec) (int, JobView) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, v
}

// wait polls a job until it reaches a terminal status.
func wait(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch v.Status {
		case StatusSucceeded, StatusFailed, StatusCancelled:
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

// result fetches a job's full JSONL result body.
func result(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

func jsonLines(t *testing.T, raw string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for i, line := range strings.Split(strings.TrimRight(raw, "\n"), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("result line %d is not JSON: %v\n%s", i+1, err, line)
		}
		out = append(out, m)
	}
	return out
}

func TestServeKernelJob(t *testing.T) {
	s := New(Config{Workers: 1, KernelWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	code, v := post(t, ts, JobSpec{Kind: KindBFS, Graph: GraphSpec{Suite: "pwtk", Scale: 8}})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	if fin := wait(t, ts, v.ID); fin.Status != StatusSucceeded {
		t.Fatalf("job = %+v", fin)
	}
	lines := jsonLines(t, result(t, ts, v.ID))
	if len(lines) != 2 || lines[0]["type"] != "result" || lines[1]["type"] != "counters" {
		t.Fatalf("result lines = %v", lines)
	}
	if lv, _ := lines[0]["levels"].(float64); lv < 2 {
		t.Errorf("BFS levels = %v", lines[0]["levels"])
	}

	// Same graph again: must be a cache hit, no second load.
	code, v2 := post(t, ts, JobSpec{Kind: KindColoring, Graph: GraphSpec{Suite: "pwtk", Scale: 8}})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	if fin := wait(t, ts, v2.ID); fin.Status != StatusSucceeded {
		t.Fatalf("job = %+v", fin)
	}
	st := s.Cache().Stats()
	if st.Loads != 1 || st.Hits != 1 {
		t.Errorf("cache stats = %+v, want one load and one hit", st)
	}
}

// TestServeHybridAndComponentsJobs covers the kernel variants added with
// the direction-optimizing BFS work: the "hybrid" bfs variant reports its
// per-direction level split, and the "components" job kind runs both
// parallel variants against the resident worker scratch.
func TestServeHybridAndComponentsJobs(t *testing.T) {
	s := New(Config{Workers: 1, KernelWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	code, v := post(t, ts, JobSpec{Kind: KindBFS, Variant: "hybrid", Graph: GraphSpec{Suite: "pwtk", Scale: 8}})
	if code != http.StatusAccepted {
		t.Fatalf("submit hybrid = %d", code)
	}
	if fin := wait(t, ts, v.ID); fin.Status != StatusSucceeded {
		t.Fatalf("hybrid job = %+v", fin)
	}
	lines := jsonLines(t, result(t, ts, v.ID))
	res := lines[0]
	if res["variant"] != "hybrid" {
		t.Fatalf("variant = %v", res["variant"])
	}
	lv, _ := res["levels"].(float64)
	td, _ := res["td_levels"].(float64)
	bu, _ := res["bu_levels"].(float64)
	if lv < 2 || td+bu != lv {
		t.Errorf("hybrid levels = %v, td = %v, bu = %v; want td+bu == levels >= 2", lv, td, bu)
	}

	for _, variant := range []string{"labelprop", "pointerjump"} {
		code, v := post(t, ts, JobSpec{Kind: KindComponents, Variant: variant, Graph: GraphSpec{Suite: "pwtk", Scale: 8}})
		if code != http.StatusAccepted {
			t.Fatalf("submit %s = %d", variant, code)
		}
		if fin := wait(t, ts, v.ID); fin.Status != StatusSucceeded {
			t.Fatalf("%s job = %+v", variant, fin)
		}
		res := jsonLines(t, result(t, ts, v.ID))[0]
		if n, _ := res["components"].(float64); n < 1 {
			t.Errorf("%s components = %v", variant, res["components"])
		}
	}
}

// TestServeConcurrentSweepsShareOneLoad is the acceptance scenario: two
// concurrent sweep submissions against one daemon trigger exactly one
// suite generation (singleflight observed via cache stats) and both
// streams carry per-cell telemetry.
func TestServeConcurrentSweepsShareOneLoad(t *testing.T) {
	s := New(Config{Workers: 2, KernelWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	spec := JobSpec{Kind: KindSweep, SweepScale: 8, Experiments: []string{"fig4a"}}
	code1, v1 := post(t, ts, spec)
	code2, v2 := post(t, ts, spec)
	if code1 != http.StatusAccepted || code2 != http.StatusAccepted {
		t.Fatalf("submits = %d, %d", code1, code2)
	}
	fin1, fin2 := wait(t, ts, v1.ID), wait(t, ts, v2.ID)
	if fin1.Status != StatusSucceeded || fin2.Status != StatusSucceeded {
		t.Fatalf("jobs = %+v / %+v", fin1, fin2)
	}

	st := s.Cache().Stats()
	if st.Loads != 1 {
		t.Errorf("suite loaded %d times, want 1 (singleflight): %+v", st.Loads, st)
	}
	if st.Shared+st.Hits != 1 {
		t.Errorf("second sweep neither shared the in-flight load nor hit: %+v", st)
	}

	for _, id := range []string{v1.ID, v2.ID} {
		raw := result(t, ts, id)
		exps, err := DecodeExperiments(strings.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if len(exps) != 1 || exps[0].ID != "fig4a" {
			t.Fatalf("decoded %d experiments", len(exps))
		}
		if len(exps[0].Series) == 0 || len(exps[0].Cells) == 0 {
			t.Errorf("experiment missing series/cells: %d/%d",
				len(exps[0].Series), len(exps[0].Cells))
		}
		for _, c := range exps[0].Cells {
			if c.Stats.Phases == 0 {
				t.Fatal("cell telemetry missing SimStats")
			}
		}
		// The decoded experiment renders.
		var svg bytes.Buffer
		if err := core.WriteSVG(&svg, exps[0]); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(svg.String(), "<svg") {
			t.Error("WriteSVG produced no SVG")
		}
	}
}

// TestServeBackpressure is the acceptance scenario: a submission against a
// full queue gets 429 + Retry-After while the earlier jobs are unaffected.
func TestServeBackpressure(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	s.hookExec = func(ctx context.Context, j *Job) bool {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return true
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	spec := JobSpec{Kind: KindBFS, Graph: GraphSpec{Suite: "pwtk", Scale: 8}}
	code1, v1 := post(t, ts, spec) // occupies the worker
	// Wait until the worker picked it up so the queue slot is free.
	deadlineWait(t, func() bool { return s.Queue().Stats().Running == 1 })
	code2, v2 := post(t, ts, spec) // fills the queue
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if code1 != http.StatusAccepted || code2 != http.StatusAccepted {
		t.Fatalf("submits = %d, %d", code1, code2)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(release)
	if fin := wait(t, ts, v1.ID); fin.Status != StatusSucceeded {
		t.Errorf("job 1 = %+v", fin)
	}
	if fin := wait(t, ts, v2.ID); fin.Status != StatusSucceeded {
		t.Errorf("job 2 = %+v", fin)
	}
}

// TestServeFaultIsolation is the acceptance scenario: an injected panic
// fails only the job that drew it; the daemon and subsequent jobs are
// untouched.
func TestServeFaultIsolation(t *testing.T) {
	in := fault.New(11)
	in.EnableAt("team/chunk/panic", 1) // first chunk boundary panics
	s := New(Config{Workers: 1, KernelWorkers: 2, Injector: in})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	spec := JobSpec{Kind: KindColoring, Variant: "openmp",
		Graph: GraphSpec{Suite: "pwtk", Scale: 8}}
	_, v1 := post(t, ts, spec)
	fin := wait(t, ts, v1.ID)
	if fin.Status != StatusFailed {
		t.Fatalf("injected job = %+v, want failed", fin)
	}
	if !strings.Contains(fin.Error, "fault") && !strings.Contains(fin.Error, "panic") {
		t.Errorf("failure does not name the fault: %q", fin.Error)
	}
	lines := jsonLines(t, result(t, ts, v1.ID))
	if len(lines) == 0 || lines[len(lines)-1]["type"] != "error" {
		t.Errorf("failed job stream missing error line: %v", lines)
	}

	// The daemon is alive and the next job succeeds (the site only fired
	// at call 1).
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after failed job: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	_, v2 := post(t, ts, spec)
	if fin := wait(t, ts, v2.ID); fin.Status != StatusSucceeded {
		t.Errorf("job after injected failure = %+v", fin)
	}
}

// TestServeGracefulDrain is the acceptance scenario: drain lets in-flight
// jobs finish, rejects new work, then completes.
func TestServeGracefulDrain(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	release := make(chan struct{})
	s.hookExec = func(ctx context.Context, j *Job) bool {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return true
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := JobSpec{Kind: KindBFS, Graph: GraphSpec{Suite: "pwtk", Scale: 8}}
	_, v1 := post(t, ts, spec)
	deadlineWait(t, func() bool { return s.Queue().Stats().Running == 1 })

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	deadlineWait(t, func() bool { return s.Queue().Draining() })

	// Draining: health reports it, new submissions bounce with 503.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health.Status != "draining" {
		t.Errorf("healthz status = %q, want draining", health.Status)
	}
	body, _ := json.Marshal(spec)
	resp, err = http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", resp.StatusCode)
	}

	select {
	case err := <-drained:
		t.Fatalf("drain returned %v with a job in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	if fin := wait(t, ts, v1.ID); fin.Status != StatusSucceeded {
		t.Errorf("in-flight job after drain = %+v", fin)
	}
}

func TestServeBadRequests(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	for _, body := range []string{
		`{`,
		`{"kind":"nope"}`,
		`{"kind":"bfs"}`,
		`{"kind":"sweep","experiments":["figZZ"]}`,
		`{"kind":"bfs","graph":{"suite":"pwtk"},"timeout_ms":-1}`,
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s = %d, want 400", body, resp.StatusCode)
		}
	}
	for _, path := range []string{"/jobs/nope", "/jobs/nope/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestServeMetricsz(t *testing.T) {
	s := New(Config{Workers: 1, KernelWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	_, v := post(t, ts, JobSpec{Kind: KindColoring, Graph: GraphSpec{Suite: "pwtk", Scale: 8}})
	wait(t, ts, v.ID)

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Counters struct {
			Totals struct {
				ChunksClaimed int64 `json:"chunks_claimed"`
			} `json:"totals"`
		} `json:"counters"`
		Cache CacheStats     `json:"cache"`
		Queue QueueStats     `json:"queue"`
		Jobs  map[string]int `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Counters.Totals.ChunksClaimed == 0 {
		t.Error("scheduler counters not wired into the serving path")
	}
	if m.Cache.Loads != 1 || m.Queue.Completed != 1 || m.Jobs[StatusSucceeded] != 1 {
		t.Errorf("metricsz = %+v", m)
	}
}

// deadlineWait spins until cond holds (5s cap).
func deadlineWait(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeCancelQueuedJob checks DELETE on a queued job: the worker
// observes the already-cancelled context and finishes it as cancelled.
func TestServeCancelQueuedJob(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	release := make(chan struct{})
	s.hookExec = func(ctx context.Context, j *Job) bool {
		if j.Spec.Kind == KindBFS {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return true
		}
		return ctx.Err() != nil // queued coloring job: run normally unless cancelled
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	_, v1 := post(t, ts, JobSpec{Kind: KindBFS, Graph: GraphSpec{Suite: "pwtk", Scale: 8}})
	deadlineWait(t, func() bool { return s.Queue().Stats().Running == 1 })
	_, v2 := post(t, ts, JobSpec{Kind: KindColoring, Graph: GraphSpec{Suite: "pwtk", Scale: 8}})

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/jobs/%s", ts.URL, v2.ID), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	close(release)
	if fin := wait(t, ts, v2.ID); fin.Status != StatusCancelled {
		t.Errorf("cancelled queued job = %+v", fin)
	}
	if fin := wait(t, ts, v1.ID); fin.Status != StatusSucceeded {
		t.Errorf("running job = %+v", fin)
	}
}
