// Package serve is the serving subsystem of the reproduction: a resident
// daemon layer that amortises graph load and layout cost across many kernel
// runs and experiment sweeps. One-shot CLIs (bfsrun, colorgraph, micbench)
// regenerate their inputs on every invocation; micserved keeps them
// resident behind a byte-budgeted cache and runs submitted jobs on a fixed
// worker pool with admission control, per-job deadlines, streaming JSONL
// results, and fault containment — an injected stall or panic fails the job
// that drew it, never the daemon.
package serve

import (
	"container/list"
	"context"
	"sync"

	"micgraph/internal/graph"
)

// CacheStats is a point-in-time snapshot of cache activity, exported by
// /metricsz and asserted by the end-to-end tests: Loads counts actual
// loader invocations, Shared counts getters that piggy-backed on another
// getter's in-flight load (singleflight dedup), so two concurrent sweeps
// over one graph show Loads=1 regardless of arrival order.
type CacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Loads         int64 `json:"loads"`
	Shared        int64 `json:"shared"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	ResidentBytes int64 `json:"resident_bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`
	Entries       int   `json:"entries"`
}

// centry is one resident cache entry; elem's Value points back to it.
type centry struct {
	key   string
	val   any
	bytes int64
	elem  *list.Element
}

// inflight is one in-progress load that later getters of the same key wait
// on instead of loading again.
type inflight struct {
	done  chan struct{}
	val   any
	err   error
	epoch uint64
	gen   uint64
}

// Cache is a concurrency-safe cache of loaded graphs (and generated
// experiment suites) with three behaviours the serving path needs:
//
//   - LRU eviction by resident bytes: entries are sized by their CSR
//     footprint and evicted least-recently-used first once the byte budget
//     is exceeded. An entry larger than the whole budget is returned to its
//     getter but not retained.
//
//   - Singleflight dedup: N concurrent Gets for one key run the loader
//     once; the other N-1 block until it finishes and share the result
//     (or its error). Loads for different keys proceed independently.
//
//   - Generation-based invalidation: Invalidate bumps the key's generation
//     and drops the resident entry; an in-flight load that started before
//     the bump still hands its result to its waiters but is not inserted,
//     so a stale load can never repopulate the cache after invalidation.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	epoch   uint64 // bumped by InvalidateAll
	gens    map[string]uint64
	entries map[string]*centry
	lru     *list.List // front = most recently used
	loading map[string]*inflight
	stats   CacheStats
}

// NewCache creates a cache holding at most budget resident bytes (a budget
// <= 0 keeps nothing resident; every Get still works, via its loader).
func NewCache(budget int64) *Cache {
	return &Cache{
		budget:  budget,
		gens:    make(map[string]uint64),
		entries: make(map[string]*centry),
		lru:     list.New(),
		loading: make(map[string]*inflight),
	}
}

// Loader produces the value and its resident size in bytes for one key.
type Loader func(ctx context.Context) (any, int64, error)

// Get returns the cached value for key, loading it with load on a miss.
// Concurrent Gets for the same key trigger one load; the rest wait for it
// (or for their own context to be cancelled — cancellation of a waiter
// never cancels the load itself, which other getters may still want).
func (c *Cache) Get(ctx context.Context, key string, load Loader) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.stats.Hits++
		c.mu.Unlock()
		return e.val, nil
	}
	c.stats.Misses++
	if fl, ok := c.loading[key]; ok {
		c.stats.Shared++
		c.mu.Unlock()
		select {
		case <-fl.done:
			return fl.val, fl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	fl := &inflight{done: make(chan struct{}), epoch: c.epoch, gen: c.gens[key]}
	c.loading[key] = fl
	c.stats.Loads++
	c.mu.Unlock()

	val, bytes, err := load(ctx)

	c.mu.Lock()
	delete(c.loading, key)
	fl.val, fl.err = val, err
	if err == nil && fl.epoch == c.epoch && fl.gen == c.gens[key] {
		c.insertLocked(key, val, bytes)
	}
	close(fl.done)
	c.mu.Unlock()
	return val, err
}

// insertLocked adds the entry as most-recently-used and evicts from the
// cold end until the budget holds again. An entry larger than the whole
// budget is not inserted at all — retaining it is impossible, and evicting
// everything else first just to discover that would wipe the cache.
func (c *Cache) insertLocked(key string, val any, bytes int64) {
	if bytes > c.budget {
		return
	}
	if old, ok := c.entries[key]; ok {
		// Possible when an entry was inserted by a racing epoch-matched
		// load; replace it.
		c.removeLocked(old, false)
	}
	e := &centry{key: key, val: val, bytes: bytes}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.bytes += bytes
	for c.bytes > c.budget && c.lru.Len() > 0 {
		c.removeLocked(c.lru.Back().Value.(*centry), true)
	}
}

func (c *Cache) removeLocked(e *centry, evicted bool) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
	c.bytes -= e.bytes
	if evicted {
		c.stats.Evictions++
	}
}

// Invalidate drops key's resident entry (if any) and bumps its generation
// so an in-flight load started before the call cannot reinstate it.
func (c *Cache) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[key]++
	c.stats.Invalidations++
	if e, ok := c.entries[key]; ok {
		c.removeLocked(e, false)
	}
}

// InvalidateAll empties the cache and bumps the global epoch, orphaning
// every in-flight load at once.
func (c *Cache) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	c.stats.Invalidations++
	for _, e := range c.entries {
		c.lru.Remove(e.elem)
	}
	c.entries = make(map[string]*centry)
	c.bytes = 0
}

// Keys returns the resident keys from most to least recently used.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.lru.Len())
	for e := c.lru.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*centry).key)
	}
	return out
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.ResidentBytes = c.bytes
	s.BudgetBytes = c.budget
	s.Entries = len(c.entries)
	return s
}

// GraphBytes is the resident CSR footprint of a graph: 8 bytes per xadj
// offset plus 4 per adjacency entry.
func GraphBytes(g *graph.Graph) int64 {
	return int64(len(g.Xadj()))*8 + int64(len(g.AdjRaw()))*4
}
