package serve

import (
	"context"
	"sync"
	"testing"

	"micgraph/internal/xrand"
)

// TestServeJobTotalsConservation is the property-style unit-layer twin of
// the e2e chaos oracle's conservation invariant: under random concurrent
// interleavings of submit (fast, failing, and blocking specs), cancel and
// completion, every Totals() snapshot must satisfy
//
//	Submitted == Rejected + Succeeded + Failed + Cancelled + InFlight
//
// exactly — not eventually, not within slack — and at quiescence the
// terminal counts must tile Accepted and match a client-side ledger of
// every job the test was handed. Run under -race this doubles as the
// regression gate for the accounting's locking discipline.
func TestServeJobTotalsConservation(t *testing.T) {
	s := New(Config{Workers: 3, QueueDepth: 4})
	s.hookExec = func(ctx context.Context, j *Job) bool {
		switch j.Spec.Variant {
		case "block": // parks until cancelled (by the driver or the final sweep)
			<-ctx.Done()
			return true
		case "bogus": // runs for real and fails on the unknown variant
			return false
		default:
			return true // instant success
		}
	}

	const (
		drivers = 4
		iters   = 150
	)
	var (
		mu       sync.Mutex
		accepted []*Job
	)
	check := func(where string) {
		tot := s.Totals()
		if got := tot.Rejected + tot.Succeeded + tot.Failed + tot.Cancelled + tot.InFlight; got != tot.Submitted {
			t.Errorf("%s: conservation violated: %+v (rhs sum %d)", where, tot, got)
		}
		if tot.InFlight < 0 || tot.Accepted != tot.Submitted-tot.Rejected {
			t.Errorf("%s: inconsistent totals: %+v", where, tot)
		}
	}

	var wg sync.WaitGroup
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for i := 0; i < iters; i++ {
				switch rng.Intn(10) {
				case 0, 1: // blocking job: needs a cancel to terminate
					spec := JobSpec{Kind: KindBFS, Variant: "block",
						Graph: GraphSpec{Suite: "pwtk", Scale: 8}}
					if j, err := s.Submit(spec); err == nil {
						mu.Lock()
						accepted = append(accepted, j)
						mu.Unlock()
					}
				case 2: // malformed spec: rejected at validation
					if _, err := s.Submit(JobSpec{Kind: "nope"}); err == nil {
						t.Error("malformed spec accepted")
					}
				case 3: // unknown variant: accepted, then fails at run time
					spec := JobSpec{Kind: KindBFS, Variant: "bogus",
						Graph: GraphSpec{Suite: "pwtk", Scale: 8}}
					if j, err := s.Submit(spec); err == nil {
						mu.Lock()
						accepted = append(accepted, j)
						mu.Unlock()
					}
				case 4: // cancel a random job this test owns
					mu.Lock()
					if len(accepted) > 0 {
						accepted[rng.Intn(len(accepted))].Cancel()
					}
					mu.Unlock()
				case 5:
					check("mid-flight")
				default: // instant job; queue-full rejections happen naturally
					spec := JobSpec{Kind: KindBFS,
						Graph: GraphSpec{Suite: "pwtk", Scale: 8}}
					if j, err := s.Submit(spec); err == nil {
						mu.Lock()
						accepted = append(accepted, j)
						mu.Unlock()
					}
				}
			}
		}(uint64(d) + 1)
	}
	wg.Wait()

	// Quiesce: cancel every still-blocked job, then drain.
	for _, j := range accepted {
		j.Cancel()
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	check("after drain")

	tot := s.Totals()
	if tot.InFlight != 0 {
		t.Errorf("in-flight after drain = %d, want 0: %+v", tot.InFlight, tot)
	}
	if got := int64(len(accepted)); tot.Accepted != got {
		t.Errorf("accepted = %d, ledger has %d", tot.Accepted, got)
	}
	// Cross-check the server's terminal totals against the ledger's ground
	// truth: every accepted job must be terminal, and the per-status counts
	// must match exactly.
	var succ, failed, cancelled int64
	for _, j := range accepted {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %s stuck non-terminal after drain", j.ID)
		}
		switch j.Status() {
		case StatusSucceeded:
			succ++
		case StatusFailed:
			failed++
		case StatusCancelled:
			cancelled++
		default:
			t.Fatalf("job %s in non-terminal status %s after drain", j.ID, j.Status())
		}
	}
	if tot.Succeeded != succ || tot.Failed != failed || tot.Cancelled != cancelled {
		t.Errorf("totals %+v disagree with ledger (succ %d, failed %d, cancelled %d)",
			tot, succ, failed, cancelled)
	}
}
