package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"micgraph/internal/core"
	"micgraph/internal/graphio"
	"micgraph/internal/telemetry"
)

// Job kinds accepted by POST /jobs.
const (
	KindBFS        = "bfs"        // one BFS traversal (bfsrun's variants, including hybrid)
	KindColoring   = "coloring"   // one speculative coloring run
	KindComponents = "components" // one connected-components run (labelprop / pointerjump)
	KindIrregular  = "irregular"  // the micbench irregular kernel
	KindSweep      = "sweep"      // experiment sweeps (core.RunMany)
	KindExport     = "export"     // serialise a loaded graph to a file on the daemon host
)

// GraphSpec names the input graph of a kernel job: either a file path on
// the daemon's filesystem or a builtin suite graph with a shrink scale —
// the same -file/-graph/-scale convention the CLIs use.
type GraphSpec struct {
	File  string `json:"file,omitempty"`
	Suite string `json:"suite,omitempty"`
	Scale int    `json:"scale,omitempty"`
}

// Key is the cache key of the spec.
func (g GraphSpec) Key() string {
	if g.File != "" {
		return "file:" + g.File
	}
	return fmt.Sprintf("suite:%s@%d", g.Suite, g.Scale)
}

// JobSpec is the body of POST /jobs.
type JobSpec struct {
	Kind  string    `json:"kind"`
	Graph GraphSpec `json:"graph,omitempty"`

	// Kernel options (bfs, coloring, irregular).
	Variant string `json:"variant,omitempty"` // bfs variant or coloring/irregular runtime
	Source  int    `json:"source,omitempty"`  // bfs source; 0 or absent = |V|/2 as in the paper
	Chunk   int    `json:"chunk,omitempty"`   // chunk/grain/block size
	Iters   int    `json:"iters,omitempty"`   // irregular kernel iterations

	// Sweep options: experiment IDs (empty = all) and the suite shrink
	// scale shared by every experiment of the job.
	Experiments []string `json:"experiments,omitempty"`
	SweepScale  int      `json:"sweep_scale,omitempty"`
	Retries     int      `json:"retries,omitempty"` // bounded retries per sweep cell

	// Export options: destination path on the daemon's filesystem and
	// serialization format ("mtx", "bin" or "el"; default by extension).
	// The write is atomic (graphio.WriteFile): a failed or fault-injected
	// export leaves the destination untouched, never truncated.
	Output string `json:"output,omitempty"`
	Format string `json:"format,omitempty"`

	// TimeoutMS bounds the job's run time (0 = the server default). The
	// server clamps it to its configured maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// normalize fills defaults and validates the spec.
func (sp *JobSpec) normalize() error {
	switch sp.Kind {
	case KindBFS, KindColoring, KindComponents, KindIrregular:
		if sp.Graph.File == "" && sp.Graph.Suite == "" {
			return fmt.Errorf("serve: %s job needs graph.file or graph.suite", sp.Kind)
		}
		if sp.Graph.Scale <= 0 {
			sp.Graph.Scale = 4
		}
		if sp.Variant == "" {
			switch sp.Kind {
			case KindBFS:
				sp.Variant = "omp-block-relaxed"
			case KindComponents:
				sp.Variant = "labelprop"
			default:
				sp.Variant = "openmp"
			}
		}
		if sp.Chunk <= 0 {
			sp.Chunk = 100
		}
		if sp.Iters <= 0 {
			sp.Iters = 5
		}
	case KindExport:
		if sp.Graph.File == "" && sp.Graph.Suite == "" {
			return fmt.Errorf("serve: export job needs graph.file or graph.suite")
		}
		if sp.Graph.Scale <= 0 {
			sp.Graph.Scale = 4
		}
		if sp.Output == "" {
			return fmt.Errorf("serve: export job needs an output path")
		}
		if sp.Format != "" {
			if _, err := graphio.ParseFormat(sp.Format); err != nil {
				return err
			}
		}
	case KindSweep:
		if sp.SweepScale <= 0 {
			sp.SweepScale = 4
		}
		known := map[string]bool{}
		for _, id := range core.AllIDs() {
			known[id] = true
		}
		for _, id := range sp.Experiments {
			if !known[id] {
				return fmt.Errorf("serve: unknown experiment id %q", id)
			}
		}
	case "":
		return fmt.Errorf("serve: job spec needs a kind (bfs, coloring, components, irregular, sweep, export)")
	default:
		return fmt.Errorf("serve: unknown job kind %q", sp.Kind)
	}
	if sp.TimeoutMS < 0 {
		return fmt.Errorf("serve: negative timeout_ms")
	}
	if sp.Retries < 0 {
		return fmt.Errorf("serve: negative retries")
	}
	return nil
}

// Job statuses.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusSucceeded = "succeeded"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// Spans is a job's latency breakdown, stamped on the server's injected
// clock and exposed in job status JSON once the job is terminal. QueueNS
// covers admission to worker pickup; CacheNS, ExecNS and FlushNS are
// disjoint sub-intervals of the run (graph/suite cache fetch, kernel or
// sweep execution, result-stream writes); TotalNS covers admission to
// terminal. Because the sub-spans never overlap and all read one clock,
//
//	QueueNS + CacheNS + ExecNS + FlushNS <= TotalNS
//
// holds for every job — the invariant the e2e latency-probe asserts.
type Spans struct {
	QueueNS int64 `json:"queue_ns"`
	CacheNS int64 `json:"cache_ns"`
	ExecNS  int64 `json:"exec_ns"`
	FlushNS int64 `json:"flush_ns"`
	TotalNS int64 `json:"total_ns"`
}

// Job is one admitted unit of work. Result lines stream into Result while
// the job runs; status transitions are queued -> running -> one of
// succeeded/failed/cancelled.
type Job struct {
	ID     string
	Spec   JobSpec
	Result *Stream

	clock telemetry.Clock // the server's injected time source

	// shard and requestID are the cluster-trace identity stamped on every
	// result line (both empty on a single-node daemon — lines stay
	// byte-identical to the pre-cluster format).
	shard     string
	requestID string

	mu       sync.Mutex
	status   string
	err      string
	created  time.Time
	started  time.Time
	finished time.Time
	spans    Spans
	ctx      context.Context // job-lifetime context, live from submission
	cancel   context.CancelFunc
	done     chan struct{}
}

func newJob(id string, spec JobSpec, clock telemetry.Clock, shard, requestID string) *Job {
	if clock == nil {
		clock = telemetry.System
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:        id,
		Spec:      spec,
		Result:    NewStream(),
		clock:     clock,
		shard:     shard,
		requestID: requestID,
		status:    StatusQueued,
		created:   clock.Now(),
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
	}
	j.Result.SetStamp(shard, requestID)
	return j
}

// RequestID returns the propagated submission trace ID ("" when none).
func (j *Job) RequestID() string { return j.requestID }

// now reads the job's injected clock (the runner's timestamp source).
func (j *Job) now() time.Time { return j.clock.Now() }

// addSpanNS accumulates an elapsed sub-interval into one span field,
// clamping negative durations (possible under a misbehaving fake clock)
// to zero.
func (j *Job) addSpanNS(dst *int64, d time.Duration) {
	if d < 0 {
		d = 0
	}
	j.mu.Lock()
	*dst += int64(d)
	j.mu.Unlock()
}

func (j *Job) addCache(d time.Duration) { j.addSpanNS(&j.spans.CacheNS, d) }
func (j *Job) addExec(d time.Duration)  { j.addSpanNS(&j.spans.ExecNS, d) }
func (j *Job) addFlush(d time.Duration) { j.addSpanNS(&j.spans.FlushNS, d) }

// Spans returns a copy of the latency breakdown. All fields are final
// once the job is terminal.
func (j *Job) Spans() Spans {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.spans
}

// Status returns the current status string.
func (j *Job) Status() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Err returns the failure message ("" while running or on success).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Done is closed when the job reaches a terminal status.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel asks a queued or running job to stop. Queued jobs are still
// drained by a worker, which observes the cancelled context immediately
// and finishes them as cancelled.
func (j *Job) Cancel() { j.cancel() }

func (j *Job) start() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = j.clock.Now()
	if d := j.started.Sub(j.created); d > 0 {
		j.spans.QueueNS = int64(d)
	}
	j.mu.Unlock()
}

func (j *Job) finish(status, errMsg string) {
	j.mu.Lock()
	j.status = status
	j.err = errMsg
	j.finished = j.clock.Now()
	if d := j.finished.Sub(j.created); d > 0 {
		j.spans.TotalNS = int64(d)
	}
	j.mu.Unlock()
	j.Result.Close()
	close(j.done)
}

// JobView is the JSON shape of GET /jobs/{id}.
type JobView struct {
	ID string `json:"id"`
	// Shard names the cluster node that owns (ran) the job; empty on a
	// single-node daemon.
	Shard string `json:"shard,omitempty"`
	// RequestID is the propagated X-Micserved-Request-ID of the submission
	// that created the job, when one was; it joins the entry node's access
	// trace to the owning shard's result stream.
	RequestID   string  `json:"request_id,omitempty"`
	Kind        string  `json:"kind"`
	Status      string  `json:"status"`
	Error       string  `json:"error,omitempty"`
	Created     string  `json:"created"`
	Started     string  `json:"started,omitempty"`
	Finished    string  `json:"finished,omitempty"`
	RunSeconds  float64 `json:"run_seconds,omitempty"`
	ResultBytes int     `json:"result_bytes"`
	ResultPath  string  `json:"result_path"`
	// Spans is the latency breakdown, present once the job is terminal
	// (all spans final by then).
	Spans *Spans `json:"spans,omitempty"`
}

// View snapshots the job for the status endpoint.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.ID,
		Shard:       j.shard,
		RequestID:   j.requestID,
		Kind:        j.Spec.Kind,
		Status:      j.status,
		Error:       j.err,
		Created:     j.created.UTC().Format(time.RFC3339Nano),
		ResultBytes: j.Result.Len(),
		ResultPath:  "/jobs/" + j.ID + "/result",
	}
	if !j.started.IsZero() {
		v.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
		v.RunSeconds = j.finished.Sub(j.started).Seconds()
		sp := j.spans
		v.Spans = &sp
	}
	return v
}
