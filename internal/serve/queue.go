package serve

import (
	"context"
	"errors"
	"sync"
)

// Admission-control errors, mapped by the HTTP layer to 429 (+Retry-After)
// and 503 respectively.
var (
	ErrQueueFull = errors.New("serve: job queue full")
	ErrDraining  = errors.New("serve: server draining, not accepting jobs")
)

// QueueStats is the /metricsz snapshot of queue activity. QueuedMax and
// RunningMax are lifetime high-water marks — the gauges capacity tuning
// reads: a QueuedMax pinned at Depth means the queue saturated (and some
// submits likely bounced with 429s), a RunningMax below Workers means the
// worker pool never filled.
type QueueStats struct {
	Workers    int   `json:"workers"`
	Depth      int   `json:"depth"`
	Queued     int   `json:"queued"`
	QueuedMax  int   `json:"queued_max"`
	Submitted  int64 `json:"submitted"`
	Rejected   int64 `json:"rejected"`
	Running    int   `json:"running"`
	RunningMax int   `json:"running_max"`
	Completed  int64 `json:"completed"`
	Draining   bool  `json:"draining"`
}

// Queue is a bounded job queue drained by a fixed worker pool. Admission
// is non-blocking: a submit against a full queue fails immediately with
// ErrQueueFull (backpressure for the HTTP layer to convert into 429), and
// once draining has begun every submit fails with ErrDraining. Drain lets
// everything already admitted — queued and in-flight — run to completion.
type Queue struct {
	jobs chan *Job
	exec func(workerID int, j *Job)
	wg   sync.WaitGroup

	mu         sync.Mutex
	workers    int
	draining   bool
	submitted  int64
	rejected   int64
	running    int
	completed  int64
	queuedMax  int
	runningMax int
}

// NewQueue starts workers goroutines draining a queue of the given depth.
// exec runs one job on one worker; it must contain its own panics.
func NewQueue(workers, depth int, exec func(workerID int, j *Job)) *Queue {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	q := &Queue{jobs: make(chan *Job, depth), exec: exec}
	q.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go q.worker(w)
	}
	q.mu.Lock()
	q.workers = workers
	q.mu.Unlock()
	return q
}

func (q *Queue) worker(id int) {
	defer q.wg.Done()
	for j := range q.jobs {
		q.mu.Lock()
		q.running++
		if q.running > q.runningMax {
			q.runningMax = q.running
		}
		q.mu.Unlock()
		q.exec(id, j)
		q.mu.Lock()
		q.running--
		q.completed++
		q.mu.Unlock()
	}
}

// Submit admits j or reports why it cannot.
func (q *Queue) Submit(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		q.rejected++
		return ErrDraining
	}
	select {
	case q.jobs <- j:
		q.submitted++
		if n := len(q.jobs); n > q.queuedMax {
			q.queuedMax = n
		}
		return nil
	default:
		q.rejected++
		return ErrQueueFull
	}
}

// Draining reports whether Drain has begun.
func (q *Queue) Draining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.draining
}

// BeginDrain stops admission: every later Submit fails with ErrDraining.
// Idempotent. Splitting this from AwaitDrain lets the server cancel
// queued-but-unstarted jobs *after* admission has stopped (so none can
// slip in behind the cancellation sweep) and *before* waiting, keeping
// the drain wait bounded by the jobs already in flight.
func (q *Queue) BeginDrain() {
	q.mu.Lock()
	if !q.draining {
		q.draining = true
		close(q.jobs)
	}
	q.mu.Unlock()
}

// AwaitDrain waits until every admitted job has been handed to a worker
// and finished, or until ctx is cancelled (the workers keep draining in
// the background in that case; the caller is abandoning the wait, not the
// jobs). Call BeginDrain first.
func (q *Queue) AwaitDrain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drain stops admission and waits until every admitted job has finished
// (BeginDrain + AwaitDrain).
func (q *Queue) Drain(ctx context.Context) error {
	q.BeginDrain()
	return q.AwaitDrain(ctx)
}

// Stats snapshots the queue counters.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QueueStats{
		Workers:    q.workers,
		Depth:      cap(q.jobs),
		Queued:     len(q.jobs),
		QueuedMax:  q.queuedMax,
		Submitted:  q.submitted,
		Rejected:   q.rejected,
		Running:    q.running,
		RunningMax: q.runningMax,
		Completed:  q.completed,
		Draining:   q.draining,
	}
}
