package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"micgraph/internal/bfs"
	"micgraph/internal/coloring"
	"micgraph/internal/components"
	"micgraph/internal/fault"
	"micgraph/internal/mic"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

// Config sizes the serving subsystem. Zero values take the documented
// defaults, so Server{} construction in tests stays terse.
type Config struct {
	// Workers is the number of queue workers, i.e. jobs in flight at once
	// (default 2). Each owns a resident sched.Team and sched.Pool.
	Workers int
	// KernelWorkers is the scheduler parallelism inside each job
	// (default 4).
	KernelWorkers int
	// QueueDepth bounds the number of admitted-but-not-running jobs
	// (default 16). A submit beyond it gets 429 + Retry-After.
	QueueDepth int
	// CacheBytes is the graph cache budget (default 1 GiB).
	CacheBytes int64
	// DefaultTimeout/MaxTimeout bound per-job run time (defaults 2m/10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RetryAfter is the backpressure hint on 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxJobs caps retained terminal jobs (default 1024); the oldest
	// finished jobs are forgotten first.
	MaxJobs int

	// Injector, when set, flows fault injection through the service path:
	// graph loads read through it and every worker runtime gets its
	// SchedHook, so injected stalls and panics surface as per-job errors.
	Injector *fault.Injector
	// Stall is the injected stall duration for the sched hook (default
	// 10ms; only meaningful with an Injector).
	Stall time.Duration

	// KNF and Host are the simulated machines sweeps run on (defaults
	// mic.KNF() / mic.HostXeon()).
	KNF  *mic.Machine
	Host *mic.Machine

	// Store, when set, replaces the default single-node CacheStore (built
	// from CacheBytes and Injector) as the server's data plane. Cluster
	// shards leave this nil too — sharding is a placement decision made
	// above the server — but the seam lets tests substitute failing or
	// instrumented stores without touching the cache.
	Store Store

	// ShardID names this server inside a cluster. When set, job IDs are
	// prefixed "<shard>-" so they are globally unique and routable, every
	// result line is stamped with "shard" (and the submitting request's ID
	// when one was propagated), and JobView carries the shard. Empty for
	// the single-node daemon, whose behaviour stays byte-identical.
	ShardID string

	// Clock is the time source behind every timestamp the server stamps:
	// job creation/start/finish, latency spans, uptime (default
	// telemetry.System). Tests inject a fake to make spans deterministic;
	// micvet's wallclock analyzer keeps direct time.Now out of this
	// package so nothing bypasses it.
	Clock telemetry.Clock
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.KernelWorkers <= 0 {
		c.KernelWorkers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 1 << 30
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.Stall <= 0 {
		c.Stall = 10 * time.Millisecond
	}
	if c.KNF == nil {
		c.KNF = mic.KNF()
	}
	if c.Host == nil {
		c.Host = mic.HostXeon()
	}
	if c.Clock == nil {
		c.Clock = telemetry.System
	}
	return c
}

// latencySet aggregates every terminal job's spans into the shared
// fixed-bucket histograms /metricsz exports. One histogram per span keeps
// attribution separable: micload subtracts consecutive snapshots to get
// per-phase server-side distributions and compares them against its own
// client-observed latencies.
type latencySet struct {
	queueWait *telemetry.Histogram
	cacheLoad *telemetry.Histogram
	exec      *telemetry.Histogram
	flush     *telemetry.Histogram
	total     *telemetry.Histogram
}

func newLatencySet() latencySet {
	return latencySet{
		queueWait: telemetry.NewHistogram(),
		cacheLoad: telemetry.NewHistogram(),
		exec:      telemetry.NewHistogram(),
		flush:     telemetry.NewHistogram(),
		total:     telemetry.NewHistogram(),
	}
}

func (l latencySet) observe(sp Spans) {
	l.queueWait.ObserveNS(sp.QueueNS)
	l.cacheLoad.ObserveNS(sp.CacheNS)
	l.exec.ObserveNS(sp.ExecNS)
	l.flush.ObserveNS(sp.FlushNS)
	l.total.ObserveNS(sp.TotalNS)
}

// snapshot returns the JSON shape of /metricsz's "latency" block.
func (l latencySet) snapshot() map[string]telemetry.HistogramSnapshot {
	return map[string]telemetry.HistogramSnapshot{
		"queue_wait":   l.queueWait.Snapshot(),
		"cache_load":   l.cacheLoad.Snapshot(),
		"exec":         l.exec.Snapshot(),
		"stream_flush": l.flush.Snapshot(),
		"total":        l.total.Snapshot(),
	}
}

// Server is the micserved daemon core: cache + queue + job registry +
// HTTP handlers, independent of the actual listener so tests drive it via
// httptest.
type Server struct {
	cfg      Config
	store    Store
	queue    *Queue
	counters *telemetry.Counters
	lat      latencySet
	rts      []*workerRT
	started  time.Time

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // insertion order, for retention trimming
	seq    int64
	totals JobTotals // monotonic lifetime accounting, all mutated under mu

	// hookExec is a test seam: when set and it returns true, runJob skips
	// normal execution (the hook "ran" the job). Lets tests hold a worker
	// busy deterministically. Never set in production.
	hookExec func(ctx context.Context, j *Job) bool
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	store := cfg.Store
	if store == nil {
		store = NewCacheStore(cfg.CacheBytes, cfg.Injector)
	}
	s := &Server{
		cfg:      cfg,
		store:    store,
		counters: telemetry.NewCounters(cfg.KernelWorkers),
		lat:      newLatencySet(),
		jobs:     make(map[string]*Job),
		started:  cfg.Clock.Now(),
	}
	s.rts = make([]*workerRT, cfg.Workers)
	for i := range s.rts {
		rt := &workerRT{
			team: sched.NewTeam(cfg.KernelWorkers),
			pool: sched.NewPool(cfg.KernelWorkers),
			bfs:  bfs.NewScratch(),
			col:  coloring.NewScratch(),
			cmp:  components.NewScratch(),
		}
		rt.team.SetCounters(s.counters)
		rt.pool.SetCounters(s.counters)
		if cfg.Injector != nil {
			hook := cfg.Injector.SchedHook(cfg.Stall)
			rt.team.SetInject(hook)
			rt.pool.SetInject(hook)
		}
		s.rts[i] = rt
	}
	s.queue = NewQueue(cfg.Workers, cfg.QueueDepth, s.exec)
	return s
}

// JobTotals is the lifetime job accounting exported as "jobs_total" by
// /metricsz. Every field is monotonic except InFlight, which is derived
// (Accepted minus terminal) inside the same critical section as every
// mutation, so each snapshot satisfies the conservation law exactly:
//
//	Submitted == Rejected + Succeeded + Failed + Cancelled + InFlight
//
// regardless of how many submits, cancels and completions are racing.
// Unlike the "jobs" by-status map (which counts only *retained* jobs and
// shrinks as retention trims old terminal jobs), these totals never
// forget, which is what lets a black-box oracle check that no accepted
// job ever vanishes without reaching a terminal status.
type JobTotals struct {
	// Submitted counts every POST /jobs attempt, accepted or not.
	Submitted int64 `json:"submitted"`
	// Rejected counts submits that were not admitted: validation
	// failures, queue-full 429s and draining 503s.
	Rejected int64 `json:"rejected"`
	// Accepted = Submitted - Rejected: jobs the daemon owes a terminal
	// status.
	Accepted  int64 `json:"accepted"`
	Succeeded int64 `json:"succeeded"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	// InFlight is Accepted minus the terminal counts: jobs currently
	// queued or running. Zero once the daemon is idle or drained.
	InFlight int64 `json:"in_flight"`
}

// Totals snapshots the lifetime job accounting coherently.
func (s *Server) Totals() JobTotals {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.totals
	t.InFlight = t.Accepted - t.Succeeded - t.Failed - t.Cancelled
	return t
}

// Store exposes the server's data plane.
func (s *Server) Store() Store { return s.store }

// Cache exposes the graph cache (stats, invalidation) when the server
// runs on the default CacheStore, nil when a custom Store was injected.
func (s *Server) Cache() *Cache {
	if cs, ok := s.store.(*CacheStore); ok {
		return cs.Cache()
	}
	return nil
}

// Queue exposes the job queue (stats, direct drains in tests).
func (s *Server) Queue() *Queue { return s.queue }

// Submit validates and admits a job, returning it (with its assigned ID)
// or the admission error (ErrQueueFull, ErrDraining, or a validation
// error).
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	return s.SubmitRequest(spec, "")
}

// SubmitRequest is Submit with a propagated request ID: the
// X-Micserved-Request-ID value a cluster entry node stamped on the
// forwarded submission (or "" when none was). The ID is echoed on the
// job's view and on every result line of a sharded job, which is what
// makes a cross-shard trace joinable in the JSONL logs.
func (s *Server) SubmitRequest(spec JobSpec, requestID string) (*Job, error) {
	if err := spec.normalize(); err != nil {
		s.mu.Lock()
		s.totals.Submitted++
		s.totals.Rejected++
		s.mu.Unlock()
		return nil, err
	}
	// Count the job accepted *before* handing it to the queue: a worker may
	// pick it up and finish it before queue.Submit even returns, and the
	// terminal counters must never run ahead of Accepted (that would make a
	// /metricsz snapshot show negative in-flight and break conservation).
	// A queue rejection rolls the provisional acceptance back into Rejected
	// in one critical section, so no snapshot ever sees the attempt
	// unaccounted.
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("job-%06d", s.seq)
	if s.cfg.ShardID != "" {
		// Shard-prefixed IDs are globally unique across the cluster and
		// carry their owner, so any entry node can route by ID alone.
		id = s.cfg.ShardID + "-" + id
	}
	s.totals.Submitted++
	s.totals.Accepted++
	s.mu.Unlock()

	j := newJob(id, spec, s.cfg.Clock, s.cfg.ShardID, requestID)
	s.register(j)
	if err := s.queue.Submit(j); err != nil {
		s.unregister(id)
		s.mu.Lock()
		s.totals.Accepted--
		s.totals.Rejected++
		s.mu.Unlock()
		return nil, err
	}
	return j, nil
}

func (s *Server) register(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	// Retention: forget the oldest terminal jobs beyond the cap. In-flight
	// jobs are never forgotten, whatever their age.
	if len(s.order) > s.cfg.MaxJobs {
		kept := s.order[:0]
		excess := len(s.order) - s.cfg.MaxJobs
		for _, id := range s.order {
			old := s.jobs[id]
			terminal := false
			if old != nil {
				switch old.Status() {
				case StatusSucceeded, StatusFailed, StatusCancelled:
					terminal = true
				}
			}
			if excess > 0 && terminal {
				delete(s.jobs, id)
				excess--
				continue
			}
			kept = append(kept, id)
		}
		s.order = kept
	}
}

func (s *Server) unregister(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	if n := len(s.order); n > 0 && s.order[n-1] == id {
		s.order = s.order[:n-1]
	}
}

// JobByID returns a retained job.
func (s *Server) JobByID(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// exec runs one job on worker w: per-job deadline, status transitions,
// error classification.
func (s *Server) exec(w int, j *Job) {
	timeout := s.cfg.DefaultTimeout
	if j.Spec.TimeoutMS > 0 {
		timeout = time.Duration(j.Spec.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(j.ctx, timeout)
	defer cancel()
	defer j.cancel() // release the job-lifetime context once terminal
	j.start()

	err := s.runJob(ctx, w, j)
	switch {
	case err == nil:
		s.finish(j, StatusSucceeded, "")
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		j.Result.WriteLine(map[string]string{"type": "error", "error": err.Error()})
		s.finish(j, StatusCancelled, err.Error())
	default:
		j.Result.WriteLine(map[string]string{"type": "error", "error": err.Error()})
		s.finish(j, StatusFailed, err.Error())
	}
}

// finish moves j to a terminal status and books it into the lifetime
// totals. Every accepted job passes through here exactly once (exec is the
// only caller and each job is executed by exactly one worker), so the
// terminal counters tile Accepted exactly.
func (s *Server) finish(j *Job, status, errMsg string) {
	j.finish(status, errMsg)
	s.lat.observe(j.Spans())
	s.mu.Lock()
	switch status {
	case StatusSucceeded:
		s.totals.Succeeded++
	case StatusFailed:
		s.totals.Failed++
	case StatusCancelled:
		s.totals.Cancelled++
	}
	s.mu.Unlock()
}

// Drain shuts the serving path down without losing track of a single
// accepted job: admission stops (new submits get 503), queued-but-unstarted
// jobs are cancelled so each streams a terminal error line and counts into
// the cancelled total, in-flight jobs run to completion, and once
// everything admitted is terminal the worker runtimes are shut down.
// Cancelling the queued tail (rather than running it) is what bounds the
// drain wait by the jobs already executing — a full queue behind a slow
// job can no longer push a SIGTERM drain past its deadline, and no
// accepted job ever vanishes without a terminal status. Used by SIGTERM
// handling and tests.
func (s *Server) Drain(ctx context.Context) error {
	s.queue.BeginDrain()
	// Admission is now closed, so the set of queued jobs can only shrink:
	// cancel everything still waiting for a worker. A job that a worker
	// grabs between the status check and the cancel just runs (or observes
	// the cancelled context and finishes cancelled) — either way it reaches
	// a terminal status and is counted.
	s.mu.Lock()
	queued := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j.Status() == StatusQueued {
			queued = append(queued, j)
		}
	}
	s.mu.Unlock()
	for _, j := range queued {
		j.Cancel()
	}
	err := s.queue.AwaitDrain(ctx)
	if err == nil {
		for _, rt := range s.rts {
			rt.close()
		}
	}
	return err
}

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs             submit a job (202, 400, 429+Retry-After, 503)
//	GET    /jobs             list retained jobs
//	GET    /jobs/{id}        job status
//	DELETE /jobs/{id}        cancel a job
//	GET    /jobs/{id}/result stream results as JSONL (follows a running job)
//	GET    /healthz          liveness + drain state
//	GET    /metricsz         telemetry counters, cache, queue and job stats
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// RequestIDHeader carries a submission's trace ID across cluster hops:
// the entry node stamps it on the forwarded request, the owning shard
// echoes it on responses and result lines.
const RequestIDHeader = "X-Micserved-Request-ID"

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad job spec: %w", err))
		return
	}
	rid := r.Header.Get(RequestIDHeader)
	if rid != "" {
		w.Header().Set(RequestIDHeader, rid)
	}
	j, err := s.SubmitRequest(spec, rid)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After",
			strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, j.View())
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			views = append(views, j.View())
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: no such job"))
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: no such job"))
		return
	}
	if rid := j.RequestID(); rid != "" {
		w.Header().Set(RequestIDHeader, rid)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	j.Result.WriteTo(r.Context(), w, flush)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.queue.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"uptime_seconds": s.cfg.Clock.Now().Sub(s.started).Seconds(),
		"queue":          s.queue.Stats(),
	})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	byStatus := map[string]int{}
	s.mu.Lock()
	for _, j := range s.jobs {
		byStatus[j.Status()]++
	}
	s.mu.Unlock()
	cache := s.store.Stats()
	queue := s.queue.Stats()
	body := map[string]any{
		"uptime_seconds": s.cfg.Clock.Now().Sub(s.started).Seconds(),
		"counters":       s.counters.Snapshot(),
		"cache":          cache,
		"queue":          queue,
		"jobs":           byStatus,
		"jobs_total":     s.Totals(),
		"latency":        s.lat.snapshot(),
		// gauges is the capacity-tuning scrape block: current queue depth
		// and in-flight count with their high-water marks, next to the
		// cache's hit/miss/eviction counters, all in one flat map so load
		// harnesses sample one path instead of re-deriving from the nested
		// stats objects.
		"gauges": map[string]int64{
			"queue_depth":          int64(queue.Queued),
			"queue_depth_max":      int64(queue.QueuedMax),
			"jobs_running":         int64(queue.Running),
			"jobs_running_max":     int64(queue.RunningMax),
			"cache_hits":           cache.Hits,
			"cache_misses":         cache.Misses,
			"cache_evictions":      cache.Evictions,
			"cache_resident_bytes": cache.ResidentBytes,
		},
	}
	if s.cfg.ShardID != "" {
		body["shard"] = s.cfg.ShardID
	}
	writeJSON(w, http.StatusOK, body)
}
