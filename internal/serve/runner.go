package serve

import (
	"context"
	"fmt"

	"micgraph/internal/bfs"
	"micgraph/internal/coloring"
	"micgraph/internal/components"
	"micgraph/internal/core"
	"micgraph/internal/graph"
	"micgraph/internal/graphio"
	"micgraph/internal/irregular"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

// workerRT is one queue worker's resident scheduler runtimes and kernel
// scratches, created once at server start and reused by every job that
// worker runs — the serving layer's whole point is not paying setup cost
// per request. The scratches make repeat kernel jobs on a cached graph
// allocation-free in steady state (same pooled hot paths the kerneltest
// alloc gates pin); jobs on one worker run sequentially, so the
// single-run Scratch contract holds.
type workerRT struct {
	team *sched.Team
	pool *sched.Pool
	bfs  *bfs.Scratch
	col  *coloring.Scratch
	cmp  *components.Scratch
}

func (rt *workerRT) close() {
	rt.team.Close()
	rt.pool.Close()
}

// Stream line shapes. Every line carries "type" so clients can demultiplex
// a job's JSONL: kernel jobs emit one "result" line plus a "counters"
// line; sweep jobs emit one "experiment" line per experiment followed by
// its "cell" lines (core.CellTelemetry records, each embedding the
// simulator's per-cell mic.SimStats).
type resultLine struct {
	Type       string  `json:"type"` // "result"
	Kind       string  `json:"kind"`
	Graph      string  `json:"graph"`
	Variant    string  `json:"variant,omitempty"`
	NumLevels  int     `json:"levels,omitempty"`
	Reached    int     `json:"reached,omitempty"`
	Processed  int64   `json:"processed,omitempty"`
	Duplicates int64   `json:"duplicates,omitempty"`
	NumColors  int     `json:"colors,omitempty"`
	Rounds     int     `json:"rounds,omitempty"`
	Conflicts  []int   `json:"conflicts,omitempty"`
	Components int     `json:"components,omitempty"`
	TDLevels   int     `json:"td_levels,omitempty"`
	BULevels   int     `json:"bu_levels,omitempty"`
	Iters      int     `json:"iters,omitempty"`
	Checksum   float64 `json:"checksum,omitempty"`
}

type countersLine struct {
	Type     string             `json:"type"` // "counters"
	Counters telemetry.Snapshot `json:"counters"`
}

// ExperimentLine is the "experiment" record of a sweep job's stream: the
// experiment's identity, series and table rows — everything core.WriteSVG
// needs — with its cell telemetry following as separate "cell" lines.
type ExperimentLine struct {
	Type   string          `json:"type"` // "experiment"
	ID     string          `json:"id"`
	Title  string          `json:"title"`
	Series []core.Series   `json:"series,omitempty"`
	Rows   []core.TableRow `json:"rows,omitempty"`
	Notes  string          `json:"notes,omitempty"`
	Errors []string        `json:"errors,omitempty"`
}

// CellLine is one "cell" record: core.WriteJSON's per-cell telemetry shape
// (series, graph, threads, simulated time, mic.SimStats) streamed one line
// per cell as the sweep produces it.
type CellLine struct {
	Type string `json:"type"` // "cell"
	core.CellTelemetry
}

// runJob executes one admitted job on worker w, streaming result lines
// into j.Result. Panics — the runner's own or ones that escape kernel
// containment — are converted to errors, so a poisoned job can never take
// the daemon down.
func (s *Server) runJob(ctx context.Context, w int, j *Job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("serve: job panicked: %w", e)
			} else {
				err = fmt.Errorf("serve: job panicked: %v", r)
			}
		}
	}()
	if s.hookExec != nil && s.hookExec(ctx, j) {
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	switch j.Spec.Kind {
	case KindSweep:
		return s.runSweep(ctx, j)
	case KindExport:
		return s.runExport(ctx, j)
	default:
		return s.runKernel(ctx, w, j)
	}
}

// exportLine is the "result" record of an export job.
type exportLine struct {
	Type     string `json:"type"` // "result"
	Kind     string `json:"kind"` // "export"
	Graph    string `json:"graph"`
	Output   string `json:"output"`
	Format   string `json:"format"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
}

// runExport loads the job's graph through the cache and serialises it to
// the requested path. The write goes through graphio.WriteFileInjected, so
// the daemon's injector (-fault-write-rate) exercises the atomic-replace
// failure path: a fault-injected export fails the job and leaves the
// destination untouched — either its previous contents or the complete new
// serialization, never a truncated file.
func (s *Server) runExport(ctx context.Context, j *Job) error {
	t := j.now()
	g, err := s.loadGraph(ctx, j.Spec.Graph)
	j.addCache(j.now().Sub(t))
	if err != nil {
		return err
	}
	format := graphio.DetectFormat(j.Spec.Output)
	name := j.Spec.Format
	if name != "" {
		if format, err = graphio.ParseFormat(name); err != nil {
			return err // unreachable; normalize() validated it
		}
	} else {
		switch format {
		case graphio.Binary:
			name = "bin"
		case graphio.EdgeList:
			name = "el"
		default:
			name = "mtx"
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	t = j.now()
	err = graphio.WriteFileInjected(j.Spec.Output, g, format, s.cfg.Injector)
	j.addExec(j.now().Sub(t))
	if err != nil {
		return err
	}
	t = j.now()
	err = j.Result.WriteLine(exportLine{
		Type: "result", Kind: KindExport, Graph: g.String(),
		Output: j.Spec.Output, Format: name,
		Vertices: g.NumVertices(), Edges: g.NumEdges(),
	})
	j.addFlush(j.now().Sub(t))
	return err
}

// loadGraph fetches the job's graph through the store; concurrent jobs on
// the same graph dedup to one graphio.Load / suite generation.
func (s *Server) loadGraph(ctx context.Context, spec GraphSpec) (*graph.Graph, error) {
	return s.store.Graph(ctx, spec)
}

// loadSuite fetches (or generates once) the experiment suite at the given
// scale through the store.
func (s *Server) loadSuite(ctx context.Context, scale int) (*core.Suite, error) {
	return s.store.Suite(ctx, scale)
}

// runSweep runs the requested experiments against the shared cached suite
// under a per-job harness (deadline, bounded retries, per-cell telemetry)
// and streams experiments and cells as they complete.
func (s *Server) runSweep(ctx context.Context, j *Job) error {
	t := j.now()
	suite, err := s.loadSuite(ctx, j.Spec.SweepScale)
	j.addCache(j.now().Sub(t))
	if err != nil {
		return err
	}
	js := suite.WithHarness(&core.Harness{
		Ctx:       ctx,
		Retries:   j.Spec.Retries,
		Telemetry: true,
		Counters:  s.counters,
	})
	ids := j.Spec.Experiments
	if len(ids) == 0 {
		ids = core.AllIDs()
	}
	for _, id := range ids {
		t = j.now()
		exp, err := core.RunByID(id, js, s.cfg.KNF, s.cfg.Host)
		j.addExec(j.now().Sub(t))
		if err != nil {
			return err // unknown ID; normalize() should have caught it
		}
		line := ExperimentLine{
			Type: "experiment", ID: exp.ID, Title: exp.Title,
			Series: exp.Series, Rows: exp.Rows, Notes: exp.Notes,
		}
		for _, ce := range exp.Errors {
			line.Errors = append(line.Errors, ce.Error())
		}
		t = j.now()
		err = j.Result.WriteLine(line)
		if err == nil {
			for _, cell := range exp.Cells {
				if err = j.Result.WriteLine(CellLine{Type: "cell", CellTelemetry: cell}); err != nil {
					break
				}
			}
		}
		j.addFlush(j.now().Sub(t))
		if err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// runKernel runs one BFS / coloring / irregular job on worker w's resident
// runtimes and streams the result plus a scheduler-counter snapshot.
func (s *Server) runKernel(ctx context.Context, w int, j *Job) error {
	t := j.now()
	g, err := s.loadGraph(ctx, j.Spec.Graph)
	j.addCache(j.now().Sub(t))
	if err != nil {
		return err
	}
	rt := s.rts[w]
	spec := j.Spec
	line := resultLine{Type: "result", Kind: spec.Kind, Graph: g.String(), Variant: spec.Variant}

	// The kernel switch runs inside a closure so the exec span covers every
	// path out of it (including error returns) without overlapping the
	// cache span before it or the flush span after it.
	t = j.now()
	runErr := func() error {
		switch spec.Kind {
		case KindBFS:
			src := int32(spec.Source)
			if src <= 0 || int(src) >= g.NumVertices() {
				src = int32(g.NumVertices() / 2)
			}
			opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: spec.Chunk}
			var res bfs.Result
			switch spec.Variant {
			case "seq":
				res = bfs.Sequential(g, src)
			case "omp-block", "omp-block-relaxed":
				res, err = rt.bfs.BlockTeam(ctx, g, src, rt.team, opts, spec.Chunk,
					spec.Variant == "omp-block-relaxed")
			case "tbb-block", "tbb-block-relaxed":
				res, err = rt.bfs.BlockTBB(ctx, g, src, rt.pool, sched.SimplePartitioner,
					spec.Chunk, spec.Chunk, spec.Variant == "tbb-block-relaxed")
			case "bag":
				res, err = rt.bfs.BagCilk(ctx, g, src, rt.pool, spec.Chunk)
			case "tls":
				res, err = rt.bfs.TLSTeam(ctx, g, src, rt.team, opts)
			case "hybrid":
				var hres bfs.HybridResult
				hres, err = rt.bfs.Hybrid(ctx, g, src, rt.team, opts, bfs.HybridConfig{})
				res = hres.Result
				line.TDLevels = hres.TopDownLevels
				line.BULevels = hres.BottomUpLevels
			default:
				return fmt.Errorf("serve: unknown bfs variant %q", spec.Variant)
			}
			if err != nil {
				return err
			}
			reached := 0
			for _, l := range res.Levels {
				if l != bfs.Unvisited {
					reached++
				}
			}
			line.NumLevels = res.NumLevels
			line.Reached = reached
			line.Processed = res.Processed
			line.Duplicates = res.Duplicates

		case KindColoring:
			var res coloring.Result
			switch spec.Variant {
			case "seq":
				res = coloring.SeqGreedy(g)
			case "openmp":
				res, err = rt.col.ColorTeam(ctx, g, rt.team,
					sched.ForOptions{Policy: sched.Dynamic, Chunk: spec.Chunk})
			case "cilk":
				res, err = rt.col.ColorCilk(ctx, g, rt.pool, spec.Chunk, coloring.CilkHolder)
			case "tbb":
				res, err = rt.col.ColorTBB(ctx, g, rt.pool, sched.SimplePartitioner, spec.Chunk)
			default:
				return fmt.Errorf("serve: unknown coloring runtime %q", spec.Variant)
			}
			if err != nil {
				return err
			}
			if err := coloring.Validate(g, res.Colors); err != nil {
				return fmt.Errorf("serve: coloring invalid: %w", err)
			}
			line.NumColors = res.NumColors
			line.Rounds = res.Rounds
			line.Conflicts = res.Conflicts

		case KindComponents:
			var res components.Result
			switch spec.Variant {
			case "seq":
				res = components.Sequential(g)
			case "labelprop":
				res, err = rt.cmp.LabelPropagation(ctx, g, rt.team,
					sched.ForOptions{Policy: sched.Dynamic, Chunk: spec.Chunk})
			case "pointerjump":
				res, err = rt.cmp.PointerJumping(ctx, g, rt.team,
					sched.ForOptions{Policy: sched.Dynamic, Chunk: spec.Chunk})
			default:
				return fmt.Errorf("serve: unknown components variant %q", spec.Variant)
			}
			if err != nil {
				return err
			}
			if err := components.Validate(g, res.Labels); err != nil {
				return fmt.Errorf("serve: components invalid: %w", err)
			}
			line.Components = res.Count
			line.Rounds = res.Rounds

		case KindIrregular:
			state := irregular.InitialState(g.NumVertices())
			var out []float64
			switch spec.Variant {
			case "openmp":
				out, err = irregular.TeamCtx(ctx, g, state, spec.Iters, rt.team,
					sched.ForOptions{Policy: sched.Dynamic, Chunk: spec.Chunk})
			case "cilk":
				out, err = irregular.CilkCtx(ctx, g, state, spec.Iters, rt.pool, spec.Chunk)
			case "tbb":
				out, err = irregular.TBBCtx(ctx, g, state, spec.Iters, rt.pool,
					sched.SimplePartitioner, spec.Chunk)
			default:
				return fmt.Errorf("serve: unknown irregular runtime %q", spec.Variant)
			}
			if err != nil {
				return err
			}
			sum := 0.0
			for _, v := range out {
				sum += v
			}
			line.Iters = spec.Iters
			line.Checksum = sum
		}
		return nil
	}()
	j.addExec(j.now().Sub(t))
	if runErr != nil {
		return runErr
	}

	t = j.now()
	err = j.Result.WriteLine(line)
	if err == nil {
		err = j.Result.WriteLine(countersLine{Type: "counters", Counters: s.counters.Snapshot()})
	}
	j.addFlush(j.now().Sub(t))
	return err
}
