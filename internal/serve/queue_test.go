package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestQueueAdmissionControl(t *testing.T) {
	block := make(chan struct{})
	started := make(chan string, 16)
	q := NewQueue(1, 1, func(_ int, j *Job) {
		started <- j.ID
		<-block
	})

	// First job occupies the worker, second fills the queue, third bounces.
	if err := q.Submit(newJob("a", JobSpec{}, nil, "", "")); err != nil {
		t.Fatal(err)
	}
	<-started // "a" is running; the queue slot is free again
	if err := q.Submit(newJob("b", JobSpec{}, nil, "", "")); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(newJob("c", JobSpec{}, nil, "", "")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
	st := q.Stats()
	if st.Submitted != 2 || st.Rejected != 1 || st.Running != 1 || st.Queued != 1 {
		t.Errorf("stats = %+v", st)
	}

	close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(newJob("d", JobSpec{}, nil, "", "")); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain = %v, want ErrDraining", err)
	}
	st = q.Stats()
	if st.Completed != 2 || !st.Draining {
		t.Errorf("stats after drain = %+v", st)
	}
}

func TestQueueDrainWaitsForInFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var finished atomic.Bool
	q := NewQueue(1, 4, func(_ int, j *Job) {
		close(started)
		<-release
		finished.Store(true)
	})
	if err := q.Submit(newJob("a", JobSpec{}, nil, "", "")); err != nil {
		t.Fatal(err)
	}
	<-started

	drained := make(chan error, 1)
	go func() { drained <- q.Drain(context.Background()) }()
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v while a job was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	if !finished.Load() {
		t.Error("drain returned before the in-flight job finished")
	}
}

func TestStreamFollowsWrites(t *testing.T) {
	s := NewStream()
	s.WriteLine(map[string]int{"n": 1})

	type sink struct{ b []byte }
	got := make(chan string, 1)
	go func() {
		var buf sink
		w := writerFunc(func(p []byte) (int, error) {
			buf.b = append(buf.b, p...)
			return len(p), nil
		})
		if err := s.WriteTo(context.Background(), w, nil); err != nil {
			t.Error(err)
		}
		got <- string(buf.b)
	}()
	time.Sleep(10 * time.Millisecond) // let the reader block mid-stream
	s.WriteLine(map[string]int{"n": 2})
	s.Close()
	want := "{\"n\":1}\n{\"n\":2}\n"
	if g := <-got; g != want {
		t.Errorf("streamed %q, want %q", g, want)
	}
	if s.Len() != len(want) {
		t.Errorf("Len = %d, want %d", s.Len(), len(want))
	}
	// Writes after Close are dropped.
	s.WriteLine(map[string]int{"n": 3})
	if string(s.Bytes()) != want {
		t.Error("write after Close was retained")
	}
}

func TestStreamReaderCancellation(t *testing.T) {
	s := NewStream()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- s.WriteTo(ctx, writerFunc(func(p []byte) (int, error) { return len(p), nil }), nil)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("WriteTo = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled reader did not return")
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
