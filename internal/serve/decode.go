package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"micgraph/internal/core"
)

// DecodeExperiments reassembles core.Experiment values from a sweep job's
// JSONL result stream — the inverse of what runSweep emits — so clients
// can hand them straight to core.WriteSVG / WriteCSV / WriteText. "cell"
// lines reattach to the experiment named by their experiment field;
// "error" lines become experiment-level annotations on the last
// experiment seen (or a synthesized one when the stream failed before any
// experiment was emitted). Unknown line types are skipped, so the decoder
// stays compatible with streams that also carry kernel result lines.
func DecodeExperiments(r io.Reader) ([]*core.Experiment, error) {
	type anyLine struct {
		Type string `json:"type"`
	}
	var (
		out  []*core.Experiment
		byID = map[string]*core.Experiment{}
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var head anyLine
		if err := json.Unmarshal(raw, &head); err != nil {
			return out, fmt.Errorf("serve: result line %d: %w", lineNo, err)
		}
		switch head.Type {
		case "experiment":
			var el ExperimentLine
			if err := json.Unmarshal(raw, &el); err != nil {
				return out, fmt.Errorf("serve: result line %d: %w", lineNo, err)
			}
			exp := &core.Experiment{ID: el.ID, Title: el.Title,
				Series: el.Series, Rows: el.Rows, Notes: el.Notes}
			for _, msg := range el.Errors {
				exp.Errors = append(exp.Errors,
					core.CellError{Experiment: el.ID, Graph: -1, Err: fmt.Errorf("%s", msg)})
			}
			out = append(out, exp)
			byID[exp.ID] = exp
		case "cell":
			var cl CellLine
			if err := json.Unmarshal(raw, &cl); err != nil {
				return out, fmt.Errorf("serve: result line %d: %w", lineNo, err)
			}
			if exp, ok := byID[cl.Experiment]; ok {
				exp.Cells = append(exp.Cells, cl.CellTelemetry)
			}
		case "error":
			var el struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(raw, &el); err != nil {
				return out, fmt.Errorf("serve: result line %d: %w", lineNo, err)
			}
			exp := &core.Experiment{ID: "job", Title: "job error"}
			if len(out) > 0 {
				exp = out[len(out)-1]
			} else {
				out = append(out, exp)
			}
			exp.Errors = append(exp.Errors,
				core.CellError{Experiment: exp.ID, Graph: -1, Err: fmt.Errorf("%s", el.Error)})
		}
	}
	return out, sc.Err()
}
