package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"micgraph/internal/fault"
	"micgraph/internal/graphio"
)

// TestServeDrainCancelsQueuedJobs pins the drain contract for
// queued-but-unstarted jobs: Drain cancels them, each streams a terminal
// error line and counts into the cancelled total — none runs, none
// vanishes, and the drain wait is bounded by the job already executing.
//
// The hook makes the pin sharp: the running job blocks until released,
// every queued job blocks until its context is cancelled. Under the old
// drain behaviour (run the queued tail to completion) the queued jobs
// would block forever and Drain would hang; with cancellation it returns
// promptly.
func TestServeDrainCancelsQueuedJobs(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	s.hookExec = func(ctx context.Context, j *Job) bool {
		if j.ID == "job-000001" {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return true
		}
		<-ctx.Done() // queued jobs hang unless drain cancels them
		return true
	}

	spec := JobSpec{Kind: KindBFS, Graph: GraphSpec{Suite: "pwtk", Scale: 8}}
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadlineWait(t, func() bool { return s.Queue().Stats().Running == 1 })
	var queued []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	deadlineWait(t, func() bool { return s.Queue().Draining() })
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain with a queued tail = %v (queued jobs were not cancelled)", err)
	}

	<-first.Done()
	if got := first.Status(); got != StatusSucceeded {
		t.Errorf("running job after drain = %s, want succeeded", got)
	}
	for _, j := range queued {
		select {
		case <-j.Done():
		default:
			t.Fatalf("queued job %s still non-terminal after drain", j.ID)
		}
		if got := j.Status(); got != StatusCancelled {
			t.Errorf("queued job %s after drain = %s, want cancelled", j.ID, got)
		}
		lines := jsonLines(t, string(j.Result.Bytes()))
		if len(lines) == 0 || lines[len(lines)-1]["type"] != "error" {
			t.Errorf("queued job %s stream missing terminal error line: %v", j.ID, lines)
		}
	}

	tot := s.Totals()
	if tot.Accepted != 4 || tot.Succeeded != 1 || tot.Cancelled != 3 || tot.InFlight != 0 {
		t.Errorf("totals after drain = %+v", tot)
	}
}

// TestServeExportJob runs the export kind end to end: the daemon loads a
// suite graph through its cache and serialises it to disk; the written
// file round-trips through the loaders.
func TestServeExportJob(t *testing.T) {
	s := New(Config{Workers: 1, KernelWorkers: 2})
	defer s.Drain(context.Background())

	out := filepath.Join(t.TempDir(), "pwtk.mtx")
	j, err := s.Submit(JobSpec{Kind: KindExport,
		Graph: GraphSpec{Suite: "pwtk", Scale: 8}, Output: out})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.Status() != StatusSucceeded {
		t.Fatalf("export job = %s (%s)", j.Status(), j.Err())
	}
	lines := jsonLines(t, string(j.Result.Bytes()))
	if len(lines) != 1 || lines[0]["type"] != "result" || lines[0]["kind"] != "export" ||
		lines[0]["format"] != "mtx" {
		t.Fatalf("export stream = %v", lines)
	}
	g, err := graphio.ReadFile(out)
	if err != nil {
		t.Fatalf("exported file does not round-trip: %v", err)
	}
	if float64(g.NumVertices()) != lines[0]["vertices"].(float64) {
		t.Errorf("round-trip vertices = %d, result line says %v",
			g.NumVertices(), lines[0]["vertices"])
	}
}

// TestServeExportWriteFault pins the atomic-write failure contract under
// injection: a firing graphio/write/err site fails the export job and
// leaves the destination path untouched (absent, not truncated); the next
// export of the same graph — same cache entry, next site call — succeeds.
func TestServeExportWriteFault(t *testing.T) {
	in := fault.New(7)
	in.EnableAt("graphio/write/err", 1)
	s := New(Config{Workers: 1, KernelWorkers: 2, Injector: in})
	defer s.Drain(context.Background())

	out := filepath.Join(t.TempDir(), "pwtk.bin")
	spec := JobSpec{Kind: KindExport, Graph: GraphSpec{Suite: "pwtk", Scale: 8}, Output: out}
	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done()
	if j1.Status() != StatusFailed {
		t.Fatalf("fault-injected export = %s, want failed", j1.Status())
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Errorf("failed export left %s behind (stat err %v): atomic replace broken", out, err)
	}

	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Done()
	if j2.Status() != StatusSucceeded {
		t.Fatalf("export after transient write fault = %s (%s)", j2.Status(), j2.Err())
	}
	if _, err := graphio.ReadFile(out); err != nil {
		t.Errorf("exported file does not round-trip: %v", err)
	}
}
