package serve

import (
	"context"
	"encoding/json"
	"io"
	"sync"
)

// Stream is an append-only JSONL buffer that supports concurrent readers
// while the producing job is still running: each WriteLine appends one
// JSON-encoded line and wakes blocked readers, Close marks the end of the
// stream. Readers stream from the beginning, so a client that connects
// mid-job still sees every line.
type Stream struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	stamp  []byte // cluster identity spliced into every line ("" = none)
	closed bool
}

// NewStream creates an open, empty stream.
func NewStream() *Stream {
	s := &Stream{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// SetStamp arms per-line cluster stamping: every subsequently written
// object line gains "shard" (and "request_id" when non-empty) fields, so
// a sharded job's JSONL names its serving shard on every record and a
// cross-shard trace joins on the propagated request ID. Both empty is a
// no-op, keeping single-node output byte-identical. Call before the job
// starts writing.
func (s *Stream) SetStamp(shard, requestID string) {
	if shard == "" && requestID == "" {
		return
	}
	fields := map[string]string{}
	if shard != "" {
		fields["shard"] = shard
	}
	if requestID != "" {
		fields["request_id"] = requestID
	}
	b, err := json.Marshal(fields)
	if err != nil {
		return // unreachable: map[string]string always marshals
	}
	s.mu.Lock()
	// Keep `,"shard":"...","request_id":"..."` — the tail spliced before a
	// line's closing brace.
	s.stamp = append([]byte{','}, b[1:len(b)-1]...)
	s.mu.Unlock()
}

// WriteLine marshals v and appends it as one line. Lines written after
// Close are dropped (the job was cancelled mid-write; its tail is moot).
func (s *Stream) WriteLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	s.mu.Lock()
	// Splice the cluster stamp into object lines: every line this package
	// writes is a non-empty JSON object, so inserting before the final '}'
	// is always valid JSON.
	if len(s.stamp) > 0 && len(b) > 2 && b[0] == '{' && b[len(b)-1] == '}' {
		line := make([]byte, 0, len(b)+len(s.stamp))
		line = append(line, b[:len(b)-1]...)
		line = append(line, s.stamp...)
		b = append(line, '}')
	}
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.buf = append(s.buf, b...)
	s.buf = append(s.buf, '\n')
	s.cond.Broadcast()
	return nil
}

// Close ends the stream; blocked readers drain what is buffered and return.
func (s *Stream) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Len returns the number of buffered bytes.
func (s *Stream) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Bytes returns a copy of everything written so far.
func (s *Stream) Bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]byte, len(s.buf))
	copy(out, s.buf)
	return out
}

// WriteTo streams the buffer to w from the beginning, blocking for more
// lines until the stream is closed or ctx is cancelled. flush (optional) is
// called after every write burst so HTTP responses deliver lines as they
// are produced. Returns the first write error, or ctx.Err() on
// cancellation.
func (s *Stream) WriteTo(ctx context.Context, w io.Writer, flush func()) error {
	// A cancelled context must wake a blocked reader: Cond has no native
	// cancellation, so a watcher broadcasts once when ctx ends.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		case <-watchDone:
		}
	}()

	off := 0
	for {
		s.mu.Lock()
		for off == len(s.buf) && !s.closed && ctx.Err() == nil {
			s.cond.Wait()
		}
		chunk := s.buf[off:]
		closed := s.closed
		s.mu.Unlock()

		if err := ctx.Err(); err != nil {
			return err
		}
		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return err
			}
			off += len(chunk)
			if flush != nil {
				flush()
			}
		}
		if closed {
			s.mu.Lock()
			done := off == len(s.buf)
			s.mu.Unlock()
			if done {
				return nil
			}
		}
	}
}
