package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"micgraph/internal/telemetry"
)

// stepClock is a deterministic telemetry.Clock: every Now() advances one
// fixed step, so any two reads are distinct and strictly ordered no matter
// which goroutine makes them.
type stepClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func newStepClock(step time.Duration) *stepClock {
	return &stepClock{t: time.Unix(1_700_000_000, 0), step: step}
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

// TestJobSpans runs one kernel job under an injected step clock and checks
// the latency breakdown end to end: all spans stamped, strictly from the
// fake clock (multiples of the step), and the sub-spans sum to at most the
// total — the invariant the e2e latency-probe asserts over chaos runs.
func TestJobSpans(t *testing.T) {
	clk := newStepClock(time.Millisecond)
	s := New(Config{Workers: 1, KernelWorkers: 2, Clock: clk})
	defer s.Drain(context.Background())

	j, err := s.Submit(JobSpec{Kind: KindColoring, Graph: GraphSpec{Suite: "pwtk", Scale: 8}})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if got := j.Status(); got != StatusSucceeded {
		t.Fatalf("status = %s (%s)", got, j.Err())
	}

	v := j.View()
	if v.Spans == nil {
		t.Fatal("terminal job view has no spans")
	}
	sp := *v.Spans
	for name, ns := range map[string]int64{
		"queue": sp.QueueNS, "cache": sp.CacheNS, "exec": sp.ExecNS,
		"flush": sp.FlushNS, "total": sp.TotalNS,
	} {
		if ns <= 0 {
			t.Errorf("%s span = %d, want > 0 (every stamped interval spans at least one clock step)", name, ns)
		}
		if ns%int64(time.Millisecond) != 0 {
			t.Errorf("%s span = %d, not a multiple of the step: a wall-clock read leaked into the span path", name, ns)
		}
	}
	if sum := sp.QueueNS + sp.CacheNS + sp.ExecNS + sp.FlushNS; sum > sp.TotalNS {
		t.Errorf("span sum %d > total %d", sum, sp.TotalNS)
	}
}

// TestMetricszLatencyAndGauges checks the /metricsz additions: per-span
// latency histograms with one observation per terminal job, and the
// consolidated gauges block (queue depth + watermarks, cache counters).
func TestMetricszLatencyAndGauges(t *testing.T) {
	s := New(Config{Workers: 1, KernelWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	_, v := post(t, ts, JobSpec{Kind: KindColoring, Graph: GraphSpec{Suite: "pwtk", Scale: 8}})
	wait(t, ts, v.ID)
	_, v = post(t, ts, JobSpec{Kind: KindColoring, Graph: GraphSpec{Suite: "pwtk", Scale: 8}})
	wait(t, ts, v.ID)

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Latency map[string]telemetry.HistogramSnapshot `json:"latency"`
		Gauges  map[string]int64                       `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, span := range []string{"queue_wait", "cache_load", "exec", "stream_flush", "total"} {
		h, ok := m.Latency[span]
		if !ok {
			t.Fatalf("latency block missing %q", span)
		}
		if h.Count != 2 {
			t.Errorf("latency[%q].count = %d, want 2 (one observation per terminal job)", span, h.Count)
		}
	}
	if m.Latency["total"].P99NS <= 0 {
		t.Error("total latency histogram has no p99")
	}
	for _, g := range []string{
		"queue_depth", "queue_depth_max", "jobs_running", "jobs_running_max",
		"cache_hits", "cache_misses", "cache_evictions", "cache_resident_bytes",
	} {
		if _, ok := m.Gauges[g]; !ok {
			t.Errorf("gauges block missing %q", g)
		}
	}
	// Two jobs on one graph: the second load hits the cache, and at least
	// one job must have been observed running.
	if m.Gauges["cache_hits"] < 1 || m.Gauges["cache_misses"] < 1 {
		t.Errorf("cache gauges = hits %d misses %d, want >= 1 each", m.Gauges["cache_hits"], m.Gauges["cache_misses"])
	}
	if m.Gauges["jobs_running_max"] < 1 {
		t.Errorf("jobs_running_max = %d, want >= 1", m.Gauges["jobs_running_max"])
	}
}
