package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"micgraph/internal/gen"
)

// loadInt is a loader returning v with the given resident size.
func loadInt(v int, bytes int64) Loader {
	return func(context.Context) (any, int64, error) { return v, bytes, nil }
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(1000)
	ctx := context.Background()
	v, err := c.Get(ctx, "a", loadInt(1, 100))
	if err != nil || v.(int) != 1 {
		t.Fatalf("Get = %v, %v", v, err)
	}
	// Second get must hit without invoking the loader.
	v, err = c.Get(ctx, "a", func(context.Context) (any, int64, error) {
		t.Error("loader invoked on a resident key")
		return nil, 0, nil
	})
	if err != nil || v.(int) != 1 {
		t.Fatalf("Get = %v, %v", v, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Loads != 1 || st.ResidentBytes != 100 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheEvictionOrder(t *testing.T) {
	c := NewCache(300)
	ctx := context.Background()
	for i, key := range []string{"a", "b", "c"} {
		if _, err := c.Get(ctx, key, loadInt(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" becomes least recently used.
	if _, err := c.Get(ctx, "a", loadInt(-1, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "d", loadInt(3, 100)); err != nil {
		t.Fatal(err)
	}
	want := []string{"d", "a", "c"}
	if got := c.Keys(); !reflect.DeepEqual(got, want) {
		t.Errorf("keys after eviction = %v, want %v", got, want)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.ResidentBytes != 300 || st.Entries != 3 {
		t.Errorf("stats = %+v", st)
	}
	// "b" was evicted: getting it again must reload.
	reloaded := false
	if _, err := c.Get(ctx, "b", func(context.Context) (any, int64, error) {
		reloaded = true
		return 1, 100, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reloaded {
		t.Error("evicted key did not reload")
	}
}

func TestCacheByteAccounting(t *testing.T) {
	c := NewCache(250)
	ctx := context.Background()
	c.Get(ctx, "a", loadInt(0, 100))
	c.Get(ctx, "b", loadInt(0, 100))
	if st := c.Stats(); st.ResidentBytes != 200 {
		t.Fatalf("resident = %d, want 200", st.ResidentBytes)
	}
	// 100+100+120 > 250: the coldest entry ("a") goes, leaving 220.
	c.Get(ctx, "big", loadInt(0, 120))
	st := c.Stats()
	if st.ResidentBytes != 220 || st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v", st)
	}
	// An entry larger than the whole budget is returned but not retained —
	// and must not evict anything on the way.
	v, err := c.Get(ctx, "huge", loadInt(7, 1000))
	if err != nil || v.(int) != 7 {
		t.Fatalf("oversized Get = %v, %v", v, err)
	}
	if st := c.Stats(); st.Entries != 2 || st.ResidentBytes != 220 || st.Evictions != 1 {
		t.Errorf("oversized entry disturbed the cache: %+v", c.Stats())
	}
}

func TestCacheLoadErrorNotCached(t *testing.T) {
	c := NewCache(1000)
	ctx := context.Background()
	boom := errors.New("boom")
	if _, err := c.Get(ctx, "a", func(context.Context) (any, int64, error) {
		return nil, 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("failed load cached: %+v", st)
	}
	// Next get retries the loader.
	if v, err := c.Get(ctx, "a", loadInt(5, 10)); err != nil || v.(int) != 5 {
		t.Fatalf("Get after failure = %v, %v", v, err)
	}
}

func TestCacheInvalidateDropsInFlight(t *testing.T) {
	c := NewCache(1000)
	ctx := context.Background()
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := c.Get(ctx, "a", func(context.Context) (any, int64, error) {
			close(started)
			<-release
			return 1, 10, nil
		})
		// The stale load still hands its value to its own getter.
		if err != nil || v.(int) != 1 {
			t.Errorf("stale Get = %v, %v", v, err)
		}
	}()
	<-started
	c.Invalidate("a") // bump the generation while the load is in flight
	close(release)
	<-done
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("stale load repopulated the cache: %+v", st)
	}
}

// TestCacheSingleflightHammer runs many concurrent getters over few keys
// under -race: every getter of one key round must see the same loaded
// value, and the loader must run exactly once per (key, round).
func TestCacheSingleflightHammer(t *testing.T) {
	const (
		getters = 32
		rounds  = 20
	)
	c := NewCache(1 << 20)
	ctx := context.Background()
	var loads atomic.Int64
	for round := 0; round < rounds; round++ {
		key := fmt.Sprintf("k%d", round%3)
		c.Invalidate(key) // force a fresh load each round
		gate := make(chan struct{})
		var wg sync.WaitGroup
		vals := make([]int, getters)
		for i := 0; i < getters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-gate
				v, err := c.Get(ctx, key, func(context.Context) (any, int64, error) {
					loads.Add(1)
					return round, 64, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				vals[i] = v.(int)
			}(i)
		}
		close(gate)
		wg.Wait()
		for i, v := range vals {
			if v != round {
				t.Fatalf("round %d getter %d saw %d", round, i, v)
			}
		}
		if got := loads.Load(); got != int64(round+1) {
			t.Fatalf("round %d: %d loads, want %d (singleflight violated)", round, got, round+1)
		}
	}
	st := c.Stats()
	if st.Loads != rounds {
		t.Errorf("stats.Loads = %d, want %d", st.Loads, rounds)
	}
	if st.Shared+st.Hits != rounds*(getters-1) {
		t.Errorf("shared+hits = %d, want %d", st.Shared+st.Hits, rounds*(getters-1))
	}
}

func TestGraphBytes(t *testing.T) {
	g := gen.Grid2D(5, 5)
	want := int64(g.NumVertices()+1)*8 + g.NumArcs()*4
	if got := GraphBytes(g); got != want {
		t.Errorf("GraphBytes = %d, want %d", got, want)
	}
}
