package serve

import (
	"context"
	"fmt"

	"micgraph/internal/core"
	"micgraph/internal/fault"
	"micgraph/internal/graph"
	"micgraph/internal/graphio"
)

// Store is the serving layer's data plane: everything a job runner needs
// to get a resident graph or experiment suite. The single-node daemon's
// implementation is CacheStore (the byte-budgeted singleflight LRU this
// package has always had); a cluster shard uses exactly the same
// implementation for the slice of the key space it owns — sharding is a
// placement decision layered *above* the store, never inside it, which is
// what keeps a corrupted or fault-injected load on one shard from ever
// touching another shard's resident entries.
type Store interface {
	// Graph returns the graph named by spec, loading it on a miss.
	// Concurrent calls for one key dedup to a single load.
	Graph(ctx context.Context, spec GraphSpec) (*graph.Graph, error)
	// Suite returns the experiment suite at the given shrink scale,
	// generating it once and sharing it read-only afterwards.
	Suite(ctx context.Context, scale int) (*core.Suite, error)
	// Stats snapshots cache activity for /metricsz.
	Stats() CacheStats
	// Invalidate drops the resident entry for key (if any) so the next
	// Graph/Suite call reloads it.
	Invalidate(key string)
}

// SuiteKey is the store key of the generated experiment suite at scale.
func SuiteKey(scale int) string { return fmt.Sprintf("sweep:suite@%d", scale) }

// CacheStore is the trivial, single-node Store: a byte-budgeted LRU cache
// in front of graphio loads and suite generation, with singleflight dedup
// and generation-based invalidation. Fault injection (when armed) flows
// through every load, so an injected read error fails the job that drew
// it and is never cached.
type CacheStore struct {
	cache    *Cache
	injector *fault.Injector
}

// NewCacheStore builds the single-node store with the given byte budget.
// injector may be nil (no fault injection).
func NewCacheStore(budgetBytes int64, injector *fault.Injector) *CacheStore {
	return &CacheStore{cache: NewCache(budgetBytes), injector: injector}
}

// Cache exposes the underlying cache (stats, direct invalidation in tests).
func (st *CacheStore) Cache() *Cache { return st.cache }

// Graph fetches the named graph through the cache; concurrent jobs on the
// same graph dedup to one graphio.Load / suite generation.
func (st *CacheStore) Graph(ctx context.Context, spec GraphSpec) (*graph.Graph, error) {
	v, err := st.cache.Get(ctx, spec.Key(), func(context.Context) (any, int64, error) {
		g, err := graphio.LoadInjected(spec.File, spec.Suite, spec.Scale, st.injector)
		if err != nil {
			return nil, 0, err
		}
		return g, GraphBytes(g), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*graph.Graph), nil
}

// Suite fetches (or generates once) the experiment suite at the given
// scale. Shuffled copies are materialised inside the loader so concurrent
// sweep jobs share them read-only.
func (st *CacheStore) Suite(ctx context.Context, scale int) (*core.Suite, error) {
	v, err := st.cache.Get(ctx, SuiteKey(scale), func(context.Context) (any, int64, error) {
		suite, err := core.NewSuite(scale)
		if err != nil {
			return nil, 0, err
		}
		var bytes int64
		for _, g := range suite.Graphs {
			bytes += GraphBytes(g)
		}
		for _, g := range suite.Shuffled() {
			bytes += GraphBytes(g)
		}
		return suite, bytes, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Suite), nil
}

// Stats snapshots the cache counters.
func (st *CacheStore) Stats() CacheStats { return st.cache.Stats() }

// Invalidate drops key's resident entry.
func (st *CacheStore) Invalidate(key string) { st.cache.Invalidate(key) }

// Placement maps a job's data key to the node(s) that should serve it.
// The single-node daemon is the trivial implementation (everything is
// local); a cluster implements it with a seeded consistent-hash ring so
// every node derives the same answer without coordination.
type Placement interface {
	// Owner returns the node that owns key ("" when no node is available).
	Owner(key string) string
	// Replicas returns up to r distinct nodes for key, owner first. Read
	// jobs on hot graphs may be served by any of them; writes and cache
	// fills beyond the replica set stay with the owner.
	Replicas(key string, r int) []string
}

// SinglePlacement is the trivial Placement: one node owns every key.
type SinglePlacement string

// Owner returns the single node for every key.
func (s SinglePlacement) Owner(string) string { return string(s) }

// Replicas returns the single node for every key.
func (s SinglePlacement) Replicas(string, int) []string { return []string{string(s)} }

// PlacementKey is the data key placement routes a job by: the graph cache
// key for kernel and export jobs, the suite cache key for sweeps. Jobs
// that share a key share cache residency, so routing by it maximises hit
// rates and keeps a cache miss confined to the shard that owns the key.
func (sp JobSpec) PlacementKey() string {
	if sp.Kind == KindSweep {
		scale := sp.SweepScale
		if scale <= 0 {
			scale = 4
		}
		return SuiteKey(scale)
	}
	// Mirror normalize()'s scale default so a spec routed before admission
	// and the cache key the owner computes after it always agree.
	g := sp.Graph
	if g.File == "" && g.Scale <= 0 {
		g.Scale = 4
	}
	return g.Key()
}
