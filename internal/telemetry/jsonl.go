package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
)

// WriteJSONL writes each record as one JSON object per line (JSON Lines).
// Records are marshalled with encoding/json, so struct-typed records
// produce deterministic field order.
func WriteJSONL(w io.Writer, records ...any) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range records {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// JSONLFile is a convenience JSONL sink for the CLIs' -metrics-out flag:
// records are appended line by line and flushed on Close.
type JSONLFile struct {
	f   *os.File
	bw  *bufio.Writer
	enc *json.Encoder
}

// CreateJSONL creates (truncating) a JSONL metrics file.
func CreateJSONL(path string) (*JSONLFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(f)
	return &JSONLFile{f: f, bw: bw, enc: json.NewEncoder(bw)}, nil
}

// Write appends one record as a JSON line.
func (j *JSONLFile) Write(record any) error { return j.enc.Encode(record) }

// Close flushes and closes the file.
func (j *JSONLFile) Close() error {
	if err := j.bw.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
