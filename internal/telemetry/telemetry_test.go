package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
)

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.Inc(0, Steals)
	c.Add(3, ChunksClaimed, 42)
	if got := c.Get(0, Steals); got != 0 {
		t.Errorf("nil Get = %d, want 0", got)
	}
	if got := c.Total(ChunksClaimed); got != 0 {
		t.Errorf("nil Total = %d, want 0", got)
	}
	if got := c.Workers(); got != 0 {
		t.Errorf("nil Workers = %d, want 0", got)
	}
	if snap := c.Snapshot(); snap.Workers != 0 || len(snap.PerWorker) != 0 {
		t.Errorf("nil Snapshot = %+v, want zero", snap)
	}
}

// TestCountersHammer drives every counter kind from every worker
// concurrently and checks the totals are exact. Run under -race this also
// proves the increments are data-race free.
func TestCountersHammer(t *testing.T) {
	const workers = 8
	const perWorker = 10000
	c := NewCounters(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for k := Kind(0); k < NumKinds; k++ {
					c.Inc(w, k)
				}
			}
			c.Add(w, Steals, 5)
		}(w)
	}
	wg.Wait()

	for k := Kind(0); k < NumKinds; k++ {
		want := int64(workers * perWorker)
		if k == Steals {
			want += workers * 5
		}
		if got := c.Total(k); got != want {
			t.Errorf("Total(%v) = %d, want %d", k, got, want)
		}
	}
	snap := c.Snapshot()
	if snap.Workers != workers || len(snap.PerWorker) != workers {
		t.Fatalf("snapshot workers = %d/%d, want %d", snap.Workers, len(snap.PerWorker), workers)
	}
	if snap.Totals.Steals != int64(workers*perWorker+workers*5) {
		t.Errorf("snapshot steals = %d", snap.Totals.Steals)
	}
	if snap.PerWorker[0].ChunksClaimed != perWorker {
		t.Errorf("per-worker chunks = %d, want %d", snap.PerWorker[0].ChunksClaimed, perWorker)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		ChunksClaimed:   "chunks_claimed",
		TasksSpawned:    "tasks_spawned",
		Steals:          "steals",
		StealFails:      "steal_failures",
		RangeSplits:     "range_splits",
		PanicsContained: "panics_contained",
		Retries:         "retries",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(NumKinds).String() != "unknown" {
		t.Errorf("out-of-range Kind.String() = %q", Kind(NumKinds).String())
	}
}

func TestRecorderContext(t *testing.T) {
	if got := FromContext(nil); got != Nop { //nolint:staticcheck // nil ctx tolerated by design
		t.Errorf("FromContext(nil) = %v, want Nop", got)
	}
	if got := FromContext(context.Background()); got != Nop {
		t.Errorf("FromContext(empty) = %v, want Nop", got)
	}
	rec := NewMemRecorder()
	ctx := WithRecorder(context.Background(), rec)
	if got := FromContext(ctx); got != Recorder(rec) {
		t.Errorf("FromContext roundtrip = %v, want the MemRecorder", got)
	}
	if Active(Nop) {
		t.Error("Active(Nop) = true")
	}
	if Active(nil) {
		t.Error("Active(nil) = true")
	}
	if !Active(rec) {
		t.Error("Active(MemRecorder) = false")
	}
}

func TestMemRecorder(t *testing.T) {
	rec := NewMemRecorder()
	rec.Record(PhaseSample{Kernel: "bfs", Phase: "level", Index: 0, Items: 1})
	rec.Record(PhaseSample{Kernel: "bfs", Phase: "level", Index: 1, Items: 7})
	if rec.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rec.Len())
	}
	s := rec.Samples()
	if s[1].Items != 7 || s[1].Index != 1 {
		t.Errorf("sample[1] = %+v", s[1])
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Errorf("Len after Reset = %d", rec.Len())
	}
}

// TestNopRecorderAllocFree proves the uninstrumented kernel path — fetch the
// recorder from a context without one, check Active, record nothing — does
// not allocate.
func TestNopRecorderAllocFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		rec := FromContext(ctx)
		if Active(rec) {
			rec.Record(PhaseSample{})
		}
	})
	if allocs != 0 {
		t.Errorf("uninstrumented recorder path allocates %.1f/op, want 0", allocs)
	}
}

// TestNilCountersAllocFree proves the nil-Counters fast path neither
// allocates nor races.
func TestNilCountersAllocFree(t *testing.T) {
	var c *Counters
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc(0, ChunksClaimed)
		c.Inc(0, Steals)
	})
	if allocs != 0 {
		t.Errorf("nil counter path allocates %.1f/op, want 0", allocs)
	}
}

func TestTimelineRing(t *testing.T) {
	tl := NewTimeline(4)
	for i := 0; i < 6; i++ {
		tl.Emit(Event{Name: "e", Start: float64(i)})
	}
	if tl.Len() != 4 {
		t.Errorf("Len = %d, want 4", tl.Len())
	}
	if tl.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", tl.Dropped())
	}
	ev := tl.Events()
	if len(ev) != 4 || ev[0].Start != 2 || ev[3].Start != 5 {
		t.Errorf("Events after overflow = %+v, want starts 2..5", ev)
	}
	tl.Reset()
	if tl.Len() != 0 || tl.Dropped() != 0 {
		t.Errorf("after Reset: Len=%d Dropped=%d", tl.Len(), tl.Dropped())
	}
	tl.Emit(Event{Start: 9})
	if ev := tl.Events(); len(ev) != 1 || ev[0].Start != 9 {
		t.Errorf("Events after Reset+Emit = %+v", ev)
	}
}

func TestTimelineNilAndZeroValue(t *testing.T) {
	var nilTL *Timeline
	nilTL.Emit(Event{})
	if nilTL.Len() != 0 || nilTL.Dropped() != 0 || nilTL.Events() != nil {
		t.Error("nil Timeline is not a no-op sink")
	}
	nilTL.Reset()

	var zero Timeline // lazily allocates on first Emit
	zero.Emit(Event{Name: "a"})
	if zero.Len() != 1 {
		t.Errorf("zero-value Timeline Len = %d, want 1", zero.Len())
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	tl := NewTimeline(16)
	tl.Emit(Event{Name: "level", Cat: "chunk", Start: 0, Dur: 10.5, Core: 1, Thread: 33,
		Lo: 0, Hi: 100, Stolen: true, Straggler: 0.5, Issue: 4, Stall: 6.5})
	tl.Emit(Event{Name: "barrier", Cat: "barrier", Start: 10.5, Dur: 2, Core: MachineLane})

	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	var xEvents, meta int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			xEvents++
			if e.Name == "level" {
				if e.Pid != 1 || e.Tid != 33 {
					t.Errorf("chunk event lane = pid %d tid %d", e.Pid, e.Tid)
				}
				if e.Args["stolen"] != true || e.Args["straggler"] != 0.5 {
					t.Errorf("chunk args = %v", e.Args)
				}
			}
			if e.Name == "barrier" && e.Pid != 1<<20 {
				t.Errorf("machine-lane pid = %d, want %d", e.Pid, 1<<20)
			}
		case "M":
			meta++
		}
	}
	if xEvents != 2 {
		t.Errorf("X events = %d, want 2", xEvents)
	}
	if meta == 0 {
		t.Error("no metadata events emitted")
	}

	// Determinism: a fresh timeline with the same events must serialize to
	// the same bytes.
	tl2 := NewTimeline(16)
	for _, e := range tl.Events() {
		tl2.Emit(e)
	}
	var buf2 bytes.Buffer
	if err := tl2.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("identical event sequences produced different trace bytes")
	}
}

func TestWriteJSONL(t *testing.T) {
	var buf bytes.Buffer
	type rec struct {
		A int    `json:"a"`
		B string `json:"b"`
	}
	if err := WriteJSONL(&buf, rec{1, "x"}, rec{2, "y"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	var r rec
	if err := json.Unmarshal([]byte(lines[1]), &r); err != nil || r.A != 2 || r.B != "y" {
		t.Errorf("line 2 = %q (err %v)", lines[1], err)
	}
}

func TestJSONLFile(t *testing.T) {
	path := t.TempDir() + "/out.jsonl"
	f, err := CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Write(map[string]int{"n": 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(map[string]int{"n": 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(b)); got != "{\"n\":1}\n{\"n\":2}" {
		t.Errorf("file content = %q", got)
	}
}
