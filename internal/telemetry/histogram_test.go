package telemetry

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"
)

// TestBucketBoundaryExactness pins the le semantics at every shared bound:
// an observation exactly on a bound lands in that bound's bucket, one
// nanosecond more lands in the next.
func TestBucketBoundaryExactness(t *testing.T) {
	bounds := BucketUpperBounds()
	if len(bounds) != histNumBounds {
		t.Fatalf("BucketUpperBounds: got %d bounds, want %d", len(bounds), histNumBounds)
	}
	if bounds[0] != 1000 {
		t.Fatalf("first bound = %d, want 1000 (1µs)", bounds[0])
	}
	for i, b := range bounds {
		if i > 0 && b <= bounds[i-1] {
			t.Fatalf("bounds not strictly ascending at %d: %d then %d", i, bounds[i-1], b)
		}
		if got := bucketFor(b); got != i {
			t.Errorf("bucketFor(%d) = %d, want %d (on-bound)", b, got, i)
		}
		if got := bucketFor(b + 1); got != i+1 {
			t.Errorf("bucketFor(%d) = %d, want %d (past-bound)", b+1, got, i+1)
		}
	}
	if got := bucketFor(0); got != 0 {
		t.Errorf("bucketFor(0) = %d, want 0", got)
	}
	if got := bucketFor(bounds[len(bounds)-1] + 1); got != histNumBounds {
		t.Errorf("past last bound should hit the overflow bucket, got %d", got)
	}
}

// TestObserveBoundary checks that recorded on-bound values come back out of
// the snapshot attributed to the exact bucket.
func TestObserveBoundary(t *testing.T) {
	h := NewHistogram()
	bounds := BucketUpperBounds()
	h.ObserveNS(bounds[5])     // exactly on bound 5
	h.ObserveNS(bounds[5] + 1) // first value of bucket 6
	h.Observe(-time.Second)    // clamps to 0 -> bucket 0
	s := h.Snapshot()
	want := []HistogramBucket{
		{LeNS: bounds[0], Count: 1},
		{LeNS: bounds[5], Count: 1},
		{LeNS: bounds[6], Count: 1},
	}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.SumNS != bounds[5]+bounds[5]+1 {
		t.Fatalf("sum = %d, want %d", s.SumNS, bounds[5]+bounds[5]+1)
	}
}

func randomSnapshot(rng *rand.Rand, n int) HistogramSnapshot {
	h := NewHistogram()
	for i := 0; i < n; i++ {
		// Log-uniform over ~11 decades so every octave gets traffic,
		// including the overflow bucket.
		h.ObserveNS(int64(math.Pow(10, 2+rng.Float64()*11)))
	}
	return h.Snapshot()
}

// TestMergeAssociativity: merging shares one fixed bucket layout, so it
// must be exact, associative, and commutative, with the empty snapshot as
// identity.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSnapshot(rng, 500)
	b := randomSnapshot(rng, 300)
	c := randomSnapshot(rng, 800)

	ab_c := a.Merge(b).Merge(c)
	a_bc := a.Merge(b.Merge(c))
	if !reflect.DeepEqual(ab_c, a_bc) {
		t.Fatalf("merge not associative:\n(a+b)+c = %+v\na+(b+c) = %+v", ab_c, a_bc)
	}
	if !reflect.DeepEqual(a.Merge(b), b.Merge(a)) {
		t.Fatal("merge not commutative")
	}
	var zero HistogramSnapshot
	if !reflect.DeepEqual(a.Merge(zero), a) {
		t.Fatal("empty snapshot is not a merge identity")
	}
	if ab_c.Count != a.Count+b.Count+c.Count {
		t.Fatalf("merged count = %d, want %d", ab_c.Count, a.Count+b.Count+c.Count)
	}
}

// TestSubDelta: the delta of two cumulative snapshots of one histogram
// equals the snapshot of the observations in between.
func TestSubDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := NewHistogram()
	only := NewHistogram()
	for i := 0; i < 400; i++ {
		h.ObserveNS(int64(rng.Intn(1_000_000_000)))
	}
	before := h.Snapshot()
	for i := 0; i < 400; i++ {
		ns := int64(rng.Intn(1_000_000_000))
		h.ObserveNS(ns)
		only.ObserveNS(ns)
	}
	delta := h.Snapshot().Sub(before)
	if !reflect.DeepEqual(delta, only.Snapshot()) {
		t.Fatalf("sub delta mismatch:\ndelta = %+v\nwant  = %+v", delta, only.Snapshot())
	}
}

// TestQuantileOracle compares the interpolated quantile against a sorted
// slice of the raw observations: the estimate must land inside the bucket
// that contains the true order statistic (the best any fixed-bucket
// histogram can promise).
func TestQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 17, 1000, 20000} {
		h := NewHistogram()
		vals := make([]int64, n)
		for i := range vals {
			ns := int64(math.Pow(10, 3+rng.Float64()*7))
			vals[i] = ns
			h.ObserveNS(ns)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := h.Snapshot()
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			rank := int(q * float64(n))
			if float64(rank) < q*float64(n) {
				rank++
			}
			if rank < 1 {
				rank = 1
			}
			oracle := vals[rank-1]
			est := s.Quantile(q)
			bi := bucketFor(oracle)
			lo, hi := lowerOf(leOf(bi)), leOf(bi)
			if bi == histNumBounds {
				// Overflow: the estimate saturates at the last finite bound.
				lo, hi = histBounds[histNumBounds-1], histBounds[histNumBounds-1]
			}
			if est < lo || est > hi {
				t.Errorf("n=%d q=%v: estimate %d outside oracle bucket (%d, %d] (oracle=%d)",
					n, q, est, lo, hi, oracle)
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
	if got := empty.MeanNS(); got != 0 {
		t.Errorf("empty mean = %d, want 0", got)
	}
	h := NewHistogram()
	h.ObserveNS(500) // below the first bound
	s := h.Snapshot()
	if got := s.Quantile(0.5); got < 0 || got > 1000 {
		t.Errorf("single sub-bound observation: q50 = %d, want within [0, 1000]", got)
	}
	if s.P50NS != s.Quantile(0.5) || s.P99NS != s.Quantile(0.99) || s.P999NS != s.Quantile(0.999) {
		t.Error("snapshot percentile fields disagree with Quantile")
	}
}

// TestNilHistogram: a nil *Histogram is a valid no-op sink — the shape the
// serving path relies on when telemetry is off.
func TestNilHistogram(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second)
	h.ObserveNS(42)
	if h.Count() != 0 {
		t.Fatal("nil histogram count != 0")
	}
	if s := h.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Fatalf("nil snapshot = %+v, want zero", s)
	}
}

// TestObserveAllocFree guards the record path: zero allocations whether
// telemetry is on (live histogram) or off (nil sink).
func TestObserveAllocFree(t *testing.T) {
	h := NewHistogram()
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3 * time.Millisecond) }); n != 0 {
		t.Errorf("live Observe allocates %v per call, want 0", n)
	}
	var off *Histogram
	if n := testing.AllocsPerRun(1000, func() { off.Observe(3 * time.Millisecond) }); n != 0 {
		t.Errorf("nil Observe allocates %v per call, want 0", n)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveNS(int64(i)*1337 + 1000)
	}
}

// BenchmarkHistogramObserveOff measures the record path with telemetry off
// (nil sink) — this is the cost every request pays when not instrumented,
// and it must stay allocation-free.
func BenchmarkHistogramObserveOff(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveNS(int64(i)*1337 + 1000)
	}
}
