package telemetry

import (
	"testing"
	"time"
)

// TestClockNopPath: the uninstrumented path must not read any clock and
// must return zero values.
func TestClockNopPath(t *testing.T) {
	if !Now(Nop).IsZero() || !Now(nil).IsZero() {
		t.Error("Now on inactive recorder must return the zero time")
	}
	if Since(Nop, time.Unix(0, 0)) != 0 || Since(nil, time.Unix(0, 0)) != 0 {
		t.Error("Since on inactive recorder must return 0")
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = Now(Nop)
		_ = Since(Nop, time.Time{})
	})
	if allocs != 0 {
		t.Errorf("Nop clock path allocates %v per run", allocs)
	}
}

// TestClockDefaultsToWallClock: an active recorder without its own Clock
// falls back to real time.
func TestClockDefaultsToWallClock(t *testing.T) {
	rec := NewMemRecorder()
	before := time.Now()
	got := Now(rec)
	if got.Before(before) {
		t.Errorf("Now(rec) = %v, before the wall clock %v", got, before)
	}
	if d := Since(rec, before); d < 0 {
		t.Errorf("Since(rec) = %v, want >= 0", d)
	}
}

// TestWithClock: a recorder wrapped with a fake clock yields exactly the
// fake's timestamps and still records.
func TestWithClock(t *testing.T) {
	tick := 0
	fake := func() time.Time {
		tick++
		return time.Unix(0, int64(tick)*1000)
	}
	mem := NewMemRecorder()
	rec := WithClock(mem, fake)

	start := Now(rec)
	if start != time.Unix(0, 1000) {
		t.Errorf("first Now = %v, want fake tick 1", start)
	}
	if d := Since(rec, start); d != 1000 {
		t.Errorf("Since = %v, want 1000ns (one fake tick)", d)
	}
	rec.Record(PhaseSample{Kernel: "k", Phase: "p"})
	if mem.Len() != 1 {
		t.Errorf("wrapped recorder did not pass Record through (len=%d)", mem.Len())
	}
	if !Active(rec) {
		t.Error("clock-wrapped recorder must stay active")
	}
}

// TestWithClockNilArgs: nil recorder normalizes to Nop; nil clock is a
// no-op wrap.
func TestWithClockNilArgs(t *testing.T) {
	if rec := WithClock(nil, nil); rec != Nop {
		t.Errorf("WithClock(nil, nil) = %v, want Nop", rec)
	}
	mem := NewMemRecorder()
	if rec := WithClock(mem, nil); rec != Recorder(mem) {
		t.Error("WithClock(rec, nil) must return rec unchanged")
	}
}
