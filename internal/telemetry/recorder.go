package telemetry

import (
	"context"
	"sync"
	"time"
)

// PhaseSample is one kernel phase measurement: a BFS level, a coloring
// round, or an irregular-computation sweep. Field meaning per kernel:
//
//   - BFS level:     Items = frontier entries processed, Edges = adjacency
//     entries scanned, Claims = vertices claimed into the next frontier;
//   - coloring round: Items = visit-set size, Claims = conflicts detected
//     (the next round's visit-set size);
//   - irregular sweep: Items = vertices updated, Edges = neighbor reads.
type PhaseSample struct {
	Kernel   string        `json:"kernel"`
	Phase    string        `json:"phase"`
	Index    int           `json:"index"`
	Items    int64         `json:"items"`
	Edges    int64         `json:"edges,omitempty"`
	Claims   int64         `json:"claims,omitempty"`
	Duration time.Duration `json:"duration_ns"`
}

// Recorder receives kernel phase samples. Implementations must be safe for
// concurrent use; the kernels call Record from the coordinating goroutine
// (one call per phase), but one Recorder may be shared by concurrent runs.
type Recorder interface {
	Record(PhaseSample)
}

type nopRecorder struct{}

func (nopRecorder) Record(PhaseSample) {}

// Nop is the default Recorder: it discards samples, costs nothing, and
// allocates nothing. Kernels compare against it to skip sample assembly
// entirely (see Active).
var Nop Recorder = nopRecorder{}

// Active reports whether r actually records: false for nil and for Nop.
// Kernels use it to skip timing and sample construction on the
// uninstrumented path.
func Active(r Recorder) bool { return r != nil && r != Nop }

// Clock is optionally implemented by a Recorder to supply the time source
// for kernel phase timing. Kernels never call time.Now directly (the
// wallclock analyzer in internal/analysis enforces this); they take time
// via Now/Since below, so a Recorder carrying a fake clock makes the
// recorded phase durations — and with them instrumented simulator output —
// bit-deterministic.
type Clock interface {
	Now() time.Time
}

// Now returns the phase timestamp for rec: rec's own clock when it
// implements Clock, the wall clock when rec actively records, and the
// zero time otherwise. The Nop path performs no clock read and no
// allocation.
func Now(rec Recorder) time.Time {
	if !Active(rec) {
		return time.Time{}
	}
	if c, ok := rec.(Clock); ok {
		return c.Now()
	}
	return time.Now()
}

// Since returns the phase time elapsed since start per rec's clock,
// following the same rules as Now.
func Since(rec Recorder, start time.Time) time.Duration {
	if !Active(rec) {
		return 0
	}
	if c, ok := rec.(Clock); ok {
		return c.Now().Sub(start)
	}
	return time.Since(start)
}

// clockRecorder bolts a clock onto an existing Recorder.
type clockRecorder struct {
	Recorder
	now func() time.Time
}

func (c clockRecorder) Now() time.Time { return c.now() }

// WithClock returns a Recorder that records to rec while serving now as
// the kernels' phase clock — the deterministic-timing hook used by tests
// and simulated runs. A nil now leaves rec's own clock behavior intact.
func WithClock(rec Recorder, now func() time.Time) Recorder {
	if rec == nil {
		rec = Nop
	}
	if now == nil {
		return rec
	}
	return clockRecorder{Recorder: rec, now: now}
}

// recorderKey is the context key carrying the run's Recorder.
type recorderKey struct{}

// WithRecorder returns a context carrying r; kernels executed under it
// record their phase metrics to r. A nil r is treated as Nop.
func WithRecorder(ctx context.Context, r Recorder) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if r == nil {
		r = Nop
	}
	return context.WithValue(ctx, recorderKey{}, r)
}

// FromContext returns the Recorder carried by ctx, or Nop when ctx is nil
// or carries none. The result is never nil.
func FromContext(ctx context.Context) Recorder {
	if ctx == nil {
		return Nop
	}
	if r, ok := ctx.Value(recorderKey{}).(Recorder); ok {
		return r
	}
	return Nop
}

// MemRecorder accumulates samples in memory; safe for concurrent use.
type MemRecorder struct {
	mu      sync.Mutex
	samples []PhaseSample
}

// NewMemRecorder returns an empty in-memory recorder.
func NewMemRecorder() *MemRecorder { return &MemRecorder{} }

// Record appends the sample.
func (m *MemRecorder) Record(s PhaseSample) {
	m.mu.Lock()
	m.samples = append(m.samples, s)
	m.mu.Unlock()
}

// Samples returns a copy of the recorded samples in arrival order.
func (m *MemRecorder) Samples() []PhaseSample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PhaseSample, len(m.samples))
	copy(out, m.samples)
	return out
}

// Len returns the number of recorded samples.
func (m *MemRecorder) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.samples)
}

// Reset discards all recorded samples.
func (m *MemRecorder) Reset() {
	m.mu.Lock()
	m.samples = m.samples[:0]
	m.mu.Unlock()
}
