package telemetry

import (
	"context"
	"sync"
	"time"
)

// PhaseSample is one kernel phase measurement: a BFS level, a coloring
// round, or an irregular-computation sweep. Field meaning per kernel:
//
//   - BFS level:     Items = frontier entries processed, Edges = adjacency
//     entries scanned, Claims = vertices claimed into the next frontier;
//   - coloring round: Items = visit-set size, Claims = conflicts detected
//     (the next round's visit-set size);
//   - irregular sweep: Items = vertices updated, Edges = neighbor reads.
type PhaseSample struct {
	Kernel   string        `json:"kernel"`
	Phase    string        `json:"phase"`
	Index    int           `json:"index"`
	Items    int64         `json:"items"`
	Edges    int64         `json:"edges,omitempty"`
	Claims   int64         `json:"claims,omitempty"`
	Duration time.Duration `json:"duration_ns"`
}

// Recorder receives kernel phase samples. Implementations must be safe for
// concurrent use; the kernels call Record from the coordinating goroutine
// (one call per phase), but one Recorder may be shared by concurrent runs.
type Recorder interface {
	Record(PhaseSample)
}

type nopRecorder struct{}

func (nopRecorder) Record(PhaseSample) {}

// Nop is the default Recorder: it discards samples, costs nothing, and
// allocates nothing. Kernels compare against it to skip sample assembly
// entirely (see Active).
var Nop Recorder = nopRecorder{}

// Active reports whether r actually records: false for nil and for Nop.
// Kernels use it to skip timing and sample construction on the
// uninstrumented path.
func Active(r Recorder) bool { return r != nil && r != Nop }

// recorderKey is the context key carrying the run's Recorder.
type recorderKey struct{}

// WithRecorder returns a context carrying r; kernels executed under it
// record their phase metrics to r. A nil r is treated as Nop.
func WithRecorder(ctx context.Context, r Recorder) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if r == nil {
		r = Nop
	}
	return context.WithValue(ctx, recorderKey{}, r)
}

// FromContext returns the Recorder carried by ctx, or Nop when ctx is nil
// or carries none. The result is never nil.
func FromContext(ctx context.Context) Recorder {
	if ctx == nil {
		return Nop
	}
	if r, ok := ctx.Value(recorderKey{}).(Recorder); ok {
		return r
	}
	return Nop
}

// MemRecorder accumulates samples in memory; safe for concurrent use.
type MemRecorder struct {
	mu      sync.Mutex
	samples []PhaseSample
}

// NewMemRecorder returns an empty in-memory recorder.
func NewMemRecorder() *MemRecorder { return &MemRecorder{} }

// Record appends the sample.
func (m *MemRecorder) Record(s PhaseSample) {
	m.mu.Lock()
	m.samples = append(m.samples, s)
	m.mu.Unlock()
}

// Samples returns a copy of the recorded samples in arrival order.
func (m *MemRecorder) Samples() []PhaseSample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PhaseSample, len(m.samples))
	copy(out, m.samples)
	return out
}

// Len returns the number of recorded samples.
func (m *MemRecorder) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.samples)
}

// Reset discards all recorded samples.
func (m *MemRecorder) Reset() {
	m.mu.Lock()
	m.samples = m.samples[:0]
	m.mu.Unlock()
}
