package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// The serving layer aggregates per-job latency spans into fixed-bucket
// log-scale histograms: every Histogram in the process shares one
// deterministic bucket layout, so snapshots taken on different machines,
// by different processes (micserved's /metricsz and micload's client-side
// observations), merge and subtract bucket-for-bucket without any
// resolution negotiation.
//
// Layout: 4 sub-buckets per octave (ratio 2^(1/4)-ish, linear within the
// octave), starting at 1µs and ending past an hour. Bucket i counts
// observations v with bounds[i-1] < v <= bounds[i] ("le" semantics, like
// Prometheus); everything at or below the first bound lands in bucket 0
// and everything above the last bound in the overflow bucket. All bounds
// are exact integers (multiples of 250ns shifted up per octave), so bucket
// membership is bit-deterministic and testable at the boundaries.
const (
	histSubBuckets = 4
	histOctaves    = 32
	histNumBounds  = histSubBuckets * histOctaves

	// OverflowLeNS is the synthetic "le" key of the overflow bucket in
	// snapshots: no finite observation exceeds it.
	OverflowLeNS = math.MaxInt64
)

// histBounds holds the shared upper bounds in nanoseconds, ascending.
// bound(o, m) = (250 << o) * (4+m) for octave o and sub-bucket m, i.e.
// 1000, 1250, 1500, 1750, 2000, 2500, ... up to ~62min.
var histBounds = func() [histNumBounds]int64 {
	var b [histNumBounds]int64
	for o := 0; o < histOctaves; o++ {
		base := int64(250) << uint(o)
		for m := 0; m < histSubBuckets; m++ {
			b[o*histSubBuckets+m] = base * int64(4+m)
		}
	}
	return b
}()

// bucketFor returns the bucket index of a (non-negative) duration in
// nanoseconds: the smallest i with ns <= histBounds[i], or histNumBounds
// (the overflow bucket) when ns exceeds every bound.
func bucketFor(ns int64) int {
	if ns <= histBounds[0] {
		return 0
	}
	if ns > histBounds[histNumBounds-1] {
		return histNumBounds
	}
	lo, hi := 1, histNumBounds-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ns <= histBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// BucketUpperBounds returns a copy of the shared bucket upper bounds in
// nanoseconds (ascending, overflow excluded). Exposed for tests and for
// clients that pre-size their own aggregation.
func BucketUpperBounds() []int64 {
	out := make([]int64, histNumBounds)
	copy(out, histBounds[:])
	return out
}

// Histogram is a concurrency-safe fixed-bucket log-scale latency
// histogram. The record path is lock-free (one atomic add per counter
// touched) and allocation-free; a nil *Histogram is a valid no-op sink,
// so callers on the uninstrumented path pay only a nil check.
type Histogram struct {
	counts [histNumBounds + 1]atomic.Int64 // last = overflow
	count  atomic.Int64
	sum    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration. Negative durations (possible under a
// misbehaving injected clock) clamp to zero. No-op on a nil receiver.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNS(int64(d)) }

// ObserveNS records one duration given in nanoseconds.
func (h *Histogram) ObserveNS(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketFor(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of recorded observations (0 on nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramBucket is one non-empty bucket of a snapshot: Count
// observations at or below LeNS nanoseconds (and above the next-smaller
// shared bound). LeNS == OverflowLeNS marks the overflow bucket.
type HistogramBucket struct {
	LeNS  int64 `json:"le_ns"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a Histogram, the JSON shape
// exported by /metricsz and consumed by micload. Buckets are sorted by
// LeNS ascending and carry per-bucket (not cumulative) counts, which makes
// Merge and Sub trivial. P50/P99/P999 are interpolated at snapshot time
// for human consumption; re-derive percentiles of merged or subtracted
// snapshots with Quantile.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	SumNS   int64             `json:"sum_ns"`
	P50NS   int64             `json:"p50_ns"`
	P99NS   int64             `json:"p99_ns"`
	P999NS  int64             `json:"p999_ns"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot captures the current contents. Individual loads are atomic; the
// snapshot as a whole is not (recording may race it), which is fine for
// its reporting purpose. A nil receiver yields a zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), SumNS: h.sum.Load()}
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{LeNS: leOf(i), Count: c})
		}
	}
	s.P50NS = s.Quantile(0.50)
	s.P99NS = s.Quantile(0.99)
	s.P999NS = s.Quantile(0.999)
	return s
}

// leOf returns the "le" key of bucket index i.
func leOf(i int) int64 {
	if i >= histNumBounds {
		return OverflowLeNS
	}
	return histBounds[i]
}

// lowerOf returns the exclusive lower bound of the bucket whose upper
// bound is le (0 for the first bucket; the last finite bound for the
// overflow bucket).
func lowerOf(le int64) int64 {
	if le == OverflowLeNS {
		return histBounds[histNumBounds-1]
	}
	i := bucketFor(le) // le is itself a bound, so this is its own index
	if i == 0 {
		return 0
	}
	return histBounds[i-1]
}

// Quantile returns the interpolated q-quantile (0 < q < 1) in
// nanoseconds: linear interpolation inside the bucket holding the target
// rank, the standard fixed-bucket estimate. Returns 0 for an empty
// snapshot; the overflow bucket reports the last finite bound (an
// underestimate, flagged by the bucket itself being present).
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for _, b := range s.Buckets {
		next := cum + float64(b.Count)
		if target <= next {
			if b.LeNS == OverflowLeNS {
				return histBounds[histNumBounds-1]
			}
			lower := lowerOf(b.LeNS)
			frac := (target - cum) / float64(b.Count)
			return lower + int64(frac*float64(b.LeNS-lower))
		}
		cum = next
	}
	// Unreachable for a well-formed snapshot; be defensive.
	if n := len(s.Buckets); n > 0 {
		if le := s.Buckets[n-1].LeNS; le != OverflowLeNS {
			return le
		}
	}
	return histBounds[histNumBounds-1]
}

// MeanNS returns the arithmetic mean in nanoseconds (0 when empty).
func (s HistogramSnapshot) MeanNS() int64 {
	if s.Count <= 0 {
		return 0
	}
	return s.SumNS / s.Count
}

// Merge returns the bucket-wise sum of two snapshots (shared layout makes
// this exact, and the operation associative and commutative). Percentile
// fields are re-derived for the merged distribution.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	return combine(s, o, func(a, b int64) int64 { return a + b })
}

// Sub returns s minus o bucket-wise, clamping each bucket (and the count
// and sum) at zero — the delta of two cumulative snapshots of one
// monotonically recording histogram, used for per-phase attribution.
func (s HistogramSnapshot) Sub(o HistogramSnapshot) HistogramSnapshot {
	return combine(s, o, func(a, b int64) int64 {
		if a < b {
			return 0
		}
		return a - b
	})
}

func combine(s, o HistogramSnapshot, op func(a, b int64) int64) HistogramSnapshot {
	out := HistogramSnapshot{Count: op(s.Count, o.Count), SumNS: op(s.SumNS, o.SumNS)}
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		var le, a, b int64
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].LeNS < o.Buckets[j].LeNS):
			le, a = s.Buckets[i].LeNS, s.Buckets[i].Count
			i++
		case i >= len(s.Buckets) || o.Buckets[j].LeNS < s.Buckets[i].LeNS:
			le, b = o.Buckets[j].LeNS, o.Buckets[j].Count
			j++
		default:
			le, a, b = s.Buckets[i].LeNS, s.Buckets[i].Count, o.Buckets[j].Count
			i++
			j++
		}
		if c := op(a, b); c > 0 {
			out.Buckets = append(out.Buckets, HistogramBucket{LeNS: le, Count: c})
		}
	}
	out.P50NS = out.Quantile(0.50)
	out.P99NS = out.Quantile(0.99)
	out.P999NS = out.Quantile(0.999)
	return out
}
