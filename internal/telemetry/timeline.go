package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Event is one interval on the simulator timeline. Times are in abstract
// simulator cycles (exported 1 cycle = 1 µs so trace viewers display them
// sensibly). Core/Thread map to the Chrome trace pid/tid lanes; pseudo
// events that describe machine-wide effects (bandwidth ceilings, barriers,
// chunk-counter serialisation) use Core == MachineLane.
type Event struct {
	Name   string  // phase name ("level", "tentative", ...) or effect name
	Cat    string  // "chunk", "bandwidth", "serialize", "barrier"
	Start  float64 // cycles since simulation start
	Dur    float64 // cycles
	Core   int     // physical core (Chrome pid), or MachineLane
	Thread int     // hardware thread (Chrome tid)

	// Chunk-event details (zero for pseudo events).
	Lo, Hi    int     // item range of the chunk
	Stolen    bool    // executed away from its owner thread
	Straggler float64 // straggler slowdown fraction applied to the chunk (0 = none)
	Issue     float64 // issue cycles of the chunk (incl. per-chunk overhead)
	Stall     float64 // effective memory-stall cycles after SMT sharing
}

// MachineLane is the pseudo core id used for machine-wide events.
const MachineLane = -1

// DefaultTimelineCap is the default ring capacity (events).
const DefaultTimelineCap = 1 << 17

// Timeline is a bounded ring buffer of simulator events. When the buffer is
// full, the oldest events are overwritten and counted as dropped. A nil
// *Timeline is a valid no-op sink. Safe for concurrent use.
type Timeline struct {
	mu      sync.Mutex
	events  []Event
	head    int // index of the oldest event when full
	full    bool
	dropped int64
}

// NewTimeline creates a timeline holding up to capacity events
// (DefaultTimelineCap when capacity <= 0).
func NewTimeline(capacity int) *Timeline {
	if capacity <= 0 {
		capacity = DefaultTimelineCap
	}
	return &Timeline{events: make([]Event, 0, capacity)}
}

// Emit appends an event, overwriting the oldest once the ring is full.
// No-op on a nil receiver.
func (t *Timeline) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if cap(t.events) == 0 {
		t.events = make([]Event, 0, DefaultTimelineCap) // zero-value Timeline
	}
	if !t.full && len(t.events) < cap(t.events) {
		t.events = append(t.events, e)
	} else {
		t.full = true
		t.events[t.head] = e
		t.head++
		t.dropped++
		if t.head == len(t.events) {
			t.head = 0
		}
	}
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were evicted by ring overflow.
func (t *Timeline) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the buffered events in emission order.
func (t *Timeline) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.head:]...)
	out = append(out, t.events[:t.head]...)
	return out
}

// Reset discards all events and the dropped count.
func (t *Timeline) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.head, t.full, t.dropped = 0, false, 0
	t.mu.Unlock()
}

// WriteChromeTrace writes the buffered events as Chrome trace-event JSON
// ("X" complete events plus process/thread metadata), viewable in Perfetto
// (ui.perfetto.dev) or chrome://tracing. Simulator cycles are exported as
// microseconds (1 cycle = 1 µs). The output is deterministic: the same
// event sequence always produces byte-identical JSON.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	bw := bufio.NewWriter(w)

	// Lane metadata: one "process" per core plus the machine lane, named and
	// sorted so viewers group threads under their core.
	type lane struct{ core, thread int }
	coreSet := map[int]bool{}
	laneSet := map[lane]bool{}
	for _, e := range events {
		coreSet[e.Core] = true
		laneSet[lane{e.Core, e.Thread}] = true
	}
	cores := make([]int, 0, len(coreSet))
	for c := range coreSet {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	lanes := make([]lane, 0, len(laneSet))
	for l := range laneSet {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].core != lanes[j].core {
			return lanes[i].core < lanes[j].core
		}
		return lanes[i].thread < lanes[j].thread
	})

	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	item := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	coreName := func(c int) string {
		if c == MachineLane {
			return "machine"
		}
		return fmt.Sprintf("core %d", c)
	}
	for _, c := range cores {
		item(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`, pid(c), coreName(c))
		item(`{"name":"process_sort_index","ph":"M","pid":%d,"tid":0,"args":{"sort_index":%d}}`, pid(c), pid(c))
	}
	for _, l := range lanes {
		name := fmt.Sprintf("thread %d", l.thread)
		if l.core == MachineLane {
			name = "machine"
		}
		item(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`, pid(l.core), l.thread, name)
	}
	for i := range events {
		e := &events[i]
		item(`{"name":%q,"cat":%q,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{%s}}`,
			e.Name, e.Cat, num(e.Start), num(e.Dur), pid(e.Core), e.Thread, args(e))
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// pid maps the machine lane to a viewer-friendly non-negative pid.
func pid(core int) int {
	if core == MachineLane {
		return 1 << 20
	}
	return core
}

// num formats a float deterministically and compactly.
func num(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// args renders the event details as deterministic JSON object members.
func args(e *Event) string {
	s := fmt.Sprintf(`"lo":%d,"hi":%d`, e.Lo, e.Hi)
	if e.Issue > 0 {
		s += `,"issue":` + num(e.Issue)
	}
	if e.Stall > 0 {
		s += `,"stall":` + num(e.Stall)
	}
	if e.Stolen {
		s += `,"stolen":true`
	}
	if e.Straggler > 0 {
		s += `,"straggler":` + num(e.Straggler)
	}
	return s
}
