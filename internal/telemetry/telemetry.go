// Package telemetry is the low-overhead instrumentation substrate of the
// reproduction: it lets every layer above it — the scheduler runtimes in
// package sched, the machine simulator in package mic, the graph kernels,
// and the experiment harness in package core — explain *where time goes*
// without perturbing what is being measured.
//
// It has three independent parts:
//
//   - Counters: per-worker, cache-line-padded atomic counters for scheduler
//     events (chunks claimed, tasks spawned, steals and steal failures,
//     range splits, contained panics, harness retries). A nil *Counters is
//     a valid no-op sink, so uninstrumented Teams and Pools pay only a nil
//     check per event.
//
//   - Recorder: a single-method interface for kernel phase metrics
//     (per-BFS-level frontier sizes, per-coloring-round conflict counts).
//     The default is Nop; kernels obtain their Recorder from the run's
//     context.Context via FromContext, so the uninstrumented path is
//     allocation-free and branch-predictable.
//
//   - Timeline: a bounded ring buffer of simulator events (chunk
//     executions with their issue/stall decomposition, steals, straggler
//     slowdowns, bandwidth-throttled intervals, barriers) exportable as
//     Chrome trace-event JSON, viewable in Perfetto or chrome://tracing.
//     Export is deterministic: the same simulation always produces
//     byte-identical output.
package telemetry

import "sync/atomic"

// Kind enumerates the scheduler counters.
type Kind int

const (
	// ChunksClaimed counts loop chunks (or work-stealing leaf ranges) a
	// worker claimed and executed.
	ChunksClaimed Kind = iota
	// TasksSpawned counts tasks pushed onto a worker's deque.
	TasksSpawned
	// Steals counts tasks a worker obtained from another worker's deque.
	Steals
	// StealFails counts full unsuccessful victim tours (the worker found
	// nothing to steal anywhere).
	StealFails
	// RangeSplits counts recursive range/loop splits (cilk_for halving,
	// TBB partitioner subdivisions).
	RangeSplits
	// PanicsContained counts body/task panics captured by the runtime.
	PanicsContained
	// Retries counts harness-level retries of failed sweep cells.
	Retries

	// NumKinds is the number of counter kinds.
	NumKinds
)

// String returns the snake_case name used in snapshots and JSON output.
func (k Kind) String() string {
	switch k {
	case ChunksClaimed:
		return "chunks_claimed"
	case TasksSpawned:
		return "tasks_spawned"
	case Steals:
		return "steals"
	case StealFails:
		return "steal_failures"
	case RangeSplits:
		return "range_splits"
	case PanicsContained:
		return "panics_contained"
	case Retries:
		return "retries"
	}
	return "unknown"
}

// workerCell holds one worker's counters, padded so two workers never share
// a cache line (the same false-sharing discipline as sched.paddedInt).
type workerCell struct {
	v [NumKinds]atomic.Int64
	_ [64 - (NumKinds*8)%64]byte
}

// Counters is a set of per-worker scheduler counters. All methods are safe
// for concurrent use; increments are per-worker and therefore uncontended.
// A nil *Counters is a valid no-op sink.
type Counters struct {
	workers []workerCell
}

// NewCounters creates counters for n workers (n >= 1).
func NewCounters(n int) *Counters {
	if n < 1 {
		n = 1
	}
	return &Counters{workers: make([]workerCell, n)}
}

// Workers returns the worker count (0 for a nil receiver).
func (c *Counters) Workers() int {
	if c == nil {
		return 0
	}
	return len(c.workers)
}

// Inc adds 1 to worker w's counter k. No-op on a nil receiver.
func (c *Counters) Inc(w int, k Kind) {
	if c == nil {
		return
	}
	c.workers[w].v[k].Add(1)
}

// Add adds n to worker w's counter k. No-op on a nil receiver.
func (c *Counters) Add(w int, k Kind, n int64) {
	if c == nil {
		return
	}
	c.workers[w].v[k].Add(n)
}

// Get returns worker w's current value of counter k (0 on nil receiver).
func (c *Counters) Get(w int, k Kind) int64 {
	if c == nil {
		return 0
	}
	return c.workers[w].v[k].Load()
}

// Total returns the sum of counter k across workers.
func (c *Counters) Total(k Kind) int64 {
	if c == nil {
		return 0
	}
	var t int64
	for w := range c.workers {
		t += c.workers[w].v[k].Load()
	}
	return t
}

// CounterSet is one flat set of counter values, used for totals and for
// per-worker breakdowns in snapshots.
type CounterSet struct {
	ChunksClaimed   int64 `json:"chunks_claimed"`
	TasksSpawned    int64 `json:"tasks_spawned"`
	Steals          int64 `json:"steals"`
	StealFails      int64 `json:"steal_failures"`
	RangeSplits     int64 `json:"range_splits"`
	PanicsContained int64 `json:"panics_contained"`
	Retries         int64 `json:"retries"`
}

func (s *CounterSet) set(k Kind, v int64) {
	switch k {
	case ChunksClaimed:
		s.ChunksClaimed = v
	case TasksSpawned:
		s.TasksSpawned = v
	case Steals:
		s.Steals = v
	case StealFails:
		s.StealFails = v
	case RangeSplits:
		s.RangeSplits = v
	case PanicsContained:
		s.PanicsContained = v
	case Retries:
		s.Retries = v
	}
}

func (s *CounterSet) add(o CounterSet) {
	s.ChunksClaimed += o.ChunksClaimed
	s.TasksSpawned += o.TasksSpawned
	s.Steals += o.Steals
	s.StealFails += o.StealFails
	s.RangeSplits += o.RangeSplits
	s.PanicsContained += o.PanicsContained
	s.Retries += o.Retries
}

// Snapshot is a point-in-time copy of a Counters set. Individual loads are
// atomic; the snapshot as a whole is not (counters may advance while it is
// taken), which is fine for its reporting purpose.
type Snapshot struct {
	Workers   int          `json:"workers"`
	Totals    CounterSet   `json:"totals"`
	PerWorker []CounterSet `json:"per_worker,omitempty"`
}

// Snapshot captures the current counter values. On a nil receiver it
// returns a zero snapshot.
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	snap := Snapshot{Workers: len(c.workers), PerWorker: make([]CounterSet, len(c.workers))}
	for w := range c.workers {
		for k := Kind(0); k < NumKinds; k++ {
			snap.PerWorker[w].set(k, c.workers[w].v[k].Load())
		}
		snap.Totals.add(snap.PerWorker[w])
	}
	return snap
}
