package telemetry

import "time"

// systemClock is the wall clock behind telemetry.System.
type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// System is the process wall clock as a Clock. Packages whose clock reads
// are policed by micvet's wallclock analyzer (the kernels, and since the
// latency-span work the serving and load-generation layers) take their
// default time source from here instead of calling time.Now directly, so
// a test can swap in a fake Clock and make every stamped duration
// deterministic.
var System Clock = systemClock{}
