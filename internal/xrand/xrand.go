// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the graph generators and experiment drivers.
//
// The generators are seeded explicitly, never from the clock, so every
// experiment in this repository is reproducible bit-for-bit. SplitMix64 is
// used to expand a single seed into generator state; Xoshiro256** is the
// workhorse generator (fast, passes BigCrush, tiny state).
package xrand

import "math"

// SplitMix64 is a 64-bit generator with a single word of state. It is mainly
// used to seed Xoshiro, but is a perfectly usable generator on its own.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Rand is a Xoshiro256** generator.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	var r Rand
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// Guard against the (astronomically unlikely) all-zero state, which is
	// the only state Xoshiro cannot escape.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return &r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed value in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits to remove modulo bias.
	limit := math.MaxUint64 - math.MaxUint64%n
	for {
		v := r.Uint64()
		if v < limit {
			return v % n
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n) as a slice,
// generated with the inside-out Fisher-Yates shuffle.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
