package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the public-domain splitmix64 reference
	// implementation with seed 0.
	sm := NewSplitMix64(0)
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
		0xF88BB8A8724C81EC,
	}
	for i, w := range want {
		if got := sm.Next(); got != w {
			t.Errorf("SplitMix64(0) value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with the same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("generators with different seeds agree on %d of 1000 outputs", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwoAndGeneral(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d", v)
		}
		if v := r.Uint64n(10); v >= 10 {
			t.Fatalf("Uint64n(10) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of %d uniform samples = %v, want ~0.5", n, mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	property := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%512) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(property, nil); err != nil {
		t.Error(err)
	}
}

func TestPermUniformish(t *testing.T) {
	// Chi-squared-ish sanity check: element 0 should land in each of the 4
	// positions of Perm(4) roughly equally often.
	counts := [4]int{}
	for seed := uint64(0); seed < 4000; seed++ {
		p := New(seed).Perm(4)
		for pos, v := range p {
			if v == 0 {
				counts[pos]++
			}
		}
	}
	for pos, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("element 0 at position %d in %d/4000 permutations, want ~1000", pos, c)
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(99)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Errorf("shuffle changed the multiset: sum %d -> %d", sum, got)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= r.Intn(1000003)
	}
	_ = sink
}
