// Package components implements parallel connected components — another
// archetypical irregular graph kernel in the family the paper studies
// ("these three kernels cover a wide range of irregular applications"),
// included to demonstrate that the runtime substrates generalise beyond the
// paper's three. Two algorithms:
//
//   - label propagation: iterate "take the minimum label of your
//     neighborhood" until a fixed point — the same gather/scatter pattern
//     as the irregular microbenchmark;
//   - pointer jumping (Shiloach–Vishkin style hook + compress): the classic
//     PRAM algorithm, O(log V) rounds, heavier on atomics.
//
// Both run on the OpenMP-style Team and validate against the sequential
// reference in graph.ConnectedComponents.
package components

import (
	"sync/atomic"

	"micgraph/internal/graph"
	"micgraph/internal/sched"
)

// Result reports a components run.
type Result struct {
	Labels []int32 // Labels[v] identifies v's component (minimum vertex id)
	Count  int     // number of components
	Rounds int     // parallel rounds until the fixed point
}

// Sequential labels every vertex with the smallest vertex id in its
// component (BFS-based reference implementation).
func Sequential(g *graph.Graph) Result {
	n := g.NumVertices()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	count := 0
	queue := make([]int32, 0, 1024)
	for s := 0; s < n; s++ {
		if labels[s] != -1 {
			continue
		}
		count++
		root := int32(s)
		labels[s] = root
		queue = append(queue[:0], root)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.Adj(v) {
				if labels[w] == -1 {
					labels[w] = root
					queue = append(queue, w)
				}
			}
		}
	}
	return Result{Labels: labels, Count: count, Rounds: 1}
}

// LabelPropagation runs min-label propagation on team until no label
// changes. Labels converge to the minimum vertex id of each component.
func LabelPropagation(g *graph.Graph, team *sched.Team, opts sched.ForOptions) Result {
	n := g.NumVertices()
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(v)
	}
	res := Result{Labels: labels}
	if n == 0 {
		return res
	}

	for {
		res.Rounds++
		var changed atomic.Bool
		team.For(n, opts, func(lo, hi, w int) {
			localChanged := false
			for v := lo; v < hi; v++ {
				min := atomic.LoadInt32(&labels[v])
				for _, u := range g.Adj(int32(v)) {
					if l := atomic.LoadInt32(&labels[u]); l < min {
						min = l
					}
				}
				if min < atomic.LoadInt32(&labels[v]) {
					atomic.StoreInt32(&labels[v], min)
					localChanged = true
				}
			}
			if localChanged {
				changed.Store(true)
			}
		})
		if !changed.Load() {
			break
		}
	}
	res.Count = countRoots(labels)
	return res
}

// PointerJumping runs a hook-and-compress union: each round, every vertex
// hooks its parent to the smallest parent among its neighbors, then paths
// compress by pointer jumping. Converges in O(log V) rounds on any graph.
func PointerJumping(g *graph.Graph, team *sched.Team, opts sched.ForOptions) Result {
	n := g.NumVertices()
	parent := make([]int32, n)
	for v := range parent {
		parent[v] = int32(v)
	}
	res := Result{}
	if n == 0 {
		res.Labels = parent
		return res
	}

	for {
		res.Rounds++
		var changed atomic.Bool
		// Hook: point our root at the smallest neighboring root.
		team.For(n, opts, func(lo, hi, w int) {
			for v := lo; v < hi; v++ {
				pv := atomic.LoadInt32(&parent[v])
				for _, u := range g.Adj(int32(v)) {
					pu := atomic.LoadInt32(&parent[u])
					if pu < pv {
						// CAS onto the root's parent; benign failures are
						// retried next round.
						if atomic.CompareAndSwapInt32(&parent[pv], pv, pu) {
							changed.Store(true)
						}
						pv = pu
					}
				}
			}
		})
		// Compress: pointer jumping until every tree is a star.
		for {
			var jumped atomic.Bool
			team.For(n, opts, func(lo, hi, w int) {
				for v := lo; v < hi; v++ {
					p := atomic.LoadInt32(&parent[v])
					gp := atomic.LoadInt32(&parent[p])
					if gp != p {
						atomic.StoreInt32(&parent[v], gp)
						jumped.Store(true)
					}
				}
			})
			if !jumped.Load() {
				break
			}
		}
		if !changed.Load() {
			break
		}
	}
	res.Labels = parent
	res.Count = countRoots(parent)
	return res
}

func countRoots(labels []int32) int {
	count := 0
	for v, l := range labels {
		if int32(v) == l {
			count++
		}
	}
	return count
}

// Validate checks labels against the sequential reference: two vertices
// must share a label exactly when they share a component.
func Validate(g *graph.Graph, labels []int32) error {
	ref := Sequential(g)
	return graph.CompareLabelings(ref.Labels, labels)
}
