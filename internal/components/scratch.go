package components

import (
	"context"
	"sync/atomic"

	"micgraph/internal/graph"
	"micgraph/internal/sched"
)

// Scratch owns the reusable label array of the parallel components
// kernels, so repeated runs (the serving layer, benchmarks) allocate
// nothing in steady state. A Scratch is single-run: the returned
// Result.Labels aliases scratch-owned memory, valid until the next run on
// the same Scratch. The package-level entry points keep allocate-per-call
// semantics by running on a throwaway Scratch.
type Scratch struct {
	labels []int32

	// Per-run state read by the resident loop bodies below, so steady-state
	// rounds dispatch with zero closure allocations.
	xadj    []int64
	adj     []int32
	changed atomic.Bool
	jumped  atomic.Bool

	lpBody   func(lo, hi, w int)
	hookBody func(lo, hi, w int)
	jumpBody func(lo, hi, w int)
}

// NewScratch returns an empty Scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// ensure sizes the label array and initialises labels[v] = v.
func (s *Scratch) ensure(n int) []int32 {
	if cap(s.labels) < n {
		s.labels = make([]int32, n)
	}
	s.labels = s.labels[:n]
	for v := range s.labels {
		s.labels[v] = int32(v)
	}
	return s.labels
}

// LabelPropagationCtx is LabelPropagation with cooperative cancellation at
// chunk-claim boundaries and between rounds; on failure it returns the
// partial labels alongside the error.
func LabelPropagationCtx(ctx context.Context, g *graph.Graph, team *sched.Team, opts sched.ForOptions) (Result, error) {
	return NewScratch().LabelPropagation(ctx, g, team, opts)
}

// PointerJumpingCtx is PointerJumping with cooperative cancellation at
// chunk-claim boundaries and between rounds; on failure it returns the
// partial labels alongside the error.
func PointerJumpingCtx(ctx context.Context, g *graph.Graph, team *sched.Team, opts sched.ForOptions) (Result, error) {
	return NewScratch().PointerJumping(ctx, g, team, opts)
}

// LabelPropagation runs min-label propagation on the scratch's pooled
// label array over the raw CSR arrays. Neighbor labels are read atomically
// (they may be written concurrently); a vertex's own label is only written
// by its owning chunk, so the pre-round read needs no synchronisation.
func (s *Scratch) LabelPropagation(ctx context.Context, g *graph.Graph, team *sched.Team, opts sched.ForOptions) (Result, error) {
	opts = opts.WithSerialCutoff(team.Workers())
	n := g.NumVertices()
	labels := s.ensure(n)
	res := Result{Labels: labels}
	if n == 0 {
		return res, nil
	}
	s.xadj, s.adj = g.Xadj(), g.AdjRaw()
	if s.lpBody == nil {
		s.lpBody = func(lo, hi, w int) {
			xadj, adj, lbl := s.xadj, s.adj, s.labels
			localChanged := false
			for v := lo; v < hi; v++ {
				old := lbl[v]
				min := old
				for j := xadj[v]; j < xadj[v+1]; j++ {
					if l := atomic.LoadInt32(&lbl[adj[j]]); l < min {
						min = l
					}
				}
				if min < old {
					atomic.StoreInt32(&lbl[v], min)
					localChanged = true
				}
			}
			if localChanged {
				s.changed.Store(true)
			}
		}
	}

	for {
		res.Rounds++
		s.changed.Store(false)
		err := team.ForCtx(ctx, n, opts, s.lpBody)
		if err != nil {
			res.Count = countRoots(labels)
			return res, err
		}
		if !s.changed.Load() {
			break
		}
	}
	res.Count = countRoots(labels)
	return res, nil
}

// PointerJumping runs the hook-and-compress union on the scratch's pooled
// parent array over the raw CSR arrays.
func (s *Scratch) PointerJumping(ctx context.Context, g *graph.Graph, team *sched.Team, opts sched.ForOptions) (Result, error) {
	opts = opts.WithSerialCutoff(team.Workers())
	n := g.NumVertices()
	parent := s.ensure(n)
	res := Result{Labels: parent}
	if n == 0 {
		return res, nil
	}
	s.xadj, s.adj = g.Xadj(), g.AdjRaw()
	if s.hookBody == nil {
		s.hookBody = func(lo, hi, w int) {
			xadj, adj, par := s.xadj, s.adj, s.labels
			for v := lo; v < hi; v++ {
				pv := atomic.LoadInt32(&par[v])
				for j := xadj[v]; j < xadj[v+1]; j++ {
					pu := atomic.LoadInt32(&par[adj[j]])
					if pu < pv {
						// CAS onto the root's parent; benign failures are
						// retried next round.
						if atomic.CompareAndSwapInt32(&par[pv], pv, pu) {
							s.changed.Store(true)
						}
						pv = pu
					}
				}
			}
		}
		s.jumpBody = func(lo, hi, w int) {
			par := s.labels
			for v := lo; v < hi; v++ {
				p := atomic.LoadInt32(&par[v])
				gp := atomic.LoadInt32(&par[p])
				if gp != p {
					atomic.StoreInt32(&par[v], gp)
					s.jumped.Store(true)
				}
			}
		}
	}

	for {
		res.Rounds++
		s.changed.Store(false)
		// Hook: point our root at the smallest neighboring root.
		err := team.ForCtx(ctx, n, opts, s.hookBody)
		if err != nil {
			res.Count = countRoots(parent)
			return res, err
		}
		// Compress: pointer jumping until every tree is a star.
		for {
			s.jumped.Store(false)
			err := team.ForCtx(ctx, n, opts, s.jumpBody)
			if err != nil {
				res.Count = countRoots(parent)
				return res, err
			}
			if !s.jumped.Load() {
				break
			}
		}
		if !s.changed.Load() {
			break
		}
	}
	res.Count = countRoots(parent)
	return res, nil
}
