package components

import (
	"testing"
	"testing/quick"

	"micgraph/internal/gen"
	"micgraph/internal/graph"
	"micgraph/internal/sched"
	"micgraph/internal/xrand"
)

func randomGraph(seed uint64, n, m int) *graph.Graph {
	r := xrand.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func ccOpts() sched.ForOptions { return sched.ForOptions{Policy: sched.Dynamic, Chunk: 8} }

func TestSequentialComponents(t *testing.T) {
	b := graph.NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	res := Sequential(g)
	if res.Count != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("count = %d, want 4", res.Count)
	}
	if res.Labels[0] != res.Labels[2] || res.Labels[0] == res.Labels[3] {
		t.Error("labels wrong")
	}
	// Labels are the minimum vertex id of the component.
	if res.Labels[2] != 0 || res.Labels[4] != 3 || res.Labels[6] != 6 {
		t.Errorf("labels not component minima: %v", res.Labels)
	}
}

func TestParallelVariantsMatchSequential(t *testing.T) {
	team := sched.NewTeam(4)
	defer team.Close()
	graphs := map[string]*graph.Graph{
		"connected": gen.Grid2D(20, 20),
		"two-halves": func() *graph.Graph {
			b := graph.NewBuilder(40)
			for i := int32(0); i < 19; i++ {
				b.AddEdge(i, i+1)
				b.AddEdge(20+i, 21+i)
			}
			return b.Build()
		}(),
		"isolated": graph.NewBuilder(25).Build(),
		"random":   randomGraph(7, 300, 350), // many small components
		"rmat":     gen.RMAT(9, 4, 0.57, 0.19, 0.19, 5),
	}
	for name, g := range graphs {
		name, g := name, g
		t.Run(name, func(t *testing.T) {
			want := Sequential(g)
			lp := LabelPropagation(g, team, ccOpts())
			if err := Validate(g, lp.Labels); err != nil {
				t.Errorf("label propagation: %v", err)
			}
			if lp.Count != want.Count {
				t.Errorf("label propagation count %d, want %d", lp.Count, want.Count)
			}
			pj := PointerJumping(g, team, ccOpts())
			if err := Validate(g, pj.Labels); err != nil {
				t.Errorf("pointer jumping: %v", err)
			}
			if pj.Count != want.Count {
				t.Errorf("pointer jumping count %d, want %d", pj.Count, want.Count)
			}
		})
	}
}

func TestComponentsProperty(t *testing.T) {
	team := sched.NewTeam(4)
	defer team.Close()
	property := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%150) + 1
		m := int(mRaw % 400)
		g := randomGraph(seed, n, m)
		want := Sequential(g)
		lp := LabelPropagation(g, team, ccOpts())
		pj := PointerJumping(g, team, ccOpts())
		return lp.Count == want.Count && pj.Count == want.Count &&
			Validate(g, lp.Labels) == nil && Validate(g, pj.Labels) == nil
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPointerJumpingLogRounds(t *testing.T) {
	// A long chain must converge in O(log n) hook rounds, not O(n) — the
	// point of pointer jumping vs plain propagation.
	team := sched.NewTeam(4)
	defer team.Close()
	g := gen.Chain(4096)
	pj := PointerJumping(g, team, ccOpts())
	if pj.Count != 1 {
		t.Fatalf("chain components = %d", pj.Count)
	}
	if pj.Rounds > 40 {
		t.Errorf("pointer jumping took %d rounds on a 4096-chain; want O(log n)", pj.Rounds)
	}
	lp := LabelPropagation(g, team, ccOpts())
	if lp.Rounds < pj.Rounds {
		t.Errorf("label propagation (%d rounds) beat pointer jumping (%d) on a chain",
			lp.Rounds, pj.Rounds)
	}
}

func TestLabelsAreComponentMinima(t *testing.T) {
	team := sched.NewTeam(3)
	defer team.Close()
	g := gen.RingOfCliques(10, 5)
	for _, res := range []Result{
		LabelPropagation(g, team, ccOpts()),
		PointerJumping(g, team, ccOpts()),
	} {
		for v, l := range res.Labels {
			if l > int32(v) {
				t.Fatalf("label[%d] = %d exceeds the vertex id; not a minimum", v, l)
			}
		}
		if res.Labels[0] != 0 {
			t.Error("vertex 0 must label its own component")
		}
	}
}

func TestCompareLabelingsDetectsMismatch(t *testing.T) {
	if err := graph.CompareLabelings([]int32{0, 0, 2}, []int32{5, 5, 9}); err != nil {
		t.Errorf("isomorphic labelings rejected: %v", err)
	}
	if err := graph.CompareLabelings([]int32{0, 0, 2}, []int32{5, 9, 9}); err == nil {
		t.Error("split/merge not detected")
	}
	if err := graph.CompareLabelings([]int32{0, 1}, []int32{0, 0}); err == nil {
		t.Error("merged labels not detected")
	}
	if err := graph.CompareLabelings([]int32{0}, []int32{0, 1}); err == nil {
		t.Error("length mismatch not detected")
	}
}
