package analysis_test

import (
	"testing"

	"micgraph/internal/analysis"
	"micgraph/internal/analysis/analysistest"
)

// TestSimDeterminism checks the three invariant legs — no wall clock, no
// math/rand, no map-ordered emission — plus the sorted-emission and
// map-to-map negative cases, and that out-of-scope packages are ignored.
func TestSimDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.SimDeterminism, "mic", "outside")
}
