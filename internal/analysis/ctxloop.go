package analysis

import (
	"go/ast"
	"go/token"
)

// CtxLoop guards PR 1's cancellation contract: a function that takes a
// context.Context promises cooperative cancellation, so every potentially
// unbounded loop in it must observe the context on its backedge — by
// polling ctx.Err(), selecting on ctx.Done(), or delegating to a call
// that receives the context (the ...Ctx runtime drivers poll at every
// chunk-claim boundary).
//
// Bounded loops are exempt: range loops (bounded by the ranged value) and
// counted loops (a three-clause for whose condition tests the variable
// stepped in the post statement). Everything else — `for {}`, fixpoint
// loops like `for len(visit) > 0`, retry loops — must touch the context.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc: "functions taking a context.Context must observe it inside every unbounded loop (poll ctx.Err(), select on " +
		"ctx.Done(), or call a ctx-taking function), so cancellation cannot silently regress",
	Run: runCtxLoop,
}

func runCtxLoop(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasContextParam(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				loop, ok := n.(*ast.ForStmt)
				if !ok || countedLoop(loop) {
					return true
				}
				if loopUsesContext(pass, loop) {
					return true
				}
				pass.Reportf(loop.Pos(), "unbounded loop in %s does not observe its context: poll ctx.Err(), select on ctx.Done(), or use a ...Ctx driver so cancellation reaches this backedge", fd.Name.Name)
				return true
			})
		}
	}
	return nil
}

// hasContextParam reports whether fd declares a context.Context parameter.
func hasContextParam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := pass.Info.Types[field.Type]; ok && tv.Type != nil && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// countedLoop reports whether loop is a classic counted loop: its
// condition compares a variable that the post statement steps, so the
// iteration count is bounded by data already in hand.
func countedLoop(loop *ast.ForStmt) bool {
	if loop.Cond == nil || loop.Post == nil {
		return false
	}
	cond, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
	default:
		return false
	}
	stepped := steppedVar(loop.Post)
	if stepped == "" {
		return false
	}
	for _, side := range []ast.Expr{cond.X, cond.Y} {
		if id, ok := ast.Unparen(side).(*ast.Ident); ok && id.Name == stepped {
			return true
		}
	}
	return false
}

// steppedVar returns the name of the variable stepped by a loop post
// statement (i++, i--, i += k, i -= k), or "".
func steppedVar(post ast.Stmt) string {
	switch s := post.(type) {
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(s.X).(*ast.Ident); ok {
			return id.Name
		}
	case *ast.AssignStmt:
		if (s.Tok == token.ADD_ASSIGN || s.Tok == token.SUB_ASSIGN) && len(s.Lhs) == 1 {
			if id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok {
				return id.Name
			}
		}
	}
	return ""
}

// loopUsesContext reports whether the loop condition or body contains any
// context.Context-typed expression.
func loopUsesContext(pass *Pass, loop *ast.ForStmt) bool {
	if loop.Cond != nil && usesContext(pass.Info, loop.Cond) {
		return true
	}
	return usesContext(pass.Info, loop.Body)
}
