package analysis_test

import (
	"testing"

	"micgraph/internal/analysis"
	"micgraph/internal/analysis/analysistest"
)

// TestGoroleak checks goroutine-ownership detection: fire-and-forget
// spawns (named, literal, and cross-package) are flagged, while context
// arguments/captures, WaitGroup registration, done/result channels, and
// supervision visible only through a callee's fact are owned. The fixture
// also pins that //micvet:allow is analyzer-scoped: a goroleak directive
// suppresses, a lockhold directive on the same shape does not.
func TestGoroleak(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.Goroleak, "goroleak")
}
