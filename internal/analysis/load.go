package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// FactsOnly marks a package loaded from source solely so the facts
	// engine can summarize its function bodies: it was not matched by the
	// requested patterns, so analyzers produce no diagnostics for it.
	FactsOnly bool
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct{ Err string }
}

// loader resolves imports three ways, in order: packages it was asked to
// type-check from source (the analysis roots and fixture siblings), then
// compiler export data located by `go list -deps -export`, then failure.
type loader struct {
	fset    *token.FileSet
	source  map[string]string // import path -> directory (type-check from source)
	exports map[string]string // import path -> export data file
	cache   map[string]*Package
	gc      types.Importer
	stack   []string // cycle detection for source packages
}

func newLoader() *loader {
	l := &loader{
		fset:    token.NewFileSet(),
		source:  make(map[string]string),
		exports: make(map[string]string),
		cache:   make(map[string]*Package),
	}
	l.gc = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})
	return l
}

// Import implements types.Importer over the loader's resolution order.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.source[path]; ok {
		pkg, err := l.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.gc.Import(path)
}

// check parses and type-checks the source package at path (cached).
func (l *loader) check(path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	for _, p := range l.stack {
		if p == path {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
	}
	l.stack = append(l.stack, path)
	defer func() { l.stack = l.stack[:len(l.stack)-1] }()

	dir := l.source[path]
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = pkg
	return pkg, nil
}

// goFilesIn lists the non-test Go files of dir in sorted order, honouring
// build constraints (//go:build lines and GOOS/GOARCH filename suffixes)
// against the default build context — otherwise a tag-gated file pair like
// race_on.go/race_off.go would type-check as a redeclaration.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// goList runs `go list` with the given arguments in dir and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]*listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPkg
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadModule loads and type-checks the packages matched by patterns
// (e.g. "./...") in the module rooted at (or containing) dir. Matched
// packages are checked from source with full type information. In-module
// dependencies that the patterns did not match are also checked from
// source but marked FactsOnly, so the facts engine sees their function
// bodies even when micvet runs on a subset of the module; dependencies
// outside the module are satisfied from compiler export data, so the
// analyzed module must build.
func LoadModule(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, append([]string{"-deps", "-export", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	l := newLoader()
	var roots, factsOnly []string
	for _, p := range listed {
		if !p.DepOnly {
			l.source[p.ImportPath] = p.Dir
			roots = append(roots, p.ImportPath)
			continue
		}
		if !p.Standard && p.Module != nil && p.Module.Main {
			l.source[p.ImportPath] = p.Dir
			factsOnly = append(factsOnly, p.ImportPath)
			continue
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	sort.Strings(roots)
	sort.Strings(factsOnly)
	var pkgs []*Package
	for _, path := range roots {
		pkg, err := l.check(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	for _, path := range factsOnly {
		pkg, err := l.check(path)
		if err != nil {
			return nil, err
		}
		pkg.FactsOnly = true
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDirs loads fixture packages for tests: each of paths names a
// directory under root holding one package whose import path is the
// directory's path relative to root (slash-separated). Fixture packages
// may import each other by those paths and anything from the standard
// library; stdlib imports are satisfied from export data.
func LoadDirs(root string, paths ...string) ([]*Package, error) {
	l := newLoader()
	// Register every package directory under root so fixtures can import
	// siblings that are not themselves analysis roots.
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		names, err := goFilesIn(p)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			rel, err := filepath.Rel(root, p)
			if err != nil {
				return err
			}
			l.source[filepath.ToSlash(rel)] = p
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Collect the stdlib imports reachable from the fixture sources and
	// resolve their export data in one `go list` invocation.
	std := map[string]bool{}
	for _, dir := range l.source {
		names, err := goFilesIn(dir)
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			f, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, name), nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if _, local := l.source[path]; !local && path != "unsafe" {
					std[path] = true
				}
			}
		}
	}
	if len(std) > 0 {
		args := []string{"-deps", "-export", "--"}
		for path := range std {
			args = append(args, path)
		}
		sort.Strings(args[3:])
		listed, err := goList(root, args...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
		}
	}
	var pkgs []*Package
	requested := map[string]bool{}
	for _, path := range paths {
		pkg, err := l.check(filepath.ToSlash(path))
		if err != nil {
			return nil, err
		}
		requested[pkg.Path] = true
		pkgs = append(pkgs, pkg)
	}
	// Sibling fixture packages pulled in as imports come along FactsOnly,
	// mirroring LoadModule: the facts engine summarizes them, analyzers
	// stay silent on them.
	var extra []string
	for path := range l.cache {
		if !requested[path] {
			extra = append(extra, path)
		}
	}
	sort.Strings(extra)
	for _, path := range extra {
		pkg := l.cache[path]
		pkg.FactsOnly = true
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
