package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// inScope reports whether pkgPath contains any of the given path segments.
// Real module paths ("micgraph/internal/bfs") and fixture paths ("bfs")
// both match segment "bfs", so analyzers scope identically under test.
func inScope(pkgPath string, segments []string) bool {
	for _, part := range strings.Split(pkgPath, "/") {
		for _, s := range segments {
			if part == s {
				return true
			}
		}
	}
	return false
}

// calleeFunc resolves the called function or method of call, or nil for
// indirect calls through variables and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name &&
		fn.Type().(*types.Signature).Recv() == nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// usesContext reports whether any expression under n has type
// context.Context — a ctx identifier, a field of that type, a call
// returning one, or the receiver of ctx.Err()/ctx.Done().
func usesContext(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[expr]; ok && tv.Type != nil && isContextType(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}
