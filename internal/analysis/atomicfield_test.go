package analysis_test

import (
	"testing"

	"micgraph/internal/analysis"
	"micgraph/internal/analysis/analysistest"
)

// TestAtomicField checks mixed atomic/plain field detection, including
// the regression fixture reproducing the PR 3 sched.Pool.SetCounters race
// (atomic load on the hot path, plain store in the setter), and the
// typed-atomic and plain-only negative cases.
func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.AtomicField, "atomicfield")
}
