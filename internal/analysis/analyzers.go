package analysis

// All returns the micvet analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicField,
		AtomicMix,
		CtxLoop,
		FaultSite,
		Goroleak,
		Lockhold,
		Resclose,
		SimDeterminism,
		Wallclock,
	}
}

// ByName returns the named analyzers from All, or nil when any name is
// unknown (the caller reports the error with the valid names).
func ByName(names []string) []*Analyzer {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil
		}
		out = append(out, a)
	}
	return out
}
