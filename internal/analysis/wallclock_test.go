package analysis_test

import (
	"testing"

	"micgraph/internal/analysis"
	"micgraph/internal/analysis/analysistest"
)

// TestWallclock checks the positive fixtures (direct clock reads in a
// kernel-scoped package), the suppression comment, and that out-of-scope
// packages are untouched.
func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.Wallclock, "bfs", "outside")
}
