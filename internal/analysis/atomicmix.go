package analysis

import (
	"go/ast"
	"strings"
)

// AtomicMix generalizes atomicfield across package boundaries via the
// facts engine: an exported struct field whose address is passed to a
// sync/atomic function in any analyzed package may never be read or
// written plainly in another, and vice versa. Both sides of a conflict
// are reported (each package sees the other's discipline through facts),
// which is deliberate: either site may be the one to fix. atomicfield
// retains the same-package case, so the two analyzers never double-report
// one access. Limitation shared with go/analysis facts: two packages that
// conflict over a third package's field are each compared against the
// facts computed before them in import order, so a conflict is only
// visible once both packages are in the analysis universe.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "an exported struct field accessed via sync/atomic in one package must never be accessed plainly in " +
		"another (cross-package mixed access is a data race invisible to per-package analysis)",
	Run: runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	atomicUses := collectAtomicSelectors(pass.Info, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := fieldOf(pass.Info, sel)
			if field == nil || !field.Exported() {
				return true
			}
			id := fieldIDFromSelection(pass.Info, sel)
			if id == "" {
				return true
			}
			if atomicUses[sel] {
				if others := otherPackages(pass.Facts.PlainAccessors(id), pass.PkgPath); len(others) > 0 {
					pass.Reportf(sel.Pos(), "atomic access to field %s, which package %s accesses plainly: cross-package mixed access is a data race; use one discipline everywhere",
						shortMutex(id), strings.Join(others, ", "))
				}
			} else {
				if others := otherPackages(pass.Facts.AtomicAccessors(id), pass.PkgPath); len(others) > 0 {
					pass.Reportf(sel.Pos(), "plain access to field %s, which package %s accesses with sync/atomic: cross-package mixed access is a data race; use the same atomic discipline everywhere",
						shortMutex(id), strings.Join(others, ", "))
				}
			}
			return true
		})
	}
	return nil
}

// otherPackages filters self out of a fact accessor list.
func otherPackages(pkgs []string, self string) []string {
	var out []string
	for _, p := range pkgs {
		if p != self {
			out = append(out, p)
		}
	}
	return out
}
