package analysis_test

import (
	"testing"

	"micgraph/internal/analysis"
	"micgraph/internal/analysis/analysistest"
)

// TestFaultSite checks that discarded, blank-assigned, and
// empty-branch-swallowed injection results are flagged, and the
// propagating call shapes pass. The fixture fault package itself is also
// analyzed so in-package use (FireErr calling Fire) stays clean.
func TestFaultSite(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.FaultSite, "fault", "faultuser")
}
