package analysis_test

import (
	"testing"

	"micgraph/internal/analysis"
	"micgraph/internal/analysis/analysistest"
)

// TestCtxLoop checks that unbounded loops in context-taking functions
// must observe their context, while counted loops, range loops, polling
// loops, delegating loops, select-on-Done loops, and context-free
// functions all pass.
func TestCtxLoop(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.CtxLoop, "ctxloop")
}
