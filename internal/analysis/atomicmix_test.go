package analysis_test

import (
	"testing"

	"micgraph/internal/analysis"
	"micgraph/internal/analysis/analysistest"
)

// TestAtomicMix checks cross-package atomic/plain conflicts through the
// facts engine: atomicprov fixes each field's discipline, and atomicmix's
// accesses are judged against those imported facts — a plain read of an
// atomic field and an atomic load of a plain field are both flagged, while
// matching the provider's discipline stays silent.
func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.AtomicMix, "atomicmix")
}
