package analysis

import (
	"go/ast"
	"go/types"
)

// faultMethods are the *fault.Injector methods whose results carry the
// injected failure (or the wrapped, failure-injecting object) and
// therefore must not be discarded.
var faultMethods = map[string]bool{
	"Fire": true, "FireErr": true, "Reader": true, "Writer": true, "SchedHook": true,
}

// FaultSite ensures every fault-injection point propagates what it
// injects: the result of Injector.Fire/FireErr/Reader/Writer must be
// used, never dropped on the floor (an injected fault that is swallowed
// turns the fault-injection test suite into a no-op for that path).
var FaultSite = &Analyzer{
	Name: "faultsite",
	Doc: "results of fault.Injector injection points (Fire, FireErr, Reader, Writer, SchedHook) must be used and " +
		"propagated, never discarded or swallowed by an empty branch",
	Run: runFaultSite,
}

func runFaultSite(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if name, ok := injectorCall(pass.Info, call); ok {
						pass.Reportf(call.Pos(), "result of fault injection point %s discarded: the injected fault must propagate to the caller", name)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name != "_" || i >= len(s.Rhs) {
						continue
					}
					if call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr); ok {
						if name, ok := injectorCall(pass.Info, call); ok {
							pass.Reportf(call.Pos(), "result of fault injection point %s assigned to _: the injected fault must propagate to the caller", name)
						}
					}
				}
			case *ast.IfStmt:
				if len(s.Body.List) != 0 || s.Else != nil {
					return true
				}
				found := false
				name := ""
				ast.Inspect(s.Cond, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok && !found {
						if m, ok := injectorCall(pass.Info, call); ok {
							found, name = true, m
						}
					}
					return true
				})
				if !found && s.Init != nil {
					ast.Inspect(s.Init, func(n ast.Node) bool {
						if call, ok := n.(*ast.CallExpr); ok && !found {
							if m, ok := injectorCall(pass.Info, call); ok {
								found, name = true, m
							}
						}
						return true
					})
				}
				if found {
					pass.Reportf(s.Pos(), "fault injection point %s checked by an empty branch: the injected fault is swallowed instead of propagated", name)
				}
			}
			return true
		})
	}
	return nil
}

// injectorCall reports whether call invokes a fault-propagating method of
// a type named Injector in a package named fault, returning the method
// name. Matching by package name (not path) lets the analyzer work
// against both micgraph/internal/fault and test fixtures.
func injectorCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "fault" || !faultMethods[fn.Name()] {
		return "", false
	}
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return "", false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Injector" {
		return "", false
	}
	return "Injector." + fn.Name(), true
}
