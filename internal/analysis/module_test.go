package analysis_test

import (
	"testing"

	"micgraph/internal/analysis"
)

// TestModuleIsClean is the meta-test behind the CI gate: the full micvet
// suite over the real module must produce zero diagnostics. Any new
// invariant violation fails here (and in the micvet CI job) before the
// -race job could ever catch it dynamically.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := analysis.LoadModule("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}

	// The clean verdict below is only meaningful if the whole suite ran:
	// pin the registered analyzer set so dropping one cannot silently
	// weaken the gate.
	want := []string{"atomicfield", "atomicmix", "ctxloop", "faultsite",
		"goroleak", "lockhold", "resclose", "simdeterminism", "wallclock"}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %s, want %s", i, a.Name, want[i])
		}
	}

	// The facts engine must have real cross-package coverage, not just be
	// wired in: the serving layer's summaries are what lockhold/goroleak
	// consume across package boundaries.
	fs, err := analysis.ComputeFacts(pkgs)
	if err != nil {
		t.Fatalf("computing facts: %v", err)
	}
	if fs.Package("micgraph/internal/serve") == nil {
		t.Errorf("no facts for micgraph/internal/serve (packages: %v)", fs.Packages())
	}
	if f, ok := fs.Func("(*micgraph/internal/serve.Server).Submit"); !ok {
		t.Errorf("no fact for serve.Server.Submit")
	} else if len(f.Acquires) == 0 {
		t.Errorf("serve.Server.Submit fact %+v acquires no mutex; expected Server.mu", f)
	}

	diags, err := analysis.RunAnalyzers(pkgs, all)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
