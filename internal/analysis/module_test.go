package analysis_test

import (
	"testing"

	"micgraph/internal/analysis"
)

// TestModuleIsClean is the meta-test behind the CI gate: the full micvet
// suite over the real module must produce zero diagnostics. Any new
// invariant violation fails here (and in the micvet CI job) before the
// -race job could ever catch it dynamically.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := analysis.LoadModule("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
