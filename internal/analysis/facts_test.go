package analysis_test

import (
	"reflect"
	"testing"

	"micgraph/internal/analysis"
)

// loadFactSet computes facts over the fixture packages that exercise the
// engine (plus their dependencies, which LoadDirs pulls in).
func loadFactSet(t *testing.T) *analysis.FactSet {
	t.Helper()
	pkgs, err := analysis.LoadDirs("testdata/src", "lockhold", "goroleak", "atomicmix")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	fs, err := analysis.ComputeFacts(pkgs)
	if err != nil {
		t.Fatalf("computing facts: %v", err)
	}
	return fs
}

// TestComputeFacts pins the per-function summaries the analyzers depend
// on: direct and transitive blocking, panic containment by recover,
// supervision, context-awareness, and transitive mutex acquisition.
func TestComputeFacts(t *testing.T) {
	fs := loadFactSet(t)

	mustFact := func(name string) analysis.FuncFact {
		t.Helper()
		f, ok := fs.Func(name)
		if !ok {
			t.Fatalf("no fact for %s (packages: %v)", name, fs.Packages())
		}
		return f
	}

	if f := mustFact("lockdep.BlockOnChan"); !f.MayBlock || f.BlockVia != "channel receive" {
		t.Errorf("BlockOnChan: got %+v, want MayBlock via channel receive", f)
	}
	if f := mustFact("lockdep.Indirect"); !f.MayBlock || f.BlockVia != "channel receive" {
		t.Errorf("Indirect: got %+v, want transitive MayBlock via channel receive", f)
	}
	// Zero-fact functions are not stored at all — a lookup miss is the
	// "nothing interesting" answer.
	if f, ok := fs.Func("lockdep.Quick"); ok && (f.MayBlock || f.MayPanic) {
		t.Errorf("Quick: got %+v, want no interesting facts", f)
	}
	if f := mustFact("lockdep.Panics"); !f.MayPanic {
		t.Errorf("Panics: got %+v, want MayPanic", f)
	}
	// Recovers contains its panic, leaving no interesting fact to store.
	if f, ok := fs.Func("lockdep.Recovers"); ok && f.MayPanic {
		t.Errorf("Recovers: got %+v, want panic contained by deferred recover", f)
	}
	if f := mustFact("gorodep.Supervised"); !f.Supervised {
		t.Errorf("Supervised: got %+v, want Supervised", f)
	}
	if f := mustFact("goroleak.worker"); !f.CtxAware {
		t.Errorf("worker: got %+v, want CtxAware", f)
	}
	if f := mustFact("(*goroleak.pool).start"); !f.Spawns {
		t.Errorf("start: got %+v, want Spawns", f)
	}

	size := mustFact("(*lockhold.server).size")
	if !reflect.DeepEqual(size.Acquires, []string{"lockhold.server.mu"}) {
		t.Errorf("size: Acquires = %v, want [lockhold.server.mu]", size.Acquires)
	}

	// Field disciplines feed atomicmix: both atomicprov (the provider) and
	// atomicmix (whose Good matches the discipline) access N atomically,
	// while only atomicprov touches Hits plainly.
	if got := fs.AtomicAccessors("atomicprov.Counter.N"); !contains(got, "atomicprov") || !contains(got, "atomicmix") {
		t.Errorf("AtomicAccessors(Counter.N) = %v, want atomicprov and atomicmix", got)
	}
	if got := fs.PlainAccessors("atomicprov.Counter.Hits"); !contains(got, "atomicprov") {
		t.Errorf("PlainAccessors(Counter.Hits) = %v, want atomicprov", got)
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// TestFactsRoundTrip proves the export/import codec is lossless: every
// package's facts survive ExportPackage -> ImportPackage into a fresh
// FactSet, and cross-package lookups still resolve there — the property
// that makes facts usable across the package boundary at all.
func TestFactsRoundTrip(t *testing.T) {
	fs := loadFactSet(t)

	fresh := analysis.NewFactSet()
	for _, path := range fs.Packages() {
		data, err := fs.ExportPackage(path)
		if err != nil {
			t.Fatalf("exporting %s: %v", path, err)
		}
		if err := fresh.ImportPackage(data); err != nil {
			t.Fatalf("importing %s: %v", path, err)
		}
	}

	if got, want := fresh.Packages(), fs.Packages(); !reflect.DeepEqual(got, want) {
		t.Fatalf("packages after round trip: got %v, want %v", got, want)
	}
	for _, path := range fs.Packages() {
		if !reflect.DeepEqual(fresh.Package(path), fs.Package(path)) {
			t.Errorf("package %s facts changed across round trip:\n got %+v\nwant %+v",
				path, fresh.Package(path), fs.Package(path))
		}
	}

	// Cross-package queries work identically on the re-imported set.
	f, ok := fresh.Func("lockdep.Indirect")
	if !ok || !f.MayBlock || f.BlockVia != "channel receive" {
		t.Errorf("Indirect after round trip: got %+v ok=%v, want MayBlock via channel receive", f, ok)
	}
	if got := fresh.AtomicAccessors("atomicprov.Counter.N"); !contains(got, "atomicprov") {
		t.Errorf("AtomicAccessors after round trip = %v, want atomicprov", got)
	}
}
