package analysis_test

import (
	"strings"
	"testing"

	"micgraph/internal/analysis"
)

// TestBadAllowDirectives checks that malformed //micvet:allow directives
// are diagnostics in their own right (analyzer "micvet"): an unknown
// analyzer name, the removed blanket "all", and a directive with no name
// at all. A typo must not masquerade as a working suppression.
func TestBadAllowDirectives(t *testing.T) {
	pkgs, err := analysis.LoadDirs("testdata/src", "suppress")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	var micvet []analysis.Diagnostic
	for _, d := range diags {
		if d.Analyzer == "micvet" {
			micvet = append(micvet, d)
		} else {
			t.Errorf("unexpected non-directive diagnostic: %s", d)
		}
	}
	if len(micvet) != 3 {
		t.Fatalf("got %d micvet diagnostics, want 3: %v", len(micvet), micvet)
	}
	for _, want := range []string{
		`unknown analyzer "nosuch"`,
		`unknown analyzer "all"`,
		"missing analyzer name",
	} {
		found := false
		for _, d := range micvet {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic mentioning %q in %v", want, micvet)
		}
	}
}
