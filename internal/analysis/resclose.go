package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Resclose enforces resource lifecycle in the serving/cluster/load layer:
// every http.Response, net.Listener, time.Ticker/Timer, and
// telemetry.JSONLFile created in a function must reach its Close/Stop
// somewhere in that function, or visibly escape to an owner (returned,
// passed as an argument, stored in a field/slice/map, or sent on a
// channel). It also flags time.After inside a loop, which allocates a
// timer per iteration that cannot be collected until it fires — the exact
// leak shape of a poll loop under a long PollInterval.
var Resclose = &Analyzer{
	Name: "resclose",
	Doc: "http.Response bodies, net.Listeners, tickers/timers, and telemetry JSONL writers must reach " +
		"Close/Stop or escape to an owner; time.After in a loop leaks a timer per iteration",
	Run: runResclose,
}

var rescloseScope = []string{"serve", "cluster", "load", "telemetry", "e2e", "micserved", "micload", "resclose"}

// rescloseKind describes one tracked resource type.
type rescloseKind struct {
	desc string // for diagnostics
	verb string // what must be called
}

func runResclose(pass *Pass) error {
	if !inScope(pass.PkgPath, rescloseScope) {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkResources(pass, fd.Body)
		}
		checkTimeAfterLoops(pass, f)
	}
	return nil
}

// resKindOf classifies t as a tracked resource. telemetry.JSONLFile is
// matched by package name (like faultsite) so fixtures can model it.
func resKindOf(t types.Type) *rescloseKind {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil
	}
	switch {
	case obj.Pkg().Path() == "net/http" && obj.Name() == "Response":
		return &rescloseKind{desc: "http.Response", verb: "Body.Close"}
	case obj.Pkg().Path() == "time" && obj.Name() == "Ticker":
		return &rescloseKind{desc: "time.Ticker", verb: "Stop"}
	case obj.Pkg().Path() == "time" && obj.Name() == "Timer":
		return &rescloseKind{desc: "time.Timer", verb: "Stop"}
	case obj.Pkg().Path() == "net" && obj.Name() == "Listener":
		return &rescloseKind{desc: "net.Listener", verb: "Close"}
	case obj.Pkg().Name() == "telemetry" && obj.Name() == "JSONLFile":
		return &rescloseKind{desc: "telemetry.JSONLFile", verb: "Close"}
	}
	return nil
}

// resource tracks one function-local variable bound to a fresh resource.
type resource struct {
	kind            *rescloseKind
	pos             token.Pos
	closed, escaped bool
}

// checkResources runs the two-pass scan over one function body (function
// literals included: object identity keeps variables distinct, and a
// resource created in an outer scope may legitimately be closed inside a
// spawned literal).
func checkResources(pass *Pass, body *ast.BlockStmt) {
	tracked := map[*types.Var]*resource{}

	// Pass 1: creations — `v, err := call()` / `v := call()` where a
	// result type is a tracked resource.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		track := func(id *ast.Ident) {
			if id.Name == "_" {
				return
			}
			v, ok := pass.Info.Defs[id].(*types.Var)
			if !ok {
				return
			}
			if kind := resKindOf(v.Type()); kind != nil {
				tracked[v] = &resource{kind: kind, pos: id.Pos()}
			}
		}
		if len(as.Rhs) == 1 {
			if _, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); !isCall {
				return true
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					track(id)
				}
			}
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			if _, isCall := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); !isCall {
				continue
			}
			if id, ok := lhs.(*ast.Ident); ok {
				track(id)
			}
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	lookup := func(e ast.Expr) *resource {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok {
			return nil
		}
		return tracked[v]
	}
	// operand strips one layer of & so `&resp` escapes like `resp`.
	operand := func(e ast.Expr) *resource {
		if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = u.X
		}
		return lookup(e)
	}

	// Pass 2: closes and escapes.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// v.Close() / v.Stop() / v.Body.Close() — walk selector chains
			// down to the base identifier.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Close", "Stop", "Flush":
					base := sel.X
					for {
						if inner, ok := ast.Unparen(base).(*ast.SelectorExpr); ok {
							base = inner.X
							continue
						}
						break
					}
					if r := lookup(base); r != nil {
						r.closed = true
					}
				}
			}
			for _, arg := range n.Args {
				if r := operand(arg); r != nil {
					r.escaped = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if r := operand(res); r != nil {
					r.escaped = true
				}
			}
		case *ast.AssignStmt:
			// A tracked variable on any RHS escapes: assignment to a
			// field/global, or aliasing under a second name.
			for _, rhs := range n.Rhs {
				if r := operand(rhs); r != nil {
					r.escaped = true
				}
			}
		case *ast.SendStmt:
			if r := operand(n.Value); r != nil {
				r.escaped = true
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if r := operand(el); r != nil {
					r.escaped = true
				}
			}
		}
		return true
	})

	for _, r := range tracked {
		if !r.closed && !r.escaped {
			pass.Reportf(r.pos, "%s created here never reaches %s in this function and does not escape to an owner: the resource leaks on at least one path; close it (usually via defer) or hand it off explicitly",
				r.kind.desc, r.kind.verb)
		}
	}
}

// checkTimeAfterLoops flags time.After calls lexically inside a for/range
// loop. Each call allocates a timer that is not collected until it fires,
// so a tight poll loop with a long interval pins memory; NewTicker (or
// NewTimer with Reset) plus Stop is the bounded equivalent.
func checkTimeAfterLoops(pass *Pass, f *ast.File) {
	reported := map[token.Pos]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			body = n.Body
		case *ast.RangeStmt:
			body = n.Body
		default:
			return true
		}
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(pass.Info, call); isPkgFunc(fn, "time", "After") && !reported[call.Pos()] {
				reported[call.Pos()] = true
				pass.Reportf(call.Pos(), "time.After inside a loop allocates a timer every iteration that lives until it fires; hoist a time.NewTicker (or NewTimer with Reset) out of the loop and Stop it")
			}
			return true
		})
		return true
	})
}
