package analysis

import (
	"go/ast"
)

// wallclockScope is the set of packages whose code must take time through
// an injectable telemetry clock: the kernels (telemetry.Now/Since via the
// Recorder, so phase samples are bit-deterministic under a fake clock) and
// the serving/load-generation layers (telemetry.Clock via config, so job
// latency spans and trace timestamps are deterministic in tests).
var wallclockScope = []string{"bfs", "coloring", "components", "irregular", "kerneltest", "serve", "load", "cluster"}

// Wallclock flags direct time.Now and time.Since calls inside the scoped
// packages. Kernels must route timestamps through the Recorder's clock
// hook (telemetry.Now/Since); the serving and load layers through their
// injected telemetry.Clock — which the Nop path skips entirely and a
// test clock can make deterministic.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "clock-disciplined packages (internal/bfs, internal/coloring, internal/components, internal/irregular, internal/kerneltest, internal/serve, internal/load) " +
		"must not read the wall clock directly; take time via telemetry.Now/telemetry.Since or an injected telemetry.Clock " +
		"so instrumented runs can be made deterministic",
	Run: runWallclock,
}

func runWallclock(pass *Pass) error {
	if !inScope(pass.PkgPath, wallclockScope) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			for _, name := range []string{"Now", "Since"} {
				if isPkgFunc(fn, "time", name) {
					pass.Reportf(call.Pos(), "direct time.%s call in clock-disciplined package: use telemetry.%s(rec, ...) or an injected telemetry.Clock so the clock is injectable", name, name)
				}
			}
			return true
		})
	}
	return nil
}
