package analysis

import (
	"go/ast"
)

// wallclockScope is the set of kernel packages whose hot loops must take
// time through the telemetry clock (telemetry.Now / telemetry.Since), so a
// Recorder that carries a fake clock makes kernel phase samples — and with
// them the simulated figures — bit-deterministic end to end.
var wallclockScope = []string{"bfs", "coloring", "irregular"}

// Wallclock flags direct time.Now and time.Since calls inside the kernel
// packages. Kernels must route timestamps through the Recorder's clock
// hook (telemetry.Now/Since), which the Nop path skips entirely and a
// test clock can make deterministic.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "kernel packages (internal/bfs, internal/coloring, internal/irregular) must not read the wall clock directly; " +
		"take time via telemetry.Now/telemetry.Since so instrumented runs can be made deterministic",
	Run: runWallclock,
}

func runWallclock(pass *Pass) error {
	if !inScope(pass.PkgPath, wallclockScope) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			for _, name := range []string{"Now", "Since"} {
				if isPkgFunc(fn, "time", name) {
					pass.Reportf(call.Pos(), "direct time.%s call in kernel package: use telemetry.%s(rec, ...) so the phase clock is injectable", name, name)
				}
			}
			return true
		})
	}
	return nil
}
