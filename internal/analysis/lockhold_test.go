package analysis_test

import (
	"testing"

	"micgraph/internal/analysis"
	"micgraph/internal/analysis/analysistest"
)

// TestLockhold checks the held-mutex abstract interpreter: direct channel
// operations, select without default, blocking stdlib calls, cross-package
// and transitive blocking via facts, and self-deadlock via the Acquires
// fact — against the unlock-first, branch-unlock, Cond.Wait, select-default
// and spawned-literal patterns that must stay silent.
func TestLockhold(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.Lockhold, "lockhold")
}
