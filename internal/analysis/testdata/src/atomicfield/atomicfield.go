// Package atomicfield exercises the mixed atomic/plain field access
// analyzer.
package atomicfield

import "sync/atomic"

type gauge struct {
	hits  int64
	calls int64
}

// inc establishes the atomic discipline for hits.
func (g *gauge) inc() {
	atomic.AddInt64(&g.hits, 1)
}

// read violates it with a plain load.
func (g *gauge) read() int64 {
	return g.hits // want "plain access to field .*hits.*accessed with sync/atomic elsewhere"
}

// sum mixes disciplines across two fields: calls is plain-only (fine),
// hits is loaded atomically (fine).
func (g *gauge) sum() int64 {
	g.calls++
	return atomic.LoadInt64(&g.hits)
}

// typedGauge uses the typed atomics: the type system enforces the
// discipline, so the analyzer has nothing to say.
type typedGauge struct{ n atomic.Int64 }

func (t *typedGauge) bump() int64 {
	t.n.Add(1)
	return t.n.Load()
}
