// This file reproduces the PR 3 sched.Pool.SetCounters race as a
// regression fixture: the hot path loaded the counters pointer atomically
// while SetCounters stored it plainly. The fix made the field an
// atomic.Pointer; this is the pre-fix shape the analyzer must catch.
package atomicfield

import (
	"sync/atomic"
	"unsafe"
)

type counters struct{ n [8]int64 }

type pool struct {
	counters unsafe.Pointer // *counters, swapped at run time
}

// hotPath reads the attachment point atomically on every scheduler event.
func (p *pool) hotPath() *counters {
	return (*counters)(atomic.LoadPointer(&p.counters))
}

// SetCounters is the textbook mixed access: a plain store racing the hot
// path's atomic load.
func (p *pool) SetCounters(c *counters) {
	p.counters = unsafe.Pointer(c) // want "plain access to field .*counters.*accessed with sync/atomic elsewhere"
}
