// Package suppress carries malformed //micvet:allow directives. The
// framework (analyzer name "micvet") must reject each of them instead of
// silently suppressing nothing — a typo in a directive would otherwise
// read as a working suppression.
package suppress

func directives() {
	//micvet:allow nosuch this analyzer does not exist
	_ = 1
	//micvet:allow all blanket suppression was removed; name one analyzer
	_ = 2
	//micvet:allow
	_ = 3
}
