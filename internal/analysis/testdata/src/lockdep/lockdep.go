// Package lockdep is a fixture dependency: lockhold resolves calls into
// it purely through exported facts, proving blocking summaries survive
// the package boundary.
package lockdep

var ch = make(chan struct{})

// BlockOnChan parks until something closes ch.
func BlockOnChan() {
	<-ch
}

// Indirect blocks only transitively, through BlockOnChan.
func Indirect() {
	BlockOnChan()
}

// Quick does nothing blocking.
func Quick() int {
	return 1
}

// Panics always panics (a MayPanic fact).
func Panics() {
	panic("boom")
}

// Recovers contains the panic it triggers, so it must not carry MayPanic.
func Recovers() {
	defer func() {
		_ = recover()
	}()
	Panics()
}
