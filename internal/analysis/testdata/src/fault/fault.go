// Package fault is a stand-in for micgraph/internal/fault: the faultsite
// analyzer matches injection points by package name, receiver type name,
// and method name, so fixtures exercise it without importing the module.
package fault

import (
	"errors"
	"io"
)

type Injector struct{ armed bool }

func (in *Injector) Fire(site string) bool { return in != nil && in.armed }

func (in *Injector) FireErr(site string) error {
	if in.Fire(site) {
		return errors.New(site)
	}
	return nil
}

func (in *Injector) Reader(site string, r io.Reader) io.Reader { return r }

func (in *Injector) Writer(site string, w io.Writer) io.Writer { return w }

func (in *Injector) SchedHook() func(site string, worker int) {
	return func(string, int) {}
}
