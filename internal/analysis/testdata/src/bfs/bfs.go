// Package bfs is a wallclock fixture: it stands in for the real kernel
// package internal/bfs (analyzer scoping matches the "bfs" path segment).
package bfs

import "time"

// levelLoop reads the wall clock directly — both forms must be flagged.
func levelLoop() time.Duration {
	start := time.Now() // want "direct time.Now call in clock-disciplined package"
	var total time.Duration
	total += time.Since(start) // want "direct time.Since call in clock-disciplined package"
	return total
}

// okUses shows the negative space: time types, constructors, and
// arithmetic are fine — only the clock reads are forbidden.
func okUses() time.Duration {
	d := 5 * time.Millisecond
	epoch := time.Unix(0, 0)
	return d + epoch.Sub(time.Time{})
}

// suppressed demonstrates the escape hatch for a reviewed exception.
func suppressed() time.Time {
	return time.Now() //micvet:allow wallclock fixture exercising the suppression comment
}
