// Package faultuser exercises the faultsite analyzer against the fake
// fault package: every injection point's result must be used.
package faultuser

import (
	"bytes"
	"io"

	"fault"
)

// drop discards injection results outright.
func drop(in *fault.Injector) {
	in.FireErr("serve/job") // want "result of fault injection point Injector.FireErr discarded"
	_ = in.FireErr("serve/job") // want "result of fault injection point Injector.FireErr assigned to _"
	in.Reader("graphio/read", bytes.NewReader(nil)) // want "result of fault injection point Injector.Reader discarded"
}

// swallow consults the injector but lets the fault die in an empty branch.
func swallow(in *fault.Injector) {
	if in.Fire("team/chunk/stall") { // want "fault injection point Injector.Fire checked by an empty branch"
	}
	if err := in.FireErr("pool/task"); err != nil { // want "fault injection point Injector.FireErr checked by an empty branch"
	}
}

// propagate is the required shape: errors return, wrapped streams are
// actually read, booleans drive real behavior.
func propagate(in *fault.Injector) error {
	if err := in.FireErr("graphio/read/err"); err != nil {
		return err
	}
	if in.Fire("mic/straggler") {
		return io.ErrUnexpectedEOF
	}
	r := in.Reader("graphio/read", bytes.NewReader(nil))
	_, err := io.ReadAll(r)
	return err
}
