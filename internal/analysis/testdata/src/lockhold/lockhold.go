// Package lockhold exercises the lockhold analyzer: blocking operations
// under a held mutex, cross-package blocking facts, self-deadlock via the
// Acquires fact, and the idiomatic patterns that must stay silent.
package lockhold

import (
	"net/http"
	"sync"

	"lockdep"
)

type server struct {
	mu   sync.Mutex
	cond *sync.Cond
	jobs map[string]int
	ch   chan int
}

func (s *server) badNetwork() {
	s.mu.Lock()
	http.Get("http://example.com") // want `blocking operation .*net/http\.Get.* while holding lockhold\.server\.mu`
	s.mu.Unlock()
}

func (s *server) badDeferredUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.ch // want `blocking operation \(channel receive\) while holding lockhold\.server\.mu`
}

func (s *server) badSend() {
	s.mu.Lock()
	s.ch <- 1 // want `blocking operation \(channel send\) while holding`
	s.mu.Unlock()
}

func (s *server) badSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking operation \(select with no default case\) while holding`
	case v := <-s.ch:
		_ = v
	}
}

func (s *server) badCrossPackage() {
	s.mu.Lock()
	defer s.mu.Unlock()
	lockdep.BlockOnChan() // want `call to BlockOnChan may block: channel receive`
}

func (s *server) badTransitive() {
	s.mu.Lock()
	defer s.mu.Unlock()
	lockdep.Indirect() // want `call to Indirect may block: channel receive`
}

func (s *server) badSelfDeadlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.size() // want `call to size acquires lockhold\.server\.mu, which is already held`
}

func (s *server) badInlineLiteral() {
	s.mu.Lock()
	defer s.mu.Unlock()
	func() {
		<-s.ch // want `blocking operation \(channel receive\) while holding`
	}()
}

func (s *server) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// goodUnlockFirst releases before blocking.
func (s *server) goodUnlockFirst() {
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n == 0 {
		<-s.ch
	}
}

// goodBranchUnlock releases on the early-return path before blocking.
func (s *server) goodBranchUnlock(fail bool) {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		<-s.ch
		return
	}
	s.mu.Unlock()
}

// goodCondWait: waiting with the Cond's mutex held is the API contract.
func (s *server) goodCondWait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.jobs) == 0 {
		s.cond.Wait()
	}
}

// goodSelectDefault never parks: select with default is a poll.
func (s *server) goodSelectDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

// goodQuickCall: non-blocking cross-package calls are fine under a lock.
func (s *server) goodQuickCall() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return lockdep.Quick()
}

// goodSpawned: the literal runs on its own goroutine, which does not hold
// this function's mutex.
func (s *server) goodSpawned() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		<-s.ch
	}()
}

type other struct {
	mu sync.Mutex
	n  int
}

// goodNestedOther: briefly acquiring a different mutex while holding one
// is the established Server.mu-around-Job.View pattern.
func (s *server) goodNestedOther(o *other) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	o.mu.Lock()
	n := o.n
	o.mu.Unlock()
	return n
}
