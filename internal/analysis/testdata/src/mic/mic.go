// Package mic is a simdeterminism fixture standing in for the machine
// simulator (scoping matches the "mic" path segment): no wall clock, no
// math/rand, no map-ordered output.
package mic

import (
	"fmt"
	"io"
	"math/rand" // want "import of math/rand in simulator package"
	"sort"
	"time"
)

// stamp depends on the wall clock — the simulator never may.
func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now call in simulator package"
}

// jitter uses unseeded process-global randomness.
func jitter() float64 { return rand.Float64() }

// dumpBad emits while ranging over a map: byte order varies run to run.
func dumpBad(w io.Writer, stats map[string]int64) {
	for k, v := range stats {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "output emitted while iterating over a map"
	}
}

// dumpGood is the required shape: collect keys, sort, then emit.
func dumpGood(w io.Writer, stats map[string]int64) {
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, stats[k])
	}
}

// tally only fills another map during iteration — no emission, no
// diagnostic.
func tally(stats map[string]int64) map[string]bool {
	seen := map[string]bool{}
	for k := range stats {
		seen[k] = true
	}
	return seen
}
