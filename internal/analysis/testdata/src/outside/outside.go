// Package outside is out of every scoped analyzer's reach: clock reads
// and map-order emission here must produce no diagnostics.
package outside

import (
	"fmt"
	"io"
	"time"
)

func stamp() time.Time { return time.Now() }

func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
