// Package goroleak exercises the goroleak analyzer: fire-and-forget
// goroutines are flagged; context-, WaitGroup- and channel-supervised
// ones (including via cross-package facts) are not. It also pins the
// analyzer-scoped //micvet:allow semantics.
package goroleak

import (
	"context"
	"sync"

	"gorodep"
)

func bad() {
	go leak() // want `goroutine is not tied to a context, WaitGroup, or supervising channel`
}

func badLiteral() {
	go func() { // want `goroutine is not tied to a context, WaitGroup, or supervising channel`
		println("orphan")
	}()
}

func badCrossPackage() {
	go gorodep.Orphan() // want `goroutine is not tied to a context, WaitGroup, or supervising channel`
}

func leak() {}

func goodCtxArg(ctx context.Context) {
	go worker(ctx)
}

func worker(ctx context.Context) {
	<-ctx.Done()
}

func goodCtxCapture(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func goodWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

func goodDoneChannel() {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	<-done
}

func goodResultChannel() {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	<-errc
}

// goodCrossPackage is owned through gorodep.Supervised's exported fact.
func goodCrossPackage() {
	go gorodep.Supervised()
}

type pool struct {
	wg sync.WaitGroup
}

func (p *pool) run() {
	defer p.wg.Done()
}

// goodMethodFact: p.run's own fact (references the pool WaitGroup) makes
// the spawn owned even though the go statement shows none of it.
func (p *pool) start() {
	p.wg.Add(1)
	go p.run()
}

// allowed pins the suppression path for the new analyzer.
func allowed() {
	//micvet:allow goroleak fixture: suppression comment is honoured
	go leak()
}

// wrongScope pins that a directive for a different analyzer does NOT
// suppress goroleak — suppressions are analyzer-scoped.
func wrongScope() {
	//micvet:allow lockhold fixture: wrong analyzer name must not suppress goroleak
	go leak() // want `goroutine is not tied to a context, WaitGroup, or supervising channel`
}
