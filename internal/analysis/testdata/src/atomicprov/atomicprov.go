// Package atomicprov is a fixture dependency for atomicmix: it fixes the
// access discipline of two exported fields — N is atomic, Hits is plain —
// and exports those disciplines as package facts.
package atomicprov

import "sync/atomic"

// Counter carries one field under each discipline.
type Counter struct {
	N    int64
	Hits int64
}

// Inc establishes N as atomically accessed.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.N, 1)
}

// Touch establishes Hits as plainly accessed.
func (c *Counter) Touch() {
	c.Hits++
}
