// Package gorodep is a fixture dependency: goroleak learns that spawning
// its functions is supervised purely from exported facts.
package gorodep

var done = make(chan struct{})

// Supervised signals completion on a package channel its owner waits on.
func Supervised() {
	close(done)
}

// Orphan neither signals nor watches anything.
func Orphan() {
	_ = 1
}
