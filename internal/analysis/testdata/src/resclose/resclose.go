// Package resclose exercises the resclose analyzer: resources that never
// reach Close/Stop in their function and do not escape to an owner are
// flagged, as is time.After inside a loop; deferred closes, escapes, and
// one-shot time.After stay silent.
package resclose

import (
	"net"
	"net/http"
	"time"

	"telemetry"
)

func badResp() {
	resp, err := http.Get("http://example.com") // want `http\.Response created here never reaches Body\.Close`
	if err != nil {
		return
	}
	_ = resp.Status
}

func goodResp() error {
	resp, err := http.Get("http://example.com")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return nil
}

func badTicker(d time.Duration) {
	t := time.NewTicker(d) // want `time\.Ticker created here never reaches Stop`
	<-t.C
}

func goodTicker(d time.Duration) {
	t := time.NewTicker(d)
	defer t.Stop()
	<-t.C
}

func badListener() {
	ln, err := net.Listen("tcp", "127.0.0.1:0") // want `net\.Listener created here never reaches Close`
	if err != nil {
		return
	}
	_ = ln.Addr()
}

// goodListenerEscape hands the listener to the caller, who owns it now.
func goodListenerEscape() net.Listener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil
	}
	return ln
}

// goodListenerHandoff passes the listener to Serve, which closes it.
func goodListenerHandoff(srv *http.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	return srv.Serve(ln)
}

type holder struct {
	t *time.Ticker
}

// goodStoreField: stored in a field, the struct owns the ticker.
func (h *holder) goodStoreField(d time.Duration) {
	t := time.NewTicker(d)
	h.t = t
}

func badAfterLoop(stop chan struct{}, d time.Duration) {
	for {
		select {
		case <-stop:
			return
		case <-time.After(d): // want `time\.After inside a loop allocates a timer every iteration`
		}
	}
}

func goodAfterOnce(d time.Duration) {
	<-time.After(d)
}

func badJSONL(path string) {
	w, err := telemetry.CreateJSONL(path) // want `telemetry\.JSONLFile created here never reaches Close`
	if err != nil {
		return
	}
	w.Encode(1)
}

func goodJSONL(path string) error {
	w, err := telemetry.CreateJSONL(path)
	if err != nil {
		return err
	}
	defer w.Close()
	return w.Encode(1)
}
