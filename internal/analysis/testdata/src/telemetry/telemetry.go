// Package telemetry is a fixture stub modelling the real
// internal/telemetry JSONL stream writer: resclose matches the type by
// package name (like faultsite), so fixtures can exercise the lifecycle
// rule without importing the module itself.
package telemetry

// JSONLFile stands in for the buffered JSONL stream writer.
type JSONLFile struct{}

// CreateJSONL opens a JSONL stream at path.
func CreateJSONL(path string) (*JSONLFile, error) {
	_ = path
	return &JSONLFile{}, nil
}

// Encode appends one record.
func (w *JSONLFile) Encode(v interface{}) error {
	_ = v
	return nil
}

// Close flushes and closes the stream.
func (w *JSONLFile) Close() error { return nil }
