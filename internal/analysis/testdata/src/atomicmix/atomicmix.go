// Package atomicmix exercises the cross-package atomicmix analyzer: it
// accesses atomicprov.Counter fields against the disciplines atomicprov's
// own facts establish.
package atomicmix

import (
	"sync/atomic"

	"atomicprov"
)

// ReadPlain reads N plainly, but atomicprov increments it atomically.
func ReadPlain(c *atomicprov.Counter) int64 {
	return c.N // want `plain access to field atomicprov\.Counter\.N, which package atomicprov accesses with sync/atomic`
}

// ReadAtomic loads Hits atomically, but atomicprov writes it plainly.
func ReadAtomic(c *atomicprov.Counter) int64 {
	return atomic.LoadInt64(&c.Hits) // want `atomic access to field atomicprov\.Counter\.Hits, which package atomicprov accesses plainly`
}

// Good matches atomicprov's atomic discipline for N: no conflict.
func Good(c *atomicprov.Counter) {
	atomic.AddInt64(&c.N, 1)
}
