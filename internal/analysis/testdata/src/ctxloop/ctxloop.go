// Package ctxloop exercises the cancellation-backedge analyzer.
package ctxloop

import "context"

// drainCtx iterates to a fixpoint without ever consulting its context.
func drainCtx(ctx context.Context, q []int) {
	for len(q) > 0 { // want "unbounded loop in drainCtx does not observe its context"
		q = q[1:]
	}
}

// spinCtx has a bare for: the classic uncancellable spin.
func spinCtx(ctx context.Context) int {
	n := 0
	for { // want "unbounded loop in spinCtx does not observe its context"
		n++
		if n > 1000 {
			return n
		}
	}
}

// okPoll observes the context on the backedge.
func okPoll(ctx context.Context, q []int) error {
	for len(q) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		q = q[1:]
	}
	return nil
}

// okDelegate hands the context to a callee each iteration (the ...Ctx
// runtime drivers poll at chunk-claim boundaries, so this suffices).
func okDelegate(ctx context.Context, n int) {
	for n > 0 {
		stepCtx(ctx)
		n--
	}
}

func stepCtx(ctx context.Context) { _ = ctx }

// okSelect blocks on Done like a channel-driven worker loop.
func okSelect(ctx context.Context, ch chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v := <-ch:
			total += v
		}
	}
}

// okBounded: counted and range loops terminate on their own and are
// exempt.
func okBounded(ctx context.Context, xs []int) int {
	s := 0
	for i := 0; i < len(xs); i++ {
		s += xs[i]
	}
	for _, x := range xs {
		s += x
	}
	for r := 3; r >= 0; r-- {
		s++
	}
	return s
}

// plain has no context parameter, so it makes no cancellation promise.
func plain(q []int) int {
	n := 0
	for len(q) > 0 {
		q = q[1:]
		n++
	}
	return n
}
