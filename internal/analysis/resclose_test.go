package analysis_test

import (
	"testing"

	"micgraph/internal/analysis"
	"micgraph/internal/analysis/analysistest"
)

// TestResclose checks resource-lifecycle tracking for http.Response,
// time.Ticker, net.Listener, and the telemetry JSONL writer: unclosed
// resources are flagged, deferred closes and escapes (returned, passed as
// an argument, stored in a field) are owned, and time.After is flagged
// inside loops but not one-shot waits.
func TestResclose(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.Resclose, "resclose")
}
