package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// simScope holds the packages that must be clock- and randomness-free:
// the machine simulator and the analytic performance model. Their outputs
// ARE the paper's figures; any wall-clock or unseeded-randomness
// dependence makes the figures unreproducible.
var simScope = []string{"mic", "perfmodel"}

// emitScope holds the packages whose output paths (JSONL, SVG, trace
// JSON, HTTP result streams) must be byte-deterministic: a map iteration
// feeding an emitter directly is order-nondeterministic by language spec.
var emitScope = []string{"mic", "perfmodel", "core", "serve", "telemetry", "cluster"}

// emitMethods are method names treated as "emits output" when called
// inside a range-over-map body.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "WriteLine": true, "Encode": true, "Record": true, "Emit": true,
}

// SimDeterminism enforces the simulator's reproducibility contract:
// no wall-clock reads or math/rand use inside the simulator and
// performance-model packages (seeded randomness must come from
// internal/xrand), and no map-iteration-ordered writes into any output
// path (collect keys, sort, then emit).
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc: "simulator packages (internal/mic, internal/perfmodel) must be clock-free and use only seeded internal/xrand " +
		"randomness; output paths (also internal/core, internal/serve, internal/telemetry) must not emit during map iteration",
	Run: runSimDeterminism,
}

func runSimDeterminism(pass *Pass) error {
	if inScope(pass.PkgPath, simScope) {
		checkClockAndRand(pass)
	}
	if inScope(pass.PkgPath, emitScope) {
		checkMapEmission(pass)
	}
	return nil
}

func checkClockAndRand(pass *Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in simulator package: use seeded generators from internal/xrand", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			for _, name := range []string{"Now", "Since"} {
				if isPkgFunc(fn, "time", name) {
					pass.Reportf(call.Pos(), "time.%s call in simulator package: simulated results must not depend on the wall clock", name)
				}
			}
			return true
		})
	}
}

func checkMapEmission(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rng.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if emitsOutput(pass.Info, call) {
					pass.Reportf(call.Pos(), "output emitted while iterating over a map: iteration order is nondeterministic; collect keys, sort, then emit")
				}
				return true
			})
			return true
		})
	}
}

// emitsOutput reports whether call writes to an output sink: an fmt
// Fprint* call or a method whose name marks an emitter (Write, Encode,
// Record, ...). Method calls on map-typed receivers (e.g. populating a
// counter map) do not count.
func emitsOutput(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	for _, name := range []string{"Fprint", "Fprintf", "Fprintln"} {
		if isPkgFunc(fn, "fmt", name) {
			return true
		}
	}
	sig := fn.Type().(*types.Signature)
	return sig.Recv() != nil && emitMethods[fn.Name()]
}
