package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Lockhold flags blocking operations performed while a serve/cluster/
// telemetry mutex is held: channel sends and receives, selects with no
// default, network and process I/O, WaitGroup waits, and calls to any
// function whose cross-package fact says it may block. A worker parked
// under the server or queue mutex stalls every other request, which is
// exactly the failure mode the paper's scaling story cannot afford.
// sync.Cond.Wait is exempt at its direct call site (waiting with the
// Cond's mutex held is the API contract), and acquiring a *different*
// mutex while holding one is allowed (Server.mu around Job.View is an
// established pattern) — but calling a function whose Acquires fact
// includes a mutex already held is reported as a self-deadlock.
var Lockhold = &Analyzer{
	Name: "lockhold",
	Doc: "no blocking operation (channel op, select without default, network/process I/O, Wait) while holding a " +
		"serve/cluster/load/telemetry mutex; calling a function that re-acquires a held mutex is a self-deadlock",
	Run: runLockhold,
}

var lockholdScope = []string{"serve", "cluster", "load", "telemetry", "e2e", "lockhold"}

func runLockhold(pass *Pass) error {
	if !inScope(pass.PkgPath, lockholdScope) {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s := &lockholdScan{pass: pass}
			s.inline, s.skip = classifyFuncLits(fd.Body)
			s.stmts(fd.Body.List, heldSet{})
		}
	}
	return nil
}

// heldSet is the set of mutex IDs (see mutexIDForCall) held on a path.
type heldSet map[string]bool

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k := range h {
		out[k] = true
	}
	return out
}

func unionHeld(sets ...heldSet) heldSet {
	out := heldSet{}
	for _, s := range sets {
		for k := range s {
			out[k] = true
		}
	}
	return out
}

func (h heldSet) list() string {
	ids := make([]string, 0, len(h))
	for id := range h {
		ids = append(ids, shortMutex(id))
	}
	sort.Strings(ids)
	return strings.Join(ids, ", ")
}

// lockholdScan is a branch-aware scan of one function body. It tracks the
// held set linearly through statements, forks it at branches and merges
// with a conservative union (terminating branches drop out), so the
// idiomatic "unlock on the early-return path, then block" stays silent
// while "defer Unlock, then block" is caught.
type lockholdScan struct {
	pass   *Pass
	inline map[*ast.FuncLit]bool
	skip   map[*ast.FuncLit]bool
}

// stmts scans a statement list with the entry held set and returns the
// exit set plus whether every path through the list terminates.
func (s *lockholdScan) stmts(list []ast.Stmt, held heldSet) (heldSet, bool) {
	held = held.clone()
	for _, st := range list {
		var term bool
		held, term = s.stmt(st, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (s *lockholdScan) stmt(st ast.Stmt, held heldSet) (heldSet, bool) {
	switch st := st.(type) {
	case *ast.BlockStmt:
		return s.stmts(st.List, held)
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt, held)
	case *ast.ExprStmt:
		s.expr(st.X, held)
		return held, false
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			s.expr(r, held)
		}
		for _, l := range st.Lhs {
			s.expr(l, held)
		}
		return held, false
	case *ast.IncDecStmt:
		s.expr(st.X, held)
		return held, false
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v, held)
					}
				}
			}
		}
		return held, false
	case *ast.SendStmt:
		s.expr(st.Chan, held)
		s.expr(st.Value, held)
		s.blockAt(st.Pos(), "channel send", held)
		return held, false
	case *ast.DeferStmt:
		// Deferred work runs at return; only the arguments are evaluated
		// now. Deliberately no held-set effect: `defer mu.Unlock()` keeps
		// the mutex held for the rest of the function.
		for _, a := range st.Call.Args {
			s.expr(a, held)
		}
		return held, false
	case *ast.GoStmt:
		for _, a := range st.Call.Args {
			s.expr(a, held)
		}
		return held, false
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.expr(r, held)
		}
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto leave the current path.
		return held, true
	case *ast.IfStmt:
		if st.Init != nil {
			held, _ = s.stmt(st.Init, held)
		}
		s.expr(st.Cond, held)
		thenHeld, thenTerm := s.stmts(st.Body.List, held)
		elseHeld, elseTerm := held, false
		if st.Else != nil {
			elseHeld, elseTerm = s.stmt(st.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return unionHeld(thenHeld, elseHeld), false
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held, _ = s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.expr(st.Cond, held)
		}
		body, _ := s.stmts(st.Body.List, held)
		if st.Post != nil {
			s.stmt(st.Post, body)
		}
		return unionHeld(held, body), false
	case *ast.RangeStmt:
		s.expr(st.X, held)
		if tv, ok := s.pass.Info.Types[st.X]; ok && isChanType(tv.Type) {
			s.blockAt(st.Pos(), "range over channel", held)
		}
		body, _ := s.stmts(st.Body.List, held)
		return unionHeld(held, body), false
	case *ast.SwitchStmt:
		if st.Init != nil {
			held, _ = s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.expr(st.Tag, held)
		}
		return s.caseBodies(st.Body.List, held)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held, _ = s.stmt(st.Init, held)
		}
		s.stmt(st.Assign, held.clone())
		return s.caseBodies(st.Body.List, held)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			s.blockAt(st.Pos(), "select with no default case", held)
		}
		var outs []heldSet
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			h := held.clone()
			if cc.Comm != nil {
				s.commOperands(cc.Comm, h)
			}
			out, term := s.stmts(cc.Body, h)
			if !term {
				outs = append(outs, out)
			}
		}
		if len(outs) == 0 {
			return held, true
		}
		return unionHeld(outs...), false
	default:
		return held, false
	}
}

// caseBodies merges the clause bodies of a switch. With no default clause
// there is always a fall-past path that leaves the held set unchanged.
func (s *lockholdScan) caseBodies(clauses []ast.Stmt, held heldSet) (heldSet, bool) {
	hasDefault := false
	var outs []heldSet
	for _, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			s.expr(e, held.clone())
		}
		out, term := s.stmts(cc.Body, held)
		if !term {
			outs = append(outs, out)
		}
	}
	if !hasDefault {
		outs = append(outs, held)
	}
	if len(outs) == 0 {
		return held, true
	}
	return unionHeld(outs...), false
}

// commOperands walks the sub-expressions of a select comm clause without
// flagging the comm operation itself (the enclosing select owns it).
func (s *lockholdScan) commOperands(st ast.Stmt, held heldSet) {
	switch st := st.(type) {
	case *ast.SendStmt:
		s.expr(st.Chan, held)
		s.expr(st.Value, held)
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(st.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			s.expr(u.X, held)
			return
		}
		s.expr(st.X, held)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			if u, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				s.expr(u.X, held)
				continue
			}
			s.expr(r, held)
		}
	}
}

// expr walks an expression, applying Lock/Unlock effects to held and
// reporting blocking operations. Immediately-invoked and deferred function
// literals are scanned inline with the current held set; literals spawned
// or stored are skipped.
func (s *lockholdScan) expr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if s.inline[n] && !s.skip[n] {
				s.stmts(n.Body.List, held)
			}
			return false
		case *ast.CallExpr:
			s.call(n, held)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.blockAt(n.Pos(), "channel receive", held)
			}
		}
		return true
	})
}

func (s *lockholdScan) call(call *ast.CallExpr, held heldSet) {
	fn := calleeFunc(s.pass.Info, call)
	if fn == nil {
		return // builtins and indirect calls: assumed non-blocking
	}
	full := fn.FullName()
	switch {
	case mutexLockFuncs[full]:
		if id := mutexIDForCall(s.pass.Info, call); id != "" {
			held[id] = true
		}
		return
	case mutexUnlockFuncs[full]:
		if id := mutexIDForCall(s.pass.Info, call); id != "" {
			delete(held, id)
		}
		return
	case full == "(*sync.Cond).Wait":
		return // waiting with the Cond's mutex held is the API contract
	}
	if via, ok := blockingStdlib[full]; ok {
		s.blockAt(call.Pos(), via, held)
		return
	}
	if fact, ok := s.pass.Facts.Func(full); ok {
		if fact.MayBlock {
			via := fact.BlockVia
			if via == "" {
				via = "callee may block"
			}
			s.blockAt(call.Pos(), "call to "+fn.Name()+" may block: "+via, held)
		}
		for _, id := range fact.Acquires {
			if held[id] {
				s.pass.Reportf(call.Pos(), "call to %s acquires %s, which is already held (possible self-deadlock: Go mutexes are not reentrant)",
					fn.Name(), shortMutex(id))
			}
		}
	}
}

func (s *lockholdScan) blockAt(pos token.Pos, via string, held heldSet) {
	if len(held) == 0 {
		return
	}
	s.pass.Reportf(pos, "blocking operation (%s) while holding %s: a parked goroutine under a serving mutex stalls every other request; release the mutex first",
		via, held.list())
}
