// Package analysis is a self-contained static-analysis framework plus the
// micvet analyzer suite that enforces this repository's simulator and
// serving invariants: determinism of the mic machine model, wall-clock
// hygiene in the kernels, single-discipline atomic field access (within a
// package and, via facts, across packages), cancellation on runtime loop
// backedges, fault-injection propagation, no blocking calls under
// serve/cluster mutexes, goroutine ownership, and resource lifecycle.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic) so analyzers read idiomatically
// and could be ported to the real driver wholesale — but it is built only
// on the standard library (go/ast, go/types, go/importer) because this
// module vendors no dependencies. Packages are loaded by package load:
// module packages are parsed and type-checked from source with full
// types.Info, while imports outside the module are satisfied from the
// compiler's export data located via `go list -deps -export`.
//
// Before any analyzer runs, the facts engine (see facts.go) computes
// per-function summaries bottom-up over the import order and exposes them
// on Pass.Facts, so analyzers reason across package boundaries the way
// go/analysis Facts allow.
//
// Diagnostics may be suppressed per line with a trailing or preceding
// comment of the form:
//
//	//micvet:allow <analyzer> <reason>
//
// The analyzer name is machine-checked: a directive naming an unknown
// analyzer (or naming none) is itself a diagnostic, so stale or blanket
// suppressions cannot rot silently. The reason is mandatory by convention
// (reviewers look for it).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker. Name appears in diagnostics
// and in //micvet:allow suppressions; Doc is the one-paragraph invariant
// statement shown by `micvet -list`.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass holds one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// PkgPath is the package's import path as the loader resolved it. For
	// fixture packages loaded from a testdata root this is the directory
	// name, which lets scope matching work identically in tests.
	PkgPath string
	Info    *types.Info
	// Facts holds the cross-package function summaries and field
	// disciplines computed before the analyzers ran (nil-safe to query).
	Facts *FactSet

	diagnostics []Diagnostic
	suppressed  suppressionIndex
}

// Diagnostic is one finding, anchored to a position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos unless a //micvet:allow comment for
// this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed.covers(p.Analyzer.Name, position) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressionIndex maps file -> line -> set of analyzer names allowed
// there. A //micvet:allow comment covers its own line (trailing-comment
// style) and the following line (annotation-above-the-statement style).
type suppressionIndex map[string]map[int][]string

func (s suppressionIndex) covers(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, name := range lines[pos.Line] {
		if name == analyzer {
			return true
		}
	}
	return false
}

// buildSuppressions scans file comments for //micvet:allow annotations.
// Suppressions are analyzer-scoped: the first field must name a known
// analyzer (there is deliberately no blanket "all"), and a directive that
// names none or an unknown one is reported as a diagnostic of its own so
// it cannot silently suppress nothing — or everything.
func buildSuppressions(fset *token.FileSet, files []*ast.File) (suppressionIndex, []Diagnostic) {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	idx := make(suppressionIndex)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "micvet:allow") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "micvet:allow"))
				pos := fset.Position(c.Pos())
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{
						Analyzer: "micvet",
						Pos:      pos,
						Message:  "micvet:allow directive missing analyzer name (use //micvet:allow <analyzer> <reason>)",
					})
					continue
				}
				name := fields[0]
				if !known[name] {
					bad = append(bad, Diagnostic{
						Analyzer: "micvet",
						Pos:      pos,
						Message:  fmt.Sprintf("micvet:allow names unknown analyzer %q (valid: %s)", name, strings.Join(analyzerNames(), ", ")),
					})
					continue
				}
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					idx[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], name)
				lines[pos.Line+1] = append(lines[pos.Line+1], name)
			}
		}
	}
	return idx, bad
}

func analyzerNames() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// RunAnalyzers computes cross-package facts for every loaded package,
// then applies each analyzer to each non-FactsOnly package and returns
// all diagnostics sorted by position then analyzer name.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts, err := ComputeFacts(pkgs)
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		if pkg.FactsOnly {
			continue
		}
		supp, badDirectives := buildSuppressions(pkg.Fset, pkg.Files)
		out = append(out, badDirectives...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				PkgPath:    pkg.Path,
				Info:       pkg.Info,
				Facts:      facts,
				suppressed: supp,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			out = append(out, pass.diagnostics...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		if out[i].Pos.Column != out[j].Pos.Column {
			return out[i].Pos.Column < out[j].Pos.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
