package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// This file is the fact-propagation engine: per-function concurrency
// summaries (FuncFact) and per-package field-access disciplines computed
// bottom-up over the import order and carried across package boundaries,
// analogous to golang.org/x/tools go/analysis Facts but stdlib-only like
// the rest of the framework. ComputeFacts runs before the analyzers;
// every package's facts are serialized and re-imported through the JSON
// codec on every run, so the export/import cycle is exercised constantly
// rather than only in tests.

// FuncFact summarizes one function or method for cross-package analysis.
// Facts are monotone (bools only flip to true, sets only grow), which is
// what lets ComputeFacts reach a fixpoint over intra-package recursion.
type FuncFact struct {
	// MayBlock: the function can park its goroutine — a channel operation,
	// a select with no default, network or process I/O, or a call to a
	// function that may block. BlockVia names the root cause.
	MayBlock bool   `json:"may_block,omitempty"`
	BlockVia string `json:"block_via,omitempty"`
	// MayPanic: an explicit panic (direct or transitive) not neutralized
	// by a deferred recover in this function.
	MayPanic bool `json:"may_panic,omitempty"`
	// Spawns: starts a goroutine, directly or through a callee.
	Spawns bool `json:"spawns,omitempty"`
	// CtxAware: takes a context.Context parameter.
	CtxAware bool `json:"ctx_aware,omitempty"`
	// Supervised: participates in a goroutine-supervision protocol — the
	// body references a sync.WaitGroup, closes or sends on a channel, or
	// watches a context. goroleak treats spawning such a function as owned.
	Supervised bool `json:"supervised,omitempty"`
	// Acquires lists the mutexes (field IDs, see fieldIDOf) the function
	// locks, transitively through callees. Releases lists only its own
	// direct unlocks.
	Acquires []string `json:"acquires,omitempty"`
	Releases []string `json:"releases,omitempty"`
}

// PackageFacts is the serializable fact payload of one package: function
// summaries keyed by types.Func.FullName, plus the exported struct fields
// the package accesses atomically (address passed to a sync/atomic
// function) and plainly. Only exported fields are recorded — unexported
// fields cannot conflict across package boundaries.
type PackageFacts struct {
	Path         string              `json:"path"`
	Funcs        map[string]FuncFact `json:"funcs,omitempty"`
	AtomicFields []string            `json:"atomic_fields,omitempty"`
	PlainFields  []string            `json:"plain_fields,omitempty"`
}

// FactSet accumulates imported PackageFacts and answers cross-package
// queries for the analyzers. All methods tolerate a nil receiver so
// analyzers run (factlessly) outside RunAnalyzers too.
type FactSet struct {
	pkgs   map[string]*PackageFacts
	funcs  map[string]FuncFact
	atomic map[string]map[string]bool // field ID -> packages accessing atomically
	plain  map[string]map[string]bool // field ID -> packages accessing plainly
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{
		pkgs:   make(map[string]*PackageFacts),
		funcs:  make(map[string]FuncFact),
		atomic: make(map[string]map[string]bool),
		plain:  make(map[string]map[string]bool),
	}
}

// ImportPackage decodes one package's serialized facts and merges them.
func (fs *FactSet) ImportPackage(data []byte) error {
	pf := new(PackageFacts)
	if err := json.Unmarshal(data, pf); err != nil {
		return fmt.Errorf("analysis: importing package facts: %w", err)
	}
	if pf.Path == "" {
		return fmt.Errorf("analysis: package facts missing path")
	}
	fs.pkgs[pf.Path] = pf
	for name, fact := range pf.Funcs {
		fs.funcs[name] = fact
	}
	for _, id := range pf.AtomicFields {
		if fs.atomic[id] == nil {
			fs.atomic[id] = make(map[string]bool)
		}
		fs.atomic[id][pf.Path] = true
	}
	for _, id := range pf.PlainFields {
		if fs.plain[id] == nil {
			fs.plain[id] = make(map[string]bool)
		}
		fs.plain[id][pf.Path] = true
	}
	return nil
}

// ExportPackage serializes the facts of the named package. The encoding is
// deterministic: map keys sort in encoding/json and all slices are kept
// sorted as they are built.
func (fs *FactSet) ExportPackage(path string) ([]byte, error) {
	pf, ok := fs.pkgs[path]
	if !ok {
		return nil, fmt.Errorf("analysis: no facts for package %q", path)
	}
	return json.Marshal(pf)
}

// Packages returns the paths with imported facts, sorted.
func (fs *FactSet) Packages() []string {
	if fs == nil {
		return nil
	}
	out := make([]string, 0, len(fs.pkgs))
	for p := range fs.pkgs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Package returns the raw facts of one package, or nil.
func (fs *FactSet) Package(path string) *PackageFacts {
	if fs == nil {
		return nil
	}
	return fs.pkgs[path]
}

// Func looks a function summary up by its types.Func.FullName.
func (fs *FactSet) Func(fullName string) (FuncFact, bool) {
	if fs == nil {
		return FuncFact{}, false
	}
	f, ok := fs.funcs[fullName]
	return f, ok
}

// AtomicAccessors returns the packages that access the field atomically.
func (fs *FactSet) AtomicAccessors(fieldID string) []string {
	return sortedKeys(factSetLookup(fs, fieldID, true))
}

// PlainAccessors returns the packages that access the field plainly.
func (fs *FactSet) PlainAccessors(fieldID string) []string {
	return sortedKeys(factSetLookup(fs, fieldID, false))
}

func factSetLookup(fs *FactSet, fieldID string, atomic bool) map[string]bool {
	if fs == nil {
		return nil
	}
	if atomic {
		return fs.atomic[fieldID]
	}
	return fs.plain[fieldID]
}

func sortedKeys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ComputeFacts computes facts for every package in dependency order: each
// package sees the already-imported facts of its dependencies, and its own
// facts pass through the export/import codec before the next package (or
// any analyzer) can read them.
func ComputeFacts(pkgs []*Package) (*FactSet, error) {
	fs := NewFactSet()
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	var order []*Package
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p.Path] != 0 {
			return
		}
		state[p.Path] = 1
		imps := p.Types.Imports()
		paths := make([]string, 0, len(imps))
		for _, imp := range imps {
			paths = append(paths, imp.Path())
		}
		sort.Strings(paths)
		for _, path := range paths {
			if dep, ok := byPath[path]; ok {
				visit(dep)
			}
		}
		state[p.Path] = 2
		order = append(order, p)
	}
	for _, p := range sorted {
		visit(p)
	}

	for _, p := range order {
		pf := computePackageFacts(p, fs)
		data, err := json.Marshal(pf)
		if err != nil {
			return nil, fmt.Errorf("analysis: encoding facts for %s: %w", p.Path, err)
		}
		if err := fs.ImportPackage(data); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// blockingStdlib maps types.Func.FullName of standard-library functions
// that park the calling goroutine to a reason string. Mutex Lock/Unlock
// are deliberately absent: briefly nesting a second serve/cluster mutex
// is an established pattern (Server.mu around Job.View), and same-mutex
// self-deadlock is caught separately via the Acquires fact. io.ReadAll /
// io.Copy over in-memory readers are common and excluded; network reads
// reach this table through the net/http entry points instead.
var blockingStdlib = map[string]string{
	"net/http.Get":                      "network I/O (net/http.Get)",
	"net/http.Head":                     "network I/O (net/http.Head)",
	"net/http.Post":                     "network I/O (net/http.Post)",
	"net/http.PostForm":                 "network I/O (net/http.PostForm)",
	"(*net/http.Client).Do":             "network I/O (http.Client.Do)",
	"(*net/http.Client).Get":            "network I/O (http.Client.Get)",
	"(*net/http.Client).Head":           "network I/O (http.Client.Head)",
	"(*net/http.Client).Post":           "network I/O (http.Client.Post)",
	"(*net/http.Client).PostForm":       "network I/O (http.Client.PostForm)",
	"(*net/http.Server).ListenAndServe": "serving loop (http.Server.ListenAndServe)",
	"(*net/http.Server).Serve":          "serving loop (http.Server.Serve)",
	"(*net/http.Server).Shutdown":       "graceful shutdown wait (http.Server.Shutdown)",
	"net.Dial":                          "network I/O (net.Dial)",
	"net.DialTimeout":                   "network I/O (net.DialTimeout)",
	"net.Listen":                        "network I/O (net.Listen)",
	"(net.Listener).Accept":             "network I/O (net.Listener.Accept)",
	"(*sync.WaitGroup).Wait":            "sync.WaitGroup.Wait",
	"(*sync.Cond).Wait":                 "sync.Cond.Wait",
	"time.Sleep":                        "time.Sleep",
	"(*os/exec.Cmd).Run":                "process wait (exec.Cmd.Run)",
	"(*os/exec.Cmd).Wait":               "process wait (exec.Cmd.Wait)",
	"(*os/exec.Cmd).Output":             "process wait (exec.Cmd.Output)",
	"(*os/exec.Cmd).CombinedOutput":     "process wait (exec.Cmd.CombinedOutput)",
}

var (
	mutexLockFuncs = map[string]bool{
		"(*sync.Mutex).Lock":    true,
		"(*sync.RWMutex).Lock":  true,
		"(*sync.RWMutex).RLock": true,
	}
	mutexUnlockFuncs = map[string]bool{
		"(*sync.Mutex).Unlock":    true,
		"(*sync.RWMutex).Unlock":  true,
		"(*sync.RWMutex).RUnlock": true,
	}
)

// computePackageFacts derives pkg's facts, consulting deps for everything
// already imported. Intra-package calls (including mutual recursion) are
// resolved by iterating to a fixpoint; facts are monotone so this
// terminates.
func computePackageFacts(pkg *Package, deps *FactSet) *PackageFacts {
	pf := &PackageFacts{Path: pkg.Path, Funcs: make(map[string]FuncFact)}
	type fnDecl struct {
		name string
		fn   *types.Func
		decl *ast.FuncDecl
	}
	var decls []fnDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, fnDecl{fn.FullName(), fn, fd})
		}
	}
	lookup := func(name string) (FuncFact, bool) {
		if f, ok := pf.Funcs[name]; ok {
			return f, true
		}
		return deps.Func(name)
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			fact := scanFunc(pkg.Info, d.fn, d.decl, lookup)
			if !reflect.DeepEqual(fact, pf.Funcs[d.name]) {
				pf.Funcs[d.name] = fact
				changed = true
			}
		}
	}
	pf.AtomicFields, pf.PlainFields = fieldDisciplines(pkg)
	return pf
}

// scanFunc derives the fact for one function declaration. Nested function
// literals are descended into only when they execute on this goroutine
// (immediately invoked, or deferred); literals handed to go statements or
// stored for later contribute Spawns/Supervised but not blocking.
func scanFunc(info *types.Info, fn *types.Func, decl *ast.FuncDecl, lookup func(string) (FuncFact, bool)) FuncFact {
	var fact FuncFact
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			fact.CtxAware = true
		}
	}

	inline, skip := classifyFuncLits(decl.Body)
	exempt := make(map[ast.Node]bool)
	sawRecover := false

	block := func(via string) {
		if !fact.MayBlock {
			fact.MayBlock = true
			fact.BlockVia = via
		}
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return inline[n] && !skip[n]
		case *ast.GoStmt:
			fact.Spawns = true
			exempt[n.Call] = true // the callee runs on another goroutine
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					hasDefault = true
					continue
				}
				exemptCommStmt(cc.Comm, exempt)
			}
			if !hasDefault {
				block("select with no default case")
			}
		case *ast.SendStmt:
			fact.Supervised = true
			if !exempt[n] {
				block("channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !exempt[n] {
				block("channel receive")
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && isChanType(tv.Type) {
				block("range over channel")
			}
		case *ast.CallExpr:
			if exempt[n] {
				return true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					switch id.Name {
					case "panic":
						fact.MayPanic = true
					case "close":
						fact.Supervised = true
					case "recover":
						sawRecover = true
					}
					return true
				}
			}
			callee := calleeFunc(info, n)
			if callee == nil {
				return true
			}
			full := callee.FullName()
			if via, ok := blockingStdlib[full]; ok {
				block(via)
				return true
			}
			switch {
			case mutexLockFuncs[full]:
				if id := mutexIDForCall(info, n); id != "" {
					fact.Acquires = addSorted(fact.Acquires, id)
				}
			case mutexUnlockFuncs[full]:
				if id := mutexIDForCall(info, n); id != "" {
					fact.Releases = addSorted(fact.Releases, id)
				}
			default:
				if dep, ok := lookup(full); ok {
					if dep.MayBlock {
						via := dep.BlockVia
						if via == "" {
							via = "call to " + callee.Name()
						}
						block(via)
					}
					if dep.MayPanic {
						fact.MayPanic = true
					}
					if dep.Spawns {
						fact.Spawns = true
					}
					for _, id := range dep.Acquires {
						fact.Acquires = addSorted(fact.Acquires, id)
					}
				}
			}
		case *ast.SelectorExpr:
			if tv, ok := info.Types[n]; ok && isWaitGroupType(tv.Type) {
				fact.Supervised = true
			}
		case *ast.Ident:
			if tv, ok := info.Types[ast.Expr(n)]; ok {
				if isWaitGroupType(tv.Type) || isContextType(tv.Type) {
					fact.Supervised = true
				}
			}
		}
		return true
	})
	if sawRecover {
		fact.MayPanic = false
	}
	if !fact.Supervised && usesContext(info, decl.Body) {
		fact.Supervised = true
	}
	return fact
}

// classifyFuncLits partitions the function literals under body: inline
// literals run on the current goroutine (immediately invoked or deferred),
// skip literals run on a spawned one.
func classifyFuncLits(body *ast.BlockStmt) (inline, skip map[*ast.FuncLit]bool) {
	inline = make(map[*ast.FuncLit]bool)
	skip = make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				inline[lit] = true
			}
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				skip[lit] = true
			}
		}
		return true
	})
	return inline, skip
}

// exemptCommStmt marks the send/receive node of a select comm clause: the
// select statement owns the blocking semantics, not the operation itself.
func exemptCommStmt(st ast.Stmt, exempt map[ast.Node]bool) {
	switch st := st.(type) {
	case *ast.SendStmt:
		exempt[st] = true
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(st.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			exempt[u] = true
		}
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			if u, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				exempt[u] = true
			}
		}
	}
}

// mutexIDForCall resolves the mutex receiver of a Lock/Unlock call to a
// stable identifier: "pkgpath.Type.field" for struct fields,
// "pkgpath.name" for package-level mutexes, "" for locals (which cannot
// alias across functions in a way the facts can express).
func mutexIDForCall(info *types.Info, call *ast.CallExpr) string {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch x := ast.Unparen(fun.X).(type) {
	case *ast.SelectorExpr:
		if id := fieldIDFromSelection(info, x); id != "" {
			return id
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && packageLevel(v) {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && packageLevel(v) {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

func packageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// fieldIDFromSelection returns the stable identifier of the struct field
// selected by sel ("ownerPkg.OwnerType.field"), or "" when sel is not a
// field selection on a named type.
func fieldIDFromSelection(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name() + "." + s.Obj().Name()
}

// fieldDisciplines records which exported struct fields the package
// accesses atomically (address passed to a sync/atomic function) and which
// it accesses plainly, as field IDs. atomicmix compares these across
// packages; atomicfield handles the same-package case with full precision.
func fieldDisciplines(pkg *Package) (atomicIDs, plainIDs []string) {
	atomicSels := collectAtomicSelectors(pkg.Info, pkg.Files)
	seenAtomic := map[string]bool{}
	seenPlain := map[string]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := fieldOf(pkg.Info, sel)
			if field == nil || !field.Exported() {
				return true
			}
			id := fieldIDFromSelection(pkg.Info, sel)
			if id == "" {
				return true
			}
			if atomicSels[sel] {
				seenAtomic[id] = true
			} else {
				seenPlain[id] = true
			}
			return true
		})
	}
	for id := range seenAtomic {
		atomicIDs = append(atomicIDs, id)
	}
	for id := range seenPlain {
		plainIDs = append(plainIDs, id)
	}
	sort.Strings(atomicIDs)
	sort.Strings(plainIDs)
	return atomicIDs, plainIDs
}

// collectAtomicSelectors finds every field selector whose address is
// passed to a package-level sync/atomic function (shared by atomicfield
// and the facts engine).
func collectAtomicSelectors(info *types.Info, files []*ast.File) map[*ast.SelectorExpr]bool {
	uses := make(map[*ast.SelectorExpr]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods of atomic.Int64 etc. are type-safe
			}
			for _, arg := range call.Args {
				unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					continue
				}
				if sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr); ok {
					uses[sel] = true
				}
			}
			return true
		})
	}
	return uses
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isWaitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// addSorted inserts s into sorted slice list if absent.
func addSorted(list []string, s string) []string {
	i := sort.SearchStrings(list, s)
	if i < len(list) && list[i] == s {
		return list
	}
	list = append(list, "")
	copy(list[i+1:], list[i:])
	list[i] = s
	return list
}

// shortMutex trims a mutex/field ID to its type-qualified tail for
// diagnostics ("micgraph/internal/serve.Server.mu" -> "serve.Server.mu").
func shortMutex(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}
