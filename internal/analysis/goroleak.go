package analysis

import (
	"go/ast"
	"go/types"
)

// Goroleak flags fire-and-forget goroutines in the serving/cluster/load
// layer: every `go` statement must be tied to an owner that can observe
// or stop it — a context.Context (in the arguments or captured by the
// body), a sync.WaitGroup, or a supervising channel the goroutine closes
// or sends on. Named callees are resolved through cross-package facts, so
// `go q.worker(w)` is owned when worker's body registers with the queue's
// WaitGroup even though the go statement itself shows none of that.
var Goroleak = &Analyzer{
	Name: "goroleak",
	Doc: "every go statement in serve/cluster/load must be tied to a context.Context, sync.WaitGroup, or " +
		"supervising channel; fire-and-forget goroutines outlive drains and leak",
	Run: runGoroleak,
}

var goroleakScope = []string{"serve", "cluster", "load", "e2e", "micserved", "micload", "goroleak"}

func runGoroleak(pass *Pass) error {
	if !inScope(pass.PkgPath, goroleakScope) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goOwned(pass, g) {
				pass.Reportf(g.Pos(), "goroutine is not tied to a context, WaitGroup, or supervising channel: it cannot be observed or stopped, and leaks across drain/shutdown; pass a context, register with a WaitGroup, or signal a done channel")
			}
			return true
		})
	}
	return nil
}

// goOwned reports whether the spawned goroutine has an owner: a context
// reaches it, its literal body participates in a supervision protocol, or
// the named callee's fact says it does.
func goOwned(pass *Pass, g *ast.GoStmt) bool {
	if usesContext(pass.Info, g.Call) {
		return true
	}
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return litSupervised(pass.Info, lit.Body)
	}
	if fn := calleeFunc(pass.Info, g.Call); fn != nil {
		if fact, ok := pass.Facts.Func(fn.FullName()); ok {
			return fact.CtxAware || fact.Supervised
		}
	}
	return false
}

// litSupervised reports whether a goroutine body signals an owner: it
// references a sync.WaitGroup (Add/Done bookkeeping), closes or sends on
// a channel, or watches a context.
func litSupervised(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin && id.Name == "close" {
					found = true
				}
			}
		}
		if expr, ok := n.(ast.Expr); ok {
			if tv, ok := info.Types[expr]; ok && isWaitGroupType(tv.Type) {
				found = true
			}
		}
		return !found
	})
	return found || usesContext(info, body)
}
