// Package analysistest runs micvet analyzers over golden fixture packages,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture sources
// live under a testdata root, and every expected diagnostic is declared by
// a trailing comment of the form
//
//	// want "regexp"
//
// (several quoted regexps may follow one want; backquoted Go string
// literals are accepted too, which keeps regexp escapes readable). Run
// fails the test when a
// diagnostic has no matching want on its line, or a want goes unmatched —
// so fixtures document both the positive cases an analyzer must catch and
// the negative cases it must stay silent on.
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"micgraph/internal/analysis"
)

// expectation is one want entry: a compiled regexp and whether a
// diagnostic matched it.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)

// Run loads the fixture packages at the given paths (relative to root),
// applies the analyzer, and checks its diagnostics against the packages'
// want comments.
func Run(t *testing.T, root string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := analysis.LoadDirs(root, paths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					collectWants(t, pkg, c, wants)
				}
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.raw)
			}
		}
	}
}

func collectWants(t *testing.T, pkg *analysis.Package, c *ast.Comment, wants map[string][]*expectation) {
	t.Helper()
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, "want ") {
		return
	}
	pos := pkg.Fset.Position(c.Pos())
	key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
	for _, m := range wantRE.FindAllString(strings.TrimPrefix(text, "want "), -1) {
		raw, err := strconv.Unquote(m)
		if err != nil {
			t.Fatalf("%s: bad want string %s: %v", key, m, err)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", key, raw, err)
		}
		wants[key] = append(wants[key], &expectation{re: re, raw: raw})
	}
}
