package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicField flags mixed atomic/plain access to a struct field: once any
// code touches a field through a sync/atomic function (&s.f passed to
// atomic.LoadX/StoreX/AddX/SwapX/CompareAndSwapX), every other access must
// also be atomic. This is the exact shape of the PR 3 sched.Pool
// SetCounters race (hot path loaded the counters pointer atomically while
// SetCounters stored it plainly), which -race only catches when both paths
// run concurrently in a test. Fields of type atomic.Int64/atomic.Pointer
// etc. are enforced by the type system and need no analyzer.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "a struct field accessed via sync/atomic anywhere in a package must never be read or written plainly elsewhere " +
		"in that package (mixed atomic/non-atomic access is a data race)",
	Run: runAtomicField,
}

func runAtomicField(pass *Pass) error {
	// Pass 1: fields accessed atomically, and the selector nodes that do so.
	atomicUses := collectAtomicSelectors(pass.Info, pass.Files)
	atomicFields := map[*types.Var]bool{}
	for sel := range atomicUses {
		if field := fieldOf(pass.Info, sel); field != nil {
			atomicFields[field] = true
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: plain accesses to those fields.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUses[sel] {
				return true
			}
			field := fieldOf(pass.Info, sel)
			if field != nil && atomicFields[field] {
				owner := types.TypeString(pass.Info.Selections[sel].Recv(), types.RelativeTo(pass.Pkg))
				pass.Reportf(sel.Pos(), "plain access to field (%s).%s, which is accessed with sync/atomic elsewhere: mixed access is a data race; use the same atomic discipline everywhere",
					owner, field.Name())
			}
			return true
		})
	}
	return nil
}

// fieldOf returns the struct field selected by sel, or nil when sel is not
// a field selection.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}
