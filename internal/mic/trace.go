package mic

// Work is the cost vector of one work item (typically: process one vertex
// or queue entry): issue cycles that occupy the core's pipeline, FP cycles
// that occupy the core's FP unit, and stall cycles that overlap with other
// hardware threads (memory latency).
type Work struct {
	Issue   float64
	FP      float64
	Stall   float64
	Atomics float64 // count of atomic RMW operations (costed per machine)
}

// Add accumulates o into w.
func (w *Work) Add(o Work) {
	w.Issue += o.Issue
	w.FP += o.FP
	w.Stall += o.Stall
	w.Atomics += o.Atomics
}

// Scale returns w with every component multiplied by f.
func (w Work) Scale(f float64) Work {
	return Work{Issue: w.Issue * f, FP: w.FP * f, Stall: w.Stall * f, Atomics: w.Atomics * f}
}

// Total returns the single-thread latency of the item, excluding atomics
// (whose cost is machine-dependent).
func (w Work) Total() float64 { return w.Issue + w.FP + w.Stall }

// Phase is one parallel loop of a kernel: a list of per-item costs executed
// under the run's scheduling policy, followed by an implicit barrier, plus
// optional sequential work (queue merges, swaps) executed by one thread.
type Phase struct {
	Name  string
	Items []Work
	Seq   float64 // sequential cycles after the barrier (merges, reductions)
}

// TotalWork returns the aggregate cost vector of the phase's items.
func (p *Phase) TotalWork() Work {
	var t Work
	for _, it := range p.Items {
		t.Add(it)
	}
	return t
}

// Trace is the phase-structured cost profile of one kernel execution on one
// graph. It is independent of machine and thread count except where a
// kernel's algorithmic structure itself depends on them (e.g. speculative
// coloring conflicts), which the trace builders in kernels.go parameterise
// explicitly.
type Trace struct {
	Name   string
	Phases []Phase
}

// SerialTime returns the trace's total single-thread item latency plus
// sequential work — the quantity the simulator's 1-thread run reproduces up
// to per-chunk overheads.
func (tr *Trace) SerialTime() float64 {
	var total float64
	for i := range tr.Phases {
		p := &tr.Phases[i]
		for _, it := range p.Items {
			total += it.Total()
		}
		total += p.Seq
	}
	return total
}

// NumItems returns the total number of work items across phases.
func (tr *Trace) NumItems() int {
	n := 0
	for i := range tr.Phases {
		n += len(tr.Phases[i].Items)
	}
	return n
}
