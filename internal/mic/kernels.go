package mic

import (
	"math"

	"micgraph/internal/graph"
)

// Trace builders: convert one kernel execution on one graph into the
// phase-structured cost profile the simulator plays. Costs use the target
// machine's building-block constants; structure (level widths, conflict
// rounds, per-vertex degrees) comes from the real graph.

// Ordering describes the vertex-id locality of the graph being traced,
// selecting the expected miss rate per neighbor access (§V-B: natural FEM
// ordering vs random shuffle).
type Ordering int

const (
	// NaturalOrder: the generator's clique-major ordering (FEM-like
	// locality; neighbor accesses mostly hit the cache).
	NaturalOrder Ordering = iota
	// ShuffledOrder: random vertex ids; nearly every access misses.
	ShuffledOrder
)

func (o Ordering) String() string {
	if o == ShuffledOrder {
		return "shuffled"
	}
	return "natural"
}

func (m *Machine) missPerEdge(o Ordering) float64 {
	if o == ShuffledOrder {
		return m.MissPerEdgeShuffle
	}
	return m.MissPerEdgeNatural
}

// CacheWindow is the number of consecutive vertex ids whose data
// comfortably fits in a core's share of the cache hierarchy; neighbor
// accesses within the window are modeled as hits.
const CacheWindow = 32768

// EffectiveMissPerEdge estimates the per-neighbor-access miss rate of g
// under its *current* vertex numbering from its bandwidth: orderings whose
// neighbors stay within CacheWindow behave like the natural FEM order,
// and the rate rises log-linearly to the fully shuffled rate as the
// bandwidth approaches |V|. This lets the simulator score arbitrary
// reorderings (RCM, BFS order) between the paper's two extremes.
func (m *Machine) EffectiveMissPerEdge(g *graph.Graph) float64 {
	n := float64(g.NumVertices())
	bw := float64(g.Bandwidth())
	if bw <= CacheWindow || n <= CacheWindow {
		return m.MissPerEdgeNatural
	}
	frac := math.Log(bw/CacheWindow) / math.Log(n/CacheWindow)
	if frac > 1 {
		frac = 1
	}
	return m.MissPerEdgeNatural + (m.MissPerEdgeShuffle-m.MissPerEdgeNatural)*frac
}

// vertexScanWork returns the cost of scanning v's adjacency once: issue for
// the loop, stalls for the neighbor-array and color/level/state gathers.
func vertexScanWork(m *Machine, g *graph.Graph, v int32, miss float64) Work {
	d := float64(g.Degree(v))
	return Work{
		Issue: m.IssuePerItem + m.IssuePerEdge*d,
		Stall: (0.15 + miss*d) * m.StallPerLine,
	}
}

// ConflictRate is the fraction of vertices expected to need recoloring per
// speculative round when more than one thread runs; it scales with how much
// of the graph is processed concurrently. Measured rates in the paper's
// regime are a fraction of a percent of |V|.
const ConflictRate = 0.004

// ColoringTrace builds the trace of the iterative parallel coloring
// (Algorithms 2–4) on g for a run with t threads: per round, a tentative
// coloring phase and a conflict-detection phase over the current Visit set.
// Conflict counts shrink geometrically; the expected count depends on t
// (one thread ⇒ no conflicts), which is why the builder takes t.
func ColoringTrace(m *Machine, g *graph.Graph, o Ordering, t int) *Trace {
	return ColoringTraceMiss(m, g, m.missPerEdge(o), t)
}

// ColoringTraceMiss is ColoringTrace with an explicit per-edge miss rate,
// for scoring arbitrary vertex orderings (see EffectiveMissPerEdge).
func ColoringTraceMiss(m *Machine, g *graph.Graph, miss float64, t int) *Trace {
	n := g.NumVertices()
	tr := &Trace{Name: "coloring"}
	if n == 0 {
		return tr
	}

	visitSize := n
	offset := 0
	for round := 0; visitSize > 0; round++ {
		tentative := make([]Work, visitSize)
		detect := make([]Work, visitSize)
		stride := n / visitSize
		for i := 0; i < visitSize; i++ {
			// Visit sets beyond round one are spread across the graph; pick
			// representative vertices by striding so degree structure
			// (hubs!) is preserved.
			v := int32((offset + i*stride) % n)
			w := vertexScanWork(m, g, v, miss)
			// Tentative: scan neighbors, mark forbidden, first-fit scan,
			// store the color.
			tent := w
			tent.Issue += 8 // first-fit scan + color store
			tentative[i] = tent
			// Detection: scan neighbors comparing colors; conflicts append
			// with an atomic fetch-and-add.
			det := w
			det.Atomics = ConflictRate // amortised conflict-append
			detect[i] = det
		}
		tr.Phases = append(tr.Phases,
			Phase{Name: "tentative", Items: tentative},
			Phase{Name: "detect", Items: detect, Seq: 40},
		)
		if t <= 1 {
			break // sequential speculation never conflicts
		}
		next := int(float64(visitSize) * ConflictRate * (1 - 1/float64(t)))
		if next >= visitSize {
			next = visitSize - 1
		}
		visitSize = next
		offset += 131 // decorrelate successive rounds' representatives
	}
	return tr
}

// FPLatency is the latency in cycles of a dependent floating-point add on
// the simulated in-order core; only 1 cycle of it occupies the FP unit
// (pipelined), the rest is exposed stall that SMT can hide. The irregular
// kernel's neighbor sum is a serial dependency chain, which is exactly why
// the paper sees SMT double its throughput even at high arithmetic
// intensity.
const FPLatency = 4

// IrregularTrace builds the trace of the irregular-computation
// microbenchmark (Algorithm 5) with the given iteration count. Only the
// first sweep misses on neighbor state (later sweeps reuse the lines), so
// iter scales compute but not memory traffic — the paper's
// computation-to-communication knob.
func IrregularTrace(m *Machine, g *graph.Graph, o Ordering, iter int) *Trace {
	n := g.NumVertices()
	items := make([]Work, n)
	for v := 0; v < n; v++ {
		d := float64(g.Degree(int32(v)))
		fi := float64(iter)
		ops := fi * (d + 2) // adds along the chain + the final scale
		miss := m.missPerEdge(o)
		items[v] = Work{
			Issue: fi * (m.IssuePerItem + m.IssuePerEdge*d),
			FP:    ops * m.FPPerOp,
			Stall: (0.15+miss*d)*m.StallPerLine + ops*(FPLatency-1),
		}
	}
	return &Trace{
		Name:   "irregular",
		Phases: []Phase{{Name: "update", Items: items}},
	}
}

// BagGrain is the pennant-node capacity (the Leiserson–Schardl grainsize)
// used for both the real bag and its simulated traversal chunking.
const BagGrain = 128

// BFSVariant selects the next-level data structure being traced.
type BFSVariant int

const (
	// BFSBlock: block-accessed queue, CAS-claimed (exactly-once) insertion.
	BFSBlock BFSVariant = iota
	// BFSBlockRelaxed: block-accessed queue, unsynchronised claims.
	BFSBlockRelaxed
	// BFSTLS: SNAP-style thread-local queues, locked insertion, sequential
	// per-level merge.
	BFSTLS
	// BFSBag: Leiserson–Schardl pennant bag, relaxed insertion, pointer-
	// heavy traversal and per-level bag merges.
	BFSBag
	// BFSHybrid: direction-optimizing traversal — narrow levels expand
	// top-down like BFSBlockRelaxed, wide middle levels flip to a
	// bottom-up parent search over the unvisited vertices (Beamer-style
	// α/β switching, mirroring the real kernel in internal/bfs).
	BFSHybrid
)

// Direction-switch thresholds of the simulated hybrid traversal, matching
// the real kernel's defaults (bfs.HybridConfig zero value): flip to
// bottom-up when the frontier's out-edges exceed 1/α of the unexplored
// edges, flip back when the frontier shrinks under |V|/β.
const (
	HybridAlpha = 14
	HybridBeta  = 24
)

// String names the variant as in Figure 4's legends (runtime prefix is
// added by the experiment configuration).
func (v BFSVariant) String() string {
	switch v {
	case BFSBlock:
		return "Block"
	case BFSBlockRelaxed:
		return "Block-relaxed"
	case BFSTLS:
		return "TLS"
	case BFSBag:
		return "Bag-relaxed"
	case BFSHybrid:
		return "Hybrid"
	}
	return "BFS?"
}

// BFSTrace builds the per-level trace of the layered BFS from source. The
// level structure is computed exactly (sequential BFS); each level becomes
// one phase whose items are the level's vertices in natural order. Claims
// (successful next-level insertions) are attributed to each vertex's
// children count, costed per variant.
func BFSTrace(m *Machine, g *graph.Graph, source int32, o Ordering, variant BFSVariant, blockSize int) *Trace {
	if blockSize <= 0 {
		blockSize = 32
	}
	n := g.NumVertices()
	tr := &Trace{Name: "bfs-" + variant.String()}
	if n == 0 {
		return tr
	}
	levels, numLevels := g.Levels(source)
	if variant == BFSHybrid {
		hybridPhases(m, g, o, levels, numLevels, tr)
		return tr
	}

	// Bucket vertices by level and attribute each vertex to its minimum-id
	// parent (the canonical claim winner).
	order := make([][]int32, numLevels)
	claims := make([]float64, n)
	for v := 0; v < n; v++ {
		if l := levels[v]; l >= 0 {
			order[l] = append(order[l], int32(v))
		}
	}
	for v := 0; v < n; v++ {
		lv := levels[v]
		if lv <= 0 {
			continue
		}
		parent := int32(-1)
		for _, w := range g.Adj(int32(v)) {
			if levels[w] == lv-1 && (parent == -1 || w < parent) {
				parent = w
			}
		}
		if parent >= 0 {
			claims[parent]++
		}
	}

	for l := 0; l < numLevels; l++ {
		items := make([]Work, len(order[l]))
		var seq float64
		var levelClaims float64
		for i, v := range order[l] {
			w := vertexScanWork(m, g, v, m.missPerEdge(o))
			cl := claims[v]
			levelClaims += cl
			switch variant {
			case BFSBlock:
				// CAS per claimed child + block reservations; failed CAS
				// races are folded into the claim cost.
				w.Atomics += cl + cl/float64(blockSize)
				w.Issue += 3 * cl
			case BFSBlockRelaxed:
				// Plain check+store; only block reservations are atomic.
				w.Atomics += cl / float64(blockSize)
				w.Issue += 2 * cl
			case BFSTLS:
				// Check-before-lock, then CAS claim, push to local queue.
				w.Atomics += cl
				w.Issue += 3 * cl
			case BFSBag:
				// Hopper append per claim, pennant-node allocation per
				// grain, pointer-chasing misses while walking the tree.
				w.Atomics += cl / 64
				w.Issue += 6 + 4*cl
				w.Stall += (2.0 / 64) * m.StallPerLine * (1 + cl)
			}
			items[i] = w
		}
		switch variant {
		case BFSTLS:
			// Sequential merge of thread-local queues into the global one.
			seq += 1.5 * levelClaims
		case BFSBag:
			// Per-level bag merge: logarithmic pennant unions per worker
			// plus allocator churn.
			seq += 600 + 0.2*levelClaims
		}
		tr.Phases = append(tr.Phases, Phase{Name: "level", Items: items, Seq: seq})
	}
	return tr
}

// hybridPhases builds the per-level phases of the direction-optimizing
// traversal. The direction decision replays the real kernel's exactly: a
// top-down level costs like BFSBlockRelaxed over the frontier; a bottom-up
// level sweeps every still-unvisited vertex, scanning its adjacency only
// until a parent on the current frontier is found (the early break that
// makes bottom-up win on wide levels), with one atomic level store per
// discovered vertex. Phase names match the real kernel's telemetry
// ("level-td" / "level-bu"), so instrumented simulator output and Recorder
// output line up level by level.
func hybridPhases(m *Machine, g *graph.Graph, o Ordering, levels []int32, numLevels int, tr *Trace) {
	n := g.NumVertices()
	miss := m.missPerEdge(o)
	order := make([][]int32, numLevels)
	for v := 0; v < n; v++ {
		if l := levels[v]; l >= 0 {
			order[l] = append(order[l], int32(v))
		}
	}
	var totalDeg float64
	for v := 0; v < n; v++ {
		totalDeg += float64(g.Degree(int32(v)))
	}

	bottomUp := false
	exploredDeg := 0.0
	for l := 0; l < numLevels; l++ {
		frontier := order[l]
		var frontierDeg float64
		for _, v := range frontier {
			frontierDeg += float64(g.Degree(v))
		}
		exploredDeg += frontierDeg
		unexploredDeg := totalDeg - exploredDeg
		if !bottomUp && frontierDeg > unexploredDeg/HybridAlpha {
			bottomUp = true
		} else if bottomUp && len(frontier) < n/HybridBeta {
			bottomUp = false
		}

		if !bottomUp {
			// Top-down: frontier scan with relaxed claims (BFSBlockRelaxed
			// costing, flat-array writer instead of block reservations).
			items := make([]Work, len(frontier))
			for i, v := range frontier {
				w := vertexScanWork(m, g, v, miss)
				var cl float64
				for _, u := range g.Adj(v) {
					if levels[u] == int32(l)+1 {
						cl++
					}
				}
				w.Issue += 2 * cl
				items[i] = w
			}
			tr.Phases = append(tr.Phases, Phase{Name: "level-td", Items: items})
			continue
		}

		// Bottom-up: sweep the unvisited vertices, scanning each adjacency
		// only until a level-l parent turns up.
		var items []Work
		for v := 0; v < n; v++ {
			lv := levels[v]
			if lv >= 0 && lv <= int32(l) {
				continue
			}
			scanned := 0.0
			found := false
			for _, u := range g.Adj(int32(v)) {
				scanned++
				if levels[u] == int32(l) {
					found = true
					break
				}
			}
			w := Work{
				Issue: m.IssuePerItem + m.IssuePerEdge*scanned,
				Stall: (0.15 + miss*scanned) * m.StallPerLine,
			}
			if found {
				w.Atomics++
				w.Issue += 2
			}
			items = append(items, w)
		}
		tr.Phases = append(tr.Phases, Phase{Name: "level-bu", Items: items})
	}
}
