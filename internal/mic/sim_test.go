package mic

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"micgraph/internal/gen"
	"micgraph/internal/sched"
)

func uniformTrace(items int, w Work) *Trace {
	ws := make([]Work, items)
	for i := range ws {
		ws[i] = w
	}
	return &Trace{Name: "uniform", Phases: []Phase{{Name: "p", Items: ws}}}
}

func TestMachineConstructors(t *testing.T) {
	knf := KNF()
	if knf.Cores != 31 || knf.SMTWays != 4 || knf.MaxThreads() != 124 {
		t.Errorf("KNF topology wrong: %d cores × %d SMT", knf.Cores, knf.SMTWays)
	}
	host := HostXeon()
	if host.Cores != 12 || host.SMTWays != 2 || host.MaxThreads() != 24 {
		t.Errorf("host topology wrong: %d cores × %d SMT", host.Cores, host.SMTWays)
	}
	if knf.StallPerLine <= host.StallPerLine {
		t.Error("KNF in-order cores must expose more memory latency than the Xeon")
	}
}

func TestCoresidency(t *testing.T) {
	m := KNF()
	for _, tc := range []struct{ t, i, want int }{
		{1, 0, 1},
		{31, 30, 1},
		{32, 0, 2},  // thread 0 and 31 share core 0
		{32, 30, 1}, // core 30 has one thread
		{62, 5, 2},
		{124, 77, 4},
		{121, 0, 4},  // 121 = 3*31 + 28: cores 0..27 carry 4
		{121, 28, 3}, // cores 28..30 carry 3
	} {
		if got := m.Coresidency(tc.t, tc.i); got != tc.want {
			t.Errorf("Coresidency(t=%d, i=%d) = %d, want %d", tc.t, tc.i, got, tc.want)
		}
	}
}

func TestCoresidencySumsToThreads(t *testing.T) {
	m := KNF()
	property := func(tRaw uint8) bool {
		threads := int(tRaw%124) + 1
		// Sum of each core's load over one representative thread per core
		// must equal the thread count.
		total := 0
		counted := map[int]bool{}
		for i := 0; i < threads; i++ {
			core := i % m.Cores
			if !counted[core] {
				counted[core] = true
				total += m.Coresidency(threads, i)
			}
		}
		return total == threads
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWorkHelpers(t *testing.T) {
	w := Work{Issue: 1, FP: 2, Stall: 3, Atomics: 4}
	w2 := w.Scale(2)
	if w2.Issue != 2 || w2.FP != 4 || w2.Stall != 6 || w2.Atomics != 8 {
		t.Errorf("Scale: %+v", w2)
	}
	var acc Work
	acc.Add(w)
	acc.Add(w2)
	if acc.Issue != 3 || acc.Atomics != 12 {
		t.Errorf("Add: %+v", acc)
	}
	if w.Total() != 6 {
		t.Errorf("Total = %v", w.Total())
	}
	p := Phase{Items: []Work{w, w2}}
	if tw := p.TotalWork(); tw.Stall != 9 {
		t.Errorf("TotalWork: %+v", tw)
	}
	tr := Trace{Phases: []Phase{{Items: []Work{w}, Seq: 10}}}
	if tr.SerialTime() != 16 {
		t.Errorf("SerialTime = %v", tr.SerialTime())
	}
	if tr.NumItems() != 1 {
		t.Errorf("NumItems = %d", tr.NumItems())
	}
}

func TestSimulateDeterministic(t *testing.T) {
	m := KNF()
	g := gen.RingOfCliques(50, 8)
	tr := ColoringTrace(m, g, NaturalOrder, 61)
	cfg := Config{Kind: OpenMP, Policy: sched.Dynamic, Chunk: 100}
	a := Simulate(m, cfg, 61, tr)
	b := Simulate(m, cfg, 61, tr)
	if a != b {
		t.Errorf("simulation not deterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Errorf("non-positive simulated time %v", a)
	}
}

func TestSimulateSingleThreadNearSerial(t *testing.T) {
	m := KNF()
	tr := uniformTrace(10000, Work{Issue: 100, Stall: 50})
	cfg := Config{Kind: OpenMP, Policy: sched.Static, Chunk: 100}
	got := Simulate(m, cfg, 1, tr)
	serial := tr.SerialTime()
	if got < serial {
		t.Errorf("1-thread time %v below serial work %v", got, serial)
	}
	if got > 1.05*serial {
		t.Errorf("1-thread overhead %v vs serial %v exceeds 5%%", got, serial)
	}
}

func TestSimulateSpeedupRegimes(t *testing.T) {
	m := KNF()
	cfg := Config{Kind: OpenMP, Policy: sched.Dynamic, Chunk: 100}

	// Memory-bound: stalls dominate; SMT should keep per-thread speed, so
	// speedup at 124 threads must be well beyond the 31 cores.
	memBound := uniformTrace(200000, Work{Issue: 20, Stall: 600})
	base := Simulate(m, cfg, 1, memBound)
	at124 := base / Simulate(m, cfg, 124, memBound)
	if at124 < 80 {
		t.Errorf("memory-bound speedup at 124 threads = %.1f, want > 80 (SMT latency hiding)", at124)
	}

	// Compute-bound: issue dominates; speedup must saturate near the core
	// count, NOT scale with hardware threads.
	cpuBound := uniformTrace(200000, Work{Issue: 600, Stall: 20})
	baseC := Simulate(m, cfg, 1, cpuBound)
	at31 := baseC / Simulate(m, cfg, 31, cpuBound)
	at124c := baseC / Simulate(m, cfg, 124, cpuBound)
	if at31 < 25 {
		t.Errorf("compute-bound speedup at 31 threads = %.1f, want ≈31", at31)
	}
	if at124c > at31*1.35 {
		t.Errorf("compute-bound speedup grew from %.1f (31t) to %.1f (124t); issue saturation missing", at31, at124c)
	}
}

func TestSimulateMoreThreadsNotCatastrophic(t *testing.T) {
	// Under OpenMP dynamic without pathological structure, adding threads
	// should never slow the simulation down by more than the barrier costs.
	m := KNF()
	cfg := Config{Kind: OpenMP, Policy: sched.Dynamic, Chunk: 50}
	tr := uniformTrace(100000, Work{Issue: 50, Stall: 200})
	prev := Simulate(m, cfg, 1, tr)
	for _, th := range []int{2, 4, 8, 16, 31} {
		cur := Simulate(m, cfg, th, tr)
		if cur > prev {
			t.Errorf("time increased from %v to %v going to %d threads", prev, cur, th)
		}
		prev = cur
	}
}

func TestSimulatePanicsOnZeroThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0 threads")
		}
	}()
	Simulate(KNF(), Config{Kind: OpenMP}, 0, uniformTrace(10, Work{Issue: 1}))
}

func TestEmptyPhaseOnlySeq(t *testing.T) {
	m := KNF()
	tr := &Trace{Phases: []Phase{{Seq: 1234}}}
	got := Simulate(m, Config{Kind: OpenMP, Policy: sched.Static}, 8, tr)
	if got != 1234 {
		t.Errorf("empty phase time = %v, want 1234 (Seq only)", got)
	}
}

func TestChunkPlansCoverAllItems(t *testing.T) {
	m := KNF()
	configs := []Config{
		{Kind: OpenMP, Policy: sched.Static, Chunk: 0},
		{Kind: OpenMP, Policy: sched.Static, Chunk: 7},
		{Kind: OpenMP, Policy: sched.Dynamic, Chunk: 13},
		{Kind: OpenMP, Policy: sched.Guided, Chunk: 5},
		{Kind: Cilk, Chunk: 9},
		{Kind: Cilk, Chunk: 0},
		{Kind: TBB, Partitioner: sched.SimplePartitioner, Chunk: 11},
		{Kind: TBB, Partitioner: sched.AutoPartitioner, Chunk: 3},
		{Kind: TBB, Partitioner: sched.AffinityPartitioner, Chunk: 3},
	}
	for _, cfg := range configs {
		for _, n := range []int{1, 7, 100, 12345} {
			for _, th := range []int{1, 4, 31, 124} {
				p := planChunks(m, cfg, th, n)
				covered := make([]bool, n)
				for _, c := range p.chunks {
					if c.lo < 0 || c.hi > n || c.lo >= c.hi {
						t.Fatalf("%v n=%d t=%d: bad chunk %+v", cfg, n, th, c)
					}
					if c.owner < 0 || c.owner >= th {
						t.Fatalf("%v n=%d t=%d: bad owner %d", cfg, n, th, c.owner)
					}
					for i := c.lo; i < c.hi; i++ {
						if covered[i] {
							t.Fatalf("%v n=%d t=%d: item %d covered twice", cfg, n, th, i)
						}
						covered[i] = true
					}
				}
				for i, ok := range covered {
					if !ok {
						t.Fatalf("%v n=%d t=%d: item %d not covered", cfg, n, th, i)
					}
				}
			}
		}
	}
}

func TestGuidedChunksShrink(t *testing.T) {
	chunks := guidedChunks(4, 10000, 10)
	for i := 1; i < len(chunks); i++ {
		prev := chunks[i-1].hi - chunks[i-1].lo
		cur := chunks[i].hi - chunks[i].lo
		if cur > prev {
			t.Fatalf("guided chunk %d grew: %d after %d", i, cur, prev)
		}
	}
	last := chunks[len(chunks)-1]
	if last.hi-last.lo > 10 {
		// The tail may be smaller than the minimum but never bigger than
		// the shrink floor once reached.
		t.Logf("last chunk size %d", last.hi-last.lo)
	}
}

func TestConfigString(t *testing.T) {
	cases := map[string]Config{
		"OpenMP-dynamic": {Kind: OpenMP, Policy: sched.Dynamic},
		"OpenMP-static":  {Kind: OpenMP, Policy: sched.Static},
		"TBB-simple":     {Kind: TBB, Partitioner: sched.SimplePartitioner},
		"CilkPlus":       {Kind: Cilk},
	}
	for want, cfg := range cases {
		if got := cfg.String(); got != want {
			t.Errorf("Config.String() = %q, want %q", got, want)
		}
	}
	if OpenMP.String() != "OpenMP" || Cilk.String() != "CilkPlus" || TBB.String() != "TBB" {
		t.Error("RuntimeKind names wrong")
	}
}

func TestSharedCacheBonusSuperlinearity(t *testing.T) {
	// With the bonus on, a fully stall-bound kernel must exceed t× speedup
	// at full SMT occupancy (the paper's 153× on 121 threads); with the
	// bonus off it must not.
	tr := uniformTrace(100000, Work{Issue: 20, Stall: 2000})
	cfg := Config{Kind: OpenMP, Policy: sched.Dynamic, Chunk: 100}

	m := KNF()
	m.MemBandwidth = 0 // isolate the bonus from the bandwidth ceiling
	base := Simulate(m, cfg, 1, tr)
	with := base / Simulate(m, cfg, 124, tr)
	if with <= 124 {
		t.Errorf("speedup with cache-share bonus = %.1f, want > 124 (superlinear)", with)
	}

	m.CacheShareBonus = 0
	base = Simulate(m, cfg, 1, tr)
	without := base / Simulate(m, cfg, 124, tr)
	if without > 124.5 {
		t.Errorf("speedup without bonus = %.1f, must not exceed thread count", without)
	}
}

func TestBandwidthCeiling(t *testing.T) {
	tr := uniformTrace(50000, Work{Issue: 1, Stall: 1000})
	cfg := Config{Kind: OpenMP, Policy: sched.Dynamic, Chunk: 100}
	m := KNF()
	m.CacheShareBonus = 0
	m.MemBandwidth = 2 // absurdly narrow: 2 stall-cycles serviced per cycle
	base := Simulate(m, cfg, 1, tr)
	sp := base / Simulate(m, cfg, 124, tr)
	if sp > 2.5 {
		t.Errorf("speedup %.1f exceeds what a bandwidth of 2 can sustain", sp)
	}
}

func TestRelaxedBeatsLockedInSim(t *testing.T) {
	m := KNF()
	g, err := gen.Mesh(gen.Scaled(gen.Suite()[6], 8)) // pwtk stand-in
	if err != nil {
		t.Fatal(err)
	}
	src := int32(g.NumVertices() / 2)
	cfg := Config{Kind: OpenMP, Policy: sched.Dynamic, Chunk: 32}
	locked := BFSTrace(m, g, src, NaturalOrder, BFSBlock, 32)
	relaxed := BFSTrace(m, g, src, NaturalOrder, BFSBlockRelaxed, 32)
	for _, th := range []int{11, 41, 121} {
		tl := Simulate(m, cfg, th, locked)
		tr := Simulate(m, cfg, th, relaxed)
		if tr >= tl {
			t.Errorf("t=%d: relaxed (%.0f) not faster than locked (%.0f)", th, tr, tl)
		}
	}
}

func TestBagSlowerThanBlockInSim(t *testing.T) {
	m := KNF()
	g, err := gen.Mesh(gen.Scaled(gen.Suite()[3], 8)) // inline_1 stand-in
	if err != nil {
		t.Fatal(err)
	}
	src := int32(g.NumVertices() / 2)
	block := BFSTrace(m, g, src, NaturalOrder, BFSBlockRelaxed, 32)
	bag := BFSTrace(m, g, src, NaturalOrder, BFSBag, 32)
	tb := Simulate(m, Config{Kind: OpenMP, Policy: sched.Dynamic, Chunk: 32}, 61, block)
	tg := Simulate(m, Config{Kind: Cilk, Chunk: BagGrain}, 61, bag)
	if tg <= tb {
		t.Errorf("bag (%.0f) not slower than block queue (%.0f) at 61 threads", tg, tb)
	}
}

func TestColoringTraceStructure(t *testing.T) {
	m := KNF()
	g := gen.RingOfCliques(100, 10)
	seq := ColoringTrace(m, g, NaturalOrder, 1)
	if len(seq.Phases) != 2 {
		t.Errorf("sequential coloring trace has %d phases, want 2 (no conflicts)", len(seq.Phases))
	}
	par := ColoringTrace(m, g, NaturalOrder, 64)
	if len(par.Phases) < 4 {
		t.Errorf("parallel coloring trace has %d phases, want ≥4 (conflict rounds)", len(par.Phases))
	}
	if par.Phases[0].Items == nil || len(par.Phases[0].Items) != g.NumVertices() {
		t.Error("round-1 tentative phase must cover every vertex")
	}
	if len(par.Phases[2].Items) >= len(par.Phases[0].Items) {
		t.Error("conflict round did not shrink")
	}
	// Shuffled ordering must cost strictly more stall time.
	shuf := ColoringTrace(m, g, ShuffledOrder, 1)
	if shuf.SerialTime() <= seq.SerialTime() {
		t.Error("shuffled ordering not more expensive than natural")
	}
}

func TestIrregularTraceScalesWithIter(t *testing.T) {
	m := KNF()
	g := gen.Grid2D(50, 50)
	t1 := IrregularTrace(m, g, NaturalOrder, 1)
	t10 := IrregularTrace(m, g, NaturalOrder, 10)
	w1 := t1.Phases[0].TotalWork()
	w10 := t10.Phases[0].TotalWork()
	if w10.FP < 9*w1.FP {
		t.Errorf("FP work did not scale ~10x: %v vs %v", w10.FP, w1.FP)
	}
	// Memory misses must NOT scale with iter (cache reuse), only the FP
	// latency component of Stall grows.
	missOnly1 := w1.Stall - (FPLatency-1)*w1.FP/m.FPPerOp
	missOnly10 := w10.Stall - (FPLatency-1)*w10.FP/m.FPPerOp
	if math.Abs(missOnly1-missOnly10) > 1e-6*missOnly1 {
		t.Errorf("miss traffic changed with iter: %v vs %v", missOnly1, missOnly10)
	}
}

func TestBFSTraceClaimsConserveVertices(t *testing.T) {
	m := KNF()
	g := gen.Grid2D(40, 40)
	tr := BFSTrace(m, g, 0, NaturalOrder, BFSBlockRelaxed, 32)
	// Phases' item counts must sum to the reachable vertex count, and per
	// phase match the level widths.
	widths := g.LevelWidths(0)
	if len(tr.Phases) != len(widths) {
		t.Fatalf("%d phases vs %d levels", len(tr.Phases), len(widths))
	}
	total := 0
	for l, p := range tr.Phases {
		if int64(len(p.Items)) != widths[l] {
			t.Errorf("phase %d has %d items, want %d", l, len(p.Items), widths[l])
		}
		total += len(p.Items)
	}
	if total != g.NumVertices() {
		t.Errorf("trace covers %d vertices of %d", total, g.NumVertices())
	}
}

func TestOrderingString(t *testing.T) {
	if NaturalOrder.String() != "natural" || ShuffledOrder.String() != "shuffled" {
		t.Error("ordering names wrong")
	}
	if BFSBlock.String() != "Block" || BFSBag.String() != "Bag-relaxed" {
		t.Error("variant names wrong")
	}
}

func TestMachineJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveMachine(&buf, KNF()); err != nil {
		t.Fatal(err)
	}
	m, err := LoadMachine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, KNF()) {
		t.Errorf("round trip changed the machine: %+v", m)
	}
}

func TestLoadMachineRejectsBad(t *testing.T) {
	cases := map[string]string{
		"not json":       "{",
		"unknown field":  `{"Name":"x","Cores":4,"SMTWays":2,"Bogus":1}`,
		"zero cores":     `{"Name":"x","Cores":0,"SMTWays":2}`,
		"zero smt":       `{"Name":"x","Cores":4,"SMTWays":0}`,
		"negative costs": `{"Name":"x","Cores":4,"SMTWays":2,"IssuePerItem":-1}`,
		"miss inversion": `{"Name":"x","Cores":4,"SMTWays":2,"MissPerEdgeNatural":0.5,"MissPerEdgeShuffle":0.1}`,
	}
	for name, in := range cases {
		if _, err := LoadMachine(strings.NewReader(in)); err == nil {
			t.Errorf("case %q: error expected", name)
		}
	}
}

func TestBuiltinMachinesValid(t *testing.T) {
	for _, m := range []*Machine{KNF(), HostXeon(), KNC()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	knc := KNC()
	if knc.Cores <= 50 {
		t.Errorf("KNC must anticipate 'more than 50 cores'; has %d", knc.Cores)
	}
	if knc.MaxThreads() <= KNF().MaxThreads() {
		t.Error("KNC must expose more hardware threads than KNF")
	}
}
