// Package mic is a deterministic performance simulator of a many-core SMT
// machine in the mold of the paper's Knights Ferry prototype (31 usable
// in-order cores × 4-way SMT) and its dual-Xeon host (12 cores × 2-way HT).
//
// The paper's platform was confidential prototype silicon ("no absolute
// numbers will be quoted"); what the paper established — and what this
// simulator reproduces — are scalability *shapes*, which are governed by
// four first-order mechanisms, all modeled here:
//
//  1. SMT latency hiding: an in-order core's issue slots sit idle during
//     memory stalls; co-resident hardware threads fill them. A thread's
//     chunk with issue cycles I, FP cycles F and overlappable stall cycles
//     S on a core running k active threads costs
//     max(I+F+S, k·(I+F)) cycles —
//     latency-bound until the core's issue/FP bandwidth saturates.
//  2. Shared-cache constructive interference: co-resident threads fetch
//     lines into the shared cache for each other, so per-thread stalls
//     shrink slightly with occupancy (the source of the paper's super-
//     linear 153× coloring speedup on shuffled graphs at 121 threads).
//  3. Scheduling overhead: per-chunk costs differ per runtime (an atomic
//     fetch-and-add for OpenMP dynamic, task spawn/steal for Cilk and TBB)
//     and grow with contention as thread count rises.
//  4. Load imbalance and limited parallelism: chunks are assigned to
//     threads by the actual policy (static round-robin, dynamic greedy,
//     guided shrinking, recursive splitting), so narrow BFS levels and
//     high-degree hub vertices produce exactly the imbalance the paper's
//     Section III-C model predicts.
//
// Simulated time is measured in abstract cycles; speedups (the paper's only
// reported metric) are ratios of simulated times.
package mic

import "micgraph/internal/fault"

// Machine describes the simulated hardware and its cost parameters. All
// costs are in abstract cycles.
type Machine struct {
	Name    string
	Cores   int // physical cores available to the runtime
	SMTWays int // hardware threads per core

	// Kernel cost building blocks.
	IssuePerItem   float64 // issue cycles to dequeue/bookkeep one work item
	IssuePerEdge   float64 // issue cycles per neighbor touched
	FPPerOp        float64 // FP-unit cycles per floating-point operation
	StallPerLine   float64 // overlappable stall cycles per cache line missed
	AtomicCost     float64 // cycles for an uncontended atomic RMW
	AtomicContPerT float64 // extra atomic cycles per concurrent thread
	AtomicContSq   float64 // extra atomic cycles per thread², the regime
	// where every hardware thread hammers the same lines across the ring

	// Locality: expected misses per neighbor access under the two vertex
	// orderings the paper evaluates (natural FEM ordering vs random
	// shuffle, §V-B).
	MissPerEdgeNatural float64
	MissPerEdgeShuffle float64

	// SMT shared-cache constructive interference: stalls shrink by
	// 1/(1 + CacheShareBonus·(k-1)) with k co-resident threads.
	CacheShareBonus float64

	// Aggregate memory bandwidth: at most this many stall-cycles worth of
	// memory traffic can be serviced per cycle machine-wide.
	MemBandwidth float64

	// System noise: core 0 also runs the card's OS services, slowing its
	// hardware threads by this fraction. Dynamic policies route around it;
	// static assignments cannot — one of the reasons the paper's dynamic
	// policy wins past 51 threads.
	NoiseCore0 float64

	// Work-stealing runtime interference: Cilk/TBB scheduler activity
	// (steal attempts, deque traffic, task bookkeeping) costs each work
	// item an extra tax·t² per-item issue overhead at t threads. This is
	// the dominant reason the paper's Cilk coloring peaks at ~32 and TBB
	// at ~45 while OpenMP reaches 72.
	CilkItemTaxSq float64
	TBBItemTaxSq  float64

	// The paper observes "a performance issue in the OpenMP runtime"
	// when the host is fully subscribed (23-24 threads); this penalty
	// multiplies OpenMP phase times at t >= MaxThreads()-1.
	OMPOversubPenalty float64

	// Per-runtime chunk overheads.
	StaticChunkCost  float64 // loop bookkeeping per static chunk
	DynamicGrabCost  float64 // fetch-and-add per dynamic/guided chunk
	SpawnCost        float64 // task creation+join per work-stealing leaf
	StealCost        float64 // extra cost when a leaf runs on a non-owner
	WSContendPerT    float64 // per-chunk deque/steal contention per thread
	CilkRuntimeScale float64 // multiplier on spawn/steal for the Cilk engine
	TBBRuntimeScale  float64 // multiplier on spawn/steal for the TBB engine

	// Phase barrier: BarrierBase + BarrierPerThread·t cycles per barrier.
	BarrierBase      float64
	BarrierPerThread float64

	// CoreSlowdown perturbs individual cores: entry c slows every hardware
	// thread on core c by that fraction (0.5 = 50% slower), on top of the
	// NoiseCore0 model. Nil or short slices mean no perturbation. Populate
	// with WithStragglers for deterministic fault-injection experiments.
	CoreSlowdown []float64
}

// coreSlowdown returns the straggler fraction for a core (0 when none).
func (m *Machine) coreSlowdown(core int) float64 {
	if core < len(m.CoreSlowdown) {
		return m.CoreSlowdown[core]
	}
	return 0
}

// WithStragglers returns a copy of m whose cores have been perturbed by the
// fault injector: for each core, site "mic/straggler" decides whether that
// core straggles, and the site's parameter (default 0.5) sets the slowdown
// fraction. With a nil injector or an unarmed site the copy is unperturbed.
// Deterministic: the same injector seed always slows the same cores.
func (m *Machine) WithStragglers(in *fault.Injector) *Machine {
	out := *m
	slow := in.Param("mic/straggler", 0.5)
	var sd []float64
	for core := 0; core < m.Cores; core++ {
		if in.Fire("mic/straggler") {
			if sd == nil {
				sd = make([]float64, m.Cores)
			}
			sd[core] = slow
		}
	}
	out.CoreSlowdown = sd
	return &out
}

// MaxThreads returns the hardware thread count (cores × SMT ways).
func (m *Machine) MaxThreads() int { return m.Cores * m.SMTWays }

// Coresidency returns how many of t threads share the core hosting thread
// i, under round-robin placement (thread i on core i mod Cores) — the
// affinity KNF's offload runtime uses.
func (m *Machine) Coresidency(t, i int) int {
	if t <= m.Cores {
		return 1
	}
	core := i % m.Cores
	k := t / m.Cores
	if core < t%m.Cores {
		k++
	}
	return k
}

// KNF returns the Knights Ferry configuration: 31 usable cores ("32 are on
// the chip but one is reserved by the system"), 4-way SMT, in-order cores
// with high memory latency relative to the host, and a wide GDDR5 memory
// system that rewards many outstanding misses.
func KNF() *Machine {
	return &Machine{
		Name:    "Intel MIC (KNF)",
		Cores:   31,
		SMTWays: 4,

		IssuePerItem: 12,
		IssuePerEdge: 4,
		FPPerOp:      1,   // pipelined: 1 cycle occupancy, FPLatency-1 exposed as stall
		StallPerLine: 110, // GDDR5 across the ring, in-order core exposed

		AtomicCost:     20,
		AtomicContPerT: 0.25,
		AtomicContSq:   0.01,

		MissPerEdgeNatural: 0.055, // FEM natural order: mostly L2 hits
		MissPerEdgeShuffle: 1.05,  // shuffled: nearly every access misses

		CacheShareBonus: 0.095,
		MemBandwidth:    130,

		NoiseCore0:        0.12,
		CilkItemTaxSq:     0.090,
		TBBItemTaxSq:      0.030,
		OMPOversubPenalty: 0,

		StaticChunkCost:  6,
		DynamicGrabCost:  26,
		SpawnCost:        150,
		StealCost:        300,
		WSContendPerT:    0,
		CilkRuntimeScale: 2.6,
		TBBRuntimeScale:  1.0,

		BarrierBase:      600,
		BarrierPerThread: 28,
	}
}

// HostXeon returns the host configuration the paper uses for Figure 4(d):
// dual Xeon X5680 (12 cores, 2-way hyper-threading), out-of-order cores
// that hide much of the memory latency themselves, lower miss penalties,
// and cheaper synchronisation.
func HostXeon() *Machine {
	return &Machine{
		Name:    "2x Xeon X5680 host",
		Cores:   12,
		SMTWays: 2,

		IssuePerItem: 6,
		IssuePerEdge: 2,
		FPPerOp:      0.5, // superscalar out-of-order core
		StallPerLine: 45,  // out-of-order window hides much of DRAM latency

		AtomicCost:     18,
		AtomicContPerT: 1.2,
		AtomicContSq:   0.02,

		MissPerEdgeNatural: 0.12,
		MissPerEdgeShuffle: 0.9,

		CacheShareBonus: 0.05,
		MemBandwidth:    32,

		NoiseCore0:        0.08,
		CilkItemTaxSq:     0.60,
		TBBItemTaxSq:      0.25,
		OMPOversubPenalty: 0.35,

		StaticChunkCost:  3,
		DynamicGrabCost:  14,
		SpawnCost:        60,
		StealCost:        120,
		WSContendPerT:    0,
		CilkRuntimeScale: 1.3,
		TBBRuntimeScale:  1.0,

		BarrierBase:      250,
		BarrierPerThread: 40,
	}
}
