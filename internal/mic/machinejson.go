package mic

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON (de)serialisation for Machine, so users can explore their own
// hardware hypotheses with `micbench -machine my.json` without recompiling
// — the natural workflow for a what-if simulator.

// SaveMachine writes m as indented JSON.
func SaveMachine(w io.Writer, m *Machine) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// LoadMachine reads a Machine from JSON and validates it.
func LoadMachine(r io.Reader) (*Machine, error) {
	var m Machine
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("mic: decoding machine: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Validate checks that the machine description is physically sensible.
func (m *Machine) Validate() error {
	switch {
	case m.Cores < 1:
		return fmt.Errorf("mic: machine %q has %d cores", m.Name, m.Cores)
	case m.SMTWays < 1:
		return fmt.Errorf("mic: machine %q has %d SMT ways", m.Name, m.SMTWays)
	case m.IssuePerItem < 0 || m.IssuePerEdge < 0 || m.FPPerOp < 0 || m.StallPerLine < 0:
		return fmt.Errorf("mic: machine %q has negative kernel costs", m.Name)
	case m.AtomicCost < 0 || m.AtomicContPerT < 0 || m.AtomicContSq < 0:
		return fmt.Errorf("mic: machine %q has negative atomic costs", m.Name)
	case m.MissPerEdgeNatural < 0 || m.MissPerEdgeShuffle < m.MissPerEdgeNatural:
		return fmt.Errorf("mic: machine %q: shuffled miss rate must be >= natural", m.Name)
	case m.CacheShareBonus < 0 || m.MemBandwidth < 0:
		return fmt.Errorf("mic: machine %q has negative memory parameters", m.Name)
	case m.BarrierBase < 0 || m.BarrierPerThread < 0:
		return fmt.Errorf("mic: machine %q has negative barrier costs", m.Name)
	}
	for c, sd := range m.CoreSlowdown {
		if sd < 0 {
			return fmt.Errorf("mic: machine %q: core %d slowdown is negative", m.Name, c)
		}
	}
	return nil
}

// KNC returns a projection of the Knights Corner production part the paper
// anticipates ("the final commercial design, codenamed Knights Corner, will
// feature more than 50 cores"): 60 usable cores × 4-way SMT on the same
// microarchitectural assumptions as KNF, with proportionally higher
// aggregate memory bandwidth and slightly higher ring latencies (a longer
// ring). Used by the extra-knc forward-projection experiment.
func KNC() *Machine {
	m := KNF()
	m.Name = "Intel MIC (KNC, projected)"
	m.Cores = 60
	m.StallPerLine = 125 // longer ring
	m.MemBandwidth = 250 // GDDR5 scaled with the larger part
	m.BarrierPerThread = 30
	m.AtomicContPerT = 0.3 // same ring protocol, more hops amortised
	return m
}
