package mic

import (
	"bytes"
	"testing"

	"micgraph/internal/fault"
	"micgraph/internal/gen"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

// TestSimulateObservedMatchesSimulate: attaching telemetry sinks must not
// change the simulated time at all — observation is passive.
func TestSimulateObservedMatchesSimulate(t *testing.T) {
	m := KNF()
	g := gen.RingOfCliques(50, 8)
	tr := ColoringTrace(m, g, NaturalOrder, 61)
	for _, cfg := range []Config{
		{Kind: OpenMP, Policy: sched.Dynamic, Chunk: 100},
		{Kind: OpenMP, Policy: sched.Static, Chunk: 100},
		{Kind: Cilk, Chunk: 64},
		{Kind: TBB, Partitioner: sched.SimplePartitioner, Chunk: 100},
	} {
		plain := Simulate(m, cfg, 61, tr)
		tl := telemetry.NewTimeline(0)
		var st SimStats
		observed := SimulateObserved(m, cfg, 61, tr, tl, &st)
		if plain != observed {
			t.Errorf("%v: observed run diverged: %v vs %v", cfg, observed, plain)
		}
		if tl.Len() == 0 {
			t.Errorf("%v: no timeline events emitted", cfg)
		}
		if st.Phases != len(tr.Phases) {
			t.Errorf("%v: stats phases = %d, want %d", cfg, st.Phases, len(tr.Phases))
		}
		chunkEvents := 0
		for _, e := range tl.Events() {
			if e.Cat == "chunk" {
				chunkEvents++
			}
		}
		if chunkEvents != st.Chunks {
			t.Errorf("%v: %d chunk events vs %d counted chunks", cfg, chunkEvents, st.Chunks)
		}
	}
}

func exportTrace(t *testing.T, m *Machine, cfg Config, threads int, tr *Trace) ([]byte, SimStats) {
	t.Helper()
	tl := telemetry.NewTimeline(0)
	var st SimStats
	SimulateObserved(m, cfg, threads, tr, tl, &st)
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), st
}

// TestTraceExportDeterministic: for a fixed machine, config and trace the
// exported Chrome trace JSON must be byte-identical across runs — including
// on a fault-injected machine with straggling cores.
func TestTraceExportDeterministic(t *testing.T) {
	g := gen.RingOfCliques(50, 8)
	base := KNF()

	straggled := KNF().WithStragglers(fault.New(7).
		Enable("mic/straggler", 0.5).
		SetParam("mic/straggler", 0.5))

	for _, tc := range []struct {
		name string
		m    *Machine
	}{
		{"clean", base},
		{"stragglers", straggled},
	} {
		tr := ColoringTrace(tc.m, g, NaturalOrder, 61)
		cfg := Config{Kind: OpenMP, Policy: sched.Dynamic, Chunk: 100}
		a, stA := exportTrace(t, tc.m, cfg, 61, tr)
		b, stB := exportTrace(t, tc.m, cfg, 61, tr)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: trace export not byte-identical across runs", tc.name)
		}
		if stA != stB {
			t.Errorf("%s: stats diverged: %+v vs %+v", tc.name, stA, stB)
		}
	}
}

// TestStragglerChunksObserved: a machine with injected stragglers must
// surface them in both the stats and the per-chunk events.
func TestStragglerChunksObserved(t *testing.T) {
	g := gen.RingOfCliques(50, 8)
	m := KNF().WithStragglers(fault.New(7).
		Enable("mic/straggler", 0.5).
		SetParam("mic/straggler", 0.5))
	tr := ColoringTrace(m, g, NaturalOrder, 61)
	tl := telemetry.NewTimeline(0)
	var st SimStats
	SimulateObserved(m, Config{Kind: OpenMP, Policy: sched.Dynamic, Chunk: 100}, 61, tr, tl, &st)
	if st.StraggledChunks == 0 {
		t.Fatal("no straggled chunks recorded on a machine with straggling cores")
	}
	marked := 0
	for _, e := range tl.Events() {
		if e.Straggler > 0 {
			marked++
		}
	}
	if marked != st.StraggledChunks {
		t.Errorf("%d straggler-marked events vs %d counted", marked, st.StraggledChunks)
	}
}

// TestSimStatsBarrier: multi-phase traces on multiple threads accumulate
// barrier time.
func TestSimStatsBarrier(t *testing.T) {
	m := KNF()
	g := gen.RingOfCliques(50, 8)
	tr := ColoringTrace(m, g, NaturalOrder, 61)
	var st SimStats
	SimulateObserved(m, Config{Kind: OpenMP, Policy: sched.Dynamic, Chunk: 100}, 61, tr, nil, &st)
	if st.BarrierCycles <= 0 {
		t.Errorf("barrier cycles = %v, want > 0 for %d phases at t=61", st.BarrierCycles, st.Phases)
	}
	if st.Chunks <= 0 || st.StallCycles <= 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}
