package mic

import (
	"container/heap"
	"fmt"

	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

// RuntimeKind selects which runtime engine's scheduling behaviour and
// overhead profile the simulator applies.
type RuntimeKind int

const (
	// OpenMP: chunked loop scheduling per sched.Policy.
	OpenMP RuntimeKind = iota
	// Cilk: recursive binary splitting to a grain, work stealing.
	Cilk
	// TBB: blocked range with a partitioner, work stealing.
	TBB
)

// String names the runtime as in the paper's figure legends.
func (k RuntimeKind) String() string {
	switch k {
	case OpenMP:
		return "OpenMP"
	case Cilk:
		return "CilkPlus"
	case TBB:
		return "TBB"
	}
	return fmt.Sprintf("RuntimeKind(%d)", int(k))
}

// Config is the scheduling configuration of one simulated run.
type Config struct {
	Kind        RuntimeKind
	Policy      sched.Policy      // OpenMP only
	Partitioner sched.Partitioner // TBB only
	Chunk       int               // OpenMP chunk size / Cilk grain / TBB grain
}

// String formats the configuration like the paper's legends
// ("OpenMP-dynamic", "TBB-simple", "CilkPlus").
func (c Config) String() string {
	switch c.Kind {
	case OpenMP:
		return "OpenMP-" + c.Policy.String()
	case TBB:
		return "TBB-" + c.Partitioner.String()
	default:
		return "CilkPlus"
	}
}

// chunk is a contiguous range of phase items with an owner hint.
type chunk struct {
	lo, hi int
	owner  int // thread expected to run it; mismatch models a steal
}

// SimStats aggregates what the simulator observed over one run: how the
// phases were chunked, how often chunks executed away from their owner
// thread, how much memory-stall time the machine served, and which
// machine-wide bounds (bandwidth ceiling, chunk-counter serialisation)
// actually decided a phase's length.
type SimStats struct {
	Phases            int     `json:"phases"`
	Chunks            int     `json:"chunks"`
	Steals            int     `json:"steals,omitempty"`
	StallCycles       float64 `json:"stall_cycles"`
	BWThrottledPhases int     `json:"bw_throttled_phases,omitempty"`
	SerializedPhases  int     `json:"serialized_phases,omitempty"`
	BarrierCycles     float64 `json:"barrier_cycles,omitempty"`
	StraggledChunks   int     `json:"straggled_chunks,omitempty"`
}

// Simulate plays tr on machine m with t threads under cfg and returns the
// simulated execution time in cycles. Deterministic.
func Simulate(m *Machine, cfg Config, t int, tr *Trace) float64 {
	return SimulateObserved(m, cfg, t, tr, nil, nil)
}

// SimulateObserved is Simulate with observability: per-chunk execution
// intervals (and machine-wide bandwidth/serialisation/barrier effects) are
// emitted onto tl, and aggregate counts accumulate into st. Either sink may
// be nil to disable it; with both nil the cost model is byte-for-byte
// Simulate. Output on tl is deterministic: a fixed (machine, config,
// threads, trace) tuple always yields the same event sequence.
func SimulateObserved(m *Machine, cfg Config, t int, tr *Trace, tl *telemetry.Timeline, st *SimStats) float64 {
	if t < 1 {
		panic(fmt.Sprintf("mic: Simulate with %d threads", t))
	}
	var total float64
	for i := range tr.Phases {
		total += simulatePhase(m, cfg, t, &tr.Phases[i], total, tl, st)
	}
	return total
}

// chunkCost is the cost model's verdict on one chunk, with the detail the
// timeline wants to show.
type chunkCost struct {
	total     float64
	issue     float64 // issue cycles incl. per-chunk overhead and steal penalty
	stall     float64 // effective memory-stall cycles after SMT sharing
	stolen    bool    // work-stealing runtime ran it away from its owner
	straggler float64 // straggler slowdown fraction of the hosting core
}

// simulatePhase runs one parallel loop: partition items into chunks per the
// policy, assign chunks to threads (statically or greedily), apply the SMT
// core-sharing cost model, cap by memory bandwidth, add the barrier.
// start is the simulation time at phase entry (for timeline timestamps);
// tl and st are optional observation sinks (see SimulateObserved).
func simulatePhase(m *Machine, cfg Config, t int, p *Phase, start float64, tl *telemetry.Timeline, st *SimStats) float64 {
	if st != nil {
		st.Phases++
	}
	n := len(p.Items)
	if n == 0 {
		return p.Seq
	}

	// Prefix sums for O(1) chunk aggregation.
	prefix := make([]Work, n+1)
	for i, it := range p.Items {
		prefix[i+1] = prefix[i]
		prefix[i+1].Add(it)
	}
	sum := func(lo, hi int) Work {
		w := prefix[hi]
		w.Issue -= prefix[lo].Issue
		w.FP -= prefix[lo].FP
		w.Stall -= prefix[lo].Stall
		w.Atomics -= prefix[lo].Atomics
		return w
	}

	plan := planChunks(m, cfg, t, n)

	atomicCost := m.AtomicCost + m.AtomicContPerT*float64(t-1) + m.AtomicContSq*float64(t)*float64(t)
	// Dynamic and guided chunk grabs are fetch-adds on one hot counter:
	// they pay the same contention as any other atomic.
	if cfg.Kind == OpenMP && cfg.Policy != sched.Static && t > 1 {
		plan.perChunkIssue += atomicCost
	}
	itemTax := plan.taxScale * runtimeItemTax(m, cfg) * float64(t) * float64(t)
	clocks := make([]float64, t)
	var stallServed float64

	cost := func(c chunk, thread int) chunkCost {
		w := sum(c.lo, c.hi)
		k := m.Coresidency(t, thread)
		issue := w.Issue + plan.perChunkIssue
		stolen := false
		if thread != c.owner {
			issue += stealPenalty(m, cfg)
			stolen = cfg.Kind != OpenMP // FCFS reshuffles aren't thefts
		}
		sEff := w.Stall / (1 + m.CacheShareBonus*float64(k-1))
		stallServed += sEff
		latency := issue + w.FP + sEff
		total := latency
		if saturated := float64(k) * (issue + w.FP); saturated > total {
			total = saturated
		}
		// Scheduler interference and atomic RMWs are contention/waiting,
		// not issue work: they extend the thread's wall time but do not
		// occupy core slots, so they sit outside the saturation max.
		total += itemTax*float64(c.hi-c.lo) + w.Atomics*atomicCost
		// The last core also runs the card OS; its threads run slower.
		// With t < Cores no thread lands there, so lightly loaded runs
		// (and the 1-thread baseline) are unaffected.
		if thread%m.Cores == m.Cores-1 && t >= m.Cores {
			total *= 1 + m.NoiseCore0
		}
		// Injected straggler cores (fault experiments) slow every thread
		// they host, regardless of occupancy.
		sd := m.coreSlowdown(thread % m.Cores)
		if sd > 0 {
			total *= 1 + sd
		}
		return chunkCost{total: total, issue: issue, stall: sEff, stolen: stolen, straggler: sd}
	}
	observe := func(c chunk, thread int, at float64, cc chunkCost) {
		if st != nil {
			if cc.stolen {
				st.Steals++
			}
			if cc.straggler > 0 {
				st.StraggledChunks++
			}
		}
		if tl != nil {
			tl.Emit(telemetry.Event{
				Name: p.Name, Cat: "chunk",
				Start: start + at, Dur: cc.total,
				Core: thread % m.Cores, Thread: thread,
				Lo: c.lo, Hi: c.hi,
				Stolen: cc.stolen, Straggler: cc.straggler,
				Issue: cc.issue, Stall: cc.stall,
			})
		}
	}

	if plan.greedy {
		// First-come first-served: each chunk goes to the earliest-free
		// thread (ties broken by thread id for determinism).
		h := newClockHeap(t)
		for _, c := range plan.chunks {
			e := heap.Pop(h).(clockEntry)
			cc := cost(c, e.thread)
			observe(c, e.thread, e.clock, cc)
			e.clock += cc.total
			heap.Push(h, e)
		}
		for h.Len() > 0 {
			e := heap.Pop(h).(clockEntry)
			clocks[e.thread] = e.clock
		}
	} else {
		for _, c := range plan.chunks {
			cc := cost(c, c.owner)
			observe(c, c.owner, clocks[c.owner], cc)
			clocks[c.owner] += cc.total
		}
	}

	phaseTime := 0.0
	for _, c := range clocks {
		if c > phaseTime {
			phaseTime = c
		}
	}
	if st != nil {
		st.Chunks += len(plan.chunks)
		st.StallCycles += stallServed
	}
	// Aggregate bandwidth ceiling: the memory system can retire at most
	// MemBandwidth stall-cycles per cycle machine-wide.
	if m.MemBandwidth > 0 {
		if bw := stallServed / m.MemBandwidth; bw > phaseTime {
			if tl != nil {
				tl.Emit(telemetry.Event{
					Name: p.Name + " bandwidth ceiling", Cat: "bandwidth",
					Start: start + phaseTime, Dur: bw - phaseTime,
					Core: telemetry.MachineLane,
				})
			}
			if st != nil {
				st.BWThrottledPhases++
			}
			phaseTime = bw
		}
	}
	// The shared chunk counter serialises grabs machine-wide: a phase can
	// never finish faster than one line-bounce per chunk, and the bounce
	// latency grows with the number of contending threads on the ring.
	if cfg.Kind == OpenMP && cfg.Policy != sched.Static && t > 1 {
		if ser := float64(len(plan.chunks)) * (m.AtomicCost + m.AtomicContPerT*float64(t)); ser > phaseTime {
			if tl != nil {
				tl.Emit(telemetry.Event{
					Name: p.Name + " chunk-counter serialisation", Cat: "serialize",
					Start: start + phaseTime, Dur: ser - phaseTime,
					Core: telemetry.MachineLane,
				})
			}
			if st != nil {
				st.SerializedPhases++
			}
			phaseTime = ser
		}
	}
	if t > 1 {
		b := m.BarrierBase + m.BarrierPerThread*float64(t)
		if tl != nil {
			tl.Emit(telemetry.Event{
				Name: "barrier", Cat: "barrier",
				Start: start + phaseTime, Dur: b,
				Core: telemetry.MachineLane,
			})
		}
		if st != nil {
			st.BarrierCycles += b
		}
		phaseTime += b
	}
	if cfg.Kind == OpenMP && m.OMPOversubPenalty > 0 && t >= m.MaxThreads()-1 {
		phaseTime *= 1 + m.OMPOversubPenalty
	}
	return phaseTime + p.Seq
}

// runtimeItemTax returns the per-item, per-t² scheduler interference of the
// configured runtime (zero for OpenMP's lean static loops).
func runtimeItemTax(m *Machine, cfg Config) float64 {
	switch cfg.Kind {
	case Cilk:
		return m.CilkItemTaxSq
	case TBB:
		return m.TBBItemTaxSq
	}
	return 0
}

// stealPenalty is the extra cost charged when a chunk executes away from
// its owner thread.
func stealPenalty(m *Machine, cfg Config) float64 {
	switch cfg.Kind {
	case Cilk:
		return m.StealCost * m.CilkRuntimeScale
	case TBB:
		return m.StealCost * m.TBBRuntimeScale
	default:
		return 0
	}
}

// plan describes how a phase's items are chunked and assigned.
type plan struct {
	chunks        []chunk
	perChunkIssue float64
	greedy        bool    // FCFS assignment instead of fixed owners
	taxScale      float64 // multiplier on the runtime's per-item tax
}

// planChunks builds the chunk plan for a phase of n items under cfg.
func planChunks(m *Machine, cfg Config, t, n int) plan {
	wsOver := func(scale float64) float64 {
		return scale * (2*m.SpawnCost + m.WSContendPerT*float64(t))
	}
	switch cfg.Kind {
	case OpenMP:
		switch cfg.Policy {
		case sched.Static:
			return plan{staticChunks(t, n, cfg.Chunk), m.StaticChunkCost, false, 1}
		case sched.Dynamic:
			size := cfg.Chunk
			if size <= 0 {
				size = 1
			}
			return plan{staticChunks(t, n, size), m.DynamicGrabCost, true, 1}
		case sched.Guided:
			return plan{guidedChunks(t, n, cfg.Chunk), m.DynamicGrabCost, true, 1}
		}
	case Cilk:
		grain := cfg.Chunk
		if grain <= 0 {
			grain = sched.DefaultGrain(n, t)
		}
		return plan{splitChunks(t, n, grain), wsOver(m.CilkRuntimeScale), true, 1}
	case TBB:
		grain := cfg.Chunk
		if grain <= 0 {
			grain = 1
		}
		switch cfg.Partitioner {
		case sched.SimplePartitioner:
			return plan{splitChunks(t, n, grain), wsOver(m.TBBRuntimeScale), true, 1}
		case sched.AutoPartitioner:
			// Coarse subranges that split only on steal events: fewer,
			// larger chunks, and extra scheduler traffic when the late
			// splits finally happen.
			auto := n / (3 * t)
			if auto < grain {
				auto = grain
			}
			return plan{splitChunks(t, n, auto), wsOver(m.TBBRuntimeScale), true, 1.15}
		case sched.AffinityPartitioner:
			// Fixed replayed assignment: 4 blocks per thread, round-robin,
			// dispatched as tasks but never rebalanced, plus the replay
			// bookkeeping on every touched element.
			size := (n + 4*t - 1) / (4 * t)
			if size < grain {
				size = grain
			}
			return plan{staticChunks(t, n, size), wsOver(m.TBBRuntimeScale), false, 1.5}
		}
	}
	panic(fmt.Sprintf("mic: unsupported config %+v", cfg))
}

// staticChunks: fixed size, owner = chunk index mod t (round-robin); with
// size <= 0, one contiguous block per thread.
func staticChunks(t, n, size int) []chunk {
	var out []chunk
	if size <= 0 {
		for w := 0; w < t; w++ {
			lo, hi := n*w/t, n*(w+1)/t
			if lo < hi {
				out = append(out, chunk{lo, hi, w})
			}
		}
		return out
	}
	for i, lo := 0, 0; lo < n; i, lo = i+1, lo+size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, chunk{lo, hi, i % t})
	}
	return out
}

// guidedChunks: size = max(min, remaining/t), shrinking geometrically.
func guidedChunks(t, n, minChunk int) []chunk {
	if minChunk <= 0 {
		minChunk = 1
	}
	var out []chunk
	lo := 0
	i := 0
	for lo < n {
		size := (n - lo) / t
		if size < minChunk {
			size = minChunk
		}
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, chunk{lo, hi, i % t})
		lo = hi
		i++
	}
	return out
}

// splitChunks: leaves of the recursive binary split used by cilk_for and
// tbb simple partitioner.
func splitChunks(t, n, grain int) []chunk {
	var out []chunk
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo <= grain {
			out = append(out, chunk{lo: lo, hi: hi})
			return
		}
		mid := lo + (hi-lo)/2
		rec(lo, mid)
		rec(mid, hi)
	}
	rec(0, n)
	for i := range out {
		out[i].owner = i % t
	}
	return out
}

// clockHeap is a min-heap of thread clocks with deterministic tie-breaking.
type clockEntry struct {
	clock  float64
	thread int
}

type clockHeap []clockEntry

func newClockHeap(t int) *clockHeap {
	h := make(clockHeap, t)
	for i := range h {
		h[i] = clockEntry{0, i}
	}
	heap.Init(&h)
	return &h
}

func (h clockHeap) Len() int { return len(h) }
func (h clockHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].thread < h[j].thread
}
func (h clockHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *clockHeap) Push(x any)   { *h = append(*h, x.(clockEntry)) }
func (h *clockHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
