//go:build !race

package kerneltest

// RaceEnabled is false in plain builds; see race_on.go.
const RaceEnabled = false
