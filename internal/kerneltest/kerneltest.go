// Package kerneltest is the differential-oracle tier for the optimized
// graph kernels: every parallel variant (BFS block/TLS/bag/hybrid,
// speculative coloring, connected components) is cross-checked against the
// sequential reference on a shared corpus of seeded random and pathological
// graphs — stars, chains, disconnected forests, zero-degree vertices —
// the shapes where frontier bookkeeping, conflict detection, and the
// direction-optimizing switch go wrong first.
//
// The helpers here are also imported by the kernel packages' own external
// tests, so the corpus and the comparison discipline are defined exactly
// once. Companion alloc-regression tests in this package pin the steady
// state of the pooled Scratch paths to zero allocations per run.
package kerneltest

import (
	"fmt"
	"testing"

	"micgraph/internal/bfs"
	"micgraph/internal/coloring"
	"micgraph/internal/components"
	"micgraph/internal/gen"
	"micgraph/internal/graph"
)

// Named is one corpus entry: a deterministic graph and its label.
type Named struct {
	Name string
	G    *graph.Graph
}

// Star returns a star on k+1 vertices: center 0, leaves 1..k.
func Star(k int) *graph.Graph {
	edges := make([]graph.Edge, 0, k)
	for i := 1; i <= k; i++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(i)})
	}
	return graph.MustFromEdges(k+1, edges)
}

// DoubleStar returns two stars of k leaves each whose centers are joined
// by a bridge edge — a worst case for the direction switch, because the
// frontier edge count collapses and explodes on consecutive levels.
func DoubleStar(k int) *graph.Graph {
	n := 2*k + 2
	edges := make([]graph.Edge, 0, 2*k+1)
	c2 := int32(k + 1)
	for i := 1; i <= k; i++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(i)})
		edges = append(edges, graph.Edge{U: c2, V: c2 + int32(i)})
	}
	edges = append(edges, graph.Edge{U: 0, V: c2})
	return graph.MustFromEdges(n, edges)
}

// Disconnected returns f disjoint chains of length l each.
func Disconnected(f, l int) *graph.Graph {
	n := f * l
	var edges []graph.Edge
	for c := 0; c < f; c++ {
		base := int32(c * l)
		for i := 0; i < l-1; i++ {
			edges = append(edges, graph.Edge{U: base + int32(i), V: base + int32(i) + 1})
		}
	}
	return graph.MustFromEdges(n, edges)
}

// WithIsolated returns an Erdős–Rényi graph on the first n vertices of a
// vertex set padded with iso zero-degree vertices at the top of the id
// range (they exercise the unreachable/zero-width paths of every kernel).
func WithIsolated(n, m, iso int, seed uint64) *graph.Graph {
	core := gen.ErdosRenyi(n, m, seed)
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		for _, w := range core.Adj(int32(v)) {
			if int32(v) < w {
				edges = append(edges, graph.Edge{U: int32(v), V: w})
			}
		}
	}
	return graph.MustFromEdges(n+iso, edges)
}

// Corpus returns the shared seeded graph set: ≥20 deterministic graphs
// spanning the pathological shapes named above plus random sparse/dense
// instances. Every call rebuilds the graphs, so tests may not mutate them
// in ways that outlive a run anyway (CSR arrays are treated as read-only
// by all kernels).
func Corpus() []Named {
	out := []Named{
		{"single-vertex", graph.MustFromEdges(1, nil)},
		{"two-isolated", graph.MustFromEdges(2, nil)},
		{"single-edge", graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}})},
		{"chain-64", gen.Chain(64)},
		{"chain-257", gen.Chain(257)},
		{"star-63", Star(63)},
		{"star-500", Star(500)},
		{"double-star-40", DoubleStar(40)},
		{"complete-24", gen.Complete(24)},
		{"complete-64", gen.Complete(64)},
		{"grid-16x16", gen.Grid2D(16, 16)},
		{"grid-7x5x3", gen.Grid3D(7, 5, 3)},
		{"ring-of-cliques-8x6", gen.RingOfCliques(8, 6)},
		{"disconnected-chains-5x20", Disconnected(5, 20)},
		{"disconnected-chains-16x3", Disconnected(16, 3)},
		{"isolated-tail-er", WithIsolated(80, 160, 17, 11)},
		{"rmat-s8", gen.RMAT(8, 8, 0.57, 0.19, 0.19, 42)},
		{"rmat-s9-skewed", gen.RMAT(9, 6, 0.7, 0.1, 0.1, 7)},
	}
	// Seeded sparse and dense Erdős–Rényi instances.
	for i, cfg := range []struct{ n, m int }{
		{50, 50}, {120, 150}, {120, 600}, {200, 220}, {300, 2400}, {97, 400},
	} {
		out = append(out, Named{
			Name: fmt.Sprintf("er-%d-%d", cfg.n, cfg.m),
			G:    gen.ErdosRenyi(cfg.n, cfg.m, uint64(100+i)),
		})
	}
	return out
}

// Sources returns the BFS source vertices exercised per graph: the first,
// middle, and last vertex (deduplicated). Empty for empty graphs.
func Sources(g *graph.Graph) []int32 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	set := []int32{0, int32(n / 2), int32(n - 1)}
	out := set[:0]
	for _, s := range set {
		dup := false
		for _, p := range out {
			if p == s {
				dup = true
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	return out
}

// CheckBFS compares a parallel variant's result against the sequential
// oracle on the same graph and source: identical per-vertex levels,
// identical level widths, and a structurally valid level assignment.
func CheckBFS(t testing.TB, name string, g *graph.Graph, source int32, got bfs.Result) {
	t.Helper()
	want := bfs.Sequential(g, source)
	if err := bfs.Validate(g, source, got.Levels); err != nil {
		t.Fatalf("%s: invalid levels: %v", name, err)
	}
	for v := range want.Levels {
		if got.Levels[v] != want.Levels[v] {
			t.Fatalf("%s: levels[%d] = %d, oracle %d", name, v, got.Levels[v], want.Levels[v])
		}
	}
	if got.NumLevels != want.NumLevels {
		t.Fatalf("%s: NumLevels = %d, oracle %d", name, got.NumLevels, want.NumLevels)
	}
	if len(got.Widths) != len(want.Widths) {
		t.Fatalf("%s: widths = %v, oracle %v", name, got.Widths, want.Widths)
	}
	for i := range want.Widths {
		if got.Widths[i] != want.Widths[i] {
			t.Fatalf("%s: widths[%d] = %d, oracle %d", name, i, got.Widths[i], want.Widths[i])
		}
	}
	if got.Processed < want.Processed {
		t.Fatalf("%s: processed %d < oracle %d", name, got.Processed, want.Processed)
	}
}

// CheckColoring verifies a proper coloring whose color count does not
// exceed Δ+1 (the guarantee of every first-fit variant).
func CheckColoring(t testing.TB, name string, g *graph.Graph, res coloring.Result) {
	t.Helper()
	if err := coloring.Validate(g, res.Colors); err != nil {
		t.Fatalf("%s: invalid coloring: %v", name, err)
	}
	if max := g.MaxDegree() + 1; res.NumColors > max {
		t.Fatalf("%s: used %d colors, first-fit bound is Δ+1 = %d", name, res.NumColors, max)
	}
	if n := coloring.CountColors(res.Colors); g.NumVertices() > 0 && n != res.NumColors {
		t.Fatalf("%s: NumColors = %d but colors use %d", name, res.NumColors, n)
	}
}

// CheckComponents verifies a component labeling against the sequential
// oracle: the induced partitions must be identical and the count exact.
func CheckComponents(t testing.TB, name string, g *graph.Graph, res components.Result) {
	t.Helper()
	want := components.Sequential(g)
	if err := components.Validate(g, res.Labels); err != nil {
		t.Fatalf("%s: invalid labeling: %v", name, err)
	}
	if res.Count != want.Count {
		t.Fatalf("%s: count = %d, oracle %d", name, res.Count, want.Count)
	}
}
