package kerneltest

import (
	"testing"

	"micgraph/internal/bfs"
	"micgraph/internal/graph"
	"micgraph/internal/sched"
)

// FuzzHybridDirectionSwitch drives the direction-optimizing BFS with
// fuzzer-chosen graphs and α/β switch thresholds and checks it against the
// sequential reference. The property under test is that the top-down ↔
// bottom-up switch is invisible in the output: whatever level the switch
// fires at (α=1/β=1 flips eagerly, large values never flip), the level
// assignment, level count, and width histogram must match the oracle
// exactly, and the shared Validate pass catches any frontier entry read
// out of bounds or claimed twice.
func FuzzHybridDirectionSwitch(f *testing.F) {
	f.Add([]byte{1, 2, 2, 3, 3, 4}, uint8(3), uint8(1), uint8(1))
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5}, uint8(0), uint8(14), uint8(24))
	f.Add([]byte{9, 1, 8, 2, 7, 3, 250, 0}, uint8(200), uint8(1), uint8(100))
	f.Fuzz(func(t *testing.T, raw []byte, src, alpha, beta uint8) {
		// Decode byte pairs as edges over at most 64 vertices; n covers
		// every endpoint and the requested source.
		n := int(src%64) + 1
		edges := make([]graph.Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			u, v := int32(raw[i]%64), int32(raw[i+1]%64)
			edges = append(edges, graph.Edge{U: u, V: v})
			if int(u) >= n {
				n = int(u) + 1
			}
			if int(v) >= n {
				n = int(v) + 1
			}
		}
		g, err := graph.FromEdges(n, edges)
		if err != nil {
			t.Skip()
		}
		source := int32(src % 64)

		team := sched.NewTeam(4)
		defer team.Close()
		cfg := bfs.HybridConfig{Alpha: int(alpha), Beta: int(beta)}
		got, err := bfs.HybridTeamCtx(nil, g, source, team, sched.ForOptions{}, cfg)
		if err != nil {
			t.Fatalf("hybrid(alpha=%d beta=%d): %v", alpha, beta, err)
		}
		CheckBFS(t, "hybrid-fuzz", g, source, got.Result)
	})
}
