package kerneltest

import (
	"testing"

	"micgraph/internal/bfs"
	"micgraph/internal/coloring"
	"micgraph/internal/components"
	"micgraph/internal/sched"
)

// The oracle suites run every variant on every corpus graph from every
// source, with a small worker count so that single-CPU runs still
// interleave (the -race job shakes the claim protocols).

func TestBFSMatchesOracle(t *testing.T) {
	team := sched.NewTeam(4)
	defer team.Close()
	pool := sched.NewPool(4)
	defer pool.Close()
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 16}

	variants := []struct {
		name string
		run  func(nm Named, source int32) bfs.Result
	}{
		{"omp-block", func(nm Named, s int32) bfs.Result {
			return bfs.BlockTeam(nm.G, s, team, opts, 8, false)
		}},
		{"omp-block-relaxed", func(nm Named, s int32) bfs.Result {
			return bfs.BlockTeam(nm.G, s, team, opts, 8, true)
		}},
		{"tbb-block", func(nm Named, s int32) bfs.Result {
			return bfs.BlockTBB(nm.G, s, pool, sched.AutoPartitioner, 8, 8, false)
		}},
		{"tbb-block-relaxed", func(nm Named, s int32) bfs.Result {
			return bfs.BlockTBB(nm.G, s, pool, sched.SimplePartitioner, 8, 8, true)
		}},
		{"tls", func(nm Named, s int32) bfs.Result {
			return bfs.TLSTeam(nm.G, s, team, opts)
		}},
		{"bag", func(nm Named, s int32) bfs.Result {
			return bfs.BagCilk(nm.G, s, pool, 16)
		}},
		{"hybrid", func(nm Named, s int32) bfs.Result {
			return bfs.HybridTeam(nm.G, s, team, opts, bfs.HybridConfig{}).Result
		}},
		{"hybrid-eager", func(nm Named, s int32) bfs.Result {
			// Aggressive switch thresholds force bottom-up levels even on
			// sparse corpus graphs.
			return bfs.HybridTeam(nm.G, s, team, opts, bfs.HybridConfig{Alpha: 1, Beta: 1}).Result
		}},
	}

	for _, nm := range Corpus() {
		for _, v := range variants {
			for _, src := range Sources(nm.G) {
				got := v.run(nm, src)
				CheckBFS(t, nm.Name+"/"+v.name, nm.G, src, got)
			}
		}
	}
}

// TestBFSScratchReuseMatchesOracle replays several graphs through one
// resident Scratch per variant: a recycled scratch must produce the same
// levels as a fresh one (the serving path runs this way).
func TestBFSScratchReuseMatchesOracle(t *testing.T) {
	team := sched.NewTeam(4)
	defer team.Close()
	pool := sched.NewPool(4)
	defer pool.Close()
	opts := sched.ForOptions{Policy: sched.Guided, Chunk: 8}

	block, tls, bag, hyb := bfs.NewScratch(), bfs.NewScratch(), bfs.NewScratch(), bfs.NewScratch()
	for _, nm := range Corpus() {
		for _, src := range Sources(nm.G) {
			if r, err := block.BlockTeam(nil, nm.G, src, team, opts, 8, true); err != nil {
				t.Fatal(err)
			} else {
				CheckBFS(t, nm.Name+"/scratch-block", nm.G, src, r)
			}
			if r, err := tls.TLSTeam(nil, nm.G, src, team, opts); err != nil {
				t.Fatal(err)
			} else {
				CheckBFS(t, nm.Name+"/scratch-tls", nm.G, src, r)
			}
			if r, err := bag.BagCilk(nil, nm.G, src, pool, 16); err != nil {
				t.Fatal(err)
			} else {
				CheckBFS(t, nm.Name+"/scratch-bag", nm.G, src, r)
			}
			if r, err := hyb.Hybrid(nil, nm.G, src, team, opts, bfs.HybridConfig{}); err != nil {
				t.Fatal(err)
			} else {
				CheckBFS(t, nm.Name+"/scratch-hybrid", nm.G, src, r.Result)
			}
		}
	}
}

func TestColoringMatchesOracle(t *testing.T) {
	team := sched.NewTeam(4)
	defer team.Close()
	pool := sched.NewPool(4)
	defer pool.Close()
	opts := sched.ForOptions{Policy: sched.Static, Chunk: 16}

	scratch := coloring.NewScratch()
	for _, nm := range Corpus() {
		CheckColoring(t, nm.Name+"/seq", nm.G, coloring.SeqGreedy(nm.G))
		CheckColoring(t, nm.Name+"/openmp", nm.G, coloring.ColorTeam(nm.G, team, opts))
		CheckColoring(t, nm.Name+"/cilk-wid", nm.G, coloring.ColorCilk(nm.G, pool, 32, coloring.CilkWorkerID))
		CheckColoring(t, nm.Name+"/cilk-holder", nm.G, coloring.ColorCilk(nm.G, pool, 32, coloring.CilkHolder))
		CheckColoring(t, nm.Name+"/tbb", nm.G, coloring.ColorTBB(nm.G, pool, sched.AutoPartitioner, 32))
		// The same recycled Scratch must stay proper across graphs.
		if r, err := scratch.ColorTeam(nil, nm.G, team, opts); err != nil {
			t.Fatal(err)
		} else {
			CheckColoring(t, nm.Name+"/scratch-reuse", nm.G, r)
		}
	}
}

func TestComponentsMatchOracle(t *testing.T) {
	team := sched.NewTeam(4)
	defer team.Close()
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 16}

	scratch := components.NewScratch()
	for _, nm := range Corpus() {
		CheckComponents(t, nm.Name+"/labelprop", nm.G, components.LabelPropagation(nm.G, team, opts))
		CheckComponents(t, nm.Name+"/pointerjump", nm.G, components.PointerJumping(nm.G, team, opts))
		if r, err := scratch.LabelPropagation(nil, nm.G, team, opts); err != nil {
			t.Fatal(err)
		} else {
			CheckComponents(t, nm.Name+"/scratch-labelprop", nm.G, r)
		}
		if r, err := scratch.PointerJumping(nil, nm.G, team, opts); err != nil {
			t.Fatal(err)
		} else {
			CheckComponents(t, nm.Name+"/scratch-pointerjump", nm.G, r)
		}
	}
}

// TestCorpusShape pins the corpus floor the satellite requires: at least
// 20 graphs, including stars, chains, disconnected and zero-degree shapes.
func TestCorpusShape(t *testing.T) {
	c := Corpus()
	if len(c) < 20 {
		t.Fatalf("corpus has %d graphs, want >= 20", len(c))
	}
	seen := map[string]bool{}
	for _, nm := range c {
		seen[nm.Name] = true
	}
	for _, want := range []string{"star-63", "chain-64", "disconnected-chains-5x20", "isolated-tail-er", "two-isolated"} {
		if !seen[want] {
			t.Fatalf("corpus is missing pathological graph %q", want)
		}
	}
}
