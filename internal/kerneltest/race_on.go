//go:build race

package kerneltest

// RaceEnabled mirrors the test binary's -race state. The alloc-regression
// gates skip under the race detector: instrumentation allocates shadow
// state on paths that are allocation-free in plain builds, so the ceilings
// only hold (and are only meaningful) without it.
const RaceEnabled = true
