package kerneltest

import (
	"context"
	"testing"

	"micgraph/internal/bfs"
	"micgraph/internal/coloring"
	"micgraph/internal/components"
	"micgraph/internal/gen"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

// TestKernelAllocCeilings pins the steady-state allocation count of every
// pooled kernel hot path. Each kernel runs once to warm its Scratch (first
// run grows buffers), then testing.AllocsPerRun measures the steady state.
// Ceilings are exact: the Team-based paths and both TBB paths run at zero
// allocations per kernel invocation; the Cilk bag variant is allowed its
// one documented allocation — the seed chunk of level 0 is leased from
// arena shard 0, but consumed chunks land in the shards of the workers
// that drained them, so the seed lease misses the free list roughly once
// per run.
//
// The gate is skipped under the race detector: -race instruments
// synchronization with allocating shadow state, so the counts are
// meaningless there (the differential-oracle tests carry the -race load).
func TestKernelAllocCeilings(t *testing.T) {
	if RaceEnabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	team := sched.NewTeam(4)
	defer team.Close()
	pool := sched.NewPool(4)
	defer pool.Close()
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 16}
	g := gen.ErdosRenyi(2000, 8000, 1)

	// nopCtx carries an explicit Nop recorder: the uninstrumented
	// telemetry path must not assemble samples or read clocks, so it has
	// to hold the same zero-alloc ceiling as the nil-context path.
	nopCtx := telemetry.WithRecorder(context.Background(), telemetry.Nop)

	bblk := bfs.NewScratch()
	btbb := bfs.NewScratch()
	btls := bfs.NewScratch()
	bbag := bfs.NewScratch()
	bhyb := bfs.NewScratch()
	bnop := bfs.NewScratch()
	col := coloring.NewScratch()
	cmp := components.NewScratch()

	gates := []struct {
		name    string
		ceiling float64
		run     func()
	}{
		{"bfs/block-team", 0, func() { bblk.BlockTeam(nil, g, 0, team, opts, 32, true) }},
		{"bfs/block-team-nop-recorder", 0, func() { bnop.BlockTeam(nopCtx, g, 0, team, opts, 32, true) }},
		{"bfs/block-tbb", 0, func() { btbb.BlockTBB(nil, g, 0, pool, sched.AutoPartitioner, 64, 32, true) }},
		{"bfs/tls-team", 0, func() { btls.TLSTeam(nil, g, 0, team, opts) }},
		{"bfs/bag-cilk", 1, func() { bbag.BagCilk(nil, g, 0, pool, 128) }},
		{"bfs/hybrid-team", 0, func() { bhyb.Hybrid(nil, g, 0, team, opts, bfs.HybridConfig{}) }},
		{"coloring/team", 0, func() { col.ColorTeam(nil, g, team, opts) }},
		{"coloring/cilk", 0, func() { col.ColorCilk(nil, g, pool, 64, coloring.CilkHolder) }},
		{"coloring/tbb", 0, func() { col.ColorTBB(nil, g, pool, sched.AutoPartitioner, 64) }},
		{"components/labelprop", 0, func() { cmp.LabelPropagation(nil, g, team, opts) }},
		{"components/pointerjump", 0, func() { cmp.PointerJumping(nil, g, team, opts) }},
	}
	for _, gate := range gates {
		gate.run() // warm: first run on a graph shape grows the scratch buffers
		got := testing.AllocsPerRun(10, gate.run)
		if got > gate.ceiling {
			t.Errorf("%s: measured %.1f allocs/run, ceiling %.0f — a hot-path allocation crept in",
				gate.name, got, gate.ceiling)
		}
	}
}
