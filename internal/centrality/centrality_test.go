package centrality

import (
	"math"
	"testing"
	"testing/quick"

	"micgraph/internal/gen"
	"micgraph/internal/graph"
	"micgraph/internal/sched"
	"micgraph/internal/xrand"
)

func randomGraph(seed uint64, n, m int) *graph.Graph {
	r := xrand.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func TestExactPath(t *testing.T) {
	// Path 0-1-2-3-4: bc of vertex i is (#pairs it separates) =
	// i*(n-1-i): [0,3,4,3,0].
	g := gen.Chain(5)
	bc := Exact(g)
	want := []float64{0, 3, 4, 3, 0}
	for v := range want {
		if math.Abs(bc[v]-want[v]) > 1e-9 {
			t.Errorf("bc[%d] = %v, want %v", v, bc[v], want[v])
		}
	}
}

func TestExactStar(t *testing.T) {
	// Star: center lies on every leaf pair's path: C(n-1, 2) pairs.
	b := graph.NewBuilder(6)
	for i := int32(1); i < 6; i++ {
		b.AddEdge(0, i)
	}
	bc := Exact(b.Build())
	if math.Abs(bc[0]-10) > 1e-9 { // C(5,2)
		t.Errorf("center bc = %v, want 10", bc[0])
	}
	for v := 1; v < 6; v++ {
		if bc[v] != 0 {
			t.Errorf("leaf bc[%d] = %v, want 0", v, bc[v])
		}
	}
}

func TestExactComplete(t *testing.T) {
	// Complete graph: no vertex lies strictly between any pair.
	bc := Exact(gen.Complete(7))
	for v, x := range bc {
		if x != 0 {
			t.Errorf("K7 bc[%d] = %v, want 0", v, x)
		}
	}
}

func TestExactCycle(t *testing.T) {
	// Even cycle C6: by symmetry all values equal; each pair at distance 2
	// has 1 intermediate, distance-3 pairs have two shortest paths. The
	// known value for C6 is 2 per vertex... verify symmetry and the sum
	// rule instead: Σ bc = Σ_pairs (avg #intermediates).
	g := buildCycle(6)
	bc := Exact(g)
	for v := 1; v < 6; v++ {
		if math.Abs(bc[v]-bc[0]) > 1e-9 {
			t.Fatalf("cycle not symmetric: bc[%d]=%v vs bc[0]=%v", v, bc[v], bc[0])
		}
	}
	if bc[0] <= 0 {
		t.Error("cycle centrality should be positive")
	}
}

func buildCycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

func TestSampledAllSourcesMatchesExact(t *testing.T) {
	team := sched.NewTeam(4)
	defer team.Close()
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 8}
	property := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%60) + 2
		m := int(mRaw % 250)
		g := randomGraph(seed, n, m)
		exact := Exact(g)
		sampled := Sampled(g, AllSources(n), team, opts)
		for v := range exact {
			// Sampled with all sources = 2 * Exact.
			if math.Abs(sampled[v]-2*exact[v]) > 1e-6*(1+exact[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSampledRanksHubs(t *testing.T) {
	// Two cliques joined by one bridge vertex: the bridge must dominate.
	b := graph.NewBuilder(21)
	for i := int32(0); i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			b.AddEdge(i, j)
		}
	}
	for i := int32(11); i < 21; i++ {
		for j := i + 1; j < 21; j++ {
			b.AddEdge(i, j)
		}
	}
	b.AddEdge(0, 10)
	b.AddEdge(10, 11)
	g := b.Build()
	team := sched.NewTeam(3)
	defer team.Close()
	bc := Sampled(g, EverySource(21, 2), team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 4})
	// The cut vertices 0, 10, 11 carry all inter-clique paths and must
	// dominate every plain clique member.
	for _, cut := range []int{0, 10, 11} {
		for v := 1; v < 21; v++ {
			if v == 0 || v == 10 || v == 11 {
				continue
			}
			if bc[v] >= bc[cut] {
				t.Errorf("cut vertex %d (bc %v) not above clique member %d (bc %v)",
					cut, bc[cut], v, bc[v])
			}
		}
	}
}

func TestSourceHelpers(t *testing.T) {
	if len(AllSources(5)) != 5 {
		t.Error("AllSources wrong length")
	}
	e := EverySource(10, 3)
	if len(e) != 4 || e[0] != 0 || e[3] != 9 {
		t.Errorf("EverySource(10,3) = %v", e)
	}
	if len(EverySource(10, 0)) != 10 {
		t.Error("EverySource with k=0 should default to every vertex")
	}
}

func TestEmptyGraphs(t *testing.T) {
	team := sched.NewTeam(2)
	defer team.Close()
	empty := graph.NewBuilder(0).Build()
	if len(Exact(empty)) != 0 {
		t.Error("Exact on empty graph")
	}
	if len(Sampled(empty, nil, team, sched.ForOptions{})) != 0 {
		t.Error("Sampled on empty graph")
	}
}
