// Package centrality implements betweenness centrality (Brandes 2001) on
// top of the parallel BFS kernels — the "computationally expensive
// centrality measures" the paper's introduction gives as the canonical
// BFS-based application.
//
// Two entry points: Exact runs Brandes' algorithm from every source
// (O(V·E), small graphs); Sampled estimates centrality from a subset of
// sources using the paper's block-queue parallel BFS for the forward pass
// and level-parallel sweeps for the path counting and dependency
// accumulation, so the heavy phase scales exactly like the paper's BFS.
package centrality

import (
	"micgraph/internal/bfs"
	"micgraph/internal/graph"
	"micgraph/internal/sched"
)

// Exact computes exact betweenness centrality (unweighted, undirected;
// each shortest path counted once per unordered pair). Sequential; intended
// for validation and small graphs.
func Exact(g *graph.Graph) []float64 {
	n := g.NumVertices()
	bc := make([]float64, n)
	if n == 0 {
		return bc
	}
	sigma := make([]float64, n)
	delta := make([]float64, n)
	dist := make([]int32, n)
	queue := make([]int32, 0, n)

	for s := int32(0); int(s) < n; s++ {
		for v := 0; v < n; v++ {
			sigma[v], delta[v], dist[v] = 0, 0, -1
		}
		sigma[s], dist[s] = 1, 0
		queue = queue[:0]
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.Adj(v) {
				if dist[w] == -1 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
				}
			}
		}
		// Dependency accumulation in reverse BFS order.
		for i := len(queue) - 1; i > 0; i-- {
			w := queue[i]
			for _, v := range g.Adj(w) {
				if dist[v] == dist[w]-1 {
					delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
			bc[w] += delta[w]
		}
	}
	// Undirected: every pair was counted twice (once per endpoint as
	// source).
	for v := range bc {
		bc[v] /= 2
	}
	return bc
}

// Sampled estimates betweenness from the given source vertices using
// parallel BFS and level-parallel accumulation on team. With sources ==
// all vertices it converges to 2·Exact scaled by... precisely: it returns
// the un-normalised accumulation Σ_s δ_s(v), which equals 2·Exact when
// every vertex is a source. Callers ranking vertices need no normalisation.
func Sampled(g *graph.Graph, sources []int32, team *sched.Team, opts sched.ForOptions) []float64 {
	n := g.NumVertices()
	bc := make([]float64, n)
	if n == 0 || len(sources) == 0 {
		return bc
	}
	sigma := make([]float64, n)
	delta := make([]float64, n)

	for _, source := range sources {
		res := bfs.BlockTeam(g, source, team, opts, bfs.DefaultBlockSize, true)
		levels := res.Levels

		byLevel := make([][]int32, res.NumLevels)
		for v := 0; v < n; v++ {
			if l := levels[v]; l >= 0 {
				byLevel[l] = append(byLevel[l], int32(v))
			}
		}

		for v := 0; v < n; v++ {
			sigma[v], delta[v] = 0, 0
		}
		sigma[source] = 1
		// Forward: path counts, parallel within each level (all
		// predecessors are one level up, so per-level updates are
		// independent).
		for l := 1; l < res.NumLevels; l++ {
			vs := byLevel[l]
			team.For(len(vs), opts, func(lo, hi, w int) {
				for i := lo; i < hi; i++ {
					v := vs[i]
					var sum float64
					for _, u := range g.Adj(v) {
						if levels[u] == levels[v]-1 {
							sum += sigma[u]
						}
					}
					sigma[v] = sum
				}
			})
		}
		// Backward: dependencies, again parallel within levels.
		for l := res.NumLevels - 1; l > 0; l-- {
			vs := byLevel[l]
			team.For(len(vs), opts, func(lo, hi, w int) {
				for i := lo; i < hi; i++ {
					v := vs[i]
					var sum float64
					for _, u := range g.Adj(v) {
						if levels[u] == levels[v]+1 && sigma[u] > 0 {
							sum += sigma[v] / sigma[u] * (1 + delta[u])
						}
					}
					delta[v] = sum
				}
			})
		}
		for v := 0; v < n; v++ {
			if int32(v) != source {
				bc[v] += delta[v]
			}
		}
	}
	return bc
}

// AllSources returns [0..n) for exact sampled runs.
func AllSources(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// EverySource returns every k-th vertex as a deterministic sample.
func EverySource(n, k int) []int32 {
	if k < 1 {
		k = 1
	}
	out := make([]int32, 0, n/k+1)
	for i := 0; i < n; i += k {
		out = append(out, int32(i))
	}
	return out
}
