package irregular

import (
	"math"
	"testing"
	"testing/quick"

	"micgraph/internal/gen"
	"micgraph/internal/graph"
	"micgraph/internal/sched"
	"micgraph/internal/xrand"
)

func randomGraph(seed uint64, n, m int) *graph.Graph {
	r := xrand.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func TestSequentialIsolatedVertex(t *testing.T) {
	g := graph.NewBuilder(1).Build()
	out := Sequential(g, []float64{3.5}, 4)
	if out[0] != 3.5 {
		t.Errorf("isolated vertex changed state: %v", out[0])
	}
}

func TestSequentialPairConverges(t *testing.T) {
	// Two connected vertices averaging against a frozen snapshot both land
	// on the snapshot mean after one iteration.
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}})
	out := Sequential(g, []float64{0, 2}, 1)
	if out[0] != 1 || out[1] != 1 {
		t.Errorf("out = %v, want [1 1]", out)
	}
}

func TestSequentialMoreIterationsSmooth(t *testing.T) {
	g := gen.Grid2D(10, 10)
	in := InitialState(100)
	spread := func(xs []float64) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return hi - lo
	}
	one := Sequential(g, in, 1)
	ten := Sequential(g, in, 10)
	if spread(ten) > spread(one) {
		t.Errorf("10 iterations spread %v > 1 iteration spread %v; averaging must smooth", spread(ten), spread(one))
	}
}

func TestAllRuntimesMatchSequential(t *testing.T) {
	g := randomGraph(3, 300, 1500)
	in := InitialState(g.NumVertices())
	team := sched.NewTeam(4)
	defer team.Close()
	pool := sched.NewPool(4)
	defer pool.Close()

	for _, iter := range []int{1, 3, 5, 10} {
		want := Sequential(g, in, iter)
		runs := map[string][]float64{
			"team-dynamic": Team(g, in, iter, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 8}),
			"team-static":  Team(g, in, iter, team, sched.ForOptions{Policy: sched.Static, Chunk: 16}),
			"team-guided":  Team(g, in, iter, team, sched.ForOptions{Policy: sched.Guided, Chunk: 4}),
			"cilk":         Cilk(g, in, iter, pool, 32),
			"tbb-simple":   TBB(g, in, iter, pool, sched.SimplePartitioner, 16),
			"tbb-auto":     TBB(g, in, iter, pool, sched.AutoPartitioner, 16),
			"tbb-affinity": TBB(g, in, iter, pool, sched.AffinityPartitioner, 16),
		}
		for name, got := range runs {
			if d := MaxAbsDiff(want, got); d != 0 {
				t.Errorf("iter=%d %s diverges from sequential by %v (must be bit-identical)", iter, name, d)
			}
		}
	}
}

func TestKernelDeterministicProperty(t *testing.T) {
	team := sched.NewTeam(3)
	defer team.Close()
	property := func(seed uint64, nRaw, mRaw uint16, iterRaw uint8) bool {
		n := int(nRaw%200) + 1
		m := int(mRaw % 800)
		iter := int(iterRaw%10) + 1
		g := randomGraph(seed, n, m)
		in := InitialState(n)
		a := Team(g, in, iter, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 3})
		b := Sequential(g, in, iter)
		return MaxAbsDiff(a, b) == 0
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSweepConverges(t *testing.T) {
	// Repeated averaging on a connected graph converges towards consensus.
	g := gen.Grid2D(8, 8)
	team := sched.NewTeam(2)
	defer team.Close()
	state := InitialState(64)
	out := Sweep(g, state, 1, 200, team, sched.ForOptions{Policy: sched.Static})
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range out {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	if hi-lo > 0.05 {
		t.Errorf("after 200 sweeps spread = %v, want near consensus", hi-lo)
	}
}

func TestInitialState(t *testing.T) {
	s := InitialState(200)
	for v, x := range s {
		if x < 1 || x >= 2 {
			t.Fatalf("state[%d] = %v out of [1,2)", v, x)
		}
	}
	if s[0] == s[1] {
		t.Error("initial state is constant; kernel results would be trivial")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if d := MaxAbsDiff([]float64{1, 2, 3}, []float64{1, 2.5, 3}); d != 0.5 {
		t.Errorf("MaxAbsDiff = %v, want 0.5", d)
	}
	if d := MaxAbsDiff(nil, nil); d != 0 {
		t.Errorf("MaxAbsDiff(nil) = %v", d)
	}
}
