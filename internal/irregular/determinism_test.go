package irregular

import (
	"context"
	"reflect"
	"testing"
	"time"

	"micgraph/internal/gen"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

// TestKernelSampleBitDeterministic: the irregular kernel's single phase
// sample must be identical across instrumented runs under a fake clock —
// the wallclock analyzer guarantees no hidden time.Now remains.
func TestKernelSampleBitDeterministic(t *testing.T) {
	g := gen.RingOfCliques(30, 5)
	in := InitialState(g.NumVertices())
	run := func() []telemetry.PhaseSample {
		tick := int64(0)
		fake := func() time.Time {
			tick++
			return time.Unix(0, tick*1000)
		}
		team := sched.NewTeam(1)
		defer team.Close()
		rec := telemetry.NewMemRecorder()
		ctx := telemetry.WithRecorder(context.Background(), telemetry.WithClock(rec, fake))
		if _, err := TeamCtx(ctx, g, in, 3, team, sched.ForOptions{Policy: sched.Static}); err != nil {
			t.Fatal(err)
		}
		return rec.Samples()
	}
	a, b := run(), run()
	if len(a) != 1 {
		t.Fatalf("want exactly one kernel sample, got %d", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("instrumented runs differ:\n%v\n%v", a, b)
	}
}
