// Package irregular implements the paper's irregular-computation
// microbenchmark (Algorithm 5): a traversal of a computational dependency
// graph where each vertex's double-precision state is repeatedly averaged
// with its neighbors' states. The iteration count `iter` scales the
// computation-to-communication ratio — the knob Figure 3 sweeps (1, 3, 5,
// 10 iterations). The kernel "is a reasonable abstraction of a single
// iteration of algorithms such as Page Rank or Heat Equation solvers and
// has data dependencies similar to a sparse matrix vector multiplication".
//
// All parallel variants read the neighbor states of the *input* snapshot
// and write a separate output array (Jacobi-style), so results are
// deterministic and identical across runtimes and thread counts, matching
// how such kernels are written in practice.
package irregular

import (
	"context"
	"math"
	"time"

	"micgraph/internal/graph"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

// kernelStart returns the phase-clock start for telemetry, or the zero
// time when no Recorder is active (the uninstrumented default path).
func kernelStart(rec telemetry.Recorder) time.Time {
	return telemetry.Now(rec)
}

// recordKernel emits the single PhaseSample of one kernel application:
// every vertex updated once, every arc read iter times.
func recordKernel(rec telemetry.Recorder, g *graph.Graph, iter int, start time.Time) {
	if !telemetry.Active(rec) {
		return
	}
	rec.Record(telemetry.PhaseSample{
		Kernel: "irregular", Phase: "update",
		Items: int64(g.NumVertices()), Edges: g.NumArcs() * int64(iter),
		Duration: telemetry.Since(rec, start),
	})
}

// InitialState returns the canonical deterministic starting state used by
// the benchmarks: state[v] = 1 + (v mod 97) / 97.
func InitialState(n int) []float64 {
	s := make([]float64, n)
	for v := range s {
		s[v] = 1 + float64(v%97)/97
	}
	return s
}

// updateOne computes iter averaging sweeps of vertex v against the frozen
// input snapshot, exactly as Algorithm 5's inner loop.
func updateOne(g *graph.Graph, in []float64, v int32, iter int) float64 {
	adj := g.Adj(v)
	x := in[v]
	inv := 1 / float64(len(adj)+1)
	for it := 0; it < iter; it++ {
		sum := x
		for _, w := range adj {
			sum += in[w]
		}
		x = sum * inv
	}
	return x
}

// Sequential runs the kernel once over every vertex and returns the output
// state. iter must be >= 1.
func Sequential(g *graph.Graph, in []float64, iter int) []float64 {
	out := make([]float64, len(in))
	for v := 0; v < g.NumVertices(); v++ {
		out[v] = updateOne(g, in, int32(v), iter)
	}
	return out
}

// Team runs the kernel on an OpenMP-style Team. Panics propagate; use
// TeamCtx for errors and cancellation.
func Team(g *graph.Graph, in []float64, iter int, team *sched.Team, opts sched.ForOptions) []float64 {
	out, err := TeamCtx(nil, g, in, iter, team, opts)
	if err != nil {
		panic(err)
	}
	return out
}

// TeamCtx is Team with cooperative cancellation at chunk-claim boundaries;
// on failure the partially written output is returned alongside the error.
func TeamCtx(ctx context.Context, g *graph.Graph, in []float64, iter int, team *sched.Team, opts sched.ForOptions) ([]float64, error) {
	out := make([]float64, len(in))
	rec := telemetry.FromContext(ctx)
	start := kernelStart(rec)
	err := team.ForCtx(ctx, g.NumVertices(), opts, func(lo, hi, w int) {
		for v := lo; v < hi; v++ {
			out[v] = updateOne(g, in, int32(v), iter)
		}
	})
	recordKernel(rec, g, iter, start)
	return out, err
}

// Cilk runs the kernel as a cilk_for on the work-stealing pool. Panics
// propagate; use CilkCtx for errors and cancellation.
func Cilk(g *graph.Graph, in []float64, iter int, pool *sched.Pool, grain int) []float64 {
	out, err := CilkCtx(nil, g, in, iter, pool, grain)
	if err != nil {
		panic(err)
	}
	return out
}

// CilkCtx is Cilk with cooperative cancellation at task-split boundaries.
func CilkCtx(ctx context.Context, g *graph.Graph, in []float64, iter int, pool *sched.Pool, grain int) ([]float64, error) {
	out := make([]float64, len(in))
	rec := telemetry.FromContext(ctx)
	start := kernelStart(rec)
	err := pool.ParallelForCtx(ctx, g.NumVertices(), grain, func(lo, hi int, c *sched.Ctx) {
		for v := lo; v < hi; v++ {
			out[v] = updateOne(g, in, int32(v), iter)
		}
	})
	recordKernel(rec, g, iter, start)
	return out, err
}

// TBB runs the kernel as a TBB parallel_for over a blocked range. Panics
// propagate; use TBBCtx for errors and cancellation.
func TBB(g *graph.Graph, in []float64, iter int, pool *sched.Pool, part sched.Partitioner, grain int) []float64 {
	out, err := TBBCtx(nil, g, in, iter, pool, part, grain)
	if err != nil {
		panic(err)
	}
	return out
}

// TBBCtx is TBB with cooperative cancellation at range-split boundaries.
func TBBCtx(ctx context.Context, g *graph.Graph, in []float64, iter int, pool *sched.Pool, part sched.Partitioner, grain int) ([]float64, error) {
	out := make([]float64, len(in))
	var aff sched.AffinityState
	rec := telemetry.FromContext(ctx)
	start := kernelStart(rec)
	err := sched.ParallelForRangeCtx(ctx, pool, sched.Range{Lo: 0, Hi: g.NumVertices(), Grain: grain}, part, &aff,
		func(lo, hi int, c *sched.Ctx) {
			for v := lo; v < hi; v++ {
				out[v] = updateOne(g, in, int32(v), iter)
			}
		})
	recordKernel(rec, g, iter, start)
	return out, err
}

// Sweep runs `sweeps` Jacobi relaxations (each one full kernel application)
// and returns the final state; a building block for the heat-equation
// example.
func Sweep(g *graph.Graph, state []float64, iter, sweeps int, team *sched.Team, opts sched.ForOptions) []float64 {
	cur := state
	for s := 0; s < sweeps; s++ {
		cur = Team(g, cur, iter, team, opts)
	}
	return cur
}

// MaxAbsDiff returns the maximum absolute element difference of a and b
// (useful for convergence checks and cross-runtime validation).
func MaxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}
