package irregular

import (
	"math"
	"testing"

	"micgraph/internal/gen"
	"micgraph/internal/graph"
	"micgraph/internal/sched"
)

func prOpts() sched.ForOptions { return sched.ForOptions{Policy: sched.Dynamic, Chunk: 16} }

func TestPageRankSumsToOne(t *testing.T) {
	team := sched.NewTeam(4)
	defer team.Close()
	for name, g := range map[string]*graph.Graph{
		"grid":     gen.Grid2D(12, 12),
		"complete": gen.Complete(20),
		"random":   randomGraph(3, 150, 600),
		"isolated": graph.NewBuilder(10).Build(), // all dangling
	} {
		rank, iters := PageRank(g, team, prOpts(), PageRankOptions{})
		sum := 0.0
		for _, r := range rank {
			sum += r
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: ranks sum to %v after %d iterations", name, sum, iters)
		}
		for v, r := range rank {
			if r <= 0 {
				t.Errorf("%s: vertex %d has non-positive rank %v", name, v, r)
			}
		}
	}
}

func TestPageRankUniformOnRegularGraphs(t *testing.T) {
	// On vertex-transitive graphs every vertex has the same rank.
	team := sched.NewTeam(2)
	defer team.Close()
	g := gen.Complete(16)
	rank, _ := PageRank(g, team, prOpts(), PageRankOptions{})
	want := 1.0 / 16
	for v, r := range rank {
		if math.Abs(r-want) > 1e-6 {
			t.Errorf("K16 vertex %d rank %v, want %v", v, r, want)
		}
	}
}

func TestPageRankStarCenterDominates(t *testing.T) {
	b := graph.NewBuilder(11)
	for i := int32(1); i <= 10; i++ {
		b.AddEdge(0, i)
	}
	g := b.Build()
	team := sched.NewTeam(3)
	defer team.Close()
	rank, _ := PageRank(g, team, prOpts(), PageRankOptions{})
	for v := 1; v <= 10; v++ {
		if rank[0] <= rank[v] {
			t.Fatalf("center rank %v not above leaf %v", rank[0], rank[v])
		}
	}
	// Leaves are symmetric.
	for v := 2; v <= 10; v++ {
		if math.Abs(rank[v]-rank[1]) > 1e-9 {
			t.Errorf("leaf ranks differ: %v vs %v", rank[v], rank[1])
		}
	}
}

func TestPageRankConverges(t *testing.T) {
	team := sched.NewTeam(4)
	defer team.Close()
	g := gen.RingOfCliques(20, 6)
	_, iters := PageRank(g, team, prOpts(), PageRankOptions{Tolerance: 1e-10, MaxIter: 500})
	if iters >= 500 {
		t.Errorf("did not converge within 500 iterations")
	}
	if iters < 3 {
		t.Errorf("converged suspiciously fast (%d iterations)", iters)
	}
}

func TestPageRankDeterministicAcrossWorkers(t *testing.T) {
	g := randomGraph(9, 200, 900)
	t1 := sched.NewTeam(1)
	defer t1.Close()
	t4 := sched.NewTeam(4)
	defer t4.Close()
	a, _ := PageRank(g, t1, prOpts(), PageRankOptions{MaxIter: 30, Tolerance: 1e-15})
	b, _ := PageRank(g, t4, prOpts(), PageRankOptions{MaxIter: 30, Tolerance: 1e-15})
	if d := MaxAbsDiff(a, b); d != 0 {
		t.Errorf("worker count changed the result by %v (must be bit-identical)", d)
	}
}

func TestPageRankOptionsDefaults(t *testing.T) {
	var o PageRankOptions
	if o.damping() != 0.85 || o.tolerance() != 1e-8 || o.maxIter() != 100 {
		t.Error("defaults wrong")
	}
	bad := PageRankOptions{Damping: 1.5}
	if bad.damping() != 0.85 {
		t.Error("out-of-range damping not defaulted")
	}
}

func TestPageRankEmpty(t *testing.T) {
	team := sched.NewTeam(2)
	defer team.Close()
	rank, iters := PageRank(graph.NewBuilder(0).Build(), team, prOpts(), PageRankOptions{})
	if rank != nil || iters != 0 {
		t.Error("empty graph should return nil, 0")
	}
}
