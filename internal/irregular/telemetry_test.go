package irregular

import (
	"context"
	"testing"

	"micgraph/internal/gen"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

func TestIrregularRecordsUpdate(t *testing.T) {
	g := gen.Grid2D(25, 25)
	in := InitialState(g.NumVertices())
	rec := telemetry.NewMemRecorder()
	ctx := telemetry.WithRecorder(context.Background(), rec)

	team := sched.NewTeam(4)
	defer team.Close()
	if _, err := TeamCtx(ctx, g, in, 3, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 16}); err != nil {
		t.Fatal(err)
	}
	pool := sched.NewPool(4)
	defer pool.Close()
	if _, err := CilkCtx(ctx, g, in, 3, pool, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := TBBCtx(ctx, g, in, 3, pool, sched.SimplePartitioner, 16); err != nil {
		t.Fatal(err)
	}

	samples := rec.Samples()
	if len(samples) != 3 {
		t.Fatalf("%d samples, want 3 (one per kernel invocation)", len(samples))
	}
	for i, s := range samples {
		if s.Kernel != "irregular" || s.Phase != "update" {
			t.Errorf("sample %d labelled %s/%s", i, s.Kernel, s.Phase)
		}
		if s.Items != int64(g.NumVertices()) {
			t.Errorf("sample %d items = %d, want %d", i, s.Items, g.NumVertices())
		}
		if s.Edges != g.NumArcs()*3 {
			t.Errorf("sample %d edges = %d, want %d", i, s.Edges, g.NumArcs()*3)
		}
		if s.Duration <= 0 {
			t.Errorf("sample %d has non-positive duration", i)
		}
	}
}
