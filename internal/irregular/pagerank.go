package irregular

import (
	"math"

	"micgraph/internal/graph"
	"micgraph/internal/sched"
)

// PageRank on undirected graphs — the algorithm the paper names when
// motivating the microbenchmark ("a reasonable abstraction of a single
// iteration of algorithms such as Page Rank"). The power iteration has the
// exact data-access pattern of Algorithm 5: gather neighbor state, combine,
// scatter to the output vector.

// PageRankOptions configures the power iteration.
type PageRankOptions struct {
	Damping   float64 // damping factor d; 0 selects the standard 0.85
	Tolerance float64 // L1 convergence threshold; 0 selects 1e-8
	MaxIter   int     // iteration cap; 0 selects 100
}

func (o PageRankOptions) damping() float64 {
	if o.Damping <= 0 || o.Damping >= 1 {
		return 0.85
	}
	return o.Damping
}

func (o PageRankOptions) tolerance() float64 {
	if o.Tolerance <= 0 {
		return 1e-8
	}
	return o.Tolerance
}

func (o PageRankOptions) maxIter() int {
	if o.MaxIter <= 0 {
		return 100
	}
	return o.MaxIter
}

// PageRank runs the damped power iteration on team and returns the rank
// vector (summing to 1) and the number of iterations executed. Isolated
// vertices act as dangling nodes whose rank is redistributed uniformly.
func PageRank(g *graph.Graph, team *sched.Team, opts sched.ForOptions, cfg PageRankOptions) ([]float64, int) {
	n := g.NumVertices()
	if n == 0 {
		return nil, 0
	}
	d := cfg.damping()
	rank := make([]float64, n)
	next := make([]float64, n)
	for v := range rank {
		rank[v] = 1 / float64(n)
	}

	workers := team.Workers()
	deltas := make([]float64, workers)
	dangling := make([]float64, workers)

	iters := 0
	for ; iters < cfg.maxIter(); iters++ {
		// Dangling mass (isolated vertices) is shared by everyone.
		for w := range dangling {
			dangling[w] = 0
		}
		team.For(n, opts, func(lo, hi, w int) {
			local := 0.0
			for v := lo; v < hi; v++ {
				if g.Degree(int32(v)) == 0 {
					local += rank[v]
				}
			}
			dangling[w] += local
		})
		danglingMass := 0.0
		for _, x := range dangling {
			danglingMass += x
		}

		base := (1-d)/float64(n) + d*danglingMass/float64(n)
		for w := range deltas {
			deltas[w] = 0
		}
		team.For(n, opts, func(lo, hi, w int) {
			local := 0.0
			for v := lo; v < hi; v++ {
				sum := 0.0
				for _, u := range g.Adj(int32(v)) {
					sum += rank[u] / float64(g.Degree(u))
				}
				nv := base + d*sum
				local += math.Abs(nv - rank[v])
				next[v] = nv
			}
			deltas[w] += local
		})
		rank, next = next, rank

		total := 0.0
		for _, x := range deltas {
			total += x
		}
		if total < cfg.tolerance() {
			iters++
			break
		}
	}
	return rank, iters
}
