// Package gen provides deterministic synthetic graph generators.
//
// The paper evaluates on seven real-world FEM/structural matrices from the
// UF Sparse Matrix Collection and the Parasol project (Table I). Those files
// are not redistributable inside this offline reproduction, so gen builds
// synthetic stand-ins whose four structurally relevant properties are
// controlled to match the published values:
//
//   - |V| and |E| (working-set size, memory pressure),
//   - Δ, the maximum degree (load imbalance of per-vertex work),
//   - the greedy color count (FEM matrices are locally clique-like, which is
//     why their greedy color count roughly equals the average degree),
//   - the BFS level count from source |V|/2 (the x_l level-width profile
//     that drives the paper's Section III-C BFS model; pwtk's 267-level
//     narrow "ribbon" outlier is reproduced by its aspect ratio).
//
// The stand-in family is the "clique grid": |V|/s cliques of size s (s set
// to the published greedy color count) laid out on a W×L grid, adjacent
// cliques joined by a budget of random edges so that |E| matches, plus a few
// high-degree hub vertices to reach Δ. Natural vertex order is clique-major,
// giving the same strong index locality as FEM natural orderings; the
// paper's "randomly shuffled" experiment is obtained with Graph.Shuffled.
//
// Package gen also provides classic families (paths, grids, Erdős–Rényi,
// RMAT, ring of cliques) used by unit tests and the examples.
package gen

import (
	"fmt"

	"micgraph/internal/graph"
	"micgraph/internal/xrand"
)

// Chain returns the path graph on n vertices: the paper's worst-case BFS
// example ("consider a graph that is a very long chain, the layered BFS
// algorithm will not be able to expose any parallelism").
func Chain(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	b.Grow(n - 1)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	b.Grow(n * (n - 1) / 2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

// Grid2D returns the w×h 4-neighbor grid graph, vertex (x,y) = y*w+x.
func Grid2D(w, h int) *graph.Graph {
	b := graph.NewBuilder(w * h)
	b.Grow(2 * w * h)
	id := func(x, y int) int32 { return int32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return b.Build()
}

// Grid3D returns the w×h×d 6-neighbor grid graph.
func Grid3D(w, h, d int) *graph.Graph {
	b := graph.NewBuilder(w * h * d)
	b.Grow(3 * w * h * d)
	id := func(x, y, z int) int32 { return int32((z*h+y)*w + x) }
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if x+1 < w {
					b.AddEdge(id(x, y, z), id(x+1, y, z))
				}
				if y+1 < h {
					b.AddEdge(id(x, y, z), id(x, y+1, z))
				}
				if z+1 < d {
					b.AddEdge(id(x, y, z), id(x, y, z+1))
				}
			}
		}
	}
	return b.Build()
}

// ErdosRenyi returns a G(n, m) random simple graph: m distinct edges are
// attempted uniformly; self loops and duplicates are discarded, so the
// result has at most m edges.
func ErdosRenyi(n int, m int, seed uint64) *graph.Graph {
	r := xrand.New(seed)
	b := graph.NewBuilder(n)
	b.Grow(m)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

// RMAT returns a recursive-matrix power-law graph with 2^scale vertices and
// about edgeFactor*2^scale edges, using the standard (a,b,c,d) quadrant
// probabilities (Graph 500 uses a=0.57, b=c=0.19, d=0.05). The result is
// symmetrised and deduplicated, so the edge count is approximate.
func RMAT(scale int, edgeFactor int, a, b, c float64, seed uint64) *graph.Graph {
	if a+b+c >= 1 {
		panic(fmt.Sprintf("gen: RMAT quadrant probabilities a+b+c = %v >= 1", a+b+c))
	}
	n := 1 << scale
	m := edgeFactor * n
	r := xrand.New(seed)
	bld := graph.NewBuilder(n)
	bld.Grow(m)
	for i := 0; i < m; i++ {
		var u, v int
		for bit := scale - 1; bit >= 0; bit-- {
			p := r.Float64()
			switch {
			case p < a: // top-left
			case p < a+b: // top-right
				v |= 1 << bit
			case p < a+b+c: // bottom-left
				u |= 1 << bit
			default: // bottom-right
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		bld.AddEdge(int32(u), int32(v))
	}
	return bld.Build()
}

// RingOfCliques returns k cliques of size s, with clique i joined to clique
// (i+1) mod k by a single edge. Useful as a coloring stress test with known
// chromatic number s.
func RingOfCliques(k, s int) *graph.Graph {
	n := k * s
	b := graph.NewBuilder(n)
	b.Grow(k*s*(s-1)/2 + k)
	for c := 0; c < k; c++ {
		base := int32(c * s)
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				b.AddEdge(base+int32(i), base+int32(j))
			}
		}
		if k > 1 {
			next := int32(((c + 1) % k) * s)
			b.AddEdge(base, next)
		}
	}
	return b.Build()
}
