package gen

import (
	"testing"
	"testing/quick"
)

func TestChain(t *testing.T) {
	g := Chain(10)
	if g.NumVertices() != 10 || g.NumEdges() != 9 {
		t.Fatalf("got %s", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	_, nl := g.Levels(0)
	if nl != 10 {
		t.Errorf("chain(10) has %d levels from end, want 10", nl)
	}
}

func TestComplete(t *testing.T) {
	g := Complete(7)
	if g.NumEdges() != 21 || g.MaxDegree() != 6 {
		t.Fatalf("K7: %s", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(5, 4)
	if g.NumVertices() != 20 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	// Edges: horizontal 4*4 + vertical 5*3 = 31.
	if g.NumEdges() != 31 {
		t.Errorf("E = %d, want 31", g.NumEdges())
	}
	if g.MaxDegree() != 4 {
		t.Errorf("Δ = %d, want 4", g.MaxDegree())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	_, comps := g.ConnectedComponents()
	if comps != 1 {
		t.Errorf("grid has %d components", comps)
	}
}

func TestGrid3D(t *testing.T) {
	g := Grid3D(3, 3, 3)
	if g.NumVertices() != 27 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	// Edges: 3 directions * 2*3*3 = 54.
	if g.NumEdges() != 54 {
		t.Errorf("E = %d, want 54", g.NumEdges())
	}
	if g.MaxDegree() != 6 {
		t.Errorf("Δ = %d, want 6", g.MaxDegree())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiProperties(t *testing.T) {
	property := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%200) + 1
		m := int(mRaw % 800)
		g := ErdosRenyi(n, m, seed)
		return g.Validate() == nil && g.NumVertices() == n && g.NumEdges() <= int64(m)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(100, 300, 5)
	b := ErdosRenyi(100, 300, 5)
	if !a.Equal(b) {
		t.Error("same seed produced different graphs")
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 8, 0.57, 0.19, 0.19, 9)
	if g.NumVertices() != 1024 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Power-law-ish: max degree should be far above the average.
	if float64(g.MaxDegree()) < 3*g.AvgDegree() {
		t.Errorf("Δ = %d not skewed vs avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestRMATBadProbabilities(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for a+b+c >= 1")
		}
	}()
	RMAT(4, 2, 0.5, 0.3, 0.3, 1)
}

func TestRingOfCliques(t *testing.T) {
	g := RingOfCliques(5, 4)
	if g.NumVertices() != 20 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 5 cliques of 6 edges + 5 ring edges.
	if g.NumEdges() != 35 {
		t.Errorf("E = %d, want 35", g.NumEdges())
	}
	_, comps := g.ConnectedComponents()
	if comps != 1 {
		t.Errorf("%d components, want 1", comps)
	}
}

func TestSuiteConfigLookup(t *testing.T) {
	c, err := SuiteConfig("pwtk")
	if err != nil || c.Name != "pwtk" || c.PaperLevels != 267 {
		t.Errorf("SuiteConfig(pwtk) = %+v, %v", c, err)
	}
	if _, err := SuiteConfig("nope"); err == nil {
		t.Error("unknown graph accepted")
	}
}

func TestScaled(t *testing.T) {
	cfg, _ := SuiteConfig("ldoor")
	s := Scaled(cfg, 4)
	if s.V >= cfg.V || s.GridW >= cfg.GridW {
		t.Errorf("Scaled did not shrink: %+v", s)
	}
	if s.CliqueSize != cfg.CliqueSize {
		t.Error("Scaled changed the clique size (color target)")
	}
	if same := Scaled(cfg, 1); same.V != cfg.V {
		t.Error("Scaled(1) changed the config")
	}
}

// TestMeshMatchesTableIShape verifies, on 8x-scaled stand-ins, that the
// generator controls the Table I quantities: |V|, |E| within 2%, Δ exact-ish,
// connectivity, and the elongated level structure (pwtk longest).
func TestMeshMatchesTableIShape(t *testing.T) {
	graphs, configs, err := GenerateSuite(8)
	if err != nil {
		t.Fatal(err)
	}
	levelCount := make([]int, len(graphs))
	for i, g := range graphs {
		i := i
		cfg := configs[i]
		t.Run(cfg.Name, func(t *testing.T) {
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if g.NumVertices() != cfg.V {
				t.Errorf("V = %d, want %d", g.NumVertices(), cfg.V)
			}
			gotE, wantE := float64(g.NumEdges()), float64(cfg.E)
			if gotE < 0.95*wantE || gotE > 1.05*wantE {
				t.Errorf("E = %d, want %d ±5%%", g.NumEdges(), cfg.E)
			}
			d := g.MaxDegree()
			if d < cfg.CliqueSize-1 {
				t.Errorf("Δ = %d below clique degree %d", d, cfg.CliqueSize-1)
			}
			if cfg.MaxDegree < cfg.V && (d < cfg.MaxDegree*8/10 || d > cfg.MaxDegree*13/10) {
				t.Errorf("Δ = %d, want ≈%d", d, cfg.MaxDegree)
			}
			_, comps := g.ConnectedComponents()
			if comps != 1 {
				t.Errorf("%d components, want 1", comps)
			}
			_, nl := g.Levels(int32(g.NumVertices() / 2))
			levelCount[i] = nl
			if nl < 4 {
				t.Errorf("only %d BFS levels; generator lost the elongated structure", nl)
			}
		})
	}
	// Suite order: auto=0 ... pwtk=6. pwtk is the narrow 267-level outlier.
	// (Counts are zero when -run filters out a subtest; skip the check then.)
	if levelCount[0] > 0 && levelCount[6] > 0 && levelCount[6] <= levelCount[0] {
		t.Errorf("pwtk levels (%d) should exceed auto levels (%d): pwtk is the narrow outlier",
			levelCount[6], levelCount[0])
	}
}

func TestMeshDeterministic(t *testing.T) {
	cfg := Scaled(mustConfig(t, "hood"), 12)
	a, err := Mesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("Mesh not deterministic")
	}
}

func TestMeshRejectsBadConfig(t *testing.T) {
	if _, err := Mesh(MeshConfig{Name: "bad", V: 0, CliqueSize: 4, GridW: 2, LinkRadius: 1}); err == nil {
		t.Error("V=0 accepted")
	}
	if _, err := Mesh(MeshConfig{Name: "bad", V: 10, CliqueSize: 4, GridW: 2, LinkRadius: 0}); err == nil {
		t.Error("LinkRadius=0 accepted")
	}
}

func mustConfig(t *testing.T, name string) MeshConfig {
	t.Helper()
	c, err := SuiteConfig(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAdjacentPairsSmall(t *testing.T) {
	// 2x2 grid, radius 1: every pair of the 4 cells is adjacent -> 6 pairs.
	pairs := adjacentPairs(4, 2, 2, 1)
	if len(pairs) != 6 {
		t.Errorf("pairs = %d, want 6", len(pairs))
	}
	for _, p := range pairs {
		if p[0] >= p[1] {
			t.Errorf("pair %v not ordered", p)
		}
	}
}

func BenchmarkMeshHood64(b *testing.B) {
	cfg := Scaled(Suite()[2], 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Mesh(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
