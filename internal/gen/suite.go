package gen

import (
	"fmt"

	"micgraph/internal/graph"
	"micgraph/internal/xrand"
)

// MeshConfig parameterises one clique-grid FEM stand-in. See the package
// comment for the construction. The zero value is not usable; start from
// the Suite table or fill every field.
type MeshConfig struct {
	Name       string
	V          int    // vertex count
	E          int64  // target undirected edge count (approximate, ±1%)
	CliqueSize int    // s; also the expected greedy color count
	GridW      int    // clique-grid width (frontier width)
	LinkRadius int    // Chebyshev radius of inter-clique links (1 for FEM-like)
	LinkExact  bool   // links only at exactly LinkRadius (long jumps), not within it
	MaxDegree  int    // Δ target, reached via hub vertices
	NumHubs    int    // number of hub vertices
	Seed       uint64 // generator seed

	// Published values from Table I of the paper, for reporting only.
	PaperColors int
	PaperLevels int
}

// Suite returns the seven Table I stand-in configurations at full scale.
// GridW values are chosen so that L = ceil(K/GridW) matches the published
// BFS level count: with radius-1 links a BFS crosses one clique row per ~2
// hops, giving ≈L levels from the middle row; pwtk's narrow 17-wide ribbon
// reproduces its 267-level outlier profile. auto's wider link radius (3)
// models its higher-connectivity tetrahedral mesh (levels ≪ grid size).
func Suite() []MeshConfig {
	return []MeshConfig{
		// Name        V       E        s  GridW R  Δ    hubs  seed  colors levels
		//
		// GridW calibration: with dense radius-1 links the BFS front crosses
		// ~1 clique row per level, so levels ≈ L/2 from the middle row and
		// GridW ≈ K/(2·levels). auto uses radius-3 links at ~0.7 edges/pair
		// (its tetrahedral mesh is higher-connectivity but sparser per
		// direction), advancing ~2 cells/level, so GridW ≈ K·2/(4·levels).
		{"auto", 448695, 3314611, 13, 134, 3, true, 37, 500, 101, 13, 58},
		{"bmw3_2", 227362, 5530634, 48, 18, 1, false, 335, 300, 102, 48, 86},
		{"hood", 220542, 4837440, 40, 14, 1, false, 76, 400, 103, 40, 116},
		{"inline_1", 503712, 18156315, 51, 16, 1, false, 842, 200, 104, 51, 183},
		{"ldoor", 952203, 20770807, 42, 58, 1, false, 76, 600, 105, 42, 169},
		{"msdoor", 415863, 9378650, 42, 29, 1, false, 76, 500, 106, 42, 99},
		{"pwtk", 217918, 5653257, 48, 6, 1, false, 179, 300, 107, 48, 267},
	}
}

// SuiteConfig returns the full-scale configuration with the given name.
func SuiteConfig(name string) (MeshConfig, error) {
	for _, c := range Suite() {
		if c.Name == name {
			return c, nil
		}
	}
	return MeshConfig{}, fmt.Errorf("gen: unknown suite graph %q", name)
}

// Scaled returns a copy of cfg shrunk by the linear factor f (f=1 returns
// cfg unchanged): |V| and |E| divide by f², grid dimensions by f, so the
// graph keeps its aspect ratio, degree structure and color count while the
// level count shrinks by ~f. Used to keep unit tests and CI fast.
func Scaled(cfg MeshConfig, f int) MeshConfig {
	if f <= 1 {
		return cfg
	}
	c := cfg
	c.V = maxInt(cfg.V/(f*f), 4*cfg.CliqueSize)
	c.E = maxInt64(cfg.E/int64(f*f), int64(c.V)*int64(cfg.CliqueSize-1)/2)
	c.GridW = maxInt(cfg.GridW/f, 2)
	c.NumHubs = maxInt(cfg.NumHubs/(f*f), 1)
	if c.MaxDegree >= c.V {
		c.MaxDegree = c.V - 1
	}
	c.Name = fmt.Sprintf("%s/%d", cfg.Name, f)
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Mesh generates the clique-grid graph described by cfg. The result is
// connected, simple and deterministic for a given config.
func Mesh(cfg MeshConfig) (*graph.Graph, error) {
	if cfg.V <= 0 || cfg.CliqueSize <= 0 || cfg.GridW <= 0 {
		return nil, fmt.Errorf("gen: invalid mesh config %+v", cfg)
	}
	if cfg.LinkRadius <= 0 {
		return nil, fmt.Errorf("gen: mesh %q needs LinkRadius >= 1", cfg.Name)
	}
	s := cfg.CliqueSize
	numCliques := (cfg.V + s - 1) / s
	gridW := cfg.GridW
	gridL := (numCliques + gridW - 1) / gridW
	r := xrand.New(cfg.Seed)

	// cliqueBase(k) is the first vertex id of clique k; clique k has
	// cliqueSize(k) vertices (the last clique may be smaller).
	cliqueBase := func(k int) int32 { return int32(k * s) }
	cliqueSize := func(k int) int {
		if k == numCliques-1 {
			return cfg.V - k*s
		}
		return s
	}
	randomMember := func(k int) int32 {
		return cliqueBase(k) + int32(r.Intn(cliqueSize(k)))
	}

	b := graph.NewBuilder(cfg.V)
	b.Grow(int(cfg.E) + cfg.V/16)

	// 1. Intra-clique edges: each clique is complete.
	var cliqueEdges int64
	for k := 0; k < numCliques; k++ {
		base := cliqueBase(k)
		sz := cliqueSize(k)
		for i := 0; i < sz; i++ {
			for j := i + 1; j < sz; j++ {
				b.AddEdge(base+int32(i), base+int32(j))
			}
		}
		cliqueEdges += int64(sz) * int64(sz-1) / 2
	}

	// 2. Backbone: consecutive cliques in row-major order are joined so the
	// graph is connected regardless of how the random budget lands.
	for k := 0; k+1 < numCliques; k++ {
		b.AddEdge(randomMember(k), randomMember(k+1))
	}

	// 3. Inter-clique budget spread over grid-adjacent clique pairs within
	// Chebyshev distance LinkRadius.
	budget := cfg.E - cliqueEdges - int64(numCliques-1)
	hubBudget := int64(cfg.NumHubs) * int64(maxInt(cfg.MaxDegree-s, 0))
	budget -= hubBudget
	if budget > 0 {
		pairs := adjacentPairs(numCliques, gridW, gridL, cfg.LinkRadius)
		if cfg.LinkExact {
			exact := pairs[:0]
			for _, p := range pairs {
				if chebyshev(p[0], p[1], gridW) == cfg.LinkRadius {
					exact = append(exact, p)
				}
			}
			pairs = exact
		}
		if len(pairs) > 0 {
			perPair := budget / int64(len(pairs))
			rem := budget % int64(len(pairs))
			for i, p := range pairs {
				edges := perPair
				if int64(i) < rem {
					edges++
				}
				for e := int64(0); e < edges; e++ {
					b.AddEdge(randomMember(p[0]), randomMember(p[1]))
				}
			}
		}
	}

	// 4. Hubs: the first vertex of evenly spaced cliques is connected to
	// random vertices in cliques within grid distance 2, raising its degree
	// to ~MaxDegree while preserving index locality. Being first in its
	// clique, a hub is colored early by First Fit and takes a low color, so
	// hubs raise Δ without inflating the color count.
	if cfg.NumHubs > 0 && cfg.MaxDegree > s {
		stride := maxInt(numCliques/cfg.NumHubs, 1)
		for h := 0; h < cfg.NumHubs; h++ {
			k := (h * stride) % numCliques
			hub := cliqueBase(k)
			// Aim below the target by the expected degree a vertex picks up
			// from the random inter-clique budget and backbone, so the hub
			// lands on ~MaxDegree rather than overshooting.
			avgExtra := 0
			if cfg.V > 0 {
				avgExtra = int(2 * budget / int64(cfg.V))
			}
			extra := cfg.MaxDegree - (cliqueSize(k) - 1) - 2 - avgExtra
			// Enumerate distinct (clique, member) targets round-robin over the
			// nearby neighborhood so the hub reaches its degree target
			// exactly instead of losing edges to duplicate sampling. The
			// radius starts at 2 and widens when the neighborhood is too
			// small to supply `extra` distinct endpoints (scaled-down graphs).
			radius := 2
			targets := nearbyCliques(k, gridW, gridL, numCliques, radius)
			for len(targets)*s < extra && radius < gridW+gridL {
				radius++
				targets = nearbyCliques(k, gridW, gridL, numCliques, radius)
			}
			if len(targets) == 0 {
				continue
			}
			for e := 0; e < extra; e++ {
				kk := targets[e%len(targets)]
				member := (e / len(targets)) % cliqueSize(kk)
				if e/len(targets) >= cliqueSize(kk) {
					continue // tiny graph: neighborhood exhausted
				}
				b.AddEdge(hub, cliqueBase(kk)+int32(member))
			}
		}
	}

	return b.Build(), nil
}

// chebyshev returns the Chebyshev grid distance between cliques a and b.
func chebyshev(a, b, gridW int) int {
	dr := a/gridW - b/gridW
	if dr < 0 {
		dr = -dr
	}
	dc := a%gridW - b%gridW
	if dc < 0 {
		dc = -dc
	}
	if dr > dc {
		return dr
	}
	return dc
}

// adjacentPairs lists the clique-grid pairs (k1 < k2) whose cells are within
// Chebyshev distance radius on the gridW × gridL layout.
func adjacentPairs(numCliques, gridW, gridL, radius int) [][2]int {
	var pairs [][2]int
	for k := 0; k < numCliques; k++ {
		row, col := k/gridW, k%gridW
		for dr := 0; dr <= radius; dr++ {
			for dc := -radius; dc <= radius; dc++ {
				if dr == 0 && dc <= 0 {
					continue // enumerate each unordered pair once
				}
				nr, nc := row+dr, col+dc
				if nr < 0 || nr >= gridL || nc < 0 || nc >= gridW {
					continue
				}
				kk := nr*gridW + nc
				if kk < numCliques {
					pairs = append(pairs, [2]int{k, kk})
				}
			}
		}
	}
	return pairs
}

// nearbyCliques lists the cliques within Chebyshev distance radius of
// clique k (excluding k itself), in deterministic row-major order.
func nearbyCliques(k, gridW, gridL, numCliques, radius int) []int {
	row, col := k/gridW, k%gridW
	out := make([]int, 0, (2*radius+1)*(2*radius+1)-1)
	for dr := -radius; dr <= radius; dr++ {
		for dc := -radius; dc <= radius; dc++ {
			nr, nc := row+dr, col+dc
			if nr < 0 || nr >= gridL || nc < 0 || nc >= gridW {
				continue
			}
			kk := nr*gridW + nc
			if kk < numCliques && kk != k {
				out = append(out, kk)
			}
		}
	}
	return out
}

// GenerateSuite generates all seven stand-ins at the given linear scale
// factor (1 = full size). Returns them in Suite order.
func GenerateSuite(scale int) ([]*graph.Graph, []MeshConfig, error) {
	configs := Suite()
	graphs := make([]*graph.Graph, len(configs))
	for i, cfg := range configs {
		cfg = Scaled(cfg, scale)
		configs[i] = cfg
		g, err := Mesh(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("gen: %s: %w", cfg.Name, err)
		}
		graphs[i] = g
	}
	return graphs, configs, nil
}
