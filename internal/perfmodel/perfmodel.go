// Package perfmodel implements the paper's analytical performance model for
// layered BFS (§III-C).
//
// The computation is L synchronized parallel steps, one per BFS level, with
// x_l vertices at level l, executed by t threads in blocks of b vertices.
// Under the model's five simplifying assumptions (uniform vertex cost, no
// cache effects, independent threads, no scheduling or synchronisation
// overhead), the time of level l is
//
//	c(l) = x_l                    if x_l < b   (one thread handles it)
//	c(l) = ceil(x_l/(t·b)) · b    otherwise    (rounds of t blocks)
//
// and the achievable speedup is Σ x_l / Σ c(l). The model explains both the
// slope change the paper observes on pwtk at ~13 threads and why no
// implementation can beat ~35x on these graphs regardless of SMT.
package perfmodel

import "fmt"

// LevelTime returns c(l) for a level of width x with t threads and block
// size b.
func LevelTime(x int64, t, b int) int64 {
	if x <= 0 {
		return 0
	}
	if t < 1 || b < 1 {
		panic(fmt.Sprintf("perfmodel: invalid t=%d b=%d", t, b))
	}
	bb := int64(b)
	if x < bb {
		return x
	}
	tb := int64(t) * bb
	rounds := (x + tb - 1) / tb
	return rounds * bb
}

// Speedup returns the model's achievable speedup for the given level-width
// profile, thread count and block size.
func Speedup(widths []int64, t, b int) float64 {
	var work, time int64
	for _, x := range widths {
		work += x
		time += LevelTime(x, t, b)
	}
	if time == 0 {
		return 0
	}
	return float64(work) / float64(time)
}

// Curve evaluates the model at each thread count, returning the speedup
// series for a figure's x-axis.
func Curve(widths []int64, threads []int, b int) []float64 {
	out := make([]float64, len(threads))
	for i, t := range threads {
		out[i] = Speedup(widths, t, b)
	}
	return out
}

// Saturation returns the smallest thread count at which the model's speedup
// stops improving by more than eps, and that plateau speedup. This is the
// "margin for improvement is quite small" point the paper identifies.
func Saturation(widths []int64, b, maxThreads int, eps float64) (threads int, speedup float64) {
	prev := Speedup(widths, 1, b)
	for t := 2; t <= maxThreads; t++ {
		s := Speedup(widths, t, b)
		if s-prev <= eps {
			return t - 1, prev
		}
		prev = s
	}
	return maxThreads, prev
}

// UpperBound returns the absolute ceiling of the model for a profile: every
// level costs at least one block (if narrower than b, at least its width),
// so speedup ≤ Σx_l / Σ min(x_l, b)·… — equivalently the speedup at t → ∞.
func UpperBound(widths []int64, b int) float64 {
	var work, time int64
	for _, x := range widths {
		work += x
		if x <= 0 {
			continue
		}
		if x < int64(b) {
			time += x
		} else {
			time += int64(b) // one round of infinitely many threads
		}
	}
	if time == 0 {
		return 0
	}
	return float64(work) / float64(time)
}
