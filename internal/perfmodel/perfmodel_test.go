package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLevelTimeRegimes(t *testing.T) {
	// Below one block: a single thread runs it in x time.
	if got := LevelTime(5, 8, 32); got != 5 {
		t.Errorf("LevelTime(5,8,32) = %d, want 5", got)
	}
	// Exactly t*b: one round of b.
	if got := LevelTime(256, 8, 32); got != 32 {
		t.Errorf("LevelTime(256,8,32) = %d, want 32", got)
	}
	// Just above t*b: two rounds.
	if got := LevelTime(257, 8, 32); got != 64 {
		t.Errorf("LevelTime(257,8,32) = %d, want 64", got)
	}
	// x == b boundary uses the parallel branch: ceil(b/(t·b))·b = b.
	if got := LevelTime(32, 4, 32); got != 32 {
		t.Errorf("LevelTime(32,4,32) = %d, want 32", got)
	}
	if got := LevelTime(0, 4, 32); got != 0 {
		t.Errorf("LevelTime(0) = %d, want 0", got)
	}
}

func TestLevelTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for t=0")
		}
	}()
	LevelTime(10, 0, 32)
}

func TestSpeedupSingleThreadNearOne(t *testing.T) {
	widths := []int64{1, 10, 100, 1000, 100, 10, 1}
	s := Speedup(widths, 1, 32)
	// With t=1, c(l) ≥ x_l (block rounding only), so speedup ≤ 1.
	if s > 1.0001 {
		t.Errorf("1-thread speedup %v > 1", s)
	}
	if s < 0.9 {
		t.Errorf("1-thread speedup %v unexpectedly low (rounding loss too high)", s)
	}
}

func TestSpeedupMonotoneInThreads(t *testing.T) {
	property := func(seed uint16) bool {
		widths := make([]int64, 20)
		x := int64(seed%100) + 1
		for i := range widths {
			widths[i] = (x*int64(i+3)*7919)%5000 + 1
		}
		prev := 0.0
		for _, th := range []int{1, 2, 4, 8, 16, 31, 62, 124} {
			s := Speedup(widths, th, 32)
			if s+1e-9 < prev {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSpeedupBoundedByThreadsAndUpperBound(t *testing.T) {
	property := func(seed uint16, tRaw uint8) bool {
		th := int(tRaw%128) + 1
		widths := make([]int64, 30)
		for i := range widths {
			widths[i] = (int64(seed)*int64(i+1)*104729)%3000 + 1
		}
		s := Speedup(widths, th, 32)
		if s > float64(th)+1e-9 {
			return false // can't beat linear
		}
		return s <= UpperBound(widths, 32)+1e-9
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestChainHasNoParallelism(t *testing.T) {
	// The paper's worst case: a long chain (every level width 1) can never
	// speed up.
	widths := make([]int64, 1000)
	for i := range widths {
		widths[i] = 1
	}
	for _, th := range []int{1, 16, 124} {
		if s := Speedup(widths, th, 32); math.Abs(s-1) > 1e-9 {
			t.Errorf("chain speedup at t=%d is %v, want 1", th, s)
		}
	}
	if ub := UpperBound(widths, 32); math.Abs(ub-1) > 1e-9 {
		t.Errorf("chain upper bound %v, want 1", ub)
	}
}

func TestWideProfileScalesLinearly(t *testing.T) {
	// One huge level: speedup ≈ t until rounding bites.
	widths := []int64{1 << 20}
	for _, th := range []int{2, 8, 32} {
		s := Speedup(widths, th, 32)
		if s < 0.95*float64(th) {
			t.Errorf("wide level speedup at t=%d is %v, want ≈%d", th, s, th)
		}
	}
}

func TestSlopeChange(t *testing.T) {
	// A profile whose widths hover around w saturates near w/b threads —
	// the pwtk "slope change at 13 threads" phenomenon. Construct widths of
	// ~416 = 13 blocks of 32: beyond 13 threads each level still costs one
	// round, so speedup stops growing.
	widths := make([]int64, 200)
	for i := range widths {
		widths[i] = 416
	}
	s13 := Speedup(widths, 13, 32)
	s31 := Speedup(widths, 31, 32)
	if s31-s13 > 0.01 {
		t.Errorf("speedup grew from %v to %v beyond the width/b saturation point", s13, s31)
	}
	if s13 < 12 {
		t.Errorf("speedup at 13 threads %v, want ≈13", s13)
	}
}

func TestCurve(t *testing.T) {
	widths := []int64{100, 200, 300}
	threads := []int{1, 2, 4}
	c := Curve(widths, threads, 16)
	if len(c) != 3 {
		t.Fatalf("curve length %d", len(c))
	}
	for i := 1; i < len(c); i++ {
		if c[i] < c[i-1]-1e-9 {
			t.Errorf("curve not monotone: %v", c)
		}
	}
}

func TestSaturation(t *testing.T) {
	widths := make([]int64, 50)
	for i := range widths {
		widths[i] = 64 // two blocks: saturates at 2 threads
	}
	th, s := Saturation(widths, 32, 124, 1e-6)
	if th != 2 {
		t.Errorf("saturation at %d threads, want 2", th)
	}
	if math.Abs(s-2) > 1e-9 {
		t.Errorf("plateau speedup %v, want 2", s)
	}
}

func TestEmptyProfile(t *testing.T) {
	if Speedup(nil, 4, 32) != 0 || UpperBound(nil, 32) != 0 {
		t.Error("empty profile should give zero speedup")
	}
}
