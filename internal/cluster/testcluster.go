package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"micgraph/internal/serve"
)

// TestCluster is the in-process multi-node harness: N full cluster nodes,
// each a real serve.Server behind a real TCP listener on 127.0.0.1, wired
// to each other by static membership exactly as N separate daemon
// processes would be. Tests, the chaos oracle and the cluster-smoke CI
// job drive it over plain HTTP; Kill gives the abrupt-death semantics of
// a SIGKILL (listener and live connections drop mid-byte, no drain).
type TestCluster struct {
	Nodes []*Node
	URLs  []string

	servers   []*http.Server
	listeners []net.Listener
	cancels   []context.CancelFunc
	dead      []bool
	serveWG   sync.WaitGroup
}

// TestClusterOptions configures the harness. Zero values work: 2-worker
// nodes with default ring parameters and 1s probes.
type TestClusterOptions struct {
	// Serve is the per-node daemon template (every node gets an identical
	// copy; ShardID is overwritten per node).
	Serve serve.Config
	// Cluster is the membership/ring template (Self and Peers are
	// overwritten per node).
	Cluster Config
}

// StartTestCluster boots an n-node cluster on loopback listeners and
// starts every node's health probes. Node names are "n1".."n<n>".
func StartTestCluster(n int, opts TestClusterOptions) (*TestCluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: test cluster needs at least 1 node")
	}
	tc := &TestCluster{
		Nodes:     make([]*Node, n),
		URLs:      make([]string, n),
		servers:   make([]*http.Server, n),
		listeners: make([]net.Listener, n),
		cancels:   make([]context.CancelFunc, n),
		dead:      make([]bool, n),
	}
	// Listeners first: every node needs the full peer URL list before any
	// node exists.
	peers := make([]Peer, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tc.Close()
			return nil, fmt.Errorf("cluster: test listener: %w", err)
		}
		tc.listeners[i] = ln
		tc.URLs[i] = "http://" + ln.Addr().String()
		peers[i] = Peer{Name: fmt.Sprintf("n%d", i+1), URL: tc.URLs[i]}
	}
	for i := 0; i < n; i++ {
		cfg := opts.Cluster
		cfg.Self = peers[i].Name
		cfg.Peers = peers
		node, err := NewNode(cfg, opts.Serve)
		if err != nil {
			tc.Close()
			return nil, err
		}
		tc.Nodes[i] = node
		ctx, cancel := context.WithCancel(context.Background())
		tc.cancels[i] = cancel
		node.Start(ctx)
		srv := &http.Server{Handler: node.Handler()}
		tc.servers[i] = srv
		tc.serveWG.Add(1)
		go func(srv *http.Server, ln net.Listener) {
			defer tc.serveWG.Done()
			srv.Serve(ln) // returns ErrServerClosed on Kill/Close
		}(srv, tc.listeners[i])
	}
	return tc, nil
}

// Kill abruptly stops node i: health probes stop, the listener closes and
// every live connection (including mid-stream result relays) drops — the
// in-process equivalent of SIGKILL. In-flight jobs on the dead shard are
// simply gone; surviving peers evict it from their rings after
// FailThreshold probe failures.
func (tc *TestCluster) Kill(i int) {
	if i < 0 || i >= len(tc.Nodes) || tc.dead[i] {
		return
	}
	tc.dead[i] = true
	if tc.cancels[i] != nil {
		tc.cancels[i]()
	}
	if tc.servers[i] != nil {
		tc.servers[i].Close()
	} else if tc.listeners[i] != nil {
		tc.listeners[i].Close()
	}
}

// Close shuts the whole cluster down. Surviving nodes get a short drain
// (so their worker runtimes release cleanly) before their listeners
// close; already-killed nodes are skipped.
func (tc *TestCluster) Close() {
	for i := range tc.Nodes {
		if tc.dead[i] || tc.Nodes[i] == nil {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		tc.Nodes[i].Drain(ctx)
		cancel()
	}
	for i := range tc.listeners {
		tc.Kill(i)
	}
	// Every serve loop has a closed listener now; reap the goroutines so
	// nothing from this cluster outlives Close.
	tc.serveWG.Wait()
}
