package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParsePeersList(t *testing.T) {
	peers, err := ParsePeers("n2=http://10.0.0.2:8377/, n1=http://10.0.0.1:8377 ,n3=http://10.0.0.3:8377")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 {
		t.Fatalf("want 3 peers, got %v", peers)
	}
	// Normalised: sorted by name, trailing slash trimmed.
	if peers[0].Name != "n1" || peers[1].Name != "n2" || peers[2].Name != "n3" {
		t.Fatalf("peers not sorted by name: %v", peers)
	}
	if peers[1].URL != "http://10.0.0.2:8377" {
		t.Fatalf("trailing slash not trimmed: %q", peers[1].URL)
	}
}

func TestParsePeersFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peers.json")
	if err := os.WriteFile(path, []byte(
		`[{"name":"b","url":"http://b:1"},{"name":"a","url":"http://a:1"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	peers, err := ParsePeers("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0].Name != "a" {
		t.Fatalf("unexpected peers: %v", peers)
	}
}

func TestParsePeersErrors(t *testing.T) {
	for _, s := range []string{"", "justaname", "@/does/not/exist.json"} {
		if _, err := ParsePeers(s); err == nil {
			t.Errorf("ParsePeers(%q): want error", s)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	base := []Peer{{Name: "n1", URL: "http://a:1"}, {Name: "n2", URL: "http://b:1"}}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"missing self", Config{Self: "nx", Peers: base}, "does not contain self"},
		{"empty self", Config{Peers: base}, "needs a self name"},
		{"dup name", Config{Self: "n1", Peers: append([]Peer{{Name: "n1", URL: "http://c:1"}}, base...)}, "duplicate"},
		{"slash in name", Config{Self: "a/b", Peers: []Peer{{Name: "a/b", URL: "http://a:1"}}}, "must not contain"},
		{"empty url", Config{Self: "n1", Peers: []Peer{{Name: "n1"}}}, "both name and url"},
	}
	for _, c := range cases {
		err := c.cfg.validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
	ok := Config{Self: "n1", Peers: base}
	if err := ok.validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Self: "n1", Peers: []Peer{
		{Name: "n1", URL: "u1"}, {Name: "n2", URL: "u2"},
	}, Replication: 5}.withDefaults()
	if cfg.Replication != 2 {
		t.Errorf("replication not clamped to cluster size: %d", cfg.Replication)
	}
	if cfg.Seed != 1 || cfg.VNodes != 64 || cfg.FailThreshold != 2 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.Clock == nil || cfg.HTTP == nil || cfg.Logf == nil {
		t.Error("nil dependencies not defaulted")
	}
}
