package cluster

import (
	"math"
	"sort"
	"sync"
)

// Ring is a seeded consistent-hash ring with virtual nodes. Every cluster
// member builds an identical ring from the shared (seed, membership)
// pair, so placement needs no coordination: Owner and Replicas are pure
// functions of the ring state. It implements serve.Placement.
//
// The two properties the tests pin are the classic consistent-hashing
// guarantees: with V virtual nodes per member the key distribution is
// balanced within a constant factor of fair share, and adding or removing
// one of N nodes moves only ~K/N of K keys (the keys whose ring arc the
// change touches) — everything else keeps its owner, which is what keeps
// cache residency warm across membership churn.
type Ring struct {
	mu     sync.RWMutex
	seed   uint64
	vnodes int
	nodes  map[string]bool
	points []point // sorted by hash; len = vnodes * len(nodes)
}

type point struct {
	hash uint64
	node string
}

// NewRing creates an empty ring. All members of one cluster must share
// seed and vnodes; a fixed pair makes placement fully deterministic.
func NewRing(seed uint64, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{seed: seed, vnodes: vnodes, nodes: make(map[string]bool)}
}

// fnv64a is FNV-1a seeded by folding the ring seed in first, so two rings
// with different seeds place the same keys differently (the determinism
// tests rely on the converse: same seed, same placement).
func (r *Ring) hash(parts ...string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	s := r.seed
	for i := 0; i < 8; i++ {
		h ^= s & 0xff
		h *= prime
		s >>= 8
	}
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime
		}
		h ^= '/'
		h *= prime
	}
	// FNV-1a mixes low bits poorly for short inputs, which shows up as ring
	// imbalance; a splitmix64-style finalizer avalanches the state so vnode
	// points land uniformly.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Add inserts node's virtual points (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, point{hash: r.hash(node, itoa(v)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove drops node's virtual points (idempotent). Keys owned by the
// removed node redistribute to their ring successors; every other key
// keeps its owner.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports whether node is currently in the ring.
func (r *Ring) Has(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nodes[node]
}

// Nodes returns the current members, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the node owning key: the first ring point at or after the
// key's hash. "" when the ring is empty.
func (r *Ring) Owner(key string) string {
	reps := r.Replicas(key, 1)
	if len(reps) == 0 {
		return ""
	}
	return reps[0]
}

// Replicas returns up to n distinct nodes for key in ring order, owner
// first. Successive distinct nodes along the ring form the replica set,
// so removing the owner promotes exactly its first replica — minimal
// movement extends to replica sets too.
func (r *Ring) Replicas(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := r.hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// PickBounded chooses a serving node among candidates (ring order, owner
// first) under the bounded-load rule: the owner wins while its current
// load stays within ceil(c * mean candidate load) — cache affinity is
// free when the owner is not overloaded — and an over-bound owner spills
// to the least-loaded candidate (ties resolve in ring order). Spilling to
// the least-loaded rather than the next-in-order replica matters under
// sustained overload: first-fit lets each successive replica soak up to
// the bound before the next sees any work, which re-creates exactly the
// skew the bound exists to prevent. load returns a node's in-flight job
// count and whether it is known (unknown/unhealthy nodes are skipped).
// Returns "" if no candidate has a known load.
func PickBounded(candidates []string, load func(node string) (int, bool), c float64) string {
	type cand struct {
		node string
		load int
	}
	known := make([]cand, 0, len(candidates))
	sum := 0
	for _, n := range candidates {
		l, ok := load(n)
		if !ok {
			continue
		}
		known = append(known, cand{node: n, load: l})
		sum += l
	}
	if len(known) == 0 {
		return ""
	}
	mean := float64(sum) / float64(len(known))
	bound := int(math.Ceil(c * mean))
	if bound < 1 {
		bound = 1
	}
	if known[0].load <= bound {
		return known[0].node
	}
	best := known[0]
	for _, k := range known[1:] {
		if k.load < best.load {
			best = k
		}
	}
	return best.node
}

// itoa is a tiny strconv.Itoa for non-negative vnode indices (avoids the
// import for one call site).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
