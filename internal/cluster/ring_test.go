package cluster

import (
	"fmt"
	"testing"
)

func ringWith(seed uint64, vnodes, n int) *Ring {
	r := NewRing(seed, vnodes)
	for i := 1; i <= n; i++ {
		r.Add(fmt.Sprintf("n%d", i))
	}
	return r
}

func keys(k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = fmt.Sprintf("suite:g%d@%d", i%97, i)
	}
	return out
}

// Key distribution must stay within a constant factor of fair share for
// every cluster size the docs quote. The ring is fully deterministic
// under a fixed seed, so the bounds are exact assertions, not statistics.
func TestRingDistributionBounds(t *testing.T) {
	const K = 10000
	ks := keys(K)
	for _, n := range []int{3, 5, 8} {
		r := ringWith(1, 64, n)
		counts := make(map[string]int)
		for _, k := range ks {
			counts[r.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d nodes own keys", n, len(counts))
		}
		fair := float64(K) / float64(n)
		for node, c := range counts {
			if ratio := float64(c) / fair; ratio < 0.6 || ratio > 1.4 {
				t.Errorf("n=%d: node %s owns %d keys (%.2fx fair share %0.f), want within [0.6, 1.4]",
					n, node, c, ratio, fair)
			}
		}
	}
}

// Removing one of N nodes must move only the removed node's keys — every
// other key keeps its owner — and the moved fraction must be about K/N.
// Same for adding: only keys the new node now owns may change hands.
func TestRingMinimalMovement(t *testing.T) {
	const K, N = 10000, 5
	ks := keys(K)
	r := ringWith(1, 64, N)
	before := make(map[string]string, K)
	for _, k := range ks {
		before[k] = r.Owner(k)
	}

	r.Remove("n3")
	moved := 0
	for _, k := range ks {
		now := r.Owner(k)
		if now != before[k] {
			if before[k] != "n3" {
				t.Fatalf("remove: key %q moved %s -> %s though n3 was removed", k, before[k], now)
			}
			moved++
		}
	}
	if limit := 2 * K / N; moved > limit {
		t.Errorf("remove: %d keys moved, want <= %d (~K/N)", moved, limit)
	}
	if moved == 0 {
		t.Error("remove: no keys moved at all")
	}

	r.Add("n3") // restore; movement on add mirrors removal
	added := 0
	for _, k := range ks {
		now := r.Owner(k)
		if now != before[k] {
			t.Fatalf("add: key %q owned by %s, was %s before the remove/add cycle", k, now, before[k])
		}
		if now == "n3" {
			added++
		}
	}
	if added == 0 {
		t.Error("add: restored node owns nothing")
	}
}

// Placement is a pure function of (seed, membership): two rings built
// independently agree on every key, and a different seed disagrees on at
// least some.
func TestRingDeterministicPlacement(t *testing.T) {
	ks := keys(2000)
	a := ringWith(7, 64, 5)
	b := ringWith(7, 64, 5)
	for _, k := range ks {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("same seed: key %q owned by %s vs %s", k, ao, bo)
		}
		ar, br := a.Replicas(k, 3), b.Replicas(k, 3)
		if fmt.Sprint(ar) != fmt.Sprint(br) {
			t.Fatalf("same seed: key %q replicas %v vs %v", k, ar, br)
		}
	}
	c := ringWith(8, 64, 5)
	differ := 0
	for _, k := range ks {
		if a.Owner(k) != c.Owner(k) {
			differ++
		}
	}
	if differ == 0 {
		t.Error("different seeds produced identical placement for 2000 keys")
	}
}

func TestRingReplicas(t *testing.T) {
	r := ringWith(1, 64, 5)
	reps := r.Replicas("some-key", 3)
	if len(reps) != 3 {
		t.Fatalf("want 3 replicas, got %v", reps)
	}
	seen := map[string]bool{}
	for _, n := range reps {
		if seen[n] {
			t.Fatalf("duplicate replica in %v", reps)
		}
		seen[n] = true
	}
	if reps[0] != r.Owner("some-key") {
		t.Fatalf("first replica %s is not the owner %s", reps[0], r.Owner("some-key"))
	}
	if got := r.Replicas("some-key", 10); len(got) != 5 {
		t.Fatalf("replicas beyond cluster size: want 5, got %v", got)
	}
	if got := NewRing(1, 8).Replicas("k", 2); got != nil {
		t.Fatalf("empty ring: want nil, got %v", got)
	}
}

func TestPickBounded(t *testing.T) {
	loads := map[string]int{"a": 10, "b": 1, "c": 1}
	look := func(n string) (int, bool) {
		l, ok := loads[n]
		return l, ok
	}
	// Owner far over the bound: skipped in favour of the next replica.
	if got := PickBounded([]string{"a", "b", "c"}, look, 1.25); got != "b" {
		t.Errorf("overloaded owner: picked %s, want b", got)
	}
	// Balanced loads: the owner wins.
	loads = map[string]int{"a": 2, "b": 2, "c": 2}
	if got := PickBounded([]string{"a", "b", "c"}, look, 1.25); got != "a" {
		t.Errorf("balanced: picked %s, want owner a", got)
	}
	// Unknown (unhealthy) owner is skipped entirely.
	loads = map[string]int{"b": 5, "c": 3}
	if got := PickBounded([]string{"a", "b", "c"}, look, 1.25); got == "a" || got == "" {
		t.Errorf("unknown owner: picked %q, want a healthy replica", got)
	}
	// Everyone over an impossible bound: least-loaded wins.
	loads = map[string]int{"a": 9, "b": 4, "c": 7}
	if got := PickBounded([]string{"a", "b", "c"}, look, 0.0001); got != "b" {
		t.Errorf("all over bound: picked %s, want least-loaded b", got)
	}
	// No candidate known at all.
	loads = map[string]int{}
	if got := PickBounded([]string{"a", "b"}, look, 1.25); got != "" {
		t.Errorf("no known loads: picked %q, want \"\"", got)
	}
}
