package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"micgraph/internal/fault"
	"micgraph/internal/serve"
)

// fastOpts is the test harness shape: small daemons, aggressive probes so
// eviction tests converge in tens of milliseconds.
func fastOpts() TestClusterOptions {
	return TestClusterOptions{
		Serve: serve.Config{
			Workers:       2,
			KernelWorkers: 2,
			QueueDepth:    32,
			CacheBytes:    64 << 20,
		},
		Cluster: Config{
			ProbeInterval: 25 * time.Millisecond,
			ProbeTimeout:  250 * time.Millisecond,
			FailThreshold: 2,
		},
	}
}

func postJob(t *testing.T, url, body string, hdr map[string]string) (*http.Response, serve.JobView) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/jobs", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit to %s: %v", url, err)
	}
	defer resp.Body.Close()
	var view serve.JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatalf("decoding job view: %v", err)
		}
	}
	return resp, view
}

func awaitTerminal(t *testing.T, url, id string, within time.Duration) serve.JobView {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/jobs/" + id)
		if err != nil {
			t.Fatalf("polling %s: %v", id, err)
		}
		var view serve.JobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("polling %s: %v", id, err)
		}
		switch view.Status {
		case serve.StatusSucceeded, serve.StatusFailed, serve.StatusCancelled:
			return view
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal within %s", id, within)
	return serve.JobView{}
}

func resultLines(t *testing.T, url, id string) (http.Header, []map[string]any) {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("result %s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: status %d", id, resp.StatusCode)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("result %s: bad JSONL line %q: %v", id, sc.Text(), err)
		}
		lines = append(lines, m)
	}
	return resp.Header, lines
}

// specOwnedBy finds a fast kernel spec whose placement key is owned by
// the named shard (searching suite/scale combinations).
func specOwnedBy(t *testing.T, ring *Ring, owner string) string {
	t.Helper()
	for _, suite := range []string{"pwtk", "hood", "bmw3_2", "msdoor"} {
		for scale := 4; scale <= 64; scale *= 2 {
			key := fmt.Sprintf("suite:%s@%d", suite, scale)
			if ring.Owner(key) == owner {
				return fmt.Sprintf(`{"kind":"coloring","variant":"seq","graph":{"suite":%q,"scale":%d}}`, suite, scale)
			}
		}
	}
	t.Fatalf("no suite/scale combination owned by %s", owner)
	return ""
}

func TestClusterForwardingAndStamping(t *testing.T) {
	tc, err := StartTestCluster(3, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	spec := `{"kind":"coloring","variant":"seq","graph":{"suite":"pwtk","scale":4}}`
	key := "suite:pwtk@4"
	replicas := tc.Nodes[0].Ring().Replicas(key, 2)

	resp, view := postJob(t, tc.URLs[0], spec, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if view.Shard == "" || view.RequestID == "" {
		t.Fatalf("cluster job view missing shard/request id: %+v", view)
	}
	inReplicas := false
	for _, r := range replicas {
		if view.Shard == r {
			inReplicas = true
		}
	}
	if !inReplicas {
		t.Fatalf("job served by %s, not in replica set %v of its key", view.Shard, replicas)
	}
	if !strings.HasPrefix(view.ID, view.Shard+"-job-") {
		t.Fatalf("job ID %q not prefixed with owning shard %q", view.ID, view.Shard)
	}

	done := awaitTerminal(t, tc.URLs[0], view.ID, 30*time.Second)
	if done.Status != serve.StatusSucceeded {
		t.Fatalf("job %s finished %s: %s", view.ID, done.Status, done.Error)
	}

	// Every result line is stamped with the serving shard and the request
	// ID, whichever node the stream is fetched through.
	for i, url := range tc.URLs {
		hdr, lines := resultLines(t, url, view.ID)
		if got := hdr.Get(serve.RequestIDHeader); got != view.RequestID {
			t.Errorf("node %d: result stream echoes request id %q, want %q", i, got, view.RequestID)
		}
		if len(lines) == 0 {
			t.Fatalf("node %d: empty result stream", i)
		}
		for _, line := range lines {
			if line["shard"] != view.Shard {
				t.Fatalf("node %d: line missing shard stamp: %v", i, line)
			}
			if line["request_id"] != view.RequestID {
				t.Fatalf("node %d: line missing request_id stamp: %v", i, line)
			}
		}
	}

	// Status and cancel route by ID prefix from any entry node.
	for i, url := range tc.URLs {
		resp, err := http.Get(url + "/jobs/" + view.ID)
		if err != nil {
			t.Fatalf("node %d: status: %v", i, err)
		}
		var v serve.JobView
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || v.ID != view.ID || v.Shard != view.Shard {
			t.Fatalf("node %d: status %d view %+v", i, resp.StatusCode, v)
		}
	}

	// An explicit X-Micserved-Request-ID propagates end to end.
	resp2, view2 := postJob(t, tc.URLs[1], spec, map[string]string{serve.RequestIDHeader: "trace-42"})
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit with request id: status %d", resp2.StatusCode)
	}
	if resp2.Header.Get(serve.RequestIDHeader) != "trace-42" {
		t.Errorf("submit response does not echo request id: %v", resp2.Header)
	}
	if view2.RequestID != "trace-42" {
		t.Errorf("job view carries request id %q, want trace-42", view2.RequestID)
	}
	awaitTerminal(t, tc.URLs[1], view2.ID, 30*time.Second)
	_, lines := resultLines(t, tc.URLs[2], view2.ID)
	for _, line := range lines {
		if line["request_id"] != "trace-42" {
			t.Fatalf("line not stamped with propagated request id: %v", line)
		}
	}
}

// clusterMetrics fetches a node's /metricsz cluster block.
type clusterBlock struct {
	Self        string                     `json:"self"`
	Members     []string                   `json:"members"`
	Shards      map[string]serve.JobTotals `json:"shards"`
	JobsTotal   serve.JobTotals            `json:"jobs_total"`
	Unreachable []string                   `json:"unreachable"`
}

func clusterMetrics(t *testing.T, url string) clusterBlock {
	t.Helper()
	resp, err := http.Get(url + "/metricsz")
	if err != nil {
		t.Fatalf("metricsz: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Cluster clusterBlock `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("metricsz: %v", err)
	}
	return body.Cluster
}

func conserved(t *testing.T, jt serve.JobTotals, what string) {
	t.Helper()
	if jt.Submitted != jt.Rejected+jt.Succeeded+jt.Failed+jt.Cancelled+jt.InFlight {
		t.Fatalf("conservation violated (%s): %+v", what, jt)
	}
}

func TestClusterMetricszConservation(t *testing.T) {
	tc, err := StartTestCluster(3, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	// A spread of jobs through every entry node: successes on several
	// keys, a failure (bad file), a 400 (malformed spec).
	var ids []string
	specs := []string{
		`{"kind":"coloring","variant":"seq","graph":{"suite":"pwtk","scale":4}}`,
		`{"kind":"coloring","variant":"seq","graph":{"suite":"hood","scale":4}}`,
		`{"kind":"coloring","variant":"seq","graph":{"suite":"bmw3_2","scale":4}}`,
		`{"kind":"coloring","variant":"seq","graph":{"suite":"msdoor","scale":4}}`,
		`{"kind":"coloring","variant":"openmp","graph":{"file":"/nope/missing.mtx"}}`,
	}
	for i, spec := range specs {
		for rep := 0; rep < 2; rep++ {
			resp, view := postJob(t, tc.URLs[(i+rep)%3], spec, nil)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit %d: status %d", i, resp.StatusCode)
			}
			ids = append(ids, view.ID)
		}
	}
	resp, _ := postJob(t, tc.URLs[0], `{"kind":"nope"}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec: status %d, want 400", resp.StatusCode)
	}
	for _, id := range ids {
		awaitTerminal(t, tc.URLs[0], id, 30*time.Second)
	}

	// Every node's cluster view must satisfy the summed conservation law,
	// and the summed totals must be exactly the field-wise sum of shards.
	for i, url := range tc.URLs {
		cb := clusterMetrics(t, url)
		if len(cb.Shards) != 3 {
			t.Fatalf("node %d: cluster block covers %d shards, want 3", i, len(cb.Shards))
		}
		conserved(t, cb.JobsTotal, fmt.Sprintf("node %d summed", i))
		var sum serve.JobTotals
		for _, name := range []string{"n1", "n2", "n3"} {
			jt := cb.Shards[name]
			conserved(t, jt, fmt.Sprintf("node %d shard %s", i, name))
			sum.Submitted += jt.Submitted
			sum.Rejected += jt.Rejected
			sum.Accepted += jt.Accepted
			sum.Succeeded += jt.Succeeded
			sum.Failed += jt.Failed
			sum.Cancelled += jt.Cancelled
			sum.InFlight += jt.InFlight
		}
		if sum != cb.JobsTotal {
			t.Fatalf("node %d: summed totals %+v != cluster jobs_total %+v", i, sum, cb.JobsTotal)
		}
	}
	// The failed submissions really did fail (and were counted somewhere).
	cb := clusterMetrics(t, tc.URLs[0])
	if cb.JobsTotal.Failed < 2 {
		t.Fatalf("expected >=2 failed jobs cluster-wide, got %+v", cb.JobsTotal)
	}
	if cb.JobsTotal.Succeeded < 8 {
		t.Fatalf("expected >=8 succeeded jobs cluster-wide, got %+v", cb.JobsTotal)
	}
}

func TestClusterCacheMissIsolation(t *testing.T) {
	tc, err := StartTestCluster(3, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	// A job on a nonexistent file: the owning shard takes the load miss
	// and fails the job; no other shard's store is ever touched.
	badSpec := `{"kind":"coloring","variant":"openmp","graph":{"file":"/nope/missing.mtx"}}`
	resp, view := postJob(t, tc.URLs[0], badSpec, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	done := awaitTerminal(t, tc.URLs[0], view.ID, 30*time.Second)
	if done.Status != serve.StatusFailed {
		t.Fatalf("bad-file job finished %s, want failed", done.Status)
	}
	for _, n := range tc.Nodes {
		stats := n.Server().Store().Stats()
		if n.Self() == view.Shard {
			if stats.Misses == 0 {
				t.Errorf("owning shard %s records no cache miss", n.Self())
			}
		} else if stats.Misses != 0 || stats.Hits != 0 {
			t.Errorf("shard %s touched its cache (misses=%d hits=%d) for a key it does not own",
				n.Self(), stats.Misses, stats.Hits)
		}
	}

	// The other shards still serve their own keys from pristine caches.
	for _, n := range tc.Nodes {
		if n.Self() == view.Shard {
			continue
		}
		spec := specOwnedBy(t, n.Ring(), n.Self())
		resp, v := postJob(t, tc.URLs[0], spec, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit to healthy shard: status %d", resp.StatusCode)
		}
		got := awaitTerminal(t, tc.URLs[0], v.ID, 30*time.Second)
		if got.Status != serve.StatusSucceeded {
			t.Fatalf("job on shard %s finished %s: %s", v.Shard, got.Status, got.Error)
		}
	}
}

func TestClusterShardKillEviction(t *testing.T) {
	tc, err := StartTestCluster(3, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	// Run a job owned by the victim so a finished job lives on it, then
	// kill the victim abruptly.
	const victim = "n3"
	victimIdx := 2
	spec := specOwnedBy(t, tc.Nodes[0].Ring(), victim)
	resp, view := postJob(t, tc.URLs[0], spec, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if view.Shard != victim {
		t.Fatalf("setup: job served by %s, want %s", view.Shard, victim)
	}
	awaitTerminal(t, tc.URLs[0], view.ID, 30*time.Second)

	tc.Kill(victimIdx)

	// Survivors evict the dead peer after FailThreshold probe failures.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if !tc.Nodes[0].Ring().Has(victim) && !tc.Nodes[1].Ring().Has(victim) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors did not evict %s within 10s", victim)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Survivors stay healthy.
	for i := 0; i < 2; i++ {
		hr, err := http.Get(tc.URLs[i] + "/healthz")
		if err != nil || hr.StatusCode != http.StatusOK {
			t.Fatalf("survivor %d unhealthy: %v %v", i, err, hr)
		}
		hr.Body.Close()
	}

	// The dead shard's job does not vanish: its status answers 502 with
	// the shard named, and its stream ends in a terminal error line.
	sr, err := http.Get(tc.URLs[0] + "/jobs/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	var errBody map[string]string
	json.NewDecoder(sr.Body).Decode(&errBody)
	sr.Body.Close()
	if sr.StatusCode != http.StatusBadGateway || !strings.Contains(errBody["error"], victim) {
		t.Fatalf("dead-shard status: %d %v, want 502 naming %s", sr.StatusCode, errBody, victim)
	}
	_, lines := resultLines(t, tc.URLs[0], view.ID)
	if len(lines) == 0 {
		t.Fatal("dead-shard result stream is empty")
	}
	last := lines[len(lines)-1]
	if last["type"] != "error" || !strings.Contains(fmt.Sprint(last["error"]), "unreachable") {
		t.Fatalf("dead-shard stream does not end in a terminal error line: %v", last)
	}

	// Keys the victim owned reroute to survivors; new work keeps flowing.
	resp2, view2 := postJob(t, tc.URLs[1], spec, nil)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("post-kill submit: status %d", resp2.StatusCode)
	}
	if view2.Shard == victim {
		t.Fatalf("post-kill job routed to dead shard %s", victim)
	}
	done := awaitTerminal(t, tc.URLs[1], view2.ID, 30*time.Second)
	if done.Status != serve.StatusSucceeded {
		t.Fatalf("post-kill job finished %s: %s", done.Status, done.Error)
	}

	// Summed conservation holds across the survivors, with the dead shard
	// reported unreachable rather than silently missing.
	cb := clusterMetrics(t, tc.URLs[0])
	conserved(t, cb.JobsTotal, "post-kill summed")
	if len(cb.Shards) != 2 {
		t.Fatalf("post-kill cluster block covers %d shards, want 2 survivors", len(cb.Shards))
	}
	found := false
	for _, u := range cb.Unreachable {
		if u == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("dead shard %s not reported unreachable: %+v", victim, cb)
	}
}

// TestClusterThroughputNearLinear pins the point of sharding: with jobs
// made wall-clock-bound by the stall injector (they sleep at scheduler
// boundaries rather than burn CPU), three nodes overlap three times as
// much sleeping as one, so cluster throughput approaches 3x even on a
// single-core host. The committed BENCH_SERVE_1.json gates the full
// micload version of this at >= 2.5x; this in-process check uses a
// looser 1.8x bound to stay robust under -race and CI noise.
func TestClusterThroughputNearLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison is wall-clock bound")
	}
	const jobs = 24
	specs := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		suite := []string{"pwtk", "hood", "bmw3_2", "msdoor"}[i%4]
		scale := []int{8, 16}[(i/4)%2]
		// Tiny graphs (scale >= 8) with chunk ~1/10th of |V|: each job
		// crosses ~10 chunk boundaries, each stalling 40ms, so jobs sleep
		// ~200ms and burn near-zero CPU — capacity is worker-slots, not
		// the single core CI runs on.
		specs = append(specs, fmt.Sprintf(
			`{"kind":"irregular","variant":"openmp","iters":1,"chunk":340,"graph":{"suite":%q,"scale":%d}}`,
			suite, scale))
	}

	run := func(nodes int) time.Duration {
		in := fault.New(1)
		in.Enable("team/chunk/stall", 1).Enable("pool/task/stall", 1)
		opts := fastOpts()
		opts.Serve.Injector = in
		opts.Serve.Stall = 40 * time.Millisecond
		opts.Cluster.Replication = nodes // kernel reads may go to any shard
		tc, err := StartTestCluster(nodes, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer tc.Close()
		start := time.Now()
		ids := make([]string, 0, jobs)
		entries := make([]string, 0, jobs)
		for i, spec := range specs {
			url := tc.URLs[i%nodes]
			resp, view := postJob(t, url, spec, nil)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit %d: status %d", i, resp.StatusCode)
			}
			ids = append(ids, view.ID)
			entries = append(entries, url)
		}
		for i, id := range ids {
			v := awaitTerminal(t, entries[i], id, 60*time.Second)
			if v.Status != serve.StatusSucceeded {
				t.Fatalf("job %s finished %s: %s", id, v.Status, v.Error)
			}
		}
		return time.Since(start)
	}

	single := run(1)
	triple := run(3)
	speedup := float64(single) / float64(triple)
	t.Logf("single=%s cluster=%s speedup=%.2fx", single, triple, speedup)
	if speedup < 1.8 {
		t.Errorf("3-node cluster speedup %.2fx < 1.8x (single %s, cluster %s)", speedup, single, triple)
	}
}
