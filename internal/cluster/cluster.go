// Package cluster is micserved's peer-to-peer sharded mode: N daemon
// instances share one logical graph/suite cache and job space with no
// coordinator and no gossip. Membership is a static peer list every node
// is started with; placement is a seeded consistent-hash ring every node
// computes identically, so any node can act as the entry point for any
// job. A submitted job is routed by its data key (the graph or suite
// cache key) to the owning shard — or, for kernel (read) jobs, to the
// least-loaded of the key's R replicas under a bounded-load rule — and
// its JSONL result stream flows back through the entry node with the
// serving shard stamped on every line.
//
// The paper's single-device scaling ceiling has an exact analogue here:
// one micserved process is the throughput ceiling of the serving layer,
// and the way past it is partitioning with cheap coordination. The ring
// is the whole coordination protocol: per-peer health probes feed ring
// eviction (a dead shard stops receiving placements within a probe
// interval or two), and each shard keeps its own serve.Store, so a
// corrupted or fault-injected load poisons at most the shard that owns
// the key — never a neighbour's cache.
//
// Per-shard /metricsz totals each satisfy the serving layer's
// conservation law (submitted = rejected + succeeded + failed +
// cancelled + in_flight); because forwarding counts a job only on the
// shard that admits it, the law survives summation across shards, which
// is what the cluster block of /metricsz exports and the chaos oracle's
// shard-kill scenario asserts.
package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"micgraph/internal/telemetry"
)

// Peer is one cluster member: a stable name (its shard ID) and the base
// URL the other members reach it at.
type Peer struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Config wires one node of the cluster. Zero values take the documented
// defaults.
type Config struct {
	// Self is this node's name; Peers must contain an entry for it.
	Self string
	// Peers is the full static membership, self included. Order does not
	// matter: placement depends only on the set (and the ring seed).
	Peers []Peer

	// Seed seeds the ring's hash mixing (default 1). All nodes of one
	// cluster must share it; a fixed seed makes placement deterministic,
	// which the ring tests pin.
	Seed uint64
	// VNodes is the number of ring points per node (default 64). More
	// points smooth the key distribution at the cost of a longer ring.
	VNodes int
	// Replication is the replica-set size R for hot-graph reads (default
	// 2, clamped to the cluster size). Kernel jobs may be served by any of
	// the key's R replicas; exports and sweeps stay with the primary.
	Replication int
	// LoadFactor is the bounded-load constant c (default 1.25): a replica
	// whose in-flight load exceeds ceil(c * mean-over-candidates) is
	// skipped in ring order, which caps how hot one shard can run while a
	// sibling replica idles.
	LoadFactor float64

	// ProbeInterval / ProbeTimeout drive the per-peer health probes
	// (defaults 1s / 2s). FailThreshold consecutive probe failures evict
	// the peer from the ring; the first success readmits it.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	FailThreshold int

	// Clock is the node's time source (default telemetry.System), behind
	// every probe timestamp so tests can fake it.
	Clock telemetry.Clock
	// HTTP is the transport for forwarding and probing (default: a client
	// with no overall timeout; per-request bounds come from contexts).
	HTTP *http.Client
	// Logf, when set, receives membership transitions (peer down/up).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.Replication > len(c.Peers) && len(c.Peers) > 0 {
		c.Replication = len(c.Peers)
	}
	if c.LoadFactor <= 1 {
		c.LoadFactor = 1.25
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.Clock == nil {
		c.Clock = telemetry.System
	}
	if c.HTTP == nil {
		c.HTTP = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

func (c Config) validate() error {
	if c.Self == "" {
		return fmt.Errorf("cluster: config needs a self name")
	}
	seen := map[string]bool{}
	found := false
	for _, p := range c.Peers {
		if p.Name == "" || p.URL == "" {
			return fmt.Errorf("cluster: peer %+v needs both name and url", p)
		}
		if strings.Contains(p.Name, "/") {
			return fmt.Errorf("cluster: peer name %q must not contain '/'", p.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("cluster: duplicate peer name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Name == c.Self {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("cluster: peer list does not contain self %q", c.Self)
	}
	return nil
}

// ParsePeers parses the -peers flag value: either a comma-separated list
// of name=url pairs
//
//	n1=http://10.0.0.1:8377,n2=http://10.0.0.2:8377,n3=http://10.0.0.3:8377
//
// or "@path" naming a JSON file holding an array of {"name","url"}
// objects. Peer order is normalised by name so every node derives the
// same membership whatever order its flag listed.
func ParsePeers(s string) ([]Peer, error) {
	if strings.HasPrefix(s, "@") {
		raw, err := os.ReadFile(strings.TrimPrefix(s, "@"))
		if err != nil {
			return nil, fmt.Errorf("cluster: reading peers file: %w", err)
		}
		var peers []Peer
		if err := json.Unmarshal(raw, &peers); err != nil {
			return nil, fmt.Errorf("cluster: peers file %s: %w", strings.TrimPrefix(s, "@"), err)
		}
		sortPeers(peers)
		return peers, nil
	}
	var peers []Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: peer %q is not name=url", part)
		}
		peers = append(peers, Peer{Name: strings.TrimSpace(name), URL: strings.TrimRight(strings.TrimSpace(url), "/")})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers in %q", s)
	}
	sortPeers(peers)
	return peers, nil
}

func sortPeers(peers []Peer) {
	sort.Slice(peers, func(i, j int) bool { return peers[i].Name < peers[j].Name })
}
