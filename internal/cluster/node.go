package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"micgraph/internal/serve"
)

// maxSubmitBody bounds a buffered job-spec body; specs are tiny and the
// buffer is what lets a submit be re-sent to the shard the ring picks.
const maxSubmitBody = 1 << 20

// Node is one cluster member: a full micserved core (serve.Server) plus
// the routing layer that makes it act as an entry point for the whole
// cluster. Any node accepts any request; data-keyed requests (submits)
// are routed by the placement ring, ID-keyed requests (status, cancel,
// result) by the shard prefix carried in every cluster job ID.
type Node struct {
	cfg    Config
	srv    *serve.Server
	local  http.Handler
	ring   *Ring
	health *Health
	urls   map[string]string

	mu     sync.Mutex
	reqSeq int64
}

// NewNode builds a cluster node around a serve.Server constructed from
// serveCfg. The server's ShardID is forced to cfg.Self so job IDs are
// shard-prefixed and result lines are stamped; everything else in
// serveCfg (workers, cache budget, fault injection, clock) applies
// unchanged — a shard is just a micserved that knows its name.
func NewNode(cfg Config, serveCfg serve.Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	serveCfg.ShardID = cfg.Self
	if serveCfg.Clock == nil {
		serveCfg.Clock = cfg.Clock
	}
	srv := serve.New(serveCfg)

	ring := NewRing(cfg.Seed, cfg.VNodes)
	urls := make(map[string]string, len(cfg.Peers))
	for _, p := range cfg.Peers {
		ring.Add(p.Name)
		urls[p.Name] = strings.TrimRight(p.URL, "/")
	}
	n := &Node{
		cfg:    cfg,
		srv:    srv,
		local:  srv.Handler(),
		ring:   ring,
		health: newHealth(cfg, ring),
		urls:   urls,
	}
	return n, nil
}

// Start launches the node's health probes; they stop when ctx ends.
func (n *Node) Start(ctx context.Context) { n.health.Start(ctx) }

// Server exposes the node's local micserved core.
func (n *Node) Server() *serve.Server { return n.srv }

// Ring exposes the node's placement ring (tests assert eviction and
// placement determinism through it).
func (n *Node) Ring() *Ring { return n.ring }

// Health exposes the node's probe state.
func (n *Node) Health() *Health { return n.health }

// Self returns this node's shard name.
func (n *Node) Self() string { return n.cfg.Self }

// Drain drains the local micserved core (the node's own shard of the job
// space); forwarded work on other shards is untouched.
func (n *Node) Drain(ctx context.Context) error { return n.srv.Drain(ctx) }

// Handler returns the cluster-aware HTTP API. It serves the same routes
// as a single-node daemon — clients need no cluster awareness — with
// routing layered on top:
//
//	POST   /jobs             routed by the spec's placement key
//	GET    /jobs             local shard's retained jobs
//	GET    /jobs/{id}        routed by the ID's shard prefix
//	DELETE /jobs/{id}        routed by the ID's shard prefix
//	GET    /jobs/{id}/result routed by prefix; stream relayed line-by-line
//	GET    /healthz          local health + cluster membership block
//	GET    /metricsz         local metrics + per-shard and summed totals
//	                         (?scope=local suppresses the cluster fan-out)
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", n.handleSubmit)
	mux.HandleFunc("GET /jobs", n.serveLocalDirect)
	mux.HandleFunc("GET /jobs/{id}", n.handleByID)
	mux.HandleFunc("DELETE /jobs/{id}", n.handleByID)
	mux.HandleFunc("GET /jobs/{id}/result", n.handleResult)
	mux.HandleFunc("GET /healthz", n.handleHealthz)
	mux.HandleFunc("GET /metricsz", n.handleMetricsz)
	return mux
}

func (n *Node) serveLocalDirect(w http.ResponseWriter, r *http.Request) {
	n.local.ServeHTTP(w, r)
}

// nextRequestID mints the trace ID stamped on a submission that arrived
// without one: "<entry-node>-r<seq>", unique cluster-wide because entry
// names are.
func (n *Node) nextRequestID() string {
	n.mu.Lock()
	n.reqSeq++
	seq := n.reqSeq
	n.mu.Unlock()
	return fmt.Sprintf("%s-r%06d", n.cfg.Self, seq)
}

// load feeds bounded-load placement: the local queue is read directly
// (always fresh), remote peers from their last health probe.
func (n *Node) load(node string) (int, bool) {
	if node == n.cfg.Self {
		qs := n.srv.Queue().Stats()
		return qs.Queued + qs.Running, true
	}
	return n.health.Load(node)
}

// route picks the shard that should serve spec. Kernel (read) jobs may go
// to any of the key's R replicas — each replica holds the graph resident,
// so reads scale across them — under the bounded-load rule; exports and
// sweeps stay with the primary owner. An empty ring answer falls back to
// self: a node that has evicted everyone still serves what it is handed.
func (n *Node) route(spec serve.JobSpec) string {
	key := spec.PlacementKey()
	switch spec.Kind {
	case serve.KindBFS, serve.KindColoring, serve.KindComponents, serve.KindIrregular:
		if pick := PickBounded(n.ring.Replicas(key, n.cfg.Replication), n.load, n.cfg.LoadFactor); pick != "" {
			return pick
		}
	}
	if owner := n.ring.Owner(key); owner != "" {
		return owner
	}
	return n.cfg.Self
}

// serveLocal replays a buffered-body request against the local daemon.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	n.local.ServeHTTP(w, r2)
}

func (n *Node) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSubmitBody))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("cluster: reading job spec: %w", err))
		return
	}
	// Already routed by another entry node: serve locally, no second hop.
	if r.Header.Get(ForwardedHeader) != "" {
		n.serveLocal(w, r, body)
		return
	}
	rid := r.Header.Get(serve.RequestIDHeader)
	if rid == "" {
		rid = n.nextRequestID()
		r.Header.Set(serve.RequestIDHeader, rid)
	}
	var spec serve.JobSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		// Undecodable spec: hand it to the local daemon for its canonical
		// 400 (and its Submitted/Rejected accounting).
		n.serveLocal(w, r, body)
		return
	}
	target := n.route(spec)
	if target == n.cfg.Self {
		n.serveLocal(w, r, body)
		return
	}
	hdr := http.Header{}
	hdr.Set("Content-Type", "application/json")
	hdr.Set(serve.RequestIDHeader, rid)
	hdr.Set(ForwardedHeader, n.cfg.Self)
	n.health.NoteSent(target)
	if err := forward(r.Context(), n.cfg.HTTP, http.MethodPost, n.urls[target], "/jobs", body, hdr, w); err != nil {
		forwardError(w, target, err)
	}
}

// ownerOf extracts the shard prefix of a cluster job ID
// ("n2-job-000123" -> "n2"). IDs without a known shard prefix route
// locally (the local daemon answers 404 for jobs it never owned).
func (n *Node) ownerOf(id string) string {
	i := strings.LastIndex(id, "-job-")
	if i <= 0 {
		return ""
	}
	owner := id[:i]
	if _, ok := n.urls[owner]; !ok {
		return ""
	}
	return owner
}

func (n *Node) handleByID(w http.ResponseWriter, r *http.Request) {
	owner := n.ownerOf(r.PathValue("id"))
	if owner == "" || owner == n.cfg.Self || r.Header.Get(ForwardedHeader) != "" {
		n.local.ServeHTTP(w, r)
		return
	}
	hdr := http.Header{}
	hdr.Set(ForwardedHeader, n.cfg.Self)
	if err := forward(r.Context(), n.cfg.HTTP, r.Method, n.urls[owner], r.URL.Path, nil, hdr, w); err != nil {
		forwardError(w, owner, err)
	}
}

func (n *Node) handleResult(w http.ResponseWriter, r *http.Request) {
	owner := n.ownerOf(r.PathValue("id"))
	if owner == "" || owner == n.cfg.Self || r.Header.Get(ForwardedHeader) != "" {
		n.local.ServeHTTP(w, r)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, n.urls[owner]+r.URL.Path, nil)
	if err != nil {
		forwardError(w, owner, err)
		return
	}
	req.Header.Set(ForwardedHeader, n.cfg.Self)
	resp, err := n.cfg.HTTP.Do(req)
	if err != nil {
		// The owning shard is gone: the job's stream must not vanish — it
		// ends in a terminal error line, same as any failed job's would.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		terminalErrorLine(w, owner, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		for _, k := range []string{"Content-Type", serve.RequestIDHeader} {
			if v := resp.Header.Get(k); v != "" {
				w.Header().Set(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	if v := resp.Header.Get(serve.RequestIDHeader); v != "" {
		w.Header().Set(serve.RequestIDHeader, v)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	relayResult(owner, resp.Body, w)
}

func (n *Node) handleHealthz(w http.ResponseWriter, r *http.Request) {
	m := captureLocal(n.local, r)
	var body map[string]any
	if err := json.Unmarshal(m.body.Bytes(), &body); err != nil {
		n.serveLocalDirect(w, r)
		return
	}
	body["cluster"] = map[string]any{
		"self":    n.cfg.Self,
		"members": n.ring.Nodes(),
		"peers":   n.peersWithSelfLoad(),
	}
	writeJSONBody(w, m.status, body)
}

// peersWithSelfLoad is the probe snapshot with the local node's load
// filled from its own queue (a node does not probe itself).
func (n *Node) peersWithSelfLoad() []PeerStatus {
	peers := n.health.Peers()
	for i := range peers {
		if peers[i].Name == n.cfg.Self {
			l, _ := n.load(n.cfg.Self)
			peers[i].Load = l
		}
	}
	return peers
}

func (n *Node) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	// ?scope=local answers with the plain shard metrics — it is what this
	// handler fetches from its peers, so the fan-out never recurses.
	if r.URL.Query().Get("scope") == "local" {
		n.serveLocalDirect(w, r)
		return
	}
	m := captureLocal(n.local, r)
	var body map[string]any
	if err := json.Unmarshal(m.body.Bytes(), &body); err != nil {
		n.serveLocalDirect(w, r)
		return
	}

	shards := map[string]serve.JobTotals{n.cfg.Self: n.srv.Totals()}
	sum := n.srv.Totals()
	var unreachable []string
	for _, p := range n.cfg.Peers {
		if p.Name == n.cfg.Self {
			continue
		}
		t, err := n.fetchPeerTotals(r.Context(), p)
		if err != nil {
			unreachable = append(unreachable, p.Name)
			continue
		}
		shards[p.Name] = t
		sum.Submitted += t.Submitted
		sum.Rejected += t.Rejected
		sum.Accepted += t.Accepted
		sum.Succeeded += t.Succeeded
		sum.Failed += t.Failed
		sum.Cancelled += t.Cancelled
		sum.InFlight += t.InFlight
	}
	cluster := map[string]any{
		"self":    n.cfg.Self,
		"members": n.ring.Nodes(),
		"peers":   n.peersWithSelfLoad(),
		// shards holds each reachable shard's own jobs_total; every one
		// satisfies the conservation law independently, so jobs_total (their
		// field-wise sum) satisfies it too — the invariant the chaos oracle's
		// shard-kill scenario asserts across survivors.
		"shards":     shards,
		"jobs_total": sum,
	}
	if len(unreachable) > 0 {
		cluster["unreachable"] = unreachable
	}
	body["cluster"] = cluster
	writeJSONBody(w, m.status, body)
}

// fetchPeerTotals scrapes one peer's local jobs_total.
func (n *Node) fetchPeerTotals(ctx context.Context, p Peer) (serve.JobTotals, error) {
	pctx, cancel := context.WithTimeout(ctx, n.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, n.urls[p.Name]+"/metricsz?scope=local", nil)
	if err != nil {
		return serve.JobTotals{}, err
	}
	resp, err := n.cfg.HTTP.Do(req)
	if err != nil {
		return serve.JobTotals{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.JobTotals{}, fmt.Errorf("metricsz status %d", resp.StatusCode)
	}
	var body struct {
		JobsTotal serve.JobTotals `json:"jobs_total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return serve.JobTotals{}, err
	}
	return body.JobsTotal, nil
}

func writeJSONBody(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, status int, err error) {
	writeJSONBody(w, status, map[string]string{"error": err.Error()})
}
