package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Health runs the cluster's per-peer liveness probes: every node probes
// every other peer's /healthz at ProbeInterval. FailThreshold consecutive
// failures evict the peer from the placement ring — placements stop
// flowing to a dead shard within a probe interval or two — and the first
// successful probe afterwards readmits it. A node never probes (and so
// never evicts) itself.
//
// Probes double as the load feed for bounded-load placement: a healthy
// peer's queued+running count is remembered and consulted when picking
// among a key's replicas.
type Health struct {
	cfg  Config
	ring *Ring

	mu    sync.Mutex
	state map[string]*peerState
}

type peerState struct {
	url       string
	healthy   bool
	failures  int
	load      int
	lastErr   string
	lastProbe time.Time
}

// PeerStatus is one peer's probe view, exported in /healthz and
// /metricsz cluster blocks.
type PeerStatus struct {
	Name      string `json:"name"`
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Load      int    `json:"load"`
	Failures  int    `json:"failures,omitempty"`
	LastError string `json:"last_error,omitempty"`
	LastProbe string `json:"last_probe,omitempty"`
}

func newHealth(cfg Config, ring *Ring) *Health {
	h := &Health{cfg: cfg, ring: ring, state: make(map[string]*peerState)}
	for _, p := range cfg.Peers {
		// Peers start healthy: a cold cluster must not refuse placements
		// before the first probe round completes.
		h.state[p.Name] = &peerState{url: p.URL, healthy: true}
	}
	return h
}

// Start launches one prober goroutine per remote peer; they stop when ctx
// ends.
func (h *Health) Start(ctx context.Context) {
	for _, p := range h.cfg.Peers {
		if p.Name == h.cfg.Self {
			continue
		}
		go h.probeLoop(ctx, p)
	}
}

func (h *Health) probeLoop(ctx context.Context, p Peer) {
	t := time.NewTicker(h.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			h.probe(ctx, p)
		}
	}
}

// probe runs one health check against p and applies the transition rules.
// Ring mutations happen outside h.mu (the ring has its own lock) but the
// decision is made inside it, so down/up transitions are serialised per
// peer by the single prober goroutine that owns it.
func (h *Health) probe(ctx context.Context, p Peer) {
	pctx, cancel := context.WithTimeout(ctx, h.cfg.ProbeTimeout)
	load, err := probeOnce(pctx, h.cfg.HTTP, p.URL)
	cancel()

	h.mu.Lock()
	st := h.state[p.Name]
	st.lastProbe = h.cfg.Clock.Now()
	if err != nil {
		st.failures++
		st.lastErr = err.Error()
		evict := st.healthy && st.failures >= h.cfg.FailThreshold
		if evict {
			st.healthy = false
		}
		failures := st.failures
		h.mu.Unlock()
		if evict {
			h.ring.Remove(p.Name)
			h.cfg.Logf("cluster: peer %s down after %d failed probes: %v", p.Name, failures, err)
		}
		return
	}
	st.failures = 0
	st.lastErr = ""
	st.load = load
	readmit := !st.healthy
	st.healthy = true
	h.mu.Unlock()
	if readmit {
		h.ring.Add(p.Name)
		h.cfg.Logf("cluster: peer %s back up", p.Name)
	}
}

// probeOnce GETs url/healthz and returns the peer's current load
// (queued + running jobs) on success.
func probeOnce(ctx context.Context, client *http.Client, url string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	var body struct {
		Queue struct {
			Queued  int `json:"queued"`
			Running int `json:"running"`
		} `json:"queue"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, fmt.Errorf("healthz body: %w", err)
	}
	return body.Queue.Queued + body.Queue.Running, nil
}

// NoteSent optimistically bumps node's tracked load by one forwarded job.
// The next successful probe overwrites the estimate with the peer's real
// queue depth; between probes the bump keeps bounded-load placement from
// herding every forward onto the peer whose last-probed load happened to
// be lowest (the probe interval is long compared to the submit rate, so
// without it a whole interval's worth of jobs would pile onto one pick).
func (h *Health) NoteSent(node string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if st, ok := h.state[node]; ok && st.healthy {
		st.load++
	}
}

// Load returns node's last probed load and whether the node is currently
// healthy. The local node is not tracked here (its load is read directly
// from its own queue by the Node).
func (h *Health) Load(node string) (int, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.state[node]
	if !ok || !st.healthy {
		return 0, false
	}
	return st.load, true
}

// Healthy reports whether node is currently considered alive.
func (h *Health) Healthy(node string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.state[node]
	return ok && st.healthy
}

// Peers snapshots every peer's probe status, sorted by name (self
// included, always healthy with zero probe data).
func (h *Health) Peers() []PeerStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]PeerStatus, 0, len(h.cfg.Peers))
	for _, p := range h.cfg.Peers {
		st := h.state[p.Name]
		ps := PeerStatus{
			Name:    p.Name,
			URL:     p.URL,
			Healthy: st.healthy,
			Load:    st.load,
		}
		if p.Name != h.cfg.Self {
			ps.Failures = st.failures
			ps.LastError = st.lastErr
			if !st.lastProbe.IsZero() {
				ps.LastProbe = st.lastProbe.UTC().Format(time.RFC3339Nano)
			}
		}
		out = append(out, ps)
	}
	return out
}
