package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"micgraph/internal/serve"
)

// ForwardedHeader marks a request that was already routed by a cluster
// entry node. A node receiving it serves locally without consulting the
// ring again — the one-hop rule that makes routing loops impossible even
// when two nodes' rings momentarily disagree about membership.
const ForwardedHeader = "X-Micserved-Forwarded"

// memResponse is a minimal in-memory http.ResponseWriter used to run the
// local serve handler for /healthz and /metricsz composition (the cluster
// blocks wrap the local JSON rather than re-deriving it).
type memResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func newMemResponse() *memResponse {
	return &memResponse{header: make(http.Header), status: http.StatusOK}
}

func (m *memResponse) Header() http.Header         { return m.header }
func (m *memResponse) WriteHeader(status int)      { m.status = status }
func (m *memResponse) Write(b []byte) (int, error) { return m.body.Write(b) }

// captureLocal runs r against the local handler and returns the buffered
// response.
func captureLocal(h http.Handler, r *http.Request) *memResponse {
	m := newMemResponse()
	h.ServeHTTP(m, r)
	return m
}

// forwardError writes the 502 a client sees when the shard owning its
// request cannot be reached. The body is the same {"error": ...} shape the
// serve package uses, with the owning shard named so the failure is
// attributable.
func forwardError(w http.ResponseWriter, owner string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadGateway)
	json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf("cluster: shard %s unreachable: %v", owner, err),
	})
}

// forward proxies one buffered-body request to the peer at baseURL and
// copies the response back verbatim (status, content type, request-ID
// header, body). body may be nil for GET/DELETE. Returns an error only
// when the peer could not be reached or did not answer; HTTP-level errors
// (4xx/5xx from the peer) are copied through as-is, since they are the
// peer's answer.
func forward(ctx context.Context, client *http.Client, method, baseURL, path string, body []byte, hdr http.Header, w http.ResponseWriter) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, baseURL+path, rd)
	if err != nil {
		return err
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	for _, k := range []string{"Content-Type", "Retry-After", serve.RequestIDHeader} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return nil
}

// relayResult streams a remote shard's JSONL result body through to w,
// flushing per line so a client following a running job sees lines as the
// shard produces them. If the upstream connection dies mid-stream — the
// shard was killed — a terminal error line is appended before returning,
// so a dead shard's job visibly fails instead of its stream silently
// truncating.
func relayResult(owner string, upstream io.Reader, w http.ResponseWriter) {
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	br := bufio.NewReader(upstream)
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			w.Write(line)
			flush()
		}
		if err == io.EOF {
			return
		}
		if err != nil {
			terminalErrorLine(w, owner, err)
			flush()
			return
		}
	}
}

// terminalErrorLine writes the JSONL error record that ends a relayed
// stream whose upstream shard became unreachable. It matches the shape of
// the serve package's own terminal error lines, so stream consumers need
// no cluster-specific handling.
func terminalErrorLine(w io.Writer, owner string, err error) {
	b, _ := json.Marshal(map[string]string{
		"type":  "error",
		"error": fmt.Sprintf("cluster: shard %s unreachable: %v", owner, err),
	})
	w.Write(append(b, '\n'))
}
