package graph

import (
	"testing"
	"testing/quick"

	"micgraph/internal/xrand"
)

// path returns the path graph 0-1-2-...-(n-1).
func path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

// complete returns K_n.
func complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

// randomGraph returns an Erdős–Rényi-ish graph for property tests.
func randomGraph(seed uint64, n, m int) *Graph {
	r := xrand.New(seed)
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.MaxDegree() != 0 {
		t.Errorf("zero Graph not empty: %v", g.String())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("zero Graph invalid: %v", err)
	}
	g2 := NewBuilder(0).Build()
	if g2.NumVertices() != 0 {
		t.Errorf("Build of empty builder has %d vertices", g2.NumVertices())
	}
	if err := g2.Validate(); err != nil {
		t.Errorf("built empty graph invalid: %v", err)
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := NewBuilder(5).Build()
	if g.NumVertices() != 5 || g.NumEdges() != 0 {
		t.Fatalf("got %s, want 5 vertices 0 edges", g)
	}
	for v := int32(0); v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Errorf("Degree(%d) = %d, want 0", v, g.Degree(v))
		}
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop
	b.AddEdge(2, 3)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2 (dedup + self-loop removal)", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(2, 3) {
		t.Error("expected edges missing")
	}
	if g.HasEdge(2, 2) || g.HasEdge(0, 3) {
		t.Error("unexpected edges present")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	NewBuilder(3).AddEdge(0, 3)
}

func TestBuildTwicePanics(t *testing.T) {
	b := NewBuilder(1)
	b.Build()
	defer func() {
		if recover() == nil {
			t.Fatal("second Build did not panic")
		}
	}()
	b.Build()
}

func TestFromEdgesErrors(t *testing.T) {
	if _, err := FromEdges(-1, nil); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := FromEdges(2, []Edge{{0, 2}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	if err != nil || g.NumEdges() != 2 {
		t.Errorf("FromEdges = %v, %v", g, err)
	}
}

func TestFromAdjacency(t *testing.T) {
	g, err := FromAdjacency([][]int32{{1, 2}, {0}, {}}) // 0-2 only listed on one side
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Error("FromAdjacency did not symmetrise")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := FromAdjacency([][]int32{{5}}); err == nil {
		t.Error("out-of-range adjacency accepted")
	}
}

func TestDegreesAndStats(t *testing.T) {
	g := complete(5)
	if g.MaxDegree() != 4 {
		t.Errorf("K5 MaxDegree = %d", g.MaxDegree())
	}
	if g.NumEdges() != 10 {
		t.Errorf("K5 edges = %d", g.NumEdges())
	}
	if g.AvgDegree() != 4 {
		t.Errorf("K5 AvgDegree = %v", g.AvgDegree())
	}
	s := ComputeStats(g)
	if s.MaxDegree != 4 || s.MinDegree != 4 || s.DegreeP50 != 4 || s.Components != 1 {
		t.Errorf("K5 stats = %+v", s)
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := randomGraph(1, 50, 200)
	h := g.Clone()
	if !g.Equal(h) {
		t.Error("clone not equal")
	}
	if h.NumEdges() > 0 {
		h.adj[0]++ // mutating the clone must not affect the original
		if g.Equal(h) {
			t.Error("clone shares storage with original")
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Graph)
	}{
		{"asymmetric", func(g *Graph) { g.adj[0] = g.adj[1] }},
		{"unsorted", func(g *Graph) {
			a := g.Adj(0)
			if len(a) >= 2 {
				a[0], a[1] = a[1], a[0]
			}
		}},
		{"out-of-range", func(g *Graph) { g.adj[0] = int32(g.NumVertices()) }},
		{"self-loop", func(g *Graph) { g.adj[g.xadj[3]] = 3 }},
		{"bad-offset", func(g *Graph) { g.xadj[1] = g.xadj[2] + 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := complete(6)
			tc.mutate(g)
			if err := g.Validate(); err == nil {
				t.Errorf("corruption %q not detected", tc.name)
			}
		})
	}
}

func TestRandomGraphsValid(t *testing.T) {
	property := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%200) + 1
		m := int(mRaw % 1000)
		g := randomGraph(seed, n, m)
		return g.Validate() == nil
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHasEdgeMatchesAdjacency(t *testing.T) {
	g := randomGraph(7, 80, 400)
	n := g.NumVertices()
	adjSet := make(map[[2]int32]bool)
	for v := 0; v < n; v++ {
		for _, w := range g.Adj(int32(v)) {
			adjSet[[2]int32{int32(v), w}] = true
		}
	}
	for u := int32(0); u < int32(n); u++ {
		for v := int32(0); v < int32(n); v++ {
			if g.HasEdge(u, v) != adjSet[[2]int32{u, v}] {
				t.Fatalf("HasEdge(%d,%d) = %v disagrees with adjacency", u, v, g.HasEdge(u, v))
			}
		}
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := path(4) // degrees: 1,2,2,1
	h := DegreeHistogram(g)
	want := []int64{0, 2, 2}
	if len(h) != len(want) {
		t.Fatalf("histogram length %d, want %d", len(h), len(want))
	}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("histogram[%d] = %d, want %d", i, h[i], want[i])
		}
	}
}
