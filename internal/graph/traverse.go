package graph

// Levels runs a sequential breadth-first search from source and returns the
// level of every vertex (-1 for unreachable vertices) and the number of
// levels, i.e. 1 + the eccentricity of source within its component.
//
// This is the reference implementation (Algorithm 6 in the paper) that the
// parallel BFS variants are validated against, and the producer of the
// "#Level" column of Table I (where the paper uses source |V|/2).
func (g *Graph) Levels(source int32) ([]int32, int) {
	n := g.NumVertices()
	levels := make([]int32, n)
	for i := range levels {
		levels[i] = -1
	}
	if n == 0 {
		return levels, 0
	}
	queue := make([]int32, 0, n)
	levels[source] = 0
	queue = append(queue, source)
	maxLevel := int32(0)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		lv := levels[v]
		for _, w := range g.Adj(v) {
			if levels[w] == -1 {
				levels[w] = lv + 1
				if lv+1 > maxLevel {
					maxLevel = lv + 1
				}
				queue = append(queue, w)
			}
		}
	}
	return levels, int(maxLevel) + 1
}

// LevelWidths returns the BFS level-width profile from source: widths[l] is
// the number of vertices at distance l. Unreachable vertices are not
// counted. This profile is the x_l input of the paper's Section III-C
// performance model.
func (g *Graph) LevelWidths(source int32) []int64 {
	levels, nl := g.Levels(source)
	widths := make([]int64, nl)
	for _, l := range levels {
		if l >= 0 {
			widths[l]++
		}
	}
	return widths
}

// ConnectedComponents labels each vertex with a component id in [0, k) and
// returns the labels and the number of components k. Component ids are
// assigned in order of their smallest vertex.
func (g *Graph) ConnectedComponents() ([]int32, int) {
	n := g.NumVertices()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var k int32
	stack := make([]int32, 0, 1024)
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = k
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Adj(v) {
				if comp[w] == -1 {
					comp[w] = k
					stack = append(stack, w)
				}
			}
		}
		k++
	}
	return comp, int(k)
}

// LargestComponent returns the subgraph induced by the largest connected
// component, together with the mapping old vertex id -> new vertex id
// (-1 for dropped vertices). If the graph is connected it returns g itself
// and an identity mapping.
func (g *Graph) LargestComponent() (*Graph, []int32) {
	n := g.NumVertices()
	comp, k := g.ConnectedComponents()
	if k <= 1 {
		return g, IdentityPermutation(n)
	}
	sizes := make([]int64, k)
	for _, c := range comp {
		sizes[c]++
	}
	best := int32(0)
	for c := 1; c < k; c++ {
		if sizes[c] > sizes[best] {
			best = int32(c)
		}
	}
	remap := make([]int32, n)
	var nn int32
	for v := 0; v < n; v++ {
		if comp[v] == best {
			remap[v] = nn
			nn++
		} else {
			remap[v] = -1
		}
	}
	b := NewBuilder(int(nn))
	for v := 0; v < n; v++ {
		if remap[v] < 0 {
			continue
		}
		for _, w := range g.Adj(int32(v)) {
			if int32(v) < w { // each edge once
				b.AddEdge(remap[v], remap[w])
			}
		}
	}
	return b.Build(), remap
}

// EccentricityLowerBound performs a few BFS sweeps (double sweep heuristic)
// and returns a lower bound on the graph diameter. Used by generator tests
// to confirm the synthetic graphs have the elongated structure that drives
// the paper's BFS level counts.
func (g *Graph) EccentricityLowerBound(start int32, sweeps int) int {
	best := 0
	src := start
	for s := 0; s < sweeps; s++ {
		levels, nl := g.Levels(src)
		if nl-1 > best {
			best = nl - 1
		}
		// Jump to a farthest vertex for the next sweep.
		far := src
		for v, l := range levels {
			if l == int32(nl-1) {
				far = int32(v)
				break
			}
		}
		if far == src {
			break
		}
		src = far
	}
	return best
}
