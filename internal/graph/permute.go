package graph

import (
	"fmt"
	"sort"

	"micgraph/internal/xrand"
)

// Permute returns a new graph in which vertex v of g has been renamed
// perm[v]. perm must be a permutation of [0, NumVertices()).
//
// Relabeling is how the paper destroys memory locality: "we shuffled the
// vertex IDs of graphs randomly which break all the locality that naturally
// appears in the graphs" (§V-B, Figure 2).
func (g *Graph) Permute(perm []int32) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d for %d vertices", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: invalid permutation (value %d repeated or out of range)", p)
		}
		seen[p] = true
	}

	xadj := make([]int64, n+1)
	for v := 0; v < n; v++ {
		xadj[perm[v]+1] = int64(g.Degree(int32(v)))
	}
	for v := 0; v < n; v++ {
		xadj[v+1] += xadj[v]
	}
	adj := make([]int32, len(g.adj))
	for v := 0; v < n; v++ {
		nv := perm[v]
		dst := adj[xadj[nv]:xadj[nv+1]]
		for i, w := range g.Adj(int32(v)) {
			dst[i] = perm[w]
		}
		sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	}
	return &Graph{xadj: xadj, adj: adj}, nil
}

// Shuffled returns a copy of g with vertex IDs randomly permuted using the
// given seed. Deterministic for a given (graph, seed) pair.
func (g *Graph) Shuffled(seed uint64) *Graph {
	n := g.NumVertices()
	r := xrand.New(seed)
	perm32 := make([]int32, n)
	for i, p := range r.Perm(n) {
		perm32[i] = int32(p)
	}
	ng, err := g.Permute(perm32)
	if err != nil {
		panic(err) // unreachable: Perm always yields a valid permutation
	}
	return ng
}

// IdentityPermutation returns [0, 1, ..., n-1].
func IdentityPermutation(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return p
}
