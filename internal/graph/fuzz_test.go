package graph

import (
	"bytes"
	"testing"
)

// fuzzSeedGraphs are small but structurally varied graphs whose serialized
// forms seed both fuzz corpora.
func fuzzSeedGraphs(f *testing.F) []*Graph {
	f.Helper()
	return []*Graph{
		MustFromEdges(0, nil),
		MustFromEdges(1, nil),
		MustFromEdges(3, []Edge{{0, 1}, {1, 2}}),
		MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}}),
		MustFromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}}),
	}
}

// FuzzReadBinary checks that arbitrary bytes never crash the binary loader
// and that anything it accepts is a valid graph that round-trips.
func FuzzReadBinary(f *testing.F) {
	for _, g := range fuzzSeedGraphs(f) {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Truncated and corrupt variants.
	f.Add([]byte("MICGRAPH"))
	f.Add([]byte("MICGRAPH\x01\x00\x00\x00"))
	f.Add([]byte("NOTMAGIC\x01\x00\x00\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; crashing or accepting garbage is not
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("ReadBinary accepted an invalid graph: %v", verr)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("re-serializing accepted graph: %v", err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-reading round trip: %v", err)
		}
		if !g.Equal(g2) {
			t.Fatal("binary round trip changed the graph")
		}
	})
}

// FuzzReadMatrixMarket checks the text loader the same way: no input may
// crash it, and every accepted graph must satisfy the CSR invariants.
func FuzzReadMatrixMarket(f *testing.F) {
	for _, g := range fuzzSeedGraphs(f) {
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, g); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n% comment\n2 2 1\n1 2 0.5\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern symmetric\n2 3 1\n1 2\n")) // non-square
	f.Add([]byte("%%MatrixMarket\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadMatrixMarket(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("ReadMatrixMarket accepted an invalid graph: %v", verr)
		}
	})
}
