package graph

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarises the structural properties that Table I of the paper
// reports for each test graph, plus a few extras useful for validating the
// synthetic generators.
type Stats struct {
	NumVertices int
	NumEdges    int64
	MaxDegree   int // Δ in the paper
	MinDegree   int
	AvgDegree   float64 // 2|E| / |V|
	DegreeP50   int     // median degree
	DegreeP99   int
	Components  int
}

// ComputeStats gathers Stats for g. It is O(|V| + |E|).
func ComputeStats(g *Graph) Stats {
	n := g.NumVertices()
	s := Stats{
		NumVertices: n,
		NumEdges:    g.NumEdges(),
		AvgDegree:   g.AvgDegree(),
		MinDegree:   math.MaxInt,
	}
	if n == 0 {
		s.MinDegree = 0
		return s
	}
	degs := make([]int, n)
	for v := 0; v < n; v++ {
		d := g.Degree(int32(v))
		degs[v] = d
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d < s.MinDegree {
			s.MinDegree = d
		}
	}
	sort.Ints(degs)
	s.DegreeP50 = degs[n/2]
	s.DegreeP99 = degs[minInt(n-1, n*99/100)]
	_, s.Components = g.ConnectedComponents()
	return s
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// String formats the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("V=%d E=%d Δ=%d avg=%.2f p50=%d p99=%d comps=%d",
		s.NumVertices, s.NumEdges, s.MaxDegree, s.AvgDegree, s.DegreeP50, s.DegreeP99, s.Components)
}

// DegreeHistogram returns counts[d] = number of vertices of degree d,
// for d in [0, MaxDegree].
func DegreeHistogram(g *Graph) []int64 {
	counts := make([]int64, g.MaxDegree()+1)
	for v := 0; v < g.NumVertices(); v++ {
		counts[g.Degree(int32(v))]++
	}
	return counts
}

// CompareLabelings checks that two component labelings describe the same
// partition of the vertex set: there must be a bijection between the label
// values. Returns the first disagreement found.
func CompareLabelings(want, got []int32) error {
	if len(want) != len(got) {
		return fmt.Errorf("graph: labelings have different lengths %d vs %d", len(want), len(got))
	}
	fwd := make(map[int32]int32)
	rev := make(map[int32]int32)
	for v := range want {
		if w, ok := fwd[want[v]]; ok {
			if w != got[v] {
				return fmt.Errorf("graph: vertex %d: label %d maps to both %d and %d",
					v, want[v], w, got[v])
			}
		} else {
			fwd[want[v]] = got[v]
		}
		if w, ok := rev[got[v]]; ok {
			if w != want[v] {
				return fmt.Errorf("graph: vertex %d: label %d maps back to both %d and %d",
					v, got[v], w, want[v])
			}
		} else {
			rev[got[v]] = want[v]
		}
	}
	return nil
}
