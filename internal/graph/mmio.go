package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The paper's graphs come from the University of Florida Sparse Matrix
// Collection, distributed in Matrix Market coordinate format. This file
// implements enough of that format to read and write the pattern of square
// symmetric matrices as undirected graphs: header line
// "%%MatrixMarket matrix coordinate <field> <symmetry>", comment lines
// starting with '%', a size line "rows cols nnz", then one "i j [value]"
// entry per line with 1-based indices. Numeric values are accepted and
// ignored (the kernels are structure-only).

// WriteMatrixMarket writes g in Matrix Market coordinate pattern symmetric
// format. Each undirected edge is emitted once, as "u v" with u > v
// (lower-triangular), 1-based.
func WriteMatrixMarket(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	n := g.NumVertices()
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate pattern symmetric\n%d %d %d\n", n, n, g.NumEdges()); err != nil {
		return err
	}
	buf := make([]byte, 0, 32)
	for v := 0; v < n; v++ {
		for _, u := range g.Adj(int32(v)) {
			if u < int32(v) { // emit lower triangle: row v+1 > col u+1
				buf = buf[:0]
				buf = strconv.AppendInt(buf, int64(v)+1, 10)
				buf = append(buf, ' ')
				buf = strconv.AppendInt(buf, int64(u)+1, 10)
				buf = append(buf, '\n')
				if _, err := bw.Write(buf); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a Matrix Market coordinate file as an undirected
// graph. The matrix must be square. Both "symmetric" and "general" symmetry
// are accepted; in either case entry (i,j) adds edge {i-1,j-1}. Self loops
// (diagonal entries) are dropped, duplicates are merged, consistent with how
// the paper treats matrices as graphs.
func ReadMatrixMarket(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("mmio: empty input: %w", sc.Err())
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("mmio: unsupported header %q (need matrix coordinate)", sc.Text())
	}
	switch header[3] {
	case "pattern", "real", "integer":
	default:
		return nil, fmt.Errorf("mmio: unsupported field type %q", header[3])
	}
	hasValue := header[3] != "pattern"
	switch header[4] {
	case "symmetric", "general":
	default:
		return nil, fmt.Errorf("mmio: unsupported symmetry %q", header[4])
	}

	// Skip comments, find the size line.
	var rows, cols, nnz int
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("mmio: missing size line: %w", sc.Err())
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("mmio: bad size line %q: %v", line, err)
		}
		break
	}
	if rows != cols {
		return nil, fmt.Errorf("mmio: non-square matrix %dx%d", rows, cols)
	}
	if rows < 0 || nnz < 0 {
		return nil, fmt.Errorf("mmio: negative dimensions in size line")
	}

	b := NewBuilder(rows)
	b.Grow(nnz)
	read := 0
	for read < nnz {
		if !sc.Scan() {
			return nil, fmt.Errorf("mmio: expected %d entries, got %d: %w", nnz, read, sc.Err())
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		i, j, err := parseEntry(line, hasValue)
		if err != nil {
			return nil, fmt.Errorf("mmio: entry %d: %v", read+1, err)
		}
		if i < 1 || i > rows || j < 1 || j > rows {
			return nil, fmt.Errorf("mmio: entry %d (%d,%d) out of range [1,%d]", read+1, i, j, rows)
		}
		if i != j {
			b.AddEdge(int32(i-1), int32(j-1))
		}
		read++
	}
	return b.Build(), nil
}

func parseEntry(line string, hasValue bool) (i, j int, err error) {
	fields := strings.Fields(line)
	want := 2
	if hasValue {
		want = 3
	}
	if len(fields) < want {
		return 0, 0, fmt.Errorf("short entry %q", line)
	}
	if i, err = strconv.Atoi(fields[0]); err != nil {
		return 0, 0, err
	}
	if j, err = strconv.Atoi(fields[1]); err != nil {
		return 0, 0, err
	}
	return i, j, nil
}
