package graph

import (
	"testing"
	"testing/quick"
)

func TestPermuteIdentity(t *testing.T) {
	g := randomGraph(3, 40, 150)
	h, err := g.Permute(IdentityPermutation(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Error("identity permutation changed the graph")
	}
}

func TestPermuteRejectsInvalid(t *testing.T) {
	g := path(4)
	if _, err := g.Permute([]int32{0, 1, 2}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := g.Permute([]int32{0, 1, 2, 2}); err == nil {
		t.Error("repeated value accepted")
	}
	if _, err := g.Permute([]int32{0, 1, 2, 4}); err == nil {
		t.Error("out-of-range value accepted")
	}
}

func TestPermutePreservesStructure(t *testing.T) {
	property := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%60) + 2
		m := int(mRaw % 300)
		g := randomGraph(seed, n, m)
		h := g.Shuffled(seed + 1)
		if h.Validate() != nil {
			return false
		}
		if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
			return false
		}
		// Degree multiset must be preserved.
		dg := DegreeHistogram(g)
		dh := DegreeHistogram(h)
		if len(dg) != len(dh) {
			return false
		}
		for i := range dg {
			if dg[i] != dh[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPermuteEdgeMapping(t *testing.T) {
	g := path(5)
	perm := []int32{4, 3, 2, 1, 0} // reversal
	h, err := g.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 5; v++ {
		for _, w := range g.Adj(v) {
			if !h.HasEdge(perm[v], perm[w]) {
				t.Errorf("edge (%d,%d) not mapped to (%d,%d)", v, w, perm[v], perm[w])
			}
		}
	}
}

func TestShuffledDeterministic(t *testing.T) {
	g := randomGraph(5, 50, 200)
	a := g.Shuffled(42)
	b := g.Shuffled(42)
	if !a.Equal(b) {
		t.Error("Shuffled not deterministic for equal seeds")
	}
	c := g.Shuffled(43)
	if a.Equal(c) && g.NumEdges() > 5 {
		t.Error("Shuffled identical for different seeds (suspicious)")
	}
}

func TestShuffledPreservesLevelCount(t *testing.T) {
	// BFS level structure from the mapped source must be isomorphic.
	g := path(30)
	perm := make([]int32, 30)
	for i := range perm {
		perm[i] = int32((i*7 + 3) % 30) // a fixed permutation
	}
	h, err := g.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	_, nlG := g.Levels(0)
	_, nlH := h.Levels(perm[0])
	if nlG != nlH {
		t.Errorf("level count changed under permutation: %d vs %d", nlG, nlH)
	}
}
