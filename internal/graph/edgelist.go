package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Plain edge-list I/O: the whitespace-separated "u v" per line format used
// by SNAP datasets, Graph 500 generators, and most ad-hoc tooling. Vertex
// ids are 0-based. Lines starting with '#' or '%' are comments. The vertex
// count is max id + 1 unless a larger count is given.

// WriteEdgeList writes each undirected edge once ("u v" with u < v),
// preceded by a comment with the graph dimensions.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# %d vertices, %d edges\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	buf := make([]byte, 0, 32)
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Adj(int32(v)) {
			if int32(v) < u {
				buf = buf[:0]
				buf = strconv.AppendInt(buf, int64(v), 10)
				buf = append(buf, ' ')
				buf = strconv.AppendInt(buf, int64(u), 10)
				buf = append(buf, '\n')
				if _, err := bw.Write(buf); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses an edge list. minVertices pads the vertex count (0 to
// infer it from the maximum id seen). Self loops and duplicates are
// discarded as usual.
func ReadEdgeList(r io.Reader, minVertices int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var us, vs []int32
	maxID := int32(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("edgelist: line %d: need two ids, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("edgelist: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("edgelist: line %d: %v", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("edgelist: line %d: negative vertex id", lineNo)
		}
		us = append(us, int32(u))
		vs = append(vs, int32(v))
		if int32(u) > maxID {
			maxID = int32(u)
		}
		if int32(v) > maxID {
			maxID = int32(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("edgelist: %w", err)
	}
	n := int(maxID) + 1
	if minVertices > n {
		n = minVertices
	}
	b := NewBuilder(n)
	b.Grow(len(us))
	for i := range us {
		b.AddEdge(us[i], vs[i])
	}
	return b.Build(), nil
}
