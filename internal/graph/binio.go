package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary graph format: a compact little-endian CSR dump used to cache
// generated graphs between experiment runs (the Matrix Market text format is
// ~10x larger and far slower to parse). Layout:
//
//	magic   [8]byte  "MICGRAPH"
//	version uint32   (1)
//	n       uint64   vertex count
//	arcs    uint64   len(adj) == 2|E|
//	xadj    [n+1]int64
//	adj     [arcs]int32
const (
	binMagic   = "MICGRAPH"
	binVersion = 1
)

// WriteBinary writes g in the compact binary CSR format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	n := g.NumVertices()
	hdr := []any{uint32(binVersion), uint64(n), uint64(len(g.adj))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if n > 0 {
		if err := binary.Write(bw, binary.LittleEndian, g.xadj); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary and validates its
// structural invariants.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("binio: reading magic: %w", err)
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("binio: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("binio: reading version: %w", err)
	}
	if version != binVersion {
		return nil, fmt.Errorf("binio: unsupported version %d", version)
	}
	var n, arcs uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("binio: reading n: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &arcs); err != nil {
		return nil, fmt.Errorf("binio: reading arc count: %w", err)
	}
	// Vertex ids are int32, so n must fit; refuse absurd sizes rather than
	// OOM on corrupt input.
	const maxN = 1<<31 - 1
	const sane = 1 << 40
	if n > maxN || arcs > sane {
		return nil, fmt.Errorf("binio: implausible sizes n=%d arcs=%d", n, arcs)
	}
	g := &Graph{}
	if n > 0 {
		g.xadj = make([]int64, n+1)
		if err := binary.Read(br, binary.LittleEndian, g.xadj); err != nil {
			return nil, fmt.Errorf("binio: reading xadj: %w", err)
		}
		// Check the offset array before trusting arcs enough to allocate
		// the adjacency array: xadj must start at 0, never decrease, and
		// end exactly at the declared arc count.
		if g.xadj[0] != 0 {
			return nil, fmt.Errorf("binio: xadj[0] = %d, want 0", g.xadj[0])
		}
		for i := uint64(1); i <= n; i++ {
			if g.xadj[i] < g.xadj[i-1] {
				return nil, fmt.Errorf("binio: xadj decreases at %d (%d -> %d)", i, g.xadj[i-1], g.xadj[i])
			}
		}
		if g.xadj[n] != int64(arcs) {
			return nil, fmt.Errorf("binio: xadj[n] = %d, want arc count %d", g.xadj[n], arcs)
		}
		g.adj = make([]int32, arcs)
		if err := binary.Read(br, binary.LittleEndian, g.adj); err != nil {
			return nil, fmt.Errorf("binio: reading adj: %w", err)
		}
		for i, w := range g.adj {
			if w < 0 || uint64(w) >= n {
				return nil, fmt.Errorf("binio: adj[%d] = %d outside [0, %d)", i, w, n)
			}
		}
	} else if arcs > 0 {
		return nil, fmt.Errorf("binio: %d arcs with no vertices", arcs)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("binio: corrupt graph: %w", err)
	}
	return g, nil
}
