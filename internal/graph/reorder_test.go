package graph

import (
	"testing"
	"testing/quick"
)

func isPermutation(p []int32) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || int(v) >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestOrderingsArePermutations(t *testing.T) {
	property := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%120) + 1
		m := int(mRaw % 500)
		g := randomGraph(seed, n, m)
		return isPermutation(RCMOrder(g)) &&
			isPermutation(BFSOrder(g)) &&
			isPermutation(DegreeOrder(g))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	// A shuffled grid has terrible bandwidth; RCM must restore most of it.
	grid := gridGraph(40, 40)
	shuffled := grid.Shuffled(7)
	before := shuffled.Bandwidth()
	reordered, err := shuffled.Permute(RCMOrder(shuffled))
	if err != nil {
		t.Fatal(err)
	}
	after := reordered.Bandwidth()
	if after >= before/4 {
		t.Errorf("RCM bandwidth %d, want < 1/4 of shuffled %d", after, before)
	}
	if err := reordered.Validate(); err != nil {
		t.Fatal(err)
	}
}

func gridGraph(w, h int) *Graph {
	b := NewBuilder(w * h)
	id := func(x, y int) int32 { return int32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return b.Build()
}

func TestBFSOrderLocality(t *testing.T) {
	grid := gridGraph(30, 30)
	shuffled := grid.Shuffled(3)
	reordered, err := shuffled.Permute(BFSOrder(shuffled))
	if err != nil {
		t.Fatal(err)
	}
	if reordered.Bandwidth() >= shuffled.Bandwidth() {
		t.Errorf("BFS order bandwidth %d not below shuffled %d",
			reordered.Bandwidth(), shuffled.Bandwidth())
	}
}

func TestDegreeOrderSorts(t *testing.T) {
	g := randomGraph(5, 60, 250)
	perm := DegreeOrder(g)
	h, err := g.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < h.NumVertices(); v++ {
		if h.Degree(int32(v)) < h.Degree(int32(v-1)) {
			t.Fatalf("degrees not sorted at %d: %d < %d", v, h.Degree(int32(v)), h.Degree(int32(v-1)))
		}
	}
}

func TestBandwidth(t *testing.T) {
	if bw := path(5).Bandwidth(); bw != 1 {
		t.Errorf("path bandwidth = %d, want 1", bw)
	}
	b := NewBuilder(10)
	b.AddEdge(0, 9)
	if bw := b.Build().Bandwidth(); bw != 9 {
		t.Errorf("long edge bandwidth = %d, want 9", bw)
	}
	var empty Graph
	if empty.Bandwidth() != 0 {
		t.Error("empty graph bandwidth != 0")
	}
}

func TestPseudoPeripheralOnPath(t *testing.T) {
	g := path(50)
	pp := pseudoPeripheral(g, 25)
	if pp != 0 && pp != 49 {
		t.Errorf("pseudo-peripheral of a path = %d, want an endpoint", pp)
	}
}

func TestReorderDisconnected(t *testing.T) {
	b := NewBuilder(8)
	b.AddEdge(0, 1)
	b.AddEdge(5, 6) // two components + isolated vertices
	g := b.Build()
	for name, perm := range map[string][]int32{
		"rcm": RCMOrder(g), "bfs": BFSOrder(g), "degree": DegreeOrder(g),
	} {
		if !isPermutation(perm) {
			t.Errorf("%s: not a permutation on disconnected input", name)
		}
		if _, err := g.Permute(perm); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
