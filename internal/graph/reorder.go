package graph

import "sort"

// Locality-restoring reorderings. The paper's Figure 2 shows how much the
// kernels depend on vertex-ordering locality (its reference [21], Strout &
// Hovland, studies exactly these reordering transformations). RCM is the
// classical bandwidth-reducing ordering used on FEM matrices like the test
// suite; BFSOrder is its cheaper cousin. Both return a permutation suitable
// for Graph.Permute: perm[v] is the new id of old vertex v.

// RCMOrder computes a Reverse Cuthill–McKee permutation: BFS from a
// pseudo-peripheral vertex of each component, visiting neighbors in
// increasing-degree order, then reversing the numbering. Applying it to a
// shuffled graph largely restores the natural-order locality.
func RCMOrder(g *Graph) []int32 {
	n := g.NumVertices()
	perm := make([]int32, n)
	visited := make([]bool, n)
	sequence := make([]int32, 0, n)
	scratch := make([]int32, 0, 64)

	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		src := pseudoPeripheral(g, int32(start))
		// BFS with degree-sorted neighbor expansion.
		head := len(sequence)
		visited[src] = true
		sequence = append(sequence, src)
		for head < len(sequence) {
			v := sequence[head]
			head++
			scratch = scratch[:0]
			for _, w := range g.Adj(v) {
				if !visited[w] {
					visited[w] = true
					scratch = append(scratch, w)
				}
			}
			sort.Slice(scratch, func(i, j int) bool {
				return g.Degree(scratch[i]) < g.Degree(scratch[j])
			})
			sequence = append(sequence, scratch...)
		}
	}
	// Reverse: the last BFS vertex gets id 0.
	for i, v := range sequence {
		perm[v] = int32(n - 1 - i)
	}
	return perm
}

// BFSOrder numbers vertices in plain BFS discovery order from vertex 0
// (components appended in index order) — a cheap locality ordering.
func BFSOrder(g *Graph) []int32 {
	n := g.NumVertices()
	perm := make([]int32, n)
	visited := make([]bool, n)
	var next int32
	queue := make([]int32, 0, n)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], int32(start))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			perm[v] = next
			next++
			for _, w := range g.Adj(v) {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return perm
}

// DegreeOrder numbers vertices by non-decreasing degree (stable). Useful as
// a deliberately locality-hostile but deterministic ordering in tests.
func DegreeOrder(g *Graph) []int32 {
	n := g.NumVertices()
	order := IdentityPermutation(n)
	sort.SliceStable(order, func(a, b int) bool {
		return g.Degree(order[a]) < g.Degree(order[b])
	})
	perm := make([]int32, n)
	for newID, v := range order {
		perm[v] = int32(newID)
	}
	return perm
}

// pseudoPeripheral finds an approximate farthest vertex of start's
// component by repeated BFS sweeps (George–Liu heuristic), preferring
// low-degree vertices on the last level.
func pseudoPeripheral(g *Graph, start int32) int32 {
	cur := start
	lastEcc := -1
	for iter := 0; iter < 8; iter++ {
		levels, nl := g.Levels(cur)
		ecc := nl - 1
		if ecc <= lastEcc {
			return cur
		}
		lastEcc = ecc
		// Lowest-degree vertex on the farthest level.
		best := cur
		bestDeg := int(^uint(0) >> 1)
		for v := 0; v < g.NumVertices(); v++ {
			if levels[v] == int32(ecc) && g.Degree(int32(v)) < bestDeg {
				best = int32(v)
				bestDeg = g.Degree(int32(v))
			}
		}
		cur = best
	}
	return cur
}

// Bandwidth returns the matrix bandwidth of the graph under its current
// numbering: max |u - v| over edges. Reorderings are judged by how much
// they shrink it.
func (g *Graph) Bandwidth() int64 {
	var bw int64
	for v := 0; v < g.NumVertices(); v++ {
		adj := g.Adj(int32(v))
		if len(adj) == 0 {
			continue
		}
		// Adjacency is sorted: the extremes give the max distance.
		lo := int64(v) - int64(adj[0])
		hi := int64(adj[len(adj)-1]) - int64(v)
		if lo > bw {
			bw = lo
		}
		if hi > bw {
			bw = hi
		}
	}
	return bw
}
