package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge between two vertices. The orientation is
// irrelevant: {U,V} and {V,U} denote the same edge.
type Edge struct {
	U, V int32
}

// FromEdges builds a simple undirected CSR graph on n vertices from an
// arbitrary edge list. Self loops are dropped, parallel edges are
// deduplicated, and the result is symmetric with sorted adjacency lists.
// It returns an error if n < 0 or any endpoint is out of [0, n).
func FromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
	}
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build(), nil
}

// MustFromEdges is FromEdges, panicking on error. Intended for tests and
// generators whose inputs are correct by construction.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Builder accumulates edges and produces a CSR graph. It is cheaper than
// FromEdges for generators that know approximately how many edges they will
// add, and it tolerates duplicate and self-loop insertions (they are
// silently discarded at Build time). Builder is not safe for concurrent use.
type Builder struct {
	n     int
	us    []int32
	vs    []int32
	built bool
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// Grow pre-allocates capacity for m additional edges.
func (b *Builder) Grow(m int) {
	if cap(b.us)-len(b.us) < m {
		nus := make([]int32, len(b.us), len(b.us)+m)
		copy(nus, b.us)
		b.us = nus
		nvs := make([]int32, len(b.vs), len(b.vs)+m)
		copy(nvs, b.vs)
		b.vs = nvs
	}
}

// AddEdge records the undirected edge {u,v}. Out-of-range endpoints panic;
// self loops and duplicates are tolerated and removed at Build time.
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
}

// NumPendingEdges returns the number of AddEdge calls so far (before
// dedup/self-loop removal).
func (b *Builder) NumPendingEdges() int { return len(b.us) }

// Build produces the CSR graph. The Builder must not be reused afterwards.
//
// The construction is the classic two-pass counting sort: count degrees of
// both endpoints of every surviving edge, prefix-sum into offsets, scatter,
// then sort and dedup each adjacency list in place.
func (b *Builder) Build() *Graph {
	if b.built {
		panic("graph: Builder.Build called twice")
	}
	b.built = true
	n := b.n

	// Pass 1: degrees, dropping self loops.
	deg := make([]int64, n+1)
	for i := range b.us {
		if b.us[i] == b.vs[i] {
			continue
		}
		deg[b.us[i]+1]++
		deg[b.vs[i]+1]++
	}
	for v := 0; v < n; v++ {
		deg[v+1] += deg[v]
	}
	xadj := deg // reuse: deg is now the prefix sum / final xadj after scatter

	// Pass 2: scatter both directions.
	adj := make([]int32, xadj[n])
	next := make([]int64, n)
	for v := 0; v < n; v++ {
		next[v] = xadj[v]
	}
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		if u == v {
			continue
		}
		adj[next[u]] = v
		next[u]++
		adj[next[v]] = u
		next[v]++
	}
	b.us, b.vs = nil, nil

	// Pass 3: sort and dedup each list, compacting in place.
	out := int64(0)
	newXadj := make([]int64, n+1)
	for v := 0; v < n; v++ {
		lo, hi := xadj[v], xadj[v+1]
		list := adj[lo:hi]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		newXadj[v] = out
		var prev int32 = -1
		for _, w := range list {
			if w != prev {
				adj[out] = w
				out++
				prev = w
			}
		}
	}
	newXadj[n] = out
	return &Graph{xadj: newXadj, adj: adj[:out:out]}
}

// FromAdjacency builds a graph from explicit adjacency lists. The lists are
// symmetrised: if w appears in lists[v], the edge {v,w} is added regardless
// of whether v appears in lists[w]. Intended for tests and small examples.
func FromAdjacency(lists [][]int32) (*Graph, error) {
	n := len(lists)
	b := NewBuilder(n)
	for v, l := range lists {
		for _, w := range l {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: adjacency of %d contains out-of-range %d", v, w)
			}
			if int32(v) < w { // add each undirected edge once; Build dedups anyway
				b.AddEdge(int32(v), w)
			} else if int32(v) > w {
				b.AddEdge(w, int32(v))
			}
		}
	}
	return b.Build(), nil
}
