package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	property := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%100) + 1
		m := int(mRaw % 500)
		g := randomGraph(seed, n, m)
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, g); err != nil {
			return false
		}
		h, err := ReadMatrixMarket(&buf)
		if err != nil {
			return false
		}
		return g.Equal(h)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadMatrixMarketGeneralWithValues(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment line
4 4 5
1 2 3.5
2 1 3.5
3 4 -1.0e2
1 1 7.0
4 3 2
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 2 {
		t.Errorf("got %s, want V=4 E=2 (diagonal dropped, duplicates merged)", g)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Error("expected edges missing")
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "%%MatrixMarket matrix array real general\n2 2 0\n",
		"bad field":    "%%MatrixMarket matrix coordinate complex symmetric\n2 2 0\n",
		"bad symmetry": "%%MatrixMarket matrix coordinate pattern skew-symmetric\n2 2 0\n",
		"non-square":   "%%MatrixMarket matrix coordinate pattern symmetric\n2 3 0\n",
		"short entry":  "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1\n",
		"out of range": "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1 3\n",
		"truncated":    "%%MatrixMarket matrix coordinate pattern symmetric\n5 5 3\n1 2\n",
		"bad size":     "%%MatrixMarket matrix coordinate pattern symmetric\nx y z\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("case %q: error expected", name)
		}
	}
}

func TestReadMatrixMarketEmptyGraph(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern symmetric\n0 0 0\n"
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 {
		t.Errorf("V = %d, want 0", g.NumVertices())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	property := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw % 100)
		m := int(mRaw % 500)
		var g *Graph
		if n == 0 {
			g = &Graph{}
		} else {
			g = randomGraph(seed, n, m)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		h, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return g.NumVertices() == h.NumVertices() && (g.NumVertices() == 0 || g.Equal(h))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := complete(5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, data...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}

	// Truncation.
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-4])); err == nil {
		t.Error("truncated stream accepted")
	}

	// Corrupt adjacency payload (out-of-range neighbor) must fail Validate.
	bad = append([]byte{}, data...)
	bad[len(bad)-1] = 0x7f
	bad[len(bad)-2] = 0x7f
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt adjacency accepted")
	}
}

func TestWriteMatrixMarketHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, path(3)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n") {
		t.Errorf("unexpected header/size: %q", out)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	property := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%100) + 1
		m := int(mRaw % 500)
		g := randomGraph(seed, n, m)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		h, err := ReadEdgeList(&buf, n) // pad to n for trailing isolated vertices
		if err != nil {
			return false
		}
		return g.Equal(h)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# comment\n% also comment\n0 1\n\n1 2 extra-ignored\n"
	g, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Errorf("got %s, want V=3 E=2", g)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"short line": "0\n",
		"non-number": "a b\n",
		"negative":   "-1 2\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), 0); err == nil {
			t.Errorf("case %q: error expected", name)
		}
	}
}

func TestReadEdgeListMinVertices(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Errorf("V = %d, want padded 10", g.NumVertices())
	}
}
