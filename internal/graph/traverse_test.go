package graph

import (
	"testing"
	"testing/quick"
)

func TestLevelsPath(t *testing.T) {
	g := path(5)
	levels, nl := g.Levels(0)
	if nl != 5 {
		t.Errorf("path(5) from 0 has %d levels, want 5", nl)
	}
	for v, l := range levels {
		if int(l) != v {
			t.Errorf("level[%d] = %d, want %d", v, l, v)
		}
	}
	_, nl = g.Levels(2)
	if nl != 3 {
		t.Errorf("path(5) from middle has %d levels, want 3", nl)
	}
}

func TestLevelsDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1) // component {0,1}; 2,3 isolated
	g := b.Build()
	levels, nl := g.Levels(0)
	if nl != 2 {
		t.Errorf("levels = %d, want 2", nl)
	}
	if levels[2] != -1 || levels[3] != -1 {
		t.Errorf("unreachable vertices have levels %d,%d, want -1,-1", levels[2], levels[3])
	}
}

func TestLevelsComplete(t *testing.T) {
	g := complete(6)
	levels, nl := g.Levels(3)
	if nl != 2 {
		t.Errorf("K6 has %d levels, want 2", nl)
	}
	for v, l := range levels {
		want := int32(1)
		if v == 3 {
			want = 0
		}
		if l != want {
			t.Errorf("level[%d] = %d, want %d", v, l, want)
		}
	}
}

func TestLevelWidths(t *testing.T) {
	g := path(6)
	w := g.LevelWidths(0)
	if len(w) != 6 {
		t.Fatalf("profile length %d, want 6", len(w))
	}
	for l, x := range w {
		if x != 1 {
			t.Errorf("width[%d] = %d, want 1", l, x)
		}
	}
	// A star: one center, n-1 leaves -> widths [1, n-1].
	b := NewBuilder(10)
	for i := int32(1); i < 10; i++ {
		b.AddEdge(0, i)
	}
	star := b.Build()
	w = star.LevelWidths(0)
	if len(w) != 2 || w[0] != 1 || w[1] != 9 {
		t.Errorf("star widths = %v, want [1 9]", w)
	}
}

// levelsAreShortestPaths is the fundamental BFS property: level[v] equals
// the shortest-path distance, checked by Bellman-Ford-style relaxation.
func levelsAreShortestPaths(g *Graph, source int32, levels []int32) bool {
	if levels[source] != 0 {
		return false
	}
	for v := 0; v < g.NumVertices(); v++ {
		lv := levels[v]
		for _, w := range g.Adj(int32(v)) {
			lw := levels[w]
			switch {
			case lv == -1 && lw != -1, lw == -1 && lv != -1:
				return false // adjacent vertices must be both reachable or both not
			case lv != -1 && (lw > lv+1 || lv > lw+1):
				return false // adjacent levels differ by at most 1
			}
		}
	}
	// Every reachable non-source vertex needs a neighbor one level closer.
	for v := 0; v < g.NumVertices(); v++ {
		if levels[v] <= 0 {
			continue
		}
		ok := false
		for _, w := range g.Adj(int32(v)) {
			if levels[w] == levels[v]-1 {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func TestLevelsAreShortestPathsProperty(t *testing.T) {
	property := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%100) + 1
		m := int(mRaw % 400)
		g := randomGraph(seed, n, m)
		src := int32(int(seed) % n)
		if src < 0 {
			src = -src
		}
		levels, _ := g.Levels(src)
		return levelsAreShortestPaths(g, src, levels)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	// 5, 6 isolated
	g := b.Build()
	comp, k := g.ConnectedComponents()
	if k != 4 {
		t.Fatalf("components = %d, want 4", k)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("vertices 0,1,2 not in the same component")
	}
	if comp[3] != comp[4] {
		t.Error("vertices 3,4 not in the same component")
	}
	if comp[0] == comp[3] || comp[5] == comp[6] {
		t.Error("distinct components merged")
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder(10)
	// Component A: 0-1-2-3-4 (5 vertices), component B: 5-6 (2), rest isolated.
	for i := 0; i < 4; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	b.AddEdge(5, 6)
	g := b.Build()
	lc, remap := g.LargestComponent()
	if lc.NumVertices() != 5 || lc.NumEdges() != 4 {
		t.Errorf("largest component %s, want V=5 E=4", lc)
	}
	if err := lc.Validate(); err != nil {
		t.Error(err)
	}
	for v := 0; v < 5; v++ {
		if remap[v] == -1 {
			t.Errorf("vertex %d dropped from largest component", v)
		}
	}
	for v := 5; v < 10; v++ {
		if remap[v] != -1 {
			t.Errorf("vertex %d kept, should be dropped", v)
		}
	}

	// Connected graph returns itself.
	conn := path(4)
	lc2, _ := conn.LargestComponent()
	if lc2 != conn {
		t.Error("connected graph did not return itself")
	}
}

func TestEccentricityLowerBound(t *testing.T) {
	g := path(100)
	if d := g.EccentricityLowerBound(50, 3); d != 99 {
		t.Errorf("double sweep on path(100) = %d, want 99", d)
	}
	k := complete(5)
	if d := k.EccentricityLowerBound(0, 2); d != 1 {
		t.Errorf("double sweep on K5 = %d, want 1", d)
	}
}
