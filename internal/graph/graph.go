// Package graph provides the compressed sparse row (CSR) graph representation
// shared by every kernel in this repository, together with builders,
// permutation utilities, traversal helpers, statistics, and Matrix Market /
// binary I/O.
//
// Graphs are simple (no self loops, no parallel edges) and undirected,
// stored symmetrically: every edge {u,v} appears both in Adj(u) and Adj(v),
// exactly as the coloring, BFS and irregular-computation kernels of the
// paper expect. Vertices are identified by int32 and adjacency offsets by
// int64, which comfortably covers the paper's largest graph (ldoor, 952K
// vertices, 20.7M edges, 41.4M CSR entries) at half the memory of int.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected graph in CSR form. The zero value is the empty
// graph. Graph values are immutable after construction; all methods are safe
// for concurrent use.
type Graph struct {
	xadj []int64 // len NumVertices()+1; xadj[v]..xadj[v+1] indexes adj
	adj  []int32 // concatenated sorted adjacency lists, len 2*NumEdges()
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int {
	if len(g.xadj) == 0 {
		return 0
	}
	return len(g.xadj) - 1
}

// NumEdges returns the number of undirected edges |E| (each edge counted
// once, even though it is stored twice).
func (g *Graph) NumEdges() int64 { return int64(len(g.adj)) / 2 }

// NumArcs returns the number of stored directed arcs, i.e. 2|E|.
func (g *Graph) NumArcs() int64 { return int64(len(g.adj)) }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int { return int(g.xadj[v+1] - g.xadj[v]) }

// Adj returns the sorted adjacency list of v. The returned slice aliases the
// graph's internal storage and must not be modified.
func (g *Graph) Adj(v int32) []int32 { return g.adj[g.xadj[v]:g.xadj[v+1]] }

// Xadj returns the raw CSR offset array (length NumVertices()+1). The
// returned slice aliases internal storage and must not be modified. It is
// exposed for kernels that iterate the CSR arrays directly.
func (g *Graph) Xadj() []int64 { return g.xadj }

// AdjRaw returns the raw concatenated adjacency array. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) AdjRaw() []int32 { return g.adj }

// MaxDegree returns Δ, the largest vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.NumVertices(); v++ {
		if dv := g.Degree(int32(v)); dv > d {
			d = dv
		}
	}
	return d
}

// AvgDegree returns the mean vertex degree (0 for the empty graph).
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(g.NumArcs()) / float64(n)
}

// HasEdge reports whether the edge {u,v} is present, by binary search on the
// sorted adjacency of the lower-degree endpoint.
func (g *Graph) HasEdge(u, v int32) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	a := g.Adj(u)
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// Validate checks the structural invariants of the CSR representation:
// monotone offsets, in-range neighbor ids, sorted adjacency, no self loops,
// no duplicate neighbors, and symmetry. It returns the first violation found.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.xadj) == 0 {
		if len(g.adj) != 0 {
			return fmt.Errorf("graph: empty xadj with %d adjacency entries", len(g.adj))
		}
		return nil
	}
	if g.xadj[0] != 0 {
		return fmt.Errorf("graph: xadj[0] = %d, want 0", g.xadj[0])
	}
	if g.xadj[n] != int64(len(g.adj)) {
		return fmt.Errorf("graph: xadj[n] = %d, want %d", g.xadj[n], len(g.adj))
	}
	for v := 0; v < n; v++ {
		if g.xadj[v] > g.xadj[v+1] {
			return fmt.Errorf("graph: xadj not monotone at vertex %d", v)
		}
		a := g.Adj(int32(v))
		for i, w := range a {
			if w < 0 || int(w) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if w == int32(v) {
				return fmt.Errorf("graph: self loop at vertex %d", v)
			}
			if i > 0 && a[i-1] >= w {
				return fmt.Errorf("graph: adjacency of vertex %d not strictly sorted at index %d", v, i)
			}
		}
	}
	// Symmetry: every arc (v,w) must have a reverse arc (w,v).
	for v := 0; v < n; v++ {
		for _, w := range g.Adj(int32(v)) {
			if !containsSorted(g.Adj(w), int32(v)) {
				return fmt.Errorf("graph: asymmetric edge (%d,%d)", v, w)
			}
		}
	}
	return nil
}

func containsSorted(a []int32, v int32) bool {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		xadj: make([]int64, len(g.xadj)),
		adj:  make([]int32, len(g.adj)),
	}
	copy(ng.xadj, g.xadj)
	copy(ng.adj, g.adj)
	return ng
}

// Equal reports whether g and h have identical CSR representations.
func (g *Graph) Equal(h *Graph) bool {
	if g.NumVertices() != h.NumVertices() || len(g.adj) != len(h.adj) {
		return false
	}
	for i := range g.xadj {
		if g.xadj[i] != h.xadj[i] {
			return false
		}
	}
	for i := range g.adj {
		if g.adj[i] != h.adj[i] {
			return false
		}
	}
	return true
}

// String returns a short human-readable summary such as
// "graph{V=448124 E=3314611 Δ=37}".
func (g *Graph) String() string {
	return fmt.Sprintf("graph{V=%d E=%d Δ=%d}", g.NumVertices(), g.NumEdges(), g.MaxDegree())
}
