package load

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// SLORule is one gate of the -slo flag: "[phase:]metric<=value".
// Latency metrics (p50, p99, p999 — client latency from scheduled
// arrival) take duration values ("250ms"); rate metrics (drop_rate,
// reject_rate, error_rate) take fractions ("0.05"). A rule without a
// phase prefix applies to every phase.
type SLORule struct {
	Phase  string  `json:"phase,omitempty"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"` // ns for latency metrics, fraction for rates
	Text   string  `json:"text"`
}

var sloMetrics = map[string]bool{
	"p50": true, "p99": true, "p999": true,
	"drop_rate": true, "reject_rate": true, "error_rate": true,
}

// ParseSLOs parses semicolon-separated rules, e.g.
//
//	"steady:p99<=250ms;burst:drop_rate<=0.25;error_rate<=0"
func ParseSLOs(s string) ([]SLORule, error) {
	var rules []SLORule
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lhs, val, ok := strings.Cut(part, "<=")
		if !ok {
			return nil, fmt.Errorf("load: slo rule %q has no <= operator", part)
		}
		r := SLORule{Text: part, Metric: strings.TrimSpace(lhs)}
		if phase, metric, ok := strings.Cut(r.Metric, ":"); ok {
			r.Phase, r.Metric = strings.TrimSpace(phase), strings.TrimSpace(metric)
		}
		if !sloMetrics[r.Metric] {
			return nil, fmt.Errorf("load: unknown slo metric %q (want p50, p99, p999, drop_rate, reject_rate or error_rate)", r.Metric)
		}
		val = strings.TrimSpace(val)
		switch r.Metric {
		case "p50", "p99", "p999":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("load: slo rule %q: %w", part, err)
			}
			r.Value = float64(d)
		default:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("load: slo rule %q: %w", part, err)
			}
			r.Value = f
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// SLOResult is one rule's evaluation against one phase.
type SLOResult struct {
	Rule     string `json:"rule"`
	Phase    string `json:"phase"`
	Passed   bool   `json:"passed"`
	Observed string `json:"observed"`
}

// observe extracts a rule's metric from a phase report. A latency rule over
// a phase with no terminal jobs observes +Inf ("no samples") so it fails
// rather than passing vacuously on an empty histogram — a daemon that
// completes nothing must not satisfy a latency SLO.
func (r SLORule) observe(p PhaseReport) (value float64, rendered string) {
	if (r.Metric == "p50" || r.Metric == "p99" || r.Metric == "p999") && p.Client.Latency.Count == 0 {
		return math.Inf(1), "no samples"
	}
	switch r.Metric {
	case "p50":
		v := p.Client.Latency.P50NS
		return float64(v), time.Duration(v).String()
	case "p99":
		v := p.Client.Latency.P99NS
		return float64(v), time.Duration(v).String()
	case "p999":
		v := p.Client.Latency.P999NS
		return float64(v), time.Duration(v).String()
	case "drop_rate":
		return p.DropRate, fmt.Sprintf("%.4f", p.DropRate)
	case "reject_rate":
		return p.RejectRate, fmt.Sprintf("%.4f", p.RejectRate)
	default: // error_rate
		return p.ErrorRate, fmt.Sprintf("%.4f", p.ErrorRate)
	}
}

// EvaluateSLOs checks every rule against the report's phases and returns
// one result per (rule, matching phase). A rule naming a phase that does
// not exist fails explicitly rather than passing vacuously.
func EvaluateSLOs(rules []SLORule, rep *Report) []SLOResult {
	var out []SLOResult
	for _, r := range rules {
		matched := false
		for _, p := range rep.Phases {
			if r.Phase != "" && r.Phase != p.Name {
				continue
			}
			matched = true
			v, rendered := r.observe(p)
			out = append(out, SLOResult{
				Rule:     r.Text,
				Phase:    p.Name,
				Passed:   v <= r.Value,
				Observed: rendered,
			})
		}
		if !matched {
			out = append(out, SLOResult{
				Rule:     r.Text,
				Phase:    r.Phase,
				Passed:   false,
				Observed: "no such phase",
			})
		}
	}
	return out
}

// SLOsPassed reports whether every result passed.
func SLOsPassed(results []SLOResult) bool {
	for _, r := range results {
		if !r.Passed {
			return false
		}
	}
	return true
}
