package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"micgraph/internal/serve"
	"micgraph/internal/telemetry"
)

// Config wires a replay run. Zero values take the documented defaults.
type Config struct {
	// BaseURL is the daemon under load, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// Targets, when set, spreads the trace across several endpoints —
	// cluster entry nodes — round-robin by request index: request i submits
	// to (and polls) Targets[i % len(Targets)]. Empty means [BaseURL]. The
	// replayer's accounting scrapes every target's local /metricsz and sums
	// the lifetime totals, which preserves the conservation check because
	// each shard's totals satisfy the law independently.
	Targets []string
	// Clients bounds concurrent in-flight requests (default 64). The
	// replayer is open-loop: arrivals fire on the trace schedule no matter
	// how slow the daemon is, and an arrival that finds every client busy
	// is shed and counted as dropped rather than queued client-side —
	// queueing belongs to the daemon, where it is measured.
	Clients int
	// PollInterval is the job-status poll cadence (default 25ms).
	PollInterval time.Duration
	// Grace bounds how long after the last scheduled arrival the replayer
	// waits for still-running jobs before abandoning them (default 30s).
	Grace time.Duration
	// SampleInterval is the /metricsz gauge sampling cadence (default 250ms).
	SampleInterval time.Duration
	// Clock is the replayer's time source (default telemetry.System). Every
	// client-side latency is measured on it.
	Clock telemetry.Clock
	// Sleep pauses the dispatch loop (default time.Sleep); injectable so
	// tests can compress the schedule.
	Sleep func(time.Duration)
	// HTTP is the transport (default: a client with no overall timeout —
	// per-request bounds come from polling and Grace).
	HTTP *http.Client
	// Logf, when set, receives coarse progress lines (phase transitions).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if len(c.Targets) == 0 {
		c.Targets = []string{c.BaseURL}
	}
	for i, t := range c.Targets {
		c.Targets[i] = strings.TrimRight(t, "/")
	}
	if c.BaseURL == "" {
		c.BaseURL = c.Targets[0]
	}
	if c.Clients <= 0 {
		c.Clients = 64
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 25 * time.Millisecond
	}
	if c.Grace <= 0 {
		c.Grace = 30 * time.Second
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = 250 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = telemetry.System
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.HTTP == nil {
		c.HTTP = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// spanNames orders the server span histograms everywhere they appear.
var spanNames = []string{"queue_wait", "cache_load", "exec", "stream_flush", "total"}

// phaseAcc accumulates one phase's outcomes while the replay runs.
type phaseAcc struct {
	mu                                  sync.Mutex
	scheduled, sent, accepted, rejected int64
	dropped, errs                       int64
	succeeded, failed, cancelled        int64
	latency                             *telemetry.Histogram // scheduled arrival -> terminal
	service                             *telemetry.Histogram // request sent -> terminal
	server                              map[string]*telemetry.Histogram
	queueDepth, running                 []int64
	shards                              map[string]int64 // terminal jobs by serving shard
}

func newPhaseAcc() *phaseAcc {
	a := &phaseAcc{
		latency: telemetry.NewHistogram(),
		service: telemetry.NewHistogram(),
		server:  make(map[string]*telemetry.Histogram, len(spanNames)),
		shards:  make(map[string]int64),
	}
	for _, n := range spanNames {
		a.server[n] = telemetry.NewHistogram()
	}
	return a
}

// observeSpans folds a terminal job's server-reported latency breakdown
// into the phase. This is exact per-phase attribution: the spans arrive on
// the job's own status document, so a job scheduled in the burst phase is
// counted against the burst phase even if it finishes later.
func (a *phaseAcc) observeSpans(sp serve.Spans) {
	a.server["queue_wait"].ObserveNS(sp.QueueNS)
	a.server["cache_load"].ObserveNS(sp.CacheNS)
	a.server["exec"].ObserveNS(sp.ExecNS)
	a.server["stream_flush"].ObserveNS(sp.FlushNS)
	a.server["total"].ObserveNS(sp.TotalNS)
}

const maxGaugeSamples = 2000

func (a *phaseAcc) sample(queueDepth, running int64) {
	a.mu.Lock()
	if len(a.queueDepth) < maxGaugeSamples {
		a.queueDepth = append(a.queueDepth, queueDepth)
		a.running = append(a.running, running)
	}
	a.mu.Unlock()
}

// replayer is one run's shared state.
type replayer struct {
	cfg   Config
	trace *Trace
	start time.Time
	accs  []*phaseAcc
	sem   chan struct{}
	wg    sync.WaitGroup
}

// Replay drives the trace against the daemon and aggregates the report.
// The context aborts the whole run (in-flight pollers included).
func Replay(ctx context.Context, cfg Config, trace *Trace) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &replayer{
		cfg:   cfg,
		trace: trace,
		accs:  make([]*phaseAcc, len(trace.Phases)),
		sem:   make(chan struct{}, cfg.Clients),
	}
	for i := range r.accs {
		r.accs[i] = newPhaseAcc()
	}
	if _, err := r.scrape(ctx, true); err != nil {
		return nil, fmt.Errorf("load: daemon not reachable before replay: %w", err)
	}

	r.start = cfg.Clock.Now()
	sampCtx, stopSampler := context.WithCancel(ctx)
	defer stopSampler()
	go r.sampleGauges(sampCtx)

	pollCtx, pollCancel := context.WithCancel(ctx)
	defer pollCancel()

	phase := -1
	for i := range trace.Requests {
		req := &trace.Requests[i]
		if ctx.Err() != nil {
			break
		}
		if req.Phase != phase {
			phase = req.Phase
			p := trace.Phases[phase]
			cfg.Logf("phase %s (%s): %.0f rps for %s", p.Name, p.Kind, p.RPS, p.Duration)
		}
		target := r.start.Add(req.OffsetNS)
		if d := target.Sub(cfg.Clock.Now()); d > 0 {
			cfg.Sleep(d)
		}
		acc := r.accs[req.Phase]
		acc.mu.Lock()
		acc.scheduled++
		acc.mu.Unlock()
		select {
		case r.sem <- struct{}{}:
		default:
			// Pool exhausted: shed. An open-loop generator never queues
			// client-side — that would be coordinated omission by stealth.
			acc.mu.Lock()
			acc.dropped++
			acc.mu.Unlock()
			continue
		}
		base := cfg.Targets[i%len(cfg.Targets)]
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer func() { <-r.sem }()
			r.run(pollCtx, base, req, target)
		}()
	}

	// Bounded tail: give still-running jobs Grace to reach a terminal
	// status, then abandon the waits (the daemon keeps running them; the
	// conservation check in CI still accounts for every accepted job).
	finished := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(cfg.Grace):
		pollCancel()
		<-finished
	case <-ctx.Done():
		pollCancel()
		<-finished
	}
	stopSampler()

	final, err := r.scrape(context.WithoutCancel(ctx), false)
	if err != nil {
		return nil, fmt.Errorf("load: final metrics scrape: %w", err)
	}
	return r.report(final), ctx.Err()
}

// run executes one request end to end against base: submit, classify the
// admission outcome, poll to terminal, record latencies, server spans and
// the serving shard.
func (r *replayer) run(ctx context.Context, base string, req *Request, target time.Time) {
	acc := r.accs[req.Phase]
	body, err := json.Marshal(req.Spec)
	if err != nil {
		panic(err) // specs are synthesized; marshalling cannot fail
	}
	sent := r.cfg.Clock.Now()
	acc.mu.Lock()
	acc.sent++
	acc.mu.Unlock()

	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/jobs", bytes.NewReader(body))
	if err != nil {
		r.bump(&acc.errs, acc)
		return
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := r.cfg.HTTP.Do(httpReq)
	if err != nil {
		r.bump(&acc.errs, acc)
		return
	}
	var view serve.JobView
	decErr := json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		r.bump(&acc.rejected, acc)
		return
	case resp.StatusCode != http.StatusAccepted || decErr != nil:
		r.bump(&acc.errs, acc)
		return
	}
	r.bump(&acc.accepted, acc)

	view, err = r.await(ctx, base, view.ID)
	if err != nil {
		r.bump(&acc.errs, acc)
		return
	}
	now := r.cfg.Clock.Now()
	acc.mu.Lock()
	switch view.Status {
	case serve.StatusSucceeded:
		acc.succeeded++
	case serve.StatusFailed:
		acc.failed++
	case serve.StatusCancelled:
		acc.cancelled++
	}
	if view.Shard != "" {
		acc.shards[view.Shard]++
	}
	acc.mu.Unlock()
	// Latency from the *scheduled* arrival, so client-side dispatch delay
	// counts against the service (no coordinated omission); service time
	// from the actual send for comparison.
	acc.latency.Observe(now.Sub(target))
	acc.service.Observe(now.Sub(sent))
	if view.Spans != nil {
		acc.observeSpans(*view.Spans)
	}
}

func (r *replayer) bump(field *int64, acc *phaseAcc) {
	acc.mu.Lock()
	*field++
	acc.mu.Unlock()
}

// await polls the job (via the same base it was submitted through) until
// it reaches a terminal status or ctx ends.
func (r *replayer) await(ctx context.Context, base, id string) (serve.JobView, error) {
	poll := time.NewTicker(r.cfg.PollInterval)
	defer poll.Stop()
	for {
		select {
		case <-ctx.Done():
			return serve.JobView{}, ctx.Err()
		case <-poll.C:
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+id, nil)
		if err != nil {
			return serve.JobView{}, err
		}
		resp, err := r.cfg.HTTP.Do(req)
		if err != nil {
			return serve.JobView{}, err
		}
		var view serve.JobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return serve.JobView{}, err
		}
		switch view.Status {
		case serve.StatusSucceeded, serve.StatusFailed, serve.StatusCancelled:
			return view, nil
		}
	}
}

// metricsSnap is the slice of /metricsz the replayer consumes, merged
// across every target when the trace is spread over several.
type metricsSnap struct {
	JobsTotal serve.JobTotals                        `json:"jobs_total"`
	Queue     serve.QueueStats                       `json:"queue"`
	Gauges    map[string]int64                       `json:"gauges"`
	Latency   map[string]telemetry.HistogramSnapshot `json:"latency"`

	perTarget   map[string]serve.JobTotals
	unreachable []string
}

// scrape fetches every target's local metrics (?scope=local keeps a
// cluster node from fanning out — the replayer does its own summation)
// and merges them: lifetime totals and gauges sum, queue high-water marks
// take the max. When strict, any unreachable target fails the scrape;
// otherwise dead targets are recorded and skipped — each reachable
// shard's totals satisfy the conservation law independently, so the
// merged totals still do. The latency histogram block is kept only for a
// single-target run (percentiles do not merge honestly).
func (r *replayer) scrape(ctx context.Context, strict bool) (*metricsSnap, error) {
	merged := &metricsSnap{Gauges: map[string]int64{}, perTarget: map[string]serve.JobTotals{}}
	single := len(r.cfg.Targets) == 1
	for _, base := range r.cfg.Targets {
		m, err := r.scrapeOne(ctx, base)
		if err != nil {
			if strict {
				return nil, fmt.Errorf("load: %s: %w", base, err)
			}
			merged.unreachable = append(merged.unreachable, base)
			continue
		}
		merged.perTarget[base] = m.JobsTotal
		t := &merged.JobsTotal
		t.Submitted += m.JobsTotal.Submitted
		t.Rejected += m.JobsTotal.Rejected
		t.Accepted += m.JobsTotal.Accepted
		t.Succeeded += m.JobsTotal.Succeeded
		t.Failed += m.JobsTotal.Failed
		t.Cancelled += m.JobsTotal.Cancelled
		t.InFlight += m.JobsTotal.InFlight
		q := &merged.Queue
		q.Workers += m.Queue.Workers
		q.Depth += m.Queue.Depth
		q.Queued += m.Queue.Queued
		q.Submitted += m.Queue.Submitted
		q.Rejected += m.Queue.Rejected
		q.Running += m.Queue.Running
		q.Completed += m.Queue.Completed
		q.Draining = q.Draining || m.Queue.Draining
		if m.Queue.QueuedMax > q.QueuedMax {
			q.QueuedMax = m.Queue.QueuedMax
		}
		if m.Queue.RunningMax > q.RunningMax {
			q.RunningMax = m.Queue.RunningMax
		}
		for k, v := range m.Gauges {
			merged.Gauges[k] += v
		}
		if single {
			merged.Latency = m.Latency
		}
	}
	if len(merged.perTarget) == 0 {
		return nil, fmt.Errorf("load: no target reachable (%s)", strings.Join(merged.unreachable, ", "))
	}
	return merged, nil
}

func (r *replayer) scrapeOne(ctx context.Context, base string) (*metricsSnap, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metricsz?scope=local", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.cfg.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: /metricsz returned %d", resp.StatusCode)
	}
	var m metricsSnap
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// sampleGauges records queue depth and in-flight jobs into the phase the
// sample falls in, at the configured cadence, until ctx ends.
func (r *replayer) sampleGauges(ctx context.Context) {
	tick := time.NewTicker(r.cfg.SampleInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		m, err := r.scrape(ctx, false)
		if err != nil {
			continue
		}
		offset := r.cfg.Clock.Now().Sub(r.start)
		pi := r.phaseAt(offset)
		if pi < 0 {
			continue
		}
		r.accs[pi].sample(m.Gauges["queue_depth"], m.Gauges["jobs_running"])
	}
}

// phaseAt maps an offset from replay start to a phase index (-1 when past
// the end of the trace).
func (r *replayer) phaseAt(offset time.Duration) int {
	var base time.Duration
	for i, p := range r.trace.Phases {
		base += p.Duration
		if offset < base {
			return i
		}
	}
	return -1
}
