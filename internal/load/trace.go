// Package load is micload's engine: a deterministic, seeded trace
// synthesizer over phased arrival processes (steady / rps-sweep / burst /
// diurnal), an open-loop replayer with a bounded client pool that drives a
// live micserved daemon, and the per-phase SLO report that merges
// client-observed latencies with the server's span attribution.
//
// Everything here is clock-disciplined: timestamps come from an injected
// telemetry.Clock (micvet's wallclock analyzer enforces it), and the
// synthesizer draws only from a seeded xrand generator, so the same seed
// always produces a byte-identical trace — the property CI's determinism
// check pins.
package load

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"micgraph/internal/serve"
	"micgraph/internal/xrand"
)

// Phase kinds.
const (
	PhaseSteady  = "steady"  // constant RPS
	PhaseSweep   = "sweep"   // RPS ramps linearly RPS -> EndRPS
	PhaseBurst   = "burst"   // baseline RPS with a Gaussian burst of Mult x at At
	PhaseDiurnal = "diurnal" // one sinusoidal day: RPS * (1 + 0.5 sin)
)

// PhaseSpec is one phase of the synthesized workload.
type PhaseSpec struct {
	Name     string        `json:"name"`
	Kind     string        `json:"kind"`
	Duration time.Duration `json:"duration_ns"`
	RPS      float64       `json:"rps"`

	// EndRPS is the sweep target rate (sweep phases only).
	EndRPS float64 `json:"end_rps,omitempty"`
	// Mult, At, Width shape burst phases: the rate is multiplied by up to
	// Mult in a Gaussian bump centred at fraction At of the phase with
	// standard deviation Width (also a fraction of the phase).
	Mult  float64 `json:"mult,omitempty"`
	At    float64 `json:"at,omitempty"`
	Width float64 `json:"width,omitempty"`
}

// rateAt returns the instantaneous request rate at offset t into the phase.
func (p PhaseSpec) rateAt(t time.Duration) float64 {
	frac := 0.0
	if p.Duration > 0 {
		frac = float64(t) / float64(p.Duration)
	}
	switch p.Kind {
	case PhaseSweep:
		return p.RPS + (p.EndRPS-p.RPS)*frac
	case PhaseBurst:
		z := (frac - p.At) / p.Width
		return p.RPS * (1 + (p.Mult-1)*math.Exp(-z*z))
	case PhaseDiurnal:
		return p.RPS * (1 + 0.5*math.Sin(2*math.Pi*frac))
	default:
		return p.RPS
	}
}

// ParsePhases parses the -phases DSL: semicolon-separated phases, each a
// kind followed by comma-separated key=value fields, e.g.
//
//	steady,dur=10s,rps=25;sweep,dur=12s,rps=10,end=40;burst,dur=10s,rps=15,mult=8
//
// Supported keys: name, dur, rps, end (sweep), mult/at/width (burst).
func ParsePhases(s string) ([]PhaseSpec, error) {
	var phases []PhaseSpec
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ",")
		p := PhaseSpec{Kind: strings.TrimSpace(fields[0])}
		switch p.Kind {
		case PhaseSteady, PhaseSweep, PhaseBurst, PhaseDiurnal:
		default:
			return nil, fmt.Errorf("load: unknown phase kind %q (want steady, sweep, burst or diurnal)", p.Kind)
		}
		p.Name = p.Kind
		// Burst defaults: peak in the middle, at 4x, fairly tight.
		if p.Kind == PhaseBurst {
			p.Mult, p.At, p.Width = 4, 0.5, 0.15
		}
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(f), "=")
			if !ok {
				return nil, fmt.Errorf("load: phase field %q is not key=value", f)
			}
			var err error
			switch k {
			case "name":
				p.Name = v
			case "dur":
				p.Duration, err = time.ParseDuration(v)
			case "rps":
				p.RPS, err = strconv.ParseFloat(v, 64)
			case "end":
				p.EndRPS, err = strconv.ParseFloat(v, 64)
			case "mult":
				p.Mult, err = strconv.ParseFloat(v, 64)
			case "at":
				p.At, err = strconv.ParseFloat(v, 64)
			case "width":
				p.Width, err = strconv.ParseFloat(v, 64)
			default:
				return nil, fmt.Errorf("load: unknown phase field %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("load: phase field %s: %w", k, err)
			}
		}
		if p.Duration <= 0 {
			return nil, fmt.Errorf("load: phase %q needs dur > 0", p.Name)
		}
		if p.RPS <= 0 {
			return nil, fmt.Errorf("load: phase %q needs rps > 0", p.Name)
		}
		if p.Kind == PhaseSweep && p.EndRPS <= 0 {
			return nil, fmt.Errorf("load: sweep phase %q needs end > 0", p.Name)
		}
		if p.Kind == PhaseBurst && (p.Width <= 0 || p.Mult <= 0) {
			return nil, fmt.Errorf("load: burst phase %q needs mult > 0 and width > 0", p.Name)
		}
		phases = append(phases, p)
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("load: no phases in %q", s)
	}
	return phases, nil
}

// Mix weights the job kinds drawn for each request. Weights are relative;
// they need not sum to 1.
type Mix struct {
	Kernel float64 `json:"kernel"`
	Sweep  float64 `json:"sweep"`
	Export float64 `json:"export"`
}

// ParseMix parses "kernel=0.85,sweep=0.1,export=0.05".
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, f := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(f), "=")
		if !ok {
			return m, fmt.Errorf("load: mix field %q is not key=value", f)
		}
		w, err := strconv.ParseFloat(v, 64)
		if err != nil || w < 0 {
			return m, fmt.Errorf("load: bad mix weight %q", f)
		}
		switch k {
		case "kernel":
			m.Kernel = w
		case "sweep":
			m.Sweep = w
		case "export":
			m.Export = w
		default:
			return m, fmt.Errorf("load: unknown mix kind %q", k)
		}
	}
	if m.Kernel+m.Sweep+m.Export <= 0 {
		return m, fmt.Errorf("load: mix %q has no positive weight", s)
	}
	return m, nil
}

// Request is one synthesized arrival: a job spec scheduled at a fixed
// offset from trace start. Phase is the index into the trace's phases.
type Request struct {
	Index    int           `json:"i"`
	Phase    int           `json:"phase"`
	OffsetNS time.Duration `json:"offset_ns"`
	Spec     serve.JobSpec `json:"spec"`
}

// Trace is a fully materialised workload: every request pre-drawn, so a
// replay adds no randomness of its own and two replays of one trace submit
// identical job streams.
type Trace struct {
	Seed   uint64      `json:"seed"`
	Phases []PhaseSpec `json:"phases"`
	Mix    Mix         `json:"mix"`
	// ExportDir prefixes the output paths of export jobs.
	ExportDir string    `json:"export_dir,omitempty"`
	Requests  []Request `json:"-"`
}

// Duration is the total scheduled length of the trace.
func (t *Trace) Duration() time.Duration {
	var d time.Duration
	for _, p := range t.Phases {
		d += p.Duration
	}
	return d
}

// PhaseStart returns the offset at which phase i begins.
func (t *Trace) PhaseStart(i int) time.Duration {
	var d time.Duration
	for _, p := range t.Phases[:i] {
		d += p.Duration
	}
	return d
}

// kernel job shapes the synthesizer draws from: small suite graphs and the
// serving path's cheap variants, so a trace stresses queueing and cache
// behaviour rather than raw kernel time.
var (
	kernelGraphs   = []string{"pwtk", "hood", "bmw3_2", "ldoor"}
	bfsVariants    = []string{"omp-block-relaxed", "tbb-block-relaxed", "bag", "hybrid"}
	colorVariants  = []string{"openmp", "cilk", "tbb"}
	irregVariants  = []string{"openmp", "tbb"}
	sweepWorkloads = []string{"fig1a", "fig1b", "fig2", "abl-chunk"}
)

// drawSpec synthesizes one job spec from the mix.
func drawSpec(rng *xrand.Rand, mix Mix, exportDir string, index int) serve.JobSpec {
	total := mix.Kernel + mix.Sweep + mix.Export
	u := rng.Float64() * total
	switch {
	case u < mix.Kernel:
		graph := serve.GraphSpec{Suite: kernelGraphs[rng.Intn(len(kernelGraphs))], Scale: 6}
		switch rng.Intn(3) {
		case 0:
			return serve.JobSpec{Kind: serve.KindBFS, Graph: graph,
				Variant: bfsVariants[rng.Intn(len(bfsVariants))], Chunk: 64}
		case 1:
			return serve.JobSpec{Kind: serve.KindColoring, Graph: graph,
				Variant: colorVariants[rng.Intn(len(colorVariants))], Chunk: 64}
		default:
			return serve.JobSpec{Kind: serve.KindIrregular, Graph: graph,
				Variant: irregVariants[rng.Intn(len(irregVariants))], Chunk: 64, Iters: 3}
		}
	case u < mix.Kernel+mix.Sweep:
		return serve.JobSpec{Kind: serve.KindSweep,
			Experiments: []string{sweepWorkloads[rng.Intn(len(sweepWorkloads))]},
			SweepScale:  2}
	default:
		return serve.JobSpec{Kind: serve.KindExport,
			Graph:  serve.GraphSpec{Suite: kernelGraphs[rng.Intn(len(kernelGraphs))], Scale: 6},
			Output: fmt.Sprintf("%s/export-%06d.bin", exportDir, index),
		}
	}
}

// Synthesize materialises the whole trace from the seed: an open-loop
// arrival process per phase (exponential inter-arrival times against the
// phase's instantaneous rate) over the weighted job mix. Same seed, same
// phases, same mix -> byte-identical trace.
func Synthesize(seed uint64, phases []PhaseSpec, mix Mix, exportDir string) *Trace {
	rng := xrand.New(seed)
	tr := &Trace{Seed: seed, Phases: phases, Mix: mix, ExportDir: exportDir}
	var base time.Duration
	for pi, p := range phases {
		t := time.Duration(0)
		for {
			rate := p.rateAt(t)
			if rate <= 0 {
				break
			}
			// Exponential inter-arrival against the current instantaneous
			// rate; 1-u keeps the argument of Log strictly positive.
			gap := time.Duration(-math.Log(1-rng.Float64()) / rate * float64(time.Second))
			t += gap
			if t >= p.Duration {
				break
			}
			tr.Requests = append(tr.Requests, Request{
				Index:    len(tr.Requests),
				Phase:    pi,
				OffsetNS: base + t,
				Spec:     drawSpec(rng, mix, exportDir, len(tr.Requests)),
			})
		}
		base += p.Duration
	}
	return tr
}

// WriteLog writes the trace as JSONL — one request per line, preceded by a
// header line carrying seed, phases and mix. The encoding is canonical
// (fixed field order, no timestamps), so identical traces produce
// byte-identical logs; CI diffs two runs of the same seed to pin
// synthesizer determinism.
func (t *Trace) WriteLog(w io.Writer) error {
	enc := json.NewEncoder(w)
	header := struct {
		Type     string      `json:"type"`
		Seed     uint64      `json:"seed"`
		Phases   []PhaseSpec `json:"phases"`
		Mix      Mix         `json:"mix"`
		Requests int         `json:"requests"`
	}{"trace", t.Seed, t.Phases, t.Mix, len(t.Requests)}
	if err := enc.Encode(header); err != nil {
		return err
	}
	for i := range t.Requests {
		if err := enc.Encode(&t.Requests[i]); err != nil {
			return err
		}
	}
	return nil
}
