package load

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"micgraph/internal/serve"
)

func mustPhases(t *testing.T, s string) []PhaseSpec {
	t.Helper()
	p, err := ParsePhases(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParsePhases(t *testing.T) {
	p := mustPhases(t, "steady,dur=10s,rps=25;sweep,dur=12s,rps=10,end=40;burst,dur=10s,rps=15,mult=8,at=0.5,width=0.2;diurnal,dur=20s,rps=5,name=night")
	if len(p) != 4 {
		t.Fatalf("got %d phases", len(p))
	}
	if p[0].Kind != PhaseSteady || p[0].Duration != 10*time.Second || p[0].RPS != 25 {
		t.Errorf("steady = %+v", p[0])
	}
	if p[1].EndRPS != 40 {
		t.Errorf("sweep end = %v", p[1].EndRPS)
	}
	if p[2].Mult != 8 || p[2].At != 0.5 || p[2].Width != 0.2 {
		t.Errorf("burst = %+v", p[2])
	}
	if p[3].Name != "night" {
		t.Errorf("named phase = %+v", p[3])
	}
	for _, bad := range []string{
		"", "warp,dur=1s,rps=5", "steady,dur=1s", "steady,rps=5",
		"steady,dur=1s,rps=5,wat=7", "sweep,dur=1s,rps=5", "burst,dur=1s,rps=5,width=0",
	} {
		if _, err := ParsePhases(bad); err == nil {
			t.Errorf("ParsePhases(%q) accepted", bad)
		}
	}
}

func TestRateShapes(t *testing.T) {
	sweep := mustPhases(t, "sweep,dur=10s,rps=10,end=40")[0]
	if got := sweep.rateAt(0); got != 10 {
		t.Errorf("sweep start rate = %v", got)
	}
	if got := sweep.rateAt(5 * time.Second); got != 25 {
		t.Errorf("sweep mid rate = %v", got)
	}
	burst := mustPhases(t, "burst,dur=10s,rps=15,mult=8,at=0.5,width=0.2")[0]
	peak := burst.rateAt(5 * time.Second)
	edge := burst.rateAt(0)
	if peak < 100 || peak > 15*8 {
		t.Errorf("burst peak rate = %v, want ~120", peak)
	}
	if edge >= peak/2 {
		t.Errorf("burst edge rate %v not well below peak %v", edge, peak)
	}
}

func TestSynthesizeDeterminism(t *testing.T) {
	phases := mustPhases(t, "steady,dur=5s,rps=20;burst,dur=5s,rps=10,mult=6")
	mix := Mix{Kernel: 0.8, Sweep: 0.1, Export: 0.1}
	var a, b, c bytes.Buffer
	if err := Synthesize(42, phases, mix, "/tmp/x").WriteLog(&a); err != nil {
		t.Fatal(err)
	}
	if err := Synthesize(42, phases, mix, "/tmp/x").WriteLog(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different trace logs")
	}
	if err := Synthesize(43, phases, mix, "/tmp/x").WriteLog(&c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical trace logs")
	}

	tr := Synthesize(42, phases, mix, "/tmp/x")
	if len(tr.Requests) == 0 {
		t.Fatal("no requests synthesized")
	}
	last := time.Duration(-1)
	for _, r := range tr.Requests {
		if r.OffsetNS < last {
			t.Fatalf("offsets not monotonic at request %d", r.Index)
		}
		last = r.OffsetNS
		if r.OffsetNS >= tr.Duration() {
			t.Fatalf("request %d scheduled past trace end", r.Index)
		}
		if err := validSpec(r.Spec); err != nil {
			t.Fatalf("request %d: %v", r.Index, err)
		}
	}
	// ~20rps x 5s + ~burst(10rps base, mult 6) x 5s: about 100 + 100ish.
	if n := len(tr.Requests); n < 100 || n > 400 {
		t.Errorf("synthesized %d requests, outside plausible range", n)
	}
}

// validSpec round-trips the spec through the server's own validation.
func validSpec(spec serve.JobSpec) error {
	s := serve.New(serve.Config{Workers: 1})
	defer s.Drain(context.Background())
	j, err := s.Submit(spec)
	if err != nil {
		return err
	}
	j.Cancel()
	<-j.Done()
	return nil
}

func TestParseMixAndSLOs(t *testing.T) {
	m, err := ParseMix("kernel=0.8,sweep=0.15,export=0.05")
	if err != nil || m.Kernel != 0.8 || m.Sweep != 0.15 || m.Export != 0.05 {
		t.Fatalf("mix = %+v, err %v", m, err)
	}
	for _, bad := range []string{"kernel", "blob=1", "kernel=-1", "kernel=0,sweep=0,export=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}

	rules, err := ParseSLOs("steady:p99<=250ms;drop_rate<=0.05;burst:error_rate<=0")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 || rules[0].Phase != "steady" || rules[0].Metric != "p99" ||
		rules[0].Value != float64(250*time.Millisecond) || rules[1].Phase != "" {
		t.Fatalf("rules = %+v", rules)
	}
	for _, bad := range []string{"p99>=1s", "zoom<=1", "p99<=fast", "drop_rate<=lots"} {
		if _, err := ParseSLOs(bad); err == nil {
			t.Errorf("ParseSLOs(%q) accepted", bad)
		}
	}
	if rs, err := ParseSLOs(""); err != nil || len(rs) != 0 {
		t.Errorf("empty slo spec: %v, %v", rs, err)
	}
}

func TestEvaluateSLOs(t *testing.T) {
	rep := &Report{Phases: []PhaseReport{
		{Name: "steady", DropRate: 0.01},
		{Name: "burst", DropRate: 0.4},
	}}
	rep.Phases[0].Client.Latency.Count = 50
	rep.Phases[0].Client.Latency.P99NS = int64(100 * time.Millisecond)
	rep.Phases[1].Client.Latency.Count = 50
	rep.Phases[1].Client.Latency.P99NS = int64(900 * time.Millisecond)

	rules, _ := ParseSLOs("steady:p99<=250ms;drop_rate<=0.05;ghost:p50<=1s")
	res := EvaluateSLOs(rules, rep)
	// steady p99 passes; drop_rate applies to both phases (steady passes,
	// burst fails); the rule naming a missing phase fails explicitly.
	if len(res) != 4 {
		t.Fatalf("got %d results: %+v", len(res), res)
	}
	if !res[0].Passed || !res[1].Passed || res[2].Passed || res[3].Passed {
		t.Errorf("results = %+v", res)
	}
	if SLOsPassed(res) {
		t.Error("SLOsPassed over a violation")
	}
	if res[3].Observed != "no such phase" {
		t.Errorf("missing-phase observed = %q", res[3].Observed)
	}

	// A latency rule over a phase with zero terminal jobs must fail — an
	// empty histogram reports p99=0 and would otherwise pass any gate.
	empty := &Report{Phases: []PhaseReport{{Name: "steady"}}}
	rules, _ = ParseSLOs("steady:p99<=1ns")
	if res := EvaluateSLOs(rules, empty); SLOsPassed(res) || res[0].Observed != "no samples" {
		t.Errorf("empty-phase latency rule = %+v", res)
	}
	// Rate rules still evaluate normally on an empty phase (0 <= bound).
	rules, _ = ParseSLOs("steady:drop_rate<=0.1")
	if res := EvaluateSLOs(rules, empty); !SLOsPassed(res) {
		t.Errorf("empty-phase rate rule = %+v", res)
	}
}

// TestReplayIntegration drives a short synthesized trace against an
// in-process serve.Server over HTTP and checks the report's internal
// accounting: every scheduled arrival lands in exactly one outcome bucket,
// latency histogram counts match terminal jobs, server spans arrive with
// exact per-phase attribution, and the conservation law holds.
func TestReplayIntegration(t *testing.T) {
	s := serve.New(serve.Config{Workers: 2, KernelWorkers: 2, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	phases := mustPhases(t, "steady,dur=400ms,rps=60;burst,dur=300ms,rps=40,mult=6,at=0.5,width=0.2")
	trace := Synthesize(7, phases, Mix{Kernel: 0.9, Export: 0.1}, t.TempDir())
	if len(trace.Requests) == 0 {
		t.Fatal("empty trace")
	}

	rep, err := Replay(context.Background(), Config{
		BaseURL:        ts.URL,
		Clients:        8,
		PollInterval:   5 * time.Millisecond,
		SampleInterval: 20 * time.Millisecond,
		Grace:          30 * time.Second,
	}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("got %d phase reports", len(rep.Phases))
	}
	var scheduled int64
	for _, p := range rep.Phases {
		scheduled += p.Scheduled
		if p.Scheduled != p.Sent+p.Dropped {
			t.Errorf("phase %s: scheduled %d != sent %d + dropped %d", p.Name, p.Scheduled, p.Sent, p.Dropped)
		}
		if p.Sent != p.Accepted+p.Rejected+p.Errors {
			t.Errorf("phase %s: sent %d != accepted %d + rejected %d + errors %d",
				p.Name, p.Sent, p.Accepted, p.Rejected, p.Errors)
		}
		terminal := p.Succeeded + p.Failed + p.Cancelled
		if p.Client.Latency.Count != terminal || p.Client.Service.Count != terminal {
			t.Errorf("phase %s: latency counts %d/%d != terminal %d",
				p.Name, p.Client.Latency.Count, p.Client.Service.Count, terminal)
		}
		for _, span := range spanNames {
			if got := p.Server[span].Count; got != terminal {
				t.Errorf("phase %s: server span %s count %d != terminal %d", p.Name, span, got, terminal)
			}
		}
		if terminal > 0 {
			total := p.Server["total"]
			sum := p.Server["queue_wait"].SumNS + p.Server["cache_load"].SumNS +
				p.Server["exec"].SumNS + p.Server["stream_flush"].SumNS
			if sum > total.SumNS {
				t.Errorf("phase %s: span sums %d exceed total %d", p.Name, sum, total.SumNS)
			}
		}
	}
	if int(scheduled) != len(trace.Requests) {
		t.Errorf("scheduled %d != trace requests %d", scheduled, len(trace.Requests))
	}
	if rep.Phases[0].Succeeded == 0 {
		t.Error("steady phase completed no jobs")
	}
	if err := rep.Conserved(); err != nil {
		t.Error(err)
	}
	if rep.Server.Latency["total"].Count == 0 {
		t.Error("server aggregate latency histograms empty")
	}

	// SLO wiring end to end: a generous gate passes, an impossible one
	// does not.
	pass, _ := ParseSLOs("steady:p99<=10m")
	if res := EvaluateSLOs(pass, rep); !SLOsPassed(res) {
		t.Errorf("generous SLO failed: %+v", res)
	}
	impossible, _ := ParseSLOs("steady:p99<=1ns")
	if res := EvaluateSLOs(impossible, rep); SLOsPassed(res) {
		t.Error("impossible SLO passed")
	}

	var summary strings.Builder
	rep.SLO = EvaluateSLOs(pass, rep)
	rep.WriteSummary(&summary)
	if !strings.Contains(summary.String(), "steady") || !strings.Contains(summary.String(), "server totals") {
		t.Errorf("summary missing expected content:\n%s", summary.String())
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"queue_wait"`)) {
		t.Error("JSON report missing server span histograms")
	}
}
