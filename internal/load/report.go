package load

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"micgraph/internal/serve"
	"micgraph/internal/telemetry"
)

// GaugeStats summarises one sampled gauge over a phase.
type GaugeStats struct {
	Samples int   `json:"samples"`
	Min     int64 `json:"min"`
	Max     int64 `json:"max"`
	Mean    int64 `json:"mean"`
}

func summarise(samples []int64) GaugeStats {
	g := GaugeStats{Samples: len(samples)}
	if len(samples) == 0 {
		return g
	}
	g.Min = samples[0]
	var sum int64
	for _, v := range samples {
		if v < g.Min {
			g.Min = v
		}
		if v > g.Max {
			g.Max = v
		}
		sum += v
	}
	g.Mean = sum / int64(len(samples))
	return g
}

// ClientLatency pairs the two client-side views of one phase: Latency is
// measured from each request's *scheduled* arrival (so dispatch backlog
// counts — no coordinated omission), Service from the moment the request
// actually went on the wire.
type ClientLatency struct {
	Latency telemetry.HistogramSnapshot `json:"latency"`
	Service telemetry.HistogramSnapshot `json:"service"`
}

// PhaseReport is one phase of BENCH_SERVE_0.json: admission outcome
// counts and rates, client latency distributions, the server's span
// attribution (from the status documents of this phase's own jobs, so a
// job is always counted against the phase that scheduled it), and gauge
// summaries sampled while the phase ran.
type PhaseReport struct {
	Name       string  `json:"name"`
	Kind       string  `json:"kind"`
	StartNS    int64   `json:"start_ns"`
	DurationNS int64   `json:"duration_ns"`
	RPS        float64 `json:"rps"`

	Scheduled int64 `json:"scheduled"`
	Sent      int64 `json:"sent"`
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"` // 429 backpressure
	Dropped   int64 `json:"dropped"`  // shed at the client pool
	Errors    int64 `json:"errors"`
	Succeeded int64 `json:"succeeded"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`

	RejectRate float64 `json:"reject_rate"`
	DropRate   float64 `json:"drop_rate"`
	ErrorRate  float64 `json:"error_rate"`

	Client     ClientLatency                          `json:"client"`
	Server     map[string]telemetry.HistogramSnapshot `json:"server"`
	QueueDepth GaugeStats                             `json:"queue_depth"`
	Running    GaugeStats                             `json:"running"`
	// Shards counts this phase's terminal jobs by the shard that served
	// them (from each job's status document); present only against a
	// cluster, where every job carries its serving shard.
	Shards map[string]int64 `json:"shards,omitempty"`
}

// ServerFinal is the daemon's own end-of-run view: lifetime job totals
// (the conservation law), its aggregate latency histograms and the gauge
// block, scraped once after the replay settles.
type ServerFinal struct {
	JobsTotal serve.JobTotals                        `json:"jobs_total"`
	Queue     serve.QueueStats                       `json:"queue"`
	Gauges    map[string]int64                       `json:"gauges"`
	Latency   map[string]telemetry.HistogramSnapshot `json:"latency"`
	// PerTarget breaks JobsTotal down by target endpoint on multi-target
	// (cluster) runs; each entry independently satisfies the conservation
	// law, which is why their sum (JobsTotal) does too.
	PerTarget map[string]serve.JobTotals `json:"per_target,omitempty"`
	// Unreachable lists targets the final scrape could not reach (a killed
	// shard); their totals are absent from JobsTotal.
	Unreachable []string `json:"unreachable,omitempty"`
}

// Report is the full BENCH_SERVE_0.json document.
type Report struct {
	Tool            string        `json:"tool"` // "micload"
	Seed            uint64        `json:"seed"`
	BaseURL         string        `json:"base_url"`
	Targets         []string      `json:"targets,omitempty"` // when the trace was spread round-robin
	Clients         int           `json:"clients"`
	TraceDurationNS int64         `json:"trace_duration_ns"`
	Requests        int           `json:"requests"`
	Phases          []PhaseReport `json:"phases"`
	Server          ServerFinal   `json:"server"`
	SLO             []SLOResult   `json:"slo,omitempty"`
}

// report assembles the final document from the per-phase accumulators.
func (r *replayer) report(final *metricsSnap) *Report {
	rep := &Report{
		Tool:            "micload",
		Seed:            r.trace.Seed,
		BaseURL:         r.cfg.BaseURL,
		Clients:         r.cfg.Clients,
		TraceDurationNS: int64(r.trace.Duration()),
		Requests:        len(r.trace.Requests),
		Server: ServerFinal{
			JobsTotal:   final.JobsTotal,
			Queue:       final.Queue,
			Gauges:      final.Gauges,
			Latency:     final.Latency,
			Unreachable: final.unreachable,
		},
	}
	if len(r.cfg.Targets) > 1 {
		rep.Targets = r.cfg.Targets
		rep.Server.PerTarget = final.perTarget
	}
	for i, p := range r.trace.Phases {
		acc := r.accs[i]
		acc.mu.Lock()
		pr := PhaseReport{
			Name:       p.Name,
			Kind:       p.Kind,
			StartNS:    int64(r.trace.PhaseStart(i)),
			DurationNS: int64(p.Duration),
			RPS:        p.RPS,
			Scheduled:  acc.scheduled,
			Sent:       acc.sent,
			Accepted:   acc.accepted,
			Rejected:   acc.rejected,
			Dropped:    acc.dropped,
			Errors:     acc.errs,
			Succeeded:  acc.succeeded,
			Failed:     acc.failed,
			Cancelled:  acc.cancelled,
			QueueDepth: summarise(acc.queueDepth),
			Running:    summarise(acc.running),
		}
		if pr.Scheduled > 0 {
			pr.RejectRate = float64(pr.Rejected) / float64(pr.Scheduled)
			pr.DropRate = float64(pr.Dropped) / float64(pr.Scheduled)
			pr.ErrorRate = float64(pr.Errors) / float64(pr.Scheduled)
		}
		pr.Client = ClientLatency{
			Latency: acc.latency.Snapshot(),
			Service: acc.service.Snapshot(),
		}
		pr.Server = make(map[string]telemetry.HistogramSnapshot, len(spanNames))
		for _, n := range spanNames {
			pr.Server[n] = acc.server[n].Snapshot()
		}
		if len(acc.shards) > 0 {
			pr.Shards = make(map[string]int64, len(acc.shards))
			for s, c := range acc.shards {
				pr.Shards[s] = c
			}
		}
		acc.mu.Unlock()
		rep.Phases = append(rep.Phases, pr)
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func ms(ns int64) string {
	return fmt.Sprintf("%.1fms", float64(ns)/float64(time.Millisecond))
}

// WriteSummary writes the human-readable per-phase table.
func (rep *Report) WriteSummary(w io.Writer) {
	target := rep.BaseURL
	if len(rep.Targets) > 1 {
		target = fmt.Sprintf("%d targets (%s)", len(rep.Targets), strings.Join(rep.Targets, ", "))
	}
	fmt.Fprintf(w, "micload: seed %d, %d requests over %s against %s (%d clients)\n",
		rep.Seed, rep.Requests, time.Duration(rep.TraceDurationNS), target, rep.Clients)
	fmt.Fprintf(w, "%-10s %6s %6s %5s %5s %5s | %9s %9s %9s | %9s %9s | %5s\n",
		"phase", "sched", "ok", "429", "drop", "err",
		"p50", "p99", "p999", "srv-queue", "srv-exec", "qmax")
	for _, p := range rep.Phases {
		fmt.Fprintf(w, "%-10s %6d %6d %5d %5d %5d | %9s %9s %9s | %9s %9s | %5d\n",
			p.Name, p.Scheduled, p.Succeeded, p.Rejected, p.Dropped, p.Errors+p.Failed,
			ms(p.Client.Latency.P50NS), ms(p.Client.Latency.P99NS), ms(p.Client.Latency.P999NS),
			ms(p.Server["queue_wait"].P99NS), ms(p.Server["exec"].P99NS),
			p.QueueDepth.Max)
	}
	t := rep.Server.JobsTotal
	fmt.Fprintf(w, "server totals: submitted %d = rejected %d + succeeded %d + failed %d + cancelled %d + in-flight %d\n",
		t.Submitted, t.Rejected, t.Succeeded, t.Failed, t.Cancelled, t.InFlight)
	for _, s := range rep.SLO {
		status := "ok"
		if !s.Passed {
			status = "VIOLATED"
		}
		fmt.Fprintf(w, "slo %-30s %s (observed %s)\n", s.Rule, status, s.Observed)
	}
}

// Conserved checks the server's lifetime totals against the conservation
// law the chaos oracle also enforces.
func (rep *Report) Conserved() error {
	t := rep.Server.JobsTotal
	if t.Submitted != t.Rejected+t.Succeeded+t.Failed+t.Cancelled+t.InFlight {
		return fmt.Errorf("load: conservation violated: submitted %d != rejected %d + succeeded %d + failed %d + cancelled %d + in_flight %d",
			t.Submitted, t.Rejected, t.Succeeded, t.Failed, t.Cancelled, t.InFlight)
	}
	return nil
}
