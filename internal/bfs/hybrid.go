package bfs

import (
	"context"
	"sync/atomic"
	"time"

	"micgraph/internal/graph"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

// Direction-optimizing (top-down/bottom-up) BFS — the natural extension of
// the paper's layered algorithm for the wide-frontier levels its model
// identifies as the parallel bulk: when the frontier is a large fraction of
// the graph, it is cheaper to iterate over *unvisited* vertices asking "is
// any of my neighbors on the frontier?" (one hit suffices — the bottom-up
// scan breaks at the first frontier neighbor) than to expand every
// frontier edge. The switching rule follows Beamer's heuristic (the GBBS
// defaults): go bottom-up when a growing frontier's outgoing edges exceed
// the unexplored edges divided by alpha, return top-down when the frontier
// shrinks below |V|/beta.
//
// Instrumented runs record one PhaseSample per level with the direction in
// the phase name ("level-td" / "level-bu"), so the crossover is readable
// directly from the Recorder stream (see EXPERIMENTS.md).

// HybridConfig tunes the direction switch; zero values select the
// published defaults (alpha 14, beta 24).
type HybridConfig struct {
	Alpha int // top-down -> bottom-up threshold divisor
	Beta  int // bottom-up -> top-down threshold divisor
}

func (c HybridConfig) alpha() int64 {
	if c.Alpha <= 0 {
		return 14
	}
	return int64(c.Alpha)
}

func (c HybridConfig) beta() int64 {
	if c.Beta <= 0 {
		return 24
	}
	return int64(c.Beta)
}

// HybridResult extends Result with direction statistics.
type HybridResult struct {
	Result
	TopDownLevels  int
	BottomUpLevels int
}

// HybridTeam runs the direction-optimizing layered BFS on a Team. The level
// assignment is identical to every other variant (validated against the
// sequential reference); only the per-level work differs. Panics propagate;
// use HybridTeamCtx for errors and cancellation.
func HybridTeam(g *graph.Graph, source int32, team *sched.Team, opts sched.ForOptions, cfg HybridConfig) HybridResult {
	res, err := HybridTeamCtx(nil, g, source, team, opts, cfg)
	if err != nil {
		panic(err)
	}
	return res
}

// HybridTeamCtx is HybridTeam with cooperative cancellation at chunk-claim
// boundaries and between levels; on failure it returns the partial
// traversal state alongside the error. It runs on a throwaway Scratch,
// keeping allocate-per-call semantics; hot callers reuse a Scratch via
// Scratch.Hybrid.
func HybridTeamCtx(ctx context.Context, g *graph.Graph, source int32, team *sched.Team, opts sched.ForOptions, cfg HybridConfig) (HybridResult, error) {
	return NewScratch().Hybrid(ctx, g, source, team, opts, cfg)
}

// hybridLocal is one worker's claim accumulation for a hybrid level: the
// claimed vertices plus the sum of their degrees, gathered in the same
// pass so the direction heuristic never rescans the frontier.
type hybridLocal struct {
	buf   []int32
	edges int64
	_     [32]byte
}

// Hybrid runs the direction-optimizing BFS on the scratch's pooled state.
// See HybridTeamCtx for semantics.
func (s *Scratch) Hybrid(ctx context.Context, g *graph.Graph, source int32, team *sched.Team, opts sched.ForOptions, cfg HybridConfig) (HybridResult, error) {
	n := g.NumVertices()
	workers := team.Workers()
	opts = opts.WithSerialCutoff(workers)
	s.ensureCommon(n)
	s.ensureWorkers(workers)
	s.ensureFlat(n)
	if len(s.hlocals) < workers {
		s.hlocals = make([]hybridLocal, workers)
	}
	res := HybridResult{}
	if n == 0 {
		res.Result = s.finish(0, 0)
		return res, nil
	}
	levels := s.levels
	xadj, adj := g.Xadj(), g.AdjRaw()
	s.xadj, s.adj = xadj, adj
	levels[source] = 0
	if s.hybridBU == nil {
		// Sweep all vertices; claim those with a frontier neighbor, breaking
		// at the first hit. Claims need no CAS: each vertex is scanned by
		// exactly one worker, so the store cannot race with another claim —
		// only with concurrent neighbor loads, which the atomic store pairs
		// with.
		s.hybridBU = func(lo, hi, w int) {
			xadj, adj, lvls, lv := s.xadj, s.adj, s.levels, s.lv
			local := &s.hlocals[w]
			buf := local.buf
			var edges int64
			for v := lo; v < hi; v++ {
				if lvls[v] != Unvisited {
					continue
				}
				for j := xadj[v]; j < xadj[v+1]; j++ {
					if atomic.LoadInt32(&lvls[adj[j]]) == lv-1 {
						atomic.StoreInt32(&lvls[v], lv)
						buf = append(buf, int32(v))
						edges += xadj[v+1] - xadj[v]
						break
					}
				}
			}
			local.buf = buf
			local.edges += edges
		}
		s.hybridTD = func(lo, hi, w int) {
			xadj, adj, lvls, lv := s.xadj, s.adj, s.levels, s.lv
			local := &s.hlocals[w]
			buf := local.buf
			var edges int64
			for i := lo; i < hi; i++ {
				v := s.cur[i]
				for j := xadj[v]; j < xadj[v+1]; j++ {
					u := adj[j]
					if claimLocked(lvls, u, lv) {
						buf = append(buf, u)
						edges += xadj[u+1] - xadj[u]
					}
				}
			}
			local.buf = buf
			local.edges += edges
		}
	}

	cur := append(s.frontA[:0], source)
	next := s.frontB[:0]
	curEdges := int64(g.Degree(source))
	unexplored := g.NumArcs()
	bottomUp := false
	prevFrontier := 0
	rec := telemetry.FromContext(ctx)

	var processed int64
	maxLevel := int32(0)
	for lv := int32(1); len(cur) > 0; lv++ {
		maxLevel = lv - 1
		processed += int64(len(cur))

		// Beamer's switching heuristic with hysteresis: enter bottom-up
		// when a *growing* frontier's outgoing edges exceed the unexplored
		// edges / alpha; return to top-down once the frontier shrinks
		// below |V| / beta. The frontier's edge count was accumulated by
		// the workers while claiming, so no rescan happens here.
		frontierEdges := curEdges
		unexplored -= frontierEdges
		growing := len(cur) > prevFrontier
		prevFrontier = len(cur)
		if !bottomUp {
			bottomUp = growing && frontierEdges > unexplored/cfg.alpha()
		} else {
			bottomUp = int64(len(cur)) >= int64(n)/cfg.beta()
		}

		var levelStart time.Time
		if telemetry.Active(rec) {
			levelStart = telemetry.Now(rec)
		}
		for w := 0; w < workers; w++ {
			s.hlocals[w].buf = s.hlocals[w].buf[:0]
			s.hlocals[w].edges = 0
		}
		var err error
		s.lv = lv
		if bottomUp {
			res.BottomUpLevels++
			err = team.ForCtx(ctx, n, opts, s.hybridBU)
		} else {
			res.TopDownLevels++
			s.cur = cur
			err = team.ForCtx(ctx, len(cur), opts, s.hybridTD)
		}
		if err != nil {
			// Partial level: vertices may already be claimed at level lv.
			s.frontA, s.frontB = cur[:0], next[:0]
			hres := s.finish(processed, lv)
			hres.Duplicates = 0
			res.Result = hres
			return res, err
		}
		// Merge the per-worker claims into the next frontier (level
		// barrier) and roll up its edge count for the next switch.
		next = next[:0]
		curEdges = 0
		for w := 0; w < workers; w++ {
			next = append(next, s.hlocals[w].buf...)
			curEdges += s.hlocals[w].edges
		}
		if telemetry.Active(rec) {
			sample := levelSample(lv-1, int64(len(cur)), frontierEdges, int64(len(next)))
			if bottomUp {
				sample.Phase = "level-bu"
			} else {
				sample.Phase = "level-td"
			}
			sample.Duration = telemetry.Since(rec, levelStart)
			rec.Record(sample)
		}
		cur, next = next, cur
	}
	s.frontA, s.frontB = cur[:0], next[:0]
	hres := s.finish(processed, maxLevel)
	hres.Duplicates = 0 // locked/exclusive claims: no duplicates possible
	res.Result = hres
	return res, nil
}
