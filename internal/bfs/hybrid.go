package bfs

import (
	"sync/atomic"

	"micgraph/internal/graph"
	"micgraph/internal/sched"
)

// Direction-optimizing (top-down/bottom-up) BFS — the natural extension of
// the paper's layered algorithm for the wide-frontier levels its model
// identifies as the parallel bulk: when the frontier is a large fraction of
// the graph, it is cheaper to iterate over *unvisited* vertices asking "is
// any of my neighbors on the frontier?" (one hit suffices) than to expand
// every frontier edge. The switching rule follows Beamer's heuristic: go
// bottom-up when the frontier's outgoing edges exceed the unexplored edges
// divided by alpha, return top-down when the frontier shrinks below
// |V|/beta.

// HybridConfig tunes the direction switch; zero values select the
// published defaults (alpha 14, beta 24).
type HybridConfig struct {
	Alpha int // top-down -> bottom-up threshold divisor
	Beta  int // bottom-up -> top-down threshold divisor
}

func (c HybridConfig) alpha() int64 {
	if c.Alpha <= 0 {
		return 14
	}
	return int64(c.Alpha)
}

func (c HybridConfig) beta() int64 {
	if c.Beta <= 0 {
		return 24
	}
	return int64(c.Beta)
}

// HybridResult extends Result with direction statistics.
type HybridResult struct {
	Result
	TopDownLevels  int
	BottomUpLevels int
}

// HybridTeam runs the direction-optimizing layered BFS on a Team. The level
// assignment is identical to every other variant (validated against the
// sequential reference); only the per-level work differs.
func HybridTeam(g *graph.Graph, source int32, team *sched.Team, opts sched.ForOptions, cfg HybridConfig) HybridResult {
	n := g.NumVertices()
	levels := makeLevels(n)
	res := HybridResult{Result: Result{Levels: levels}}
	if n == 0 {
		return res
	}
	levels[source] = 0

	cur := []int32{source}
	next := make([]int32, 0, 1024)
	locals := make([][]int32, team.Workers())
	unexploredEdges := g.NumArcs()
	maxLevel := int32(0)
	bottomUp := false
	prevFrontier := 0

	for lv := int32(1); len(cur) > 0; lv++ {
		maxLevel = lv - 1
		res.Processed += int64(len(cur))

		// Beamer's switching heuristic with hysteresis: enter bottom-up
		// when a *growing* frontier's outgoing edges exceed the unexplored
		// edges / alpha; return to top-down once the frontier shrinks
		// below |V| / beta.
		var frontierEdges int64
		for _, v := range cur {
			frontierEdges += int64(g.Degree(v))
		}
		unexploredEdges -= frontierEdges
		growing := len(cur) > prevFrontier
		prevFrontier = len(cur)
		if !bottomUp {
			bottomUp = growing && frontierEdges > unexploredEdges/cfg.alpha()
		} else {
			bottomUp = int64(len(cur)) >= int64(n)/cfg.beta()
		}

		for w := range locals {
			locals[w] = locals[w][:0]
		}
		if bottomUp {
			res.BottomUpLevels++
			// Sweep all vertices; claim those with a frontier neighbor.
			team.For(n, opts, func(lo, hi, w int) {
				local := locals[w]
				for v := lo; v < hi; v++ {
					if atomic.LoadInt32(&levels[v]) != Unvisited {
						continue
					}
					for _, u := range g.Adj(int32(v)) {
						if atomic.LoadInt32(&levels[u]) == lv-1 {
							atomic.StoreInt32(&levels[v], lv)
							local = append(local, int32(v))
							break
						}
					}
				}
				locals[w] = local
			})
		} else {
			res.TopDownLevels++
			curSnapshot := cur
			team.For(len(curSnapshot), opts, func(lo, hi, w int) {
				local := locals[w]
				for i := lo; i < hi; i++ {
					for _, u := range g.Adj(curSnapshot[i]) {
						if claimLocked(levels, u, lv) {
							local = append(local, u)
						}
					}
				}
				locals[w] = local
			})
		}

		next = next[:0]
		for _, local := range locals {
			next = append(next, local...)
		}
		cur, next = next, cur
	}
	res.NumLevels = int(maxLevel) + 1
	res.Widths = widthsOf(levels, res.NumLevels)
	return res
}
