// Package bfs implements the paper's breadth-first-search kernels: the
// sequential FIFO algorithm (Algorithm 6), and the layered parallel BFS
// (Algorithm 7) in the five data-structure/runtime variants §IV-C compares:
//
//   - OpenMP-Block and OpenMP-Block-relaxed: the paper's novel
//     block-accessed shared queue on an OpenMP-style Team;
//   - TBB-Block and TBB-Block-relaxed: the same queue on TBB-style
//     partitioned ranges;
//   - CilkPlus-Bag-relaxed: the Leiserson–Schardl pennant-bag structure on
//     the work-stealing pool;
//   - OpenMP-TLS: SNAP's per-thread local queues with per-vertex locked
//     insertion (plus the paper's check-before-lock improvement).
//
// "Locked" variants claim a vertex with a compare-and-swap on its level, so
// each vertex enters the next-level structure exactly once. "Relaxed"
// variants use the Leiserson–Schardl observation that the race is benign:
// they check-then-store without synchronisation, accepting occasional
// duplicate queue entries in exchange for no atomics on the hot path. In Go
// the unsynchronised accesses are expressed with atomic loads/stores so the
// benign race is well-defined; duplicates still occur exactly as in the
// paper, and the Result records how many.
package bfs

import (
	"fmt"

	"micgraph/internal/graph"
)

// Unvisited is the level value of vertices not reached by the search.
const Unvisited int32 = -1

// Result reports a BFS run.
type Result struct {
	Levels      []int32 // per-vertex level; Unvisited (-1) if unreachable
	NumLevels   int     // number of levels (eccentricity of source + 1)
	Widths      []int64 // vertices per level (the x_l profile of §III-C)
	Processed   int64   // queue entries processed, including duplicates
	Duplicates  int64   // redundant entries processed by relaxed variants
	SourceLevel int32   // always 0; kept for clarity in reports
}

// Sequential runs the textbook FIFO BFS (Algorithm 6) from source.
func Sequential(g *graph.Graph, source int32) Result {
	n := g.NumVertices()
	levels := make([]int32, n)
	for i := range levels {
		levels[i] = Unvisited
	}
	res := Result{Levels: levels}
	if n == 0 {
		return res
	}
	queue := make([]int32, 0, n)
	levels[source] = 0
	queue = append(queue, source)
	maxLevel := int32(0)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		lv := levels[v]
		for _, w := range g.Adj(v) {
			if levels[w] == Unvisited {
				levels[w] = lv + 1
				if lv+1 > maxLevel {
					maxLevel = lv + 1
				}
				queue = append(queue, w)
			}
		}
	}
	res.Processed = int64(len(queue))
	res.NumLevels = int(maxLevel) + 1
	res.Widths = widthsOf(levels, res.NumLevels)
	return res
}

func widthsOf(levels []int32, numLevels int) []int64 {
	w := make([]int64, numLevels)
	for _, l := range levels {
		if l >= 0 {
			w[l]++
		}
	}
	return w
}

// Validate checks that levels is a correct BFS level assignment from source
// on g, by comparing against the sequential reference.
func Validate(g *graph.Graph, source int32, levels []int32) error {
	if len(levels) != g.NumVertices() {
		return fmt.Errorf("bfs: %d levels for %d vertices", len(levels), g.NumVertices())
	}
	ref := Sequential(g, source)
	for v, want := range ref.Levels {
		if levels[v] != want {
			return fmt.Errorf("bfs: vertex %d at level %d, want %d", v, levels[v], want)
		}
	}
	return nil
}
