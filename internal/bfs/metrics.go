package bfs

import (
	"micgraph/internal/graph"
	"micgraph/internal/telemetry"
)

// Per-level telemetry helpers. All of them run only when a Recorder is
// active on the kernel's context (telemetry.Active); the uninstrumented
// path never calls them, so the default runs pay nothing.

// frontierCount counts the real (non-sentinel) entries of a block-queue
// frontier.
func frontierCount(main, spill []int32) int64 {
	var n int64
	for _, v := range main {
		if v != Sentinel {
			n++
		}
	}
	for _, v := range spill {
		if v != Sentinel {
			n++
		}
	}
	return n
}

// frontierEdges sums the degrees of the real entries of a block-queue
// frontier — the number of edges the level expansion will relax.
func frontierEdges(g *graph.Graph, main, spill []int32) int64 {
	var edges int64
	for _, v := range main {
		if v != Sentinel {
			edges += int64(g.Degree(v))
		}
	}
	for _, v := range spill {
		if v != Sentinel {
			edges += int64(g.Degree(v))
		}
	}
	return edges
}

// sliceEdges sums the degrees of a plain vertex slice frontier.
func sliceEdges(g *graph.Graph, vs []int32) int64 {
	var edges int64
	for _, v := range vs {
		edges += int64(g.Degree(v))
	}
	return edges
}

// levelSample builds the PhaseSample for one completed BFS level: the
// frontier being expanded was at depth `depth`, held `items` vertices whose
// `edges` outgoing edges were relaxed, and claimed `claims` vertices for the
// next level.
func levelSample(depth int32, items, edges, claims int64) telemetry.PhaseSample {
	return telemetry.PhaseSample{
		Kernel: "bfs", Phase: "level", Index: int(depth),
		Items: items, Edges: edges, Claims: claims,
	}
}
