package bfs

import (
	"context"
	"testing"

	"micgraph/internal/gen"
	"micgraph/internal/graph"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

func recordedRun(t *testing.T, g *graph.Graph, run func(ctx context.Context) (Result, error)) (Result, []telemetry.PhaseSample) {
	t.Helper()
	rec := telemetry.NewMemRecorder()
	ctx := telemetry.WithRecorder(context.Background(), rec)
	res, err := run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return res, rec.Samples()
}

func checkLevelSamples(t *testing.T, variant string, res Result, samples []telemetry.PhaseSample) {
	t.Helper()
	if len(samples) != res.NumLevels {
		t.Errorf("%s: %d level samples, want %d (one per expanded level)",
			variant, len(samples), res.NumLevels)
		return
	}
	var items int64
	for i, s := range samples {
		if s.Kernel != "bfs" || s.Phase != "level" {
			t.Errorf("%s: sample %d labelled %s/%s", variant, i, s.Kernel, s.Phase)
		}
		if s.Index != i {
			t.Errorf("%s: sample %d has index %d", variant, i, s.Index)
		}
		if s.Duration <= 0 {
			t.Errorf("%s: sample %d has non-positive duration", variant, i)
		}
		items += s.Items
	}
	if samples[0].Items != 1 {
		t.Errorf("%s: level-0 items = %d, want 1 (the source)", variant, samples[0].Items)
	}
	if items != res.Processed {
		t.Errorf("%s: sample items sum to %d, result processed %d", variant, items, res.Processed)
	}
}

func TestBlockTeamRecordsLevels(t *testing.T) {
	g := gen.Grid2D(30, 30)
	team := sched.NewTeam(4)
	defer team.Close()
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 8}
	res, samples := recordedRun(t, g, func(ctx context.Context) (Result, error) {
		return BlockTeamCtx(ctx, g, 0, team, opts, 32, false)
	})
	checkLevelSamples(t, "omp-block", res, samples)
}

func TestBlockTBBRecordsLevels(t *testing.T) {
	g := gen.Grid2D(30, 30)
	pool := sched.NewPool(4)
	defer pool.Close()
	res, samples := recordedRun(t, g, func(ctx context.Context) (Result, error) {
		return BlockTBBCtx(ctx, g, 0, pool, sched.SimplePartitioner, 32, 32, false)
	})
	checkLevelSamples(t, "tbb-block", res, samples)
}

func TestTLSRecordsLevels(t *testing.T) {
	g := gen.Grid2D(30, 30)
	team := sched.NewTeam(4)
	defer team.Close()
	res, samples := recordedRun(t, g, func(ctx context.Context) (Result, error) {
		return TLSTeamCtx(ctx, g, 0, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 8})
	})
	checkLevelSamples(t, "tls", res, samples)
}

func TestBagRecordsLevels(t *testing.T) {
	g := gen.Grid2D(30, 30)
	pool := sched.NewPool(4)
	defer pool.Close()
	res, samples := recordedRun(t, g, func(ctx context.Context) (Result, error) {
		return BagCilkCtx(ctx, g, 0, pool, 0)
	})
	checkLevelSamples(t, "bag", res, samples)
}

// TestUninstrumentedRecordsNothing: without a recorder in the context the
// kernel must not record (and must still be correct).
func TestUninstrumentedRecordsNothing(t *testing.T) {
	g := gen.Grid2D(20, 20)
	team := sched.NewTeam(2)
	defer team.Close()
	res, err := BlockTeamCtx(context.Background(), g, 0, team,
		sched.ForOptions{Policy: sched.Dynamic, Chunk: 8}, 32, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, 0, res.Levels); err != nil {
		t.Fatal(err)
	}
}
