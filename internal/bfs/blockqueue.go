package bfs

import (
	"sync"
	"sync/atomic"
)

// Sentinel fills the unconsumed tail of a partially used block, so the
// vertex-visit loop can skip it ("we fill the remaining of the block with a
// sentinel value (an invalid vertex ID, such as -1)", §IV-C).
const Sentinel int32 = -1

// BlockQueue is the paper's block-accessed shared queue: a contiguous array
// in which each worker reserves fixed-size blocks with an atomic fetch-and-
// add of the shared index pointer, then fills its block privately. Partially
// filled blocks are padded with Sentinel.
//
// Relaxed insertion can (rarely) produce more entries than the queue's
// nominal capacity; instead of growing the shared array under concurrent
// readers, overflowing workers divert to private spill slices that are
// drained alongside the main array. This keeps the hot path identical to
// the paper's while making the structure safe for any input.
type BlockQueue struct {
	buf       []int32
	blockSize int
	next      atomic.Int64 // next unreserved position in buf

	spillMu sync.Mutex
	spill   []int32
}

// NewBlockQueue creates a queue backed by capacity slots with the given
// block size (the paper's best-performing value is 32).
func NewBlockQueue(capacity, blockSize int) *BlockQueue {
	if blockSize < 1 {
		panic("bfs: block size must be >= 1")
	}
	if capacity < blockSize {
		capacity = blockSize
	}
	return &BlockQueue{buf: make([]int32, capacity), blockSize: blockSize}
}

// Reset empties the queue for reuse in the next level.
func (q *BlockQueue) Reset() {
	q.next.Store(0)
	q.spill = q.spill[:0]
}

// Cap returns the capacity of the backing array.
func (q *BlockQueue) Cap() int { return len(q.buf) }

// Len returns the number of reserved slots (including sentinel padding)
// plus spilled entries. Only meaningful after all writers flushed.
func (q *BlockQueue) Len() int {
	n := int(q.next.Load())
	if n > len(q.buf) {
		n = len(q.buf)
	}
	return n + len(q.spill)
}

// Entries returns the filled portion of the main array and the spill slice.
// Entries equal to Sentinel must be skipped. Call only after all writers
// have flushed (i.e. between levels).
func (q *BlockQueue) Entries() (main, spill []int32) {
	n := int(q.next.Load())
	if n > len(q.buf) {
		n = len(q.buf)
	}
	return q.buf[:n], q.spill
}

// Writer is one worker's private cursor into the queue. The zero value is
// not usable; obtain writers with NewWriter. A Writer must be flushed when
// its level's production ends.
type Writer struct {
	q          *BlockQueue
	pos, end   int64
	local      []int32 // spill accumulation once buf is exhausted
	spilling   bool
	BlockGrabs int64 // number of atomic block reservations (for reporting)
}

// NewWriter returns a fresh cursor with no reserved block.
func (q *BlockQueue) NewWriter() *Writer {
	return &Writer{q: q}
}

// Reset rebinds the writer to q with no reserved block, ready for a new
// level. The spill accumulation buffer keeps its capacity, so a recycled
// writer's level costs no allocation.
func (w *Writer) Reset(q *BlockQueue) {
	w.q = q
	w.pos, w.end = 0, 0
	w.spilling = false
	w.BlockGrabs = 0
	if w.local != nil {
		w.local = w.local[:0]
	}
}

// Push appends v to the queue.
func (w *Writer) Push(v int32) {
	if w.spilling {
		w.local = append(w.local, v)
		return
	}
	if w.pos == w.end {
		if !w.grabBlock() {
			w.spilling = true
			w.local = append(w.local, v)
			return
		}
	}
	w.q.buf[w.pos] = v
	w.pos++
}

// grabBlock reserves the next block with an atomic fetch-and-add. It
// reports false when the backing array is exhausted.
func (w *Writer) grabBlock() bool {
	q := w.q
	start := q.next.Add(int64(q.blockSize)) - int64(q.blockSize)
	if start >= int64(len(q.buf)) {
		return false
	}
	w.BlockGrabs++
	w.pos = start
	w.end = start + int64(q.blockSize)
	if w.end > int64(len(q.buf)) {
		w.end = int64(len(q.buf))
	}
	return true
}

// Flush pads the unused remainder of the current block with Sentinel and
// publishes any spilled entries. Must be called once per level per writer,
// after which the Writer is ready for the next level.
func (w *Writer) Flush() {
	for ; w.pos < w.end; w.pos++ {
		w.q.buf[w.pos] = Sentinel
	}
	w.pos, w.end = 0, 0
	if len(w.local) > 0 {
		w.q.spillMu.Lock()
		w.q.spill = append(w.q.spill, w.local...)
		w.q.spillMu.Unlock()
		w.local = w.local[:0]
	}
	w.spilling = false
}
