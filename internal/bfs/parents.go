package bfs

import (
	"fmt"

	"micgraph/internal/graph"
)

// Parent-tree construction and Graph 500-style validation. The paper points
// at the Graph 500 benchmark as the reason BFS is "one of the reference
// graph algorithms"; Graph 500 validates a BFS by checking the parent tree
// rather than the levels, so we provide both representations.

// NoParent marks unreachable vertices in a parent array.
const NoParent int32 = -1

// Parents derives a valid BFS parent tree from a level assignment: each
// reachable non-source vertex gets its minimum-id neighbor one level closer
// to the source; the source is its own parent.
func Parents(g *graph.Graph, source int32, levels []int32) []int32 {
	n := g.NumVertices()
	parents := make([]int32, n)
	for v := 0; v < n; v++ {
		parents[v] = NoParent
	}
	if n == 0 {
		return parents
	}
	parents[source] = source
	for v := 0; v < n; v++ {
		lv := levels[v]
		if lv <= 0 {
			continue
		}
		for _, w := range g.Adj(int32(v)) {
			if levels[w] == lv-1 {
				parents[v] = w
				break // adjacency is sorted: first hit is the min id
			}
		}
	}
	return parents
}

// ValidateParents performs the Graph 500 BFS checks on a parent tree:
//
//  1. the source is its own parent;
//  2. every parent edge exists in the graph;
//  3. following parents from any reachable vertex terminates at the source
//     (the tree has no cycles) with exactly level[v] steps;
//  4. vertices with a parent are exactly those with a level, and each
//     vertex's level is one more than its parent's.
func ValidateParents(g *graph.Graph, source int32, parents, levels []int32) error {
	n := g.NumVertices()
	if len(parents) != n || len(levels) != n {
		return fmt.Errorf("bfs: parent/level arrays sized %d/%d for %d vertices", len(parents), len(levels), n)
	}
	if n == 0 {
		return nil
	}
	if parents[source] != source {
		return fmt.Errorf("bfs: source parent = %d, want itself", parents[source])
	}
	for v := 0; v < n; v++ {
		p := parents[v]
		switch {
		case p == NoParent:
			if levels[v] != Unvisited {
				return fmt.Errorf("bfs: vertex %d has level %d but no parent", v, levels[v])
			}
		case int32(v) == source:
		default:
			if levels[v] == Unvisited {
				return fmt.Errorf("bfs: vertex %d has parent %d but no level", v, p)
			}
			if !g.HasEdge(int32(v), p) {
				return fmt.Errorf("bfs: parent edge (%d,%d) not in graph", v, p)
			}
			if levels[p] != levels[v]-1 {
				return fmt.Errorf("bfs: vertex %d at level %d has parent %d at level %d",
					v, levels[v], p, levels[p])
			}
		}
	}
	// Cycle check: walking parents must reach the source in level[v] steps.
	for v := 0; v < n; v++ {
		if parents[v] == NoParent || int32(v) == source {
			continue
		}
		cur := int32(v)
		for steps := levels[v]; steps > 0; steps-- {
			cur = parents[cur]
		}
		if cur != source {
			return fmt.Errorf("bfs: parent walk from %d ends at %d, not the source", v, cur)
		}
	}
	return nil
}
