package bfs

import (
	"context"
	"sync/atomic"

	"micgraph/internal/graph"
	"micgraph/internal/sched"
)

// Layered parallel BFS (Algorithm 7) over block-accessed queues, in the
// OpenMP (Team) and TBB (Pool + partitioner) flavours. The two variants per
// runtime differ in how a vertex is claimed for the next level:
//
//   - locked: compare-and-swap on the level word; exactly-once insertion;
//   - relaxed: plain check-then-store (via atomics for Go memory-model
//     sanity); duplicates possible and benign (§III-C, Leiserson–Schardl).
//
// The implementations live on Scratch (scratch.go), which owns every
// reusable buffer; the entry points here run on a throwaway Scratch and so
// keep their historical allocate-per-call semantics.

// DefaultBlockSize is the queue block size that performed best in the
// paper's experiments ("we used as block size the one that yields the best
// performance in our implementation (32 in this case)", §V-D).
const DefaultBlockSize = 32

// claimLocked claims w for level lv exactly once.
func claimLocked(levels []int32, w int32, lv int32) bool {
	return atomic.CompareAndSwapInt32(&levels[w], Unvisited, lv)
}

// claimRelaxed claims w for level lv without synchronisation between check
// and store; concurrent claimers may all succeed ("whichever wins the race
// leads to the same values in memory").
func claimRelaxed(levels []int32, w int32, lv int32) bool {
	if atomic.LoadInt32(&levels[w]) == Unvisited {
		atomic.StoreInt32(&levels[w], lv)
		return true
	}
	return false
}

// BlockTeam runs layered BFS with the block-accessed queue on an
// OpenMP-style Team (the paper's OpenMP-Block / OpenMP-Block-relaxed).
// A body panic (e.g. an injected fault) propagates as a *sched.PanicError;
// use BlockTeamCtx for errors and cancellation.
func BlockTeam(g *graph.Graph, source int32, team *sched.Team, opts sched.ForOptions, blockSize int, relaxed bool) Result {
	res, err := BlockTeamCtx(nil, g, source, team, opts, blockSize, relaxed)
	if err != nil {
		panic(err)
	}
	return res
}

// BlockTeamCtx is BlockTeam with cooperative cancellation: ctx (which may
// be nil) is polled at chunk-claim boundaries within a level and between
// levels. On cancellation or a contained panic it returns the partial
// traversal state alongside the error.
func BlockTeamCtx(ctx context.Context, g *graph.Graph, source int32, team *sched.Team, opts sched.ForOptions, blockSize int, relaxed bool) (Result, error) {
	return NewScratch().BlockTeam(ctx, g, source, team, opts, blockSize, relaxed)
}

// BlockTBB runs layered BFS with the block-accessed queue on TBB-style
// partitioned ranges (the paper's TBB-Block / TBB-Block-relaxed; the paper
// reports the simple partitioner). Panics propagate; use BlockTBBCtx for
// errors and cancellation.
func BlockTBB(g *graph.Graph, source int32, pool *sched.Pool, part sched.Partitioner, grain, blockSize int, relaxed bool) Result {
	res, err := BlockTBBCtx(nil, g, source, pool, part, grain, blockSize, relaxed)
	if err != nil {
		panic(err)
	}
	return res
}

// BlockTBBCtx is BlockTBB with cooperative cancellation at range-split
// boundaries and between levels; on failure it returns the partial
// traversal state alongside the error.
func BlockTBBCtx(ctx context.Context, g *graph.Graph, source int32, pool *sched.Pool, part sched.Partitioner, grain, blockSize int, relaxed bool) (Result, error) {
	return NewScratch().BlockTBB(ctx, g, source, pool, part, grain, blockSize, relaxed)
}
