package bfs

import (
	"context"
	"sync/atomic"
	"time"

	"micgraph/internal/graph"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

// Layered parallel BFS (Algorithm 7) over block-accessed queues, in the
// OpenMP (Team) and TBB (Pool + partitioner) flavours. The two variants per
// runtime differ in how a vertex is claimed for the next level:
//
//   - locked: compare-and-swap on the level word; exactly-once insertion;
//   - relaxed: plain check-then-store (via atomics for Go memory-model
//     sanity); duplicates possible and benign (§III-C, Leiserson–Schardl).

// DefaultBlockSize is the queue block size that performed best in the
// paper's experiments ("we used as block size the one that yields the best
// performance in our implementation (32 in this case)", §V-D).
const DefaultBlockSize = 32

// claimLocked claims w for level lv exactly once.
func claimLocked(levels []int32, w int32, lv int32) bool {
	return atomic.CompareAndSwapInt32(&levels[w], Unvisited, lv)
}

// claimRelaxed claims w for level lv without synchronisation between check
// and store; concurrent claimers may all succeed ("whichever wins the race
// leads to the same values in memory").
func claimRelaxed(levels []int32, w int32, lv int32) bool {
	if atomic.LoadInt32(&levels[w]) == Unvisited {
		atomic.StoreInt32(&levels[w], lv)
		return true
	}
	return false
}

// queuePair holds the current and next level queues plus the shared level
// state of one BFS run.
type queuePair struct {
	g         *graph.Graph
	levels    []int32
	cur, next *BlockQueue
	relaxed   bool
}

func newQueuePair(g *graph.Graph, workers, blockSize int, relaxed bool) *queuePair {
	n := g.NumVertices()
	// Nominal capacity: every vertex once, plus one partially filled block
	// per worker. Relaxed duplicates beyond that overflow to the spill path.
	capacity := n + workers*blockSize
	return &queuePair{
		g:       g,
		levels:  makeLevels(n),
		cur:     NewBlockQueue(capacity, blockSize),
		next:    NewBlockQueue(capacity, blockSize),
		relaxed: relaxed,
	}
}

func makeLevels(n int) []int32 {
	levels := make([]int32, n)
	for i := range levels {
		levels[i] = Unvisited
	}
	return levels
}

// seed places the source in cur.
func (qp *queuePair) seed(source int32) {
	qp.levels[source] = 0
	w := qp.cur.NewWriter()
	w.Push(source)
	w.Flush()
}

// processEntry scans entry i of (main, spill), expanding its neighbors into
// wr. Returns 1 if the entry was a real vertex, 0 for sentinel padding.
func (qp *queuePair) processEntry(main, spill []int32, i int, lv int32, wr *Writer) int64 {
	var v int32
	if i < len(main) {
		v = main[i]
	} else {
		v = spill[i-len(main)]
	}
	if v == Sentinel {
		return 0
	}
	g := qp.g
	if qp.relaxed {
		for _, w := range g.Adj(v) {
			if claimRelaxed(qp.levels, w, lv) {
				wr.Push(w)
			}
		}
	} else {
		for _, w := range g.Adj(v) {
			if claimLocked(qp.levels, w, lv) {
				wr.Push(w)
			}
		}
	}
	return 1
}

// finish computes the Result bookkeeping after the level loop.
func (qp *queuePair) finish(processed int64, maxLevel int32) Result {
	res := Result{
		Levels:    qp.levels,
		NumLevels: int(maxLevel) + 1,
		Processed: processed,
	}
	res.Widths = widthsOf(qp.levels, res.NumLevels)
	var reached int64
	for _, w := range res.Widths {
		reached += w
	}
	res.Duplicates = processed - reached
	return res
}

// BlockTeam runs layered BFS with the block-accessed queue on an
// OpenMP-style Team (the paper's OpenMP-Block / OpenMP-Block-relaxed).
// A body panic (e.g. an injected fault) propagates as a *sched.PanicError;
// use BlockTeamCtx for errors and cancellation.
func BlockTeam(g *graph.Graph, source int32, team *sched.Team, opts sched.ForOptions, blockSize int, relaxed bool) Result {
	res, err := BlockTeamCtx(nil, g, source, team, opts, blockSize, relaxed)
	if err != nil {
		panic(err)
	}
	return res
}

// BlockTeamCtx is BlockTeam with cooperative cancellation: ctx (which may
// be nil) is polled at chunk-claim boundaries within a level and between
// levels. On cancellation or a contained panic it returns the partial
// traversal state alongside the error.
func BlockTeamCtx(ctx context.Context, g *graph.Graph, source int32, team *sched.Team, opts sched.ForOptions, blockSize int, relaxed bool) (Result, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	qp := newQueuePair(g, team.Workers(), blockSize, relaxed)
	if g.NumVertices() == 0 {
		return qp.finish(0, 0), nil
	}
	qp.seed(source)

	writers := make([]*Writer, team.Workers())
	processedBy := make([]int64, team.Workers())
	rec := telemetry.FromContext(ctx)

	var processed int64
	maxLevel := int32(0)
	for lv := int32(1); ; lv++ {
		main, spill := qp.cur.Entries()
		total := len(main) + len(spill)
		if total == 0 {
			break
		}
		maxLevel = lv - 1
		var edges int64
		var levelStart time.Time
		if telemetry.Active(rec) {
			edges = frontierEdges(g, main, spill)
			levelStart = telemetry.Now(rec)
		}
		for w := range writers {
			writers[w] = qp.next.NewWriter()
			processedBy[w] = 0
		}
		err := team.ForCtx(ctx, total, opts, func(lo, hi, w int) {
			wr := writers[w]
			var count int64
			for i := lo; i < hi; i++ {
				count += qp.processEntry(main, spill, i, lv, wr)
			}
			processedBy[w] += count
		})
		var levelProcessed int64
		for w := range writers {
			writers[w].Flush()
			levelProcessed += processedBy[w]
		}
		processed += levelProcessed
		if telemetry.Active(rec) {
			nm, ns := qp.next.Entries()
			s := levelSample(lv-1, levelProcessed, edges, frontierCount(nm, ns))
			s.Duration = telemetry.Since(rec, levelStart)
			rec.Record(s)
		}
		if err != nil {
			// Chunks that ran before the abort may have claimed vertices
			// at level lv, so the partial result spans levels 0..lv.
			return qp.finish(processed, lv), err
		}
		qp.cur, qp.next = qp.next, qp.cur
		qp.next.Reset()
	}
	return qp.finish(processed, maxLevel), nil
}

// BlockTBB runs layered BFS with the block-accessed queue on TBB-style
// partitioned ranges (the paper's TBB-Block / TBB-Block-relaxed; the paper
// reports the simple partitioner). Panics propagate; use BlockTBBCtx for
// errors and cancellation.
func BlockTBB(g *graph.Graph, source int32, pool *sched.Pool, part sched.Partitioner, grain, blockSize int, relaxed bool) Result {
	res, err := BlockTBBCtx(nil, g, source, pool, part, grain, blockSize, relaxed)
	if err != nil {
		panic(err)
	}
	return res
}

// BlockTBBCtx is BlockTBB with cooperative cancellation at range-split
// boundaries and between levels; on failure it returns the partial
// traversal state alongside the error.
func BlockTBBCtx(ctx context.Context, g *graph.Graph, source int32, pool *sched.Pool, part sched.Partitioner, grain, blockSize int, relaxed bool) (Result, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	qp := newQueuePair(g, pool.Workers(), blockSize, relaxed)
	if g.NumVertices() == 0 {
		return qp.finish(0, 0), nil
	}
	qp.seed(source)

	writers := make([]*Writer, pool.Workers())
	counts := sched.NewCombinable(pool.Workers(), func() int64 { return 0 })
	var aff sched.AffinityState
	rec := telemetry.FromContext(ctx)

	var processed int64
	maxLevel := int32(0)
	for lv := int32(1); ; lv++ {
		main, spill := qp.cur.Entries()
		total := len(main) + len(spill)
		if total == 0 {
			break
		}
		maxLevel = lv - 1
		var edges int64
		var levelStart time.Time
		if telemetry.Active(rec) {
			edges = frontierEdges(g, main, spill)
			levelStart = telemetry.Now(rec)
		}
		for w := range writers {
			writers[w] = qp.next.NewWriter()
		}
		before := counts.Combine(0, addInt64)
		err := sched.ParallelForRangeCtx(ctx, pool, sched.Range{Lo: 0, Hi: total, Grain: grain}, part, &aff,
			func(lo, hi int, c *sched.Ctx) {
				wr := writers[c.Worker()]
				local := counts.Local(c)
				for i := lo; i < hi; i++ {
					*local += qp.processEntry(main, spill, i, lv, wr)
				}
			})
		for w := range writers {
			writers[w].Flush()
		}
		levelProcessed := counts.Combine(0, addInt64) - before
		processed += levelProcessed
		if telemetry.Active(rec) {
			nm, ns := qp.next.Entries()
			s := levelSample(lv-1, levelProcessed, edges, frontierCount(nm, ns))
			s.Duration = telemetry.Since(rec, levelStart)
			rec.Record(s)
		}
		if err != nil {
			// Partial level: vertices may already be claimed at level lv.
			return qp.finish(processed, lv), err
		}
		qp.cur, qp.next = qp.next, qp.cur
		qp.next.Reset()
	}
	return qp.finish(processed, maxLevel), nil
}

func addInt64(a, b int64) int64 { return a + b }
