package bfs

import (
	"testing"
	"testing/quick"

	"micgraph/internal/gen"
	"micgraph/internal/graph"
	"micgraph/internal/sched"
)

func TestParentsValid(t *testing.T) {
	property := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%120) + 1
		m := int(mRaw % 500)
		g := randomGraph(seed, n, m)
		src := int32(int(seed % uint64(n)))
		res := Sequential(g, src)
		parents := Parents(g, src, res.Levels)
		return ValidateParents(g, src, parents, res.Levels) == nil
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestValidateParentsCatchesCorruption(t *testing.T) {
	g := gen.Grid2D(8, 8)
	res := Sequential(g, 0)
	good := Parents(g, 0, res.Levels)

	cases := []struct {
		name   string
		mutate func(p []int32)
	}{
		{"source not own parent", func(p []int32) { p[0] = 5 }},
		{"non-edge parent", func(p []int32) { p[63] = 0 }}, // corner to corner: no edge
		{"wrong level parent", func(p []int32) { p[2] = 3 }},
		{"orphaned reachable", func(p []int32) { p[5] = NoParent }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := append([]int32{}, good...)
			tc.mutate(p)
			if err := ValidateParents(g, 0, p, res.Levels); err == nil {
				t.Error("corruption not detected")
			}
		})
	}
	// And the untouched tree must pass.
	if err := ValidateParents(g, 0, good, res.Levels); err != nil {
		t.Fatal(err)
	}
}

func TestValidateParentsCycle(t *testing.T) {
	// Construct a plausible-looking forest with a two-cycle: levels lie.
	g := gen.Chain(4)
	levels := []int32{0, 1, 2, 3}
	parents := []int32{0, 0, 3, 2} // 2 and 3 point at each other
	if err := ValidateParents(g, 0, parents, levels); err == nil {
		t.Error("parent cycle not detected")
	}
}

func TestHybridMatchesSequential(t *testing.T) {
	team := sched.NewTeam(4)
	defer team.Close()
	opts := sched.ForOptions{Policy: sched.Dynamic, Chunk: 8}
	graphs := map[string]*graph.Graph{
		"chain":    gen.Chain(100),
		"complete": gen.Complete(50),
		"grid":     gen.Grid2D(25, 25),
		"rmat":     gen.RMAT(9, 8, 0.57, 0.19, 0.19, 3),
		"random":   randomGraph(5, 300, 1200),
	}
	for name, g := range graphs {
		name, g := name, g
		t.Run(name, func(t *testing.T) {
			src := int32(g.NumVertices() / 3)
			res := HybridTeam(g, src, team, opts, HybridConfig{})
			if err := Validate(g, src, res.Levels); err != nil {
				t.Fatal(err)
			}
			// One directional pass per non-empty frontier (levels 0..max).
			if res.TopDownLevels+res.BottomUpLevels != res.NumLevels {
				t.Errorf("direction counts %d+%d don't cover %d levels",
					res.TopDownLevels, res.BottomUpLevels, res.NumLevels)
			}
		})
	}
}

func TestHybridUsesBottomUpOnWideFrontier(t *testing.T) {
	// A complete graph's level 1 is the whole graph: must go bottom-up.
	team := sched.NewTeam(4)
	defer team.Close()
	g := gen.Complete(200)
	res := HybridTeam(g, 0, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 16}, HybridConfig{})
	if res.BottomUpLevels == 0 {
		t.Error("complete graph BFS never switched to bottom-up")
	}
}

func TestHybridStaysTopDownOnChain(t *testing.T) {
	// A chain's frontier is always one vertex: bottom-up would be absurd
	// and the heuristic must never pick it.
	team := sched.NewTeam(2)
	defer team.Close()
	g := gen.Chain(400)
	res := HybridTeam(g, 0, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 8}, HybridConfig{})
	if res.BottomUpLevels != 0 {
		t.Errorf("chain BFS used bottom-up on %d levels", res.BottomUpLevels)
	}
}

func TestHybridProperty(t *testing.T) {
	team := sched.NewTeam(4)
	defer team.Close()
	property := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%150) + 1
		m := int(mRaw % 700)
		g := randomGraph(seed, n, m)
		src := int32(int(seed % uint64(n)))
		res := HybridTeam(g, src, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 4}, HybridConfig{})
		if Validate(g, src, res.Levels) != nil {
			return false
		}
		parents := Parents(g, src, res.Levels)
		return ValidateParents(g, src, parents, res.Levels) == nil
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHybridConfigDefaults(t *testing.T) {
	var c HybridConfig
	if c.alpha() != 14 || c.beta() != 24 {
		t.Errorf("defaults = %d, %d; want 14, 24", c.alpha(), c.beta())
	}
	c = HybridConfig{Alpha: 2, Beta: 3}
	if c.alpha() != 2 || c.beta() != 3 {
		t.Error("explicit config ignored")
	}
}
