package bfs

import (
	"context"
	"sync/atomic"
	"time"

	"micgraph/internal/graph"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

// Scratch owns every reusable buffer of the parallel BFS variants: the
// level array, the flat frontier arrays that replaced the allocating
// TLS/bag queues, the block-accessed queue pair with its per-worker
// writers, and the per-worker chunk builders of the bag variant. A kernel
// run through a Scratch allocates nothing on its hot path in steady state
// (pinned by the alloc-regression tests); the first run on a new graph
// size grows the buffers once.
//
// A Scratch is single-run: one BFS at a time. The returned Result aliases
// scratch-owned memory (Levels, Widths), valid until the next run on the
// same Scratch — callers that need the result beyond that must copy it.
// The package-level entry points (BlockTeamCtx, TLSTeamCtx, ...) keep
// their allocate-per-call semantics by running on a throwaway Scratch.
type Scratch struct {
	// levels is the shared level array (claim target of every variant).
	levels []int32

	// Flat frontier arrays (TLS and hybrid variants).
	frontA, frontB []int32
	locals         []localQueue
	hlocals        []hybridLocal

	// Block-accessed queue pair (OpenMP-Block / TBB-Block variants).
	qA, qB     *BlockQueue
	writers    []*Writer
	qBlockSize int

	// Per-worker counters (processed entries per level).
	counts []paddedCount

	// Bag variant: per-worker chunk builders and the flattened chunk list
	// of the current frontier. Chunks are leased from the pool's Arena.
	builders []chunkBuilder
	flat     [][]int32

	// widths backs Result.Widths.
	widths []int64

	// Per-run/per-level state read by the resident loop bodies below. The
	// bodies are created once per Scratch and capture only s, so steady-state
	// levels dispatch with zero allocations (pinned by the kerneltest alloc
	// gates): the per-level variation travels through these fields, set by
	// the driving method between loops.
	xadj       []int64
	adj        []int32
	lv         int32
	relaxed    bool
	main       []int32      // block variants: current frontier (main segment)
	spill      []int32      // block variants: current frontier (spill segment)
	cur        []int32      // TLS/hybrid: current flat frontier
	curChunks  [][]int32    // bag: current chunked frontier
	chunkGrain int          // bag: chunk capacity
	arena      *sched.Arena // bag: chunk lease pool

	blockBody    func(lo, hi, w int)
	blockBodyTBB func(lo, hi int, c *sched.Ctx)
	tlsBody      func(lo, hi, w int)
	bagBody      func(lo, hi int, c *sched.Ctx)
	aff          sched.AffinityState // TBB affinity map (resident, escapes)
	hybridTD     func(lo, hi, w int)
	hybridBU     func(lo, hi, w int)
}

// NewScratch returns an empty Scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// paddedCount keeps per-worker counters off each other's cache lines.
type paddedCount struct {
	n int64
	_ [56]byte
}

// localQueue is one worker's thread-local next-level queue, padded so the
// slice headers of neighbouring workers do not share a cache line.
type localQueue struct {
	buf []int32
	_   [40]byte
}

// chunkBuilder accumulates next-level vertices per worker for the bag
// variant: a hopper chunk that moves onto the worker's chunk list when
// full. Chunks are leased from the scheduler arena, so steady-state levels
// recycle the previous frontier's memory instead of allocating.
type chunkBuilder struct {
	hopper    []int32
	chunks    [][]int32
	claims    int64
	processed int64
	_         [16]byte
}

// ensureCommon sizes the level array and resets it to Unvisited.
func (s *Scratch) ensureCommon(n int) {
	if cap(s.levels) < n {
		s.levels = make([]int32, n)
	}
	s.levels = s.levels[:n]
	for i := range s.levels {
		s.levels[i] = Unvisited
	}
}

// ensureWorkers sizes the per-worker state shared by the variants.
func (s *Scratch) ensureWorkers(workers int) {
	if len(s.counts) < workers {
		s.counts = make([]paddedCount, workers)
	}
	if len(s.locals) < workers {
		s.locals = make([]localQueue, workers)
	}
	if len(s.builders) < workers {
		s.builders = make([]chunkBuilder, workers)
	}
}

// ensureFlat sizes the two flat frontier arrays to hold n vertices.
func (s *Scratch) ensureFlat(n int) {
	if cap(s.frontA) < n {
		s.frontA = make([]int32, 0, n)
	}
	if cap(s.frontB) < n {
		s.frontB = make([]int32, 0, n)
	}
}

// ensureBlock sizes the block queue pair and per-worker writers.
func (s *Scratch) ensureBlock(n, workers, blockSize int) {
	capacity := n + workers*blockSize
	if s.qA == nil || s.qBlockSize != blockSize || s.qA.Cap() < capacity {
		s.qA = NewBlockQueue(capacity, blockSize)
		s.qB = NewBlockQueue(capacity, blockSize)
		s.qBlockSize = blockSize
	} else {
		s.qA.Reset()
		s.qB.Reset()
	}
	if len(s.writers) < workers {
		old := len(s.writers)
		s.writers = append(s.writers, make([]*Writer, workers-old)...)
		for i := old; i < workers; i++ {
			s.writers[i] = &Writer{}
		}
	}
}

// finish assembles the Result bookkeeping after the level loop.
func (s *Scratch) finish(processed int64, maxLevel int32) Result {
	res := Result{
		Levels:    s.levels,
		NumLevels: int(maxLevel) + 1,
		Processed: processed,
	}
	res.Widths = s.widthsOf(res.NumLevels)
	var reached int64
	for _, w := range res.Widths {
		reached += w
	}
	res.Duplicates = processed - reached
	return res
}

// widthsOf is widthsOf writing into the scratch-owned widths buffer.
func (s *Scratch) widthsOf(numLevels int) []int64 {
	if cap(s.widths) < numLevels {
		s.widths = make([]int64, numLevels)
	}
	s.widths = s.widths[:numLevels]
	for i := range s.widths {
		s.widths[i] = 0
	}
	for _, lv := range s.levels {
		if lv >= 0 && int(lv) < numLevels {
			s.widths[lv]++
		}
	}
	return s.widths
}

// expandBlockEntry scans one block-queue entry, expanding its neighbors
// into wr over the raw CSR arrays. Returns 1 for a real vertex, 0 for
// sentinel padding.
func expandBlockEntry(xadj []int64, adj, levels []int32, main, spill []int32, i int, lv int32, relaxed bool, wr *Writer) int64 {
	var v int32
	if i < len(main) {
		v = main[i]
	} else {
		v = spill[i-len(main)]
	}
	if v == Sentinel {
		return 0
	}
	if relaxed {
		for j := xadj[v]; j < xadj[v+1]; j++ {
			if w := adj[j]; claimRelaxed(levels, w, lv) {
				wr.Push(w)
			}
		}
	} else {
		for j := xadj[v]; j < xadj[v+1]; j++ {
			if w := adj[j]; claimLocked(levels, w, lv) {
				wr.Push(w)
			}
		}
	}
	return 1
}

// BlockTeam runs the block-queue layered BFS (OpenMP-Block[-relaxed]) on
// the scratch's pooled state. See BlockTeamCtx for semantics.
func (s *Scratch) BlockTeam(ctx context.Context, g *graph.Graph, source int32, team *sched.Team, opts sched.ForOptions, blockSize int, relaxed bool) (Result, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	n := g.NumVertices()
	workers := team.Workers()
	opts = opts.WithSerialCutoff(workers)
	s.ensureCommon(n)
	s.ensureWorkers(workers)
	s.ensureBlock(n, workers, blockSize)
	if n == 0 {
		return s.finish(0, 0), nil
	}
	levels := s.levels
	s.xadj, s.adj, s.relaxed = g.Xadj(), g.AdjRaw(), relaxed
	cur, next := s.qA, s.qB
	levels[source] = 0
	seedBlock(cur, s.writers[0], source)
	if s.blockBody == nil {
		s.blockBody = func(lo, hi, w int) {
			wr := s.writers[w]
			var count int64
			for i := lo; i < hi; i++ {
				count += expandBlockEntry(s.xadj, s.adj, s.levels, s.main, s.spill, i, s.lv, s.relaxed, wr)
			}
			s.counts[w].n += count
		}
	}

	rec := telemetry.FromContext(ctx)
	var processed int64
	maxLevel := int32(0)
	for lv := int32(1); ; lv++ {
		main, spill := cur.Entries()
		total := len(main) + len(spill)
		if total == 0 {
			break
		}
		maxLevel = lv - 1
		var edges int64
		var levelStart time.Time
		if telemetry.Active(rec) {
			edges = frontierEdges(g, main, spill)
			levelStart = telemetry.Now(rec)
		}
		for w := 0; w < workers; w++ {
			s.writers[w].Reset(next)
			s.counts[w].n = 0
		}
		s.main, s.spill, s.lv = main, spill, lv
		err := team.ForCtx(ctx, total, opts, s.blockBody)
		var levelProcessed int64
		for w := 0; w < workers; w++ {
			s.writers[w].Flush()
			levelProcessed += s.counts[w].n
		}
		processed += levelProcessed
		if telemetry.Active(rec) {
			nm, ns := next.Entries()
			sample := levelSample(lv-1, levelProcessed, edges, frontierCount(nm, ns))
			sample.Duration = telemetry.Since(rec, levelStart)
			rec.Record(sample)
		}
		if err != nil {
			// Chunks that ran before the abort may have claimed vertices
			// at level lv, so the partial result spans levels 0..lv.
			return s.finish(processed, lv), err
		}
		cur, next = next, cur
		next.Reset()
	}
	return s.finish(processed, maxLevel), nil
}

// BlockTBB runs the block-queue layered BFS on TBB-style partitioned
// ranges using the scratch's pooled state. See BlockTBBCtx for semantics.
func (s *Scratch) BlockTBB(ctx context.Context, g *graph.Graph, source int32, pool *sched.Pool, part sched.Partitioner, grain, blockSize int, relaxed bool) (Result, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	n := g.NumVertices()
	workers := pool.Workers()
	s.ensureCommon(n)
	s.ensureWorkers(workers)
	s.ensureBlock(n, workers, blockSize)
	if n == 0 {
		return s.finish(0, 0), nil
	}
	levels := s.levels
	s.xadj, s.adj, s.relaxed = g.Xadj(), g.AdjRaw(), relaxed
	cur, next := s.qA, s.qB
	levels[source] = 0
	seedBlock(cur, s.writers[0], source)
	if s.blockBodyTBB == nil {
		s.blockBodyTBB = func(lo, hi int, c *sched.Ctx) {
			w := c.Worker()
			wr := s.writers[w]
			var count int64
			for i := lo; i < hi; i++ {
				count += expandBlockEntry(s.xadj, s.adj, s.levels, s.main, s.spill, i, s.lv, s.relaxed, wr)
			}
			s.counts[w].n += count
		}
	}

	rec := telemetry.FromContext(ctx)
	var processed int64
	maxLevel := int32(0)
	for lv := int32(1); ; lv++ {
		main, spill := cur.Entries()
		total := len(main) + len(spill)
		if total == 0 {
			break
		}
		maxLevel = lv - 1
		var edges int64
		var levelStart time.Time
		if telemetry.Active(rec) {
			edges = frontierEdges(g, main, spill)
			levelStart = telemetry.Now(rec)
		}
		for w := 0; w < workers; w++ {
			s.writers[w].Reset(next)
			s.counts[w].n = 0
		}
		s.main, s.spill, s.lv = main, spill, lv
		err := sched.ParallelForRangeCtx(ctx, pool, sched.Range{Lo: 0, Hi: total, Grain: grain}, part, &s.aff, s.blockBodyTBB)
		var levelProcessed int64
		for w := 0; w < workers; w++ {
			s.writers[w].Flush()
			levelProcessed += s.counts[w].n
		}
		processed += levelProcessed
		if telemetry.Active(rec) {
			nm, ns := next.Entries()
			sample := levelSample(lv-1, levelProcessed, edges, frontierCount(nm, ns))
			sample.Duration = telemetry.Since(rec, levelStart)
			rec.Record(sample)
		}
		if err != nil {
			// Partial level: vertices may already be claimed at level lv.
			return s.finish(processed, lv), err
		}
		cur, next = next, cur
		next.Reset()
	}
	return s.finish(processed, maxLevel), nil
}

// seedBlock places the source vertex in q using a scratch writer.
func seedBlock(q *BlockQueue, w *Writer, source int32) {
	w.Reset(q)
	w.Push(source)
	w.Flush()
}

// TLSTeam runs the SNAP-style thread-local-queue BFS on the scratch's
// pooled state: the thread-local queues and both flat frontier arrays are
// retained across runs. See TLSTeamCtx for semantics.
func (s *Scratch) TLSTeam(ctx context.Context, g *graph.Graph, source int32, team *sched.Team, opts sched.ForOptions) (Result, error) {
	n := g.NumVertices()
	workers := team.Workers()
	opts = opts.WithSerialCutoff(workers)
	s.ensureCommon(n)
	s.ensureWorkers(workers)
	s.ensureFlat(n)
	if n == 0 {
		return s.finish(0, 0), nil
	}
	levels := s.levels
	s.xadj, s.adj = g.Xadj(), g.AdjRaw()
	levels[source] = 0
	cur := append(s.frontA[:0], source)
	next := s.frontB[:0]
	rec := telemetry.FromContext(ctx)
	if s.tlsBody == nil {
		s.tlsBody = func(lo, hi, w int) {
			xadj, adj, lvls, lv := s.xadj, s.adj, s.levels, s.lv
			local := s.locals[w].buf
			for i := lo; i < hi; i++ {
				v := s.cur[i]
				for j := xadj[v]; j < xadj[v+1]; j++ {
					u := adj[j]
					// Check before locking (the paper's improvement), then
					// claim with CAS — the lock-free equivalent of SNAP's
					// per-vertex lock.
					if atomic.LoadInt32(&lvls[u]) != Unvisited {
						continue
					}
					if claimLocked(lvls, u, lv) {
						local = append(local, u)
					}
				}
			}
			s.locals[w].buf = local
		}
	}

	var processed int64
	maxLevel := int32(0)
	for lv := int32(1); len(cur) > 0; lv++ {
		maxLevel = lv - 1
		processed += int64(len(cur))
		var edges int64
		var levelStart time.Time
		if telemetry.Active(rec) {
			edges = sliceEdges(g, cur)
			levelStart = telemetry.Now(rec)
		}
		for w := 0; w < workers; w++ {
			s.locals[w].buf = s.locals[w].buf[:0]
		}
		curSnapshot := cur
		s.cur, s.lv = curSnapshot, lv
		err := team.ForCtx(ctx, len(curSnapshot), opts, s.tlsBody)
		if err != nil {
			// Partial level: vertices may already be claimed at level lv.
			res := s.finish(processed, lv)
			res.Duplicates = 0
			return res, err
		}
		// Merge local queues into the global queue (level barrier).
		next = next[:0]
		for w := 0; w < workers; w++ {
			next = append(next, s.locals[w].buf...)
		}
		if telemetry.Active(rec) {
			sample := levelSample(lv-1, int64(len(curSnapshot)), edges, int64(len(next)))
			sample.Duration = telemetry.Since(rec, levelStart)
			rec.Record(sample)
		}
		cur, next = next, cur
	}
	s.frontA, s.frontB = cur[:0], next[:0]
	res := s.finish(processed, maxLevel)
	res.Duplicates = 0 // locked claims: every vertex enters exactly one queue
	return res, nil
}

// BagCilk runs the Cilk bag-BFS on the scratch's pooled state. The
// per-level frontier is the pennant bag's flattened form — a list of
// grain-sized chunks — built by per-worker chunk builders whose chunks are
// leased from the pool's arena: the chunks of the consumed frontier are
// returned as they are traversed and immediately back the next frontier,
// so steady-state levels allocate nothing. Claim semantics (relaxed,
// benign duplicates), traversal grain and telemetry samples are identical
// to the pennant-tree original. See BagCilkCtx for semantics.
func (s *Scratch) BagCilk(ctx context.Context, g *graph.Graph, source int32, pool *sched.Pool, grain int) (Result, error) {
	if grain <= 0 {
		grain = DefaultBagGrain
	}
	n := g.NumVertices()
	workers := pool.Workers()
	s.ensureCommon(n)
	s.ensureWorkers(workers)
	if n == 0 {
		return s.finish(0, 0), nil
	}
	levels := s.levels
	s.xadj, s.adj = g.Xadj(), g.AdjRaw()
	arena := pool.Arena()
	s.arena, s.chunkGrain = arena, grain
	levels[source] = 0

	flat := s.flat[:0]
	seed := arena.Get(0, grain)
	flat = append(flat, append(seed, source))
	if s.bagBody == nil {
		s.bagBody = func(lo, hi int, c *sched.Ctx) {
			xadj, adj, lvls, lv := s.xadj, s.adj, s.levels, s.lv
			w := c.Worker()
			bb := &s.builders[w]
			for ci := lo; ci < hi; ci++ {
				items := s.curChunks[ci]
				for _, v := range items {
					for j := xadj[v]; j < xadj[v+1]; j++ {
						u := adj[j]
						if claimRelaxed(lvls, u, lv) {
							if len(bb.hopper) == cap(bb.hopper) {
								if cap(bb.hopper) > 0 {
									bb.chunks = append(bb.chunks, bb.hopper)
								}
								bb.hopper = s.arena.Get(w, s.chunkGrain)
							}
							bb.hopper = append(bb.hopper, u)
							bb.claims++
						}
					}
				}
				bb.processed += int64(len(items))
				s.arena.Put(w, items) // consumed chunk feeds the next frontier
				s.curChunks[ci] = nil
			}
		}
	}

	rec := telemetry.FromContext(ctx)
	var processed int64
	maxLevel := int32(0)
	for lv := int32(1); len(flat) > 0; lv++ {
		maxLevel = lv - 1
		var edges int64
		var levelStart time.Time
		if telemetry.Active(rec) {
			edges = chunksEdges(g, flat)
			levelStart = telemetry.Now(rec)
		}
		for w := 0; w < workers; w++ {
			bb := &s.builders[w]
			bb.hopper = bb.hopper[:0]
			bb.chunks = bb.chunks[:0]
			bb.claims = 0
			bb.processed = 0
		}
		s.curChunks, s.lv = flat, lv
		// Grain 1: each task claims whole chunks, the bag-walk granularity.
		err := pool.ParallelForCtx(ctx, len(flat), 1, s.bagBody)
		var levelProcessed, claims int64
		for w := 0; w < workers; w++ {
			levelProcessed += s.builders[w].processed
			claims += s.builders[w].claims
		}
		processed += levelProcessed
		if telemetry.Active(rec) {
			sample := levelSample(lv-1, levelProcessed, edges, claims)
			sample.Duration = telemetry.Since(rec, levelStart)
			rec.Record(sample)
		}
		if err != nil {
			// Partial level: vertices may already be claimed at level lv.
			s.flat = flat[:0]
			return s.finish(processed, lv), err
		}
		// Level barrier: concatenate the per-worker chunk lists (the bag
		// merge) into the next flattened frontier.
		flat = flat[:0]
		for w := 0; w < workers; w++ {
			bb := &s.builders[w]
			flat = append(flat, bb.chunks...)
			bb.chunks = bb.chunks[:0]
			if len(bb.hopper) > 0 {
				flat = append(flat, bb.hopper)
				bb.hopper = nil
			}
		}
	}
	s.flat = flat[:0]
	return s.finish(processed, maxLevel), nil
}

// chunksEdges sums the degrees of every vertex in a chunked frontier
// (telemetry pre-pass only).
func chunksEdges(g *graph.Graph, chunks [][]int32) int64 {
	var edges int64
	for _, items := range chunks {
		edges += sliceEdges(g, items)
	}
	return edges
}
