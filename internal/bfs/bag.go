package bfs

import (
	"context"

	"micgraph/internal/graph"
	"micgraph/internal/sched"
)

// Pennant bag (Leiserson & Schardl, SPAA 2010): a bag is an array of
// pennants, at most one of rank k for each k, where a rank-k pennant holds
// 2^k tree nodes. Two rank-k pennants union into one rank-(k+1) pennant in
// O(1), so bag merge works like binary carry addition ("an algorithm
// similar to carry-add for integer addition", §IV-C). Each node stores up
// to grain vertices (the paper's grainsize), which amortises both pointer
// chasing and task-spawn overhead during traversal.

// pennantNode is one node of a pennant tree.
type pennantNode struct {
	items       []int32
	left, right *pennantNode
}

// pennantUnion combines two pennants of equal rank into one of rank+1.
func pennantUnion(x, y *pennantNode) *pennantNode {
	y.right = x.left
	x.left = y
	return x
}

// pennantSplit undoes a union: it detaches and returns a pennant of one
// rank lower, leaving x also one rank lower.
func pennantSplit(x *pennantNode) *pennantNode {
	y := x.left
	x.left = y.right
	y.right = nil
	return y
}

// Bag is an unordered multiset of vertices supporting O(1) amortised
// insertion, O(log n) merge, and parallel traversal.
type Bag struct {
	pennants []*pennantNode // pennants[k] has rank k (2^k nodes) or is nil
	grain    int
}

// NewBag creates an empty bag whose nodes hold up to grain vertices each.
func NewBag(grain int) *Bag {
	if grain < 1 {
		grain = 1
	}
	return &Bag{grain: grain}
}

// insertPennant adds a rank-k pennant with carry propagation.
func (b *Bag) insertPennant(p *pennantNode, k int) {
	for {
		for len(b.pennants) <= k {
			b.pennants = append(b.pennants, nil)
		}
		if b.pennants[k] == nil {
			b.pennants[k] = p
			return
		}
		p = pennantUnion(b.pennants[k], p)
		b.pennants[k] = nil
		k++
	}
}

// InsertChunk adds a full node of vertices as a rank-0 pennant. The slice is
// retained; callers must hand over ownership.
func (b *Bag) InsertChunk(items []int32) {
	if len(items) == 0 {
		return
	}
	b.insertPennant(&pennantNode{items: items}, 0)
}

// Merge absorbs other into b (carry addition over the pennant arrays);
// other becomes empty.
func (b *Bag) Merge(other *Bag) {
	for k, p := range other.pennants {
		if p != nil {
			b.insertPennant(p, k)
		}
	}
	other.pennants = other.pennants[:0]
}

// Empty reports whether the bag holds no vertices.
func (b *Bag) Empty() bool {
	for _, p := range b.pennants {
		if p != nil {
			return false
		}
	}
	return true
}

// Count returns the number of stored vertices (walks the trees; O(nodes)).
func (b *Bag) Count() int64 {
	var total int64
	for _, p := range b.pennants {
		total += countNode(p)
	}
	return total
}

func countNode(n *pennantNode) int64 {
	if n == nil {
		return 0
	}
	return int64(len(n.items)) + countNode(n.left) + countNode(n.right)
}

// walkNode traverses a pennant subtree, spawning the children as tasks and
// applying visit to each node's chunk — the bag's parallel traversal.
func walkNode(c *sched.Ctx, n *pennantNode, visit func(c *sched.Ctx, items []int32)) {
	for n != nil {
		if n.left != nil {
			left := n.left
			c.Spawn(func(cc *sched.Ctx) { walkNode(cc, left, visit) })
		}
		visit(c, n.items)
		n = n.right
	}
}

// Walk applies visit to every chunk of the bag in parallel on the pool.
func (b *Bag) Walk(pool *sched.Pool, visit func(c *sched.Ctx, items []int32)) {
	pool.Run(func(c *sched.Ctx) {
		for _, p := range b.pennants {
			if p != nil {
				p := p
				c.Spawn(func(cc *sched.Ctx) { walkNode(cc, p, visit) })
			}
		}
	})
}

// WalkCtx is Walk with cooperative cancellation: once ctx (which may be
// nil) is cancelled, unstarted subtree tasks are skipped and the first
// contained panic or the context error is returned.
func (b *Bag) WalkCtx(ctx context.Context, pool *sched.Pool, visit func(c *sched.Ctx, items []int32)) error {
	return pool.RunCtx(ctx, func(c *sched.Ctx) {
		for _, p := range b.pennants {
			if p != nil {
				p := p
				c.Spawn(func(cc *sched.Ctx) { walkNode(cc, p, visit) })
			}
		}
	})
}

// DefaultBagGrain matches the grainsize regime of the original code.
const DefaultBagGrain = 128

// BagCilk runs layered BFS with pennant bags on the work-stealing pool (the
// paper's CilkPlus-Bag-relaxed): relaxed insertion into per-worker bags,
// merged at each level barrier, traversed in parallel chunk by chunk.
// Panics propagate; use BagCilkCtx for errors and cancellation.
func BagCilk(g *graph.Graph, source int32, pool *sched.Pool, grain int) Result {
	res, err := BagCilkCtx(nil, g, source, pool, grain)
	if err != nil {
		panic(err)
	}
	return res
}

// BagCilkCtx is BagCilk with cooperative cancellation at task boundaries
// and between levels; on failure it returns the partial traversal state
// alongside the error.
//
// The implementation lives on Scratch (scratch.go): the per-level frontier
// is held in the bag's flattened form — a list of grain-sized chunks
// recycled through the pool's arena — with the pennant tree's insertion
// and merge cost profile but no per-level allocation. This entry point
// runs on a throwaway Scratch, keeping allocate-per-call semantics.
func BagCilkCtx(ctx context.Context, g *graph.Graph, source int32, pool *sched.Pool, grain int) (Result, error) {
	return NewScratch().BagCilk(ctx, g, source, pool, grain)
}
