package bfs

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"micgraph/internal/gen"
	"micgraph/internal/sched"
)

func settleGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, want <= %d", runtime.NumGoroutine(), want)
}

// TestBlockTeamCtxCancelMidBFS cancels deterministically at the very first
// chunk claim (via the team's injection hook) and checks that the
// traversal stops early, reports the context error, and leaks nothing.
func TestBlockTeamCtxCancelMidBFS(t *testing.T) {
	before := runtime.NumGoroutine()
	g := gen.Grid2D(60, 60)
	team := sched.NewTeam(4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	team.SetInject(func(site string, worker int) { cancel() })

	res, err := BlockTeamCtx(ctx, g, 0, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 8},
		DefaultBlockSize, true)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// A 60x60 grid from a corner has 119 BFS levels; cancelling at the
	// first chunk must leave nearly all of it untraversed.
	full := Sequential(g, 0)
	if res.NumLevels >= full.NumLevels {
		t.Errorf("traversal completed (%d levels) despite cancellation", res.NumLevels)
	}
	team.SetInject(nil)
	team.Close()
	settleGoroutines(t, before)
}

// TestCtxVariantsNilCtxMatchSequential checks the ctx entry points with a
// nil context behave exactly like the legacy ones.
func TestCtxVariantsNilCtxMatchSequential(t *testing.T) {
	g := gen.Grid2D(20, 20)
	want := Sequential(g, 0)
	team := sched.NewTeam(4)
	defer team.Close()
	pool := sched.NewPool(4)
	defer pool.Close()

	check := func(name string, res Result, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := Validate(g, 0, res.Levels); err != nil {
			t.Fatalf("%s: invalid BFS: %v", name, err)
		}
		if res.NumLevels != want.NumLevels {
			t.Errorf("%s: %d levels, want %d", name, res.NumLevels, want.NumLevels)
		}
	}
	res, err := BlockTeamCtx(nil, g, 0, team, sched.ForOptions{}, 0, true)
	check("BlockTeamCtx", res, err)
	res, err = BlockTBBCtx(nil, g, 0, pool, sched.SimplePartitioner, 8, 0, true)
	check("BlockTBBCtx", res, err)
	res, err = BagCilkCtx(nil, g, 0, pool, 0)
	check("BagCilkCtx", res, err)
	res, err = TLSTeamCtx(nil, g, 0, team, sched.ForOptions{})
	check("TLSTeamCtx", res, err)
}

// TestBagCilkCtxCancelled checks an already-cancelled context aborts the
// bag traversal before it visits anything beyond the first level.
func TestBagCilkCtxCancelled(t *testing.T) {
	g := gen.Grid2D(40, 40)
	pool := sched.NewPool(4)
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := BagCilkCtx(ctx, g, 0, pool, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if res.Processed != 0 {
		t.Errorf("processed %d vertices under a pre-cancelled context", res.Processed)
	}
}
