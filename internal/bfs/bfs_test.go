package bfs

import (
	"testing"
	"testing/quick"

	"micgraph/internal/gen"
	"micgraph/internal/graph"
	"micgraph/internal/sched"
	"micgraph/internal/xrand"
)

func randomGraph(seed uint64, n, m int) *graph.Graph {
	r := xrand.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func TestSequentialChain(t *testing.T) {
	g := gen.Chain(6)
	res := Sequential(g, 0)
	if res.NumLevels != 6 {
		t.Errorf("levels = %d, want 6", res.NumLevels)
	}
	for v, l := range res.Levels {
		if int(l) != v {
			t.Errorf("level[%d] = %d", v, l)
		}
	}
	if res.Processed != 6 || res.Duplicates != 0 {
		t.Errorf("processed=%d dup=%d", res.Processed, res.Duplicates)
	}
	for l, w := range res.Widths {
		if w != 1 {
			t.Errorf("width[%d] = %d, want 1", l, w)
		}
	}
}

func TestSequentialDisconnected(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	g := b.Build()
	res := Sequential(g, 0)
	if res.NumLevels != 2 {
		t.Errorf("NumLevels = %d, want 2", res.NumLevels)
	}
	for v := 2; v < 5; v++ {
		if res.Levels[v] != Unvisited {
			t.Errorf("unreachable vertex %d has level %d", v, res.Levels[v])
		}
	}
}

func TestSequentialEmpty(t *testing.T) {
	res := Sequential(graph.NewBuilder(0).Build(), 0)
	if res.NumLevels != 0 || len(res.Levels) != 0 {
		t.Errorf("empty graph: %+v", res)
	}
}

func TestValidateDetectsWrongLevels(t *testing.T) {
	g := gen.Chain(4)
	bad := []int32{0, 1, 1, 2}
	if err := Validate(g, 0, bad); err == nil {
		t.Error("wrong level not detected")
	}
	if err := Validate(g, 0, []int32{0, 1}); err == nil {
		t.Error("length mismatch not detected")
	}
}

// allVariants runs every parallel BFS variant on (g, source) and validates
// each against the sequential reference.
func allVariants(t *testing.T, g *graph.Graph, source int32, team *sched.Team, pool *sched.Pool) {
	t.Helper()
	ref := Sequential(g, source)
	variants := []struct {
		name string
		run  func() Result
	}{
		{"OpenMP-Block", func() Result {
			return BlockTeam(g, source, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 4}, 8, false)
		}},
		{"OpenMP-Block-relaxed", func() Result {
			return BlockTeam(g, source, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 4}, 8, true)
		}},
		{"OpenMP-Block-static", func() Result {
			return BlockTeam(g, source, team, sched.ForOptions{Policy: sched.Static}, 8, false)
		}},
		{"TBB-Block", func() Result {
			return BlockTBB(g, source, pool, sched.SimplePartitioner, 8, 8, false)
		}},
		{"TBB-Block-relaxed", func() Result {
			return BlockTBB(g, source, pool, sched.SimplePartitioner, 8, 8, true)
		}},
		{"CilkPlus-Bag-relaxed", func() Result { return BagCilk(g, source, pool, 16) }},
		{"OpenMP-TLS", func() Result {
			return TLSTeam(g, source, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 4})
		}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			res := v.run()
			if res.NumLevels != ref.NumLevels {
				t.Errorf("NumLevels = %d, want %d", res.NumLevels, ref.NumLevels)
			}
			for u := range ref.Levels {
				if res.Levels[u] != ref.Levels[u] {
					t.Fatalf("vertex %d: level %d, want %d", u, res.Levels[u], ref.Levels[u])
				}
			}
			if res.Processed < ref.Processed {
				t.Errorf("processed %d < reachable %d", res.Processed, ref.Processed)
			}
			if res.Duplicates < 0 {
				t.Errorf("negative duplicates %d", res.Duplicates)
			}
			for l := range ref.Widths {
				if res.Widths[l] != ref.Widths[l] {
					t.Errorf("width[%d] = %d, want %d", l, res.Widths[l], ref.Widths[l])
				}
			}
		})
	}
}

func TestParallelVariantsSmallGraphs(t *testing.T) {
	team := sched.NewTeam(4)
	defer team.Close()
	pool := sched.NewPool(4)
	defer pool.Close()

	t.Run("chain", func(t *testing.T) { allVariants(t, gen.Chain(50), 0, team, pool) })
	t.Run("complete", func(t *testing.T) { allVariants(t, gen.Complete(40), 3, team, pool) })
	t.Run("grid", func(t *testing.T) { allVariants(t, gen.Grid2D(17, 23), 5, team, pool) })
	t.Run("ring-of-cliques", func(t *testing.T) { allVariants(t, gen.RingOfCliques(20, 6), 0, team, pool) })
	t.Run("random", func(t *testing.T) { allVariants(t, randomGraph(77, 200, 700), 10, team, pool) })
	t.Run("single-vertex", func(t *testing.T) { allVariants(t, graph.NewBuilder(1).Build(), 0, team, pool) })
}

func TestParallelVariantsMesh(t *testing.T) {
	cfg := gen.Scaled(mustCfg(t, "pwtk"), 16)
	g, err := gen.Mesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	team := sched.NewTeam(8)
	defer team.Close()
	pool := sched.NewPool(8)
	defer pool.Close()
	allVariants(t, g, int32(g.NumVertices()/2), team, pool)
}

func mustCfg(t *testing.T, name string) gen.MeshConfig {
	t.Helper()
	c, err := gen.SuiteConfig(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBlockBFSProperty(t *testing.T) {
	team := sched.NewTeam(4)
	defer team.Close()
	property := func(seed uint64, nRaw, mRaw uint16, relaxed bool) bool {
		n := int(nRaw%150) + 1
		m := int(mRaw % 600)
		g := randomGraph(seed, n, m)
		src := int32(int(seed % uint64(n)))
		res := BlockTeam(g, src, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 3}, 4, relaxed)
		return Validate(g, src, res.Levels) == nil
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBagBFSProperty(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	property := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%120) + 1
		m := int(mRaw % 500)
		g := randomGraph(seed, n, m)
		src := int32(int(seed % uint64(n)))
		res := BagCilk(g, src, pool, 8)
		return Validate(g, src, res.Levels) == nil
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLockedVariantsNeverDuplicate(t *testing.T) {
	team := sched.NewTeam(6)
	defer team.Close()
	g := randomGraph(5, 300, 2000)
	res := BlockTeam(g, 0, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 2}, 4, false)
	if res.Duplicates != 0 {
		t.Errorf("locked block BFS processed %d duplicates", res.Duplicates)
	}
	tls := TLSTeam(g, 0, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 2})
	var reached int64
	for _, w := range tls.Widths {
		reached += w
	}
	if tls.Processed != reached {
		t.Errorf("TLS BFS processed %d, reached %d: duplicates in locked variant", tls.Processed, reached)
	}
}
