package bfs

import (
	"context"
	"reflect"
	"testing"
	"time"

	"micgraph/internal/gen"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

// fakeTicker is a deterministic phase clock: each read advances 1 µs.
func fakeTicker() func() time.Time {
	tick := int64(0)
	return func() time.Time {
		tick++
		return time.Unix(0, tick*1000)
	}
}

// TestLevelSamplesBitDeterministic: single-worker instrumented BFS runs
// under a fake clock must produce byte-identical per-level samples across
// the TLS-queue, layered, and bag variants — durations included. This is
// the end-to-end guarantee behind the wallclock analyzer.
func TestLevelSamplesBitDeterministic(t *testing.T) {
	g := gen.RMAT(10, 8, 0.45, 0.22, 0.22, 42)
	source := int32(g.NumVertices() / 2)

	variants := map[string]func(ctx context.Context) error{
		"tlsqueue": func(ctx context.Context) error {
			team := sched.NewTeam(1)
			defer team.Close()
			_, err := TLSTeamCtx(ctx, g, source, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 64})
			return err
		},
		"layered-team": func(ctx context.Context) error {
			team := sched.NewTeam(1)
			defer team.Close()
			_, err := BlockTeamCtx(ctx, g, source, team, sched.ForOptions{Policy: sched.Dynamic, Chunk: 64}, 128, true)
			return err
		},
		"bag": func(ctx context.Context) error {
			pool := sched.NewPool(1)
			defer pool.Close()
			_, err := BagCilkCtx(ctx, g, source, pool, 64)
			return err
		},
	}
	for name, kernel := range variants {
		t.Run(name, func(t *testing.T) {
			run := func() []telemetry.PhaseSample {
				rec := telemetry.NewMemRecorder()
				ctx := telemetry.WithRecorder(context.Background(), telemetry.WithClock(rec, fakeTicker()))
				if err := kernel(ctx); err != nil {
					t.Fatal(err)
				}
				return rec.Samples()
			}
			a, b := run(), run()
			if len(a) == 0 {
				t.Fatal("no samples recorded")
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("instrumented runs differ:\n%v\n%v", a, b)
			}
		})
	}
}
