package bfs

import (
	"context"

	"micgraph/internal/graph"
	"micgraph/internal/sched"
)

// TLSTeam runs the SNAP v0.4-style layered BFS (the paper's OpenMP-TLS):
// each thread accumulates next-level vertices in a thread-local queue to
// avoid shared-queue synchronisation, the local queues are concatenated into
// a global queue at each level barrier, and a vertex is "locked" before
// insertion so it enters exactly one local queue. The paper's small
// improvement is included: the level is checked before attempting the lock,
// skipping the expensive operation for already-visited vertices.
//
// The implementation lives on Scratch (scratch.go); this entry point runs
// on a throwaway Scratch, keeping allocate-per-call semantics.
func TLSTeam(g *graph.Graph, source int32, team *sched.Team, opts sched.ForOptions) Result {
	res, err := TLSTeamCtx(nil, g, source, team, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// TLSTeamCtx is TLSTeam with cooperative cancellation at chunk-claim
// boundaries and between levels; on failure it returns the partial
// traversal state alongside the error.
func TLSTeamCtx(ctx context.Context, g *graph.Graph, source int32, team *sched.Team, opts sched.ForOptions) (Result, error) {
	return NewScratch().TLSTeam(ctx, g, source, team, opts)
}
