package bfs

import (
	"context"
	"sync/atomic"
	"time"

	"micgraph/internal/graph"
	"micgraph/internal/sched"
	"micgraph/internal/telemetry"
)

// TLSTeam runs the SNAP v0.4-style layered BFS (the paper's OpenMP-TLS):
// each thread accumulates next-level vertices in a thread-local queue to
// avoid shared-queue synchronisation, the local queues are concatenated into
// a global queue at each level barrier, and a vertex is "locked" before
// insertion so it enters exactly one local queue. The paper's small
// improvement is included: the level is checked before attempting the lock,
// skipping the expensive operation for already-visited vertices.
func TLSTeam(g *graph.Graph, source int32, team *sched.Team, opts sched.ForOptions) Result {
	res, err := TLSTeamCtx(nil, g, source, team, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// TLSTeamCtx is TLSTeam with cooperative cancellation at chunk-claim
// boundaries and between levels; on failure it returns the partial
// traversal state alongside the error.
func TLSTeamCtx(ctx context.Context, g *graph.Graph, source int32, team *sched.Team, opts sched.ForOptions) (Result, error) {
	n := g.NumVertices()
	levels := makeLevels(n)
	res := Result{Levels: levels}
	if n == 0 {
		return res, nil
	}
	levels[source] = 0

	workers := team.Workers()
	locals := make([][]int32, workers)
	cur := []int32{source}
	next := make([]int32, 0, n)
	rec := telemetry.FromContext(ctx)

	var processed int64
	maxLevel := int32(0)
	for lv := int32(1); len(cur) > 0; lv++ {
		maxLevel = lv - 1
		processed += int64(len(cur))
		var edges int64
		var levelStart time.Time
		if telemetry.Active(rec) {
			edges = sliceEdges(g, cur)
			levelStart = telemetry.Now(rec)
		}
		for w := range locals {
			locals[w] = locals[w][:0]
		}
		curSnapshot := cur
		err := team.ForCtx(ctx, len(curSnapshot), opts, func(lo, hi, w int) {
			local := locals[w]
			for i := lo; i < hi; i++ {
				v := curSnapshot[i]
				for _, u := range g.Adj(v) {
					// Check before locking (the paper's improvement), then
					// claim with CAS — the lock-free equivalent of SNAP's
					// per-vertex lock.
					if atomic.LoadInt32(&levels[u]) != Unvisited {
						continue
					}
					if claimLocked(levels, u, lv) {
						local = append(local, u)
					}
				}
			}
			locals[w] = local
		})
		if err != nil {
			// Partial level: vertices may already be claimed at level lv.
			res.NumLevels = int(lv) + 1
			res.Processed = processed
			res.Widths = widthsOf(levels, res.NumLevels)
			return res, err
		}
		// Merge local queues into the global queue (level barrier).
		next = next[:0]
		for _, local := range locals {
			next = append(next, local...)
		}
		if telemetry.Active(rec) {
			s := levelSample(lv-1, int64(len(curSnapshot)), edges, int64(len(next)))
			s.Duration = telemetry.Since(rec, levelStart)
			rec.Record(s)
		}
		cur, next = next, cur
	}
	res.NumLevels = int(maxLevel) + 1
	res.Processed = processed
	res.Widths = widthsOf(levels, res.NumLevels)
	return res, nil
}
