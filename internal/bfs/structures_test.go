package bfs

import (
	"sync"
	"testing"
	"testing/quick"

	"micgraph/internal/sched"
)

func TestBlockQueueSingleWriter(t *testing.T) {
	q := NewBlockQueue(100, 8)
	w := q.NewWriter()
	for v := int32(0); v < 20; v++ {
		w.Push(v)
	}
	w.Flush()
	main, spill := q.Entries()
	if len(spill) != 0 {
		t.Errorf("unexpected spill of %d", len(spill))
	}
	// 20 values in blocks of 8 -> 3 blocks reserved = 24 slots, 4 sentinels.
	if len(main) != 24 {
		t.Errorf("reserved %d slots, want 24", len(main))
	}
	var got []int32
	sentinels := 0
	for _, v := range main {
		if v == Sentinel {
			sentinels++
		} else {
			got = append(got, v)
		}
	}
	if len(got) != 20 || sentinels != 4 {
		t.Errorf("%d values + %d sentinels, want 20 + 4", len(got), sentinels)
	}
	if w.BlockGrabs != 3 {
		t.Errorf("BlockGrabs = %d, want 3", w.BlockGrabs)
	}
}

func TestBlockQueueConcurrentWritersNoLoss(t *testing.T) {
	const workers, perWorker = 8, 1000
	q := NewBlockQueue(workers*perWorker+workers*16, 16)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			wr := q.NewWriter()
			for i := 0; i < perWorker; i++ {
				wr.Push(int32(w*perWorker + i))
			}
			wr.Flush()
		}()
	}
	wg.Wait()
	main, spill := q.Entries()
	seen := make(map[int32]bool)
	for _, v := range append(append([]int32{}, main...), spill...) {
		if v == Sentinel {
			continue
		}
		if seen[v] {
			t.Fatalf("value %d appears twice", v)
		}
		seen[v] = true
	}
	if len(seen) != workers*perWorker {
		t.Errorf("recovered %d values, want %d", len(seen), workers*perWorker)
	}
}

func TestBlockQueueSpillOverflow(t *testing.T) {
	// Capacity for only one block: everything after it must spill, not drop.
	q := NewBlockQueue(4, 4)
	w := q.NewWriter()
	for v := int32(0); v < 50; v++ {
		w.Push(v)
	}
	w.Flush()
	main, spill := q.Entries()
	total := 0
	for _, v := range main {
		if v != Sentinel {
			total++
		}
	}
	total += len(spill)
	if total != 50 {
		t.Errorf("recovered %d of 50 pushed values after overflow", total)
	}
}

func TestBlockQueueResetReuse(t *testing.T) {
	q := NewBlockQueue(64, 8)
	for round := 0; round < 3; round++ {
		w := q.NewWriter()
		for v := int32(0); v < 10; v++ {
			w.Push(v)
		}
		w.Flush()
		if q.Len() == 0 {
			t.Fatal("queue empty after pushes")
		}
		q.Reset()
		if q.Len() != 0 {
			t.Fatal("queue not empty after Reset")
		}
	}
}

func TestBlockQueuePanicsOnBadBlockSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for block size 0")
		}
	}()
	NewBlockQueue(10, 0)
}

func TestPennantUnionSplit(t *testing.T) {
	mk := func(rank int) *pennantNode {
		// Build a rank-`rank` pennant by repeated union of singletons.
		nodes := make([]*pennantNode, 1<<rank)
		for i := range nodes {
			nodes[i] = &pennantNode{items: []int32{int32(i)}}
		}
		for len(nodes) > 1 {
			var next []*pennantNode
			for i := 0; i < len(nodes); i += 2 {
				next = append(next, pennantUnion(nodes[i], nodes[i+1]))
			}
			nodes = next
		}
		return nodes[0]
	}
	p := mk(4)
	if n := countNode(p); n != 16 {
		t.Fatalf("rank-4 pennant holds %d items, want 16", n)
	}
	y := pennantSplit(p)
	if countNode(p) != 8 || countNode(y) != 8 {
		t.Errorf("split sizes %d + %d, want 8 + 8", countNode(p), countNode(y))
	}
	back := pennantUnion(p, y)
	if countNode(back) != 16 {
		t.Errorf("re-union holds %d, want 16", countNode(back))
	}
}

func TestBagInsertMergeCount(t *testing.T) {
	property := func(aRaw, bRaw uint16) bool {
		na, nb := int(aRaw%500), int(bRaw%500)
		a, b := NewBag(4), NewBag(4)
		for i := 0; i < na; i++ {
			a.InsertChunk([]int32{int32(i)})
		}
		for i := 0; i < nb; i++ {
			b.InsertChunk([]int32{int32(1000 + i)})
		}
		if a.Count() != int64(na) || b.Count() != int64(nb) {
			return false
		}
		a.Merge(b)
		return a.Count() == int64(na+nb) && b.Empty()
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBagWalkVisitsAll(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	bag := NewBag(8)
	const n = 1234
	var chunk []int32
	for i := int32(0); i < n; i++ {
		chunk = append(chunk, i)
		if len(chunk) == 8 {
			bag.InsertChunk(chunk)
			chunk = nil
		}
	}
	bag.InsertChunk(chunk)

	var mu sync.Mutex
	seen := make(map[int32]int)
	bag.Walk(pool, func(c *sched.Ctx, items []int32) {
		mu.Lock()
		for _, v := range items {
			seen[v]++
		}
		mu.Unlock()
	})
	if len(seen) != n {
		t.Fatalf("visited %d distinct values, want %d", len(seen), n)
	}
	for v, times := range seen {
		if times != 1 {
			t.Fatalf("value %d visited %d times", v, times)
		}
	}
}

func TestBagEmpty(t *testing.T) {
	b := NewBag(4)
	if !b.Empty() || b.Count() != 0 {
		t.Error("fresh bag not empty")
	}
	b.InsertChunk(nil) // inserting nothing keeps it empty
	if !b.Empty() {
		t.Error("empty chunk made bag non-empty")
	}
}
