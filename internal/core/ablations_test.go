package core

import (
	"testing"

	"micgraph/internal/mic"
)

func TestAblBlockSizeUnimodal(t *testing.T) {
	s := sharedSuite(t)
	e := AblBlockSize(s, mic.KNF())
	if len(e.Series) != 3 {
		t.Fatalf("%d series", len(e.Series))
	}
	for _, series := range e.Series {
		// Huge blocks must always lose badly (no parallelism inside a
		// level), the §IV-C trade-off.
		last := series.Values[len(series.Values)-1]
		_, peak := series.Peak()
		if last > peak/1.5 {
			t.Errorf("%s: block 256 speedup %v too close to peak %v", series.Label, last, peak)
		}
	}
}

func TestAblChunkSizeTradeoff(t *testing.T) {
	s := sharedSuite(t)
	e := AblChunkSize(s, mic.KNF())
	for _, series := range e.Series {
		// Very large chunks destroy load balance at high thread counts.
		if series.Label == "121 threads" {
			at1000 := series.Values[len(series.Values)-1]
			_, peak := series.Peak()
			if at1000 > 0.8*peak {
				t.Errorf("chunk 1000 speedup %v not clearly below peak %v", at1000, peak)
			}
		}
	}
}

func TestAblSMTStaircase(t *testing.T) {
	s := sharedSuite(t)
	e := AblSMT(s, mic.KNF())
	if len(e.Series) != 4 {
		t.Fatalf("%d series, want 4 SMT widths", len(e.Series))
	}
	oneWay := seriesByLabel(t, e, "1-way SMT")
	fourWay := seriesByLabel(t, e, "4-way SMT")
	// Without SMT the memory-bound kernel cannot scale past the core count.
	if oneWay.At(121) > 32 {
		t.Errorf("1-way SMT speedup %v exceeds the 31 cores", oneWay.At(121))
	}
	// With 4-way SMT it must go far beyond — the paper's headline.
	if fourWay.At(121) < 2*oneWay.At(121) {
		t.Errorf("4-way SMT speedup %v not well above 1-way %v", fourWay.At(121), oneWay.At(121))
	}
	// Monotone in SMT width at full subscription.
	prev := 0.0
	for _, series := range e.Series {
		v := series.At(121)
		if v < prev-1e-9 {
			t.Errorf("speedup decreased with more SMT ways: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestAblCacheBonusSuperlinearity(t *testing.T) {
	s := sharedSuite(t)
	e := AblCacheBonus(s, mic.KNF())
	on := seriesByLabel(t, e, "bonus on")
	off := seriesByLabel(t, e, "bonus off")
	if on.At(121) <= off.At(121) {
		t.Errorf("bonus on (%v) not above bonus off (%v)", on.At(121), off.At(121))
	}
	if off.At(121) > 121.5 {
		t.Errorf("without the bonus, speedup %v must not exceed the thread count", off.At(121))
	}
}

func TestAblOrderingRCMRestoresLocality(t *testing.T) {
	s := sharedSuite(t)
	e := AblOrdering(s, mic.KNF())
	natural := seriesByLabel(t, e, "natural")
	shuffled := seriesByLabel(t, e, "shuffled")
	rcm := seriesByLabel(t, e, "shuffled+RCM")
	// 1-thread relative times: shuffled slower than natural; RCM close to
	// natural again.
	if shuffled.At(1) <= natural.At(1) {
		t.Errorf("shuffled serial time %v not above natural %v", shuffled.At(1), natural.At(1))
	}
	if rcm.At(1) > (natural.At(1)+shuffled.At(1))/2 {
		t.Errorf("RCM serial time %v did not recover locality (natural %v, shuffled %v)",
			rcm.At(1), natural.At(1), shuffled.At(1))
	}
}

func TestAblModelVsSim(t *testing.T) {
	s := sharedSuite(t)
	e := AblModelVsSim(s, mic.KNF())
	model := seriesByLabel(t, e, "analytical model")
	stripped := seriesByLabel(t, e, "simulator, overheads off")
	full := seriesByLabel(t, e, "simulator, full")
	// The stripped simulator must sit between the full simulator and the
	// model at high thread counts (it removes overheads but keeps real
	// per-vertex cost variation).
	for _, th := range []int{61, 121} {
		if stripped.At(th) < full.At(th)-1e-9 {
			t.Errorf("at %d threads stripped sim %v below full sim %v", th, stripped.At(th), full.At(th))
		}
		if stripped.At(th) > model.At(th)*1.15 {
			t.Errorf("at %d threads stripped sim %v well above the model %v", th, stripped.At(th), model.At(th))
		}
	}
}

func TestAblationsCollection(t *testing.T) {
	s := sharedSuite(t)
	exps := Ablations(s, mic.KNF())
	if len(exps) != 6 {
		t.Fatalf("%d ablations, want 6", len(exps))
	}
	knf, host := mic.KNF(), mic.HostXeon()
	for _, e := range exps {
		if len(e.Series) == 0 {
			t.Errorf("%s: no series", e.ID)
		}
		got, err := ByID(e.ID, s, knf, host)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%s): %v", e.ID, err)
		}
	}
}

func TestExtraRMAT(t *testing.T) {
	s := sharedSuite(t)
	e := ExtraRMAT(s, mic.KNF())
	if len(e.Series) != 3 {
		t.Fatalf("%d series", len(e.Series))
	}
	coloring := seriesByLabel(t, e, "coloring OpenMP-dynamic")
	bfsImpl := seriesByLabel(t, e, "BFS Block-relaxed")
	model := seriesByLabel(t, e, "BFS model")
	// Power-law hubs cap both kernels far below the FEM meshes: a single
	// indivisible hub vertex bounds every phase (the chunking assumptions
	// of the paper's kernels break on this graph class).
	if _, peak := coloring.Peak(); peak > 40 {
		t.Errorf("RMAT coloring peak %v suspiciously high; hub imbalance missing", peak)
	}
	// The analytical model ignores per-vertex cost variation, so it vastly
	// overestimates what the implementation can do here.
	if model.At(121) < 2*bfsImpl.At(121) {
		t.Errorf("model %v not far above hub-bound impl %v", model.At(121), bfsImpl.At(121))
	}
}

func TestExtraKNCScalesPastKNF(t *testing.T) {
	s := sharedSuite(t)
	e := ExtraKNC(s, mic.KNC())
	knc := seriesByLabel(t, e, "OpenMP-dynamic on KNC")
	knf := seriesByLabel(t, e, "OpenMP-dynamic on KNF")
	// KNF saturates at its 124 hardware threads; the projected KNC keeps
	// scaling on the memory-bound kernel.
	if knc.At(240) <= knf.At(240) {
		t.Errorf("KNC at 240 threads (%v) not above saturated KNF (%v)", knc.At(240), knf.At(240))
	}
	if knc.At(240) <= knc.At(120) {
		t.Errorf("KNC did not scale past 120 threads: %v vs %v", knc.At(240), knc.At(120))
	}
	// KNF is clamped to its 124 hardware threads: flat beyond them.
	if knf.At(160) != knf.At(240) {
		t.Errorf("KNF not saturated beyond its hardware threads: %v at 160 vs %v at 240",
			knf.At(160), knf.At(240))
	}
}
