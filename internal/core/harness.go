package core

import (
	"context"
	"fmt"
	"math"

	"micgraph/internal/fault"
	"micgraph/internal/mic"
	"micgraph/internal/telemetry"
)

// Harness controls the resilience of experiment sweeps: an optional
// deadline/cancellation context and a bounded retry budget for transient
// injected faults. A nil *Harness (the default on a Suite) behaves like an
// unbounded, no-retry harness, so existing callers are unaffected.
//
// Failure containment is per cell — one (graph, config, threads) point of a
// sweep. A cell that panics (e.g. an injected worker fault surfacing as a
// *sched.PanicError) is recorded as a CellError annotation on the
// Experiment and excluded from the geometric mean; every other cell still
// runs. Transient faults (fault.IsTransient) are retried up to Retries
// times before being recorded.
type Harness struct {
	Ctx     context.Context
	Retries int

	// Telemetry makes every sweep run with per-cell observation: each
	// successful (graph, config, threads) cell contributes a CellTelemetry
	// record (simulated time + mic.SimStats) to its Experiment. Off by
	// default; the uninstrumented sweep path is unchanged.
	Telemetry bool

	// Counters, when set, receives harness-level events: currently each
	// cell retry increments telemetry.Retries on worker 0. Nil disables.
	Counters *telemetry.Counters
}

// telemetryOn reports whether per-cell telemetry collection is enabled.
// Nil-safe.
func (h *Harness) telemetryOn() bool { return h != nil && h.Telemetry }

// context returns the harness context (Background when unset).
func (h *Harness) context() context.Context {
	if h == nil || h.Ctx == nil {
		return context.Background()
	}
	return h.Ctx
}

// cancelled returns the context error once the deadline has passed or the
// run was cancelled, nil otherwise. Nil-safe.
func (h *Harness) cancelled() error {
	if h == nil || h.Ctx == nil {
		return nil
	}
	return h.Ctx.Err()
}

func (h *Harness) retries() int {
	if h == nil || h.Retries < 0 {
		return 0
	}
	return h.Retries
}

// cell evaluates one sweep cell with panic containment and bounded retry.
// It returns the value, the number of attempts made, and the final error
// (nil on success). Only transient faults are retried; a deterministic
// failure is reported after the first attempt.
func (h *Harness) cell(fn func() float64) (float64, int, error) {
	attempts := 0
	for {
		attempts++
		v, err := protect(fn)
		if err == nil {
			return v, attempts, nil
		}
		if attempts > h.retries() || !fault.IsTransient(err) {
			return math.NaN(), attempts, err
		}
		if h != nil {
			h.Counters.Inc(0, telemetry.Retries)
		}
	}
}

// protect runs fn, converting a panic into an error.
func protect(fn func() float64) (v float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("core: cell panicked: %v", r)
			}
		}
	}()
	return fn(), nil
}

// CellError annotates one failed cell of a sweep (or a whole failed
// experiment, when Graph is -1). The sweep it came from still carries every
// cell that succeeded.
type CellError struct {
	Experiment string // experiment ID, filled by the experiment constructor
	Series     string // config/series label, "" for baseline or whole-run errors
	Graph      int    // suite graph index; -1 when not cell-specific
	Threads    int    // thread count of the failed cell; 0 when not cell-specific
	Attempts   int    // how many times the cell was tried
	Err        error
}

// Error formats the annotation.
func (e CellError) Error() string {
	where := e.Experiment
	if e.Series != "" {
		where += "/" + e.Series
	}
	if e.Graph >= 0 {
		where += fmt.Sprintf(" graph=%d t=%d", e.Graph, e.Threads)
	}
	if e.Attempts > 1 {
		return fmt.Sprintf("%s: %v (after %d attempts)", where, e.Err, e.Attempts)
	}
	return fmt.Sprintf("%s: %v", where, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e CellError) Unwrap() error { return e.Err }

// stamp sets the experiment ID on a batch of cell errors.
func stamp(id string, errs []CellError) []CellError {
	for i := range errs {
		errs[i].Experiment = id
	}
	return errs
}

// CellTelemetry is the per-cell observation of one successful sweep point:
// which cell it was, how many attempts it took, the simulated time, and the
// simulator's aggregate stats (chunks, steals, stall cycles, bound hits).
// Collected only when the harness runs with Telemetry enabled.
type CellTelemetry struct {
	Experiment string       `json:"experiment,omitempty"`
	Series     string       `json:"series"`
	Graph      int          `json:"graph"`
	Threads    int          `json:"threads"`
	Attempts   int          `json:"attempts,omitempty"`
	SimTime    float64      `json:"sim_time"`
	Stats      mic.SimStats `json:"stats"`
}

// stampCells sets the experiment ID on a batch of telemetry records.
func stampCells(id string, cells []CellTelemetry) []CellTelemetry {
	for i := range cells {
		cells[i].Experiment = id
	}
	return cells
}

// AllIDs lists every experiment ID ByID accepts, in report order.
func AllIDs() []string {
	return []string{
		"table1",
		"fig1a", "fig1b", "fig1c", "fig2",
		"fig3a", "fig3b", "fig3c",
		"fig4a", "fig4b", "fig4c", "fig4d",
		"abl-blocksize", "abl-chunk", "abl-smt",
		"abl-bonus", "abl-ordering", "abl-model",
		"abl-direction",
		"extra-rmat", "extra-knc",
	}
}

// RunByID is ByID with experiment-level containment: an experiment that
// fails outright (panic during trace construction, cancelled context)
// still returns an *Experiment, carrying the failure as an error
// annotation instead of series data. The error return is reserved for
// unknown IDs.
func RunByID(id string, s *Suite, knf, host *mic.Machine) (*Experiment, error) {
	if err := s.Harness.cancelled(); err != nil {
		return &Experiment{ID: id, Title: id,
			Errors: []CellError{{Experiment: id, Graph: -1, Err: err}}}, nil
	}
	exp, runErr := protectExp(func() (*Experiment, error) { return ByID(id, s, knf, host) })
	if runErr != nil {
		if exp == nil {
			return nil, runErr // unknown experiment ID
		}
		exp.Errors = append(exp.Errors, CellError{Experiment: id, Graph: -1, Err: runErr})
	}
	return exp, nil
}

// protectExp runs an experiment constructor, containing panics. A panic
// returns an empty placeholder experiment plus the panic as an error; a
// plain error (unknown ID) returns (nil, err) untouched.
func protectExp(fn func() (*Experiment, error)) (exp *Experiment, err error) {
	defer func() {
		if r := recover(); r != nil {
			exp = &Experiment{}
			if e, ok := r.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("core: experiment panicked: %v", r)
			}
		}
	}()
	return fn()
}

// RunMany runs the given experiments (all of them when ids is empty) with
// per-experiment containment: one poisoned or timed-out experiment is
// returned as an annotated placeholder while the rest run to completion.
// Unknown IDs are reported the same way, so the result always has one
// entry per requested ID.
func RunMany(ids []string, s *Suite, knf, host *mic.Machine) []*Experiment {
	if len(ids) == 0 {
		ids = AllIDs()
	}
	out := make([]*Experiment, 0, len(ids))
	for _, id := range ids {
		exp, err := RunByID(id, s, knf, host)
		if err != nil {
			exp = &Experiment{ID: id, Title: id,
				Errors: []CellError{{Experiment: id, Graph: -1, Err: err}}}
		}
		if exp.ID == "" {
			exp.ID, exp.Title = id, id
		}
		out = append(out, exp)
	}
	return out
}
