package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"micgraph/internal/mic"
)

// TestSpeedupCurvesCellTelemetry: with Harness.Telemetry on, every sweep
// cell yields a CellTelemetry record with populated simulator stats; with it
// off (or no harness), none do.
func TestSpeedupCurvesCellTelemetry(t *testing.T) {
	threads := []int{1, 11}
	traceFor := func(gi, ci, tt int) *mic.Trace { return testTrace(300) }

	h := &Harness{Telemetry: true}
	series, errs, cells := speedupCurves(h, mic.KNF(), testConfigs, []string{"", ""},
		2, threads, traceFor)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := len(testConfigs) * 2 * len(threads)
	if len(cells) != want {
		t.Fatalf("%d telemetry cells, want %d (configs × graphs × threads)", len(cells), want)
	}
	bySeriesGraphThreads := map[[2]string]bool{}
	for _, c := range cells {
		if c.SimTime <= 0 {
			t.Errorf("cell %+v has non-positive sim time", c)
		}
		if c.Stats.Phases == 0 || c.Stats.Chunks == 0 {
			t.Errorf("cell %+v has empty simulator stats", c)
		}
		if c.Attempts != 1 {
			t.Errorf("cell %+v attempts = %d, want 1 for a clean sweep", c, c.Attempts)
		}
		bySeriesGraphThreads[[2]string{c.Series, ""}] = true
	}
	for _, s := range series {
		if !bySeriesGraphThreads[[2]string{s.Label, ""}] {
			t.Errorf("no telemetry cells for series %q", s.Label)
		}
	}

	_, _, none := speedupCurves(nil, mic.KNF(), testConfigs, []string{"", ""},
		2, threads, traceFor)
	if len(none) != 0 {
		t.Errorf("telemetry off but %d cells recorded", len(none))
	}
}

// TestStampCells labels a batch with its experiment ID.
func TestStampCells(t *testing.T) {
	cells := stampCells("fig2", []CellTelemetry{{Series: "a"}, {Series: "b"}})
	for _, c := range cells {
		if c.Experiment != "fig2" {
			t.Errorf("cell %+v not stamped", c)
		}
	}
}

// TestWriteJSON: the JSON report round-trips series, notes, flattened error
// strings and telemetry cells.
func TestWriteJSON(t *testing.T) {
	exp := &Experiment{
		ID:    "fig2",
		Title: "test experiment",
		Series: []Series{
			{Label: "OpenMP", Threads: []int{1, 2}, Values: []float64{1, 1.9}},
		},
		Notes:  "a note",
		Errors: []CellError{{Series: "OpenMP", Graph: 1, Threads: 2, Attempts: 1, Err: errors.New("boom")}},
		Cells: []CellTelemetry{
			{Experiment: "fig2", Series: "OpenMP", Graph: 0, Threads: 1, SimTime: 10,
				Stats: mic.SimStats{Phases: 1, Chunks: 3}},
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*Experiment{exp}); err != nil {
		t.Fatal(err)
	}
	var got []struct {
		ID     string `json:"id"`
		Series []struct {
			Label  string    `json:"label"`
			Values []float64 `json:"values"`
		} `json:"series"`
		Errors []string        `json:"errors"`
		Cells  []CellTelemetry `json:"cells"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 1 || got[0].ID != "fig2" {
		t.Fatalf("round-trip = %+v", got)
	}
	if len(got[0].Series) != 1 || got[0].Series[0].Values[1] != 1.9 {
		t.Errorf("series lost: %+v", got[0].Series)
	}
	if len(got[0].Errors) != 1 || !strings.Contains(got[0].Errors[0], "OpenMP") {
		t.Errorf("errors lost or unformatted: %v", got[0].Errors)
	}
	if len(got[0].Cells) != 1 || got[0].Cells[0].Stats.Chunks != 3 {
		t.Errorf("cells lost: %+v", got[0].Cells)
	}
}
