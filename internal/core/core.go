// Package core is the experiment engine: it reproduces every table and
// figure of the paper's evaluation (§V) by generating the graph suite,
// building kernel cost traces, sweeping thread counts on the simulated
// machines, and reporting speedup series exactly as the paper does —
// per-graph speedups against the fastest 1-thread configuration, combined
// across graphs by geometric mean.
package core

import (
	"fmt"
	"math"

	"micgraph/internal/gen"
	"micgraph/internal/graph"
	"micgraph/internal/mic"
)

// ThreadSweep returns the paper's x-axis: 1 to 121 threads in increments of
// 10 ("a number of threads from 1 to 121 by increment of 10", §V-B).
func ThreadSweep() []int {
	out := []int{1}
	for t := 11; t <= 121; t += 10 {
		out = append(out, t)
	}
	return out
}

// HostSweep returns the host x-axis for Figure 4(d): 1..24 threads.
func HostSweep() []int {
	out := make([]int, 24)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// Series is one curve of a figure.
type Series struct {
	Label   string
	Threads []int
	Values  []float64
}

// Peak returns the maximum value and the thread count where it occurs.
func (s *Series) Peak() (threads int, value float64) {
	for i, v := range s.Values {
		if v > value {
			value = v
			threads = s.Threads[i]
		}
	}
	return
}

// At returns the series value at the given thread count (0 if absent).
func (s *Series) At(t int) float64 {
	for i, th := range s.Threads {
		if th == t {
			return s.Values[i]
		}
	}
	return 0
}

// Experiment is one reproduced table or figure.
type Experiment struct {
	ID     string // "table1", "fig1a", ... "fig4d"
	Title  string
	Series []Series
	Rows   []TableRow // table experiments only
	Notes  string

	// Errors annotates cells (or the whole experiment) that failed under
	// the harness's containment; see Harness. Empty on a clean run.
	Errors []CellError

	// Cells carries the per-cell simulator telemetry of the sweep. Filled
	// only when the suite's Harness has Telemetry enabled; empty otherwise.
	Cells []CellTelemetry
}

// TableRow is one line of Table I.
type TableRow struct {
	Name     string
	V        int
	E        int64
	MaxDeg   int
	Colors   int
	Levels   int
	PaperCol int
	PaperLev int
}

// GeoMean returns the geometric mean of xs (0 if any x <= 0 or empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Suite holds the generated stand-in graphs shared by all experiments.
type Suite struct {
	Scale    int
	Configs  []gen.MeshConfig
	Graphs   []*graph.Graph
	shuffled []*graph.Graph

	// Harness controls cancellation and failure containment for all
	// experiments run against this suite. Nil (the default) means no
	// deadline and no retries; cells still fail the old way (panic).
	Harness *Harness
}

// NewSuite generates the seven Table I stand-ins at the given linear scale
// (1 = the paper's sizes).
func NewSuite(scale int) (*Suite, error) {
	graphs, configs, err := gen.GenerateSuite(scale)
	if err != nil {
		return nil, err
	}
	return &Suite{Scale: scale, Configs: configs, Graphs: graphs}, nil
}

// Shuffled returns the randomly relabeled copies used by Figure 2, created
// lazily and cached.
func (s *Suite) Shuffled() []*graph.Graph {
	if s.shuffled == nil {
		s.shuffled = make([]*graph.Graph, len(s.Graphs))
		for i, g := range s.Graphs {
			s.shuffled[i] = g.Shuffled(uint64(1000 + i))
		}
	}
	return s.shuffled
}

// WithHarness returns a shallow copy of the suite bound to h: it shares the
// generated graphs (and the shuffled copies, when already materialised) with
// the receiver but carries its own harness, so concurrent sweeps over one
// cached suite can each run under their own deadline, retry budget and
// telemetry sink without racing on the shared Harness field. The shared
// graphs are read-only to every experiment.
func (s *Suite) WithHarness(h *Harness) *Suite {
	out := *s
	out.Harness = h
	return &out
}

// Find returns the suite graph with the given base name (e.g. "pwtk").
func (s *Suite) Find(name string) (*graph.Graph, gen.MeshConfig, error) {
	for i, cfg := range s.Configs {
		base := cfg.Name
		for j := 0; j < len(base); j++ {
			if base[j] == '/' {
				base = base[:j]
				break
			}
		}
		if base == name {
			return s.Graphs[i], cfg, nil
		}
	}
	return nil, gen.MeshConfig{}, fmt.Errorf("core: no suite graph %q", name)
}

// speedupCurves computes, for each configuration, the geometric-mean
// speedup curve across the given graphs. The per-graph baseline is the
// fastest 1-thread time over all configurations, matching §V-A
// ("computed using as baseline the configuration that performs the fastest
// on 1 thread for that graph"). traceFor builds the trace for a given
// (graph index, config index, thread count).
//
// Each (graph, config, threads) cell runs under the harness: a failed cell
// is excluded from that point's geometric mean and reported in the
// returned annotations; the rest of the sweep continues. Once the harness
// context is cancelled, remaining cells are skipped (one annotation marks
// the cutoff) and whatever was computed is returned.
// When the harness has Telemetry enabled, every successful sweep cell also
// yields a CellTelemetry record (simulated time plus the simulator's
// SimStats); baseline cells are not recorded.
func speedupCurves(h *Harness, m *mic.Machine, configs []mic.Config, labels []string,
	numGraphs int, threads []int,
	traceFor func(gi, ci, t int) *mic.Trace) ([]Series, []CellError, []CellTelemetry) {

	var errs []CellError
	var cells []CellTelemetry
	tele := h.telemetryOn()
	label := func(ci int) string {
		if labels[ci] != "" {
			return labels[ci]
		}
		return configs[ci].String()
	}
	aborted := func() bool {
		if err := h.cancelled(); err != nil {
			errs = append(errs, CellError{Graph: -1, Err: err})
			return true
		}
		return false
	}

	// Baselines per graph: min over configs of 1-thread time. A graph
	// whose every baseline cell fails stays NaN and is excluded from all
	// curves; a partial failure just narrows the min.
	base := make([]float64, numGraphs)
	for gi := 0; gi < numGraphs; gi++ {
		if aborted() {
			return nil, errs, cells
		}
		best := math.NaN()
		for ci := range configs {
			gi, ci := gi, ci
			tt, attempts, err := h.cell(func() float64 {
				return mic.Simulate(m, configs[ci], 1, traceFor(gi, ci, 1))
			})
			if err != nil {
				errs = append(errs, CellError{Series: label(ci), Graph: gi,
					Threads: 1, Attempts: attempts, Err: err})
				continue
			}
			if math.IsNaN(best) || tt < best {
				best = tt
			}
		}
		base[gi] = best
	}

	series := make([]Series, len(configs))
	for ci := range configs {
		vals := make([]float64, len(threads))
		for ti, t := range threads {
			if aborted() {
				// Partial curves: computed points stand, the rest are 0.
				for cj := ci; cj < len(configs); cj++ {
					if series[cj].Threads == nil {
						series[cj] = Series{Label: label(cj), Threads: threads,
							Values: make([]float64, len(threads))}
					}
				}
				series[ci].Values = vals
				return series, errs, cells
			}
			per := make([]float64, 0, numGraphs)
			for gi := 0; gi < numGraphs; gi++ {
				if math.IsNaN(base[gi]) {
					continue // no baseline; already annotated above
				}
				gi, ci, t := gi, ci, t
				var stPtr *mic.SimStats
				if tele {
					stPtr = new(mic.SimStats)
				}
				tt, attempts, err := h.cell(func() float64 {
					if stPtr != nil {
						*stPtr = mic.SimStats{} // retries must not accumulate
					}
					return mic.SimulateObserved(m, configs[ci], t, traceFor(gi, ci, t), nil, stPtr)
				})
				if err != nil {
					errs = append(errs, CellError{Series: label(ci), Graph: gi,
						Threads: t, Attempts: attempts, Err: err})
					continue
				}
				if tele {
					cells = append(cells, CellTelemetry{Series: label(ci), Graph: gi,
						Threads: t, Attempts: attempts, SimTime: tt, Stats: *stPtr})
				}
				per = append(per, base[gi]/tt)
			}
			vals[ti] = GeoMean(per)
		}
		series[ci] = Series{Label: label(ci), Threads: threads, Values: vals}
	}
	return series, errs, cells
}
