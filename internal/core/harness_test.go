package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"micgraph/internal/fault"
	"micgraph/internal/mic"
	"micgraph/internal/sched"
)

// testTrace returns a small uniform trace.
func testTrace(items int) *mic.Trace {
	work := make([]mic.Work, items)
	for i := range work {
		work[i] = mic.Work{Issue: 10, Stall: 5}
	}
	return &mic.Trace{Name: "test", Phases: []mic.Phase{{Name: "loop", Items: work}}}
}

var testConfigs = []mic.Config{
	{Kind: mic.OpenMP, Policy: sched.Dynamic, Chunk: 8},
	{Kind: mic.TBB, Partitioner: sched.SimplePartitioner, Chunk: 8},
}

// TestSpeedupCurvesPoisonedCell poisons exactly one (graph, config, thread)
// cell of a sweep and checks every other cell still emits a value, while the
// poisoned one is excluded from its point's geometric mean and reported as
// an annotation — the acceptance scenario for graceful degradation.
func TestSpeedupCurvesPoisonedCell(t *testing.T) {
	threads := []int{1, 11, 21}
	boom := errors.New("poisoned trace")
	traceFor := func(gi, ci, tt int) *mic.Trace {
		if gi == 1 && ci == 0 && tt == 11 {
			panic(boom)
		}
		return testTrace(500 * (gi + 1))
	}
	series, errs, _ := speedupCurves(nil, mic.KNF(), testConfigs, []string{"", ""},
		3, threads, traceFor)

	if len(series) != len(testConfigs) {
		t.Fatalf("%d series, want %d", len(series), len(testConfigs))
	}
	for _, s := range series {
		for i, v := range s.Values {
			if v <= 0 {
				t.Errorf("%s at t=%d: value %v, want > 0 (sweep must continue around the poisoned cell)",
					s.Label, s.Threads[i], v)
			}
		}
	}
	if len(errs) != 1 {
		t.Fatalf("%d annotations, want 1: %v", len(errs), errs)
	}
	e := errs[0]
	if e.Graph != 1 || e.Threads != 11 || e.Series != testConfigs[0].String() {
		t.Errorf("annotation %+v does not pin the poisoned cell", e)
	}
	if !errors.Is(e, boom) {
		t.Errorf("annotation lost the cause: %v", e.Err)
	}

	// Determinism: a second identical sweep yields identical curves.
	series2, _, _ := speedupCurves(nil, mic.KNF(), testConfigs, []string{"", ""},
		3, threads, traceFor)
	for ci := range series {
		for i := range series[ci].Values {
			if series[ci].Values[i] != series2[ci].Values[i] {
				t.Fatalf("sweep not deterministic at %s t=%d", series[ci].Label, threads[i])
			}
		}
	}
}

// TestSpeedupCurvesPoisonedBaseline fails every baseline cell of one graph:
// the graph must drop out of all curves (which stay positive from the other
// graphs) with one annotation per config.
func TestSpeedupCurvesPoisonedBaseline(t *testing.T) {
	threads := []int{1, 11}
	traceFor := func(gi, ci, tt int) *mic.Trace {
		if gi == 2 && tt == 1 {
			panic(fmt.Errorf("graph %d baseline dead", gi))
		}
		return testTrace(400)
	}
	series, errs, _ := speedupCurves(nil, mic.KNF(), testConfigs, []string{"", ""},
		3, threads, traceFor)
	for _, s := range series {
		for i, v := range s.Values {
			if v <= 0 {
				t.Errorf("%s at t=%d: value %v, want > 0", s.Label, s.Threads[i], v)
			}
		}
	}
	if len(errs) != len(testConfigs) {
		t.Fatalf("%d annotations, want one per config (%d): %v", len(errs), len(testConfigs), errs)
	}
	for _, e := range errs {
		if e.Graph != 2 || e.Threads != 1 {
			t.Errorf("annotation %+v does not pin graph 2's baseline", e)
		}
	}
}

// TestHarnessRetriesTransientFault arms a one-shot injected fault and checks
// Retries >= 1 absorbs it: the cell succeeds on the second attempt and the
// sweep carries no annotation.
func TestHarnessRetriesTransientFault(t *testing.T) {
	h := &Harness{Retries: 2}
	in := fault.New(1).EnableAt("cell", 1)
	v, attempts, err := h.cell(func() float64 {
		if err := in.FireErr("cell"); err != nil {
			panic(err)
		}
		return 7
	})
	if err != nil {
		t.Fatalf("cell failed despite retry budget: %v", err)
	}
	if v != 7 || attempts != 2 {
		t.Errorf("got v=%v attempts=%d, want v=7 attempts=2", v, attempts)
	}

	// A deterministic (non-transient) failure is not retried.
	calls := 0
	_, attempts, err = h.cell(func() float64 {
		calls++
		panic(errors.New("deterministic bug"))
	})
	if err == nil || attempts != 1 || calls != 1 {
		t.Errorf("non-transient failure: err=%v attempts=%d calls=%d, want 1 attempt", err, attempts, calls)
	}

	// With no budget the transient fault surfaces with its marker intact.
	in2 := fault.New(1).EnableAt("cell", 1)
	_, _, err = (*Harness)(nil).cell(func() float64 {
		if err := in2.FireErr("cell"); err != nil {
			panic(err)
		}
		return 7
	})
	if !fault.IsTransient(err) {
		t.Errorf("unretried fault %v lost its transient marker", err)
	}
}

// TestSpeedupCurvesCancelledMidSweep cancels the harness context from inside
// a known cell and checks the sweep stops early but still returns the
// already-computed points plus a cutoff annotation.
func TestSpeedupCurvesCancelledMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h := &Harness{Ctx: ctx}
	threads := []int{1, 11, 21}
	traceFor := func(gi, ci, tt int) *mic.Trace {
		if ci == 1 && tt == 11 {
			cancel()
		}
		return testTrace(300)
	}
	series, errs, _ := speedupCurves(h, mic.KNF(), testConfigs, []string{"", ""},
		2, threads, traceFor)
	if len(series) != len(testConfigs) {
		t.Fatalf("%d series, want %d even on abort", len(series), len(testConfigs))
	}
	for i, v := range series[0].Values {
		if v <= 0 {
			t.Errorf("config 0 t=%d: value %v computed before the abort must stand", threads[i], v)
		}
	}
	found := false
	for _, e := range errs {
		if e.Graph == -1 && errors.Is(e, context.Canceled) {
			found = true
		}
	}
	if !found {
		t.Errorf("no cutoff annotation in %v", errs)
	}
}

// TestRunByIDCancelled checks a cancelled harness context short-circuits
// into an annotated placeholder rather than an error or a panic.
func TestRunByIDCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := &Suite{Harness: &Harness{Ctx: ctx}}
	exp, err := RunByID("fig1a", s, nil, nil)
	if err != nil {
		t.Fatalf("RunByID: %v", err)
	}
	if exp.ID != "fig1a" || len(exp.Errors) != 1 || !errors.Is(exp.Errors[0], context.Canceled) {
		t.Errorf("placeholder %+v does not carry the cancellation", exp)
	}
}

// TestRunManyUnknownID checks unknown experiment IDs come back as annotated
// placeholders so a batch always has one entry per request.
func TestRunManyUnknownID(t *testing.T) {
	s := &Suite{}
	exps := RunMany([]string{"no-such-experiment"}, s, nil, nil)
	if len(exps) != 1 {
		t.Fatalf("%d experiments, want 1", len(exps))
	}
	if exps[0].ID != "no-such-experiment" || len(exps[0].Errors) == 0 {
		t.Errorf("unknown ID not reported as annotated placeholder: %+v", exps[0])
	}
}
