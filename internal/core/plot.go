package core

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteSVG renders a speedup experiment as a standalone SVG line chart in
// the style of the paper's figures: threads on the x-axis, speedup on the
// y-axis, one polyline per series, legend in the top-left. Table
// experiments (no series) are rejected.
func WriteSVG(w io.Writer, e *Experiment) error {
	if len(e.Series) == 0 {
		return fmt.Errorf("core: experiment %s has no series to plot", e.ID)
	}

	const (
		width, height    = 720, 480
		marginL, marginR = 70, 30
		marginT, marginB = 50, 60
		plotW, plotH     = width - marginL - marginR, height - marginT - marginB
	)

	// Data ranges.
	maxX, maxY := 0.0, 0.0
	for _, s := range e.Series {
		for i, t := range s.Threads {
			maxX = math.Max(maxX, float64(t))
			maxY = math.Max(maxY, s.Values[i])
		}
	}
	if maxX == 0 || maxY == 0 {
		return fmt.Errorf("core: experiment %s has empty data", e.ID)
	}
	maxY = niceCeil(maxY)

	x := func(t float64) float64 { return marginL + t/maxX*float64(plotW) }
	y := func(v float64) float64 { return marginT + (1-v/maxY)*float64(plotH) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="28" font-family="sans-serif" font-size="16" text-anchor="middle">%s</text>`+"\n",
		width/2, xmlEscape(e.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)

	// Ticks and grid: 6 y ticks, x ticks at the series' thread values
	// (thinned to at most 14).
	for i := 0; i <= 6; i++ {
		v := maxY * float64(i) / 6
		yy := y(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, yy, marginL+plotW, yy)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%.0f</text>`+"\n",
			marginL-6, yy+4, v)
	}
	ticks := e.Series[0].Threads
	step := (len(ticks) + 13) / 14
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(ticks); i += step {
		t := float64(ticks[i])
		xx := x(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			xx, marginT+plotH, xx, marginT+plotH+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%d</text>`+"\n",
			xx, marginT+plotH+18, ticks[i])
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle">threads</text>`+"\n",
		marginL+plotW/2, height-14)
	fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 %d)">speedup</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2)

	// Series polylines + legend.
	colors := []string{"#c0392b", "#2980b9", "#27ae60", "#8e44ad", "#e67e22", "#16a085", "#7f8c8d"}
	for si, s := range e.Series {
		color := colors[si%len(colors)]
		var pts []string
		for i, t := range s.Threads {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(float64(t)), y(s.Values[i])))
		}
		dash := ""
		if s.Label == "Model" {
			dash = ` stroke-dasharray="6,4"`
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"%s/>`+"\n",
			strings.Join(pts, " "), color, dash)
		for i, t := range s.Threads {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n",
				x(float64(t)), y(s.Values[i]), color)
		}
		ly := marginT + 16 + si*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			marginL+12, ly-4, marginL+40, ly-4, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			marginL+46, ly, xmlEscape(s.Label))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// niceCeil rounds v up to a visually round axis maximum.
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 1.5, 2, 3, 4, 5, 6, 8, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
