package core

import (
	"bytes"
	"strings"
	"testing"

	"micgraph/internal/mic"
)

func TestWriteSVG(t *testing.T) {
	s := sharedSuite(t)
	e := Fig1a(s, mic.KNF())
	var buf bytes.Buffer
	if err := WriteSVG(&buf, e); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("not a complete SVG document")
	}
	// One polyline per series plus the legend swatches.
	if got := strings.Count(out, "<polyline"); got != len(e.Series) {
		t.Errorf("%d polylines for %d series", got, len(e.Series))
	}
	for _, series := range e.Series {
		if !strings.Contains(out, series.Label) {
			t.Errorf("legend missing %q", series.Label)
		}
	}
}

func TestWriteSVGEscapesLabels(t *testing.T) {
	e := &Experiment{
		ID:    "x",
		Title: `a <b> & "c"`,
		Series: []Series{{
			Label: "s<&>", Threads: []int{1, 2}, Values: []float64{1, 2},
		}},
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, e); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "<b>") || strings.Contains(out, "s<&>") {
		t.Error("labels not XML-escaped")
	}
}

func TestWriteSVGRejectsTables(t *testing.T) {
	e := &Experiment{ID: "table1", Rows: []TableRow{{Name: "x"}}}
	if err := WriteSVG(&bytes.Buffer{}, e); err == nil {
		t.Error("table experiment accepted for plotting")
	}
	empty := &Experiment{ID: "e", Series: []Series{{Label: "z", Threads: []int{1}, Values: []float64{0}}}}
	if err := WriteSVG(&bytes.Buffer{}, empty); err == nil {
		t.Error("all-zero data accepted")
	}
}

func TestNiceCeil(t *testing.T) {
	cases := map[float64]float64{
		0:    1,
		0.7:  0.8,
		1.2:  1.5,
		7:    8,
		9.5:  10,
		72:   80,
		153:  200,
		1000: 1000,
	}
	for in, want := range cases {
		if got := niceCeil(in); got != want {
			t.Errorf("niceCeil(%v) = %v, want %v", in, got, want)
		}
	}
}
