package core

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	rpprof "runtime/pprof"
)

// Profiling bundles the profiling options shared by every CLI: CPU and heap
// profiles written on exit, and an optional live net/http/pprof endpoint.
// Register the flags on the command's FlagSet, then bracket main's work with
// Start and the stop function it returns:
//
//	var prof core.Profiling
//	prof.RegisterFlags(flag.CommandLine)
//	flag.Parse()
//	stop, err := prof.Start()
//	if err != nil { ... }
//	defer stop()
//
// With no flags set, Start is a no-op returning a no-op stop.
type Profiling struct {
	CPUProfile string // -cpuprofile: pprof CPU profile path
	MemProfile string // -memprofile: pprof heap profile path, written at stop
	PprofAddr  string // -pprof: listen address for net/http/pprof
}

// RegisterFlags registers -cpuprofile, -memprofile and -pprof on fs.
func (p *Profiling) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to `file`")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a pprof heap profile to `file` on exit")
	fs.StringVar(&p.PprofAddr, "pprof", "", "serve net/http/pprof on `addr` (e.g. localhost:6060)")
}

// Start begins CPU profiling and the pprof HTTP server as configured. The
// returned stop function finishes the CPU profile and writes the heap
// profile; call it before exiting (also on error exits — os.Exit skips
// defers). stop is idempotent and never nil.
func (p *Profiling) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if p.CPUProfile != "" {
		cpuFile, err = os.Create(p.CPUProfile)
		if err != nil {
			return func() error { return nil }, err
		}
		if err := rpprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return func() error { return nil }, err
		}
	}
	if p.PprofAddr != "" {
		ln, err := net.Listen("tcp", p.PprofAddr)
		if err != nil {
			if cpuFile != nil {
				rpprof.StopCPUProfile()
				cpuFile.Close()
			}
			return func() error { return nil }, err
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", ln.Addr())
		go http.Serve(ln, mux) //nolint:errcheck // diagnostic server, dies with the process
	}
	done := false
	return func() error {
		if done {
			return nil
		}
		done = true
		if cpuFile != nil {
			rpprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if p.MemProfile != "" {
			f, err := os.Create(p.MemProfile)
			if err != nil {
				return err
			}
			runtime.GC() // materialise up-to-date allocation stats
			if err := rpprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}
