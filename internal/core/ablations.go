package core

import (
	"fmt"

	"micgraph/internal/graph"
	"micgraph/internal/mic"
	"micgraph/internal/perfmodel"
	"micgraph/internal/sched"
)

// Ablation experiments: each isolates one design choice the paper (or this
// reproduction) calls out, holding everything else fixed. Run them with
// `micbench -exp abl-...`.

// AblBlockSize sweeps the BFS block-accessed queue's block size — the
// trade-off §IV-C describes: "by keeping the block size small (but not so
// small so that we do not use atomics too often), the overhead is
// minimized". The paper's winner is 32.
func AblBlockSize(s *Suite, m *mic.Machine) *Experiment {
	sizes := []int{4, 8, 16, 32, 64, 128, 256}
	threads := []int{31, 61, 121}
	exp := &Experiment{
		ID:    "abl-blocksize",
		Title: "Ablation: BFS block size (relaxed queue, OpenMP dynamic)",
		Notes: "Values are geometric-mean speedups across the suite; the paper's best block size is 32.",
	}
	for _, th := range threads {
		th := th
		vals := make([]float64, len(sizes))
		for si, bs := range sizes {
			per := make([]float64, len(s.Graphs))
			for gi, g := range s.Graphs {
				src := int32(g.NumVertices() / 2)
				tr := mic.BFSTrace(m, g, src, mic.NaturalOrder, mic.BFSBlockRelaxed, bs)
				cfg := mic.Config{Kind: mic.OpenMP, Policy: sched.Dynamic, Chunk: bs}
				base := mic.Simulate(m, cfg, 1, tr)
				per[gi] = base / mic.Simulate(m, cfg, th, tr)
			}
			vals[si] = GeoMean(per)
		}
		exp.Series = append(exp.Series, Series{
			Label: fmt.Sprintf("%d threads", th), Threads: sizes, Values: vals,
		})
	}
	return exp
}

// AblChunkSize sweeps the OpenMP dynamic chunk size for coloring — §V-B:
// "Different chunk sizes (from 40 to 150) were tried and only the best
// results are reported ... the dynamic scheduling policy performs better
// with a chunk size of 100."
func AblChunkSize(s *Suite, m *mic.Machine) *Experiment {
	chunks := []int{10, 25, 40, 100, 150, 400, 1000}
	threads := []int{31, 121}
	exp := &Experiment{
		ID:    "abl-chunk",
		Title: "Ablation: OpenMP dynamic chunk size for coloring",
		Notes: "The x column is the chunk size; the paper's best is 100.",
	}
	for _, th := range threads {
		vals := make([]float64, len(chunks))
		for ci, chunk := range chunks {
			per := make([]float64, len(s.Graphs))
			for gi, g := range s.Graphs {
				cfg := mic.Config{Kind: mic.OpenMP, Policy: sched.Dynamic, Chunk: chunk}
				base := mic.Simulate(m, cfg, 1, mic.ColoringTrace(m, g, mic.NaturalOrder, 1))
				per[gi] = base / mic.Simulate(m, cfg, th, mic.ColoringTrace(m, g, mic.NaturalOrder, th))
			}
			vals[ci] = GeoMean(per)
		}
		exp.Series = append(exp.Series, Series{
			Label: fmt.Sprintf("%d threads", th), Threads: chunks, Values: vals,
		})
	}
	return exp
}

// AblSMT re-runs the shuffled coloring with the machine's SMT width forced
// to 1..4 hardware threads per core — isolating the paper's headline
// mechanism: without SMT the memory-bound kernel cannot scale past the
// core count.
func AblSMT(s *Suite, m *mic.Machine) *Experiment {
	threads := ThreadSweep()
	exp := &Experiment{
		ID:    "abl-smt",
		Title: "Ablation: SMT ways (shuffled coloring, OpenMP dynamic)",
		Notes: "Threads beyond cores × ways are clamped to the hardware limit.",
	}
	graphs := s.Shuffled()
	for ways := 1; ways <= m.SMTWays; ways++ {
		mm := *m
		mm.SMTWays = ways
		vals := make([]float64, len(threads))
		for ti, th := range threads {
			eff := th
			if eff > mm.MaxThreads() {
				eff = mm.MaxThreads()
			}
			per := make([]float64, len(graphs))
			for gi, g := range graphs {
				cfg := mic.Config{Kind: mic.OpenMP, Policy: sched.Dynamic, Chunk: 100}
				base := mic.Simulate(&mm, cfg, 1, mic.ColoringTrace(&mm, g, mic.ShuffledOrder, 1))
				per[gi] = base / mic.Simulate(&mm, cfg, eff, mic.ColoringTrace(&mm, g, mic.ShuffledOrder, eff))
			}
			vals[ti] = GeoMean(per)
		}
		exp.Series = append(exp.Series, Series{
			Label: fmt.Sprintf("%d-way SMT", ways), Threads: threads, Values: vals,
		})
	}
	return exp
}

// AblCacheBonus toggles the shared-cache constructive-interference term —
// the mechanism behind the superlinear Figure 2 speedups.
func AblCacheBonus(s *Suite, m *mic.Machine) *Experiment {
	threads := ThreadSweep()
	exp := &Experiment{
		ID:    "abl-bonus",
		Title: "Ablation: shared-cache interference bonus (shuffled coloring)",
		Notes: "With the bonus off, speedup cannot exceed the thread count.",
	}
	graphs := s.Shuffled()
	for _, on := range []bool{true, false} {
		mm := *m
		label := "bonus on"
		if !on {
			mm.CacheShareBonus = 0
			label = "bonus off"
		}
		vals := make([]float64, len(threads))
		for ti, th := range threads {
			per := make([]float64, len(graphs))
			for gi, g := range graphs {
				cfg := mic.Config{Kind: mic.OpenMP, Policy: sched.Dynamic, Chunk: 100}
				base := mic.Simulate(&mm, cfg, 1, mic.ColoringTrace(&mm, g, mic.ShuffledOrder, 1))
				per[gi] = base / mic.Simulate(&mm, cfg, th, mic.ColoringTrace(&mm, g, mic.ShuffledOrder, th))
			}
			vals[ti] = GeoMean(per)
		}
		exp.Series = append(exp.Series, Series{Label: label, Threads: threads, Values: vals})
	}
	return exp
}

// AblOrdering scores vertex orderings between the paper's two extremes:
// natural, randomly shuffled, and shuffled-then-RCM-reordered graphs. The
// miss rate is derived from the measured bandwidth of each ordering
// (mic.EffectiveMissPerEdge), so RCM's locality restoration shows up as a
// 1-thread time close to natural and speedup between the two curves.
func AblOrdering(s *Suite, m *mic.Machine) *Experiment {
	threads := []int{1, 31, 61, 121}
	exp := &Experiment{
		ID:    "abl-ordering",
		Title: "Ablation: vertex ordering (coloring; natural vs shuffled vs RCM-restored)",
		Notes: "Values at 1 thread are relative times vs natural (higher = slower); at >1 threads, speedups vs the ordering's own 1-thread time.",
	}
	type variant struct {
		label string
		pick  func(gi int) (miss float64)
	}
	variants := []variant{
		{"natural", func(gi int) float64 { return m.EffectiveMissPerEdge(s.Graphs[gi]) }},
		{"shuffled", func(gi int) float64 { return m.EffectiveMissPerEdge(s.Shuffled()[gi]) }},
		{"shuffled+RCM", func(gi int) float64 {
			sh := s.Shuffled()[gi]
			restored, err := sh.Permute(graph.RCMOrder(sh))
			if err != nil {
				panic(err) // RCMOrder always returns a valid permutation
			}
			return m.EffectiveMissPerEdge(restored)
		}},
	}
	for _, v := range variants {
		vals := make([]float64, len(threads))
		for ti, th := range threads {
			per := make([]float64, len(s.Graphs))
			for gi, g := range s.Graphs {
				miss := v.pick(gi)
				cfg := mic.Config{Kind: mic.OpenMP, Policy: sched.Dynamic, Chunk: 100}
				if th == 1 {
					// Relative serial time vs the natural ordering.
					nat := mic.Simulate(m, cfg, 1, mic.ColoringTraceMiss(m, g, m.EffectiveMissPerEdge(g), 1))
					per[gi] = mic.Simulate(m, cfg, 1, mic.ColoringTraceMiss(m, g, miss, 1)) / nat
				} else {
					base := mic.Simulate(m, cfg, 1, mic.ColoringTraceMiss(m, g, miss, 1))
					per[gi] = base / mic.Simulate(m, cfg, th, mic.ColoringTraceMiss(m, g, miss, th))
				}
			}
			vals[ti] = GeoMean(per)
		}
		exp.Series = append(exp.Series, Series{Label: v.label, Threads: threads, Values: vals})
	}
	return exp
}

// AblDirection contrasts the direction-optimizing BFS (mic.BFSHybrid,
// Beamer-style α/β switching as implemented in internal/bfs) with the pure
// top-down relaxed-block traversal it switches away from. Two speedup
// curves show how each variant scales; the third series is the per-thread
// simulated-time ratio top-down/hybrid — above 1.0 means the bottom-up
// middle levels pay for themselves on that thread count.
func AblDirection(s *Suite, m *mic.Machine) *Experiment {
	threads := ThreadSweep()
	exp := &Experiment{
		ID:    "abl-direction",
		Title: "Ablation: direction-optimizing BFS vs pure top-down",
		Notes: "Geometric means across the suite; sources at |V|/2. The win ratio is simulated top-down time over hybrid time at equal thread count.",
	}
	cfg := mic.Config{Kind: mic.OpenMP, Policy: sched.Dynamic, Chunk: 32}
	type pair struct{ td, hy *mic.Trace }
	traces := make([]pair, len(s.Graphs))
	for gi, g := range s.Graphs {
		src := int32(g.NumVertices() / 2)
		traces[gi] = pair{
			td: mic.BFSTrace(m, g, src, mic.NaturalOrder, mic.BFSBlockRelaxed, 32),
			hy: mic.BFSTrace(m, g, src, mic.NaturalOrder, mic.BFSHybrid, 32),
		}
	}
	tdSpeed := make([]float64, len(threads))
	hySpeed := make([]float64, len(threads))
	win := make([]float64, len(threads))
	for ti, th := range threads {
		perTD := make([]float64, len(s.Graphs))
		perHY := make([]float64, len(s.Graphs))
		perWin := make([]float64, len(s.Graphs))
		for gi := range s.Graphs {
			baseTD := mic.Simulate(m, cfg, 1, traces[gi].td)
			baseHY := mic.Simulate(m, cfg, 1, traces[gi].hy)
			tTD := mic.Simulate(m, cfg, th, traces[gi].td)
			tHY := mic.Simulate(m, cfg, th, traces[gi].hy)
			perTD[gi] = baseTD / tTD
			perHY[gi] = baseHY / tHY
			perWin[gi] = tTD / tHY
		}
		tdSpeed[ti] = GeoMean(perTD)
		hySpeed[ti] = GeoMean(perHY)
		win[ti] = GeoMean(perWin)
	}
	exp.Series = append(exp.Series,
		Series{Label: "top-down (Block-relaxed)", Threads: threads, Values: tdSpeed},
		Series{Label: "hybrid (direction-optimizing)", Threads: threads, Values: hySpeed},
		Series{Label: "win ratio (td/hybrid time)", Threads: threads, Values: win},
	)
	return exp
}

// AblModelVsSim contrasts the paper's analytical BFS model with the full
// simulator at matching assumptions (no overheads in the model): the model
// is exactly the simulator with uniform vertex costs, zero overheads, and
// no SMT — the "five unrealistic assumptions" of §III-C.
func AblModelVsSim(s *Suite, m *mic.Machine) *Experiment {
	threads := ThreadSweep()
	exp := &Experiment{
		ID:    "abl-model",
		Title: "Ablation: analytical model vs simulator (BFS, pwtk)",
	}
	gi := s.indexOf("pwtk")
	g := s.Graphs[gi]
	src := int32(g.NumVertices() / 2)
	widths := g.LevelWidths(src)

	model := make([]float64, len(threads))
	for ti, th := range threads {
		model[ti] = perfmodel.Speedup(widths, th, 32)
	}
	exp.Series = append(exp.Series, Series{Label: "analytical model", Threads: threads, Values: model})

	// Simulator with overheads stripped: zero barriers, atomics, taxes.
	mm := *m
	mm.BarrierBase, mm.BarrierPerThread = 0, 0
	mm.AtomicCost, mm.AtomicContPerT, mm.AtomicContSq = 0, 0, 0
	mm.NoiseCore0, mm.CacheShareBonus = 0, 0
	mm.DynamicGrabCost = 0
	tr := mic.BFSTrace(&mm, g, src, mic.NaturalOrder, mic.BFSBlockRelaxed, 32)
	cfg := mic.Config{Kind: mic.OpenMP, Policy: sched.Dynamic, Chunk: 32}
	sim := make([]float64, len(threads))
	base := mic.Simulate(&mm, cfg, 1, tr)
	for ti, th := range threads {
		sim[ti] = base / mic.Simulate(&mm, cfg, th, tr)
	}
	exp.Series = append(exp.Series, Series{Label: "simulator, overheads off", Threads: threads, Values: sim})

	// And the full simulator for contrast.
	trFull := mic.BFSTrace(m, g, src, mic.NaturalOrder, mic.BFSBlockRelaxed, 32)
	full := make([]float64, len(threads))
	baseFull := mic.Simulate(m, cfg, 1, trFull)
	for ti, th := range threads {
		full[ti] = baseFull / mic.Simulate(m, cfg, th, trFull)
	}
	exp.Series = append(exp.Series, Series{Label: "simulator, full", Threads: threads, Values: full})
	return exp
}
