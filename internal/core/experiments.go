package core

import (
	"fmt"

	"micgraph/internal/coloring"
	"micgraph/internal/mic"
	"micgraph/internal/perfmodel"
	"micgraph/internal/sched"
)

// Chunk sizes reported best in §V-B: dynamic 100, static 40, guided 100 for
// OpenMP; grain 100 for Cilk; minimum chunk 40 for TBB.
const (
	chunkDynamic = 100
	chunkStatic  = 40
	chunkGuided  = 100
	grainCilk    = 100
	grainTBB     = 40
)

func ompCfg(p sched.Policy, chunk int) mic.Config {
	return mic.Config{Kind: mic.OpenMP, Policy: p, Chunk: chunk}
}

func tbbCfg(p sched.Partitioner, grain int) mic.Config {
	return mic.Config{Kind: mic.TBB, Partitioner: p, Chunk: grain}
}

func cilkCfg(grain int) mic.Config {
	return mic.Config{Kind: mic.Cilk, Chunk: grain}
}

// Table1 regenerates Table I: the structural properties of the test graphs,
// including the sequential greedy color count and the BFS level count from
// vertex |V|/2.
func Table1(s *Suite) *Experiment {
	exp := &Experiment{
		ID:    "table1",
		Title: "Properties of the test graphs (Table I)",
		Notes: "Colors: sequential First-Fit greedy, natural order. Levels: BFS from vertex |V|/2.",
	}
	for i, g := range s.Graphs {
		cfg := s.Configs[i]
		res := coloring.SeqGreedy(g)
		_, nl := g.Levels(int32(g.NumVertices() / 2))
		exp.Rows = append(exp.Rows, TableRow{
			Name:     cfg.Name,
			V:        g.NumVertices(),
			E:        g.NumEdges(),
			MaxDeg:   g.MaxDegree(),
			Colors:   res.NumColors,
			Levels:   nl,
			PaperCol: cfg.PaperColors,
			PaperLev: cfg.PaperLevels,
		})
	}
	return exp
}

// coloringExperiment runs one coloring figure: the given configs on the
// given graphs (natural or shuffled), geometric mean across the suite.
func coloringExperiment(s *Suite, m *mic.Machine, id, title string,
	o mic.Ordering, configs []mic.Config, labels []string) *Experiment {

	graphs := s.Graphs
	if o == mic.ShuffledOrder {
		graphs = s.Shuffled()
	}
	threads := ThreadSweep()

	// Coloring traces depend on t (conflict rounds) but not on the config;
	// cache them per (graph, t).
	cache := map[[2]int]*mic.Trace{}
	traceFor := func(gi, _, t int) *mic.Trace {
		key := [2]int{gi, t}
		if tr, ok := cache[key]; ok {
			return tr
		}
		tr := mic.ColoringTrace(m, graphs[gi], o, t)
		cache[key] = tr
		return tr
	}
	series, errs, cells := speedupCurves(s.Harness, m, configs, labels, len(graphs), threads, traceFor)
	return &Experiment{
		ID:     id,
		Title:  title,
		Series: series,
		Errors: stamp(id, errs),
		Cells:  stampCells(id, cells),
	}
}

// Fig1a: coloring with OpenMP under the three scheduling policies,
// naturally ordered graphs.
func Fig1a(s *Suite, m *mic.Machine) *Experiment {
	return coloringExperiment(s, m, "fig1a",
		"Coloring speedup, OpenMP scheduling policies (Figure 1a)",
		mic.NaturalOrder,
		[]mic.Config{
			ompCfg(sched.Dynamic, chunkDynamic),
			ompCfg(sched.Static, chunkStatic),
			ompCfg(sched.Guided, chunkGuided),
		},
		[]string{"OpenMP-dynamic", "OpenMP-static", "OpenMP-guided"})
}

// Fig1b: coloring with Cilk Plus, worker-id vs holder localFC. The two
// variants differ only in TLS mechanics, which the paper found nearly
// indistinguishable; the simulator charges the holder a slightly higher
// per-chunk cost (lazy view lookup).
func Fig1b(s *Suite, m *mic.Machine) *Experiment {
	cfgs := []mic.Config{cilkCfg(grainCilk), cilkCfg(grainCilk + 1)}
	return coloringExperiment(s, m, "fig1b",
		"Coloring speedup, Cilk Plus variants (Figure 1b)",
		mic.NaturalOrder, cfgs,
		[]string{"CilkPlus", "CilkPlus-holder"})
}

// Fig1c: coloring with TBB under the three partitioners.
func Fig1c(s *Suite, m *mic.Machine) *Experiment {
	return coloringExperiment(s, m, "fig1c",
		"Coloring speedup, TBB partitioners (Figure 1c)",
		mic.NaturalOrder,
		[]mic.Config{
			tbbCfg(sched.SimplePartitioner, grainTBB),
			tbbCfg(sched.AutoPartitioner, grainTBB),
			tbbCfg(sched.AffinityPartitioner, grainTBB),
		},
		[]string{"TBB-simple", "TBB-auto", "TBB-affinity"})
}

// Fig2: coloring on randomly shuffled graphs, best variant per programming
// model (OpenMP-dynamic, TBB-simple, CilkPlus-holder).
func Fig2(s *Suite, m *mic.Machine) *Experiment {
	return coloringExperiment(s, m, "fig2",
		"Coloring speedup on randomly ordered graphs (Figure 2)",
		mic.ShuffledOrder,
		[]mic.Config{
			ompCfg(sched.Dynamic, chunkDynamic),
			tbbCfg(sched.SimplePartitioner, grainTBB),
			cilkCfg(grainCilk),
		},
		[]string{"OpenMP", "TBB", "CilkPlus"})
}

// irregularExperiment runs one Figure 3 panel: a single runtime config,
// curves for iter ∈ {1,3,5,10}, speedups computed "relatively to the same
// number of iterations".
func irregularExperiment(s *Suite, m *mic.Machine, id, title string, cfg mic.Config) *Experiment {
	threads := ThreadSweep()
	iters := []int{1, 3, 5, 10}
	exp := &Experiment{ID: id, Title: title}
	for _, iter := range iters {
		iter := iter
		traces := make([]*mic.Trace, len(s.Graphs))
		for gi, g := range s.Graphs {
			traces[gi] = mic.IrregularTrace(m, g, mic.NaturalOrder, iter)
		}
		series, errs, cells := speedupCurves(s.Harness, m, []mic.Config{cfg},
			[]string{fmt.Sprintf("%d iteration(s)", iter)},
			len(s.Graphs), threads,
			func(gi, _, _ int) *mic.Trace { return traces[gi] })
		exp.Series = append(exp.Series, series...)
		exp.Errors = append(exp.Errors, stamp(id, errs)...)
		exp.Cells = append(exp.Cells, stampCells(id, cells)...)
	}
	return exp
}

// Fig3a: irregular computation with OpenMP (dynamic policy).
func Fig3a(s *Suite, m *mic.Machine) *Experiment {
	return irregularExperiment(s, m, "fig3a",
		"Irregular computation speedup, OpenMP dynamic (Figure 3a)",
		ompCfg(sched.Dynamic, chunkDynamic))
}

// Fig3b: irregular computation with Cilk Plus.
func Fig3b(s *Suite, m *mic.Machine) *Experiment {
	return irregularExperiment(s, m, "fig3b",
		"Irregular computation speedup, Cilk Plus (Figure 3b)",
		cilkCfg(grainCilk))
}

// Fig3c: irregular computation with TBB (simple partitioner).
func Fig3c(s *Suite, m *mic.Machine) *Experiment {
	return irregularExperiment(s, m, "fig3c",
		"Irregular computation speedup, TBB simple (Figure 3c)",
		tbbCfg(sched.SimplePartitioner, grainTBB))
}

// bfsVariantSpec couples a queue variant with the runtime it runs on.
type bfsVariantSpec struct {
	label   string
	variant mic.BFSVariant
	cfg     mic.Config
}

// bfsExperiment computes speedup curves for the given variants on the given
// graph indices, plus the §III-C model curve.
func bfsExperiment(s *Suite, m *mic.Machine, id, title string,
	graphIdx []int, specs []bfsVariantSpec, threads []int) *Experiment {

	// BFS chunking works on queue blocks: the paper schedules "blocks of
	// vertices within a given level"; block size 32 performed best.
	const blockSize = 32

	exp := &Experiment{ID: id, Title: title}

	// Traces per (graph, variant) are thread-independent.
	traces := make(map[[2]int]*mic.Trace)
	sources := make(map[int]int32)
	for _, gi := range graphIdx {
		sources[gi] = int32(s.Graphs[gi].NumVertices() / 2)
	}
	for vi, spec := range specs {
		for _, gi := range graphIdx {
			traces[[2]int{gi, vi}] = mic.BFSTrace(m, s.Graphs[gi], sources[gi],
				mic.NaturalOrder, spec.variant, blockSize)
		}
	}

	configs := make([]mic.Config, len(specs))
	labels := make([]string, len(specs))
	for i, spec := range specs {
		cfg := spec.cfg
		if cfg.Chunk <= 1 {
			cfg.Chunk = blockSize // schedule whole blocks
		}
		configs[i] = cfg
		labels[i] = spec.label
	}
	series, errs, cells := speedupCurves(s.Harness, m, configs, labels, len(graphIdx), threads,
		func(gi, ci, _ int) *mic.Trace { return traces[[2]int{graphIdx[gi], ci}] })
	exp.Series = series
	exp.Errors = append(exp.Errors, stamp(id, errs)...)
	exp.Cells = append(exp.Cells, stampCells(id, cells)...)

	// Analytical model (§III-C), geometric mean across the same graphs.
	model := make([]float64, len(threads))
	for ti, t := range threads {
		per := make([]float64, len(graphIdx))
		for i, gi := range graphIdx {
			widths := s.Graphs[gi].LevelWidths(sources[gi])
			per[i] = perfmodel.Speedup(widths, t, blockSize)
		}
		model[ti] = GeoMean(per)
	}
	exp.Series = append(exp.Series, Series{Label: "Model", Threads: threads, Values: model})
	return exp
}

// Fig4a: BFS on pwtk — the outlier whose narrow level profile caps speedup
// early (slope change visible in the model curve).
func Fig4a(s *Suite, m *mic.Machine) *Experiment {
	gi := s.indexOf("pwtk")
	return bfsExperiment(s, m, "fig4a", "BFS speedup on pwtk (Figure 4a)",
		[]int{gi},
		[]bfsVariantSpec{
			{"OpenMP-Block-relaxed", mic.BFSBlockRelaxed, ompCfg(sched.Dynamic, 1)},
			{"OpenMP-Block", mic.BFSBlock, ompCfg(sched.Dynamic, 1)},
		},
		ThreadSweep())
}

// Fig4b: BFS on inline_1, whose wider levels allow about twice pwtk's
// speedup.
func Fig4b(s *Suite, m *mic.Machine) *Experiment {
	gi := s.indexOf("inline_1")
	return bfsExperiment(s, m, "fig4b", "BFS speedup on inline_1 (Figure 4b)",
		[]int{gi},
		[]bfsVariantSpec{
			{"OpenMP-Block-relaxed", mic.BFSBlockRelaxed, ompCfg(sched.Dynamic, 1)},
			{"OpenMP-Block", mic.BFSBlock, ompCfg(sched.Dynamic, 1)},
		},
		ThreadSweep())
}

// Fig4c: BFS on all graphs on the MIC — relaxed block queues (OpenMP and
// TBB) vs the Cilk bag, vs the model.
func Fig4c(s *Suite, m *mic.Machine) *Experiment {
	idx := make([]int, len(s.Graphs))
	for i := range idx {
		idx[i] = i
	}
	return bfsExperiment(s, m, "fig4c", "BFS speedup, all graphs on Intel MIC (Figure 4c)",
		idx,
		[]bfsVariantSpec{
			{"OpenMP-Block-relaxed", mic.BFSBlockRelaxed, ompCfg(sched.Dynamic, 1)},
			{"TBB-Block-relaxed", mic.BFSBlockRelaxed, tbbCfg(sched.SimplePartitioner, 1)},
			{"CilkPlus-Bag-relaxed", mic.BFSBag, cilkCfg(mic.BagGrain)},
		},
		ThreadSweep())
}

// Fig4d: BFS on all graphs on the host CPU, including SNAP's OpenMP-TLS.
func Fig4d(s *Suite, host *mic.Machine) *Experiment {
	idx := make([]int, len(s.Graphs))
	for i := range idx {
		idx[i] = i
	}
	return bfsExperiment(s, host, "fig4d", "BFS speedup, all graphs on the host CPU (Figure 4d)",
		idx,
		[]bfsVariantSpec{
			{"OpenMP-Block-relaxed", mic.BFSBlockRelaxed, ompCfg(sched.Dynamic, 1)},
			{"TBB-Block-relaxed", mic.BFSBlockRelaxed, tbbCfg(sched.SimplePartitioner, 1)},
			{"OpenMP-TLS", mic.BFSTLS, ompCfg(sched.Dynamic, 1)},
			{"CilkPlus-Bag-relaxed", mic.BFSBag, cilkCfg(mic.BagGrain)},
		},
		HostSweep())
}

func (s *Suite) indexOf(name string) int {
	for i := range s.Configs {
		base := s.Configs[i].Name
		for j := 0; j < len(base); j++ {
			if base[j] == '/' {
				base = base[:j]
				break
			}
		}
		if base == name {
			return i
		}
	}
	panic(fmt.Sprintf("core: graph %q not in suite", name))
}

// All returns every paper experiment, computed on the MIC machine (and the
// host machine for fig4d). Ablations are separate; see Ablations.
func All(s *Suite, knf, host *mic.Machine) []*Experiment {
	return []*Experiment{
		Table1(s),
		Fig1a(s, knf), Fig1b(s, knf), Fig1c(s, knf),
		Fig2(s, knf),
		Fig3a(s, knf), Fig3b(s, knf), Fig3c(s, knf),
		Fig4a(s, knf), Fig4b(s, knf), Fig4c(s, knf), Fig4d(s, host),
	}
}

// Ablations returns the design-choice ablation experiments.
func Ablations(s *Suite, knf *mic.Machine) []*Experiment {
	return []*Experiment{
		AblBlockSize(s, knf), AblChunkSize(s, knf), AblSMT(s, knf),
		AblCacheBonus(s, knf), AblOrdering(s, knf), AblModelVsSim(s, knf),
	}
}

// ByID runs a single experiment by its id.
func ByID(id string, s *Suite, knf, host *mic.Machine) (*Experiment, error) {
	switch id {
	case "table1":
		return Table1(s), nil
	case "fig1a":
		return Fig1a(s, knf), nil
	case "fig1b":
		return Fig1b(s, knf), nil
	case "fig1c":
		return Fig1c(s, knf), nil
	case "fig2":
		return Fig2(s, knf), nil
	case "fig3a":
		return Fig3a(s, knf), nil
	case "fig3b":
		return Fig3b(s, knf), nil
	case "fig3c":
		return Fig3c(s, knf), nil
	case "fig4a":
		return Fig4a(s, knf), nil
	case "fig4b":
		return Fig4b(s, knf), nil
	case "fig4c":
		return Fig4c(s, knf), nil
	case "fig4d":
		return Fig4d(s, host), nil
	case "abl-blocksize":
		return AblBlockSize(s, knf), nil
	case "abl-chunk":
		return AblChunkSize(s, knf), nil
	case "abl-smt":
		return AblSMT(s, knf), nil
	case "abl-bonus":
		return AblCacheBonus(s, knf), nil
	case "abl-ordering":
		return AblOrdering(s, knf), nil
	case "abl-model":
		return AblModelVsSim(s, knf), nil
	case "abl-direction":
		return AblDirection(s, knf), nil
	case "extra-rmat":
		return ExtraRMAT(s, knf), nil
	case "extra-knc":
		return ExtraKNC(s, mic.KNC()), nil
	}
	return nil, fmt.Errorf("core: unknown experiment %q", id)
}
