package core

import (
	"micgraph/internal/gen"
	"micgraph/internal/mic"
	"micgraph/internal/perfmodel"
	"micgraph/internal/sched"
)

// ExtraRMAT runs the kernels on a Graph 500-style RMAT power-law graph —
// outside the paper's FEM suite, demonstrating how the framework behaves on
// the other major irregular-graph class: skewed degrees (heavy hubs) and a
// shallow, wide BFS level structure. scaleLog2 derives from the suite's
// shrink factor so tests stay fast.
func ExtraRMAT(s *Suite, m *mic.Machine) *Experiment {
	threads := ThreadSweep()
	exp := &Experiment{
		ID:    "extra-rmat",
		Title: "Beyond the paper: kernels on an RMAT power-law graph",
		Notes: "RMAT a=0.57 b=c=0.19 (Graph 500); shallow wide BFS levels vs the FEM meshes' long thin profiles.",
	}

	logN := 17
	for f := s.Scale; f > 1; f /= 2 {
		logN -= 2
	}
	if logN < 10 {
		logN = 10
	}
	g := gen.RMAT(logN, 16, 0.57, 0.19, 0.19, 777)
	// BFS-based kernels want the giant component (RMAT leaves isolated
	// vertices that would never be reached).
	g, _ = g.LargestComponent()
	src := int32(g.NumVertices() / 2)

	// Coloring, OpenMP dynamic (hub degrees stress the load balancer).
	colorVals := make([]float64, len(threads))
	cfg := mic.Config{Kind: mic.OpenMP, Policy: sched.Dynamic, Chunk: 100}
	colorBase := mic.Simulate(m, cfg, 1, mic.ColoringTrace(m, g, mic.NaturalOrder, 1))
	for ti, th := range threads {
		colorVals[ti] = colorBase / mic.Simulate(m, cfg, th, mic.ColoringTrace(m, g, mic.NaturalOrder, th))
	}
	exp.Series = append(exp.Series, Series{Label: "coloring OpenMP-dynamic", Threads: threads, Values: colorVals})

	// BFS block-relaxed.
	bfsCfg := mic.Config{Kind: mic.OpenMP, Policy: sched.Dynamic, Chunk: 32}
	tr := mic.BFSTrace(m, g, src, mic.NaturalOrder, mic.BFSBlockRelaxed, 32)
	bfsBase := mic.Simulate(m, bfsCfg, 1, tr)
	bfsVals := make([]float64, len(threads))
	for ti, th := range threads {
		bfsVals[ti] = bfsBase / mic.Simulate(m, bfsCfg, th, tr)
	}
	exp.Series = append(exp.Series, Series{Label: "BFS Block-relaxed", Threads: threads, Values: bfsVals})

	// Analytical model: RMAT's wide levels should permit far more BFS
	// parallelism than pwtk's ribbon.
	widths := g.LevelWidths(src)
	model := make([]float64, len(threads))
	for ti, th := range threads {
		model[ti] = perfmodel.Speedup(widths, th, 32)
	}
	exp.Series = append(exp.Series, Series{Label: "BFS model", Threads: threads, Values: model})
	return exp
}

// ExtraKNC projects the paper's Figure 2 (shuffled coloring, the kernel
// that scales best) onto the anticipated Knights Corner part — the paper
// closes with "we are looking forward to perform more evaluation on the
// final design". Thread axis extends to KNC's 240 hardware threads.
func ExtraKNC(s *Suite, knc *mic.Machine) *Experiment {
	threads := []int{1}
	for t := 20; t <= knc.MaxThreads(); t += 20 {
		threads = append(threads, t)
	}
	exp := &Experiment{
		ID:    "extra-knc",
		Title: "Beyond the paper: shuffled coloring projected onto Knights Corner (60 cores x 4 SMT)",
		Notes: "Same cost model as KNF with a longer ring and scaled bandwidth; the paper anticipated >50 cores.",
	}
	graphs := s.Shuffled()
	cfg := mic.Config{Kind: mic.OpenMP, Policy: sched.Dynamic, Chunk: 100}
	vals := make([]float64, len(threads))
	for ti, th := range threads {
		per := make([]float64, len(graphs))
		for gi, g := range graphs {
			base := mic.Simulate(knc, cfg, 1, mic.ColoringTrace(knc, g, mic.ShuffledOrder, 1))
			per[gi] = base / mic.Simulate(knc, cfg, th, mic.ColoringTrace(knc, g, mic.ShuffledOrder, th))
		}
		vals[ti] = GeoMean(per)
	}
	exp.Series = append(exp.Series, Series{Label: "OpenMP-dynamic on KNC", Threads: threads, Values: vals})

	// The KNF curve on the same axis for comparison (clamped to its 124
	// hardware threads).
	knf := KNFForComparison()
	knfVals := make([]float64, len(threads))
	for ti, th := range threads {
		eff := th
		if eff > knf.MaxThreads() {
			eff = knf.MaxThreads()
		}
		per := make([]float64, len(graphs))
		for gi, g := range graphs {
			base := mic.Simulate(knf, cfg, 1, mic.ColoringTrace(knf, g, mic.ShuffledOrder, 1))
			per[gi] = base / mic.Simulate(knf, cfg, eff, mic.ColoringTrace(knf, g, mic.ShuffledOrder, eff))
		}
		knfVals[ti] = GeoMean(per)
	}
	exp.Series = append(exp.Series, Series{Label: "OpenMP-dynamic on KNF", Threads: threads, Values: knfVals})
	return exp
}

// KNFForComparison returns the baseline KNF machine (indirection so extras
// stay testable with custom machines).
func KNFForComparison() *mic.Machine { return mic.KNF() }
