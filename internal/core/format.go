package core

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// WriteText renders an experiment as an aligned text table: one row per
// thread count, one column per series (or the Table I layout for table
// experiments).
func WriteText(w io.Writer, e *Experiment) error {
	if _, err := fmt.Fprintf(w, "== %s [%s]\n", e.Title, e.ID); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(e.Rows) > 0 {
		fmt.Fprintln(tw, "Name\t|V|\t|E|\tΔ\t#Color\t(paper)\t#Level\t(paper)")
		for _, r := range e.Rows {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				r.Name, r.V, r.E, r.MaxDeg, r.Colors, r.PaperCol, r.Levels, r.PaperLev)
		}
	} else {
		header := []string{"threads"}
		for _, s := range e.Series {
			header = append(header, s.Label)
		}
		fmt.Fprintln(tw, strings.Join(header, "\t"))
		if len(e.Series) > 0 {
			for ti, t := range e.Series[0].Threads {
				row := []string{fmt.Sprintf("%d", t)}
				for _, s := range e.Series {
					row = append(row, fmt.Sprintf("%.2f", s.Values[ti]))
				}
				fmt.Fprintln(tw, strings.Join(row, "\t"))
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if e.Notes != "" {
		if _, err := fmt.Fprintf(w, "-- %s\n", e.Notes); err != nil {
			return err
		}
	}
	for _, ce := range e.Errors {
		if _, err := fmt.Fprintf(w, "!! %s\n", ce.Error()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// jsonExperiment is the JSON shape of one experiment: series and table rows
// as-is, errors flattened to their formatted strings (error values don't
// marshal), and the per-cell telemetry records next to them.
type jsonExperiment struct {
	ID     string          `json:"id"`
	Title  string          `json:"title"`
	Series []jsonSeries    `json:"series,omitempty"`
	Rows   []TableRow      `json:"rows,omitempty"`
	Notes  string          `json:"notes,omitempty"`
	Errors []string        `json:"errors,omitempty"`
	Cells  []CellTelemetry `json:"cells,omitempty"`
}

type jsonSeries struct {
	Label   string    `json:"label"`
	Threads []int     `json:"threads"`
	Values  []float64 `json:"values"`
}

// WriteJSON renders experiments as one indented JSON array. Cell failures
// appear as formatted strings under "errors" (the same text the !! lines
// carry), and harness telemetry — when enabled — as "cells" alongside them.
func WriteJSON(w io.Writer, exps []*Experiment) error {
	out := make([]jsonExperiment, 0, len(exps))
	for _, e := range exps {
		je := jsonExperiment{
			ID: e.ID, Title: e.Title, Rows: e.Rows, Notes: e.Notes, Cells: e.Cells,
		}
		for _, s := range e.Series {
			je.Series = append(je.Series, jsonSeries{Label: s.Label, Threads: s.Threads, Values: s.Values})
		}
		for _, ce := range e.Errors {
			je.Errors = append(je.Errors, ce.Error())
		}
		out = append(out, je)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCSV renders an experiment as CSV (threads plus one column per
// series, or the table columns).
func WriteCSV(w io.Writer, e *Experiment) error {
	if len(e.Rows) > 0 {
		if _, err := fmt.Fprintln(w, "name,vertices,edges,maxdeg,colors,paper_colors,levels,paper_levels"); err != nil {
			return err
		}
		for _, r := range e.Rows {
			if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d\n",
				r.Name, r.V, r.E, r.MaxDeg, r.Colors, r.PaperCol, r.Levels, r.PaperLev); err != nil {
				return err
			}
		}
		return nil
	}
	cols := []string{"threads"}
	for _, s := range e.Series {
		cols = append(cols, strings.ReplaceAll(s.Label, ",", ";"))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	if len(e.Series) == 0 {
		return nil
	}
	for ti, t := range e.Series[0].Threads {
		row := []string{fmt.Sprintf("%d", t)}
		for _, s := range e.Series {
			row = append(row, fmt.Sprintf("%.4f", s.Values[ti]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
