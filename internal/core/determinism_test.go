package core

import (
	"bytes"
	"testing"

	"micgraph/internal/mic"
)

// TestOutputByteDeterminism: regenerating a simulated figure and
// serializing it — JSON and SVG — must produce byte-identical output on
// every run. This is the output-path contract the simdeterminism analyzer
// protects (no map-ordered emission, no wall-clock dependence in the
// simulator), asserted end to end.
func TestOutputByteDeterminism(t *testing.T) {
	s := sharedSuite(t)
	render := func() ([]byte, []byte) {
		e := Fig1a(s, mic.KNF())
		var j, svg bytes.Buffer
		if err := WriteJSON(&j, []*Experiment{e}); err != nil {
			t.Fatal(err)
		}
		if err := WriteSVG(&svg, e); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), svg.Bytes()
	}
	j1, s1 := render()
	j2, s2 := render()
	if !bytes.Equal(j1, j2) {
		t.Error("WriteJSON output differs between identical simulated runs")
	}
	if !bytes.Equal(s1, s2) {
		t.Error("WriteSVG output differs between identical simulated runs")
	}
	if len(j1) == 0 || len(s1) == 0 {
		t.Fatal("empty serialized output")
	}
}
