package core

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"micgraph/internal/mic"
)

// The integration tests run every experiment once on a 4x-scaled suite and
// assert the paper's qualitative findings — who wins, where curves bend —
// rather than absolute numbers (which are only meaningful at scale 1; see
// EXPERIMENTS.md for the full-scale comparison).

var (
	suiteOnce sync.Once
	testSuite *Suite
	suiteErr  error
)

func sharedSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		testSuite, suiteErr = NewSuite(4)
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return testSuite
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", g)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("GeoMean with zero should be 0")
	}
}

func TestThreadSweeps(t *testing.T) {
	ts := ThreadSweep()
	if ts[0] != 1 || ts[len(ts)-1] != 121 || len(ts) != 13 {
		t.Errorf("ThreadSweep = %v", ts)
	}
	hs := HostSweep()
	if len(hs) != 24 || hs[0] != 1 || hs[23] != 24 {
		t.Errorf("HostSweep = %v", hs)
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{Label: "x", Threads: []int{1, 11, 21}, Values: []float64{1, 9, 7}}
	th, v := s.Peak()
	if th != 11 || v != 9 {
		t.Errorf("Peak = (%d, %v)", th, v)
	}
	if s.At(21) != 7 || s.At(99) != 0 {
		t.Error("At lookup wrong")
	}
}

func TestSuiteFindAndShuffled(t *testing.T) {
	s := sharedSuite(t)
	g, cfg, err := s.Find("pwtk")
	if err != nil || g == nil || !strings.HasPrefix(cfg.Name, "pwtk") {
		t.Fatalf("Find(pwtk) = %v, %v", cfg.Name, err)
	}
	if _, _, err := s.Find("nope"); err == nil {
		t.Error("unknown name accepted")
	}
	sh := s.Shuffled()
	if len(sh) != len(s.Graphs) {
		t.Fatalf("Shuffled returned %d graphs", len(sh))
	}
	if sh[0].NumEdges() != s.Graphs[0].NumEdges() {
		t.Error("shuffle changed edge count")
	}
	if &sh[0] != &s.Shuffled()[0] {
		t.Log("shuffled cached")
	}
}

func TestTable1MatchesSuite(t *testing.T) {
	s := sharedSuite(t)
	exp := Table1(s)
	if len(exp.Rows) != 7 {
		t.Fatalf("%d rows, want 7", len(exp.Rows))
	}
	for i, r := range exp.Rows {
		cfg := s.Configs[i]
		if r.V != s.Graphs[i].NumVertices() {
			t.Errorf("%s: V=%d vs graph %d", r.Name, r.V, s.Graphs[i].NumVertices())
		}
		if r.Colors < cfg.CliqueSize || r.Colors > cfg.CliqueSize+5 {
			t.Errorf("%s: colors=%d, want ≈%d (clique size)", r.Name, r.Colors, cfg.CliqueSize)
		}
		if r.Levels < 4 {
			t.Errorf("%s: only %d levels", r.Name, r.Levels)
		}
	}
}

// seriesByLabel finds a series in an experiment.
func seriesByLabel(t *testing.T, e *Experiment, label string) *Series {
	t.Helper()
	for i := range e.Series {
		if e.Series[i].Label == label {
			return &e.Series[i]
		}
	}
	t.Fatalf("%s: no series %q (have %v)", e.ID, label, func() []string {
		var ls []string
		for _, s := range e.Series {
			ls = append(ls, s.Label)
		}
		return ls
	}())
	return nil
}

func TestFig1aShapes(t *testing.T) {
	s := sharedSuite(t)
	e := Fig1a(s, mic.KNF())
	dyn := seriesByLabel(t, e, "OpenMP-dynamic")
	if v := dyn.At(1); math.Abs(v-1) > 0.05 {
		t.Errorf("dynamic at 1 thread = %v, want ≈1", v)
	}
	if v := dyn.At(121); v < 25 {
		t.Errorf("dynamic at 121 threads = %v, want substantial SMT speedup", v)
	}
	if dyn.At(61) < dyn.At(11) {
		t.Error("dynamic speedup not growing with threads")
	}
}

func TestFig1bCilkVariantsClose(t *testing.T) {
	s := sharedSuite(t)
	e := Fig1b(s, mic.KNF())
	a := seriesByLabel(t, e, "CilkPlus")
	b := seriesByLabel(t, e, "CilkPlus-holder")
	for i := range a.Values {
		if d := math.Abs(a.Values[i] - b.Values[i]); d > 0.06*a.Values[i]+0.1 {
			t.Errorf("variants diverge at %d threads: %v vs %v", a.Threads[i], a.Values[i], b.Values[i])
		}
	}
	// Cilk must cap well below OpenMP's ceiling: the runtime interference
	// the paper measures ("Our Cilk implementation peaks at a speedup of 32").
	_, peak := a.Peak()
	if peak > 45 {
		t.Errorf("Cilk peak %v too high; runtime overhead model missing", peak)
	}
	if peak < 15 {
		t.Errorf("Cilk peak %v too low", peak)
	}
}

func TestFig1cPartitionerOrdering(t *testing.T) {
	s := sharedSuite(t)
	e := Fig1c(s, mic.KNF())
	simple := seriesByLabel(t, e, "TBB-simple")
	affinity := seriesByLabel(t, e, "TBB-affinity")
	// "The simple partitioner clearly leads to better speedup ... on 31
	// threads and more."
	for _, th := range []int{61, 81, 101, 121} {
		if simple.At(th) <= affinity.At(th) {
			t.Errorf("at %d threads simple (%v) not above affinity (%v)",
				th, simple.At(th), affinity.At(th))
		}
	}
}

func TestFig2ShuffledSuperiority(t *testing.T) {
	s := sharedSuite(t)
	knf := mic.KNF()
	shuffled := Fig2(s, knf)
	natural := Fig1a(s, knf)
	omp := seriesByLabel(t, shuffled, "OpenMP")
	dyn := seriesByLabel(t, natural, "OpenMP-dynamic")
	// Shuffled graphs stress memory; SMT hides the latency, so the speedup
	// at full thread count must far exceed the natural-order speedup
	// (paper: 153 vs 72).
	if omp.At(121) < 1.4*dyn.At(121) {
		t.Errorf("shuffled speedup %v not well above natural %v at 121 threads",
			omp.At(121), dyn.At(121))
	}
	// And must keep scaling beyond the core count.
	if omp.At(121) < 2*omp.At(31)*0.8 {
		t.Errorf("shuffled speedup stopped scaling past the core count: %v at 31, %v at 121",
			omp.At(31), omp.At(121))
	}
}

func TestFig3IterationOrdering(t *testing.T) {
	s := sharedSuite(t)
	knf := mic.KNF()

	// OpenMP and TBB: more computation -> lower speedup at high threads.
	for _, mk := range []func(*Suite, *mic.Machine) *Experiment{Fig3a, Fig3c} {
		e := mk(s, knf)
		one := seriesByLabel(t, e, "1 iteration(s)")
		ten := seriesByLabel(t, e, "10 iteration(s)")
		if one.At(121) <= ten.At(121) {
			t.Errorf("%s: 1-iter speedup %v not above 10-iter %v at 121 threads",
				e.ID, one.At(121), ten.At(121))
		}
	}

	// Cilk: more computation amortises the runtime overhead -> HIGHER
	// speedup with more iterations (the paper's inversion).
	e := Fig3b(s, knf)
	one := seriesByLabel(t, e, "1 iteration(s)")
	ten := seriesByLabel(t, e, "10 iteration(s)")
	if one.At(121) >= ten.At(121) {
		t.Errorf("fig3b: Cilk 1-iter speedup %v not below 10-iter %v at 121 threads",
			one.At(121), ten.At(121))
	}

	// At iter=10 the three models converge (within ~35% at this scale).
	a := seriesByLabel(t, Fig3a(s, knf), "10 iteration(s)").At(121)
	b := ten.At(121)
	c := seriesByLabel(t, Fig3c(s, knf), "10 iteration(s)").At(121)
	lo := math.Min(a, math.Min(b, c))
	hi := math.Max(a, math.Max(b, c))
	if hi > 1.6*lo {
		t.Errorf("iter=10 speedups did not converge: OpenMP %v, Cilk %v, TBB %v", a, b, c)
	}
}

func TestFig4RelaxedBeatsLocked(t *testing.T) {
	s := sharedSuite(t)
	for _, mk := range []func(*Suite, *mic.Machine) *Experiment{Fig4a, Fig4b} {
		e := mk(s, mic.KNF())
		relaxed := seriesByLabel(t, e, "OpenMP-Block-relaxed")
		locked := seriesByLabel(t, e, "OpenMP-Block")
		for _, th := range []int{11, 41, 81, 121} {
			if relaxed.At(th) < locked.At(th) {
				t.Errorf("%s at %d threads: relaxed %v below locked %v",
					e.ID, th, relaxed.At(th), locked.At(th))
			}
		}
	}
}

func TestFig4InlineBeatsPwtk(t *testing.T) {
	s := sharedSuite(t)
	knf := mic.KNF()
	_, pwtkPeak := seriesByLabel(t, Fig4a(s, knf), "OpenMP-Block-relaxed").Peak()
	_, inlinePeak := seriesByLabel(t, Fig4b(s, knf), "OpenMP-Block-relaxed").Peak()
	// "the peak speedup on the inline_1 graph is about twice the speedup
	// achieved on pwtk"
	if inlinePeak < 1.3*pwtkPeak {
		t.Errorf("inline_1 peak %v not well above pwtk peak %v", inlinePeak, pwtkPeak)
	}
}

func TestFig4cBagPerformsPoorly(t *testing.T) {
	s := sharedSuite(t)
	e := Fig4c(s, mic.KNF())
	block := seriesByLabel(t, e, "OpenMP-Block-relaxed")
	bag := seriesByLabel(t, e, "CilkPlus-Bag-relaxed")
	model := seriesByLabel(t, e, "Model")
	for _, th := range []int{31, 61, 121} {
		if bag.At(th) >= block.At(th) {
			t.Errorf("at %d threads the bag (%v) outperformed the block queue (%v)",
				th, bag.At(th), block.At(th))
		}
	}
	// The model upper-bounds the implementations at scale (past the very
	// low thread counts where measurement noise is absent here).
	for _, th := range []int{61, 121} {
		if block.At(th) > model.At(th)*1.1 {
			t.Errorf("implementation beats the model at %d threads: %v > %v",
				th, block.At(th), model.At(th))
		}
	}
}

func TestFig4dHostOrderingAndOversubDip(t *testing.T) {
	s := sharedSuite(t)
	e := Fig4d(s, mic.HostXeon())
	block := seriesByLabel(t, e, "OpenMP-Block-relaxed")
	tls := seriesByLabel(t, e, "OpenMP-TLS")
	bag := seriesByLabel(t, e, "CilkPlus-Bag-relaxed")
	// "the Bag and TLS based implementation perform significantly slower
	// than our Block queue implementation"
	for _, th := range []int{8, 16, 22} {
		if !(block.At(th) > tls.At(th) && tls.At(th) > bag.At(th)) {
			t.Errorf("at %d threads ordering Block(%v) > TLS(%v) > Bag(%v) violated",
				th, block.At(th), tls.At(th), bag.At(th))
		}
	}
	// "...except using 23 and 24 threads where a performance issue in the
	// OpenMP runtime system appears."
	if block.At(23) >= block.At(22) {
		t.Errorf("OpenMP 23-thread dip missing: %v at 22, %v at 23", block.At(22), block.At(23))
	}
}

func TestAllAndByID(t *testing.T) {
	s := sharedSuite(t)
	knf, host := mic.KNF(), mic.HostXeon()
	exps := All(s, knf, host)
	if len(exps) != 12 {
		t.Fatalf("All returned %d experiments, want 12", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		got, err := ByID(e.ID, s, knf, host)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%s) = %v, %v", e.ID, got, err)
		}
	}
	if _, err := ByID("fig9z", s, knf, host); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestWriteTextAndCSV(t *testing.T) {
	s := sharedSuite(t)
	knf := mic.KNF()
	for _, e := range []*Experiment{Table1(s), Fig1a(s, knf)} {
		var txt, csv bytes.Buffer
		if err := WriteText(&txt, e); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&csv, e); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(txt.String(), e.ID) {
			t.Errorf("text output missing experiment id")
		}
		lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
		if len(lines) < 2 {
			t.Errorf("CSV output too short: %q", csv.String())
		}
		header := lines[0]
		for _, line := range lines[1:] {
			if strings.Count(line, ",") != strings.Count(header, ",") {
				t.Errorf("CSV row has wrong arity: %q vs header %q", line, header)
			}
		}
	}
}
