package graphio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"micgraph/internal/fault"
	"micgraph/internal/gen"
)

func TestDetectFormat(t *testing.T) {
	cases := map[string]Format{
		"a.mtx":     MatrixMarket,
		"a.BIN":     Binary,
		"dir/a.el":  EdgeList,
		"a.txt":     EdgeList,
		"noext":     MatrixMarket,
		"weird.xyz": MatrixMarket,
	}
	for path, want := range cases {
		if got := DetectFormat(path); got != want {
			t.Errorf("DetectFormat(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for name, want := range map[string]Format{"mtx": MatrixMarket, "bin": Binary, "el": EdgeList} {
		got, err := ParseFormat(name)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseFormat("json"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRoundTripAllFormats(t *testing.T) {
	g := gen.RingOfCliques(12, 5)
	for _, f := range []Format{MatrixMarket, Binary, EdgeList} {
		var buf bytes.Buffer
		if err := Write(&buf, g, f); err != nil {
			t.Fatalf("format %v: %v", f, err)
		}
		h, err := Read(&buf, f)
		if err != nil {
			t.Fatalf("format %v: %v", f, err)
		}
		if !g.Equal(h) {
			t.Errorf("format %v: round trip changed the graph", f)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	g := gen.Grid2D(9, 7)
	dir := t.TempDir()
	for _, name := range []string{"g.mtx", "g.bin", "g.el"} {
		path := filepath.Join(dir, name)
		format := DetectFormat(path)
		if err := WriteFile(path, g, format); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		h, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !g.Equal(h) {
			t.Errorf("%s: file round trip changed the graph", name)
		}
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.mtx")); err == nil {
		t.Error("missing file accepted")
	}
	if err := WriteFile(filepath.Join(dir, "nodir", "x.mtx"), g, MatrixMarket); err == nil {
		t.Error("unwritable path accepted")
	}
	if !os.IsNotExist(errOf(ReadFile(filepath.Join(dir, "missing.mtx")))) {
		t.Error("missing file error is not os.IsNotExist")
	}
}

func errOf(_ any, err error) error { return err }

// TestWriteFileAtomic exercises the temp-file+rename discipline: a write
// that fails mid-stream must leave an existing file byte-identical and must
// not litter the directory with temp files.
func TestWriteFileAtomic(t *testing.T) {
	g := gen.Grid2D(9, 7)
	h := gen.RingOfCliques(8, 4)
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	if err := WriteFile(path, g, Binary); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	in := fault.New(7)
	in.EnableAt("graphio/write/err", 1)
	if err := WriteFileInjected(path, h, Binary, in); err == nil {
		t.Fatal("injected write error not surfaced")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed write changed the existing file")
	}
	got, err := ReadFile(path)
	if err != nil || !g.Equal(got) {
		t.Errorf("existing file no longer parses to the old graph: %v", err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "g.bin" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("temp file litter after failed write: %v", names)
	}

	// A later uninjected write replaces the file completely.
	if err := WriteFile(path, h, Binary); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFile(path)
	if err != nil || !h.Equal(got) {
		t.Errorf("replacement write not visible: %v", err)
	}
}

func TestLoad(t *testing.T) {
	g, err := Load("", "pwtk", 16)
	if err != nil || g.NumVertices() == 0 {
		t.Fatalf("Load suite: %v", err)
	}
	if _, err := Load("", "bogus", 1); err == nil {
		t.Error("unknown suite graph accepted")
	}
	if _, err := Load("", "", 1); err == nil {
		t.Error("empty spec accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	if err := WriteFile(path, g, Binary); err != nil {
		t.Fatal(err)
	}
	h, err := Load(path, "", 1)
	if err != nil || !g.Equal(h) {
		t.Errorf("Load file: %v", err)
	}
}
