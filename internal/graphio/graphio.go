// Package graphio provides format-dispatching graph file I/O for the
// command-line tools: the serialization formats themselves live in
// internal/graph; this package picks one by file extension.
package graphio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"micgraph/internal/fault"
	"micgraph/internal/gen"
	"micgraph/internal/graph"
)

// Format identifies a graph file serialization.
type Format int

const (
	// MatrixMarket is the UF Sparse Matrix Collection text format (.mtx).
	MatrixMarket Format = iota
	// Binary is this repository's compact CSR dump (.bin).
	Binary
	// EdgeList is the "u v" per line text format (.el, .txt).
	EdgeList
)

// DetectFormat picks a Format from the file extension (MatrixMarket when
// unknown, matching the collection the paper's graphs come from).
func DetectFormat(path string) Format {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".bin":
		return Binary
	case ".el", ".txt":
		return EdgeList
	default:
		return MatrixMarket
	}
}

// ParseFormat converts a -format flag value.
func ParseFormat(name string) (Format, error) {
	switch name {
	case "mtx":
		return MatrixMarket, nil
	case "bin":
		return Binary, nil
	case "el":
		return EdgeList, nil
	}
	return 0, fmt.Errorf("graphio: unknown format %q (want mtx, bin, or el)", name)
}

// Read parses r in the given format.
func Read(r io.Reader, f Format) (*graph.Graph, error) {
	return ReadInjected(r, f, nil)
}

// ReadInjected is Read with a fault injector interposed on the byte
// stream: the sites "graphio/read/err" (transient read error) and
// "graphio/read/truncate" (premature EOF) exercise the loaders' failure
// paths deterministically. A nil injector reads normally.
func ReadInjected(r io.Reader, f Format, in *fault.Injector) (*graph.Graph, error) {
	r = in.Reader("graphio/read", r)
	switch f {
	case Binary:
		return graph.ReadBinary(r)
	case EdgeList:
		return graph.ReadEdgeList(r, 0)
	default:
		return graph.ReadMatrixMarket(r)
	}
}

// Write serialises g to w in the given format.
func Write(w io.Writer, g *graph.Graph, f Format) error {
	switch f {
	case Binary:
		return graph.WriteBinary(w, g)
	case EdgeList:
		return graph.WriteEdgeList(w, g)
	default:
		return graph.WriteMatrixMarket(w, g)
	}
}

// ReadFile opens and parses a graph file, dispatching on its extension.
func ReadFile(path string) (*graph.Graph, error) {
	return ReadFileInjected(path, nil)
}

// ReadFileInjected is ReadFile with a fault injector (see ReadInjected).
func ReadFileInjected(path string, in *fault.Injector) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadInjected(f, DetectFormat(path), in)
}

// WriteFile serialises g to path in the given format. The write is atomic:
// the bytes go to a temporary file in the same directory which is renamed
// over path only after a successful write and close, so a crashed or
// cancelled run can never leave a truncated graph file behind — path either
// keeps its previous contents or holds the complete new serialization.
func WriteFile(path string, g *graph.Graph, f Format) error {
	return WriteFileInjected(path, g, f, nil)
}

// WriteFileInjected is WriteFile with a fault injector interposed on the
// byte stream: the site "graphio/write/err" (transient write error)
// exercises the atomic-replace failure path deterministically. A nil
// injector writes normally.
func WriteFileInjected(path string, g *graph.Graph, f Format, in *fault.Injector) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	// Any failure past this point removes the temp file; path is untouched.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := Write(in.Writer("graphio/write", tmp), g, f); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Load resolves the CLI tools' shared -file/-graph convention: a file path
// (any supported format) or a builtin suite graph name with a shrink scale.
func Load(file, suiteName string, scale int) (*graph.Graph, error) {
	return LoadInjected(file, suiteName, scale, nil)
}

// LoadInjected is Load with a fault injector interposed on file reads (see
// ReadInjected). Suite-graph generation does not touch the filesystem and
// is unaffected.
func LoadInjected(file, suiteName string, scale int, in *fault.Injector) (*graph.Graph, error) {
	switch {
	case file != "":
		return ReadFileInjected(file, in)
	case suiteName != "":
		cfg, err := gen.SuiteConfig(suiteName)
		if err != nil {
			return nil, err
		}
		return gen.Mesh(gen.Scaled(cfg, scale))
	}
	return nil, fmt.Errorf("graphio: need a file path or a suite graph name")
}
