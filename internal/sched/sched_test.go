package sched

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

// coverageCheck runs loop and verifies every index in [0, n) was visited
// exactly once.
func coverageCheck(t *testing.T, n int, loop func(mark func(i int))) {
	t.Helper()
	counts := make([]int32, n)
	loop(func(i int) {
		if i < 0 || i >= n {
			t.Errorf("index %d out of [0,%d)", i, n)
			return
		}
		atomic.AddInt32(&counts[i], 1)
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times, want 1", i, c)
		}
	}
}

func TestTeamForAllPolicies(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	for _, pol := range []Policy{Static, Dynamic, Guided} {
		for _, chunk := range []int{0, 1, 3, 7, 100, 1000} {
			pol, chunk := pol, chunk
			t.Run(pol.String(), func(t *testing.T) {
				coverageCheck(t, 537, func(mark func(int)) {
					team.For(537, ForOptions{Policy: pol, Chunk: chunk}, func(lo, hi, w int) {
						if w < 0 || w >= 4 {
							t.Errorf("worker id %d out of range", w)
						}
						for i := lo; i < hi; i++ {
							mark(i)
						}
					})
				})
			})
		}
	}
}

func TestTeamForEmptyAndTiny(t *testing.T) {
	team := NewTeam(8)
	defer team.Close()
	called := int32(0)
	team.For(0, ForOptions{}, func(lo, hi, w int) { atomic.AddInt32(&called, 1) })
	if called != 0 {
		t.Error("body called for empty loop")
	}
	// n smaller than worker count: every index still covered exactly once.
	coverageCheck(t, 3, func(mark func(int)) {
		team.ForEach(3, ForOptions{Policy: Dynamic}, func(i, w int) { mark(i) })
	})
}

func TestTeamForEach(t *testing.T) {
	team := NewTeam(3)
	defer team.Close()
	var sum atomic.Int64
	team.ForEach(100, ForOptions{Policy: Guided, Chunk: 4}, func(i, w int) {
		sum.Add(int64(i))
	})
	if sum.Load() != 4950 {
		t.Errorf("sum = %d, want 4950", sum.Load())
	}
}

func TestTeamSingleWorker(t *testing.T) {
	team := NewTeam(1)
	defer team.Close()
	order := make([]int, 0, 10)
	team.For(10, ForOptions{Policy: Static, Chunk: 0}, func(lo, hi, w int) {
		for i := lo; i < hi; i++ {
			order = append(order, i)
		}
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker static order[%d] = %d", i, v)
		}
	}
}

func TestTeamMaxReduce(t *testing.T) {
	team := NewTeam(5)
	defer team.Close()
	got := team.MaxReduce(-1, func(w int, localMax *int) {
		if v := w * 10; v > *localMax {
			*localMax = v
		}
	})
	if got != 40 {
		t.Errorf("MaxReduce = %d, want 40", got)
	}
}

func TestTeamCoverageProperty(t *testing.T) {
	team := NewTeam(6)
	defer team.Close()
	property := func(nRaw, chunkRaw uint16, polRaw uint8) bool {
		n := int(nRaw % 2000)
		chunk := int(chunkRaw % 50)
		pol := Policy(polRaw % 3)
		counts := make([]int32, n)
		team.For(n, ForOptions{Policy: pol, Chunk: chunk}, func(lo, hi, w int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestNewTeamPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTeam(0) did not panic")
		}
	}()
	NewTeam(0)
}

func TestPolicyString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy has empty name")
	}
}

func TestTeamCloseIdempotent(t *testing.T) {
	team := NewTeam(2)
	team.Close()
	team.Close() // must not panic
}
