package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"micgraph/internal/xrand"
)

// Pool is a Cilk Plus-style work-stealing runtime: each worker owns a deque,
// pushes spawned tasks at the bottom, and steals from the top of a randomly
// chosen victim when idle. Pool also underlies the TBB-style partitioners in
// tbb.go. Create with NewPool, release with Close.
type Pool struct {
	workers []*worker
	mu      sync.Mutex
	cond    *sync.Cond
	queued  atomic.Int64
	closed  atomic.Bool
	wg      sync.WaitGroup
}

// worker is one scheduler thread of the pool.
type worker struct {
	pool   *Pool
	id     int
	dq     deque
	rng    *xrand.Rand
	stolen bool // whether the task currently executing was obtained by theft
}

// scope tracks the outstanding children of one spawning task, so Sync knows
// when they have all completed.
type scope struct {
	pending atomic.Int64
	done    chan struct{} // non-nil only for the root scope
}

func (sc *scope) complete() {
	if sc.pending.Add(-1) == 0 && sc.done != nil {
		close(sc.done)
	}
}

// Ctx is the handle a task uses to spawn children, wait for them, and
// identify its worker (for thread-local storage). A Ctx is only valid within
// the task invocation it was passed to.
type Ctx struct {
	w  *worker
	sc *scope
}

// Worker returns the executing worker's id in [0, Workers()).
func (c *Ctx) Worker() int { return c.w.id }

// Pool returns the pool executing this task.
func (c *Ctx) Pool() *Pool { return c.w.pool }

// Stolen reports whether the currently executing task was obtained by
// stealing rather than popped from the owner's deque. The TBB auto
// partitioner uses this signal ("it creates some subranges first and
// subdivides a range further only when it gets stolen").
func (c *Ctx) Stolen() bool { return c.w.stolen }

// NewPool creates a work-stealing pool with n workers.
func NewPool(n int) *Pool {
	if n < 1 {
		panic(fmt.Sprintf("sched: NewPool(%d): need at least one worker", n))
	}
	p := &Pool{workers: make([]*worker, n)}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < n; i++ {
		p.workers[i] = &worker{pool: p, id: i, rng: xrand.New(uint64(i)*0x9E3779B97F4A7C15 + 1)}
	}
	p.wg.Add(n)
	for _, w := range p.workers {
		go w.loop()
	}
	return p
}

// Workers returns the number of workers.
func (p *Pool) Workers() int { return len(p.workers) }

// Close shuts the pool down. Outstanding tasks are abandoned; only call
// Close after every Run has returned.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Run executes root on the pool and blocks until root and every task it
// transitively spawned have completed (Cilk's implicit sync at function
// exit applies to every task).
func (p *Pool) Run(root func(*Ctx)) {
	if p.closed.Load() {
		panic("sched: Run on closed Pool")
	}
	rootScope := &scope{done: make(chan struct{})}
	rootScope.pending.Add(1)
	p.submit(p.workers[0], task{scope: rootScope, fn: func(w *worker) {
		runTask(w, rootScope, root)
	}})
	<-rootScope.done
}

// runTask executes fn in a fresh child scope and performs the implicit sync.
func runTask(w *worker, parent *scope, fn func(*Ctx)) {
	ctx := &Ctx{w: w, sc: &scope{}}
	fn(ctx)
	ctx.Sync() // implicit sync at task exit
	parent.complete()
}

// Spawn schedules f to run concurrently with the continuation of the
// current task. The child is pushed on the executing worker's own deque
// (work-first would run it immediately; help-first matches how thieves in
// the paper's runtimes pick up whole subtrees and is what we implement).
func (c *Ctx) Spawn(f func(*Ctx)) {
	sc := c.sc
	sc.pending.Add(1)
	w := c.w
	w.pool.submit(w, task{scope: sc, fn: func(wrk *worker) {
		runTask(wrk, sc, f)
	}})
}

// Sync blocks until every task spawned by this Ctx has completed. While
// waiting, the worker executes other available tasks (its own first, then
// stolen ones), so Sync never wastes the worker.
func (c *Ctx) Sync() {
	w := c.w
	for c.sc.pending.Load() > 0 {
		if !w.tryRunOne() {
			runtime.Gosched()
		}
	}
}

// submit enqueues t on w's deque and wakes a sleeping worker.
func (p *Pool) submit(w *worker, t task) {
	w.dq.pushBottom(t)
	p.queued.Add(1)
	p.mu.Lock()
	p.cond.Signal()
	p.mu.Unlock()
}

// submitTo enqueues a task for a specific worker id (used by the affinity
// partitioner to replay a previous distribution).
func (p *Pool) submitTo(workerID int, sc *scope, f func(*Ctx)) {
	sc.pending.Add(1)
	w := p.workers[workerID%len(p.workers)]
	p.submit(w, task{scope: sc, fn: func(wrk *worker) {
		runTask(wrk, sc, f)
	}})
}

// loop is the worker scheduler: pop own work, else steal, else sleep.
func (w *worker) loop() {
	defer w.pool.wg.Done()
	p := w.pool
	for {
		if w.tryRunOne() {
			continue
		}
		p.mu.Lock()
		for p.queued.Load() == 0 && !p.closed.Load() {
			p.cond.Wait()
		}
		closed := p.closed.Load() && p.queued.Load() == 0
		p.mu.Unlock()
		if closed {
			return
		}
	}
}

// tryRunOne executes one task if any is available, preferring the worker's
// own deque and falling back to stealing from random victims. It reports
// whether a task ran.
func (w *worker) tryRunOne() bool {
	p := w.pool
	if t, ok := w.dq.popBottom(); ok {
		p.queued.Add(-1)
		w.runWith(t, false)
		return true
	}
	// Random victim selection, one full tour of the other workers.
	n := len(p.workers)
	if n == 1 {
		return false
	}
	start := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		v := p.workers[(start+i)%n]
		if v == w {
			continue
		}
		if t, ok := v.dq.stealTop(); ok {
			p.queued.Add(-1)
			w.runWith(t, true)
			return true
		}
	}
	return false
}

// runWith executes t with the stolen flag set appropriately for the
// duration of the task (saving/restoring around nested execution in Sync).
func (w *worker) runWith(t task, stolen bool) {
	prev := w.stolen
	w.stolen = stolen
	t.fn(w)
	w.stolen = prev
}

// DefaultGrain mirrors Cilk Plus's cilk_for default grain size:
// min(2048, ceil(n / (8 * workers))).
func DefaultGrain(n, workers int) int {
	g := (n + 8*workers - 1) / (8 * workers)
	if g > 2048 {
		g = 2048
	}
	if g < 1 {
		g = 1
	}
	return g
}

// For executes body over [lo, hi) by recursive binary splitting down to
// grain (cilk_for). grain <= 0 selects DefaultGrain. body receives the
// subrange and a Ctx for nested spawning and TLS access.
func (c *Ctx) For(lo, hi, grain int, body func(lo, hi int, c *Ctx)) {
	if hi <= lo {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain(hi-lo, c.w.pool.Workers())
	}
	c.forSplit(lo, hi, grain, body)
	c.Sync()
}

func (c *Ctx) forSplit(lo, hi, grain int, body func(lo, hi int, c *Ctx)) {
	for hi-lo > grain {
		mid := lo + (hi-lo)/2
		lo2, hi2 := lo, mid
		c.Spawn(func(cc *Ctx) {
			cc.forSplit(lo2, hi2, grain, body)
		})
		lo = mid
	}
	body(lo, hi, c)
}

// ParallelFor is the convenience entry point: run a cilk_for over [0, n) as
// the root task of the pool.
func (p *Pool) ParallelFor(n, grain int, body func(lo, hi int, c *Ctx)) {
	p.Run(func(c *Ctx) {
		c.For(0, n, grain, body)
	})
}
