package sched

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"micgraph/internal/telemetry"
	"micgraph/internal/xrand"
)

// Pool is a Cilk Plus-style work-stealing runtime: each worker owns a deque,
// pushes spawned tasks at the bottom, and steals from the top of a randomly
// chosen victim when idle. Pool also underlies the TBB-style partitioners in
// tbb.go. Create with NewPool, release with Close.
//
// # Shutdown states
//
// A Pool moves through three explicit states:
//
//  1. open: closed == false. Run/RunE/RunCtx accept work.
//  2. closing: closed == true, active > 0. Close has been called while runs
//     are still in flight; new runs are refused (ErrPoolClosed), but the
//     workers keep executing until every in-flight run has completed — a
//     worker never exits early just because the queue is transiently empty
//     mid-run.
//  3. closed: closed == true, active == 0 and the queue is empty. Workers
//     exit; Close returns after all of them have.
//
// The active-run counter is what makes the transition safe: the historical
// exit condition "closed && queued == 0" could be observed mid-run between
// a task finishing and its continuation being enqueued, silently shrinking
// the worker set. Workers now only exit when no run is in flight.
type Pool struct {
	workers  []*worker
	mu       sync.Mutex
	cond     *sync.Cond
	queued   atomic.Int64
	active   atomic.Int64 // in-flight Run/RunE/RunCtx calls
	closed   atomic.Bool
	wg       sync.WaitGroup
	inject   InjectFunc // optional fault hook, fired per task execution
	arena    *Arena     // resident per-worker scratch (see arena.go)
	rootMu   sync.Mutex // guards rootFree
	rootFree []*rootBox // recycled root scopes (see runRoot)

	// counters is the optional scheduler counter sink (nil = off). It is an
	// atomic pointer because pool workers are already spinning through the
	// steal path when SetCounters runs: a plain field would race with the
	// StealFails increment of an idle worker.
	counters atomic.Pointer[telemetry.Counters]
}

// worker is one scheduler thread of the pool.
type worker struct {
	pool   *Pool
	id     int
	dq     deque
	rng    *xrand.Rand
	stolen bool      // whether the task currently executing was obtained by theft
	free   []*ctxBox // recycled Ctx+scope pairs, owner-goroutine only
}

// ctxBox is a Ctx and its child scope allocated as one block so runTask
// costs zero allocations in steady state. Recycling is safe because a
// scope is dead once its owner's Sync has observed pending == 0: children
// only touch the scope through complete(), which for a non-root scope does
// nothing after the atomic decrement, and every child has decremented
// before Sync returns. The free list is per-worker and only touched by the
// worker's own goroutine (runTask runs on it, even when nested via Sync's
// help-first execution), so no lock is needed.
type ctxBox struct {
	c  Ctx
	sc scope
}

// getCtx leases a Ctx with a fresh child scope inheriting the run's panic
// slot and context from parent.
func (w *worker) getCtx(parent *scope) *Ctx {
	var b *ctxBox
	if n := len(w.free); n > 0 {
		b = w.free[n-1]
		w.free[n-1] = nil
		w.free = w.free[:n-1]
	} else {
		b = &ctxBox{}
		b.c.w = w
		b.c.sc = &b.sc
		b.c.box = b
	}
	b.sc.err = parent.err
	b.sc.ctx = parent.ctx
	return &b.c
}

// putCtx returns a Ctx leased by getCtx. Only call after Sync has drained
// the scope (pending == 0).
func (w *worker) putCtx(c *Ctx) {
	b := c.box
	b.sc.err = nil
	b.sc.ctx = nil
	w.free = append(w.free, b)
}

// scope tracks the outstanding children of one spawning task, so Sync knows
// when they have all completed. Every scope of a run shares the root's
// panic slot and context, so a failure or cancellation anywhere in the task
// tree is visible everywhere.
type scope struct {
	pending atomic.Int64
	done    chan struct{}   // non-nil only for the root scope
	err     *panicSlot      // shared panic holder of the run
	ctx     context.Context // shared cancellation of the run (may be nil)
}

func (sc *scope) complete() {
	if sc.pending.Add(-1) == 0 && sc.done != nil {
		// A buffered send (not close) so root scopes can be recycled across
		// runs; each run completes exactly once, so the slot is always free.
		sc.done <- struct{}{}
	}
}

// Ctx is the handle a task uses to spawn children, wait for them, and
// identify its worker (for thread-local storage). A Ctx is only valid within
// the task invocation it was passed to.
type Ctx struct {
	w   *worker
	sc  *scope
	box *ctxBox // back-pointer for recycling; nil for stack-constructed Ctxs
}

// Worker returns the executing worker's id in [0, Workers()).
func (c *Ctx) Worker() int { return c.w.id }

// Pool returns the pool executing this task.
func (c *Ctx) Pool() *Pool { return c.w.pool }

// Stolen reports whether the currently executing task was obtained by
// stealing rather than popped from the owner's deque. The TBB auto
// partitioner uses this signal ("it creates some subranges first and
// subdivides a range further only when it gets stolen").
func (c *Ctx) Stolen() bool { return c.w.stolen }

// Cancelled reports whether the run this task belongs to has been cancelled
// or has failed: true once the run's context is done or any task of the run
// has panicked. Long loop bodies may poll it to bail out early; the loop
// drivers poll it at every split/claim boundary.
func (c *Ctx) Cancelled() bool {
	if c.sc.err != nil && c.sc.err.failed() {
		return true
	}
	return c.sc.ctx != nil && c.sc.ctx.Err() != nil
}

// NewPool creates a work-stealing pool with n workers.
func NewPool(n int) *Pool {
	if n < 1 {
		panic(fmt.Sprintf("sched: NewPool(%d): need at least one worker", n))
	}
	p := &Pool{workers: make([]*worker, n), arena: NewArena(n)}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < n; i++ {
		p.workers[i] = &worker{pool: p, id: i, rng: xrand.New(uint64(i)*0x9E3779B97F4A7C15 + 1)}
	}
	p.wg.Add(n)
	for _, w := range p.workers {
		go w.loop()
	}
	return p
}

// Workers returns the number of workers.
func (p *Pool) Workers() int { return len(p.workers) }

// SetInject installs a fault-injection hook fired before every task
// execution (site "pool/task"). Pass nil to disable. Must not be called
// while a run is in flight.
func (p *Pool) SetInject(f InjectFunc) { p.inject = f }

// SetCounters attaches scheduler counters (tasks spawned, steals and steal
// failures, range splits, chunks claimed, panics contained). Pass nil to
// disable — the default, which keeps the scheduling paths at a single nil
// check per event. Must not be called while a run is in flight; the
// counters must have been created for at least Workers() workers. Safe to
// call while workers are idle-spinning (the handoff is atomic).
func (p *Pool) SetCounters(c *telemetry.Counters) { p.counters.Store(c) }

// Counters returns the attached counters (nil when telemetry is off).
func (p *Pool) Counters() *telemetry.Counters { return p.counters.Load() }

// Close shuts the pool down: new runs are refused immediately, in-flight
// runs drain to completion, then the workers exit. Close blocks until they
// have. Closing an already-closed pool is a no-op.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Run executes root on the pool and blocks until root and every task it
// transitively spawned have completed (Cilk's implicit sync at function
// exit applies to every task). Run panics if the pool is closed, and
// re-panics any task panic as a *PanicError on the caller's goroutine.
func (p *Pool) Run(root func(*Ctx)) {
	if err := p.RunE(root); err != nil {
		if err == ErrPoolClosed {
			panic("sched: Run on closed Pool")
		}
		panic(err)
	}
}

// RunE is Run returning errors instead of panicking: ErrPoolClosed when the
// pool is shut down, or a *PanicError carrying the first task panic with
// its stack. On a task panic the rest of the task tree drains cleanly (no
// task is abandoned mid-flight) and the pool remains usable.
func (p *Pool) RunE(root func(*Ctx)) error {
	return p.RunCtx(nil, root)
}

// RunCtx is RunE with cooperative cancellation: once ctx is done, task
// bodies stop being invoked (queued tasks still drain their scope
// bookkeeping, so the run terminates promptly) and RunCtx returns
// ctx.Err(). A task panic takes precedence over cancellation. ctx may be
// nil.
func (p *Pool) RunCtx(ctx context.Context, root func(*Ctx)) error {
	return p.runRoot(ctx, task{fn: root})
}

// rootBox bundles a recyclable root scope with its panic slot, so starting
// a run allocates nothing in steady state (pinned by the kerneltest alloc
// gates). Boxes are handed out under rootMu; concurrent runs each hold
// their own box for the run's duration.
type rootBox struct {
	sc   scope
	slot panicSlot
}

func (p *Pool) getRoot() *rootBox {
	p.rootMu.Lock()
	var rb *rootBox
	if n := len(p.rootFree); n > 0 {
		rb = p.rootFree[n-1]
		p.rootFree = p.rootFree[:n-1]
	}
	p.rootMu.Unlock()
	if rb == nil {
		rb = &rootBox{}
		rb.sc.done = make(chan struct{}, 1)
		rb.sc.err = &rb.slot
	}
	rb.slot.reset()
	return rb
}

func (p *Pool) putRoot(rb *rootBox) {
	rb.sc.ctx = nil
	p.rootMu.Lock()
	p.rootFree = append(p.rootFree, rb)
	p.rootMu.Unlock()
}

// runRoot executes t as the root task of a run on a recycled root scope and
// blocks until the whole task tree has completed.
func (p *Pool) runRoot(ctx context.Context, t task) error {
	p.active.Add(1)
	defer p.runDone()
	if p.closed.Load() {
		return ErrPoolClosed
	}
	rb := p.getRoot()
	rb.sc.ctx = ctx
	rb.sc.pending.Store(1)
	t.scope = &rb.sc
	p.submit(p.workers[0], t)
	<-rb.sc.done
	var err error
	if pe := rb.slot.get(); pe != nil {
		err = pe
	} else if ctx != nil {
		err = ctx.Err()
	}
	p.putRoot(rb)
	return err
}

// runDone retires one in-flight run and, when it was the last during a
// close, wakes the workers so they can observe the closed state.
func (p *Pool) runDone() {
	if p.active.Add(-1) == 0 && p.closed.Load() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// runTask executes t in a recycled child scope (inheriting the run's panic
// slot and context from t.scope, the parent) with panic containment, then
// performs the implicit sync and returns the Ctx to the worker's free
// list. A panicking task is recorded on the run; its already-spawned
// children still drain so no goroutine or scope count leaks. Range tasks
// (t.fn == nil) continue the cilk_for split of [t.lo, t.hi).
func runTask(w *worker, t task) {
	parent := t.scope
	ctx := w.getCtx(parent)
	func() {
		defer func() {
			if r := recover(); r != nil {
				parent.err.record(w.id, r, debug.Stack())
				w.pool.counters.Load().Inc(w.id, telemetry.PanicsContained)
			}
		}()
		if w.pool.inject != nil {
			w.pool.inject("pool/task", w.id)
		}
		if !ctx.Cancelled() {
			switch {
			case t.fn != nil:
				t.fn(ctx)
			case t.kind == taskSimple:
				simpleSplit(ctx, Range{t.lo, t.hi, t.grain}, t.body)
			case t.kind == taskAuto:
				autoRun(ctx, Range{t.lo, t.hi, t.grain}, t.body)
			case t.kind == taskAutoRoot:
				autoRoot(ctx, Range{t.lo, t.hi, t.grain}, t.body)
			default:
				ctx.forSplit(t.lo, t.hi, t.grain, t.body)
			}
		}
	}()
	ctx.Sync() // implicit sync at task exit, also on panic/cancellation
	parent.complete()
	w.putCtx(ctx)
}

// Spawn schedules f to run concurrently with the continuation of the
// current task. The child is pushed on the executing worker's own deque
// (work-first would run it immediately; help-first matches how thieves in
// the paper's runtimes pick up whole subtrees and is what we implement).
// The task record carries f directly — no wrapper closure is allocated.
func (c *Ctx) Spawn(f func(*Ctx)) {
	sc := c.sc
	sc.pending.Add(1)
	c.w.pool.submit(c.w, task{scope: sc, fn: f})
}

// spawnRange schedules a subrange continuation of the given kind under the
// current scope. Like Spawn, no wrapper closure is allocated: the shared
// body rides in the task record.
func (c *Ctx) spawnRange(kind uint8, r Range, body func(lo, hi int, c *Ctx)) {
	sc := c.sc
	sc.pending.Add(1)
	c.w.pool.submit(c.w, task{scope: sc, body: body, lo: r.Lo, hi: r.Hi, grain: r.Grain, kind: kind})
}

// Sync blocks until every task spawned by this Ctx has completed. While
// waiting, the worker executes other available tasks (its own first, then
// stolen ones), so Sync never wastes the worker.
func (c *Ctx) Sync() {
	w := c.w
	for c.sc.pending.Load() > 0 {
		if !w.tryRunOne() {
			runtime.Gosched()
		}
	}
}

// submit enqueues t on w's deque and wakes a sleeping worker.
func (p *Pool) submit(w *worker, t task) {
	p.counters.Load().Inc(w.id, telemetry.TasksSpawned)
	w.dq.pushBottom(t)
	p.queued.Add(1)
	p.mu.Lock()
	p.cond.Signal()
	p.mu.Unlock()
}

// submitTo enqueues a task for a specific worker id (used by the affinity
// partitioner to replay a previous distribution).
func (p *Pool) submitTo(workerID int, sc *scope, f func(*Ctx)) {
	sc.pending.Add(1)
	w := p.workers[workerID%len(p.workers)]
	p.submit(w, task{scope: sc, fn: f})
}

// loop is the worker scheduler: pop own work, else steal, else sleep.
// Workers exit only in the fully-closed state: closed, no queued tasks,
// and no run in flight (see the Pool shutdown-state documentation).
func (w *worker) loop() {
	defer w.pool.wg.Done()
	p := w.pool
	for {
		if w.tryRunOne() {
			continue
		}
		p.mu.Lock()
		for p.queued.Load() == 0 && !(p.closed.Load() && p.active.Load() == 0) {
			p.cond.Wait()
		}
		exit := p.closed.Load() && p.queued.Load() == 0 && p.active.Load() == 0
		p.mu.Unlock()
		if exit {
			return
		}
	}
}

// tryRunOne executes one task if any is available, preferring the worker's
// own deque and falling back to stealing from random victims. It reports
// whether a task ran.
func (w *worker) tryRunOne() bool {
	p := w.pool
	if t, ok := w.dq.popBottom(); ok {
		p.queued.Add(-1)
		w.runWith(t, false)
		return true
	}
	// Random victim selection, one full tour of the other workers.
	n := len(p.workers)
	if n == 1 {
		return false
	}
	start := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		v := p.workers[(start+i)%n]
		if v == w {
			continue
		}
		if t, ok := v.dq.stealTop(); ok {
			p.queued.Add(-1)
			p.counters.Load().Inc(w.id, telemetry.Steals)
			w.runWith(t, true)
			return true
		}
	}
	p.counters.Load().Inc(w.id, telemetry.StealFails)
	return false
}

// runWith executes t with the stolen flag set appropriately for the
// duration of the task (saving/restoring around nested execution in Sync).
func (w *worker) runWith(t task, stolen bool) {
	prev := w.stolen
	w.stolen = stolen
	runTask(w, t)
	w.stolen = prev
}

// DefaultGrain mirrors Cilk Plus's cilk_for default grain size:
// min(2048, ceil(n / (8 * workers))).
func DefaultGrain(n, workers int) int {
	g := (n + 8*workers - 1) / (8 * workers)
	if g > 2048 {
		g = 2048
	}
	if g < 1 {
		g = 1
	}
	return g
}

// For executes body over [lo, hi) by recursive binary splitting down to
// grain (cilk_for). grain <= 0 selects DefaultGrain. body receives the
// subrange and a Ctx for nested spawning and TLS access. When the run has
// been cancelled, splitting stops and remaining subranges are skipped.
func (c *Ctx) For(lo, hi, grain int, body func(lo, hi int, c *Ctx)) {
	if hi <= lo {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain(hi-lo, c.w.pool.Workers())
	}
	c.forSplit(lo, hi, grain, body)
	c.Sync()
}

// forSplit halves [lo, hi) down to grain, spawning the left half as a
// range task (a plain struct on the deque — no closure per split) and
// continuing with the right half, then runs the final subrange inline.
func (c *Ctx) forSplit(lo, hi, grain int, body func(lo, hi int, c *Ctx)) {
	counters := c.w.pool.counters.Load()
	sc := c.sc
	for hi-lo > grain {
		if c.Cancelled() {
			return
		}
		counters.Inc(c.w.id, telemetry.RangeSplits)
		mid := lo + (hi-lo)/2
		sc.pending.Add(1)
		c.w.pool.submit(c.w, task{scope: sc, body: body, lo: lo, hi: mid, grain: grain})
		lo = mid
	}
	if c.Cancelled() {
		return
	}
	counters.Inc(c.w.id, telemetry.ChunksClaimed)
	body(lo, hi, c)
}

// ParallelFor is the convenience entry point: run a cilk_for over [0, n) as
// the root task of the pool. Panics (closed pool, body panic) propagate on
// the caller's goroutine; use ParallelForE/ParallelForCtx for errors.
func (p *Pool) ParallelFor(n, grain int, body func(lo, hi int, c *Ctx)) {
	p.Run(func(c *Ctx) {
		c.For(0, n, grain, body)
	})
}

// ParallelForE is ParallelFor returning errors instead of panicking.
func (p *Pool) ParallelForE(n, grain int, body func(lo, hi int, c *Ctx)) error {
	return p.RunE(func(c *Ctx) {
		c.For(0, n, grain, body)
	})
}

// ParallelForCtx is ParallelFor with cooperative cancellation, polled at
// every split boundary. The loop runs as a root range task directly — no
// wrapper closure — so in steady state the call allocates nothing.
func (p *Pool) ParallelForCtx(ctx context.Context, n, grain int, body func(lo, hi int, c *Ctx)) error {
	if n <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = DefaultGrain(n, p.Workers())
	}
	return p.runRoot(ctx, task{body: body, lo: 0, hi: n, grain: grain})
}
