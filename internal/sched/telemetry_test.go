package sched

import (
	"sync/atomic"
	"testing"

	"micgraph/internal/telemetry"
)

// TestTeamCountersChunks: every chunk a Team loop hands to a body must show
// up in ChunksClaimed, and the per-policy chunk counts must match what the
// body observed.
func TestTeamCountersChunks(t *testing.T) {
	for _, policy := range []Policy{Static, Dynamic, Guided} {
		team := NewTeam(4)
		counters := telemetry.NewCounters(4)
		team.SetCounters(counters)
		var calls atomic.Int64
		team.For(1000, ForOptions{Policy: policy, Chunk: 10}, func(lo, hi, w int) {
			calls.Add(1)
		})
		team.Close()
		if got := counters.Total(telemetry.ChunksClaimed); got != calls.Load() {
			t.Errorf("policy %v: chunks_claimed = %d, body calls = %d", policy, got, calls.Load())
		}
		if calls.Load() == 0 {
			t.Errorf("policy %v: loop body never ran", policy)
		}
	}
}

// TestTeamCountersPanics: contained body panics are counted.
func TestTeamCountersPanics(t *testing.T) {
	team := NewTeam(2)
	defer team.Close()
	counters := telemetry.NewCounters(2)
	team.SetCounters(counters)
	err := team.ForE(8, ForOptions{Policy: Static, Chunk: 4}, func(lo, hi, w int) {
		panic("boom")
	})
	if err == nil {
		t.Fatal("panicking loop returned nil error")
	}
	if got := counters.Total(telemetry.PanicsContained); got == 0 {
		t.Error("panics_contained = 0 after contained panic")
	}
}

// TestPoolCountersSpawn: explicit Spawn calls are counted as tasks, and the
// recursive For splits show up as range splits + leaf chunks.
func TestPoolCountersSpawn(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	counters := telemetry.NewCounters(4)
	pool.SetCounters(counters)

	const spawned = 64
	var ran atomic.Int64
	pool.Run(func(c *Ctx) {
		for i := 0; i < spawned; i++ {
			c.Spawn(func(*Ctx) { ran.Add(1) })
		}
		c.Sync()
	})
	if ran.Load() != spawned {
		t.Fatalf("ran %d tasks, want %d", ran.Load(), spawned)
	}
	if got := counters.Total(telemetry.TasksSpawned); got < spawned {
		t.Errorf("tasks_spawned = %d, want >= %d", got, spawned)
	}
	// Steals and failed steal tours are machine-timing dependent, but the
	// counters must never go negative and steals can't exceed spawns.
	steals := counters.Total(telemetry.Steals)
	if steals < 0 || steals > counters.Total(telemetry.TasksSpawned) {
		t.Errorf("implausible steals = %d", steals)
	}
}

// TestPoolCountersFor: cilk_for leaf ranges are claimed chunks; interior
// halvings are range splits; claimed chunks cover the iteration space.
func TestPoolCountersFor(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	counters := telemetry.NewCounters(4)
	pool.SetCounters(counters)

	var items atomic.Int64
	var leaves atomic.Int64
	pool.ParallelFor(1000, 16, func(lo, hi int, c *Ctx) {
		items.Add(int64(hi - lo))
		leaves.Add(1)
	})
	if items.Load() != 1000 {
		t.Fatalf("covered %d items, want 1000", items.Load())
	}
	if got := counters.Total(telemetry.ChunksClaimed); got != leaves.Load() {
		t.Errorf("chunks_claimed = %d, leaf calls = %d", got, leaves.Load())
	}
	if got := counters.Total(telemetry.RangeSplits); got == 0 {
		t.Error("range_splits = 0 for a 1000-item grain-16 cilk_for")
	}
}

// TestTBBCountersSplits: the TBB partitioners count their subdivisions and
// leaf chunk executions.
func TestTBBCountersSplits(t *testing.T) {
	for _, part := range []Partitioner{SimplePartitioner, AutoPartitioner, AffinityPartitioner} {
		pool := NewPool(4)
		counters := telemetry.NewCounters(4)
		pool.SetCounters(counters)
		var aff *AffinityState
		if part == AffinityPartitioner {
			aff = &AffinityState{}
		}
		var items atomic.Int64
		var leaves atomic.Int64
		ParallelForRange(pool, Range{Lo: 0, Hi: 1000, Grain: 16}, part, aff,
			func(lo, hi int, c *Ctx) {
				items.Add(int64(hi - lo))
				leaves.Add(1)
			})
		pool.Close()
		if items.Load() != 1000 {
			t.Fatalf("partitioner %v covered %d items, want 1000", part, items.Load())
		}
		if got := counters.Total(telemetry.ChunksClaimed); got != leaves.Load() {
			t.Errorf("partitioner %v: chunks_claimed = %d, leaves = %d", part, got, leaves.Load())
		}
		// The simple partitioner always subdivides to the grain; auto only
		// splits under steal pressure and affinity pre-blocks the range, so
		// only simple has a guaranteed split count.
		if part == SimplePartitioner {
			if got := counters.Total(telemetry.RangeSplits); got == 0 {
				t.Errorf("partitioner %v: range_splits = 0", part)
			}
		}
	}
}

// TestCountersOffNoPanic: an uninstrumented Team/Pool (nil counters) must
// run exactly as before.
func TestCountersOffNoPanic(t *testing.T) {
	team := NewTeam(2)
	defer team.Close()
	var n atomic.Int64
	team.For(100, ForOptions{Policy: Dynamic, Chunk: 7}, func(lo, hi, w int) {
		n.Add(int64(hi - lo))
	})
	if n.Load() != 100 {
		t.Errorf("covered %d, want 100", n.Load())
	}

	pool := NewPool(2)
	defer pool.Close()
	n.Store(0)
	pool.ParallelFor(100, 8, func(lo, hi int, c *Ctx) { n.Add(int64(hi - lo)) })
	if n.Load() != 100 {
		t.Errorf("pool covered %d, want 100", n.Load())
	}
}
